package lint

// The docsync test: the latch hierarchy is stated three times — as
// //tsb:latch directives on the fields themselves, as lint.LatchTable()
// (the cross-package facts a vet unit needs), and as the markdown table
// in docs/ARCHITECTURE.md — and this test fails if any two disagree.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

const archDoc = "../../docs/ARCHITECTURE.md"

// parseDocTable extracts the LatchEntry rows between the
// tsb:latch-table markers in docs/ARCHITECTURE.md.
func parseDocTable(t *testing.T) []LatchEntry {
	t.Helper()
	data, err := os.ReadFile(archDoc)
	if err != nil {
		t.Fatalf("read %s: %v", archDoc, err)
	}
	text := string(data)
	begin := strings.Index(text, "<!-- tsb:latch-table:begin -->")
	end := strings.Index(text, "<!-- tsb:latch-table:end -->")
	if begin < 0 || end < 0 || end < begin {
		t.Fatalf("%s: tsb:latch-table markers missing or out of order", archDoc)
	}
	var rows []LatchEntry
	for _, line := range strings.Split(text[begin:end], "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "|") {
			continue
		}
		cells := strings.Split(strings.Trim(line, "|"), "|")
		if len(cells) != 4 {
			t.Fatalf("%s: latch table row %q has %d cells, want 4", archDoc, line, len(cells))
		}
		for i := range cells {
			cells[i] = strings.TrimSpace(cells[i])
		}
		if cells[0] == "Level" || strings.HasPrefix(cells[0], "--") {
			continue // header and separator
		}
		level, err := strconv.Atoi(cells[0])
		if err != nil {
			t.Fatalf("%s: latch table row %q: bad level: %v", archDoc, line, err)
		}
		rows = append(rows, LatchEntry{Level: level, Name: cells[1], Object: cells[2], Kind: cells[3]})
	}
	return rows
}

// scanSourceLatches parses every non-test file under ../../internal
// (skipping testdata fixtures) and collects each //tsb:latch directive
// as a LatchEntry, deriving Kind from the field's syntactic type.
func scanSourceLatches(t *testing.T) map[string]LatchEntry {
	t.Helper()
	found := make(map[string]LatchEntry)
	root := filepath.Join("..", "..", "internal")
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		rel, _ := filepath.Rel(filepath.Join("..", ".."), filepath.Dir(path))
		pkgPath := "repro/" + filepath.ToSlash(rel)
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					ls := latchSpecFromComments(field.Doc, field.Comment)
					if ls == nil {
						continue
					}
					for _, name := range field.Names {
						obj := pkgPath + "." + ts.Name.Name + "." + name.Name
						kind := ls.Kind
						if kind == "" {
							kind = syntacticKind(field.Type)
						}
						found[obj] = LatchEntry{Level: ls.Level, Name: ls.Name, Object: obj, Kind: kind}
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scan source latches: %v", err)
	}
	return found
}

// syntacticKind maps a latch field's AST type to a table kind.
func syntacticKind(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok && id.Name == "sync" {
			switch e.Sel.Name {
			case "Mutex":
				return "mutex"
			case "RWMutex":
				return "rwmutex"
			}
		}
	case *ast.ChanType:
		return "token"
	}
	return "state"
}

func TestDocLatchTableInSync(t *testing.T) {
	table := LatchTable()

	// Doc table == LatchTable(), row for row.
	doc := parseDocTable(t)
	if len(doc) != len(table) {
		t.Fatalf("%s has %d latch rows, lint.LatchTable() has %d", archDoc, len(doc), len(table))
	}
	for i, want := range table {
		if doc[i] != want {
			t.Errorf("latch table row %d: doc says %+v, lint.LatchTable() says %+v", i, doc[i], want)
		}
	}

	// Every table row is backed by a //tsb:latch directive on the field,
	// and every directive in the source appears in the table.
	src := scanSourceLatches(t)
	for _, want := range table {
		got, ok := src[want.Object]
		if !ok {
			t.Errorf("lint.LatchTable() lists %s but the field carries no //tsb:latch directive", want.Object)
			continue
		}
		if got != want {
			t.Errorf("%s: directive says %+v, lint.LatchTable() says %+v", want.Object, got, want)
		}
	}
	byObject := make(map[string]LatchEntry, len(table))
	for _, e := range table {
		byObject[e.Object] = e
	}
	for obj, got := range src {
		if _, ok := byObject[obj]; !ok {
			t.Errorf("%s carries //tsb:latch (%+v) but is missing from lint.LatchTable() and the %s table", obj, got, archDoc)
		}
	}
}
