package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file holds the shared lock-state simulator: an abstract
// interpretation of a function body that tracks which latches are held
// at each point. latchorder, latchio, and unlockpath are thin hook sets
// over it.
//
// The model is deliberately conservative in the direction of few false
// positives (this runs as a blocking CI gate):
//
//   - Branches are simulated per-path; at merge points the held set is
//     the intersection of the surviving paths, and a latch released on
//     one path counts as released.
//   - Loop bodies are simulated (so returns inside them are checked)
//     but the held set at loop exit reverts to the loop-entry state.
//     This tolerates the latch hand-off patterns that acquire and
//     release across iterations (DB.Compact's lock-all-shards loops,
//     the merge cursor's one-shard-at-a-time walk).
//   - Function literals are simulated inline when invoked immediately
//     or passed to a //tsb:wraps callee; otherwise they are analyzed
//     as independent functions starting from an empty held set.

// heldLatch is one entry of the abstract held-latch stack.
type heldLatch struct {
	key      string     // instance key: rendered expr ("sh.mu") or "state:<name>"
	spec     *LatchSpec // nil for mutexes outside the declared hierarchy
	excl     bool       // held in write/exclusive mode
	pos      token.Pos  // acquisition site
	deferred bool       // released by defer (or owned by a //tsb:wraps wrapper)
}

func (h *heldLatch) describe() string {
	if h.spec != nil {
		return "\"" + h.spec.Name + "\""
	}
	return h.key
}

type simState struct {
	held []*heldLatch
}

func (s *simState) clone() *simState {
	return &simState{held: append([]*heldLatch(nil), s.held...)}
}

func (s *simState) push(h *heldLatch) { s.held = append(s.held, h) }

// release removes the most recent entry with the given key.
func (s *simState) release(key string) {
	for i := len(s.held) - 1; i >= 0; i-- {
		if s.held[i].key == key {
			s.held = append(s.held[:i], s.held[i+1:]...)
			return
		}
	}
}

// releaseName removes the most recent entry whose latch name matches.
func (s *simState) releaseName(name string) {
	for i := len(s.held) - 1; i >= 0; i-- {
		if s.held[i].spec != nil && s.held[i].spec.Name == name {
			s.held = append(s.held[:i], s.held[i+1:]...)
			return
		}
	}
}

func (s *simState) markDeferred(key string) {
	for i := len(s.held) - 1; i >= 0; i-- {
		if s.held[i].key == key {
			s.held[i].deferred = true
			return
		}
	}
}

func (s *simState) markDeferredName(name string) {
	for i := len(s.held) - 1; i >= 0; i-- {
		if s.held[i].spec != nil && s.held[i].spec.Name == name {
			s.held[i].deferred = true
			return
		}
	}
}

// live returns the held latches not covered by a deferred release.
func (s *simState) live() []*heldLatch {
	var out []*heldLatch
	for _, h := range s.held {
		if !h.deferred {
			out = append(out, h)
		}
	}
	return out
}

func intersectHeld(a, b []*heldLatch) []*heldLatch {
	var out []*heldLatch
	for _, h := range a {
		for _, g := range b {
			if g.key == h.key {
				if g.deferred && !h.deferred {
					h.deferred = true
				}
				out = append(out, h)
				break
			}
		}
	}
	return out
}

type simHooks struct {
	// onAcquire fires when a latch is about to be acquired; held is the
	// current stack (not yet including the new latch).
	onAcquire func(h *heldLatch, held []*heldLatch)
	// onIO fires at a device-I/O call.
	onIO func(pos token.Pos, what string, held []*heldLatch)
	// onCall fires at calls to same-package functions, for one-level
	// call-graph checks. skip lists latch names already handled via
	// directive facts at this call site.
	onCall func(pos token.Pos, fn *types.Func, skip map[string]bool, held []*heldLatch)
	// onReturn fires at each return statement with the live held set.
	onReturn func(pos token.Pos, held []*heldLatch)
	// onEnd fires when the body falls off the end with the live held set.
	onEnd func(pos token.Pos, held []*heldLatch)
}

type sim struct {
	u       *Unit
	f       *Facts
	hooks   simHooks
	orphans []*ast.FuncLit
	seen    map[*ast.FuncLit]bool // literals consumed inline (not orphans)

	// frames tracks the body start of the innermost function or inlined
	// function literal: a return is only charged with latches acquired
	// within its own frame (an inline closure returning while the
	// enclosing function holds a latch is the enclosing function's
	// business, not the closure's).
	frames []token.Pos
}

func (s *sim) frameHeld(held []*heldLatch) []*heldLatch {
	if len(s.frames) == 0 {
		return held
	}
	start := s.frames[len(s.frames)-1]
	var out []*heldLatch
	for _, h := range held {
		if h.pos >= start {
			out = append(out, h)
		}
	}
	return out
}

// simulate runs the interpreter over every function declaration in the
// unit (and every function literal, from an empty state, unless the
// literal was consumed inline).
func simulate(u *Unit, f *Facts, hooks simHooks) {
	s := &sim{u: u, f: f, hooks: hooks, seen: make(map[*ast.FuncLit]bool)}
	for _, file := range u.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			s.walkBody(fd.Body, &simState{})
			s.drainOrphans()
		}
	}
}

func (s *sim) drainOrphans() {
	for len(s.orphans) > 0 {
		lit := s.orphans[0]
		s.orphans = s.orphans[1:]
		if s.seen[lit] {
			continue
		}
		s.seen[lit] = true
		s.walkBody(lit.Body, &simState{})
	}
}

func (s *sim) walkBody(body *ast.BlockStmt, st *simState) {
	s.frames = append(s.frames, body.Pos())
	if !s.walkStmts(body.List, st) && s.hooks.onEnd != nil {
		s.hooks.onEnd(body.Rbrace, s.frameHeld(st.live()))
	}
	s.frames = s.frames[:len(s.frames)-1]
}

// walkStmts returns true if every path through the statements exits the
// function (return / panic / terminal branch).
func (s *sim) walkStmts(stmts []ast.Stmt, st *simState) bool {
	for _, stmt := range stmts {
		if s.walkStmt(stmt, st) {
			return true
		}
	}
	return false
}

func (s *sim) walkStmt(stmt ast.Stmt, st *simState) bool {
	switch stmt := stmt.(type) {
	case *ast.ExprStmt:
		s.walkExpr(stmt.X, st)
		return isTerminalCall(stmt.X, s.u)
	case *ast.AssignStmt:
		for _, e := range stmt.Rhs {
			s.walkExpr(e, st)
		}
		for _, e := range stmt.Lhs {
			s.walkExpr(e, st)
		}
	case *ast.IncDecStmt:
		s.walkExpr(stmt.X, st)
	case *ast.DeclStmt:
		if gd, ok := stmt.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s.walkExpr(v, st)
					}
				}
			}
		}
	case *ast.SendStmt:
		s.walkExpr(stmt.Value, st)
		if spec, key, ok := s.tokenLatch(stmt.Chan); ok {
			s.acquire(st, key, spec, true, stmt.Arrow)
		}
	case *ast.DeferStmt:
		s.walkDefer(stmt, st)
	case *ast.GoStmt:
		for _, a := range stmt.Call.Args {
			s.walkExpr(a, st)
		}
		if lit, ok := stmt.Call.Fun.(*ast.FuncLit); ok {
			s.orphans = append(s.orphans, lit)
		}
	case *ast.ReturnStmt:
		for _, e := range stmt.Results {
			s.walkExpr(e, st)
		}
		if s.hooks.onReturn != nil {
			s.hooks.onReturn(stmt.Pos(), s.frameHeld(st.live()))
		}
		return true
	case *ast.IfStmt:
		if stmt.Init != nil {
			s.walkStmt(stmt.Init, st)
		}
		s.walkExpr(stmt.Cond, st)
		thenSt := st.clone()
		elseSt := st.clone()
		thenExits := s.walkStmts(stmt.Body.List, thenSt)
		elseExits := false
		if stmt.Else != nil {
			elseExits = s.walkStmt(stmt.Else, elseSt)
		}
		switch {
		case thenExits && elseExits:
			return true
		case thenExits:
			st.held = elseSt.held
		case elseExits:
			st.held = thenSt.held
		default:
			st.held = intersectHeld(thenSt.held, elseSt.held)
		}
	case *ast.ForStmt:
		if stmt.Init != nil {
			s.walkStmt(stmt.Init, st)
		}
		if stmt.Cond != nil {
			s.walkExpr(stmt.Cond, st)
		}
		body := st.clone()
		s.walkStmts(stmt.Body.List, body)
		if stmt.Post != nil {
			s.walkStmt(stmt.Post, body)
		}
		// Held state reverts to loop entry: see file comment.
		// An infinite loop with no break never falls through.
		if stmt.Cond == nil && !hasBreak(stmt.Body) {
			return true
		}
	case *ast.RangeStmt:
		s.walkExpr(stmt.X, st)
		body := st.clone()
		s.walkStmts(stmt.Body.List, body)
	case *ast.SwitchStmt:
		if stmt.Init != nil {
			s.walkStmt(stmt.Init, st)
		}
		if stmt.Tag != nil {
			s.walkExpr(stmt.Tag, st)
		}
		return s.walkCases(stmt.Body, st, false)
	case *ast.TypeSwitchStmt:
		if stmt.Init != nil {
			s.walkStmt(stmt.Init, st)
		}
		s.walkStmt(stmt.Assign, st)
		return s.walkCases(stmt.Body, st, false)
	case *ast.SelectStmt:
		return s.walkCases(stmt.Body, st, true)
	case *ast.BlockStmt:
		return s.walkStmts(stmt.List, st)
	case *ast.LabeledStmt:
		return s.walkStmt(stmt.Stmt, st)
	case *ast.BranchStmt:
		// break/continue/goto leave this statement list; the held state
		// they carry is reconciled by the loop-entry reversion rule.
		return true
	}
	return false
}

// walkCases simulates each case of a switch or select from a clone of
// the incoming state and merges the survivors by intersection. For a
// select (or a switch with a default), if every case exits then the
// whole statement exits.
func (s *sim) walkCases(body *ast.BlockStmt, st *simState, isSelect bool) bool {
	var survivors []*simState
	hasDefault := false
	sawCase := false
	for _, c := range body.List {
		cs := st.clone()
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				s.walkExpr(e, cs)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				s.walkStmt(c.Comm, cs)
			}
			stmts = c.Body
		}
		sawCase = true
		if !s.walkStmts(stmts, cs) {
			survivors = append(survivors, cs)
		}
	}
	if sawCase && len(survivors) == 0 && (isSelect || hasDefault) {
		return true
	}
	merged := st.held
	if len(survivors) > 0 {
		merged = survivors[0].held
		for _, sv := range survivors[1:] {
			merged = intersectHeld(merged, sv.held)
		}
		if !hasDefault && !isSelect {
			// The switch may match no case at all.
			merged = intersectHeld(merged, st.held)
		}
	}
	st.held = merged
	return false
}

func (s *sim) walkExpr(e ast.Expr, st *simState) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		s.walkCall(e, st)
	case *ast.FuncLit:
		s.orphans = append(s.orphans, e)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			if _, key, ok := s.tokenLatch(e.X); ok {
				st.release(key)
				return
			}
		}
		s.walkExpr(e.X, st)
	case *ast.BinaryExpr:
		s.walkExpr(e.X, st)
		s.walkExpr(e.Y, st)
	case *ast.ParenExpr:
		s.walkExpr(e.X, st)
	case *ast.StarExpr:
		s.walkExpr(e.X, st)
	case *ast.SelectorExpr:
		s.walkExpr(e.X, st)
	case *ast.IndexExpr:
		s.walkExpr(e.X, st)
		s.walkExpr(e.Index, st)
	case *ast.IndexListExpr:
		s.walkExpr(e.X, st)
	case *ast.SliceExpr:
		s.walkExpr(e.X, st)
		s.walkExpr(e.Low, st)
		s.walkExpr(e.High, st)
		s.walkExpr(e.Max, st)
	case *ast.TypeAssertExpr:
		s.walkExpr(e.X, st)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			s.walkExpr(el, st)
		}
	case *ast.KeyValueExpr:
		s.walkExpr(e.Value, st)
	}
}

// lockMethods maps sync method names to (acquire?, exclusive?).
var lockMethods = map[string][2]bool{
	"Lock":    {true, true},
	"RLock":   {true, false},
	"Unlock":  {false, true},
	"RUnlock": {false, false},
}

func (s *sim) walkCall(call *ast.CallExpr, st *simState) {
	// Immediately-invoked function literal: simulate inline, in its own
	// frame (its returns are not charged with outer latches).
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		for _, a := range call.Args {
			s.walkExpr(a, st)
		}
		s.seen[lit] = true
		s.frames = append(s.frames, lit.Body.Pos())
		s.walkStmts(lit.Body.List, st)
		s.frames = s.frames[:len(s.frames)-1]
		return
	}

	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		s.walkExpr(sel.X, st)
		if lk, ok := lockMethods[sel.Sel.Name]; ok && s.isSyncMutexMethod(sel) {
			key := exprKey(sel.X)
			spec := s.latchSpecOfExpr(sel.X)
			if lk[0] {
				s.acquireMutex(st, key, spec, lk[1], call.Pos())
			} else {
				st.release(key)
			}
			return
		}
	} else {
		s.walkExpr(call.Fun, st)
	}

	fn := staticCallee(s.u, call)
	facts := s.f.funcFacts(fn)

	skip := make(map[string]bool)
	if facts != nil {
		for _, name := range facts.Wraps {
			skip[name] = true
			if spec := s.f.specForName(name); spec != nil {
				s.acquire(st, "state:"+name, spec, true, call.Pos())
				st.markDeferredName(name) // released by the wrapper itself
			}
		}
		for _, name := range facts.AcquiresScoped {
			skip[name] = true
			if spec := s.f.specForName(name); spec != nil && s.hooks.onAcquire != nil {
				s.hooks.onAcquire(&heldLatch{key: "state:" + name, spec: spec, excl: true, pos: call.Pos()}, st.held)
			}
		}
		for _, name := range facts.Acquires {
			skip[name] = true
			if spec := s.f.specForName(name); spec != nil {
				s.acquire(st, "state:"+name, spec, true, call.Pos())
			}
		}
	}

	// Arguments; function literals passed to a wrapping callee run with
	// the wrapped latches held, so walk them inline under the current
	// (augmented) state.
	for _, a := range call.Args {
		if lit, ok := a.(*ast.FuncLit); ok && facts != nil && len(facts.Wraps) > 0 {
			s.seen[lit] = true
			s.frames = append(s.frames, lit.Body.Pos())
			s.walkStmts(lit.Body.List, st)
			s.frames = s.frames[:len(s.frames)-1]
			continue
		}
		s.walkExpr(a, st)
	}

	if facts != nil {
		for _, name := range facts.Releases {
			skip[name] = true
			st.releaseName(name)
		}
		if facts.IO && s.hooks.onIO != nil {
			s.hooks.onIO(call.Pos(), calleeName(fn, call), st.held)
		}
	}
	// Pop wrapped latches: the callee released them before returning.
	if facts != nil {
		for _, name := range facts.Wraps {
			st.releaseName(name)
		}
	}

	if facts == nil || !facts.IO {
		if ok, what := isIOCall(s.u, call, fn); ok && s.hooks.onIO != nil {
			s.hooks.onIO(call.Pos(), what, st.held)
		}
	}

	if fn != nil && fn.Pkg() == s.u.Pkg && s.hooks.onCall != nil {
		s.hooks.onCall(call.Pos(), fn, skip, st.held)
	}
}

func (s *sim) walkDefer(d *ast.DeferStmt, st *simState) {
	call := d.Call
	for _, a := range call.Args {
		s.walkExpr(a, st)
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if lk, ok := lockMethods[sel.Sel.Name]; ok && !lk[0] && s.isSyncMutexMethod(sel) {
			st.markDeferred(exprKey(sel.X))
			return
		}
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		s.seen[lit] = true
		s.scanDeferredReleases(lit.Body, st)
		return
	}
	if facts := s.f.funcFacts(staticCallee(s.u, call)); facts != nil {
		for _, name := range facts.Releases {
			st.markDeferredName(name)
		}
	}
}

// scanDeferredReleases marks latches released anywhere inside a deferred
// function literal (unlocks, token receives, //tsb:releases calls).
func (s *sim) scanDeferredReleases(body ast.Node, st *simState) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if lk, ok := lockMethods[sel.Sel.Name]; ok && !lk[0] && s.isSyncMutexMethod(sel) {
					st.markDeferred(exprKey(sel.X))
				}
			}
			if facts := s.f.funcFacts(staticCallee(s.u, n)); facts != nil {
				for _, name := range facts.Releases {
					st.markDeferredName(name)
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if _, key, ok := s.tokenLatch(n.X); ok {
					st.markDeferred(key)
				}
			}
		}
		return true
	})
}

func (s *sim) acquireMutex(st *simState, key string, spec *LatchSpec, excl bool, pos token.Pos) {
	s.acquire(st, key, spec, excl, pos)
}

func (s *sim) acquire(st *simState, key string, spec *LatchSpec, excl bool, pos token.Pos) {
	h := &heldLatch{key: key, spec: spec, excl: excl, pos: pos}
	if s.hooks.onAcquire != nil {
		s.hooks.onAcquire(h, st.held)
	}
	st.push(h)
}

// isSyncMutexMethod reports whether sel selects a Lock-family method on
// a sync.Mutex or sync.RWMutex value.
func (s *sim) isSyncMutexMethod(sel *ast.SelectorExpr) bool {
	fn, _ := s.u.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync"
}

// latchSpecOfExpr resolves the //tsb:latch spec for a mutex expression
// like sh.mu: the final selector's field object must carry a directive.
func (s *sim) latchSpecOfExpr(e ast.Expr) *LatchSpec {
	obj := fieldObjOf(s.u, e)
	if obj == nil {
		return nil
	}
	return s.f.latchOf(obj)
}

// tokenLatch reports whether e is a selector of a token-kind latch
// channel field, returning its spec and instance key.
func (s *sim) tokenLatch(e ast.Expr) (*LatchSpec, string, bool) {
	obj := fieldObjOf(s.u, e)
	if obj == nil {
		return nil, "", false
	}
	spec := s.f.latchOf(obj)
	if spec == nil || spec.Kind != "token" {
		return nil, "", false
	}
	return spec, exprKey(e), true
}

// fieldObjOf resolves the object selected/named by e (unwrapping parens).
func fieldObjOf(u *Unit, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return fieldObjOf(u, e.X)
	case *ast.SelectorExpr:
		if selx, ok := u.Info.Selections[e]; ok {
			return selx.Obj()
		}
		return u.Info.Uses[e.Sel]
	case *ast.Ident:
		return u.Info.Uses[e]
	}
	return nil
}

// staticCallee resolves the statically-known *types.Func a call invokes,
// or nil for dynamic calls (function values, builtins, conversions).
func staticCallee(u *Unit, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := u.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := u.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func calleeName(fn *types.Func, call *ast.CallExpr) string {
	if fn != nil {
		return fn.Name()
	}
	return exprKey(call.Fun)
}

// isIOCall reports whether a call performs write-side device I/O, by
// structure rather than by table: os mutating functions, and Sync /
// Write-family methods on types from I/O packages.
func isIOCall(u *Unit, call *ast.CallExpr, fn *types.Func) (bool, string) {
	if fn == nil {
		return false, ""
	}
	// The observability substrate is never device I/O: its instruments
	// record with atomics, so even a Sync-shaped method there is safe
	// under any latch.
	if fn.Pkg() != nil && obsPackages[fn.Pkg().Path()] {
		return false, ""
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "os" {
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() == nil && osIOFuncs[fn.Name()] {
			return true, "os." + fn.Name()
		}
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false, ""
	}
	if !ioMethodNames[fn.Name()] {
		return false, ""
	}
	if fn.Name() == "Sync" && isNiladicError(sig) {
		return true, recvTypeName(sig) + ".Sync"
	}
	if recvPkg(sig) != "" && ioPackages[recvPkg(sig)] {
		return true, recvTypeName(sig) + "." + fn.Name()
	}
	return false, ""
}

func isNiladicError(sig *types.Signature) bool {
	if sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	return sig.Results().At(0).Type().String() == "error"
}

func recvPkg(sig *types.Signature) string {
	t := types.Unalias(sig.Recv().Type())
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
		return named.Obj().Pkg().Path()
	}
	return ""
}

func recvTypeName(sig *types.Signature) string {
	t := types.Unalias(sig.Recv().Type())
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// isTerminalCall reports whether the expression statement never returns
// (panic, os.Exit, runtime.Goexit, log.Fatal*, testing fatals).
func isTerminalCall(e ast.Expr, u *Unit) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		fn := staticCallee(u, call)
		if fn == nil || fn.Pkg() == nil {
			return false
		}
		switch fn.Pkg().Path() {
		case "os":
			return fn.Name() == "Exit"
		case "runtime":
			return fn.Name() == "Goexit"
		case "log":
			return fn.Name() == "Fatal" || fn.Name() == "Fatalf" || fn.Name() == "Fatalln"
		case "testing":
			return fn.Name() == "Fatal" || fn.Name() == "Fatalf" || fn.Name() == "FailNow" || fn.Name() == "Skip" || fn.Name() == "Skipf" || fn.Name() == "SkipNow"
		}
	}
	return false
}

// hasBreak reports whether a loop body contains a break that targets the
// loop itself (nested loops and switches shadow plain breaks, which is
// approximated by not descending into them).
func hasBreak(body *ast.BlockStmt) bool {
	found := false
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			return false
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			// A plain break inside these targets the statement, not the
			// loop; a labeled break is out of model (rare) — treat the
			// loop as breakable to stay conservative.
			return true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK {
				found = true
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return found
}
