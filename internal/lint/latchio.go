package lint

import (
	"go/token"
	"go/types"
)

// LatchIOAnalyzer enforces the "no device I/O under a write latch"
// rule: the page-data latches (hierarchy levels 5-6: shard, store,
// secondary) exist to protect in-memory page state for microseconds,
// and the whole PR 5/6 performance story — background burns, fuzzy
// checkpoint capture — depends on never blocking a writer behind a
// device. Any call classified as write-side device I/O (structurally,
// by //tsb:io directive, or by the built-in table) reachable while one
// of those latches is held in exclusive mode is reported. The few
// deliberate exceptions (ApplySplit's swap install, the compaction
// region install, inline burn fallback when the migrator queue is
// saturated) each carry a visible //tsb:allow latchio directive.
var LatchIOAnalyzer = &Analyzer{
	Name: "latchio",
	Doc:  "flag device I/O reachable while a data write latch is held",
	Run:  runLatchIO,
}

// writeLatch reports whether h is a data latch held in write mode.
func writeLatch(h *heldLatch) bool {
	return h.spec != nil && h.excl &&
		h.spec.Level >= dataLatchMin && h.spec.Level <= dataLatchMax
}

func runLatchIO(pass *Pass) {
	report := func(pos token.Pos, what string, held []*heldLatch, via string) {
		for _, h := range held {
			if writeLatch(h) {
				pass.Reportf(pos, "latchio: device I/O (%s)%s while write latch %q (acquired at %s) is held",
					what, via, h.spec.Name, pass.Fset.Position(h.pos))
				return
			}
		}
	}

	simulate(pass.Unit, pass.Facts, simHooks{
		onIO: func(pos token.Pos, what string, held []*heldLatch) {
			report(pos, what, held, "")
		},
		onCall: func(pos token.Pos, fn *types.Func, skip map[string]bool, held []*heldLatch) {
			sum := pass.Facts.summaryOf(fn)
			if sum == nil || !sum.ioPos.IsValid() {
				return
			}
			report(pos, fn.Name(), held, " via call to "+fn.Name())
		},
	})
}
