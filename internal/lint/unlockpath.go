package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// UnlockPathAnalyzer checks that every Lock/RLock is released by a
// defer or explicitly on every return path of the acquiring function.
// Functions implementing a deliberate latch hand-off (the PR 2 cursor
// pattern: return to the caller with the latch held, the caller
// releases) opt out with //tsb:handoff on their declaration. The check
// applies to every sync.Mutex/RWMutex, annotated or not; token and
// state latches (commit token, migrator fence) have their own
// release discipline and are exempt.
var UnlockPathAnalyzer = &Analyzer{
	Name: "unlockpath",
	Doc:  "check that every Lock/RLock is released on every return path or by defer",
	Run:  runUnlockPath,
}

func runUnlockPath(pass *Pass) {
	handoffRanges := handoffBodies(pass)

	check := func(pos token.Pos, held []*heldLatch, where string) {
		for _, r := range handoffRanges {
			if pos >= r[0] && pos < r[1] {
				return
			}
		}
		for _, h := range held {
			if h.spec != nil && (h.spec.Kind == "token" || h.spec.Kind == "state") {
				continue
			}
			pass.Reportf(pos, "unlockpath: %s locked at %s is still held at this %s; release it on every path, defer the unlock, or annotate the function //tsb:handoff",
				h.describe(), pass.Fset.Position(h.pos), where)
		}
	}

	simulate(pass.Unit, pass.Facts, simHooks{
		onReturn: func(pos token.Pos, held []*heldLatch) {
			check(pos, held, "return")
		},
		onEnd: func(pos token.Pos, held []*heldLatch) {
			check(pos, held, "fall-through function end")
		},
	})
}

// handoffBodies returns the body ranges of //tsb:handoff functions.
func handoffBodies(pass *Pass) [][2]token.Pos {
	var out [][2]token.Pos
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			if ff := pass.Facts.funcFacts(fn); ff != nil && ff.Handoff {
				out = append(out, [2]token.Pos{fd.Body.Pos(), fd.Body.End()})
			}
		}
	}
	return out
}
