package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// funcSummary is the one-level call-graph summary of a same-package
// function: which hierarchy latches its body acquires anywhere (path
// insensitively) and whether it reaches device I/O. latchorder and
// latchio consult the summary of a direct callee, which together with
// the intraprocedural walk gives the "intraprocedural + one level"
// analysis depth.
type funcSummary struct {
	acquires map[string]token.Pos // latch name -> representative site
	ioPos    token.Pos            // first unsuppressed device-I/O site (NoPos if none)
}

func (f *Facts) buildSummaries() {
	u := f.unit
	for _, file := range u.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := u.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			f.summaries[fn] = f.collectSummary(fd.Body)
		}
	}
}

func (f *Facts) summaryOf(fn *types.Func) *funcSummary {
	if fn == nil {
		return nil
	}
	return f.summaries[fn.Origin()]
}

func (f *Facts) collectSummary(body *ast.BlockStmt) *funcSummary {
	u := f.unit
	sum := &funcSummary{acquires: make(map[string]token.Pos)}
	addAcq := func(name string, pos token.Pos) {
		if _, ok := sum.acquires[name]; !ok {
			sum.acquires[name] = pos
		}
	}
	markIO := func(pos token.Pos) {
		if sum.ioPos.IsValid() {
			return
		}
		if f.allowed("latchio", u.Fset.Position(pos), pos) {
			return
		}
		sum.ioPos = pos
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if obj := fieldObjOf(u, n.Chan); obj != nil {
				if spec := f.latchOf(obj); spec != nil && spec.Kind == "token" {
					addAcq(spec.Name, n.Arrow)
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if lk, ok := lockMethods[sel.Sel.Name]; ok && lk[0] {
					if obj := fieldObjOf(u, sel.X); obj != nil {
						if spec := f.latchOf(obj); spec != nil {
							addAcq(spec.Name, n.Pos())
						}
					}
				}
			}
			fn := staticCallee(u, n)
			if facts := f.funcFacts(fn); facts != nil {
				for _, name := range facts.Acquires {
					addAcq(name, n.Pos())
				}
				for _, name := range facts.AcquiresScoped {
					addAcq(name, n.Pos())
				}
				for _, name := range facts.Wraps {
					addAcq(name, n.Pos())
				}
				if facts.IO {
					markIO(n.Pos())
				}
			} else if ok, _ := isIOCall(u, n, fn); ok {
				markIO(n.Pos())
			}
		}
		return true
	})
	return sum
}
