package lint

// The fixture harness: a miniature analysistest. Each analyzer has a
// package of fixture files under testdata/src/<analyzer>/ annotated with
// the usual `// want` comments:
//
//	f.Sync() // want `stickyerr: error result of File\.Sync is discarded`
//
// A want comment holds one or more quoted regular expressions (raw
// backquoted or double-quoted); each must match exactly one diagnostic
// reported on that line, and every diagnostic must be claimed by a want.
// Fixtures are type-checked against the real standard library via the
// source importer, so os.File, sync.Mutex etc. behave as in production
// code.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// loadFixture parses and type-checks the fixture package
// testdata/src/<name>. A subdirectory of the fixture is type-checked
// first as an importable dependency package whose import path is the
// directory name with "__" read as "/" (so repro__internal__obs is
// importable as "repro/internal/obs") — how a fixture stands in for a
// real repo package the analyzer special-cases by path.
func loadFixture(t *testing.T, name string) *Unit {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	imp := &fixtureImporter{
		base: importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*types.Package),
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() {
			path := strings.ReplaceAll(e.Name(), "__", "/")
			imp.pkgs[path] = checkFixturePkg(t, fset, filepath.Join(dir, e.Name()), path, imp, NewInfo())
			continue
		}
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(name, fset, files, info)
	if err != nil {
		t.Fatalf("type-check fixture: %v", err)
	}
	return &Unit{Fset: fset, Files: files, Pkg: pkg, Info: info}
}

// checkFixturePkg type-checks one fixture dependency directory under
// its synthetic import path.
func checkFixturePkg(t *testing.T, fset *token.FileSet, dir, path string, imp types.Importer, info *types.Info) *types.Package {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dep dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse fixture dep: %v", err)
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		t.Fatalf("type-check fixture dep %s: %v", path, err)
	}
	return pkg
}

// fixtureImporter resolves fixture dependency packages before falling
// back to the source importer for the standard library.
type fixtureImporter struct {
	base types.Importer
	pkgs map[string]*types.Package
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := fi.pkgs[path]; ok {
		return p, nil
	}
	return fi.base.Import(path)
}

// expectation is one `// want` regexp waiting for a diagnostic.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// collectWants scans every comment in the unit for want expectations.
func collectWants(t *testing.T, u *Unit) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, file := range u.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "want ")
				if idx < 0 {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				for _, pat := range parseWantPatterns(t, pos, text[idx+len("want "):]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// parseWantPatterns splits `"re1" `+"`re2`"+` ...` into its quoted parts.
func parseWantPatterns(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern", pos)
			}
			pats = append(pats, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		case '"':
			// Walk to the closing quote, honoring escapes, then Unquote.
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern", pos)
			}
			pat, err := strconv.Unquote(s[:end+1])
			if err != nil {
				t.Fatalf("%s: bad want pattern %s: %v", pos, s[:end+1], err)
			}
			pats = append(pats, pat)
			s = strings.TrimSpace(s[end+1:])
		default:
			return pats // trailing prose after the patterns
		}
	}
	return pats
}

// runFixture runs one analyzer over its fixture package and matches the
// diagnostics against the want comments.
func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	u := loadFixture(t, name)
	wants := collectWants(t, u)
	diags := Run(u, []*Analyzer{a})

	var unexpected []string
	for _, d := range diags {
		claimed := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(fmt.Sprintf("%s: %s", d.Analyzer, d.Message)) ||
				w.re.MatchString(d.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			unexpected = append(unexpected, d.String())
		}
	}
	for _, d := range unexpected {
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments: it cannot demonstrate the rule", name)
	}
}

func TestLatchOrderFixture(t *testing.T)    { runFixture(t, LatchOrderAnalyzer, "latchorder") }
func TestLatchIOFixture(t *testing.T)       { runFixture(t, LatchIOAnalyzer, "latchio") }
func TestUnlockPathFixture(t *testing.T)    { runFixture(t, UnlockPathAnalyzer, "unlockpath") }
func TestDurableRenameFixture(t *testing.T) { runFixture(t, DurableRenameAnalyzer, "durablerename") }
func TestStickyErrFixture(t *testing.T)     { runFixture(t, StickyErrAnalyzer, "stickyerr") }
