package lint

import (
	"go/token"
	"go/types"
)

// LatchOrderAnalyzer enforces the latch hierarchy: a function may only
// acquire latches at strictly greater levels than every latch it
// already holds (level 1 is the coarsest). Acquiring a latch with the
// same name is allowed across *different* instances (the shard latches
// are taken in index order by convention), but re-acquiring the same
// instance is self-deadlock and is always reported. The check is
// intraprocedural plus one call-graph level: a call to a same-package
// function is charged with every latch that function's body acquires,
// and //tsb:acquires / //tsb:locks / //tsb:wraps directives (or the
// built-in table) extend that across package boundaries.
var LatchOrderAnalyzer = &Analyzer{
	Name: "latchorder",
	Doc:  "check latch acquisitions against the declared //tsb:latch hierarchy",
	Run:  runLatchOrder,
}

func runLatchOrder(pass *Pass) {
	checkAcquire := func(h *heldLatch, held []*heldLatch, via string) {
		for _, g := range held {
			if g.key == h.key && via == "" {
				pass.Reportf(h.pos, "latchorder: re-acquiring %s already held (acquired at %s): self-deadlock",
					h.describe(), pass.Fset.Position(g.pos))
				return
			}
			if h.spec == nil || g.spec == nil {
				continue
			}
			if h.spec.Name == g.spec.Name {
				continue // same latch class, ordered by convention (e.g. shards in index order)
			}
			if h.spec.Level <= g.spec.Level {
				pass.Reportf(h.pos, "latchorder: acquiring%s latch %q (level %d) while holding %q (level %d) violates the latch hierarchy",
					via, h.spec.Name, h.spec.Level, g.spec.Name, g.spec.Level)
				return
			}
		}
	}

	simulate(pass.Unit, pass.Facts, simHooks{
		onAcquire: func(h *heldLatch, held []*heldLatch) {
			checkAcquire(h, held, "")
		},
		onCall: func(pos token.Pos, fn *types.Func, skip map[string]bool, held []*heldLatch) {
			sum := pass.Facts.summaryOf(fn)
			if sum == nil {
				return
			}
			for name := range sum.acquires {
				if skip[name] {
					continue
				}
				spec := pass.Facts.specForName(name)
				if spec == nil {
					continue
				}
				checkAcquire(&heldLatch{key: "call:" + name, spec: spec, excl: true, pos: pos}, held,
					" (via call to "+fn.Name()+")")
			}
		},
	})
}
