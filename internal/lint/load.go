package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Standalone package loading: `tsbvet ./...` (and the in-repo
// self-check test) cannot rely on `go vet` to hand over per-package
// configs, so this loader shells out to `go list -export -deps -json`,
// which compiles export data for every dependency into the build cache,
// then type-checks only the target packages' source against that export
// data. No network, no module downloads, standard library only.

type listPackage struct {
	Dir        string
	ImportPath string
	Standard   bool
	Export     string
	GoFiles    []string
	Module     *struct {
		Path      string
		Main      bool
		GoVersion string
	}
	DepOnly bool
	Error   *struct{ Err string }
}

// LoadPackages loads and type-checks the module packages matched by
// patterns, rooted at dir (a directory inside the module).
func LoadPackages(dir string, patterns ...string) ([]*Unit, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exportFile := make(map[string]string)
	var targets []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exportFile[p.ImportPath] = p.Export
		}
		if !p.DepOnly && p.Module != nil && p.Module.Main {
			cp := p
			targets = append(targets, &cp)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exportFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var units []*Unit
	for _, p := range targets {
		var files []*ast.File
		for _, name := range p.GoFiles {
			path := name
			if !filepath.IsAbs(path) {
				path = filepath.Join(p.Dir, name)
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("parse %s: %v", path, err)
			}
			files = append(files, f)
		}
		info := NewInfo()
		conf := types.Config{
			Importer: importerFunc(func(path string) (*types.Package, error) {
				if path == "unsafe" {
					return types.Unsafe, nil
				}
				return imp.Import(path)
			}),
			Sizes: types.SizesFor("gc", envGOARCH()),
		}
		if p.Module != nil && p.Module.GoVersion != "" {
			conf.GoVersion = "go" + p.Module.GoVersion
		}
		pkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %v", p.ImportPath, err)
		}
		units = append(units, &Unit{Fset: fset, Files: files, Pkg: pkg, Info: info})
	}
	return units, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func envGOARCH() string {
	if v := os.Getenv("GOARCH"); v != "" {
		return v
	}
	out, err := exec.Command("go", "env", "GOARCH").Output()
	if err != nil {
		return "amd64"
	}
	return string(bytes.TrimSpace(out))
}
