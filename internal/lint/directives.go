package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// LatchSpec describes one latch declared by a //tsb:latch directive or
// the built-in table.
type LatchSpec struct {
	Name  string
	Level int
	Kind  string // mutex | rwmutex | token | state
}

// FuncFacts describes what a function does to the latch state or the
// devices, from //tsb: directives on its declaration or the built-in
// table.
type FuncFacts struct {
	IO             bool     // performs device I/O
	Sticky         bool     // its error result must not be discarded
	Syncs          bool     // performs an fsync (satisfies durablerename)
	Handoff        bool     // intentionally returns with a latch held
	Acquires       []string // leaves these latches held on return
	Releases       []string // releases these latches
	AcquiresScoped []string // takes and releases these inside the call
	Wraps          []string // runs its func-typed argument with these held
	Allow          map[string]bool
}

// Facts is everything the analyzers know about one Unit beyond the type
// information: parsed directives plus the built-in cross-package table.
type Facts struct {
	unit *Unit

	fieldLatch map[types.Object]*LatchSpec // latch fields declared in this package
	fn         map[types.Object]*FuncFacts // directive facts on this package's functions
	funcRanges map[types.Object][2]token.Pos
	levels     map[string]int // latch name -> level (builtin + local)

	// allow: filename -> line of the //tsb:allow comment -> analyzers.
	allow map[string]map[int]map[string]bool
	// funcAllow: analyzers allowed for entire function body ranges.
	funcAllow []allowRange

	builtinFn map[string]*FuncFacts

	summaries map[*types.Func]*funcSummary
}

type allowRange struct {
	start, end token.Pos
	analyzers  map[string]bool
}

// BuildFacts parses every //tsb: directive in the unit and merges the
// built-in table.
func BuildFacts(u *Unit) *Facts {
	f := &Facts{
		unit:       u,
		fieldLatch: make(map[types.Object]*LatchSpec),
		fn:         make(map[types.Object]*FuncFacts),
		funcRanges: make(map[types.Object][2]token.Pos),
		levels:     latchLevels(),
		allow:      make(map[string]map[int]map[string]bool),
		builtinFn:  builtinFuncFacts(),
		summaries:  make(map[*types.Func]*funcSummary),
	}
	for _, file := range u.Files {
		f.scanFile(file)
	}
	f.buildSummaries()
	return f
}

func (f *Facts) scanFile(file *ast.File) {
	// Line-level allow directives can appear in any comment group.
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if names, ok := parseAllow(c.Text); ok {
				pos := f.unit.Fset.Position(c.Pos())
				byLine := f.allow[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					f.allow[pos.Filename] = byLine
				}
				set := byLine[pos.Line]
				if set == nil {
					set = make(map[string]bool)
					byLine[pos.Line] = set
				}
				for _, n := range names {
					set[n] = true
				}
			}
		}
	}

	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.StructType:
			for _, field := range n.Fields.List {
				spec := latchSpecFromComments(field.Doc, field.Comment)
				if spec == nil || len(field.Names) == 0 {
					continue
				}
				if spec.Kind == "" {
					spec.Kind = kindOfFieldType(f.unit, field)
				}
				if obj := f.unit.Info.Defs[field.Names[0]]; obj != nil {
					f.fieldLatch[obj] = spec
					f.levels[spec.Name] = spec.Level
				}
			}
		case *ast.FuncDecl:
			ff := funcFactsFromDoc(n.Doc)
			if ff == nil {
				return true
			}
			if obj := f.unit.Info.Defs[n.Name]; obj != nil {
				f.fn[obj] = ff
				if n.Body != nil {
					f.funcRanges[obj] = [2]token.Pos{n.Body.Pos(), n.Body.End()}
					if len(ff.Allow) > 0 {
						f.funcAllow = append(f.funcAllow, allowRange{n.Body.Pos(), n.Body.End(), ff.Allow})
					}
				}
			}
		}
		return true
	})
}

func kindOfFieldType(u *Unit, field *ast.Field) string {
	tv, ok := u.Info.Types[field.Type]
	if !ok {
		return "mutex"
	}
	t := tv.Type
	if _, ok := types.Unalias(t).(*types.Chan); ok {
		return "token"
	}
	s := t.String()
	switch {
	case strings.HasSuffix(s, "sync.RWMutex"):
		return "rwmutex"
	case strings.HasSuffix(s, "sync.Mutex"):
		return "mutex"
	case s == "bool":
		return "state"
	}
	return "mutex"
}

// latchSpecFromComments parses //tsb:latch level=N name=X from a field's
// doc or trailing comment.
func latchSpecFromComments(groups ...*ast.CommentGroup) *LatchSpec {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, "tsb:latch") {
				continue
			}
			spec := &LatchSpec{}
			for _, kv := range strings.Fields(strings.TrimPrefix(text, "tsb:latch")) {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					continue
				}
				switch k {
				case "level":
					if lv, err := strconv.Atoi(v); err == nil {
						spec.Level = lv
					}
				case "name":
					spec.Name = v
				case "kind":
					spec.Kind = v
				}
			}
			if spec.Name != "" && spec.Level > 0 {
				return spec
			}
		}
	}
	return nil
}

func funcFactsFromDoc(doc *ast.CommentGroup) *FuncFacts {
	if doc == nil {
		return nil
	}
	var ff *FuncFacts
	ensure := func() *FuncFacts {
		if ff == nil {
			ff = &FuncFacts{}
		}
		return ff
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if !strings.HasPrefix(text, "tsb:") {
			continue
		}
		verb, rest, _ := strings.Cut(strings.TrimPrefix(text, "tsb:"), " ")
		args := strings.Fields(rest)
		switch verb {
		case "io":
			ensure().IO = true
		case "sticky":
			ensure().Sticky = true
		case "syncs":
			ensure().Syncs = true
		case "handoff":
			ensure().Handoff = true
		case "acquires":
			ensure().Acquires = append(ensure().Acquires, args...)
		case "releases":
			ensure().Releases = append(ensure().Releases, args...)
		case "locks":
			ensure().AcquiresScoped = append(ensure().AcquiresScoped, args...)
		case "wraps":
			ensure().Wraps = append(ensure().Wraps, args...)
		case "allow":
			e := ensure()
			if e.Allow == nil {
				e.Allow = make(map[string]bool)
			}
			for _, a := range args {
				e.Allow[a] = true
			}
		}
	}
	return ff
}

func parseAllow(comment string) ([]string, bool) {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	if !strings.HasPrefix(text, "tsb:allow") {
		return nil, false
	}
	rest := strings.TrimPrefix(text, "tsb:allow")
	// Allow trailing prose after a "--" separator:
	//   //tsb:allow latchio -- split swap installs under the shard latch
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = rest[:i]
	}
	names := strings.Fields(rest)
	if len(names) == 0 {
		return nil, false
	}
	return names, true
}

// allowed reports whether a diagnostic from the named analyzer at the
// given position is suppressed by a //tsb:allow directive on the same
// line, the preceding line, or an enclosing annotated function.
func (f *Facts) allowed(analyzer string, position token.Position, pos token.Pos) bool {
	if byLine := f.allow[position.Filename]; byLine != nil {
		for _, line := range [2]int{position.Line, position.Line - 1} {
			if set := byLine[line]; set != nil && (set[analyzer] || set["all"]) {
				return true
			}
		}
	}
	for _, r := range f.funcAllow {
		if pos >= r.start && pos < r.end && (r.analyzers[analyzer] || r.analyzers["all"]) {
			return true
		}
	}
	return false
}

// latchOf resolves the latch spec (if any) for a mutex/channel selector
// expression's field object.
func (f *Facts) latchOf(obj types.Object) *LatchSpec {
	if obj == nil {
		return nil
	}
	return f.fieldLatch[obj]
}

// funcFacts resolves directive facts for a callee: local directives
// first, then the built-in cross-package table.
func (f *Facts) funcFacts(fn *types.Func) *FuncFacts {
	if fn == nil {
		return nil
	}
	if ff, ok := f.fn[fn.Origin()]; ok {
		return ff
	}
	return f.builtinFn[funcQName(fn)]
}

// levelOf returns the hierarchy level for a latch name (0 if unknown).
func (f *Facts) levelOf(name string) int { return f.levels[name] }

func (f *Facts) specForName(name string) *LatchSpec {
	lv := f.levels[name]
	if lv == 0 {
		return nil
	}
	return &LatchSpec{Name: name, Level: lv}
}
