package lint

// The self-check: the whole module must vet clean. Every deliberate
// exception to an invariant is a //tsb:allow at the site, so "clean"
// here means zero *unsuppressed* diagnostics — exactly what the CI
// `go vet -vettool=tsbvet ./...` gate enforces, checked again here so
// `go test ./...` alone catches a violation.

import "testing"

func TestRepoHasNoUnsuppressedDiagnostics(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-module vet in -short mode")
	}
	units, err := LoadPackages("../..", "./...")
	if err != nil {
		t.Fatalf("load packages: %v", err)
	}
	if len(units) == 0 {
		t.Fatal("LoadPackages returned no packages")
	}
	for _, u := range units {
		for _, d := range RunAll(u) {
			t.Errorf("%s", d)
		}
	}
}
