package lint

import (
	"go/ast"
	"go/token"
)

// DurableRenameAnalyzer preserves the checkpoint install contract: an
// os.Rename that publishes a file (the tmp+fsync+rename protocol from
// docs/ARCHITECTURE.md's durability section) must be dominated by a
// Sync of the temp file. The approximation is lexical: within the
// function containing the rename, some .Sync() call (or a call to a
// //tsb:syncs-annotated helper) must appear earlier in source order.
// Renames that genuinely need no sync (none today) take
// //tsb:allow durablerename.
var DurableRenameAnalyzer = &Analyzer{
	Name: "durablerename",
	Doc:  "check that os.Rename installs are preceded by a Sync of the temp file",
	Run:  runDurableRename,
}

func runDurableRename(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkRenames(pass, fd.Body)
		}
	}
}

func checkRenames(pass *Pass, body *ast.BlockStmt) {
	var syncs, renames []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(pass.Unit, call)
		if fn == nil {
			return true
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "os" && fn.Name() == "Rename" {
			renames = append(renames, call.Pos())
			return true
		}
		if fn.Name() == "Sync" {
			syncs = append(syncs, call.Pos())
			return true
		}
		if ff := pass.Facts.funcFacts(fn); ff != nil && ff.Syncs {
			syncs = append(syncs, call.Pos())
		}
		return true
	})
	for _, r := range renames {
		synced := false
		for _, s := range syncs {
			if s < r {
				synced = true
				break
			}
		}
		if !synced {
			pass.Reportf(r, "durablerename: os.Rename installs a file without a preceding Sync of the temp file; fsync before rename or annotate //tsb:allow durablerename")
		}
	}
}
