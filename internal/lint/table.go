package lint

// This file is the cross-package half of the directive system. A vet
// unit sees only one package's source: comments (and therefore //tsb:
// directives) on imported packages are invisible, so the facts that
// matter across package boundaries are restated here as a table keyed
// by qualified name. The docsync test asserts this table, the //tsb:
// directives in the source, and the docs/ARCHITECTURE.md latch table
// never drift apart.

// LatchEntry is one row of the latch hierarchy.
type LatchEntry struct {
	Level  int    // 1 is the coarsest; holders may only acquire strictly greater levels
	Name   string // stable latch name used in directives and diagnostics
	Object string // qualified field: pkgpath.Type.field
	Kind   string // mutex | rwmutex | token | state
}

// Latch hierarchy levels with structural meaning. Levels dataLatchMin
// through dataLatchMax are the page-data latches: holding one of these
// in write mode must not reach device I/O (analyzer latchio). Level
// leafLevel mutexes are short leaves; deviceLevel mutexes sit below the
// leaves because the file stores and the buffer pool call into devices
// while holding their own mutex.
const (
	dataLatchMin = 5
	dataLatchMax = 6
	leafLevel    = 7
	deviceLevel  = 8
)

// LatchTable returns the repo's latch hierarchy. docs/ARCHITECTURE.md
// renders the same rows between the tsb:latch-table markers.
func LatchTable() []LatchEntry {
	return []LatchEntry{
		{1, "checkpoint", "repro/internal/db.DB.cpMu", "mutex"},
		{2, "migrator-fence", "repro/internal/db.migrator.paused", "state"},
		{3, "commit-token", "repro/internal/txn.Manager.leaderCh", "token"},
		{4, "wal", "repro/internal/wal.Log.mu", "mutex"},
		{5, "shard", "repro/internal/db.shard.mu", "rwmutex"},
		{5, "store", "repro/internal/txn.LatchedStore.mu", "rwmutex"},
		{6, "secondary", "repro/internal/db.DB.secMu", "rwmutex"},
		{7, "commit-queue", "repro/internal/txn.Manager.qMu", "mutex"},
		{7, "lock-table", "repro/internal/txn.Manager.lockMu", "mutex"},
		{7, "migrator-queue", "repro/internal/db.migrator.mu", "mutex"},
		{7, "buffer-pool", "repro/internal/buffer.Pool.mu", "mutex"},
		{7, "page-file", "repro/internal/pagestore.PageFile.mu", "mutex"},
		{7, "burn-file", "repro/internal/pagestore.BurnFile.mu", "mutex"},
		{7, "server", "repro/internal/server.Server.mu", "mutex"},
		{7, "server-cursors", "repro/internal/server.cursorTable.mu", "mutex"},
		{8, "magnetic-disk", "repro/internal/storage.MagneticDisk.mu", "mutex"},
		{8, "faulty-pages", "repro/internal/storage.FaultyPages.mu", "mutex"},
		{8, "worm-disk", "repro/internal/storage.WORMDisk.mu", "mutex"},
		{8, "tear-plan", "repro/internal/storage.TearPlan.mu", "mutex"},
	}
}

// latchLevels maps latch name -> level for the built-in table.
func latchLevels() map[string]int {
	m := make(map[string]int)
	for _, e := range LatchTable() {
		m[e.Name] = e.Level
	}
	return m
}

// builtinFuncFacts are the cross-package function facts: what imported
// functions acquire, wrap, or do. Keys are funcQName strings. These
// mirror //tsb: directives on the declarations themselves (checked by
// the docsync test via directive scanning).
func builtinFuncFacts() map[string]*FuncFacts {
	return map[string]*FuncFacts{
		// The commit leadership token. Quiesce runs its argument with
		// the token held; Update/View-style entry points take it scoped
		// inside the call.
		"repro/internal/txn.Manager.Quiesce": {Wraps: []string{"commit-token"}},
		"repro/internal/db.DB.quiesceTimed":  {Wraps: []string{"commit-token"}},
		"repro/internal/txn.Txn.Commit":      {AcquiresScoped: []string{"commit-token", "commit-queue"}},

		// The migrator write fence.
		"repro/internal/db.migrator.pause":  {Acquires: []string{"migrator-fence"}},
		"repro/internal/db.migrator.resume": {Releases: []string{"migrator-fence"}},

		// Tree mutators that can reach the burn device. Insert may burn
		// a time split inline when the migrator queue is saturated;
		// ApplySplit installs a migrated split (and is the documented
		// //tsb:allow latchio site when called under the shard latch);
		// BurnCapture writes the captured history page to the WORM file.
		"repro/internal/core.Tree.Insert":      {IO: true},
		"repro/internal/core.Tree.ApplySplit":  {IO: true},
		"repro/internal/core.Tree.BurnCapture": {IO: true},

		// Store-level insert paths forward to Tree.Insert.
		"repro/internal/txn.Store.Insert":        {IO: true},
		"repro/internal/db.shardedStore.Insert":  {IO: true},
		"repro/internal/txn.LatchedStore.Insert": {IO: true},

		// Secondary index maintenance inserts into its own tree (and so
		// can split/burn inline).
		"repro/internal/secondary.Index.Apply": {IO: true},

		// Durable write stream: WAL appends, page-file batches, WORM
		// burns, compaction. All are device I/O and all return sticky
		// errors that must not be discarded.
		"repro/internal/wal.Log.AppendBatch":                   {IO: true, Sticky: true},
		"repro/internal/wal.Log.Rotate":                        {IO: true, Sticky: true},
		"repro/internal/wal.Log.RemoveSegmentsBelow":           {IO: true, Sticky: true},
		"repro/internal/wal.WriteCheckpoint":                   {IO: true, Sticky: true, Syncs: true},
		"repro/internal/pagestore.PageFile.WriteBatch":         {IO: true, Sticky: true},
		"repro/internal/pagestore.PageFile.CompleteFlush":      {IO: true, Sticky: true},
		"repro/internal/pagestore.BurnFile.Burn":               {IO: true, Sticky: true},
		"repro/internal/pagestore.BurnFile.CompactRegion":      {IO: true, Sticky: true},
		"repro/internal/pagestore.BurnFile.CompleteCompaction": {IO: true, Sticky: true},

		// Close on the write path: dropping the error can drop the last
		// flush. (os.File.Close is handled structurally by stickyerr.)
		"repro/internal/pagestore.PageFile.Close": {Sticky: true},
		"repro/internal/pagestore.BurnFile.Close": {Sticky: true},
		"repro/internal/wal.Log.Close":            {Sticky: true},
		"repro/internal/db.DB.Close":              {Sticky: true},
	}
}

// ioPackages are packages whose write-side methods count as device I/O
// for latchio even without a table entry: a method named Sync, Write,
// WriteAt, or Truncate on a type from one of these packages writes to a
// device.
var ioPackages = map[string]bool{
	"os":                       true,
	"repro/internal/storage":   true,
	"repro/internal/pagestore": true,
	"repro/internal/wal":       true,
}

// obsPackages are packages whose calls are never device I/O: the
// observability substrate records with atomic operations only, so
// instrumentation is legal under any latch. The structural matchers
// (Sync-shaped methods in particular) skip callees from these packages
// before any other rule fires.
var obsPackages = map[string]bool{
	"repro/internal/obs": true,
}

// osIOFuncs are package-level os functions that touch the filesystem
// (the write side; reads are deliberately not flagged).
var osIOFuncs = map[string]bool{
	"Rename":    true,
	"Remove":    true,
	"RemoveAll": true,
	"Create":    true,
	"OpenFile":  true,
	"WriteFile": true,
	"MkdirAll":  true,
	"Mkdir":     true,
	"Truncate":  true,
}

// ioMethodNames are method names that count as write-side device I/O
// when the receiver type lives in an ioPackages package.
var ioMethodNames = map[string]bool{
	"Sync":     true,
	"Write":    true,
	"WriteAt":  true,
	"Truncate": true,
}
