package lint

import (
	"go/ast"
	"go/types"
)

// StickyErrAnalyzer enforces the sticky-error discipline of the durable
// write stream: the error results of Sync, Close on the write path, and
// WAL/device append calls carry permanent device failure and must not
// be silently discarded. A bare call statement discards them; an
// explicit `_ = f.Close()` is a visible decision and is allowed.
// `defer f.Close()` is the accepted read-path idiom and is allowed;
// `defer f.Sync()` is not (the error is unrecoverable by then and the
// sync is not ordered against anything).
var StickyErrAnalyzer = &Analyzer{
	Name: "stickyerr",
	Doc:  "check that Sync/Close/append errors on the durable write path are not discarded",
	Run:  runStickyErr,
}

func runStickyErr(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					checkSticky(pass, call, false)
				}
			case *ast.DeferStmt:
				checkSticky(pass, n.Call, true)
			case *ast.GoStmt:
				checkSticky(pass, n.Call, true)
			}
			return true
		})
	}
}

func checkSticky(pass *Pass, call *ast.CallExpr, deferred bool) {
	fn := staticCallee(pass.Unit, call)
	if fn == nil || !returnsError(fn) {
		return
	}
	what, sticky := classifySticky(pass, fn)
	if !sticky {
		return
	}
	if deferred && fn.Name() != "Sync" {
		// defer f.Close() and defer os.RemoveAll(dir) are accepted
		// cleanup idioms (write paths Close/remove explicitly and check);
		// defer f.Sync() is not — by then the error orders nothing.
		return
	}
	how := "discarded"
	if deferred {
		how = "discarded by defer"
	}
	pass.Reportf(call.Pos(), "stickyerr: error result of %s is %s; durable-path errors are sticky — check it or discard explicitly with `_ =`", what, how)
}

func classifySticky(pass *Pass, fn *types.Func) (string, bool) {
	if ff := pass.Facts.funcFacts(fn); ff != nil && ff.Sticky {
		return qualifiedShort(fn), true
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return "", false
	}
	if sig.Recv() == nil {
		// Package-level os mutators (Rename, Remove, WriteFile, ...).
		if fn.Pkg() != nil && fn.Pkg().Path() == "os" && osIOFuncs[fn.Name()] {
			return "os." + fn.Name(), true
		}
		return "", false
	}
	switch {
	case fn.Name() == "Sync" && isNiladicError(sig):
		return recvTypeName(sig) + ".Sync", true
	case fn.Name() == "Close" && isNiladicError(sig) && recvPkg(sig) == "os":
		return recvTypeName(sig) + ".Close", true
	case ioMethodNames[fn.Name()] && ioPackages[recvPkg(sig)]:
		return recvTypeName(sig) + "." + fn.Name(), true
	}
	return "", false
}

func returnsError(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if sig.Results().At(i).Type().String() == "error" {
			return true
		}
	}
	return false
}

func qualifiedShort(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return recvTypeName(sig) + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
