// Package latchorder exercises the latch-hierarchy analyzer: a fixture
// three-level hierarchy, the legal coarse-to-fine direction, both
// violation shapes (inversion, self-deadlock), the same-name
// convention for shard-style latches, the one-level call-graph check,
// and the //tsb:allow escape.
package latchorder

import "sync"

type engine struct {
	cpMu    sync.Mutex   //tsb:latch level=1 name=checkpoint
	shardMu sync.RWMutex //tsb:latch level=5 name=shard
	poolMu  sync.Mutex   //tsb:latch level=7 name=pool
}

// Coarse-to-fine is the legal direction.
func (e *engine) coarseToFine() {
	e.cpMu.Lock()
	e.shardMu.Lock()
	e.poolMu.Lock()
	e.poolMu.Unlock()
	e.shardMu.Unlock()
	e.cpMu.Unlock()
}

// Fine-to-coarse inverts the hierarchy.
func (e *engine) fineToCoarse() {
	e.poolMu.Lock()
	e.cpMu.Lock() // want `latchorder: acquiring latch "checkpoint" \(level 1\) while holding "pool" \(level 7\)`
	e.cpMu.Unlock()
	e.poolMu.Unlock()
}

// Re-acquiring the same instance is self-deadlock even though the
// level check alone would not catch it.
func (e *engine) reacquire() {
	e.cpMu.Lock()
	e.cpMu.Lock() // want `latchorder: re-acquiring "checkpoint" already held .*: self-deadlock`
	e.cpMu.Unlock()
	e.cpMu.Unlock()
}

type shard struct {
	mu sync.RWMutex //tsb:latch level=5 name=part
}

// Two instances of the same latch class are ordered by convention
// (index order), not by the hierarchy: no diagnostic.
func lockBoth(a, b *shard) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

func (e *engine) lockCheckpoint() {
	e.cpMu.Lock()
	e.cpMu.Unlock()
}

func (e *engine) lockPool() {
	e.poolMu.Lock()
	e.poolMu.Unlock()
}

// The one-level call graph: calling a function charges the caller with
// every latch the callee's body acquires.
func (e *engine) inversionViaCall() {
	e.poolMu.Lock()
	e.lockCheckpoint() // want `latchorder: acquiring \(via call to lockCheckpoint\) latch "checkpoint" \(level 1\) while holding "pool" \(level 7\)`
	e.poolMu.Unlock()
}

// The same call in the legal direction is fine.
func (e *engine) fineViaCall() {
	e.cpMu.Lock()
	e.lockPool()
	e.cpMu.Unlock()
}

// A documented exception is visible at the site.
func (e *engine) allowedInversion() {
	e.poolMu.Lock()
	//tsb:allow latchorder -- fixture: a documented ordering exception
	e.cpMu.Lock()
	e.cpMu.Unlock()
	e.poolMu.Unlock()
}
