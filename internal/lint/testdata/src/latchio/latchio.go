// Package latchio exercises the no-I/O-under-write-latch analyzer:
// structural os I/O, //tsb:io-annotated helpers, the one-level
// call-graph check, and the three legal shapes — read latches, leaf
// (non-data) latches, and the //tsb:allow latchio escape.
package latchio

import (
	"os"
	"sync"
	"time"

	"repro/internal/obs"
)

type store struct {
	mu sync.RWMutex //tsb:latch level=5 name=store
}

type pool struct {
	mu sync.Mutex //tsb:latch level=7 name=pool
}

// burn stands in for an inline time-split burn.
//
//tsb:io
func (s *store) burn() error { return nil }

// Structural os I/O under the write latch.
func (s *store) writeIO(path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = os.Remove(path) // want `latchio: device I/O \(os.Remove\) while write latch "store"`
}

// Directive-declared I/O under the write latch.
func (s *store) writeBurn() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.burn() // want `latchio: device I/O \(burn\) while write latch "store"`
}

func (s *store) doRemove(path string) {
	_ = os.Remove(path)
}

// The one-level call graph: I/O one call away is still under the latch.
func (s *store) ioViaCall(path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.doRemove(path) // want `latchio: device I/O \(doRemove\) via call to doRemove while write latch "store"`
}

// A read latch never blocks a writer behind the device: not flagged.
func (s *store) readIO(path string) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_ = os.Remove(path)
}

// A leaf latch (level 7, outside the data-latch band) exists precisely
// to serialize device access: not flagged.
func (p *pool) leafIO(path string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	_ = os.Remove(path)
}

// I/O after the latch is released is fine.
func (s *store) ioAfterUnlock(path string) {
	s.mu.Lock()
	s.mu.Unlock()
	_ = os.Remove(path)
}

// The documented escape is visible at the site.
func (s *store) allowedIO(path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//tsb:allow latchio -- fixture: the documented inline-burn escape
	_ = os.Remove(path)
}

// dev carries the structural device signature: a niladic Sync() error
// is I/O on any type, whatever the package.
type dev struct{}

func (dev) Sync() error { return nil }

func (s *store) writeSync(d dev) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = d.Sync() // want `latchio: device I/O \(dev.Sync\) while write latch "store"`
}

// The observability substrate is exempt by package path: instruments
// record with atomics, so even its Sync-shaped method is legal under a
// write latch. Not flagged.
func (s *store) writeObserve(h *obs.Histogram, r *obs.Ring, start time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h.Observe(time.Since(start))
	_ = r.Sync()
}
