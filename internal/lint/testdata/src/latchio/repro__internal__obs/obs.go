// Package obs is the fixture stand-in for the repo's observability
// substrate: the fixture harness serves this directory under the import
// path "repro/internal/obs", the path latchio's allowlist trusts to
// record with atomics only, never device I/O.
package obs

import "time"

type Histogram struct{ count uint64 }

func (h *Histogram) Observe(d time.Duration) { h.count++ }

// Ring is I/O-shaped on purpose: Sync() error is exactly the structural
// signature latchio flags on any other package's types.
type Ring struct{ sealed bool }

func (r *Ring) Sync() error { r.sealed = true; return nil }
