// Package unlockpath exercises the release-on-every-path analyzer:
// defer and explicit-per-path releases pass; an early return or a
// fall-through end with the latch live is flagged; undeclared mutexes
// are checked too; //tsb:handoff opts a deliberate hand-off out.
package unlockpath

import "sync"

type box struct {
	mu sync.Mutex //tsb:latch level=5 name=box
}

func (b *box) deferred() {
	b.mu.Lock()
	defer b.mu.Unlock()
}

func (b *box) explicitEveryPath(x bool) {
	b.mu.Lock()
	if x {
		b.mu.Unlock()
		return
	}
	b.mu.Unlock()
}

func (b *box) leakOnReturn(x bool) {
	b.mu.Lock()
	if x {
		return // want `unlockpath: "box" locked at .* is still held at this return`
	}
	b.mu.Unlock()
}

func (b *box) leakAtEnd() {
	b.mu.Lock()
} // want `unlockpath: "box" locked at .* is still held at this fall-through function end`

// Mutexes outside the declared hierarchy are held to the same rule.
type plain struct {
	mu sync.Mutex
}

func (p *plain) leak(x bool) {
	p.mu.Lock()
	if x {
		return // want `unlockpath: p\.mu locked at .* is still held at this return`
	}
	p.mu.Unlock()
}

// lockForCursor hands the latch to the caller (the cursor latch
// hand-off protocol): the caller releases it.
//
//tsb:handoff
func (b *box) lockForCursor() {
	b.mu.Lock()
}
