// Package stickyerr exercises the sticky-error analyzer: discarded
// Sync/Close/os-mutator/append errors are flagged; `_ =` is a visible
// decision; defer f.Close() is the accepted cleanup idiom but
// defer f.Sync() is not; //tsb:sticky extends the rule to the WAL
// append surface; //tsb:allow stickyerr is the escape.
package stickyerr

import "os"

// appendFrame stands in for a WAL append: its error is sticky.
//
//tsb:sticky
func appendFrame(b []byte) error {
	_ = b
	return nil
}

func discards(f *os.File, b []byte) {
	f.Sync()       // want `stickyerr: error result of File\.Sync is discarded`
	f.Close()      // want `stickyerr: error result of File\.Close is discarded`
	os.Remove("x") // want `stickyerr: error result of os\.Remove is discarded`
	appendFrame(b) // want `stickyerr: error result of stickyerr\.appendFrame is discarded`
}

func checksOrDiscardsVisibly(f *os.File, b []byte) error {
	if err := f.Sync(); err != nil {
		return err
	}
	if err := appendFrame(b); err != nil {
		return err
	}
	_ = f.Close()
	return nil
}

func deferredCleanup(f *os.File) {
	defer f.Close()              // accepted cleanup idiom
	defer os.RemoveAll("fixdir") // accepted cleanup idiom
	defer f.Sync()               // want `stickyerr: error result of File\.Sync is discarded by defer`
}

func allowedDiscard(f *os.File) {
	//tsb:allow stickyerr -- fixture: best-effort flush on a scratch file
	f.Sync()
}
