// Package durablerename exercises the sync-before-rename analyzer: an
// os.Rename that publishes a file must be preceded (in source order,
// within the function) by a Sync of the temp file — directly or via a
// //tsb:syncs-annotated helper — or carry an explicit allow.
package durablerename

import "os"

func installUnsynced(tmp, final string) error {
	return os.Rename(tmp, final) // want `durablerename: os.Rename installs a file without a preceding Sync`
}

func installSynced(f *os.File, tmp, final string) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}

// flushAll fsyncs everything the caller wrote.
//
//tsb:syncs
func flushAll(f *os.File) error { return f.Sync() }

func installViaHelper(f *os.File, tmp, final string) error {
	if err := flushAll(f); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}

// A sync after the rename orders nothing: still flagged.
func syncTooLate(f *os.File, tmp, final string) error {
	if err := os.Rename(tmp, final); err != nil { // want `durablerename: os.Rename installs a file without a preceding Sync`
		return err
	}
	return f.Sync()
}

func installAllowed(tmp, final string) error {
	//tsb:allow durablerename -- fixture: a marker file whose loss is harmless
	return os.Rename(tmp, final)
}
