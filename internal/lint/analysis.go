// Package lint implements tsbvet, the repo's static checker for the
// latch-hierarchy and durability-ordering invariants documented in
// docs/ARCHITECTURE.md ("Statically enforced invariants").
//
// The package deliberately depends only on the standard library: the
// build environment pins the toolchain and carries no module cache, so
// the usual golang.org/x/tools/go/analysis machinery is rebuilt here in
// miniature. An Analyzer receives one type-checked package (a Unit) and
// reports Diagnostics; cmd/tsbvet adapts the set of analyzers both to
// the `go vet -vettool` single-package protocol and to a standalone
// whole-module run.
//
// Invariants are declared in source with //tsb: directives:
//
//	//tsb:latch level=N name=X   on a mutex/channel/state field: the
//	                             field is latch X at hierarchy level N
//	                             (1 is the coarsest; a holder may only
//	                             acquire strictly greater levels).
//	//tsb:acquires X             calling this function acquires latch X
//	                             and leaves it held (e.g. migrator.pause).
//	//tsb:releases X             calling this function releases latch X.
//	//tsb:wraps X                this function runs its function-typed
//	                             argument with latch X held.
//	//tsb:io                     this function performs device I/O.
//	//tsb:handoff                this function intentionally returns with
//	                             a latch held (latch hand-off protocol);
//	                             unlockpath skips it.
//	//tsb:allow <analyzer>       suppress <analyzer> diagnostics on the
//	                             next (or same) line, or on the whole
//	                             function when written in its doc comment.
//
// Every suppression is grep-able: the only way to silence a diagnostic
// is a visible //tsb:allow at the offending site.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Unit is one type-checked package: the input to the analyzers.
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// NewInfo returns a types.Info with all the maps the analyzers need
// populated. Callers type-checking a Unit themselves should use it.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// Diagnostic is one finding, attributed to the analyzer that produced it.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Analyzer is one named check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one analyzer's view of one Unit plus the parsed
// directives, and collects diagnostics (applying //tsb:allow
// suppression centrally).
type Pass struct {
	*Unit
	Analyzer *Analyzer
	Facts    *Facts

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos unless a //tsb:allow directive
// (line-level or enclosing-function-level) suppresses it, or pos sits
// in a _test.go file: the invariants target production code, and test
// code routinely does deliberately odd things with latches.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if strings.HasSuffix(position.Filename, "_test.go") {
		return
	}
	if p.Facts.allowed(p.Analyzer.Name, position, pos) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Analyzers returns the full tsbvet suite in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		LatchOrderAnalyzer,
		LatchIOAnalyzer,
		UnlockPathAnalyzer,
		DurableRenameAnalyzer,
		StickyErrAnalyzer,
	}
}

// RunAll runs every analyzer over the unit and returns the (unsuppressed)
// diagnostics sorted by position.
func RunAll(u *Unit) []Diagnostic {
	return Run(u, Analyzers())
}

// Run runs the given analyzers over the unit.
func Run(u *Unit, analyzers []*Analyzer) []Diagnostic {
	facts := BuildFacts(u)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Unit: u, Analyzer: a, Facts: facts, diags: &diags}
		a.Run(pass)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// funcQName renders a *types.Func as the qualified name used by the
// built-in tables: "pkgpath.Func" or "pkgpath.Recv.Method" (pointer
// receivers are not distinguished).
func funcQName(f *types.Func) string {
	sig, _ := f.Type().(*types.Signature)
	if sig != nil {
		if recv := sig.Recv(); recv != nil {
			t := types.Unalias(recv.Type())
			if p, ok := t.(*types.Pointer); ok {
				t = types.Unalias(p.Elem())
			}
			if named, ok := t.(*types.Named); ok {
				obj := named.Obj()
				if obj.Pkg() != nil {
					return obj.Pkg().Path() + "." + obj.Name() + "." + f.Name()
				}
				return obj.Name() + "." + f.Name()
			}
		}
	}
	if f.Pkg() != nil {
		return f.Pkg().Path() + "." + f.Name()
	}
	return f.Name()
}

// exprKey renders a stable instance key for a latch expression like
// sh.mu or d.secMu, so Lock/Unlock pairs on the same expression match.
func exprKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprKey(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprKey(e.X)
	case *ast.StarExpr:
		return exprKey(e.X)
	case *ast.UnaryExpr:
		return e.Op.String() + exprKey(e.X)
	case *ast.IndexExpr:
		return exprKey(e.X) + "[" + exprKey(e.Index) + "]"
	case *ast.CallExpr:
		// Calls are not stable instances; make the key unique so a
		// lock through a call result never pairs with anything.
		return fmt.Sprintf("call@%d", e.Lparen)
	default:
		return fmt.Sprintf("expr@%d", e.Pos())
	}
}
