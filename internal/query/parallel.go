package query

import (
	"sync"

	"repro/internal/record"
	"repro/internal/txn"
)

// parallelBatch is how many versions a shard worker hands over per
// channel send; parallelDepth is each channel's buffer in batches.
const (
	parallelBatch = 128
	parallelDepth = 4
)

// parallelScan runs one goroutine per shard, each driving its own
// shard-clamped cursor, feeding an ordered merge: shard order equals
// key order, so merging is draining the channels in shard order
// (reverse shard order for reverse scans).
//
// The latch discipline is unchanged from the serial merge cursor — each
// worker's cursor bounds lie inside one shard, so each goroutine holds
// at most its own shard's latch, and only during a fill. Between sends
// a worker holds nothing; an abandoned scan is torn down by Close,
// which the workers observe on their next send.
type parallelScan struct {
	chans []chan []record.Version
	order []int
	errs  chan error
	done  chan struct{}
	wg    sync.WaitGroup

	oi     int
	buf    []record.Version
	pos    int
	row    Row
	err    error
	closed bool
}

func newParallelScan(src Source, shards int, low record.Key, high record.Bound, opts txn.ScanOptions) *parallelScan {
	p := &parallelScan{
		chans: make([]chan []record.Version, shards),
		order: make([]int, shards),
		errs:  make(chan error, shards),
		done:  make(chan struct{}),
	}
	for i := range p.order {
		if opts.Reverse {
			p.order[i] = shards - 1 - i
		} else {
			p.order[i] = i
		}
	}
	for i := 0; i < shards; i++ {
		p.chans[i] = make(chan []record.Version, parallelDepth)
		shLow, shHigh := record.ShardRange(i, shards)
		lo := low
		if lo.Compare(shLow) < 0 {
			lo = shLow
		}
		hi := high
		if shHigh.Compare(high) < 0 {
			hi = shHigh
		}
		p.wg.Add(1)
		go p.worker(src, i, lo, hi, opts)
	}
	return p
}

func (p *parallelScan) worker(src Source, i int, lo record.Key, hi record.Bound, opts txn.ScanOptions) {
	defer p.wg.Done()
	defer close(p.chans[i])
	cur := src.Cursor(lo, hi, opts)
	defer cur.Close()
	batch := make([]record.Version, 0, parallelBatch)
	flush := func() bool {
		if len(batch) == 0 {
			return true
		}
		select {
		case p.chans[i] <- batch:
			batch = make([]record.Version, 0, parallelBatch)
			return true
		case <-p.done:
			return false
		}
	}
	for cur.Next() {
		if batch = append(batch, cur.Version()); len(batch) >= parallelBatch {
			if !flush() {
				return
			}
		}
	}
	if err := cur.Err(); err != nil {
		p.errs <- err
		return
	}
	flush()
}

func (p *parallelScan) Next() bool {
	if p.err != nil || p.closed {
		return false
	}
	for {
		if p.pos < len(p.buf) {
			p.row = Row{Key: p.buf[p.pos].Key, Versions: p.buf[p.pos : p.pos+1]}
			p.pos++
			return true
		}
		if p.oi >= len(p.order) {
			return false
		}
		batch, ok := <-p.chans[p.order[p.oi]]
		if !ok {
			// A closed channel is either an exhausted shard or a failed
			// one; stop at the first failure rather than emitting rows
			// past a hole in the key space.
			select {
			case p.err = <-p.errs:
				return false
			default:
			}
			p.oi++
			continue
		}
		p.buf, p.pos = batch, 0
	}
}

func (p *parallelScan) Row() Row   { return p.row }
func (p *parallelScan) Err() error { return p.err }

// Close tears the scan down: workers parked on a send observe done and
// exit; Close returns once every worker goroutine has finished.
func (p *parallelScan) Close() error {
	if p.closed {
		return nil
	}
	p.closed = true
	close(p.done)
	p.wg.Wait()
	return nil
}
