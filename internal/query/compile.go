package query

import (
	"repro/internal/record"
	"repro/internal/txn"
)

// Compile validates the spec, applies the pushdown rewrites, and builds
// the operator pipeline over src. The returned Operator owns every
// cursor and goroutine the plan needs; Close releases them.
func Compile(s *Spec, src Source) (Operator, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return compile(pushdown(s), src)
}

// pushdown rewrites the tree so that key-range filters narrow the scan
// window of a Scan or Diff source they sit directly above: the cursor
// then never descends to a page outside the range — the predicate runs
// at page-selection time, not per row. The input specs are never
// mutated; rewritten nodes are shallow clones.
func pushdown(s *Spec) *Spec {
	switch {
	case s == nil:
		return nil
	case s.Left != nil || s.Right != nil:
		c := *s
		c.Left, c.Right = pushdown(s.Left), pushdown(s.Right)
		return &c
	case s.Input == nil:
		return s
	}
	c := *s
	c.Input = pushdown(s.Input)
	in := c.Input
	if c.Kind == OpFilter && c.HasKeyRange && (in.Kind == OpScan || in.Kind == OpDiff) {
		srcClone := *in
		if c.FilterLow != nil && c.FilterLow.Compare(srcClone.Low) > 0 {
			srcClone.Low = c.FilterLow
		}
		if c.FilterHigh.Compare(srcClone.High) < 0 {
			srcClone.High = c.FilterHigh
		}
		c.HasKeyRange, c.FilterLow, c.FilterHigh = false, nil, record.Bound{}
		c.Input = &srcClone
		if c.ValuePrefix == nil && c.Where == nil {
			// Fully absorbed: drop the filter node.
			return &srcClone
		}
	}
	return &c
}

func compile(s *Spec, src Source) (Operator, error) {
	switch s.Kind {
	case OpScan:
		return compileScan(s, src)
	case OpHistory:
		from, to := s.From, s.To
		if from == 0 {
			from = record.TimeZero + 1
		}
		if to == 0 {
			to = record.TimeInfinity
		}
		high := record.KeyBound(append(s.Key.Clone(), 0))
		cur := src.Cursor(s.Key, high, txn.ScanOptions{From: from, To: to, Reverse: s.Reverse})
		return &cursorOp{cur: cur}, nil
	case OpDiff:
		if s.To <= s.From {
			return &emptyOp{}, nil
		}
		// Every version valid at some moment in (From, To] is in the
		// window [From, To+1) — the streaming form of core.Tree.Diff.
		cur := src.Cursor(s.Low, s.High, txn.ScanOptions{From: s.From, To: s.To + 1, Reverse: s.Reverse})
		return &diffOp{in: &cursorOp{cur: cur}, from: s.From, to: s.To}, nil
	case OpFilter:
		in, err := compile(s.Input, src)
		if err != nil {
			return nil, err
		}
		return &filterOp{in: in, spec: s}, nil
	case OpProject:
		in, err := compile(s.Input, src)
		if err != nil {
			return nil, err
		}
		return &projectOp{in: in}, nil
	case OpGroupBy:
		in, err := compile(s.Input, src)
		if err != nil {
			return nil, err
		}
		return &groupByOp{in: in}, nil
	case OpLimit:
		in, err := compile(s.Input, src)
		if err != nil {
			return nil, err
		}
		return &limitOp{in: in, remaining: s.Limit}, nil
	case OpMergeJoin:
		left, err := compile(s.Left, src)
		if err != nil {
			return nil, err
		}
		right, err := compile(s.Right, src)
		if err != nil {
			left.Close()
			return nil, err
		}
		return newMergeJoin(left, right, s.Left.direction()), nil
	case OpSecondaryJoin:
		lk, ok := src.(SecondaryLookup)
		if !ok {
			return nil, badSpec("source %T has no secondary indexes", src)
		}
		at := s.At
		if at == 0 {
			at = src.Timestamp()
		}
		pks, err := lk.LookupSecondary(s.Index, s.SKey, at)
		if err != nil {
			return nil, err
		}
		in, err := compile(s.Input, src)
		if err != nil {
			return nil, err
		}
		return newSemiJoin(in, pks, s.Input.direction()), nil
	}
	return nil, badSpec("unknown operator kind %d", s.Kind)
}

// compileScan builds a Scan source: a serial cursor, or — Parallel over
// a ShardedSource — one cursor goroutine per shard feeding an ordered
// merge.
func compileScan(s *Spec, src Source) (Operator, error) {
	opts := txn.ScanOptions{At: s.At, From: s.From, To: s.To, Reverse: s.Reverse}
	if s.Parallel {
		if sh, ok := src.(ShardedSource); ok && sh.Shards() > 1 {
			return newParallelScan(src, sh.Shards(), s.Low, s.High, opts), nil
		}
	}
	return &cursorOp{cur: src.Cursor(s.Low, s.High, opts)}, nil
}
