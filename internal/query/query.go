// Package query is the temporal query engine: a small layer of
// composable streaming operators over the cursor machinery, answering
// the paper's query classes (§2.5 — version by key and time, snapshots,
// all versions of a record, ranges of both) without materializing
// intermediate results.
//
// An operator tree is described by a Spec (a serializable plan — the
// wire protocol ships it verbatim) and compiled against a Source into a
// pipeline of Operators. Rows stream in key order: every source yields
// keys ascending (descending when Reverse), every transform preserves
// that order, and MergeJoin exploits it to join two streams with O(1)
// memory per key group. Sources:
//
//   - Scan: the snapshot of a key range at one timestamp, or — with a
//     From/To window — every version of the range valid in the window,
//     in (key, time) order.
//   - History: one key's committed version history (a version-cursor; a
//     changefeed over a single record).
//   - Diff: the keys whose visible state differs between two times, as
//     streaming change rows — the change-cursor form of db.Diff, and the
//     changefeed primitive (poll Diff(lastSeen, now) to subscribe).
//
// Transforms: Filter (a key-range predicate is pushed down into the
// source's scan window at compile time, so the cursor never reads pages
// outside it; value predicates stream), Project, MergeJoin,
// JoinSecondary (a secondary-index lookup merge-joined against the
// primary stream), GroupBy (per-key aggregation over version history),
// and Limit.
//
// # Latch discipline
//
// Operators add no latches of their own. All engine access goes through
// cursors, which hold no latch between Next calls and at most one shard
// latch during a fill; a paused or abandoned operator tree therefore
// never blocks a writer. Parallel scans run one goroutine per shard,
// each with its own shard-clamped cursor — so each goroutine holds at
// most its own shard's latch, exactly as the serial merge cursor does —
// feeding an ordered merge over plain channels (shard order equals key
// order, so the merge is concatenation).
package query

import (
	"errors"

	"repro/internal/record"
	"repro/internal/txn"
)

// Row is the unit that flows between operators.
//
//   - Scan/History rows carry one version in Versions.
//   - MergeJoin rows carry the left row's versions followed by the
//     right's.
//   - Diff rows carry [before, after] (each present only when the
//     matching flag is set).
//   - GroupBy rows carry the group's first and last version (one entry
//     when they coincide) and the group's version count in Count.
type Row struct {
	Key      record.Key
	Versions []record.Version
	// Count is the number of versions aggregated into the row (GroupBy
	// rows only; zero elsewhere).
	Count uint64
	// HasBefore/HasAfter qualify Diff rows: whether the key existed at
	// the window's start and end.
	HasBefore bool
	HasAfter  bool
}

// Operator is a streaming row producer: the cursor contract lifted to
// rows. Like a Cursor, an Operator holds no latch between Next calls,
// must be confined to one goroutine at a time, and may be abandoned at
// any point — Close makes early termination explicit (and stops the
// per-shard goroutines of a parallel scan).
type Operator interface {
	Next() bool
	Row() Row
	Err() error
	Close() error
}

// Source is the engine surface a query executes against: the read side
// of a transaction. *txn.ReadTxn satisfies it; the db layer's Query
// binds one together with the optional extensions below.
type Source interface {
	Cursor(low record.Key, high record.Bound, opts txn.ScanOptions) *txn.Cursor
	Timestamp() record.Timestamp
}

// ShardedSource is the optional Source extension parallel scans need:
// the shard count fixes the per-goroutine key ranges. A Parallel spec
// over a plain Source degrades to a serial scan.
type ShardedSource interface {
	Shards() int
}

// SecondaryLookup is the optional Source extension JoinSecondary needs:
// the primary keys carrying a secondary key at a timestamp, sorted.
type SecondaryLookup interface {
	LookupSecondary(index string, skey record.Key, at record.Timestamp) ([]record.Key, error)
}

// ErrBadSpec wraps every spec validation failure: the typed bad-request
// the server maps malformed operator trees to.
var ErrBadSpec = errors.New("query: invalid spec")
