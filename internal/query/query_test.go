package query_test

import (
	"fmt"
	"testing"

	"repro/internal/db"
	"repro/internal/query"
	"repro/internal/record"
	"repro/internal/txn"
)

func openTestDB(t *testing.T, shards int) *db.DB {
	t.Helper()
	d, err := db.Open(db.Config{Shards: shards, LeafCapacity: 256, IndexCapacity: 1024})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return d
}

func put(t *testing.T, d *db.DB, kv ...string) {
	t.Helper()
	if len(kv)%2 != 0 {
		t.Fatal("odd kv")
	}
	err := d.Update(func(tx *txn.Txn) error {
		for i := 0; i < len(kv); i += 2 {
			if err := tx.Put(record.Key(kv[i]), []byte(kv[i+1])); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("update: %v", err)
	}
}

func collectRows(t *testing.T, d *db.DB, spec *query.Spec) []query.Row {
	t.Helper()
	op, err := d.Query(spec)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	defer op.Close()
	var out []query.Row
	for op.Next() {
		out = append(out, op.Row())
	}
	if err := op.Err(); err != nil {
		t.Fatalf("rows: %v", err)
	}
	return out
}

func keysOf(rows []query.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = string(r.Key)
	}
	return out
}

func TestQueryScanFilterPushdown(t *testing.T) {
	d := openTestDB(t, 4)
	for i := 0; i < 64; i++ {
		put(t, d, fmt.Sprintf("k%02d", i), fmt.Sprintf("v%d", i))
	}
	rows := collectRows(t, d,
		query.Scan(nil, record.InfiniteBound()).
			Filter(record.Key("k10"), record.KeyBound(record.Key("k13"))))
	want := []string{"k10", "k11", "k12"}
	if got := keysOf(rows); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestQueryHistoryAndGroupBy(t *testing.T) {
	d := openTestDB(t, 2)
	for i := 0; i < 5; i++ {
		put(t, d, "a", fmt.Sprintf("a%d", i))
	}
	put(t, d, "b", "b0")

	rows := collectRows(t, d, query.History(record.Key("a")))
	if len(rows) != 5 {
		t.Fatalf("history rows = %d, want 5", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Versions[0].Time <= rows[i-1].Versions[0].Time {
			t.Fatalf("history not time-ascending")
		}
	}

	agg := collectRows(t, d,
		query.Window(nil, record.InfiniteBound(), 1, record.TimeInfinity).GroupBy())
	if len(agg) != 2 {
		t.Fatalf("groups = %d, want 2", len(agg))
	}
	if agg[0].Count != 5 || string(agg[0].Key) != "a" {
		t.Fatalf("group a: count=%d key=%s", agg[0].Count, agg[0].Key)
	}
	if string(agg[0].Versions[0].Value) != "a0" || string(agg[0].Versions[1].Value) != "a4" {
		t.Fatalf("group a first/last = %q/%q", agg[0].Versions[0].Value, agg[0].Versions[1].Value)
	}
}

func TestQueryDiffMatchesDB(t *testing.T) {
	d := openTestDB(t, 4)
	put(t, d, "a", "1", "b", "1")
	t1 := d.Now()
	put(t, d, "b", "2", "c", "1")
	err := d.Update(func(tx *txn.Txn) error { return tx.Delete(record.Key("a")) })
	if err != nil {
		t.Fatalf("delete: %v", err)
	}
	t2 := d.Now()

	want, err := d.Diff(nil, record.InfiniteBound(), t1, t2)
	if err != nil {
		t.Fatalf("db diff: %v", err)
	}
	rows := collectRows(t, d, query.Diff(nil, record.InfiniteBound(), t1, t2))
	if len(rows) != len(want) {
		t.Fatalf("diff rows = %d, want %d", len(rows), len(want))
	}
	for i, c := range want {
		r := rows[i]
		if !r.Key.Equal(c.Key) || r.HasBefore != c.HasBefor || r.HasAfter != c.HasAfter {
			t.Fatalf("row %d: %+v vs change %+v", i, r, c)
		}
		j := 0
		if c.HasBefor {
			if r.Versions[j].Time != c.Before.Time {
				t.Fatalf("row %d before mismatch", i)
			}
			j++
		}
		if c.HasAfter && r.Versions[j].Time != c.After.Time {
			t.Fatalf("row %d after mismatch", i)
		}
	}
}

func TestQueryMergeJoinAndParallel(t *testing.T) {
	d := openTestDB(t, 8)
	for i := 0; i < 200; i++ {
		put(t, d, fmt.Sprintf("k%03d", i), "v")
	}
	left := query.Scan(nil, record.KeyBound(record.Key("k150")))
	right := query.Scan(record.Key("k100"), record.InfiniteBound())
	rows := collectRows(t, d, left.Join(right))
	if len(rows) != 50 {
		t.Fatalf("join rows = %d, want 50", len(rows))
	}
	if string(rows[0].Key) != "k100" || len(rows[0].Versions) != 2 {
		t.Fatalf("join row 0 = %+v", rows[0])
	}

	serial := query.Scan(nil, record.InfiniteBound())
	par := query.Scan(nil, record.InfiniteBound())
	par.Parallel = true
	sk := keysOf(collectRows(t, d, serial))
	pk := keysOf(collectRows(t, d, par))
	if fmt.Sprint(sk) != fmt.Sprint(pk) {
		t.Fatalf("parallel order differs from serial")
	}
	if len(pk) != 200 {
		t.Fatalf("parallel rows = %d", len(pk))
	}

	rev := query.Scan(nil, record.InfiniteBound())
	rev.Reverse, rev.Parallel = true, true
	rk := keysOf(collectRows(t, d, rev))
	if len(rk) != 200 || rk[0] != "k199" || rk[199] != "k000" {
		t.Fatalf("reverse parallel wrong: len=%d first=%s last=%s", len(rk), rk[0], rk[len(rk)-1])
	}
}

func TestQuerySecondaryJoin(t *testing.T) {
	d := openTestDB(t, 4)
	if err := d.CreateSecondary("byclass", func(v []byte) record.Key {
		if len(v) == 0 {
			return nil
		}
		return record.Key(v[:1])
	}); err != nil {
		t.Fatalf("create secondary: %v", err)
	}
	put(t, d, "a", "x1", "b", "y1", "c", "x2", "d", "x3", "e", "z1")
	rows := collectRows(t, d,
		query.Scan(nil, record.InfiniteBound()).
			JoinSecondary("byclass", record.Key("x"), 0))
	want := []string{"a", "c", "d"}
	if got := keysOf(rows); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v want %v", got, want)
	}
}
