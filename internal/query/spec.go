package query

import (
	"fmt"

	"repro/internal/record"
)

// OpKind identifies one node of an operator tree.
type OpKind byte

// Operator kinds. Scan, History, and Diff are sources (leaves); the
// rest transform the stream of their Input (MergeJoin: Left and Right).
const (
	OpScan OpKind = iota + 1
	OpHistory
	OpDiff
	OpFilter
	OpProject
	OpMergeJoin
	OpSecondaryJoin
	OpGroupBy
	OpLimit
)

// MaxSpecDepth bounds operator-tree nesting; MaxSpecNodes bounds total
// node count. Both guard the wire decode path against crafted trees.
const (
	MaxSpecDepth = 16
	MaxSpecNodes = 64
)

// Spec is one node of a serializable operator tree: the plan form a
// query travels in (the builder methods below grow it, the wire
// protocol ships it, Compile turns it into a running Operator).
//
// Field meaning depends on Kind; Validate enforces the combinations.
type Spec struct {
	Kind OpKind

	// Scan/Diff key window.
	Low  record.Key
	High record.Bound
	// At pins a Scan's snapshot (0 = the source transaction's); it
	// cannot be combined with a From/To window. For SecondaryJoin it
	// pins the index lookup time.
	At record.Timestamp
	// From/To: Scan window mode, History clamp, or Diff endpoints
	// (From=T1, To=T2).
	From, To record.Timestamp
	// Key is History's record key.
	Key record.Key
	// Reverse yields descending keys (descending (key, time) in window
	// mode, descending time in History). Sources only.
	Reverse bool
	// Parallel runs a Scan with one goroutine per shard feeding an
	// ordered merge. Sources only; ignored without a ShardedSource.
	Parallel bool

	// Filter predicate: an optional key range (pushed down into a
	// Scan/Diff input's window at compile time) and an optional value
	// prefix every row's first version must carry.
	HasKeyRange bool
	FilterLow   record.Key
	FilterHigh  record.Bound
	ValuePrefix []byte
	// Where is an arbitrary local predicate. It does not serialize:
	// wire specs must express filters with the fields above.
	Where func(Row) bool

	// KeysOnly makes Project strip version values.
	KeysOnly bool

	// Index/SKey name the secondary lookup of a SecondaryJoin.
	Index string
	SKey  record.Key

	// Limit bounds the row count of an OpLimit node.
	Limit uint64

	Input *Spec // unary transforms
	Left  *Spec // MergeJoin
	Right *Spec
}

// Scan returns a snapshot scan of keys in [low, high) at the executing
// transaction's timestamp. Set At to pin another snapshot, From/To for
// window mode, Reverse or Parallel to direct execution.
func Scan(low record.Key, high record.Bound) *Spec {
	return &Spec{Kind: OpScan, Low: low, High: high}
}

// Window returns a temporal range scan: the versions of [low, high)
// valid at any moment in [from, to), in (key, time) order.
func Window(low record.Key, high record.Bound, from, to record.Timestamp) *Spec {
	return &Spec{Kind: OpScan, Low: low, High: high, From: from, To: to}
}

// History returns the version-cursor over one key's committed history,
// oldest first (newest first with Reverse). From/To clamp the window;
// zero values mean all of time.
func History(key record.Key) *Spec {
	return &Spec{Kind: OpHistory, Key: key}
}

// Diff returns the change-cursor between two times: one row per key in
// [low, high) whose visible state differs between t1 and t2, with the
// before/after versions attached — db.Diff as a stream.
func Diff(low record.Key, high record.Bound, t1, t2 record.Timestamp) *Spec {
	return &Spec{Kind: OpDiff, Low: low, High: high, From: t1, To: t2}
}

// Filter restricts the stream to keys in [low, high). Over a Scan or
// Diff source the range is pushed down into the source's window, so
// the underlying cursor never visits a page outside it.
func (s *Spec) Filter(low record.Key, high record.Bound) *Spec {
	return &Spec{Kind: OpFilter, HasKeyRange: true, FilterLow: low, FilterHigh: high, Input: s}
}

// FilterValuePrefix restricts the stream to rows whose first version's
// value starts with prefix (a streamed predicate; nothing is pushed
// down).
func (s *Spec) FilterValuePrefix(prefix []byte) *Spec {
	return &Spec{Kind: OpFilter, ValuePrefix: prefix, Input: s}
}

// FilterWhere restricts the stream with an arbitrary predicate. The
// resulting spec cannot travel over the wire.
func (s *Spec) FilterWhere(fn func(Row) bool) *Spec {
	return &Spec{Kind: OpFilter, Where: fn, Input: s}
}

// Project strips version values from the stream (keys and timestamps
// survive).
func (s *Spec) Project() *Spec {
	return &Spec{Kind: OpProject, KeysOnly: true, Input: s}
}

// Join merge-joins the stream with right on key equality. Both inputs
// must run in the same direction; matching key groups combine as one
// row per left×right version pair grouping (left versions first).
func (s *Spec) Join(right *Spec) *Spec {
	return &Spec{Kind: OpMergeJoin, Left: s, Right: right}
}

// JoinSecondary semi-joins the stream against a secondary-index lookup:
// only rows whose key carries skey in the named index (at time at, 0 =
// the transaction's snapshot) survive.
func (s *Spec) JoinSecondary(index string, skey record.Key, at record.Timestamp) *Spec {
	return &Spec{Kind: OpSecondaryJoin, Index: index, SKey: skey, At: at, Input: s}
}

// GroupBy aggregates consecutive rows of one key — a key's version
// history — into a single row carrying the version count and the
// group's first and last version.
func (s *Spec) GroupBy() *Spec {
	return &Spec{Kind: OpGroupBy, Input: s}
}

// WithLimit bounds the stream to the first n rows.
func (s *Spec) WithLimit(n uint64) *Spec {
	return &Spec{Kind: OpLimit, Limit: n, Input: s}
}

func badSpec(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadSpec, fmt.Sprintf(format, args...))
}

// Validate checks the tree's structure: kinds, child arity, field
// combinations, depth, and size. Every failure wraps ErrBadSpec.
func (s *Spec) Validate() error {
	nodes := 0
	var walk func(s *Spec, depth int) error
	walk = func(s *Spec, depth int) error {
		if s == nil {
			return badSpec("nil node")
		}
		if depth > MaxSpecDepth {
			return badSpec("tree deeper than %d", MaxSpecDepth)
		}
		if nodes++; nodes > MaxSpecNodes {
			return badSpec("tree larger than %d nodes", MaxSpecNodes)
		}
		leaf := s.Input == nil && s.Left == nil && s.Right == nil
		switch s.Kind {
		case OpScan:
			if !leaf {
				return badSpec("scan with inputs")
			}
			if s.At != 0 && (s.From != 0 || s.To != 0) {
				return badSpec("scan At combined with From/To")
			}
		case OpHistory:
			if !leaf {
				return badSpec("history with inputs")
			}
			if len(s.Key) == 0 {
				return badSpec("history without a key")
			}
		case OpDiff:
			if !leaf {
				return badSpec("diff with inputs")
			}
			if s.To >= record.TimePending {
				return badSpec("diff To out of range")
			}
		case OpFilter:
			if !s.HasKeyRange && s.ValuePrefix == nil && s.Where == nil {
				return badSpec("filter without a predicate")
			}
		case OpProject, OpGroupBy:
		case OpLimit:
			if s.Limit == 0 {
				return badSpec("limit 0")
			}
		case OpSecondaryJoin:
			if s.Index == "" {
				return badSpec("secondary join without an index name")
			}
		case OpMergeJoin:
			if s.Left == nil || s.Right == nil {
				return badSpec("merge join needs two inputs")
			}
			if s.Left.direction() != s.Right.direction() {
				return badSpec("merge join inputs run in different directions")
			}
			if err := walk(s.Left, depth+1); err != nil {
				return err
			}
			return walk(s.Right, depth+1)
		default:
			return badSpec("unknown operator kind %d", s.Kind)
		}
		if s.Kind != OpScan && s.Kind != OpHistory && s.Kind != OpDiff {
			if s.Input == nil {
				return badSpec("%v without an input", s.Kind)
			}
			return walk(s.Input, depth+1)
		}
		return nil
	}
	return walk(s, 1)
}

// direction reports whether the stream the spec produces runs in
// descending key order.
func (s *Spec) direction() bool {
	switch {
	case s == nil:
		return false
	case s.Input != nil:
		return s.Input.direction()
	case s.Left != nil:
		return s.Left.direction()
	default:
		return s.Reverse
	}
}

func (k OpKind) String() string {
	switch k {
	case OpScan:
		return "scan"
	case OpHistory:
		return "history"
	case OpDiff:
		return "diff"
	case OpFilter:
		return "filter"
	case OpProject:
		return "project"
	case OpMergeJoin:
		return "merge-join"
	case OpSecondaryJoin:
		return "secondary-join"
	case OpGroupBy:
		return "group-by"
	case OpLimit:
		return "limit"
	}
	return fmt.Sprintf("op(%d)", byte(k))
}
