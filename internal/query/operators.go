package query

import (
	"bytes"

	"repro/internal/record"
	"repro/internal/txn"
)

// cursorOp adapts a txn.Cursor to the Operator contract: one row per
// version. It is the leaf every serial source compiles to.
type cursorOp struct {
	cur *txn.Cursor
	row Row
}

func (o *cursorOp) Next() bool {
	if !o.cur.Next() {
		return false
	}
	v := o.cur.Version()
	o.row = Row{Key: v.Key, Versions: []record.Version{v}}
	return true
}

func (o *cursorOp) Row() Row     { return o.row }
func (o *cursorOp) Err() error   { return o.cur.Err() }
func (o *cursorOp) Close() error { return o.cur.Close() }

// emptyOp is the compiled form of a statically-empty source (e.g. a
// diff with an empty time window).
type emptyOp struct{}

func (emptyOp) Next() bool   { return false }
func (emptyOp) Row() Row     { return Row{} }
func (emptyOp) Err() error   { return nil }
func (emptyOp) Close() error { return nil }

// filterOp streams the residual predicates a pushdown could not absorb:
// a key range (when the input is not a Scan/Diff source), a value
// prefix on the row's first version, and an arbitrary Where.
type filterOp struct {
	in   Operator
	spec *Spec
	row  Row
}

func (o *filterOp) Next() bool {
	for o.in.Next() {
		r := o.in.Row()
		if o.spec.HasKeyRange {
			if r.Key.Compare(o.spec.FilterLow) < 0 || o.spec.FilterHigh.CompareKey(r.Key) <= 0 {
				continue
			}
		}
		if o.spec.ValuePrefix != nil {
			if len(r.Versions) == 0 || !bytes.HasPrefix(r.Versions[0].Value, o.spec.ValuePrefix) {
				continue
			}
		}
		if o.spec.Where != nil && !o.spec.Where(r) {
			continue
		}
		o.row = r
		return true
	}
	return false
}

func (o *filterOp) Row() Row     { return o.row }
func (o *filterOp) Err() error   { return o.in.Err() }
func (o *filterOp) Close() error { return o.in.Close() }

// projectOp strips version values (and the txn ids that only matter to
// writers): the keys-and-timestamps projection.
type projectOp struct {
	in  Operator
	row Row
}

func (o *projectOp) Next() bool {
	if !o.in.Next() {
		return false
	}
	r := o.in.Row()
	vs := make([]record.Version, len(r.Versions))
	for i, v := range r.Versions {
		v.Value = nil
		v.TxnID = 0
		vs[i] = v
	}
	r.Versions = vs
	o.row = r
	return true
}

func (o *projectOp) Row() Row     { return o.row }
func (o *projectOp) Err() error   { return o.in.Err() }
func (o *projectOp) Close() error { return o.in.Close() }

// limitOp bounds the stream to the first n rows.
type limitOp struct {
	in        Operator
	remaining uint64
	row       Row
}

func (o *limitOp) Next() bool {
	if o.remaining == 0 || !o.in.Next() {
		return false
	}
	o.remaining--
	o.row = o.in.Row()
	return true
}

func (o *limitOp) Row() Row     { return o.row }
func (o *limitOp) Err() error   { return o.in.Err() }
func (o *limitOp) Close() error { return o.in.Close() }

// groupReader batches an operator's stream into its consecutive
// equal-key groups — the unit MergeJoin and GroupBy work in. Inputs are
// key-ordered, so one group is fully buffered with one row of
// lookahead.
type groupReader struct {
	op   Operator
	next Row
	have bool
	done bool
}

// group returns the next key group, or nil when the stream is
// exhausted (check op.Err afterwards).
func (g *groupReader) group() []Row {
	if !g.have {
		if g.done || !g.op.Next() {
			g.done = true
			return nil
		}
		g.next, g.have = g.op.Row(), true
	}
	out := []Row{g.next}
	key := g.next.Key
	g.have = false
	for g.op.Next() {
		r := g.op.Row()
		if !r.Key.Equal(key) {
			g.next, g.have = r, true
			break
		}
		out = append(out, r)
	}
	if !g.have {
		g.done = true
	}
	return out
}

// groupByOp aggregates each key group into one row: the version count
// plus the group's first and last version in stream order (a single
// entry when they coincide) — min/max over a key's history falls out of
// the window ordering.
type groupByOp struct {
	in  Operator
	gr  *groupReader
	row Row
}

func (o *groupByOp) Next() bool {
	if o.gr == nil {
		o.gr = &groupReader{op: o.in}
	}
	rows := o.gr.group()
	if rows == nil {
		return false
	}
	agg := Row{Key: rows[0].Key}
	var first, last record.Version
	haveFirst := false
	for _, r := range rows {
		agg.Count += uint64(len(r.Versions))
		for _, v := range r.Versions {
			if !haveFirst {
				first, haveFirst = v, true
			}
			last = v
		}
	}
	if haveFirst {
		if agg.Count > 1 {
			agg.Versions = []record.Version{first, last}
		} else {
			agg.Versions = []record.Version{first}
		}
	}
	o.row = agg
	return true
}

func (o *groupByOp) Row() Row     { return o.row }
func (o *groupByOp) Err() error   { return o.in.Err() }
func (o *groupByOp) Close() error { return o.in.Close() }

// mergeJoinOp joins two key-ordered streams on key equality: the
// classic sort-merge join, with matching key groups combined pairwise
// (left row's versions first). Both inputs must run in the same
// direction; cmp flips for reverse streams.
type mergeJoinOp struct {
	left, right *groupReader
	reverse     bool
	lg, rg      []Row
	out         []Row
	pos         int
	row         Row
}

func newMergeJoin(left, right Operator, reverse bool) *mergeJoinOp {
	return &mergeJoinOp{
		left:    &groupReader{op: left},
		right:   &groupReader{op: right},
		reverse: reverse,
	}
}

func (o *mergeJoinOp) cmp(a, b record.Key) int {
	if o.reverse {
		return b.Compare(a)
	}
	return a.Compare(b)
}

func (o *mergeJoinOp) Next() bool {
	for {
		if o.pos < len(o.out) {
			o.row = o.out[o.pos]
			o.pos++
			return true
		}
		if o.lg == nil {
			if o.lg = o.left.group(); o.lg == nil {
				return false
			}
		}
		if o.rg == nil {
			if o.rg = o.right.group(); o.rg == nil {
				return false
			}
		}
		switch c := o.cmp(o.lg[0].Key, o.rg[0].Key); {
		case c < 0:
			o.lg = nil
		case c > 0:
			o.rg = nil
		default:
			o.out, o.pos = o.out[:0], 0
			for _, l := range o.lg {
				for _, r := range o.rg {
					vs := make([]record.Version, 0, len(l.Versions)+len(r.Versions))
					vs = append(append(vs, l.Versions...), r.Versions...)
					o.out = append(o.out, Row{
						Key:       l.Key,
						Versions:  vs,
						Count:     l.Count + r.Count,
						HasBefore: l.HasBefore || r.HasBefore,
						HasAfter:  l.HasAfter || r.HasAfter,
					})
				}
			}
			o.lg, o.rg = nil, nil
		}
	}
}

func (o *mergeJoinOp) Row() Row { return o.row }

func (o *mergeJoinOp) Err() error {
	if err := o.left.op.Err(); err != nil {
		return err
	}
	return o.right.op.Err()
}

func (o *mergeJoinOp) Close() error {
	err := o.left.op.Close()
	if rerr := o.right.op.Close(); err == nil {
		err = rerr
	}
	return err
}

// semiJoinOp filters the stream to keys present in a sorted key list —
// the secondary-index lookup merge-joined against the primary stream.
// Rows pass through unchanged.
type semiJoinOp struct {
	in      Operator
	keys    []record.Key // sorted in stream direction
	reverse bool
	i       int
	row     Row
}

func newSemiJoin(in Operator, keys []record.Key, reverse bool) *semiJoinOp {
	if reverse {
		for l, r := 0, len(keys)-1; l < r; l, r = l+1, r-1 {
			keys[l], keys[r] = keys[r], keys[l]
		}
	}
	return &semiJoinOp{in: in, keys: keys, reverse: reverse}
}

func (o *semiJoinOp) cmp(a, b record.Key) int {
	if o.reverse {
		return b.Compare(a)
	}
	return a.Compare(b)
}

func (o *semiJoinOp) Next() bool {
	for o.in.Next() {
		r := o.in.Row()
		for o.i < len(o.keys) && o.cmp(o.keys[o.i], r.Key) < 0 {
			o.i++
		}
		if o.i >= len(o.keys) {
			return false
		}
		if o.keys[o.i].Equal(r.Key) {
			o.row = r
			return true
		}
	}
	return false
}

func (o *semiJoinOp) Row() Row     { return o.row }
func (o *semiJoinOp) Err() error   { return o.in.Err() }
func (o *semiJoinOp) Close() error { return o.in.Close() }

// diffOp folds a (key, time)-ordered window stream over [from, to+1)
// into change rows, replicating core.Tree.Diff's per-key endpoint
// comparison one group at a time: the change-cursor. Keys arrive in
// stream order (descending for a reverse diff); keys whose state did
// not change between the endpoints produce no row.
type diffOp struct {
	in       Operator
	gr       *groupReader
	from, to record.Timestamp
	row      Row
}

func (o *diffOp) Next() bool {
	if o.gr == nil {
		o.gr = &groupReader{op: o.in}
	}
	for {
		rows := o.gr.group()
		if rows == nil {
			return false
		}
		var atFrom, atTo record.Version
		hasFrom, hasTo, changedIn := false, false, false
		for _, r := range rows {
			for _, v := range r.Versions {
				if v.Time <= o.from {
					atFrom, hasFrom = v, !v.Tombstone
				} else {
					changedIn = true
				}
				if v.Time <= o.to && (!hasTo || v.Time > atTo.Time) {
					atTo, hasTo = v, true
				}
			}
		}
		if !changedIn {
			continue
		}
		row := Row{Key: rows[0].Key}
		if hasFrom {
			row.Versions = append(row.Versions, atFrom)
			row.HasBefore = true
		}
		if hasTo && !atTo.Tombstone {
			row.Versions = append(row.Versions, atTo)
			row.HasAfter = true
		}
		if !row.HasBefore && !row.HasAfter {
			continue // created and deleted inside the window
		}
		o.row = row
		return true
	}
}

func (o *diffOp) Row() Row     { return o.row }
func (o *diffOp) Err() error   { return o.in.Err() }
func (o *diffOp) Close() error { return o.in.Close() }
