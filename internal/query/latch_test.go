package query_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/query"
	"repro/internal/record"
	"repro/internal/txn"
)

// shardKey builds a key owned by shard i of n.
func shardKey(i, n, j int) record.Key {
	return append(record.ShardBoundary(i, n).Clone(), []byte(fmt.Sprintf("x%04d", j))...)
}

// TestQueryHoldsNoLatchMidStream extends the abandoned-cursor latch
// contract to operator trees: a merge join and a parallel scan paused
// mid-stream (between Next calls, neither drained nor closed) hold no
// shard latch, so exclusive-latch writers on EVERY shard proceed
// immediately. Afterwards the paused operators resume and still
// observe only their snapshot.
func TestQueryHoldsNoLatchMidStream(t *testing.T) {
	const shards = 4
	d := openTestDB(t, shards)
	defer d.Close()
	for i := 0; i < shards; i++ {
		for j := 0; j < 16; j++ {
			err := d.Update(func(tx *txn.Txn) error {
				return tx.Put(shardKey(i, shards, j), []byte("seed"))
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}

	// A merge join mid-stream: both inputs have filled at least once.
	join, err := d.Query(query.Scan(nil, record.InfiniteBound()).
		Join(query.Scan(nil, record.InfiniteBound())))
	if err != nil {
		t.Fatal(err)
	}
	defer join.Close()
	if !join.Next() {
		t.Fatalf("join empty: %v", join.Err())
	}

	// A parallel scan mid-stream: one goroutine per shard, all alive.
	par := query.Scan(nil, record.InfiniteBound())
	par.Parallel = true
	pscan, err := d.Query(par)
	if err != nil {
		t.Fatal(err)
	}
	defer pscan.Close()
	if !pscan.Next() {
		t.Fatalf("parallel scan empty: %v", pscan.Err())
	}

	// Both operators now sit between Next calls. Writers must take the
	// exclusive latch of every shard without waiting on them.
	done := make(chan error, 1)
	go func() {
		for round := 0; round < 32; round++ {
			for i := 0; i < shards; i++ {
				err := d.Update(func(tx *txn.Txn) error {
					return tx.Put(shardKey(i, shards, round), []byte("after"))
				})
				if err != nil {
					done <- err
					return
				}
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("writers blocked: a paused operator is holding a shard latch")
	}

	// The paused operators finish their snapshots untainted.
	joinRows, parRows := 1, 1
	for join.Next() {
		for _, v := range join.Row().Versions {
			if string(v.Value) != "seed" {
				t.Fatalf("join leaked a post-snapshot write: %v", v)
			}
		}
		joinRows++
	}
	if err := join.Err(); err != nil {
		t.Fatal(err)
	}
	for pscan.Next() {
		if string(pscan.Row().Versions[0].Value) != "seed" {
			t.Fatalf("parallel scan leaked a post-snapshot write: %v", pscan.Row())
		}
		parRows++
	}
	if err := pscan.Err(); err != nil {
		t.Fatal(err)
	}
	if want := shards * 16; joinRows != want || parRows != want {
		t.Fatalf("rows after resume: join=%d par=%d, want %d", joinRows, parRows, want)
	}
}
