package query_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/db"
	"repro/internal/query"
	"repro/internal/record"
	"repro/internal/txn"
)

// The relational oracle: a naive in-memory model of every committed
// version, against which random operator trees are checked. The model
// evaluates each operator by brute force over the full version log —
// no trees, no cursors, no pushdown — so agreement with the streamed
// pipeline is evidence the whole stack (pushdown rewrite, paged window
// scans, parallel shard merge, join/group/diff operators) preserves
// relational semantics.

type mv struct {
	key  string
	time record.Timestamp
	val  string
	tomb bool
}

type model struct {
	vs []mv
}

func (m *model) keys() []string {
	set := map[string]bool{}
	for _, v := range m.vs {
		set[v.key] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (m *model) keysIn(low record.Key, high record.Bound) []string {
	var out []string
	for _, k := range m.keys() {
		rk := record.Key(k)
		if rk.Compare(low) < 0 || high.CompareKey(rk) <= 0 {
			continue
		}
		out = append(out, k)
	}
	return out
}

// visible returns the key's newest version at or before t, if it exists
// and is not a tombstone.
func (m *model) visible(key string, t record.Timestamp) (mv, bool) {
	var best mv
	found := false
	for _, v := range m.vs {
		if v.key == key && v.time <= t && (!found || v.time > best.time) {
			best, found = v, true
		}
	}
	if !found || best.tomb {
		return mv{}, false
	}
	return best, true
}

func (m *model) versionsOf(key string) []mv {
	var out []mv
	for _, v := range m.vs {
		if v.key == key {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].time < out[j].time })
	return out
}

func toVersion(v mv) record.Version {
	return record.Version{Key: record.Key(v.key), Time: v.time, Value: []byte(v.val), Tombstone: v.tomb}
}

// snapshotRows models a snapshot scan: per key, the newest version at
// or before t, tombstones hidden.
func (m *model) snapshotRows(low record.Key, high record.Bound, t record.Timestamp, reverse bool) []query.Row {
	var rows []query.Row
	for _, k := range m.keysIn(low, high) {
		if v, ok := m.visible(k, t); ok {
			rows = append(rows, query.Row{Key: record.Key(k), Versions: []record.Version{toVersion(v)}})
		}
	}
	if reverse {
		reverseRows(rows)
	}
	return rows
}

// windowRows models core.Tree.ScanRange: per key, the version alive at
// the window's start (newest strictly before `from`, kept only when it
// is not a tombstone and no version sits exactly at `from`) plus every
// version committed in [from, to), tombstones included, in (key, time)
// order — both descending under reverse.
func (m *model) windowRows(low record.Key, high record.Bound, from, to record.Timestamp, reverse bool) []query.Row {
	if to <= from {
		return nil
	}
	var rows []query.Row
	for _, k := range m.keysIn(low, high) {
		var set []mv
		var alive mv
		hasAlive, atFrom := false, false
		for _, v := range m.versionsOf(k) {
			switch {
			case v.time >= to:
			case v.time >= from:
				if v.time == from {
					atFrom = true
				}
				set = append(set, v)
			default:
				if !hasAlive || v.time > alive.time {
					alive, hasAlive = v, true
				}
			}
		}
		if hasAlive && !atFrom && !alive.tomb {
			set = append([]mv{alive}, set...)
		}
		if reverse {
			for i := len(set) - 1; i >= 0; i-- {
				rows = append(rows, query.Row{Key: record.Key(k), Versions: []record.Version{toVersion(set[i])}})
			}
		} else {
			for _, v := range set {
				rows = append(rows, query.Row{Key: record.Key(k), Versions: []record.Version{toVersion(v)}})
			}
		}
	}
	if reverse {
		reverseByKey(rows)
	}
	return rows
}

// diffRows models db.Diff: keys with at least one commit in (from, to],
// reported with the visible state at each endpoint; keys both created
// and dead inside the window produce nothing.
func (m *model) diffRows(low record.Key, high record.Bound, from, to record.Timestamp, reverse bool) []query.Row {
	if to <= from {
		return nil
	}
	var rows []query.Row
	for _, k := range m.keysIn(low, high) {
		changed := false
		for _, v := range m.versionsOf(k) {
			if v.time > from && v.time <= to {
				changed = true
			}
		}
		if !changed {
			continue
		}
		row := query.Row{Key: record.Key(k)}
		if before, ok := m.visible(k, from); ok {
			row.Versions = append(row.Versions, toVersion(before))
			row.HasBefore = true
		}
		if after, ok := m.visible(k, to); ok {
			row.Versions = append(row.Versions, toVersion(after))
			row.HasAfter = true
		}
		if !row.HasBefore && !row.HasAfter {
			continue
		}
		rows = append(rows, row)
	}
	if reverse {
		reverseRows(rows)
	}
	return rows
}

func reverseRows(rows []query.Row) {
	for l, r := 0, len(rows)-1; l < r; l, r = l+1, r-1 {
		rows[l], rows[r] = rows[r], rows[l]
	}
}

// reverseByKey flips key order while keeping each key's rows in their
// already-reversed per-key order (windowRows emits them per key).
func reverseByKey(rows []query.Row) {
	var out []query.Row
	for i := len(rows); i > 0; {
		j := i
		for j > 0 && rows[j-1].Key.Equal(rows[i-1].Key) {
			j--
		}
		out = append(out, rows[j:i]...)
		i = j
	}
	copy(rows, out)
}

// groupRuns splits a row stream into its consecutive equal-key runs.
func groupRuns(rows []query.Row) [][]query.Row {
	var runs [][]query.Row
	for i := 0; i < len(rows); {
		j := i + 1
		for j < len(rows) && rows[j].Key.Equal(rows[i].Key) {
			j++
		}
		runs = append(runs, rows[i:j])
		i = j
	}
	return runs
}

// eval runs the operator tree against the model at snapshot `at`,
// mirroring the streamed semantics by brute force.
func (m *model) eval(s *query.Spec, at record.Timestamp) []query.Row {
	switch s.Kind {
	case query.OpScan:
		if s.From == 0 && s.To == 0 {
			t := s.At
			if t == 0 {
				t = at
			}
			return m.snapshotRows(s.Low, s.High, t, s.Reverse)
		}
		return m.windowRows(s.Low, s.High, s.From, s.To, s.Reverse)
	case query.OpHistory:
		from, to := s.From, s.To
		if from == 0 {
			from = record.TimeZero + 1
		}
		if to == 0 {
			to = record.TimeInfinity
		}
		high := record.KeyBound(append(s.Key.Clone(), 0))
		return m.windowRows(s.Key, high, from, to, s.Reverse)
	case query.OpDiff:
		return m.diffRows(s.Low, s.High, s.From, s.To, s.Reverse)
	case query.OpFilter:
		var out []query.Row
		for _, r := range m.eval(s.Input, at) {
			if s.HasKeyRange {
				if r.Key.Compare(s.FilterLow) < 0 || s.FilterHigh.CompareKey(r.Key) <= 0 {
					continue
				}
			}
			if s.ValuePrefix != nil {
				if len(r.Versions) == 0 || !bytes.HasPrefix(r.Versions[0].Value, s.ValuePrefix) {
					continue
				}
			}
			out = append(out, r)
		}
		return out
	case query.OpProject:
		var out []query.Row
		for _, r := range m.eval(s.Input, at) {
			vs := make([]record.Version, len(r.Versions))
			for i, v := range r.Versions {
				v.Value = nil
				v.TxnID = 0
				vs[i] = v
			}
			r.Versions = vs
			out = append(out, r)
		}
		return out
	case query.OpGroupBy:
		var out []query.Row
		for _, run := range groupRuns(m.eval(s.Input, at)) {
			agg := query.Row{Key: run[0].Key}
			var first, last record.Version
			haveFirst := false
			for _, r := range run {
				agg.Count += uint64(len(r.Versions))
				for _, v := range r.Versions {
					if !haveFirst {
						first, haveFirst = v, true
					}
					last = v
				}
			}
			if haveFirst {
				if agg.Count > 1 {
					agg.Versions = []record.Version{first, last}
				} else {
					agg.Versions = []record.Version{first}
				}
			}
			out = append(out, agg)
		}
		return out
	case query.OpLimit:
		rows := m.eval(s.Input, at)
		if uint64(len(rows)) > s.Limit {
			rows = rows[:s.Limit]
		}
		return rows
	case query.OpMergeJoin:
		lruns := groupRuns(m.eval(s.Left, at))
		rruns := groupRuns(m.eval(s.Right, at))
		reverse := specReverse(s.Left)
		var out []query.Row
		i, j := 0, 0
		cmp := func(a, b record.Key) int {
			if reverse {
				return b.Compare(a)
			}
			return a.Compare(b)
		}
		for i < len(lruns) && j < len(rruns) {
			switch c := cmp(lruns[i][0].Key, rruns[j][0].Key); {
			case c < 0:
				i++
			case c > 0:
				j++
			default:
				for _, l := range lruns[i] {
					for _, r := range rruns[j] {
						vs := make([]record.Version, 0, len(l.Versions)+len(r.Versions))
						vs = append(append(vs, l.Versions...), r.Versions...)
						out = append(out, query.Row{
							Key:       l.Key,
							Versions:  vs,
							Count:     l.Count + r.Count,
							HasBefore: l.HasBefore || r.HasBefore,
							HasAfter:  l.HasAfter || r.HasAfter,
						})
					}
				}
				i++
				j++
			}
		}
		return out
	case query.OpSecondaryJoin:
		lookupAt := s.At
		if lookupAt == 0 {
			lookupAt = at
		}
		member := map[string]bool{}
		for _, k := range m.keys() {
			if v, ok := m.visible(k, lookupAt); ok && len(v.val) > 0 && v.val[:1] == string(s.SKey) {
				member[k] = true
			}
		}
		var out []query.Row
		for _, r := range m.eval(s.Input, at) {
			if member[string(r.Key)] {
				out = append(out, r)
			}
		}
		return out
	}
	return nil
}

func specReverse(s *query.Spec) bool {
	switch {
	case s == nil:
		return false
	case s.Input != nil:
		return specReverse(s.Input)
	case s.Left != nil:
		return specReverse(s.Left)
	default:
		return s.Reverse
	}
}

// canon serializes a row stream canonically; byte equality of two
// streams is the oracle's verdict. TxnID is excluded — the model does
// not track transaction ids.
func canon(rows []query.Row) string {
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "K=%q C=%d B=%v A=%v [", r.Key, r.Count, r.HasBefore, r.HasAfter)
		for _, v := range r.Versions {
			fmt.Fprintf(&b, "(%q@%d t=%v %q)", v.Key, v.Time, v.Tombstone, v.Value)
		}
		b.WriteString("]\n")
	}
	return b.String()
}

func specString(s *query.Spec) string {
	if s == nil {
		return "nil"
	}
	desc := fmt.Sprintf("%s{low=%q high=%v at=%d from=%d to=%d key=%q rev=%v par=%v flow=%q fhigh=%v vp=%q skey=%q lim=%d}",
		s.Kind, s.Low, s.High, s.At, s.From, s.To, s.Key, s.Reverse, s.Parallel,
		s.FilterLow, s.FilterHigh, s.ValuePrefix, s.SKey, s.Limit)
	switch {
	case s.Left != nil:
		return desc + "(" + specString(s.Left) + ", " + specString(s.Right) + ")"
	case s.Input != nil:
		return desc + "(" + specString(s.Input) + ")"
	}
	return desc
}

// --- dataset and spec generation ---

func buildDataset(t *testing.T, r *rand.Rand) (*db.DB, *model, []string) {
	t.Helper()
	shards := 1 + r.Intn(8)
	d, err := db.Open(db.Config{Shards: shards, LeafCapacity: 256, IndexCapacity: 1024})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := d.CreateSecondary("byclass", func(v []byte) record.Key {
		if len(v) == 0 {
			return nil
		}
		return record.Key(v[:1])
	}); err != nil {
		t.Fatalf("create secondary: %v", err)
	}

	nkeys := 8 + r.Intn(25)
	keys := make([]string, nkeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%03d", i)
	}
	m := &model{}
	live := map[string]bool{}
	rounds := 20 + r.Intn(30)
	for i := 0; i < rounds; i++ {
		picked := map[string]bool{}
		n := 1 + r.Intn(4)
		type op struct {
			key, val string
			del      bool
		}
		var ops []op
		for j := 0; j < n; j++ {
			k := keys[r.Intn(nkeys)]
			if picked[k] {
				continue // one write per key per txn
			}
			picked[k] = true
			if live[k] && r.Intn(5) == 0 {
				ops = append(ops, op{key: k, del: true})
			} else {
				val := fmt.Sprintf("%c%03d", 'a'+r.Intn(3), r.Intn(1000))
				ops = append(ops, op{key: k, val: val})
			}
		}
		if len(ops) == 0 {
			continue
		}
		var tx *txn.Txn
		err := d.Update(func(t *txn.Txn) error {
			tx = t
			for _, o := range ops {
				if o.del {
					if err := t.Delete(record.Key(o.key)); err != nil {
						return err
					}
				} else if err := t.Put(record.Key(o.key), []byte(o.val)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("update: %v", err)
		}
		ct := tx.CommitTime()
		for _, o := range ops {
			m.vs = append(m.vs, mv{key: o.key, time: ct, val: o.val, tomb: o.del})
			live[o.key] = !o.del
		}
	}
	return d, m, keys
}

// genSpec builds a random valid operator tree whose every time bound is
// at or before `at`, so results are stable under concurrent writers.
func genSpec(r *rand.Rand, keys []string, at record.Timestamp) *query.Spec {
	randKey := func() record.Key { return record.Key(keys[r.Intn(len(keys))]) }
	randLow := func() record.Key {
		if r.Intn(3) == 0 {
			return nil
		}
		return randKey()
	}
	randHigh := func() record.Bound {
		if r.Intn(3) == 0 {
			return record.InfiniteBound()
		}
		return record.KeyBound(randKey())
	}
	randTime := func() record.Timestamp { return 1 + record.Timestamp(r.Int63n(int64(at))) }
	reverse := r.Intn(2) == 0

	source := func() *query.Spec {
		switch r.Intn(5) {
		case 0: // snapshot scan
			s := query.Scan(randLow(), randHigh())
			s.Reverse = reverse
			s.Parallel = r.Intn(2) == 0
			return s
		case 1: // window scan
			from := randTime()
			to := from + 1 + record.Timestamp(r.Int63n(int64(at-from)+2))
			if to > at+1 {
				to = at + 1
			}
			s := query.Window(randLow(), randHigh(), from, to)
			s.Reverse = reverse
			s.Parallel = r.Intn(2) == 0
			return s
		case 2: // history
			s := query.History(randKey())
			s.From, s.To = 1, at+1
			s.Reverse = reverse
			return s
		case 3: // diff
			t1 := randTime()
			t2 := t1 + record.Timestamp(r.Int63n(int64(at-t1)+1))
			s := query.Diff(randLow(), randHigh(), t1, t2)
			s.Reverse = reverse
			return s
		default: // merge join of two scans
			l := query.Scan(randLow(), randHigh())
			l.Reverse = reverse
			l.Parallel = r.Intn(2) == 0
			rg := query.Scan(randLow(), randHigh())
			rg.Reverse = reverse
			return l.Join(rg)
		}
	}

	s := source()
	for n := r.Intn(3); n > 0; n-- {
		switch r.Intn(5) {
		case 0:
			lo, hi := randLow(), randHigh()
			s = s.Filter(lo, hi)
		case 1:
			s = s.FilterValuePrefix([]byte{byte('a' + r.Intn(3))})
		case 2:
			s = s.Project()
		case 3:
			s = s.GroupBy()
		default:
			s = s.JoinSecondary("byclass", record.Key{byte('a' + r.Intn(3))}, at)
		}
	}
	if r.Intn(3) == 0 {
		s = s.WithLimit(uint64(1 + r.Intn(20)))
	}
	return s
}

func collectRowsAt(t *testing.T, d *db.DB, at record.Timestamp, spec *query.Spec) []query.Row {
	t.Helper()
	op, err := d.QueryAt(at, spec)
	if err != nil {
		t.Fatalf("query %s: %v", specString(spec), err)
	}
	defer op.Close()
	var out []query.Row
	for op.Next() {
		out = append(out, op.Row())
	}
	if err := op.Err(); err != nil {
		t.Fatalf("rows %s: %v", specString(spec), err)
	}
	return out
}

// TestQueryOracle is the property test: random datasets (1–8 shards) ×
// random operator trees, the streamed pipeline byte-identical to the
// naive relational oracle, while background writers commit on every
// shard (run with -race: the pinned snapshot keeps results stable, and
// the writers make any latch-discipline violation in the parallel
// scans visible).
func TestQueryOracle(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			d, m, keys := buildDataset(t, r)
			defer d.Close()
			at := d.Now()

			// Background writers: concurrent commits spread over every
			// shard while the queries stream.
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						_ = d.Update(func(tx *txn.Txn) error {
							return tx.Put(record.Key(fmt.Sprintf("zw%d-%06d", w, i%64)), []byte("zz"))
						})
					}
				}(w)
			}
			defer func() { close(stop); wg.Wait() }()

			for q := 0; q < 30; q++ {
				spec := genSpec(r, keys, at)
				if err := spec.Validate(); err != nil {
					t.Fatalf("generator produced invalid spec %s: %v", specString(spec), err)
				}
				want := canon(m.eval(spec, at))
				got := canon(collectRowsAt(t, d, at, spec))
				if got != want {
					t.Fatalf("query %d diverged from oracle\nspec: %s\n--- engine ---\n%s--- oracle ---\n%s",
						q, specString(spec), got, want)
				}
			}
		})
	}
}
