// Package wire defines the tsbserve network protocol: the op and status
// codes, the typed error both sides exchange, and the message
// encode/decode helpers shared by internal/server and its client.
//
// Transport framing is record.AppendFrame/ReadFrame — the same
// length-prefixed, CRC32-C-guarded frame shape the WAL uses — so one
// fuzzed decoder guards both the durability and the network surface.
// One frame carries one message. Message bodies are encoded with
// record.Encoder/Decoder (uvarints, length-prefixed blobs): there is no
// second codec layer.
//
// A request frame is an op byte followed by the op's fields. A response
// frame is a status byte — StatusOK or an error code — followed by the
// op's reply fields (OK) or a message blob (error). Responses return in
// request order on each connection, so frames need no correlation ids:
// the pipeline window IS the correlation.
package wire

import (
	"errors"
	"fmt"

	"repro/internal/record"
)

// ProtocolVersion is sent in Hello; the server rejects versions it does
// not speak.
const ProtocolVersion = 1

// DefaultMaxFrame bounds one message frame's payload unless configured
// otherwise: requests and responses alike must fit.
const DefaultMaxFrame = 1 << 20

// MaxTenantLen bounds the tenant id in Hello.
const MaxTenantLen = 256

// Request op codes.
const (
	OpHello byte = iota + 1 // must be the first frame of a connection
	OpPut
	OpGet
	OpDelete
	OpCommit
	OpOpenCursor
	OpFetch
	OpCloseCursor
	OpRefresh
	OpStats
	OpPing
	OpOpenQuery  // query.go: open a composed-operator query cursor
	OpQueryFetch // query.go: fetch one row batch from it
)

// Response status codes. StatusOK precedes reply fields; every other
// code precedes a message blob and is carried to the caller as *Error.
const (
	StatusOK byte = iota
	CodeOverloaded
	CodeConflict
	CodeBadRequest
	CodeUnknownCursor
	CodeShuttingDown
	CodeInternal
)

// Error is the typed server-reported failure of one operation. The
// retryable codes are the load-shedding and contention outcomes: the
// operation was refused before any effect, so the client may simply try
// again (elsewhere, or after backoff).
type Error struct {
	Code byte
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("tsbserve: %s: %s", codeName(e.Code), e.Msg)
}

// Retryable reports whether the operation was refused without effect
// and can be re-issued: admission-control shedding (CodeOverloaded),
// no-wait lock conflicts (CodeConflict), and drain (CodeShuttingDown).
func (e *Error) Retryable() bool {
	return e.Code == CodeOverloaded || e.Code == CodeConflict || e.Code == CodeShuttingDown
}

func codeName(c byte) string {
	switch c {
	case CodeOverloaded:
		return "overloaded"
	case CodeConflict:
		return "conflict"
	case CodeBadRequest:
		return "bad request"
	case CodeUnknownCursor:
		return "unknown cursor"
	case CodeShuttingDown:
		return "shutting down"
	case CodeInternal:
		return "internal"
	}
	return fmt.Sprintf("code %d", c)
}

// IsRetryable reports whether err is a typed server error the caller
// may re-issue.
func IsRetryable(err error) bool {
	var we *Error
	return errors.As(err, &we) && we.Retryable()
}

// IsOverloaded reports whether err is the admission-control shed error.
func IsOverloaded(err error) bool {
	var we *Error
	return errors.As(err, &we) && we.Code == CodeOverloaded
}

// AppendError appends an error response (status + message blob).
func AppendError(buf []byte, code byte, msg string) []byte {
	e := record.NewEncoder(buf)
	e.Byte(code)
	e.Blob([]byte(msg))
	return e.Bytes()
}

// DecodeResponse splits a response payload into its body decoder, or
// the *Error an error status carries.
func DecodeResponse(payload []byte) (*record.Decoder, error) {
	d := record.NewDecoder(payload)
	status := d.Byte()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("wire: short response: %w", err)
	}
	if status == StatusOK {
		return d, nil
	}
	msg := d.Blob()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("wire: short error response: %w", err)
	}
	return nil, &Error{Code: status, Msg: string(msg)}
}

// Hello opens a session: it must be the connection's first request.
// At pins the session's read snapshot; 0 pins "now" (the server's
// commit clock at session open). The reply is the pinned timestamp.
type Hello struct {
	Version uint64
	Tenant  []byte
	At      record.Timestamp
}

// AppendHello appends an OpHello request.
func AppendHello(buf []byte, h Hello) []byte {
	e := record.NewEncoder(buf)
	e.Byte(OpHello)
	e.Uvarint(h.Version)
	e.Blob(h.Tenant)
	e.Time(h.At)
	return e.Bytes()
}

// DecodeHello decodes the fields after the op byte.
func DecodeHello(d *record.Decoder) (Hello, error) {
	var h Hello
	h.Version = d.Uvarint()
	h.Tenant = d.Blob()
	h.At = d.Time()
	if err := d.Err(); err != nil {
		return Hello{}, err
	}
	if len(h.Tenant) > MaxTenantLen {
		return Hello{}, fmt.Errorf("tenant id %d bytes exceeds %d", len(h.Tenant), MaxTenantLen)
	}
	return h, nil
}

// CommitOp is one write of an atomic multi-op commit.
type CommitOp struct {
	Delete bool
	Key    record.Key
	Value  []byte // ignored for deletes
}

// AppendCommit appends an OpCommit request carrying ops as one atomic
// transaction.
func AppendCommit(buf []byte, ops []CommitOp) []byte {
	e := record.NewEncoder(buf)
	e.Byte(OpCommit)
	e.Uvarint(uint64(len(ops)))
	for _, op := range ops {
		e.Bool(op.Delete)
		e.Key(op.Key)
		if op.Delete {
			e.Blob(nil)
		} else {
			e.Blob(op.Value)
		}
	}
	return e.Bytes()
}

// DecodeCommit decodes the fields after the op byte. The count guard
// mirrors the record decoder's anti-balloon rule: each op costs at
// least three bytes on the wire, so a count beyond Remaining/3 is
// corruption, rejected before any allocation trusts it.
func DecodeCommit(d *record.Decoder) ([]CommitOp, error) {
	n := d.Uvarint()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n > uint64(d.Remaining()/3)+1 {
		return nil, fmt.Errorf("commit op count %d exceeds payload", n)
	}
	ops := make([]CommitOp, 0, n)
	for i := uint64(0); i < n; i++ {
		var op CommitOp
		op.Delete = d.Bool()
		op.Key = d.Key()
		op.Value = d.Blob()
		if err := d.Err(); err != nil {
			return nil, err
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// OpenCursor starts a server-side cursor over [Low, High) of the
// session's namespace. At 0 reads at the session snapshot; Limit 0 is
// unlimited; Reverse yields descending keys.
type OpenCursor struct {
	Low     record.Key
	High    record.Bound
	At      record.Timestamp
	Limit   uint64
	Reverse bool
}

// AppendOpenCursor appends an OpOpenCursor request.
func AppendOpenCursor(buf []byte, oc OpenCursor) []byte {
	e := record.NewEncoder(buf)
	e.Byte(OpOpenCursor)
	e.Key(oc.Low)
	e.Bound(oc.High)
	e.Time(oc.At)
	e.Uvarint(oc.Limit)
	e.Bool(oc.Reverse)
	return e.Bytes()
}

// DecodeOpenCursor decodes the fields after the op byte.
func DecodeOpenCursor(d *record.Decoder) (OpenCursor, error) {
	var oc OpenCursor
	oc.Low = d.Key()
	oc.High = d.Bound()
	oc.At = d.Time()
	oc.Limit = d.Uvarint()
	oc.Reverse = d.Bool()
	if err := d.Err(); err != nil {
		return OpenCursor{}, err
	}
	return oc, nil
}

// StatsReply is the server's observability surface on the wire —
// what `tsbserve -status` renders.
type StatsReply struct {
	Conns            uint64 // open connections
	TotalConns       uint64 // connections ever accepted
	InFlight         uint64 // requests read but not yet responded
	Ops              uint64 // operations executed
	Shed             uint64 // writes refused by admission control
	Cursors          uint64 // open server-side cursors
	CursorsReclaimed uint64 // cursors reaped by lease expiry
	P50Micros        uint64 // op latency percentiles (histogram upper bounds)
	P99Micros        uint64
	Draining         bool
	// PerOp breaks op latency down by op class, executed classes only.
	// The list trails the fixed fields on the wire and may be absent (a
	// pre-extension peer): absence decodes as nil.
	PerOp []OpClassStats
}

// OpClassStats is one op class's latency summary inside StatsReply.
// Percentiles and max are histogram upper bounds in microseconds.
type OpClassStats struct {
	Name      string
	Count     uint64
	P50Micros uint64
	P99Micros uint64
	MaxMicros uint64
}

// AppendStatsReply appends the OK response body of an OpStats request.
func AppendStatsReply(buf []byte, s StatsReply) []byte {
	e := record.NewEncoder(buf)
	e.Uvarint(s.Conns)
	e.Uvarint(s.TotalConns)
	e.Uvarint(s.InFlight)
	e.Uvarint(s.Ops)
	e.Uvarint(s.Shed)
	e.Uvarint(s.Cursors)
	e.Uvarint(s.CursorsReclaimed)
	e.Uvarint(s.P50Micros)
	e.Uvarint(s.P99Micros)
	e.Bool(s.Draining)
	e.Uvarint(uint64(len(s.PerOp)))
	for _, oc := range s.PerOp {
		e.Blob([]byte(oc.Name))
		e.Uvarint(oc.Count)
		e.Uvarint(oc.P50Micros)
		e.Uvarint(oc.P99Micros)
		e.Uvarint(oc.MaxMicros)
	}
	return e.Bytes()
}

// DecodeStatsReply decodes an OpStats OK response body.
func DecodeStatsReply(d *record.Decoder) (StatsReply, error) {
	var s StatsReply
	s.Conns = d.Uvarint()
	s.TotalConns = d.Uvarint()
	s.InFlight = d.Uvarint()
	s.Ops = d.Uvarint()
	s.Shed = d.Uvarint()
	s.Cursors = d.Uvarint()
	s.CursorsReclaimed = d.Uvarint()
	s.P50Micros = d.Uvarint()
	s.P99Micros = d.Uvarint()
	s.Draining = d.Bool()
	if d.Err() == nil && d.Remaining() > 0 {
		n := d.Uvarint()
		if n > 64 {
			return StatsReply{}, fmt.Errorf("wire: %d op classes in stats reply", n)
		}
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			var oc OpClassStats
			oc.Name = string(d.Blob())
			oc.Count = d.Uvarint()
			oc.P50Micros = d.Uvarint()
			oc.P99Micros = d.Uvarint()
			oc.MaxMicros = d.Uvarint()
			s.PerOp = append(s.PerOp, oc)
		}
	}
	if err := d.Err(); err != nil {
		return StatsReply{}, err
	}
	return s, nil
}
