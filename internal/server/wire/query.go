package wire

import (
	"fmt"

	"repro/internal/query"
	"repro/internal/record"
)

// Query protocol: OpOpenQuery ships a serialized query.Spec operator
// tree and replies with a cursor id (the same id space — and the same
// OpCloseCursor — as plain range cursors). OpQueryFetch returns one
// batch of rows from it.
//
// Unlike a plain cursor, a query cursor keeps a live operator pipeline
// on the server between fetches: a composed stream (join, group-by,
// diff) has no single resume key to re-seek from. That is safe under
// the engine's cursor contract — an idle operator holds no latch — and
// the cursor lease still bounds an abandoned pipeline's lifetime.

// Spec node flag bits on the wire.
const (
	specReverse byte = 1 << iota
	specParallel
	specHasKeyRange
	specKeysOnly
)

// Row flag bits on the wire.
const (
	rowHasBefore byte = 1 << iota
	rowHasAfter
)

// AppendOpenQuery appends an OpOpenQuery request carrying the operator
// tree. Specs holding a Where closure cannot travel and are refused
// here, before any bytes move.
func AppendOpenQuery(buf []byte, s *query.Spec) ([]byte, error) {
	e := record.NewEncoder(buf)
	e.Byte(OpOpenQuery)
	nodes := 0
	if err := appendSpec(e, s, 1, &nodes); err != nil {
		return nil, err
	}
	return e.Bytes(), nil
}

func appendSpec(e *record.Encoder, s *query.Spec, depth int, nodes *int) error {
	if s == nil {
		return fmt.Errorf("wire: nil spec node")
	}
	if depth > query.MaxSpecDepth {
		return fmt.Errorf("wire: spec deeper than %d", query.MaxSpecDepth)
	}
	if *nodes++; *nodes > query.MaxSpecNodes {
		return fmt.Errorf("wire: spec larger than %d nodes", query.MaxSpecNodes)
	}
	if s.Where != nil {
		return fmt.Errorf("wire: Where closures do not serialize; express wire filters as key ranges or value prefixes")
	}
	e.Byte(byte(s.Kind))
	var flags byte
	if s.Reverse {
		flags |= specReverse
	}
	if s.Parallel {
		flags |= specParallel
	}
	if s.HasKeyRange {
		flags |= specHasKeyRange
	}
	if s.KeysOnly {
		flags |= specKeysOnly
	}
	e.Byte(flags)
	e.Key(s.Low)
	e.Bound(s.High)
	e.Time(s.At)
	e.Time(s.From)
	e.Time(s.To)
	e.Key(s.Key)
	e.Key(s.FilterLow)
	e.Bound(s.FilterHigh)
	e.Blob(s.ValuePrefix)
	e.Blob([]byte(s.Index))
	e.Key(s.SKey)
	e.Uvarint(s.Limit)
	// Child arity is implied by the kind; nothing else frames the tree.
	switch s.Kind {
	case query.OpScan, query.OpHistory, query.OpDiff:
		return nil
	case query.OpMergeJoin:
		if err := appendSpec(e, s.Left, depth+1, nodes); err != nil {
			return err
		}
		return appendSpec(e, s.Right, depth+1, nodes)
	default:
		return appendSpec(e, s.Input, depth+1, nodes)
	}
}

// DecodeOpenQuery decodes the operator tree after the op byte. The
// depth and node guards run during the decode itself, so a crafted
// frame is refused before it can balloon the tree; full semantic
// validation is query.Spec.Validate, run by Compile on the server.
func DecodeOpenQuery(d *record.Decoder) (*query.Spec, error) {
	nodes := 0
	s, err := decodeSpec(d, 1, &nodes)
	if err != nil {
		return nil, err
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

func decodeSpec(d *record.Decoder, depth int, nodes *int) (*query.Spec, error) {
	if depth > query.MaxSpecDepth {
		return nil, fmt.Errorf("wire: spec deeper than %d", query.MaxSpecDepth)
	}
	if *nodes++; *nodes > query.MaxSpecNodes {
		return nil, fmt.Errorf("wire: spec larger than %d nodes", query.MaxSpecNodes)
	}
	var s query.Spec
	s.Kind = query.OpKind(d.Byte())
	flags := d.Byte()
	s.Reverse = flags&specReverse != 0
	s.Parallel = flags&specParallel != 0
	s.HasKeyRange = flags&specHasKeyRange != 0
	s.KeysOnly = flags&specKeysOnly != 0
	s.Low = d.Key()
	s.High = d.Bound()
	s.At = d.Time()
	s.From = d.Time()
	s.To = d.Time()
	s.Key = d.Key()
	s.FilterLow = d.Key()
	s.FilterHigh = d.Bound()
	s.ValuePrefix = d.Blob()
	s.Index = string(d.Blob())
	s.SKey = d.Key()
	s.Limit = d.Uvarint()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if len(s.ValuePrefix) == 0 {
		s.ValuePrefix = nil // empty blob decodes as "no predicate"
	}
	switch s.Kind {
	case query.OpScan, query.OpHistory, query.OpDiff:
		return &s, nil
	case query.OpMergeJoin:
		var err error
		if s.Left, err = decodeSpec(d, depth+1, nodes); err != nil {
			return nil, err
		}
		if s.Right, err = decodeSpec(d, depth+1, nodes); err != nil {
			return nil, err
		}
		return &s, nil
	case query.OpFilter, query.OpProject, query.OpSecondaryJoin, query.OpGroupBy, query.OpLimit:
		var err error
		if s.Input, err = decodeSpec(d, depth+1, nodes); err != nil {
			return nil, err
		}
		return &s, nil
	}
	return nil, fmt.Errorf("wire: unknown spec kind %d", byte(s.Kind))
}

// AppendQueryFetch appends an OpQueryFetch request. maxRows 0 asks for
// the server's default batch.
func AppendQueryFetch(buf []byte, id, maxRows uint64) []byte {
	e := record.NewEncoder(buf)
	e.Byte(OpQueryFetch)
	e.Uvarint(id)
	e.Uvarint(maxRows)
	return e.Bytes()
}

// EncodeRow appends one query row — the fetch reply's repeating unit.
func EncodeRow(e *record.Encoder, r query.Row) {
	e.Key(r.Key)
	var flags byte
	if r.HasBefore {
		flags |= rowHasBefore
	}
	if r.HasAfter {
		flags |= rowHasAfter
	}
	e.Byte(flags)
	e.Uvarint(r.Count)
	e.Versions(r.Versions)
}

// DecodeRow decodes one query row.
func DecodeRow(d *record.Decoder) (query.Row, error) {
	var r query.Row
	r.Key = d.Key()
	flags := d.Byte()
	r.HasBefore = flags&rowHasBefore != 0
	r.HasAfter = flags&rowHasAfter != 0
	r.Count = d.Uvarint()
	r.Versions = d.Versions()
	if err := d.Err(); err != nil {
		return query.Row{}, err
	}
	return r, nil
}
