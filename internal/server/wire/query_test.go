package wire

import (
	"testing"

	"repro/internal/query"
	"repro/internal/record"
)

func mustOpenQuery(t *testing.T, s *query.Spec) []byte {
	t.Helper()
	b, err := AppendOpenQuery(nil, s)
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	return b
}

func TestQuerySpecRoundTrip(t *testing.T) {
	specs := []*query.Spec{
		query.Scan(record.Key("a"), record.KeyBound(record.Key("z"))),
		query.Window(nil, record.InfiniteBound(), 5, 99).GroupBy(),
		query.History(record.Key("k")).WithLimit(7),
		query.Diff(nil, record.InfiniteBound(), 3, 9),
		query.Scan(nil, record.InfiniteBound()).
			Filter(record.Key("b"), record.KeyBound(record.Key("d"))).
			FilterValuePrefix([]byte("pre")).
			Project(),
		query.Scan(nil, record.InfiniteBound()).
			Join(query.Scan(record.Key("m"), record.InfiniteBound())),
		query.Scan(nil, record.InfiniteBound()).
			JoinSecondary("byclass", record.Key("x"), 42),
	}
	for i, s := range specs {
		b := mustOpenQuery(t, s)
		d := record.NewDecoder(b)
		if op := d.Byte(); op != OpOpenQuery {
			t.Fatalf("spec %d: op byte %d", i, op)
		}
		got, err := DecodeOpenQuery(d)
		if err != nil {
			t.Fatalf("spec %d: decode: %v", i, err)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("spec %d: decoded spec invalid: %v", i, err)
		}
		// Re-encode: the round trip must be byte-stable.
		b2, err := AppendOpenQuery(nil, got)
		if err != nil {
			t.Fatalf("spec %d: re-append: %v", i, err)
		}
		if string(b) != string(b2) {
			t.Fatalf("spec %d: re-encode differs\n  %x\n  %x", i, b, b2)
		}
	}
}

func TestQuerySpecRejectsWhere(t *testing.T) {
	s := query.Scan(nil, record.InfiniteBound()).FilterWhere(func(query.Row) bool { return true })
	if _, err := AppendOpenQuery(nil, s); err == nil {
		t.Fatal("Where closure serialized")
	}
}

func TestQueryRowRoundTrip(t *testing.T) {
	rows := []query.Row{
		{Key: record.Key("a"), Versions: []record.Version{{Key: record.Key("a"), Time: 7, Value: []byte("v")}}},
		{Key: record.Key("b"), Count: 9, HasBefore: true, HasAfter: true},
		{Key: nil},
	}
	for i, r := range rows {
		e := record.NewEncoder(nil)
		EncodeRow(e, r)
		got, err := DecodeRow(record.NewDecoder(e.Bytes()))
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if string(got.Key) != string(r.Key) || got.Count != r.Count ||
			got.HasBefore != r.HasBefore || got.HasAfter != r.HasAfter ||
			len(got.Versions) != len(r.Versions) {
			t.Fatalf("row %d: %+v != %+v", i, got, r)
		}
	}
}

// FuzzQueryWire hammers the spec decoder with arbitrary bytes: it must
// return a typed error or a tree that Validate can judge — never panic,
// never balloon. Valid encodings seed the corpus so mutation explores
// the interesting paths.
func FuzzQueryWire(f *testing.F) {
	seed := [][]byte{
		{},
		{0xff},
		{byte(query.OpScan)},
	}
	seedSpecs := []*query.Spec{
		query.Scan(nil, record.InfiniteBound()),
		query.Scan(record.Key("a"), record.KeyBound(record.Key("b"))).
			Filter(record.Key("a"), record.KeyBound(record.Key("b"))).GroupBy(),
		query.History(record.Key("k")),
		query.Diff(nil, record.InfiniteBound(), 1, 2).WithLimit(3),
		query.Scan(nil, record.InfiniteBound()).Join(query.Scan(nil, record.InfiniteBound())),
	}
	for _, s := range seedSpecs {
		b, err := AppendOpenQuery(nil, s)
		if err != nil {
			f.Fatal(err)
		}
		seed = append(seed, b[1:]) // fuzz the body after the op byte
	}
	for _, b := range seed {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeOpenQuery(record.NewDecoder(data))
		if err != nil {
			return // refused: the typed bad-request path
		}
		// Whatever decoded must survive validation and re-encoding
		// without panicking; Validate bounds the walk itself.
		if verr := s.Validate(); verr == nil {
			if _, aerr := AppendOpenQuery(nil, s); aerr != nil {
				t.Fatalf("valid decoded spec failed to re-encode: %v", aerr)
			}
		}
	})
}
