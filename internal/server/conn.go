package server

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"time"

	"repro/internal/db"
	"repro/internal/query"
	"repro/internal/record"
	"repro/internal/server/wire"
	"repro/internal/txn"
)

// session is one connection's server-side state: the tenant namespace,
// the pinned read snapshot, and the cursors it owns (reaped on close).
type session struct {
	id     uint64
	hello  bool
	tenant []byte
	at     record.Timestamp // pinned read snapshot
	nsLow  record.Key       // TenantRange(tenant)
	nsHigh record.Bound
}

// conn runs one connection's pipeline. Only the executor goroutine
// touches sess, so it needs no lock.
type conn struct {
	srv  *Server
	nc   net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	sess session
}

// serveConn is the reader side of the pipeline and owns the connection's
// lifecycle. It decodes frames into reqCh (capacity = the pipelining
// window); the executor turns each into a response on respCh; the
// writer streams responses back in order, flushing whenever the channel
// runs dry (one syscall per burst, not per response).
func (s *Server) serveConn(nc net.Conn) {
	defer s.connWg.Done()
	defer s.unregister(nc)
	defer func() { _ = nc.Close() }()

	c := &conn{
		srv:  s,
		nc:   nc,
		br:   bufio.NewReaderSize(nc, 1<<12),
		bw:   bufio.NewWriterSize(nc, 1<<12),
		sess: session{id: s.nextSession.Add(1)},
	}
	reqCh := make(chan []byte, s.cfg.Window)
	respCh := make(chan []byte, s.cfg.Window)

	var pipeWg sync.WaitGroup
	pipeWg.Add(2)

	// Executor: strictly in order, one request at a time. A nil payload
	// is the reader's bad-frame sentinel — answer it, then the reader's
	// close of reqCh ends the loop. When the loop ends no more fetches
	// can arrive, so the session's cursors are reaped here, before the
	// connection is unregistered.
	go func() {
		defer pipeWg.Done()
		defer close(respCh)
		for payload := range reqCh {
			start := time.Now()
			resp := c.execute(payload)
			dur := time.Since(start)
			s.allHist.Observe(dur)
			s.opHistFor(payload).Observe(dur)
			s.ops.Inc()
			respCh <- resp
		}
		s.curs.removeSession(c.sess.id)
	}()

	// Writer: drains respCh even after a write error so the executor
	// never blocks, and keeps the in-flight gauge exact either way.
	go func() {
		defer pipeWg.Done()
		var werr error
		for frame := range respCh {
			if werr == nil {
				if s.cfg.WriteTimeout > 0 {
					_ = nc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
				}
				_, werr = c.bw.Write(frame)
				if werr == nil && len(respCh) == 0 {
					werr = c.bw.Flush()
				}
			}
			s.inFlight.Add(-1)
		}
		if werr == nil {
			_ = c.bw.Flush()
		}
	}()

	// Reader. A CRC or size violation is answered with one typed error
	// and then the connection closes — after either, the stream offset
	// can no longer be trusted.
	for {
		if !s.armRead(nc) {
			break
		}
		payload, err := record.ReadFrame(c.br, s.cfg.MaxFrameBytes)
		if err != nil {
			if errors.Is(err, record.ErrFrameTooLarge) || errors.Is(err, record.ErrFrameCRC) {
				s.inFlight.Add(1)
				reqCh <- nil
			}
			break
		}
		s.inFlight.Add(1)
		reqCh <- payload
	}
	close(reqCh)
	pipeWg.Wait()
}

// execute turns one request payload into one response frame, ready to
// write. It runs on the executor goroutine only.
func (c *conn) execute(payload []byte) []byte {
	body := c.respond(payload)
	return record.AppendFrame(nil, body)
}

func errResp(code byte, msg string) []byte {
	return wire.AppendError(nil, code, msg)
}

// dbErrResp maps an engine error onto the wire: no-wait lock conflicts
// are the retryable CodeConflict, everything else is CodeInternal.
func dbErrResp(err error) []byte {
	if errors.Is(err, txn.ErrLockConflict) {
		return errResp(wire.CodeConflict, err.Error())
	}
	return errResp(wire.CodeInternal, err.Error())
}

func (c *conn) respond(payload []byte) []byte {
	if payload == nil {
		return errResp(wire.CodeBadRequest, "malformed frame")
	}
	d := record.NewDecoder(payload)
	op := d.Byte()
	if d.Err() != nil {
		return errResp(wire.CodeBadRequest, "empty request")
	}
	if !c.sess.hello && op != wire.OpHello {
		return errResp(wire.CodeBadRequest, "first request must be hello")
	}
	switch op {
	case wire.OpHello:
		return c.opHello(d)
	case wire.OpPut:
		return c.opPut(d)
	case wire.OpGet:
		return c.opGet(d)
	case wire.OpDelete:
		return c.opDelete(d)
	case wire.OpCommit:
		return c.opCommit(d)
	case wire.OpOpenCursor:
		return c.opOpenCursor(d)
	case wire.OpFetch:
		return c.opFetch(d)
	case wire.OpCloseCursor:
		return c.opCloseCursor(d)
	case wire.OpRefresh:
		return c.opRefresh(d)
	case wire.OpStats:
		return c.opStats(d)
	case wire.OpPing:
		return c.opPing(d)
	case wire.OpOpenQuery:
		return c.opOpenQuery(d)
	case wire.OpQueryFetch:
		return c.opQueryFetch(d)
	}
	return errResp(wire.CodeBadRequest, "unknown op")
}

// ok starts an OK response body.
func ok() *record.Encoder {
	e := record.NewEncoder(make([]byte, 0, 32))
	e.Byte(wire.StatusOK)
	return e
}

func (c *conn) opHello(d *record.Decoder) []byte {
	if c.sess.hello {
		return errResp(wire.CodeBadRequest, "duplicate hello")
	}
	h, err := wire.DecodeHello(d)
	if err != nil {
		return errResp(wire.CodeBadRequest, err.Error())
	}
	if h.Version != wire.ProtocolVersion {
		return errResp(wire.CodeBadRequest, "unsupported protocol version")
	}
	at := h.At
	if at == 0 {
		at = c.srv.db.Now()
	}
	tenant := append([]byte(nil), h.Tenant...) // payload buffer is transient
	low, high := record.TenantRange(tenant)
	c.sess.hello = true
	c.sess.tenant = tenant
	c.sess.at = at
	c.sess.nsLow = low
	c.sess.nsHigh = high
	e := ok()
	e.Time(at)
	return e.Bytes()
}

// commit runs fn inside DB.Update and returns the commit timestamp.
func (c *conn) commit(fn func(*txn.Txn) error) (record.Timestamp, error) {
	var tx *txn.Txn
	err := c.srv.db.Update(func(t *txn.Txn) error {
		tx = t
		return fn(t)
	})
	if err != nil {
		return 0, err
	}
	return tx.CommitTime(), nil
}

func (c *conn) opPut(d *record.Decoder) []byte {
	if resp := c.srv.admit(); resp != nil {
		return resp
	}
	k := d.Key()
	v := d.Blob()
	if d.Err() != nil {
		return errResp(wire.CodeBadRequest, "short put")
	}
	ct, err := c.commit(func(t *txn.Txn) error {
		return t.Put(record.PrefixKey(c.sess.tenant, k), v)
	})
	if err != nil {
		return dbErrResp(err)
	}
	e := ok()
	e.Time(ct)
	return e.Bytes()
}

func (c *conn) opDelete(d *record.Decoder) []byte {
	if resp := c.srv.admit(); resp != nil {
		return resp
	}
	k := d.Key()
	if d.Err() != nil {
		return errResp(wire.CodeBadRequest, "short delete")
	}
	ct, err := c.commit(func(t *txn.Txn) error {
		return t.Delete(record.PrefixKey(c.sess.tenant, k))
	})
	if err != nil {
		return dbErrResp(err)
	}
	e := ok()
	e.Time(ct)
	return e.Bytes()
}

func (c *conn) opCommit(d *record.Decoder) []byte {
	if resp := c.srv.admit(); resp != nil {
		return resp
	}
	ops, err := wire.DecodeCommit(d)
	if err != nil {
		return errResp(wire.CodeBadRequest, err.Error())
	}
	ct, err := c.commit(func(t *txn.Txn) error {
		for _, op := range ops {
			pk := record.PrefixKey(c.sess.tenant, op.Key)
			if op.Delete {
				if err := t.Delete(pk); err != nil {
					return err
				}
			} else if err := t.Put(pk, op.Value); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return dbErrResp(err)
	}
	e := ok()
	e.Time(ct)
	return e.Bytes()
}

func (c *conn) opGet(d *record.Decoder) []byte {
	k := d.Key()
	at := d.Time()
	if d.Err() != nil {
		return errResp(wire.CodeBadRequest, "short get")
	}
	if at == 0 {
		at = c.sess.at
	}
	v, found, err := c.srv.db.GetAsOf(record.PrefixKey(c.sess.tenant, k), at)
	if err != nil {
		return dbErrResp(err)
	}
	e := ok()
	e.Bool(found)
	if found {
		sk, okStrip := record.StripPrefix(c.sess.tenant, v.Key)
		if !okStrip {
			return errResp(wire.CodeInternal, "version outside session namespace")
		}
		v.Key = sk
		e.Version(v)
	}
	return e.Bytes()
}

func (c *conn) opOpenCursor(d *record.Decoder) []byte {
	oc, err := wire.DecodeOpenCursor(d)
	if err != nil {
		return errResp(wire.CodeBadRequest, err.Error())
	}
	at := oc.At
	if at == 0 {
		at = c.sess.at
	}
	// Translate the tenant-relative range into the namespaced keyspace.
	low := record.PrefixKey(c.sess.tenant, oc.Low)
	high := c.sess.nsHigh
	if !oc.High.IsInfinite() {
		high = record.KeyBound(record.PrefixKey(c.sess.tenant, oc.High.Key()))
	}
	remaining := -1
	if oc.Limit > 0 {
		remaining = int(min(oc.Limit, 1<<31))
	}
	id := c.srv.curs.add(&cursorState{
		sess:      c.sess.id,
		low:       low,
		high:      high,
		at:        at,
		remaining: remaining,
		reverse:   oc.Reverse,
		expires:   time.Now().Add(c.srv.cfg.CursorLease),
	})
	e := ok()
	e.Uvarint(id)
	return e.Bytes()
}

// opFetch returns one batch from a server-side cursor. It opens a fresh
// DB cursor positioned by the saved resume state, drains at most one
// batch, and lets it go — between fetch frames the server holds no DB
// latch, snapshot handle, or heap beyond the resume struct, so an
// abandoned client cursor costs one table entry until its lease
// expires.
func (c *conn) opFetch(d *record.Decoder) []byte {
	id := d.Uvarint()
	maxN := d.Uvarint()
	if d.Err() != nil {
		return errResp(wire.CodeBadRequest, "short fetch")
	}
	if maxN == 0 {
		maxN = 128
	}
	maxN = min(maxN, 1024)

	cu, found := c.srv.curs.checkout(id, c.sess.id, time.Now().Add(c.srv.cfg.CursorLease))
	if !found {
		return errResp(wire.CodeUnknownCursor, "no such cursor (closed, expired, or another session's)")
	}
	if cu.op != nil {
		c.srv.curs.checkin(id, cu, nil, 0, false)
		return errResp(wire.CodeBadRequest, "query cursor: use query-fetch")
	}
	if cu.remaining == 0 {
		// The client Limit is spent: terminal empty batch.
		c.srv.curs.checkin(id, cu, nil, 0, true)
		e := ok()
		e.Uvarint(0)
		e.Bool(true)
		return e.Bytes()
	}

	n := int(maxN)
	if cu.remaining > 0 {
		n = min(n, cu.remaining)
	}
	opts := db.ScanOptions{Reverse: cu.reverse, Limit: n}
	low, high := cu.low, cu.high
	if cu.last != nil {
		if cu.reverse {
			high = record.KeyBound(cu.last) // exclusive: resumes strictly below
		} else {
			opts.After = cu.last
		}
	}

	// Size-aware batch: stop early rather than overflow the frame.
	budget := c.srv.cfg.MaxFrameBytes - 256
	e := ok()
	count := 0
	sized := false
	var last record.Key
	cur := c.srv.db.ReadAt(cu.at).Cursor(low, high, opts)
	for cur.Next() {
		v := cur.Version()
		last = append([]byte(nil), v.Key...)
		sk, okStrip := record.StripPrefix(c.sess.tenant, v.Key)
		if !okStrip {
			c.srv.curs.checkin(id, cu, nil, 0, true)
			return errResp(wire.CodeInternal, "cursor version outside session namespace")
		}
		v.Key = sk
		count++
		e.Uvarint(1) // "another version follows"
		e.Version(v)
		if e.Len() >= budget {
			sized = true
			break
		}
	}
	if err := cur.Err(); err != nil {
		c.srv.curs.checkin(id, cu, nil, 0, false)
		return dbErrResp(err)
	}
	// Done when the range is exhausted (neither the batch cap nor the
	// size budget stopped us) or the client's Limit is spent.
	done := (count < n && !sized) || (cu.remaining > 0 && count >= cu.remaining)
	c.srv.curs.checkin(id, cu, last, count, done)
	e.Uvarint(0) // end of batch
	e.Bool(done)
	return e.Bytes()
}

// namespaceSpec maps a tenant-relative operator tree into the
// session's slice of the keyspace — the query-shaped form of what
// opOpenCursor does to its bounds. Primary-key fields (scan/diff
// windows, history keys, filter ranges) are prefixed; secondary keys
// are not (the index maps them to already-prefixed primary keys, and
// the semi-join intersects with the tenant-clamped primary stream).
// The decoded tree is ours to mutate in place.
func (c *conn) namespaceSpec(s *query.Spec) *query.Spec {
	if s == nil {
		return nil
	}
	switch s.Kind {
	case query.OpScan, query.OpDiff:
		s.Low = record.PrefixKey(c.sess.tenant, s.Low)
		if s.High.IsInfinite() {
			s.High = c.sess.nsHigh
		} else {
			s.High = record.KeyBound(record.PrefixKey(c.sess.tenant, s.High.Key()))
		}
	case query.OpHistory:
		s.Key = record.PrefixKey(c.sess.tenant, s.Key)
	case query.OpFilter:
		if s.HasKeyRange {
			s.FilterLow = record.PrefixKey(c.sess.tenant, s.FilterLow)
			if s.FilterHigh.IsInfinite() {
				s.FilterHigh = c.sess.nsHigh
			} else {
				s.FilterHigh = record.KeyBound(record.PrefixKey(c.sess.tenant, s.FilterHigh.Key()))
			}
		}
	}
	s.Input = c.namespaceSpec(s.Input)
	s.Left = c.namespaceSpec(s.Left)
	s.Right = c.namespaceSpec(s.Right)
	return s
}

// opOpenQuery compiles a shipped operator tree at the session snapshot
// and registers its live pipeline as a query cursor. Malformed trees —
// decode failures and Validate refusals alike — are the typed
// bad-request; nothing panics on crafted bytes.
func (c *conn) opOpenQuery(d *record.Decoder) []byte {
	spec, err := wire.DecodeOpenQuery(d)
	if err != nil {
		return errResp(wire.CodeBadRequest, err.Error())
	}
	op, err := c.srv.db.QueryAt(c.sess.at, c.namespaceSpec(spec))
	if err != nil {
		if errors.Is(err, query.ErrBadSpec) {
			return errResp(wire.CodeBadRequest, err.Error())
		}
		return dbErrResp(err)
	}
	id := c.srv.curs.add(&cursorState{
		sess:      c.sess.id,
		at:        c.sess.at,
		remaining: -1,
		expires:   time.Now().Add(c.srv.cfg.CursorLease),
		op:        op,
	})
	e := ok()
	e.Uvarint(id)
	return e.Bytes()
}

// opQueryFetch drains one row batch from a query cursor's pipeline.
// The operator stays checked out for the duration (the busy flag
// serializes fetches and holds the janitor off), and between fetches
// it idles latch-free under its lease.
func (c *conn) opQueryFetch(d *record.Decoder) []byte {
	id := d.Uvarint()
	maxN := d.Uvarint()
	if d.Err() != nil {
		return errResp(wire.CodeBadRequest, "short query-fetch")
	}
	if maxN == 0 {
		maxN = 128
	}
	maxN = min(maxN, 1024)

	cu, found := c.srv.curs.checkout(id, c.sess.id, time.Now().Add(c.srv.cfg.CursorLease))
	if !found {
		return errResp(wire.CodeUnknownCursor, "no such cursor (closed, expired, or another session's)")
	}
	if cu.op == nil {
		c.srv.curs.checkin(id, cu, nil, 0, false)
		return errResp(wire.CodeBadRequest, "range cursor: use fetch")
	}

	fail := func(code byte, msg string) []byte {
		_ = cu.op.Close()
		cu.op = nil
		c.srv.curs.checkin(id, cu, nil, 0, true)
		return errResp(code, msg)
	}

	budget := c.srv.cfg.MaxFrameBytes - 256
	e := ok()
	count := 0
	done := false
	for count < int(maxN) {
		if !cu.op.Next() {
			if err := cu.op.Err(); err != nil {
				return fail(wire.CodeInternal, err.Error())
			}
			done = true
			break
		}
		r := cu.op.Row()
		sk, okStrip := record.StripPrefix(c.sess.tenant, r.Key)
		if !okStrip {
			return fail(wire.CodeInternal, "query row outside session namespace")
		}
		r.Key = sk
		vs := make([]record.Version, len(r.Versions))
		for i, v := range r.Versions {
			if svk, okV := record.StripPrefix(c.sess.tenant, v.Key); okV {
				v.Key = svk
			} else {
				return fail(wire.CodeInternal, "query version outside session namespace")
			}
			vs[i] = v
		}
		r.Versions = vs
		e.Uvarint(1) // "another row follows"
		wire.EncodeRow(e, r)
		count++
		if e.Len() >= budget {
			break
		}
	}
	if done {
		_ = cu.op.Close()
		cu.op = nil
	}
	c.srv.curs.checkin(id, cu, nil, 0, done)
	e.Uvarint(0) // end of batch
	e.Bool(done)
	return e.Bytes()
}

func (c *conn) opCloseCursor(d *record.Decoder) []byte {
	id := d.Uvarint()
	if d.Err() != nil {
		return errResp(wire.CodeBadRequest, "short close-cursor")
	}
	c.srv.curs.remove(id, c.sess.id)
	return ok().Bytes() // idempotent: closing a gone cursor is fine
}

func (c *conn) opRefresh(d *record.Decoder) []byte {
	if d.Err() != nil {
		return errResp(wire.CodeBadRequest, "short refresh")
	}
	c.sess.at = c.srv.db.Now()
	e := ok()
	e.Time(c.sess.at)
	return e.Bytes()
}

func (c *conn) opStats(d *record.Decoder) []byte {
	if d.Err() != nil {
		return errResp(wire.CodeBadRequest, "short stats")
	}
	st := c.srv.Stats().WireStats()
	return wire.AppendStatsReply(ok().Bytes(), st)
}

func (c *conn) opPing(d *record.Decoder) []byte {
	if d.Err() != nil {
		return errResp(wire.CodeBadRequest, "short ping")
	}
	e := ok()
	e.Time(c.srv.db.Now())
	return e.Bytes()
}
