package server_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/record"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/server/wire"
	"repro/internal/txn"
)

// harness starts a server over a fresh DB on a loopback listener.
type harness struct {
	d    *db.DB
	srv  *server.Server
	addr string
	dir  string
	done chan error
}

func start(t *testing.T, dcfg db.Config, scfg server.Config) *harness {
	t.Helper()
	if dcfg.Dir == "" {
		dcfg.Dir = t.TempDir()
	}
	if dcfg.Shards == 0 {
		dcfg.Shards = 4
	}
	if dcfg.CheckpointBytes == 0 {
		dcfg.CheckpointBytes = -1
	}
	d, err := db.Open(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(d, scfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{d: d, srv: srv, addr: ln.Addr().String(), dir: dcfg.Dir, done: make(chan error, 1)}
	go func() { h.done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-h.done; err != nil {
			t.Errorf("serve: %v", err)
		}
		if err := d.Close(); err != nil {
			t.Errorf("db close: %v", err)
		}
	})
	return h
}

func (h *harness) dial(t *testing.T, opt client.Options) *client.Client {
	t.Helper()
	c, err := client.Dial(h.addr, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestServerBasicOps(t *testing.T) {
	h := start(t, db.Config{}, server.Config{})
	c := h.dial(t, client.Options{Tenant: []byte("acme")})

	ct1, err := c.Put(record.Key("alpha"), []byte("one"))
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := c.Put(record.Key("beta"), []byte("two"))
	if err != nil {
		t.Fatal(err)
	}
	if ct2 <= ct1 {
		t.Fatalf("commit times not monotonic: %d then %d", ct1, ct2)
	}
	if _, err := c.Refresh(); err != nil {
		t.Fatal(err)
	}
	v, found, err := c.Get(record.Key("alpha"))
	if err != nil || !found {
		t.Fatalf("get alpha: found=%v err=%v", found, err)
	}
	if !bytes.Equal(v.Value, []byte("one")) || !bytes.Equal(v.Key, record.Key("alpha")) {
		t.Fatalf("get alpha = %q/%q", v.Key, v.Value)
	}
	if v.Time != ct1 {
		t.Fatalf("alpha version time %d, want commit time %d", v.Time, ct1)
	}

	// Time travel: as-of before beta's commit, beta is absent.
	if _, found, err := c.GetAt(record.Key("beta"), ct1); err != nil || found {
		t.Fatalf("beta at %d: found=%v err=%v", ct1, found, err)
	}

	// Atomic multi-op commit, then delete.
	ct3, err := c.Commit([]wire.CommitOp{
		{Key: record.Key("gamma"), Value: []byte("three")},
		{Key: record.Key("alpha"), Delete: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, found, _ := c.GetAt(record.Key("alpha"), ct3); found {
		t.Fatal("alpha alive after atomic delete")
	}
	if v, found, _ := c.GetAt(record.Key("gamma"), ct3); !found || !bytes.Equal(v.Value, []byte("three")) {
		t.Fatalf("gamma after commit: found=%v v=%q", found, v.Value)
	}
	if _, err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Ops == 0 || st.Conns == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
}

func TestServerSessionSnapshot(t *testing.T) {
	h := start(t, db.Config{}, server.Config{})
	w := h.dial(t, client.Options{Tenant: []byte("t")})
	ct, err := w.Put(record.Key("k"), []byte("v1"))
	if err != nil {
		t.Fatal(err)
	}

	// A session opened now pins its snapshot at the current clock:
	// writes committed after open stay invisible until Refresh.
	r := h.dial(t, client.Options{Tenant: []byte("t")})
	if r.SessionAt() < ct {
		t.Fatalf("session pinned at %d, before existing commit %d", r.SessionAt(), ct)
	}
	if _, err := w.Put(record.Key("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	v, found, err := r.Get(record.Key("k"))
	if err != nil || !found {
		t.Fatalf("snapshot get: found=%v err=%v", found, err)
	}
	if !bytes.Equal(v.Value, []byte("v1")) {
		t.Fatalf("snapshot read saw later write: %q", v.Value)
	}
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := r.Get(record.Key("k")); !bytes.Equal(v.Value, []byte("v2")) {
		t.Fatalf("post-refresh read = %q, want v2", v.Value)
	}

	// An explicit historical pin sees the old version.
	old := h.dial(t, client.Options{Tenant: []byte("t"), At: ct})
	if v, _, _ := old.Get(record.Key("k")); !bytes.Equal(v.Value, []byte("v1")) {
		t.Fatalf("pinned session read = %q, want v1", v.Value)
	}
}

func TestServerTenantIsolation(t *testing.T) {
	h := start(t, db.Config{}, server.Config{})
	a := h.dial(t, client.Options{Tenant: []byte("tenant-a")})
	b := h.dial(t, client.Options{Tenant: []byte("tenant-b")})

	if _, err := a.Put(record.Key("shared-key"), []byte("from-a")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Put(record.Key("shared-key"), []byte("from-b")); err != nil {
		t.Fatal(err)
	}
	for _, cl := range []*client.Client{a, b} {
		if _, err := cl.Refresh(); err != nil {
			t.Fatal(err)
		}
	}
	if v, _, _ := a.Get(record.Key("shared-key")); !bytes.Equal(v.Value, []byte("from-a")) {
		t.Fatalf("tenant a sees %q", v.Value)
	}
	if v, _, _ := b.Get(record.Key("shared-key")); !bytes.Equal(v.Value, []byte("from-b")) {
		t.Fatalf("tenant b sees %q", v.Value)
	}

	// A full-range scan of tenant a never leaks b's keys.
	sc, err := a.Scan(nil, record.InfiniteBound(), client.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	vs, err := sc.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || !bytes.Equal(vs[0].Value, []byte("from-a")) {
		t.Fatalf("tenant a scan = %d versions %v", len(vs), vs)
	}
}

func TestServerCursorPagination(t *testing.T) {
	h := start(t, db.Config{}, server.Config{})
	c := h.dial(t, client.Options{Tenant: []byte("p")})
	const n = 50
	for i := 0; i < n; i++ {
		if _, err := c.Put(record.Key(fmt.Sprintf("k%03d", i)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Refresh(); err != nil {
		t.Fatal(err)
	}

	// Tiny batches force many fetch round-trips over one cursor.
	sc, err := c.Scan(nil, record.InfiniteBound(), client.ScanOptions{BatchSize: 7})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for sc.Next() {
		got = append(got, string(sc.Version().Key))
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if len(got) != n {
		t.Fatalf("scan yielded %d keys, want %d", len(got), n)
	}
	for i, k := range got {
		if want := fmt.Sprintf("k%03d", i); k != want {
			t.Fatalf("key %d = %q, want %q", i, k, want)
		}
	}

	// Reverse with a limit, over a sub-range.
	sc, err = c.Scan(record.Key("k010"), record.KeyBound(record.Key("k020")),
		client.ScanOptions{Reverse: true, Limit: 5, BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	vs, err := sc.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 5 {
		t.Fatalf("reverse limited scan yielded %d, want 5", len(vs))
	}
	for i, v := range vs {
		if want := fmt.Sprintf("k%03d", 19-i); string(v.Key) != want {
			t.Fatalf("reverse key %d = %q, want %q", i, v.Key, want)
		}
	}
}

// TestServerCursorHoldsNoLatch pins the acceptance criterion: between
// fetch frames a server-side cursor holds no DB latch — a writer can
// commit and every shard's write latch can be taken while a scan sits
// mid-range.
func TestServerCursorHoldsNoLatch(t *testing.T) {
	h := start(t, db.Config{}, server.Config{})
	c := h.dial(t, client.Options{Tenant: []byte("nl")})
	for i := 0; i < 20; i++ {
		if _, err := c.Put(record.Key(fmt.Sprintf("k%02d", i)), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Refresh(); err != nil {
		t.Fatal(err)
	}
	sc, err := c.Scan(nil, record.InfiniteBound(), client.ScanOptions{BatchSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Next() {
		t.Fatal("empty scan")
	}

	// Mid-scan: a write commits without blocking...
	wdone := make(chan error, 1)
	go func() {
		wdone <- h.d.Update(func(tx *txn.Txn) error {
			return tx.Put(record.Key("unrelated"), []byte("w"))
		})
	}()
	select {
	case err := <-wdone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("writer blocked while a server cursor was open mid-scan")
	}
	// ...and every shard's write latch is takeable.
	for i := 0; i < h.d.Shards(); i++ {
		if err := h.d.WithShardTree(i, func(*core.Tree) error { return nil }); err != nil {
			t.Fatalf("shard %d write latch: %v", i, err)
		}
	}

	// The scan still completes, pinned at its snapshot (the new write
	// is invisible).
	count := 1
	for sc.Next() {
		if string(sc.Version().Key) == "unrelated" {
			t.Fatal("pinned scan observed a post-open commit")
		}
		count++
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if count != 20 {
		t.Fatalf("scan yielded %d, want 20", count)
	}
}

func TestServerCursorLeaseExpiry(t *testing.T) {
	// Short lease so the janitor (ticking at lease/4, floor 10ms) reaps
	// quickly.
	h2 := start(t, db.Config{}, server.Config{CursorLease: 40 * time.Millisecond})
	c := h2.dial(t, client.Options{Tenant: []byte("lease")})
	for i := 0; i < 10; i++ {
		if _, err := c.Put(record.Key(fmt.Sprintf("k%d", i)), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Refresh(); err != nil {
		t.Fatal(err)
	}
	sc, err := c.Scan(nil, record.InfiniteBound(), client.ScanOptions{BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Next() {
		t.Fatal("empty scan")
	}

	// Abandon the cursor: stop fetching and let the lease lapse.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := h2.srv.Stats()
		if st.CursorsReclaimed >= 1 && st.Cursors == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cursor not reclaimed: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Draining the abandoned scan now hits the typed unknown-cursor
	// error on its next fetch.
	for sc.Next() {
	}
	var we *wire.Error
	if !errors.As(sc.Err(), &we) || we.Code != wire.CodeUnknownCursor {
		t.Fatalf("post-expiry fetch error = %v, want unknown cursor", sc.Err())
	}
}

func TestServerAdmissionShed(t *testing.T) {
	// WAL backlog watermark of one byte: the first commit trips it.
	// Negative probe interval disables verdict caching.
	h := start(t, db.Config{}, server.Config{
		ShedWALBacklogBytes: 1,
		AdmissionProbe:      -1,
	})
	c := h.dial(t, client.Options{Tenant: []byte("shed")})

	ct, err := c.Put(record.Key("first"), []byte("in"))
	if err != nil {
		t.Fatalf("first put (backlog empty) refused: %v", err)
	}

	// Backlog is now nonzero: writes shed with the typed retryable
	// error, before any effect.
	_, err = c.Put(record.Key("second"), []byte("out"))
	if !wire.IsOverloaded(err) || !wire.IsRetryable(err) {
		t.Fatalf("over-watermark put error = %v, want typed overloaded", err)
	}
	// Reads are never shed.
	if _, found, err := c.GetAt(record.Key("first"), ct); err != nil || !found {
		t.Fatalf("read during shed: found=%v err=%v", found, err)
	}
	if st := h.srv.Stats(); st.Shed == 0 {
		t.Fatalf("shed counter = 0 after refusal")
	}

	// A checkpoint re-anchors the backlog to zero: admission reopens.
	if err := h.d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put(record.Key("third"), []byte("in-again")); err != nil {
		t.Fatalf("post-checkpoint put refused: %v", err)
	}

	// Zero accepted-then-lost: the shed key must be absent, the acked
	// ones present.
	if _, err := c.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := c.Get(record.Key("second")); found {
		t.Fatal("shed write became visible")
	}
	for _, k := range []string{"first", "third"} {
		if _, found, _ := c.Get(record.Key(k)); !found {
			t.Fatalf("acked write %q lost", k)
		}
	}
}

func TestServerMaxFrameEnforced(t *testing.T) {
	h := start(t, db.Config{}, server.Config{MaxFrameBytes: 1 << 10})
	c, err := client.Dial(h.addr, client.Options{Tenant: []byte("f")})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	// A request past the server's frame cap gets one typed refusal and
	// the connection closes (the stream offset is no longer trustable).
	_, err = c.Put(record.Key("big"), make([]byte, 1<<11))
	var we *wire.Error
	if !errors.As(err, &we) || we.Code != wire.CodeBadRequest {
		t.Fatalf("oversized frame error = %v, want bad request", err)
	}
	if _, err := c.Ping(); err == nil {
		t.Fatal("connection survived a framing violation")
	}
}

// TestServerDrain pins the drain contract at the server level: during
// Shutdown every request already in a window executes and is
// acknowledged, and every acknowledged commit is durable across reopen.
func TestServerDrain(t *testing.T) {
	dir := t.TempDir()
	d, err := db.Open(db.Config{Dir: dir, Shards: 4, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(d, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	const workers = 8
	type acked struct {
		key string
		ct  record.Timestamp
	}
	ackedCh := make(chan acked, workers*1000)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(ln.Addr().String(), client.Options{Tenant: []byte("drain"), Window: 16})
			if err != nil {
				return // draining already
			}
			defer func() { _ = c.Close() }()
			type inflight struct {
				key  string
				call *client.Call
			}
			var window []inflight
			reap := func(f inflight) {
				if ct, err := f.call.Time(); err == nil {
					ackedCh <- acked{key: f.key, ct: ct}
				}
			}
			for i := 0; ; i++ {
				key := fmt.Sprintf("w%d-%06d", w, i)
				call, err := c.PutAsync(record.Key(key), []byte("payload"))
				if err != nil {
					break
				}
				window = append(window, inflight{key, call})
				if len(window) >= 8 {
					reap(window[0])
					window = window[1:]
				}
			}
			for _, f := range window {
				reap(f)
			}
		}(w)
	}

	// Let the pipeline run hot, then pull the plug mid-flight.
	time.Sleep(100 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
	wg.Wait()
	close(ackedCh)
	if st := srv.Stats(); st.Cursors != 0 || st.Conns != 0 || !st.Draining {
		t.Fatalf("post-drain stats: %+v", st)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: every acknowledged commit must have survived.
	d2, err := db.Open(db.Config{Dir: dir, Shards: 4, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := d2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	count := 0
	for a := range ackedCh {
		count++
		pk := record.PrefixKey([]byte("drain"), record.Key(a.key))
		if _, found, err := d2.GetAsOf(pk, a.ct); err != nil || !found {
			t.Fatalf("acked commit %q@%d lost across drain+reopen (err=%v)", a.key, a.ct, err)
		}
	}
	if count == 0 {
		t.Fatal("no acked commits observed; drain test proved nothing")
	}
	t.Logf("verified %d acked commits across drain", count)

	// Dialing a drained server fails.
	if _, err := client.Dial(ln.Addr().String(), client.Options{DialTimeout: time.Second}); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
}

// TestServerManyConnections drives 1000 concurrent pipelined sessions —
// the acceptance floor for the service layer.
func TestServerManyConnections(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-connection soak skipped in -short")
	}
	h := start(t, db.Config{Shards: 8}, server.Config{Window: 32})
	const conns = 1000
	const opsPerConn = 10
	errCh := make(chan error, conns)
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.Dial(h.addr, client.Options{
				Tenant: []byte(fmt.Sprintf("t%03d", i%16)),
				Window: 16,
			})
			if err != nil {
				errCh <- err
				return
			}
			defer func() { _ = c.Close() }()
			calls := make([]*client.Call, 0, opsPerConn)
			for j := 0; j < opsPerConn; j++ {
				call, err := c.PutAsync(record.Key(fmt.Sprintf("c%04d-%02d", i, j)), []byte("v"))
				if err != nil {
					errCh <- err
					return
				}
				calls = append(calls, call)
			}
			for _, call := range calls {
				if _, err := call.Time(); err != nil {
					errCh <- err
					return
				}
			}
			if _, err := c.Refresh(); err != nil {
				errCh <- err
				return
			}
			if _, found, err := c.Get(record.Key(fmt.Sprintf("c%04d-%02d", i, opsPerConn-1))); err != nil || !found {
				errCh <- fmt.Errorf("conn %d readback: found=%v err=%v", i, found, err)
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if st := h.srv.Stats(); st.TotalConns < conns {
		t.Fatalf("TotalConns = %d, want >= %d", st.TotalConns, conns)
	}
}
