package client

import (
	"fmt"

	"repro/internal/record"
	"repro/internal/server/wire"
)

// --- async API: returns a Call immediately, response read on wait ---

// PutAsync pipelines a single-key put. Wait with Call.Time or Call.Err.
func (c *Client) PutAsync(k record.Key, v []byte) (*Call, error) {
	e := record.NewEncoder(make([]byte, 0, len(k)+len(v)+8))
	e.Byte(wire.OpPut)
	e.Key(k)
	e.Blob(v)
	return c.send(e.Bytes())
}

// DeleteAsync pipelines a single-key delete.
func (c *Client) DeleteAsync(k record.Key) (*Call, error) {
	e := record.NewEncoder(make([]byte, 0, len(k)+4))
	e.Byte(wire.OpDelete)
	e.Key(k)
	return c.send(e.Bytes())
}

// GetAsync pipelines a read at the session snapshot (at 0) or a caller
// timestamp. Wait with Call.Value.
func (c *Client) GetAsync(k record.Key, at record.Timestamp) (*Call, error) {
	e := record.NewEncoder(make([]byte, 0, len(k)+8))
	e.Byte(wire.OpGet)
	e.Key(k)
	e.Time(at)
	return c.send(e.Bytes())
}

// CommitAsync pipelines an atomic multi-op transaction.
func (c *Client) CommitAsync(ops []wire.CommitOp) (*Call, error) {
	return c.send(wire.AppendCommit(nil, ops))
}

// Time waits for a commit-class response (Put/Delete/Commit/Refresh/
// Ping) and returns its timestamp.
func (cl *Call) Time() (record.Timestamp, error) {
	body, err := cl.c.wait(cl)
	if err != nil {
		return 0, err
	}
	d := record.NewDecoder(body)
	t := d.Time()
	if err := d.Err(); err != nil {
		return 0, fmt.Errorf("client: short reply: %w", err)
	}
	return t, nil
}

// Value waits for a Get response.
func (cl *Call) Value() (record.Version, bool, error) {
	body, err := cl.c.wait(cl)
	if err != nil {
		return record.Version{}, false, err
	}
	d := record.NewDecoder(body)
	if !d.Bool() {
		if err := d.Err(); err != nil {
			return record.Version{}, false, fmt.Errorf("client: short reply: %w", err)
		}
		return record.Version{}, false, nil
	}
	v := d.Version()
	if err := d.Err(); err != nil {
		return record.Version{}, false, fmt.Errorf("client: short reply: %w", err)
	}
	return v, true, nil
}

// --- sync API ---

// Put writes one key and returns its commit timestamp.
func (c *Client) Put(k record.Key, v []byte) (record.Timestamp, error) {
	call, err := c.PutAsync(k, v)
	if err != nil {
		return 0, err
	}
	return call.Time()
}

// Delete tombstones one key and returns its commit timestamp.
func (c *Client) Delete(k record.Key) (record.Timestamp, error) {
	call, err := c.DeleteAsync(k)
	if err != nil {
		return 0, err
	}
	return call.Time()
}

// Get reads one key at the session snapshot.
func (c *Client) Get(k record.Key) (record.Version, bool, error) {
	return c.GetAt(k, 0)
}

// GetAt reads one key as of at (0 = the session snapshot).
func (c *Client) GetAt(k record.Key, at record.Timestamp) (record.Version, bool, error) {
	call, err := c.GetAsync(k, at)
	if err != nil {
		return record.Version{}, false, err
	}
	return call.Value()
}

// Commit applies ops as one atomic transaction and returns its commit
// timestamp: every op is visible from that time, or none are.
func (c *Client) Commit(ops []wire.CommitOp) (record.Timestamp, error) {
	call, err := c.CommitAsync(ops)
	if err != nil {
		return 0, err
	}
	return call.Time()
}

// Refresh re-pins the session snapshot to the server's current commit
// clock and returns it.
func (c *Client) Refresh() (record.Timestamp, error) {
	call, err := c.send([]byte{wire.OpRefresh})
	if err != nil {
		return 0, err
	}
	t, err := call.Time()
	if err != nil {
		return 0, err
	}
	c.sessionAt = t
	return t, nil
}

// Ping round-trips and returns the server's commit clock.
func (c *Client) Ping() (record.Timestamp, error) {
	call, err := c.send([]byte{wire.OpPing})
	if err != nil {
		return 0, err
	}
	return call.Time()
}

// Stats fetches the server's observability counters.
func (c *Client) Stats() (wire.StatsReply, error) {
	call, err := c.send([]byte{wire.OpStats})
	if err != nil {
		return wire.StatsReply{}, err
	}
	body, err := c.wait(call)
	if err != nil {
		return wire.StatsReply{}, err
	}
	return wire.DecodeStatsReply(record.NewDecoder(body))
}

// Scan is a client-side iterator over a server-side cursor: batches
// fetch lazily, and between batches the server holds no DB resource —
// only a resume entry kept alive by its lease.
type Scan struct {
	c     *Client
	id    uint64
	batch uint64
	buf   []record.Version
	pos   int
	done  bool
	err   error
}

// ScanOptions shapes a Scan.
type ScanOptions struct {
	At        record.Timestamp // snapshot (0 = session snapshot)
	Limit     uint64           // total versions (0 = unlimited)
	Reverse   bool
	BatchSize uint64 // versions per fetch frame (0 = server default)
}

// Scan opens a server-side cursor over [low, high) of the session's
// namespace. Close it when done early; an abandoned Scan is reclaimed
// by the server's cursor lease.
func (c *Client) Scan(low record.Key, high record.Bound, opts ScanOptions) (*Scan, error) {
	call, err := c.send(wire.AppendOpenCursor(nil, wire.OpenCursor{
		Low:     low,
		High:    high,
		At:      opts.At,
		Limit:   opts.Limit,
		Reverse: opts.Reverse,
	}))
	if err != nil {
		return nil, err
	}
	body, err := c.wait(call)
	if err != nil {
		return nil, err
	}
	d := record.NewDecoder(body)
	id := d.Uvarint()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("client: short open-cursor reply: %w", err)
	}
	return &Scan{c: c, id: id, batch: opts.BatchSize}, nil
}

// Next advances to the next version, fetching the next batch when the
// local one is drained. It returns false at the end of the range or on
// error (check Err).
func (s *Scan) Next() bool {
	if s.err != nil {
		return false
	}
	for s.pos >= len(s.buf) {
		if s.done {
			return false
		}
		if !s.fetch() {
			return false
		}
	}
	s.pos++
	return true
}

func (s *Scan) fetch() bool {
	e := record.NewEncoder(make([]byte, 0, 12))
	e.Byte(wire.OpFetch)
	e.Uvarint(s.id)
	e.Uvarint(s.batch)
	call, err := s.c.send(e.Bytes())
	var body []byte
	if err == nil {
		body, err = s.c.wait(call)
	}
	if err != nil {
		s.err = err
		return false
	}
	d := record.NewDecoder(body)
	s.buf = s.buf[:0]
	s.pos = 0
	for d.Uvarint() == 1 {
		s.buf = append(s.buf, d.Version())
	}
	s.done = d.Bool()
	if err := d.Err(); err != nil {
		s.err = fmt.Errorf("client: short fetch reply: %w", err)
		return false
	}
	return true
}

// Version returns the version Next advanced to.
func (s *Scan) Version() record.Version { return s.buf[s.pos-1] }

// Err returns the scan's terminal error, typed *wire.Error for server
// refusals.
func (s *Scan) Err() error { return s.err }

// Close releases the server-side cursor; safe after exhaustion (the
// server already removed it — close is idempotent there).
func (s *Scan) Close() error {
	if s.done {
		return nil // server removed it when the range was exhausted
	}
	e := record.NewEncoder(make([]byte, 0, 12))
	e.Byte(wire.OpCloseCursor)
	e.Uvarint(s.id)
	call, err := s.c.send(e.Bytes())
	if err != nil {
		return err
	}
	_, err = s.c.wait(call)
	return err
}

// Collect drains the scan into a slice and closes it.
func (s *Scan) Collect() ([]record.Version, error) {
	var out []record.Version
	for s.Next() {
		out = append(out, s.Version())
	}
	if s.err != nil {
		return out, s.err
	}
	return out, s.Close()
}
