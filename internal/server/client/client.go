// Package client is the Go client for tsbserve. It speaks the
// internal/server/wire protocol over one TCP connection and exposes
// both a synchronous API (Put/Get/Delete/Commit/Scan) and an
// asynchronous pipelined one: every operation has a *Async form that
// returns a Call immediately, and waiting on Calls in issue order gives
// the pipelining the protocol is built around — many requests in
// flight, responses matched FIFO, no correlation ids.
//
// A Client is safe for concurrent use. Send order defines response
// order; the shared window (Options.Window) bounds how many calls may
// be in flight before senders block.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/record"
	"repro/internal/server/wire"
)

// Options configures Dial. The zero value is usable: anonymous tenant,
// snapshot pinned at connect, window 32.
type Options struct {
	// Tenant namespaces every key this session touches. Sessions with
	// different tenants are fully disjoint.
	Tenant []byte
	// At pins the session read snapshot; 0 pins the server's commit
	// clock at connect. Refresh re-pins later.
	At record.Timestamp
	// Window bounds in-flight pipelined calls (default 32).
	Window int
	// MaxFrameBytes bounds response frames (default wire.DefaultMaxFrame);
	// it must match or exceed the server's.
	MaxFrameBytes int
	// DialTimeout bounds the TCP connect (default 10s).
	DialTimeout time.Duration
}

// ErrClosed is returned for calls issued after Close, and by calls
// whose connection died before their response arrived (wrapped with the
// cause).
var ErrClosed = errors.New("client: connection closed")

// Call is one in-flight pipelined operation: the reader populates the
// result and closes done, strictly in issue order.
type Call struct {
	c    *Client
	done chan struct{}
	err  error
	body []byte // OK response payload after the status byte
}

// Err waits for the response and returns the operation's error, typed
// *wire.Error when the server refused it (see wire.IsRetryable).
func (cl *Call) Err() error {
	_, err := cl.c.wait(cl)
	return err
}

// Client is one tsbserve session over one TCP connection.
type Client struct {
	nc  net.Conn
	opt Options

	// sendMu serializes queue admission + frame write, which keeps the
	// pending FIFO and the wire in the same order. It is held while
	// blocking for a window slot — safe, because the reader that frees
	// slots never takes it — but never while waiting for a response.
	sendMu  sync.Mutex
	bw      *bufio.Writer
	pending chan *Call
	dirty   bool // unflushed request bytes in bw
	closed  bool

	closedCh   chan struct{} // closed by Close; ends the reader's drain
	readerDone chan struct{}

	failMu  sync.Mutex
	failErr error

	sessionAt record.Timestamp
}

// Dial connects, performs the Hello handshake synchronously, and
// returns a ready client.
func Dial(addr string, opt Options) (*Client, error) {
	if opt.Window <= 0 {
		opt.Window = 32
	}
	if opt.MaxFrameBytes <= 0 {
		opt.MaxFrameBytes = wire.DefaultMaxFrame
	}
	if opt.DialTimeout <= 0 {
		opt.DialTimeout = 10 * time.Second
	}
	nc, err := net.DialTimeout("tcp", addr, opt.DialTimeout)
	if err != nil {
		return nil, err
	}
	c := &Client{
		nc:         nc,
		opt:        opt,
		bw:         bufio.NewWriterSize(nc, 1<<12),
		pending:    make(chan *Call, opt.Window),
		closedCh:   make(chan struct{}),
		readerDone: make(chan struct{}),
	}
	go c.readLoop()
	hello, err := c.send(wire.AppendHello(nil, wire.Hello{
		Version: wire.ProtocolVersion,
		Tenant:  opt.Tenant,
		At:      opt.At,
	}))
	var body []byte
	if err == nil {
		body, err = c.wait(hello)
	}
	if err != nil {
		_ = c.Close()
		return nil, fmt.Errorf("client: hello: %w", err)
	}
	d := record.NewDecoder(body)
	c.sessionAt = d.Time()
	if derr := d.Err(); derr != nil {
		_ = c.Close()
		return nil, fmt.Errorf("client: hello reply: %w", derr)
	}
	return c, nil
}

// SessionAt returns the pinned session snapshot (updated by Refresh).
func (c *Client) SessionAt() record.Timestamp { return c.sessionAt }

// send frames one request, enqueues its Call, and writes the frame —
// all under sendMu, so FIFO position and wire position always agree.
// When the window is full it flushes first (the server cannot drain
// requests still sitting in our buffer) and then blocks for a slot.
func (c *Client) send(payload []byte) (*Call, error) {
	call := &Call{c: c, done: make(chan struct{})}
	frame := record.AppendFrame(nil, payload)

	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if c.closed {
		return nil, c.terminalErr()
	}
	select {
	case c.pending <- call:
	default:
		if err := c.bw.Flush(); err != nil {
			return nil, c.fail(err)
		}
		c.dirty = false
		select {
		case c.pending <- call:
		case <-c.readerDone:
			return nil, c.terminalErr()
		}
	}
	if _, err := c.bw.Write(frame); err != nil {
		return nil, c.fail(err)
	}
	c.dirty = true
	return call, nil
}

// flush pushes buffered request bytes to the wire; every wait calls it
// first so a synchronous caller can never block behind its own unsent
// request.
func (c *Client) flush() error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if !c.dirty {
		return nil
	}
	if err := c.bw.Flush(); err != nil {
		return c.fail(err)
	}
	c.dirty = false
	return nil
}

// wait flushes then blocks for the call's response body.
func (c *Client) wait(call *Call) ([]byte, error) {
	if err := c.flush(); err != nil {
		<-call.done // reader fails it; don't race ahead of that
		return nil, err
	}
	<-call.done
	return call.body, call.err
}

// readLoop matches response frames to pending calls strictly FIFO.
// After the connection dies — error, EOF, or Close — it keeps failing
// pending calls until Close ends the drain, so no sender blocks on a
// dead window.
func (c *Client) readLoop() {
	br := bufio.NewReaderSize(c.nc, 1<<12)
	for {
		payload, err := record.ReadFrame(br, c.opt.MaxFrameBytes)
		if err != nil {
			_ = c.fail(err)
			break
		}
		var call *Call
		select {
		case call = <-c.pending:
		default:
			_ = c.fail(errors.New("unsolicited response frame"))
		}
		if call == nil {
			break
		}
		d, werr := wire.DecodeResponse(payload)
		if werr != nil {
			call.err = werr
		} else {
			call.body = payload[len(payload)-d.Remaining():]
		}
		close(call.done)
	}
	close(c.readerDone)
	for {
		select {
		case call := <-c.pending:
			call.err = c.terminalErr()
			close(call.done)
		case <-c.closedCh:
			// Sends are refused from here on; fail the stragglers.
			for {
				select {
				case call := <-c.pending:
					call.err = c.terminalErr()
					close(call.done)
				default:
					return
				}
			}
		}
	}
}

// fail records the first terminal error and severs the connection.
func (c *Client) fail(err error) error {
	if err == nil {
		err = ErrClosed
	}
	c.failMu.Lock()
	if c.failErr == nil {
		if errors.Is(err, ErrClosed) {
			c.failErr = err
		} else {
			c.failErr = fmt.Errorf("%w: %w", ErrClosed, err)
		}
		_ = c.nc.Close()
	}
	err = c.failErr
	c.failMu.Unlock()
	return err
}

func (c *Client) terminalErr() error {
	c.failMu.Lock()
	defer c.failMu.Unlock()
	if c.failErr != nil {
		return c.failErr
	}
	return ErrClosed
}

// Close severs the connection and fails every in-flight call. It is
// idempotent.
func (c *Client) Close() error {
	c.sendMu.Lock()
	if c.closed {
		c.sendMu.Unlock()
		return nil
	}
	c.closed = true
	c.sendMu.Unlock()
	_ = c.fail(ErrClosed)
	close(c.closedCh)
	<-c.readerDone
	return nil
}
