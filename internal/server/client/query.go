package client

import (
	"fmt"

	"repro/internal/query"
	"repro/internal/record"
	"repro/internal/server/wire"
)

// QueryScan is the client iterator over a server-side query cursor: a
// composed operator tree (filter, join, group-by, diff, history —
// internal/query) executing on the server, streamed back in row
// batches. Between batches the server's pipeline idles latch-free; an
// abandoned QueryScan is reclaimed by the cursor lease.
type QueryScan struct {
	c     *Client
	id    uint64
	batch uint64
	buf   []query.Row
	pos   int
	done  bool
	err   error
}

// QueryOptions shapes a QueryScan.
type QueryOptions struct {
	BatchSize uint64 // rows per fetch frame (0 = server default)
}

// QueryScan ships spec to the server, compiles it against the
// session's snapshot and namespace, and returns the row iterator.
// Specs holding a Where closure cannot travel and are refused locally.
func (c *Client) QueryScan(spec *query.Spec, opts QueryOptions) (*QueryScan, error) {
	req, err := wire.AppendOpenQuery(nil, spec)
	if err != nil {
		return nil, err
	}
	call, err := c.send(req)
	if err != nil {
		return nil, err
	}
	body, err := c.wait(call)
	if err != nil {
		return nil, err
	}
	d := record.NewDecoder(body)
	id := d.Uvarint()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("client: short open-query reply: %w", err)
	}
	return &QueryScan{c: c, id: id, batch: opts.BatchSize}, nil
}

// Next advances to the next row, fetching the next batch when the
// local one is drained. It returns false at the end of the stream or
// on error (check Err).
func (q *QueryScan) Next() bool {
	if q.err != nil {
		return false
	}
	for q.pos >= len(q.buf) {
		if q.done {
			return false
		}
		if !q.fetch() {
			return false
		}
	}
	q.pos++
	return true
}

func (q *QueryScan) fetch() bool {
	call, err := q.c.send(wire.AppendQueryFetch(nil, q.id, q.batch))
	var body []byte
	if err == nil {
		body, err = q.c.wait(call)
	}
	if err != nil {
		q.err = err
		return false
	}
	d := record.NewDecoder(body)
	q.buf = q.buf[:0]
	q.pos = 0
	for d.Uvarint() == 1 {
		r, rerr := wire.DecodeRow(d)
		if rerr != nil {
			q.err = fmt.Errorf("client: bad query row: %w", rerr)
			return false
		}
		q.buf = append(q.buf, r)
	}
	q.done = d.Bool()
	if err := d.Err(); err != nil {
		q.err = fmt.Errorf("client: short query-fetch reply: %w", err)
		return false
	}
	return true
}

// Row returns the row Next advanced to.
func (q *QueryScan) Row() query.Row { return q.buf[q.pos-1] }

// Err returns the scan's terminal error, typed *wire.Error for server
// refusals.
func (q *QueryScan) Err() error { return q.err }

// Close releases the server-side query cursor (and its operator
// pipeline); safe after exhaustion — the server already removed it.
func (q *QueryScan) Close() error {
	if q.done {
		return nil
	}
	e := record.NewEncoder(make([]byte, 0, 12))
	e.Byte(wire.OpCloseCursor)
	e.Uvarint(q.id)
	call, err := q.c.send(e.Bytes())
	if err != nil {
		return err
	}
	_, err = q.c.wait(call)
	return err
}

// Collect drains the scan into a slice and closes it.
func (q *QueryScan) Collect() ([]query.Row, error) {
	var out []query.Row
	for q.Next() {
		out = append(out, q.Row())
	}
	if q.err != nil {
		return out, q.err
	}
	return out, q.Close()
}
