package server

import (
	"sync"
	"time"

	"repro/internal/query"
	"repro/internal/record"
)

// cursorState is everything the server remembers about a client's open
// range scan between fetches: bounds, snapshot, resume position, and
// lease. For a plain range cursor no DB cursor, latch, or snapshot
// handle lives here — each fetch re-opens and abandons a fresh engine
// cursor, so an idle or abandoned client scan blocks nothing.
//
// A query cursor (op non-nil) additionally keeps its live operator
// pipeline: a composed stream has no single resume key to re-seek
// from. The operator contract makes that equally harmless — an idle
// operator holds no latch — but it does pin heap (and, for a parallel
// scan, parked goroutines), so every path that drops the table entry
// must also Close the operator. Close runs outside the table mutex:
// it may wait on goroutines that are mid-fill inside the engine.
type cursorState struct {
	sess      uint64
	low       record.Key
	high      record.Bound
	at        record.Timestamp
	last      record.Key // resume key: last key returned, nil before the first batch
	remaining int        // client Limit countdown; -1 = unlimited
	reverse   bool
	expires   time.Time
	busy      bool           // checked out by a fetch; janitor must not reap
	op        query.Operator // live pipeline (query cursors only)
}

// cursorTable owns every open server-side cursor. Its mutex is a leaf,
// held only for map bookkeeping — never across a DB call (fetches check
// a cursor out, scan with no table lock held, and check it back in) and
// never across an operator Close.
type cursorTable struct {
	mu        sync.Mutex //tsb:latch level=7 name=server-cursors
	next      uint64
	open      map[uint64]*cursorState
	reclaimed uint64
}

func (t *cursorTable) init() {
	t.open = make(map[uint64]*cursorState)
}

func (t *cursorTable) add(cu *cursorState) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next++
	id := t.next
	t.open[id] = cu
	return id
}

// checkout hands the cursor to a fetch if it exists, belongs to sess,
// and is not already checked out. The lease renews immediately so the
// janitor cannot reap a cursor whose fetch is running long.
func (t *cursorTable) checkout(id, sess uint64, renewTo time.Time) (*cursorState, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cu, found := t.open[id]
	if !found || cu.sess != sess || cu.busy {
		return nil, false
	}
	cu.busy = true
	cu.expires = renewTo
	return cu, true
}

// checkin returns the cursor after a fetch: done removes it, otherwise
// the resume position advances (last non-nil only when the batch
// yielded keys) and the limit countdown shrinks. The caller owns
// closing cu.op on done — it already holds the operator via checkout.
func (t *cursorTable) checkin(id uint64, cu *cursorState, last record.Key, yielded int, done bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cu.busy = false
	if done {
		delete(t.open, id)
		return
	}
	if last != nil {
		cu.last = last
	}
	if cu.remaining > 0 {
		cu.remaining = max(cu.remaining-yielded, 0)
	}
}

// remove closes a cursor if it exists and belongs to sess.
func (t *cursorTable) remove(id, sess uint64) bool {
	t.mu.Lock()
	cu, found := t.open[id]
	if !found || cu.sess != sess {
		t.mu.Unlock()
		return false
	}
	delete(t.open, id)
	t.mu.Unlock()
	closeOp(cu)
	return true
}

// removeSession reaps every cursor a closing session left behind.
func (t *cursorTable) removeSession(sess uint64) {
	t.mu.Lock()
	var dropped []*cursorState
	for id, cu := range t.open {
		if cu.sess == sess {
			delete(t.open, id)
			dropped = append(dropped, cu)
		}
	}
	t.mu.Unlock()
	for _, cu := range dropped {
		closeOp(cu)
	}
}

// reapExpired removes cursors whose lease lapsed — the abandoned-scan
// backstop. In-flight fetches (busy) are skipped; their checkout
// already renewed the lease.
func (t *cursorTable) reapExpired(now time.Time) {
	t.mu.Lock()
	var dropped []*cursorState
	for id, cu := range t.open {
		if !cu.busy && now.After(cu.expires) {
			delete(t.open, id)
			t.reclaimed++
			dropped = append(dropped, cu)
		}
	}
	t.mu.Unlock()
	for _, cu := range dropped {
		closeOp(cu)
	}
}

func (t *cursorTable) counts() (open int, reclaimed uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.open), t.reclaimed
}

func (t *cursorTable) clear() {
	t.mu.Lock()
	var dropped []*cursorState
	for _, cu := range t.open {
		dropped = append(dropped, cu)
	}
	clear(t.open)
	t.mu.Unlock()
	for _, cu := range dropped {
		closeOp(cu)
	}
}

// closeOp releases a query cursor's pipeline; a no-op for plain range
// cursors. Never called with the table mutex held.
func closeOp(cu *cursorState) {
	if cu.op != nil {
		_ = cu.op.Close()
		cu.op = nil
	}
}
