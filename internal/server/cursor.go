package server

import (
	"sync"
	"time"

	"repro/internal/record"
)

// cursorState is everything the server remembers about a client's open
// range scan between fetches: bounds, snapshot, resume position, and
// lease. No DB cursor, latch, or snapshot handle lives here — each
// fetch re-opens and abandons a fresh engine cursor, so an idle or
// abandoned client scan blocks nothing.
type cursorState struct {
	sess      uint64
	low       record.Key
	high      record.Bound
	at        record.Timestamp
	last      record.Key // resume key: last key returned, nil before the first batch
	remaining int        // client Limit countdown; -1 = unlimited
	reverse   bool
	expires   time.Time
	busy      bool // checked out by a fetch; janitor must not reap
}

// cursorTable owns every open server-side cursor. Its mutex is a leaf,
// held only for map bookkeeping — never across a DB call (fetches check
// a cursor out, scan with no table lock held, and check it back in).
type cursorTable struct {
	mu        sync.Mutex //tsb:latch level=7 name=server-cursors
	next      uint64
	open      map[uint64]*cursorState
	reclaimed uint64
}

func (t *cursorTable) init() {
	t.open = make(map[uint64]*cursorState)
}

func (t *cursorTable) add(cu *cursorState) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next++
	id := t.next
	t.open[id] = cu
	return id
}

// checkout hands the cursor to a fetch if it exists, belongs to sess,
// and is not already checked out. The lease renews immediately so the
// janitor cannot reap a cursor whose fetch is running long.
func (t *cursorTable) checkout(id, sess uint64, renewTo time.Time) (*cursorState, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cu, found := t.open[id]
	if !found || cu.sess != sess || cu.busy {
		return nil, false
	}
	cu.busy = true
	cu.expires = renewTo
	return cu, true
}

// checkin returns the cursor after a fetch: done removes it, otherwise
// the resume position advances (last non-nil only when the batch
// yielded keys) and the limit countdown shrinks.
func (t *cursorTable) checkin(id uint64, cu *cursorState, last record.Key, yielded int, done bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cu.busy = false
	if done {
		delete(t.open, id)
		return
	}
	if last != nil {
		cu.last = last
	}
	if cu.remaining > 0 {
		cu.remaining = max(cu.remaining-yielded, 0)
	}
}

// remove closes a cursor if it exists and belongs to sess.
func (t *cursorTable) remove(id, sess uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	cu, found := t.open[id]
	if !found || cu.sess != sess {
		return false
	}
	delete(t.open, id)
	return true
}

// removeSession reaps every cursor a closing session left behind.
func (t *cursorTable) removeSession(sess uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id, cu := range t.open {
		if cu.sess == sess {
			delete(t.open, id)
		}
	}
}

// reapExpired removes cursors whose lease lapsed — the abandoned-scan
// backstop. In-flight fetches (busy) are skipped; their checkout
// already renewed the lease.
func (t *cursorTable) reapExpired(now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id, cu := range t.open {
		if !cu.busy && now.After(cu.expires) {
			delete(t.open, id)
			t.reclaimed++
		}
	}
}

func (t *cursorTable) counts() (open int, reclaimed uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.open), t.reclaimed
}

func (t *cursorTable) clear() {
	t.mu.Lock()
	defer t.mu.Unlock()
	clear(t.open)
}
