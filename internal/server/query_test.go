package server_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/db"
	"repro/internal/query"
	"repro/internal/record"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/server/wire"
)

func TestServerQueryScan(t *testing.T) {
	h := start(t, db.Config{}, server.Config{})
	c := h.dial(t, client.Options{Tenant: []byte("acme")})
	other := h.dial(t, client.Options{Tenant: []byte("rival")})

	for i := 0; i < 40; i++ {
		if _, err := c.Put(record.Key(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := other.Put(record.Key("k05"), []byte("rival-owned")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Refresh(); err != nil {
		t.Fatal(err)
	}

	// Filter pushdown over the wire, batched smaller than the result.
	qs, err := c.QueryScan(
		query.Scan(nil, record.InfiniteBound()).
			Filter(record.Key("k03"), record.KeyBound(record.Key("k08"))),
		client.QueryOptions{BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := qs.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	for i, r := range rows {
		want := fmt.Sprintf("k%02d", i+3)
		if string(r.Key) != want {
			t.Fatalf("row %d key = %q, want %q", i, r.Key, want)
		}
		if len(r.Versions) != 1 || string(r.Versions[0].Key) != want {
			t.Fatalf("row %d version key = %+v", i, r.Versions)
		}
		if string(r.Versions[0].Value) == "rival-owned" {
			t.Fatal("tenant isolation breached: rival's value surfaced")
		}
	}

	// GroupBy over one key's history.
	for i := 0; i < 3; i++ {
		if _, err := c.Put(record.Key("k00"), []byte(fmt.Sprintf("w%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Refresh(); err != nil {
		t.Fatal(err)
	}
	qs, err = c.QueryScan(
		query.Window(record.Key("k00"), record.KeyBound(record.Key("k01")), 1, record.TimeInfinity).
			GroupBy(),
		client.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rows, err = qs.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Count != 4 || string(rows[0].Key) != "k00" {
		t.Fatalf("group rows = %+v", rows)
	}
}

func TestServerQueryBadSpec(t *testing.T) {
	h := start(t, db.Config{}, server.Config{})
	c := h.dial(t, client.Options{Tenant: []byte("acme")})

	// A Where closure is refused locally, before any bytes move.
	if _, err := c.QueryScan(
		query.Scan(nil, record.InfiniteBound()).FilterWhere(func(query.Row) bool { return true }),
		client.QueryOptions{}); err == nil {
		t.Fatal("Where closure crossed the wire")
	}

	// A structurally-invalid tree is the typed bad-request.
	_, err := c.QueryScan(query.Scan(nil, record.InfiniteBound()).WithLimit(0).
		FilterValuePrefix([]byte("x")), client.QueryOptions{})
	var we *wire.Error
	if !errors.As(err, &we) || we.Code != wire.CodeBadRequest {
		t.Fatalf("limit-0 spec: err = %v, want CodeBadRequest", err)
	}
}

func TestServerQueryCursorLease(t *testing.T) {
	h := start(t, db.Config{}, server.Config{
		CursorLease: 50 * time.Millisecond,
	})
	c := h.dial(t, client.Options{Tenant: []byte("acme")})
	for i := 0; i < 10; i++ {
		if _, err := c.Put(record.Key(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Refresh(); err != nil {
		t.Fatal(err)
	}

	// Open a parallel query (per-shard goroutines parked on channels),
	// fetch nothing, and let the lease lapse: the janitor must reap the
	// cursor AND release the pipeline (Shutdown would hang on leaked
	// goroutines otherwise — the harness cleanup is the assertion).
	spec := query.Scan(nil, record.InfiniteBound())
	spec.Parallel = true
	if _, err := c.QueryScan(spec, client.QueryOptions{}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := c.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.CursorsReclaimed >= 1 && st.Cursors == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("query cursor not reaped: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
