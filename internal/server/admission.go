package server

import (
	"fmt"
	"time"

	"repro/internal/server/wire"
)

// admitVerdict is one cached admission decision: whether writes shed
// right now, and the message naming the gauge that tripped.
type admitVerdict struct {
	shed   bool
	reason string
	when   int64 // UnixNano of the probe that produced it
}

// admit decides whether a write may proceed. Reading the engine gauges
// takes the stats snapshot (shard counts, WAL state), which is far too
// heavy per operation at six-figure op rates — so one verdict is cached
// for AdmissionProbe and every connection shares it. A shed returns the
// typed retryable response BEFORE the write has any effect: shedding
// never loses an acknowledged operation, it only refuses unstarted
// ones.
//
// Reads are never shed — they cost no WAL or migrator work, and serving
// them during overload is the point of having the history.
func (s *Server) admit() []byte {
	cfg := s.cfg
	if cfg.ShedMigratorQueue <= 0 && cfg.ShedWALBacklogBytes <= 0 {
		return nil
	}
	now := time.Now().UnixNano()
	v := s.admitState.Load()
	if v == nil || now-v.when >= int64(cfg.AdmissionProbe) {
		v = s.probe(now)
		s.admitState.Store(v)
	}
	if !v.shed {
		return nil
	}
	s.shed.Inc()
	return errResp(wire.CodeOverloaded, v.reason)
}

func (s *Server) probe(now int64) *admitVerdict {
	st := s.db.Stats()
	v := &admitVerdict{when: now}
	switch {
	case s.cfg.ShedMigratorQueue > 0 && st.Migrator.QueueDepth >= s.cfg.ShedMigratorQueue:
		v.shed = true
		v.reason = fmt.Sprintf("migrator queue depth %d at watermark %d; retry later",
			st.Migrator.QueueDepth, s.cfg.ShedMigratorQueue)
	case s.cfg.ShedWALBacklogBytes > 0 && int64(st.WAL.BacklogBytes) >= s.cfg.ShedWALBacklogBytes:
		v.shed = true
		v.reason = fmt.Sprintf("WAL backlog %d bytes at watermark %d; retry later",
			st.WAL.BacklogBytes, s.cfg.ShedWALBacklogBytes)
	}
	return v
}
