package server

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// latencyHist is a lock-free log2 histogram of op execution latency in
// microseconds: bucket i holds observations whose microsecond count has
// bit length i (i.e. [2^(i-1), 2^i), bucket 0 is sub-microsecond).
// Percentiles report the bucket's upper bound — within 2x of truth,
// which is what a load-shedding operator needs from a p99, at the cost
// of two atomic adds per op.
type latencyHist struct {
	buckets [40]atomic.Uint64
	count   atomic.Uint64
}

func (h *latencyHist) observe(d time.Duration) {
	us := uint64(d.Microseconds())
	b := bits.Len64(us)
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
}

// percentile returns the upper bound, in microseconds, of the bucket
// containing the p-th observation (0 when nothing was observed).
func (h *latencyHist) percentile(p float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(p * float64(total))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if i == 0 {
				return 0
			}
			return 1<<uint(i) - 1
		}
	}
	return 1<<uint(len(h.buckets)) - 1
}
