// Package server is the network service layer: it serves a db.DB over
// TCP with a pipelined binary protocol (internal/server/wire), turning
// the embedded TSB-tree engine into a system.
//
// # Connection model
//
// One connection is one session. Per connection three goroutines form a
// pipeline: a reader decodes frames (record.ReadFrame — the WAL's
// length+CRC shape) into a bounded in-flight window, an executor runs
// requests against the DB strictly in order, and a writer streams the
// responses back in that same order, so the window needs no correlation
// ids. The window bound is the server's per-connection memory ceiling
// and its backpressure: a client that pipelines past it simply blocks
// in TCP.
//
// The session's first frame must be wire.Hello, which names the tenant
// and pins the session's read snapshot (0 = the commit clock at open).
// Every key the session touches is mapped into the tenant's slice of
// the shard space by record.PrefixKey — tenants are disjoint by
// construction, and shard routing sees the prefixed bytes. Reads
// default to the pinned snapshot — one admissible serialization chosen
// at session open and held — and OpRefresh re-pins to "now" when the
// session wants to observe later commits.
//
// # Cursors, leases
//
// Range scans are server-side cursors: OpOpenCursor registers bounds
// and a snapshot, OpFetch returns one batch. Between fetches the server
// holds NO DB resource — a fetch opens a fresh DB cursor positioned by
// the saved resume key (ScanOptions.After forward, a shrunken high
// bound in reverse), drains one batch, and abandons it, which by the
// engine's cursor contract leaks nothing and can never block a writer.
// The only cross-fetch state is a struct in the cursor table, and a
// lease reclaims it: every fetch renews the lease, a janitor reaps
// cursors whose lease expired, and a session's close reaps its cursors.
//
// # Admission control, drain
//
// Writes are admitted against two engine gauges: the migrator queue
// depth and the WAL backlog (Stats().Migrator.QueueDepth,
// Stats().WAL.BacklogBytes). Past the configured watermarks the server
// sheds: the write is refused before any effect with the typed,
// retryable wire.Error (CodeOverloaded) — never accepted-then-dropped.
// Shutdown drains: listeners close, readers stop consuming frames,
// every request already in a window executes and its response flushes,
// cursors close. Acknowledged means durable throughout — a commit is
// acked only after db.DB.Update returned, which in durable mode means
// fsynced.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/db"
	"repro/internal/obs"
	"repro/internal/server/wire"
)

// Config tunes the server. The zero value serves with the documented
// defaults.
type Config struct {
	// MaxFrameBytes bounds one message frame's payload in both
	// directions (default wire.DefaultMaxFrame). It must comfortably
	// exceed the largest value the DB accepts plus header overhead.
	MaxFrameBytes int
	// Window is the per-connection in-flight request bound: how many
	// decoded requests may await execution or response write (default
	// 64).
	Window int
	// IdleTimeout closes a connection no frame arrived on (default 5m).
	IdleTimeout time.Duration
	// WriteTimeout bounds each response flush (default 30s).
	WriteTimeout time.Duration
	// CursorLease is how long an un-fetched server-side cursor survives
	// before the janitor reclaims it; every fetch renews it (default
	// 1m).
	CursorLease time.Duration
	// ShedMigratorQueue sheds writes while the background migrator's
	// queue depth is at or past this watermark (0 = disabled).
	ShedMigratorQueue int
	// ShedWALBacklogBytes sheds writes while the WAL has grown this
	// many bytes past the last checkpoint (0 = disabled).
	ShedWALBacklogBytes int64
	// AdmissionProbe is how long an admission verdict is cached before
	// the engine gauges are re-read (default 5ms; negative probes on
	// every write — tests).
	AdmissionProbe time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxFrameBytes <= 0 {
		c.MaxFrameBytes = wire.DefaultMaxFrame
	}
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.CursorLease <= 0 {
		c.CursorLease = time.Minute
	}
	if c.AdmissionProbe == 0 {
		c.AdmissionProbe = 5 * time.Millisecond
	}
	return c
}

// ErrServerClosed is returned by Serve after Shutdown begins.
var ErrServerClosed = errors.New("server: closed")

// Stats is the server's observability surface; `tsbserve -status`
// renders it via wire.StatsReply.
type Stats struct {
	Conns            int    // open connections
	TotalConns       uint64 // connections ever accepted
	InFlight         int64  // requests read but not yet responded
	Ops              uint64 // operations executed
	Shed             uint64 // writes refused by admission control
	Cursors          int    // open server-side cursors
	CursorsReclaimed uint64 // cursors reaped by lease expiry
	P50Micros        uint64 // op execution latency percentiles
	P99Micros        uint64
	Draining         bool
	// PerOp breaks execution latency down by op class; only classes
	// that executed at least once appear.
	PerOp []wire.OpClassStats
}

// Server serves one DB over any number of listeners. It does not own
// the DB: the caller closes it after Shutdown returns (the daemon's
// drain order — in-flight batches finish, cursors close, DB.Close
// runs).
type Server struct {
	db  *db.DB
	cfg Config

	// mu guards the listener and connection sets and the draining
	// flag. It is a leaf: never held across a DB call, a blocking
	// network call, or another latch.
	mu       sync.Mutex //tsb:latch level=7 name=server
	lns      map[net.Listener]struct{}
	conns    map[net.Conn]struct{}
	draining bool

	curs cursorTable

	connWg      sync.WaitGroup
	janitorStop chan struct{}
	janitorOnce sync.Once
	janitorWg   sync.WaitGroup

	nextSession atomic.Uint64
	totalConns  obs.Counter
	inFlight    obs.Gauge
	ops         obs.Counter
	shed        obs.Counter

	// Cached admission verdict (admission.go).
	admitProbe atomic.Int64
	admitState atomic.Pointer[admitVerdict]

	// allHist aggregates execution latency across every op; opHists
	// break it down by op byte (index = wire op code), badHist catches
	// frames whose op byte is outside the known range.
	allHist obs.Histogram
	opHists [wire.OpQueryFetch + 1]obs.Histogram
	badHist obs.Histogram
}

// opClassNames names each op byte for metrics labels and StatsReply,
// indexed by wire op code (0 is unused).
var opClassNames = [wire.OpQueryFetch + 1]string{
	wire.OpHello:       "hello",
	wire.OpPut:         "put",
	wire.OpGet:         "get",
	wire.OpDelete:      "delete",
	wire.OpCommit:      "commit",
	wire.OpOpenCursor:  "open_cursor",
	wire.OpFetch:       "fetch",
	wire.OpCloseCursor: "close_cursor",
	wire.OpRefresh:     "refresh",
	wire.OpStats:       "stats",
	wire.OpPing:        "ping",
	wire.OpOpenQuery:   "open_query",
	wire.OpQueryFetch:  "query_fetch",
}

// opHistFor routes an executed request payload to its op-class
// histogram by the leading op byte.
func (s *Server) opHistFor(payload []byte) *obs.Histogram {
	if len(payload) == 0 {
		return &s.badHist
	}
	op := payload[0]
	if op >= wire.OpHello && op <= wire.OpQueryFetch {
		return &s.opHists[op]
	}
	return &s.badHist
}

// RegisterMetrics attaches the server's instruments to r, alongside the
// engine's own (db.DB.Metrics()). Safe to call once, any time after New.
func (s *Server) RegisterMetrics(r *obs.Registry) {
	r.RegisterCounter("tsb_server_conns_total", "connections ever accepted", &s.totalConns)
	r.RegisterCounter("tsb_server_ops_total", "operations executed", &s.ops)
	r.RegisterCounter("tsb_server_shed_total", "writes refused by admission control", &s.shed)
	r.RegisterGauge("tsb_server_inflight_requests", "requests read but not yet responded", &s.inFlight)
	r.GaugeFunc("tsb_server_open_conns", "open connections", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.conns))
	})
	r.GaugeFunc("tsb_server_open_cursors", "open server-side cursors", func() float64 {
		open, _ := s.curs.counts()
		return float64(open)
	})
	r.GaugeFunc("tsb_server_cursors_reclaimed_total", "cursors reaped by lease expiry", func() float64 {
		_, reclaimed := s.curs.counts()
		return float64(reclaimed)
	})
	r.RegisterHistogram("tsb_server_op_seconds", "request execution latency",
		&s.allHist, obs.Label{Key: "op", Value: "all"})
	for op := int(wire.OpHello); op <= int(wire.OpQueryFetch); op++ {
		r.RegisterHistogram("tsb_server_op_seconds", "request execution latency",
			&s.opHists[op], obs.Label{Key: "op", Value: opClassNames[op]})
	}
	r.RegisterHistogram("tsb_server_op_seconds", "request execution latency",
		&s.badHist, obs.Label{Key: "op", Value: "other"})
}

// New builds a server over d and starts the cursor-lease janitor.
func New(d *db.DB, cfg Config) *Server {
	s := &Server{
		db:          d,
		cfg:         cfg.withDefaults(),
		lns:         make(map[net.Listener]struct{}),
		conns:       make(map[net.Conn]struct{}),
		janitorStop: make(chan struct{}),
	}
	s.curs.init()
	s.janitorWg.Add(1)
	go s.janitor()
	return s
}

// Serve accepts connections on ln until Shutdown or a listener error.
// It returns nil once Shutdown closed the listener. Multiple Serve
// calls on different listeners may run concurrently.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.lns, ln)
		s.mu.Unlock()
	}()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.isDraining() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			_ = nc.Close()
			return nil
		}
		s.conns[nc] = struct{}{}
		s.connWg.Add(1)
		s.mu.Unlock()
		s.totalConns.Inc()
		go s.serveConn(nc)
	}
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// armRead prepares the next frame read: it refuses once draining, and
// arms the idle deadline under mu so Shutdown's wake-up deadline cannot
// be overwritten after the draining flag is set.
func (s *Server) armRead(nc net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	_ = nc.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
	return true
}

func (s *Server) unregister(nc net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, nc)
}

// Shutdown drains the server: no new connections or frames are
// accepted, every request already inside a connection's window executes
// and its response is flushed, then connections and cursors close. If
// ctx expires first the remaining connections are severed and their
// unwritten responses dropped (their commits, if any, are durable —
// they were simply never acknowledged). The caller closes the DB after
// Shutdown returns.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	for ln := range s.lns {
		_ = ln.Close()
	}
	// Wake every reader blocked in a frame read; armRead cannot re-arm
	// past this because draining is set under the same mu.
	now := time.Now()
	for nc := range s.conns {
		_ = nc.SetReadDeadline(now)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.connWg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.mu.Lock()
		for nc := range s.conns {
			_ = nc.Close()
		}
		s.mu.Unlock()
		<-done
	}
	s.janitorOnce.Do(func() { close(s.janitorStop) })
	s.janitorWg.Wait()
	s.curs.clear()
	return err
}

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	conns := len(s.conns)
	draining := s.draining
	s.mu.Unlock()
	open, reclaimed := s.curs.counts()
	st := Stats{
		Conns:            conns,
		TotalConns:       s.totalConns.Load(),
		InFlight:         s.inFlight.Load(),
		Ops:              s.ops.Load(),
		Shed:             s.shed.Load(),
		Cursors:          open,
		CursorsReclaimed: reclaimed,
		P50Micros:        s.allHist.Percentile(0.50),
		P99Micros:        s.allHist.Percentile(0.99),
		Draining:         draining,
	}
	for op := int(wire.OpHello); op <= int(wire.OpQueryFetch); op++ {
		st.PerOp = appendOpClass(st.PerOp, opClassNames[op], &s.opHists[op])
	}
	st.PerOp = appendOpClass(st.PerOp, "other", &s.badHist)
	return st
}

// appendOpClass appends h's summary under name, skipping classes that
// never executed.
func appendOpClass(dst []wire.OpClassStats, name string, h *obs.Histogram) []wire.OpClassStats {
	n := h.Count()
	if n == 0 {
		return dst
	}
	return append(dst, wire.OpClassStats{
		Name:      name,
		Count:     n,
		P50Micros: h.Percentile(0.50),
		P99Micros: h.Percentile(0.99),
		MaxMicros: h.MaxMicros(),
	})
}

// WireStats converts Stats for the OpStats reply.
func (st Stats) WireStats() wire.StatsReply {
	return wire.StatsReply{
		Conns:            uint64(st.Conns),
		TotalConns:       st.TotalConns,
		InFlight:         uint64(max(st.InFlight, 0)),
		Ops:              st.Ops,
		Shed:             st.Shed,
		Cursors:          uint64(st.Cursors),
		CursorsReclaimed: st.CursorsReclaimed,
		P50Micros:        st.P50Micros,
		P99Micros:        st.P99Micros,
		Draining:         st.Draining,
		PerOp:            st.PerOp,
	}
}

// janitor reaps expired cursor leases until Shutdown.
func (s *Server) janitor() {
	defer s.janitorWg.Done()
	iv := s.cfg.CursorLease / 4
	if iv < 10*time.Millisecond {
		iv = 10 * time.Millisecond
	}
	t := time.NewTicker(iv)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-t.C:
			s.curs.reapExpired(time.Now())
		}
	}
}

// String names the server for logs.
func (s *Server) String() string {
	return fmt.Sprintf("tsbserve(%d shards)", s.db.Shards())
}
