package workload

import (
	"testing"
)

func TestDeterminism(t *testing.T) {
	cfg := Config{Ops: 500, UpdateFraction: 0.5, Seed: 42}
	a := New(cfg).All()
	b := New(cfg).All()
	if len(a) != 500 || len(b) != 500 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Key.Equal(b[i].Key) || a[i].Delete != b[i].Delete ||
			string(a[i].Value) != string(b[i].Value) {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestUpdateFractionExtremes(t *testing.T) {
	// Pure insertion: every op introduces a new key.
	g := New(Config{Ops: 200, UpdateFraction: 0, Seed: 1})
	for _, op := range g.All() {
		if op.Update || op.Delete {
			t.Fatalf("pure-insert stream produced %+v", op)
		}
	}
	if g.KeysCreated() != 200+16 {
		t.Errorf("KeysCreated = %d", g.KeysCreated())
	}
	// Pure update: no new keys beyond the initial ones.
	g = New(Config{Ops: 200, UpdateFraction: 1, Seed: 1, InitialKeys: 8})
	for _, op := range g.All() {
		if !op.Update {
			t.Fatalf("pure-update stream produced insert %+v", op)
		}
	}
	if g.KeysCreated() != 8 {
		t.Errorf("KeysCreated = %d", g.KeysCreated())
	}
}

func TestUpdateFractionApproximate(t *testing.T) {
	g := New(Config{Ops: 4000, UpdateFraction: 0.3, Seed: 7})
	updates := 0
	for _, op := range g.All() {
		if op.Update {
			updates++
		}
	}
	frac := float64(updates) / 4000
	if frac < 0.25 || frac > 0.35 {
		t.Errorf("update fraction = %.3f, want ~0.3", frac)
	}
}

func TestDeleteFraction(t *testing.T) {
	g := New(Config{Ops: 2000, UpdateFraction: 0.8, DeleteFraction: 0.2, Seed: 3})
	deletes, updates := 0, 0
	for _, op := range g.All() {
		if op.Delete {
			deletes++
			if op.Value != nil {
				t.Fatal("delete op with value")
			}
		}
		if op.Update {
			updates++
		}
	}
	if deletes == 0 || deletes > updates {
		t.Errorf("deletes=%d updates=%d", deletes, updates)
	}
}

func TestDistributions(t *testing.T) {
	for _, d := range []Distribution{Uniform, Zipf, Sequential} {
		g := New(Config{Ops: 1000, UpdateFraction: 1, Dist: d, Seed: 5, InitialKeys: 32})
		counts := make(map[string]int)
		for _, op := range g.All() {
			counts[string(op.Key)]++
		}
		if len(counts) == 0 {
			t.Fatalf("%v: no updates", d)
		}
		if d.String() == "" {
			t.Error("empty distribution name")
		}
	}
	// Zipf must be visibly skewed: the hottest key gets far more than
	// the uniform share.
	g := New(Config{Ops: 5000, UpdateFraction: 1, Dist: Zipf, Seed: 5, InitialKeys: 64})
	counts := make(map[string]int)
	for _, op := range g.All() {
		counts[string(op.Key)]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 3*(5000/64) {
		t.Errorf("zipf max count %d not skewed (uniform share %d)", max, 5000/64)
	}
	// Sequential cycles deterministically.
	g = New(Config{Ops: 64, UpdateFraction: 1, Dist: Sequential, Seed: 5, InitialKeys: 32})
	ops := g.All()
	if !ops[0].Key.Equal(KeyName(0)) || !ops[32].Key.Equal(KeyName(0)) {
		t.Error("sequential distribution should cycle from key 0")
	}
}

func TestValueSize(t *testing.T) {
	g := New(Config{Ops: 10, UpdateFraction: 0, ValueSize: 100, Seed: 1})
	for _, op := range g.All() {
		if len(op.Value) != 100 {
			t.Fatalf("value size %d, want 100", len(op.Value))
		}
	}
	// Initial ops carry values too.
	for _, op := range New(Config{Ops: 0, ValueSize: 10, Seed: 1}).InitialOps() {
		if len(op.Value) != 10 || op.Update || op.Delete {
			t.Fatalf("bad initial op %+v", op)
		}
	}
}

func TestKeyNamesUniqueAndSpread(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 10000; i++ {
		k := string(KeyName(i))
		if seen[k] {
			t.Fatalf("duplicate key at %d", i)
		}
		seen[k] = true
	}
}
