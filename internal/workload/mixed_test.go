package workload

import (
	"reflect"
	"testing"

	"repro/internal/record"
)

func TestMixedStreamsDeterministic(t *testing.T) {
	cfg := MixedConfig{Workers: 3, OpsPerWorker: 200, Seed: 9, DeleteFraction: 0.1, RollbackFraction: 0.2}
	a := NewMixed(cfg)
	b := NewMixed(cfg)
	for w := 0; w < 3; w++ {
		if !reflect.DeepEqual(a.Stream(w), b.Stream(w)) {
			t.Fatalf("worker %d stream not deterministic", w)
		}
	}
	if reflect.DeepEqual(a.Stream(0), a.Stream(1)) {
		t.Fatal("distinct workers produced identical streams")
	}
}

func TestMixedStreamsRespectFractions(t *testing.T) {
	m := NewMixed(MixedConfig{Workers: 2, OpsPerWorker: 5000, Seed: 1, ReadFraction: 0.6, DeleteFraction: 0.2})
	reads, writes, deletes := 0, 0, 0
	for _, op := range m.Stream(0) {
		switch op.Kind {
		case OpGet, OpGetAsOf, OpScan:
			reads++
		case OpPut:
			writes++
		case OpDelete:
			deletes++
		}
	}
	total := reads + writes + deletes
	if total != 5000 {
		t.Fatalf("stream length %d", total)
	}
	if f := float64(reads) / float64(total); f < 0.55 || f > 0.65 {
		t.Fatalf("read fraction %f, want ~0.6", f)
	}
	if f := float64(deletes) / float64(writes+deletes); f < 0.15 || f > 0.25 {
		t.Fatalf("delete fraction %f, want ~0.2", f)
	}
}

// TestSpreadKeysCoverShards checks the property the sharded engine's
// scaling depends on: SpreadKey indexes land near-uniformly across the
// key-range shards of record.ShardOfKey.
func TestSpreadKeysCoverShards(t *testing.T) {
	const n = 8
	counts := make([]int, n)
	for i := uint64(0); i < 8000; i++ {
		counts[record.ShardOfKey(SpreadKey(i), n)]++
	}
	for s, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("shard %d holds %d of 8000 keys: spread is skewed (%v)", s, c, counts)
		}
	}
}

func TestMixedInitialOpsSeedAllTargets(t *testing.T) {
	m := NewMixed(MixedConfig{Workers: 2, KeysPerWorker: 32, Seed: 3})
	init := make(map[string]bool)
	for _, op := range m.InitialOps() {
		if op.Kind != OpPut || len(op.Value) == 0 {
			t.Fatalf("bad initial op %+v", op)
		}
		init[string(op.Key)] = true
	}
	if len(init) != 2*32+16 {
		t.Fatalf("initial ops cover %d keys, want %d", len(init), 2*32+16)
	}
	// Every point-read target of every stream must be pre-seeded.
	for w := 0; w < 2; w++ {
		for _, op := range m.Stream(w) {
			if op.Kind == OpGet || op.Kind == OpGetAsOf {
				if !init[string(op.Key)] {
					t.Fatalf("read target %s not pre-seeded", op.Key)
				}
			}
		}
	}
}
