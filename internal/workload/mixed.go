package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/record"
)

// Mixed is the concurrent read/write scenario: W independent
// deterministic operation streams meant to be driven by W goroutines
// against one database. It exists so the sharded engine's concurrency is
// exercised by a named, reproducible workload rather than ad-hoc loops.
//
// Keys come from SpreadKey, whose 8-byte binary keys have uniform
// high-order bytes, so the streams spread evenly over the key-range
// shards of internal/db. Each worker updates a private slice of the key
// space by default (no-wait lock conflicts stay rare); set
// ContendedFraction above zero to aim that fraction of writes at a small
// shared hot set instead, provoking conflicts on purpose.
type MixedConfig struct {
	// Workers is the number of concurrent streams (default 4).
	Workers int
	// OpsPerWorker is the length of each stream (default 1000).
	OpsPerWorker int
	// ReadFraction in [0,1] is the probability an operation reads
	// instead of writes (default 0.5).
	ReadFraction float64
	// ScanFraction is the portion of reads that are snapshot scans over
	// a short key range; the rest are point reads (default 0.1).
	ScanFraction float64
	// RollbackFraction is the portion of point reads that address a
	// past timestamp (GetAsOf) rather than the current time.
	RollbackFraction float64
	// DeleteFraction is the portion of writes that are tombstones.
	DeleteFraction float64
	// ContendedFraction is the portion of writes aimed at the shared
	// hot set (16 keys) instead of the worker's private keys.
	ContendedFraction float64
	// KeysPerWorker sizes each worker's private key set (default 256).
	KeysPerWorker int
	// ValueSize is the record payload size in bytes (default 32).
	ValueSize int
	// Seed makes every stream deterministic.
	Seed int64
}

func (c MixedConfig) withDefaults() MixedConfig {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.OpsPerWorker == 0 {
		c.OpsPerWorker = 1000
	}
	if c.ReadFraction == 0 {
		c.ReadFraction = 0.5
	}
	if c.ScanFraction == 0 {
		c.ScanFraction = 0.1
	}
	if c.KeysPerWorker == 0 {
		c.KeysPerWorker = 256
	}
	if c.ValueSize == 0 {
		c.ValueSize = 32
	}
	return c
}

// MixedOpKind enumerates the operations of a mixed stream.
type MixedOpKind int

const (
	// OpPut writes a value for Key.
	OpPut MixedOpKind = iota
	// OpDelete writes a tombstone for Key.
	OpDelete
	// OpGet reads the current version of Key.
	OpGet
	// OpGetAsOf reads Key at a past timestamp (the driver picks the
	// concrete time, e.g. uniformly over [1, Now]).
	OpGetAsOf
	// OpScan snapshot-scans the half-open key range [Key, High).
	OpScan
)

// String names the kind.
func (k MixedOpKind) String() string {
	switch k {
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpGet:
		return "get"
	case OpGetAsOf:
		return "get-asof"
	case OpScan:
		return "scan"
	default:
		return fmt.Sprintf("MixedOpKind(%d)", int(k))
	}
}

// MixedOp is one operation of a mixed stream.
type MixedOp struct {
	Kind  MixedOpKind
	Key   record.Key
	High  record.Bound // scan upper bound (OpScan only)
	Value []byte       // payload (OpPut only)
}

// SpreadKey returns the canonical key for index i, as an 8-byte binary
// key whose high-order bytes are uniformly distributed (multiplicative
// hashing), so consecutive indexes land on different key-range shards.
func SpreadKey(i uint64) record.Key {
	return record.Uint64Key(i * 0x9e3779b97f4a7c15)
}

// Mixed generates the per-worker streams of a MixedConfig.
type Mixed struct {
	cfg MixedConfig
}

// NewMixed returns a generator for cfg (defaults applied).
func NewMixed(cfg MixedConfig) *Mixed {
	return &Mixed{cfg: cfg.withDefaults()}
}

// Config returns the effective configuration, defaults applied.
func (m *Mixed) Config() MixedConfig { return m.cfg }

// hotKey returns one of the 16 shared contended keys.
func hotKey(rng *rand.Rand) record.Key {
	return SpreadKey(uint64(1<<40) + uint64(rng.Intn(16)))
}

// privateKey returns one of worker w's private keys.
func (m *Mixed) privateKey(w int, rng *rand.Rand) record.Key {
	base := uint64(w+1) << 20
	return SpreadKey(base + uint64(rng.Intn(m.cfg.KeysPerWorker)))
}

// InitialOps returns the writes that pre-seed every worker's private key
// set and the hot set, so reads in the streams have targets. Apply them
// (in any order, any sharding) before starting the workers.
func (m *Mixed) InitialOps() []MixedOp {
	var out []MixedOp
	for w := 0; w < m.cfg.Workers; w++ {
		base := uint64(w+1) << 20
		for i := 0; i < m.cfg.KeysPerWorker; i++ {
			out = append(out, MixedOp{
				Kind: OpPut, Key: SpreadKey(base + uint64(i)),
				Value: m.value(w, i),
			})
		}
	}
	for i := 0; i < 16; i++ {
		out = append(out, MixedOp{
			Kind: OpPut, Key: SpreadKey(uint64(1<<40) + uint64(i)),
			Value: m.value(-1, i),
		})
	}
	return out
}

func (m *Mixed) value(w, tag int) []byte {
	v := make([]byte, m.cfg.ValueSize)
	s := fmt.Sprintf("w%d-%d-", w, tag)
	copy(v, s)
	for i := len(s); i < len(v); i++ {
		v[i] = byte('a' + (tag+i)%26)
	}
	return v
}

// Stream returns worker w's deterministic operation stream.
func (m *Mixed) Stream(w int) []MixedOp {
	c := m.cfg
	rng := rand.New(rand.NewSource(c.Seed*1_000_003 + int64(w)))
	out := make([]MixedOp, 0, c.OpsPerWorker)
	for i := 0; i < c.OpsPerWorker; i++ {
		var op MixedOp
		if rng.Float64() < c.ReadFraction {
			switch {
			case rng.Float64() < c.ScanFraction:
				// Short range scan starting at a random point.
				start := rng.Uint64()
				op = MixedOp{
					Kind: OpScan,
					Key:  record.Uint64Key(start),
					High: record.KeyBound(record.Uint64Key(start + 1<<56)),
				}
			case rng.Float64() < c.RollbackFraction:
				op = MixedOp{Kind: OpGetAsOf, Key: m.readTarget(w, rng)}
			default:
				op = MixedOp{Kind: OpGet, Key: m.readTarget(w, rng)}
			}
		} else {
			k := m.privateKey(w, rng)
			if c.ContendedFraction > 0 && rng.Float64() < c.ContendedFraction {
				k = hotKey(rng)
			}
			if rng.Float64() < c.DeleteFraction {
				op = MixedOp{Kind: OpDelete, Key: k}
			} else {
				op = MixedOp{Kind: OpPut, Key: k, Value: m.value(w, i)}
			}
		}
		out = append(out, op)
	}
	return out
}

// readTarget picks a key any worker may have written: usually the
// reader's own range, sometimes another worker's, sometimes the hot set.
func (m *Mixed) readTarget(w int, rng *rand.Rand) record.Key {
	switch rng.Intn(4) {
	case 0:
		return m.privateKey(rng.Intn(m.cfg.Workers), rng)
	case 1:
		return hotKey(rng)
	default:
		return m.privateKey(w, rng)
	}
}
