// Package workload generates the deterministic operation streams used by
// the experiments. The paper's evaluation plan (§5) varies exactly two
// knobs — the splitting policy and "different rates of update versus
// insertion" — so the central parameter here is UpdateFraction: the
// probability that an operation updates an existing record instead of
// inserting a new one.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/record"
)

// Distribution selects which existing key an update targets.
type Distribution int

const (
	// Uniform picks uniformly among existing keys.
	Uniform Distribution = iota
	// Zipf skews updates toward early (hot) keys.
	Zipf
	// Sequential cycles round-robin over existing keys.
	Sequential
)

// String names the distribution.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Zipf:
		return "zipf"
	case Sequential:
		return "sequential"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// Config parameterizes a generator.
type Config struct {
	// Ops is the total number of operations the generator will produce.
	Ops int
	// UpdateFraction in [0,1]: the probability that an operation
	// updates an existing key (0 = pure insertion, 1 = pure update).
	UpdateFraction float64
	// DeleteFraction in [0,1): the probability that an update is a
	// tombstone instead of a new value.
	DeleteFraction float64
	// Dist selects the update-target distribution.
	Dist Distribution
	// ValueSize is the record payload size in bytes (default 32).
	ValueSize int
	// Seed makes the stream deterministic.
	Seed int64
	// InitialKeys pre-seeds this many keys so update-only workloads
	// (UpdateFraction 1) have targets (default 16).
	InitialKeys int
}

// Op is one generated operation: a Put (or Delete) of Key.
type Op struct {
	Key    record.Key
	Value  []byte
	Delete bool
	// Update reports whether the key already existed.
	Update bool
}

// Generator produces a deterministic operation stream.
type Generator struct {
	cfg     Config
	rng     *rand.Rand
	zipf    *rand.Zipf
	created int
	emitted int
	seq     int
}

// New returns a generator for cfg.
func New(cfg Config) *Generator {
	if cfg.ValueSize == 0 {
		cfg.ValueSize = 32
	}
	if cfg.InitialKeys == 0 {
		cfg.InitialKeys = 16
	}
	g := &Generator{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		created: cfg.InitialKeys,
	}
	g.zipf = rand.NewZipf(g.rng, 1.5, 1, uint64(1<<20))
	return g
}

// KeyName returns the canonical key for index i. Keys are emitted in a
// shuffled order (multiplicative hashing) so insertions spread across the
// key space instead of always appending on the right.
func KeyName(i int) record.Key {
	h := uint64(i) * 0x9e3779b97f4a7c15
	return record.Key(fmt.Sprintf("key%016x", h))
}

// InitialOps returns the operations that pre-seed the initial keys; apply
// them before the main stream.
func (g *Generator) InitialOps() []Op {
	out := make([]Op, g.cfg.InitialKeys)
	for i := range out {
		out[i] = Op{Key: KeyName(i), Value: g.value(i)}
	}
	return out
}

func (g *Generator) value(tag int) []byte {
	v := make([]byte, g.cfg.ValueSize)
	copy(v, fmt.Sprintf("v%d-", tag))
	for i := len(fmt.Sprintf("v%d-", tag)); i < len(v); i++ {
		v[i] = byte('a' + (tag+i)%26)
	}
	return v
}

// Next returns the next operation, or ok=false when the stream is done.
func (g *Generator) Next() (Op, bool) {
	if g.emitted >= g.cfg.Ops {
		return Op{}, false
	}
	g.emitted++
	if g.rng.Float64() >= g.cfg.UpdateFraction || g.created == 0 {
		// Insertion of a brand-new key.
		op := Op{Key: KeyName(g.created), Value: g.value(g.created)}
		g.created++
		return op, true
	}
	// Update of an existing key.
	var idx int
	switch g.cfg.Dist {
	case Zipf:
		idx = int(g.zipf.Uint64()) % g.created
	case Sequential:
		idx = g.seq % g.created
		g.seq++
	default:
		idx = g.rng.Intn(g.created)
	}
	op := Op{Key: KeyName(idx), Update: true}
	if g.rng.Float64() < g.cfg.DeleteFraction {
		op.Delete = true
	} else {
		op.Value = g.value(g.emitted)
	}
	return op, true
}

// All drains the generator into a slice (initial ops not included).
func (g *Generator) All() []Op {
	var out []Op
	for {
		op, ok := g.Next()
		if !ok {
			return out
		}
		out = append(out, op)
	}
}

// KeysCreated returns how many distinct keys the stream has introduced,
// including the initial keys.
func (g *Generator) KeysCreated() int { return g.created }
