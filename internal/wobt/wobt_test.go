package wobt

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/record"
	"repro/internal/storage"
)

func newTree(t *testing.T, cfg Config) (*Tree, *storage.WORMDisk) {
	t.Helper()
	worm := storage.NewWORMDisk(storage.WORMConfig{SectorSize: 256})
	tree, err := New(worm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tree, worm
}

func mustInsert(t *testing.T, tree *Tree, key string, ts uint64, val string) {
	t.Helper()
	err := tree.Insert(record.Version{
		Key:   record.StringKey(key),
		Time:  record.Timestamp(ts),
		Value: []byte(val),
	})
	if err != nil {
		t.Fatalf("insert %s@%d: %v", key, ts, err)
	}
}

func mustDelete(t *testing.T, tree *Tree, key string, ts uint64) {
	t.Helper()
	err := tree.Insert(record.Version{
		Key:       record.StringKey(key),
		Time:      record.Timestamp(ts),
		Tombstone: true,
	})
	if err != nil {
		t.Fatalf("delete %s@%d: %v", key, ts, err)
	}
}

func TestEmptyTree(t *testing.T) {
	tree, _ := newTree(t, Config{})
	if _, ok, err := tree.Get(record.StringKey("x")); err != nil || ok {
		t.Fatalf("Get on empty tree = ok=%v err=%v", ok, err)
	}
	if vs, err := tree.ScanAsOf(100, nil, record.InfiniteBound()); err != nil || len(vs) != 0 {
		t.Fatalf("ScanAsOf on empty tree = %v, %v", vs, err)
	}
	if h, err := tree.History(record.StringKey("x")); err != nil || len(h) != 0 {
		t.Fatalf("History on empty tree = %v, %v", h, err)
	}
	if len(tree.Roots()) != 1 {
		t.Fatalf("Roots = %v", tree.Roots())
	}
}

func TestInsertAndGet(t *testing.T) {
	tree, _ := newTree(t, Config{})
	mustInsert(t, tree, "50", 1, "Joe")
	mustInsert(t, tree, "60", 2, "Pete")
	v, ok, err := tree.Get(record.StringKey("50"))
	if err != nil || !ok || string(v.Value) != "Joe" {
		t.Fatalf("Get(50) = %v, %v, %v", v, ok, err)
	}
	if _, ok, _ := tree.Get(record.StringKey("55")); ok {
		t.Fatal("Get of absent key should miss")
	}
}

func TestUpdateSupersedes(t *testing.T) {
	tree, _ := newTree(t, Config{})
	mustInsert(t, tree, "70", 1, "Mary")
	mustInsert(t, tree, "70", 5, "Sue")
	v, ok, _ := tree.Get(record.StringKey("70"))
	if !ok || string(v.Value) != "Sue" || v.Time != 5 {
		t.Fatalf("Get after update = %v, %v", v, ok)
	}
	// As-of queries see the stepwise-constant behaviour of Figure 1.
	for _, c := range []struct {
		at   uint64
		want string
	}{{1, "Mary"}, {4, "Mary"}, {5, "Sue"}, {100, "Sue"}} {
		v, ok, err := tree.GetAsOf(record.StringKey("70"), record.Timestamp(c.at))
		if err != nil || !ok || string(v.Value) != c.want {
			t.Errorf("GetAsOf(70,%d) = %v,%v,%v want %s", c.at, v, ok, err, c.want)
		}
	}
	if _, ok, _ := tree.GetAsOf(record.StringKey("70"), 0); ok {
		t.Error("GetAsOf before first version should miss")
	}
}

func TestTombstone(t *testing.T) {
	tree, _ := newTree(t, Config{})
	mustInsert(t, tree, "a", 1, "v1")
	mustDelete(t, tree, "a", 5)
	if _, ok, _ := tree.Get(record.StringKey("a")); ok {
		t.Error("Get after delete should miss")
	}
	if v, ok, _ := tree.GetAsOf(record.StringKey("a"), 4); !ok || string(v.Value) != "v1" {
		t.Error("GetAsOf before delete should see the old version")
	}
	h, _ := tree.History(record.StringKey("a"))
	if len(h) != 2 || !h[1].Tombstone {
		t.Errorf("History should include tombstone: %v", h)
	}
}

func TestInsertRejectsBadTimestamps(t *testing.T) {
	tree, _ := newTree(t, Config{})
	mustInsert(t, tree, "a", 10, "x")
	if err := tree.Insert(record.Version{Key: record.StringKey("b"), Time: 5}); err == nil {
		t.Error("timestamp regression should fail")
	}
	if err := tree.Insert(record.Version{Key: record.StringKey("b"), Time: record.TimePending}); err == nil {
		t.Error("pending timestamp should fail (WOBT cannot erase)")
	}
	if err := tree.Insert(record.Version{Key: record.StringKey("b"), Time: record.TimeZero}); err == nil {
		t.Error("zero timestamp should fail")
	}
}

func TestOneRecordPerSectorIncrementalWrites(t *testing.T) {
	// §2.1: each incremental insertion burns exactly one sector, even if
	// the record is far smaller than the sector.
	worm := storage.NewWORMDisk(storage.WORMConfig{SectorSize: 1024})
	tree, err := New(worm, Config{})
	if err != nil {
		t.Fatal(err)
	}
	before := worm.Stats().SectorsBurned
	for i := 0; i < 5; i++ {
		mustInsert(t, tree, fmt.Sprintf("k%d", i), uint64(i+1), "tiny")
	}
	burned := worm.Stats().SectorsBurned - before
	if burned != 5 {
		t.Fatalf("5 incremental inserts burned %d sectors, want 5", burned)
	}
	if u := worm.Stats().Utilization(1024); u > 0.10 {
		t.Errorf("incremental utilization = %.3f, expected tiny (wasteful by design)", u)
	}
}

func TestLeafSplitByKeyAndCurrentTime(t *testing.T) {
	// Figure 3 scenario: a full leaf with one superseded version splits
	// by key value and current time; only the most recent versions are
	// copied, and the old node remains in the database.
	tree, _ := newTree(t, Config{NodeSectors: 4})
	mustInsert(t, tree, "50", 1, "Joe")
	mustInsert(t, tree, "60", 2, "Pete")
	mustInsert(t, tree, "70", 3, "Mary")
	mustInsert(t, tree, "70", 4, "Sue")
	oldRoot := tree.Root()
	mustInsert(t, tree, "90", 5, "Alice") // forces the split
	if tree.Root() == oldRoot {
		t.Fatal("root should have split")
	}
	st := tree.Stats()
	if st.KeySplits != 1 || st.TimeSplits != 0 {
		t.Fatalf("stats = %+v, want exactly one key split", st)
	}
	// All five keys readable; historical version of 70 still reachable.
	for _, c := range []struct{ k, want string }{
		{"50", "Joe"}, {"60", "Pete"}, {"70", "Sue"}, {"90", "Alice"},
	} {
		v, ok, _ := tree.Get(record.StringKey(c.k))
		if !ok || string(v.Value) != c.want {
			t.Errorf("Get(%s) = %v,%v want %s", c.k, v, ok, c.want)
		}
	}
	if v, ok, _ := tree.GetAsOf(record.StringKey("70"), 3); !ok || string(v.Value) != "Mary" {
		t.Error("as-of search should find the superseded version in the old node")
	}
	// The old node is still referenced from the new root (DAG property).
	kids, _ := tree.Children(tree.Root())
	found := false
	for _, c := range kids {
		if c == oldRoot {
			found = true
		}
	}
	if !found {
		t.Error("new root must keep a reference to the old root")
	}
}

func TestLeafPureTimeSplit(t *testing.T) {
	// Figure 4 scenario: a node dominated by updates of one key splits
	// by current time only — a single new node with the current versions.
	tree, _ := newTree(t, Config{NodeSectors: 4})
	mustInsert(t, tree, "60", 1, "Joe")
	mustInsert(t, tree, "60", 2, "Pete")
	mustInsert(t, tree, "60", 4, "Mary")
	mustInsert(t, tree, "90", 5, "Sue")
	mustInsert(t, tree, "90", 6, "Alice")
	st := tree.Stats()
	if st.TimeSplits != 1 || st.KeySplits != 0 {
		t.Fatalf("stats = %+v, want exactly one pure time split", st)
	}
	v, ok, _ := tree.Get(record.StringKey("60"))
	if !ok || string(v.Value) != "Mary" {
		t.Fatalf("Get(60) = %v,%v", v, ok)
	}
	v, ok, _ = tree.Get(record.StringKey("90"))
	if !ok || string(v.Value) != "Alice" {
		t.Fatalf("Get(90) = %v,%v", v, ok)
	}
	for at, want := range map[uint64]string{1: "Joe", 2: "Pete", 3: "Pete", 4: "Mary"} {
		v, ok, _ := tree.GetAsOf(record.StringKey("60"), record.Timestamp(at))
		if !ok || string(v.Value) != want {
			t.Errorf("GetAsOf(60,%d) = %v,%v want %s", at, v, ok, want)
		}
	}
}

func TestHistoryFollowsBackpointers(t *testing.T) {
	tree, _ := newTree(t, Config{NodeSectors: 4})
	ts := uint64(1)
	for i := 0; i < 20; i++ {
		mustInsert(t, tree, "key", ts, fmt.Sprintf("v%d", i))
		ts++
		mustInsert(t, tree, fmt.Sprintf("other%02d", i), ts, "x")
		ts++
	}
	h, err := tree.History(record.StringKey("key"))
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 20 {
		t.Fatalf("History returned %d versions, want 20", len(h))
	}
	for i, v := range h {
		if string(v.Value) != fmt.Sprintf("v%d", i) {
			t.Fatalf("history[%d] = %s", i, v)
		}
	}
}

func TestSnapshotScan(t *testing.T) {
	tree, _ := newTree(t, Config{NodeSectors: 4})
	// Build: k0..k9 inserted at t=1..10, then updated at t=11..20.
	for i := 0; i < 10; i++ {
		mustInsert(t, tree, fmt.Sprintf("k%d", i), uint64(i+1), "old")
	}
	for i := 0; i < 10; i++ {
		mustInsert(t, tree, fmt.Sprintf("k%d", i), uint64(11+i), "new")
	}
	// Snapshot at t=10: all keys present with "old".
	vs, err := tree.ScanAsOf(10, nil, record.InfiniteBound())
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 10 {
		t.Fatalf("snapshot size = %d, want 10", len(vs))
	}
	for _, v := range vs {
		if string(v.Value) != "old" {
			t.Errorf("snapshot@10 contains %s", v)
		}
	}
	// Snapshot at t=15: k0..k4 "new", k5..k9 "old".
	vs, _ = tree.ScanAsOf(15, nil, record.InfiniteBound())
	for _, v := range vs {
		want := "old"
		if v.Key.Compare(record.StringKey("k5")) < 0 {
			want = "new"
		}
		if string(v.Value) != want {
			t.Errorf("snapshot@15: %s, want %s", v, want)
		}
	}
	// Range restriction.
	vs, _ = tree.ScanAsOf(20, record.StringKey("k3"), record.KeyBound(record.StringKey("k7")))
	if len(vs) != 4 {
		t.Fatalf("range scan size = %d, want 4 (k3..k6)", len(vs))
	}
	if !vs[0].Key.Equal(record.StringKey("k3")) || !vs[3].Key.Equal(record.StringKey("k6")) {
		t.Errorf("range scan bounds wrong: %v .. %v", vs[0].Key, vs[3].Key)
	}
}

func TestRootChainGrowth(t *testing.T) {
	tree, _ := newTree(t, Config{NodeSectors: 4})
	for i := 0; i < 200; i++ {
		mustInsert(t, tree, fmt.Sprintf("key%03d", i), uint64(i+1), strings.Repeat("v", 20))
	}
	if len(tree.Roots()) < 2 {
		t.Fatal("expected the root to split at least once")
	}
	if tree.Roots()[len(tree.Roots())-1] != tree.Root() {
		t.Error("last root in chain must be the current root")
	}
	// Everything still readable.
	for i := 0; i < 200; i++ {
		k := record.StringKey(fmt.Sprintf("key%03d", i))
		if _, ok, err := tree.Get(k); !ok || err != nil {
			t.Fatalf("Get(%s) after growth: ok=%v err=%v", k, ok, err)
		}
	}
}

// model is a reference implementation: a map of full version histories.
type model map[string][]record.Version

func (m model) insert(v record.Version) {
	m[string(v.Key)] = append(m[string(v.Key)], v)
}

func (m model) getAsOf(k record.Key, T record.Timestamp) (record.Version, bool) {
	var out record.Version
	ok := false
	for _, v := range m[string(k)] {
		if v.Time <= T {
			out = v
			ok = true
		}
	}
	if ok && out.Tombstone {
		return record.Version{}, false
	}
	return out, ok
}

func (m model) scanAsOf(T record.Timestamp) map[string]record.Version {
	out := make(map[string]record.Version)
	for k := range m {
		if v, ok := m.getAsOf(record.Key(k), T); ok {
			out[k] = v
		}
	}
	return out
}

func TestModelEquivalenceRandomWorkload(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			tree, _ := newTree(t, Config{NodeSectors: 4})
			m := make(model)
			ts := uint64(0)
			const nKeys = 40
			for op := 0; op < 600; op++ {
				ts++
				k := record.StringKey(fmt.Sprintf("key%02d", rng.Intn(nKeys)))
				v := record.Version{Key: k, Time: record.Timestamp(ts)}
				if rng.Intn(10) == 0 {
					v.Tombstone = true
				} else {
					v.Value = []byte(fmt.Sprintf("val-%d", ts))
				}
				if err := tree.Insert(v); err != nil {
					t.Fatal(err)
				}
				m.insert(v)
			}
			// Current gets.
			for i := 0; i < nKeys; i++ {
				k := record.StringKey(fmt.Sprintf("key%02d", i))
				gv, gok, err := tree.Get(k)
				if err != nil {
					t.Fatal(err)
				}
				mv, mok := m.getAsOf(k, record.TimeInfinity)
				if gok != mok || (gok && string(gv.Value) != string(mv.Value)) {
					t.Fatalf("Get(%s): tree=%v,%v model=%v,%v", k, gv, gok, mv, mok)
				}
			}
			// As-of gets at random times.
			for trial := 0; trial < 200; trial++ {
				k := record.StringKey(fmt.Sprintf("key%02d", rng.Intn(nKeys)))
				T := record.Timestamp(rng.Intn(int(ts) + 2))
				gv, gok, err := tree.GetAsOf(k, T)
				if err != nil {
					t.Fatal(err)
				}
				mv, mok := m.getAsOf(k, T)
				if gok != mok || (gok && (gv.Time != mv.Time || string(gv.Value) != string(mv.Value))) {
					t.Fatalf("GetAsOf(%s,%d): tree=%v,%v model=%v,%v", k, T, gv, gok, mv, mok)
				}
			}
			// Snapshots at a few times.
			for _, T := range []record.Timestamp{1, record.Timestamp(ts / 2), record.Timestamp(ts)} {
				got, err := tree.ScanAsOf(T, nil, record.InfiniteBound())
				if err != nil {
					t.Fatal(err)
				}
				want := m.scanAsOf(T)
				if len(got) != len(want) {
					t.Fatalf("snapshot@%d size: tree=%d model=%d", T, len(got), len(want))
				}
				for _, v := range got {
					w := want[string(v.Key)]
					if w.Time != v.Time || string(w.Value) != string(v.Value) {
						t.Fatalf("snapshot@%d key %s: tree=%v model=%v", T, v.Key, v, w)
					}
				}
			}
			// Histories.
			for i := 0; i < nKeys; i++ {
				k := record.StringKey(fmt.Sprintf("key%02d", i))
				h, err := tree.History(k)
				if err != nil {
					t.Fatal(err)
				}
				want := m[string(k)]
				if len(h) != len(want) {
					t.Fatalf("History(%s) len: tree=%d model=%d", k, len(h), len(want))
				}
				for j := range h {
					if h[j].Time != want[j].Time {
						t.Fatalf("History(%s)[%d]: tree=%v model=%v", k, j, h[j], want[j])
					}
				}
			}
		})
	}
}

func TestRedundancyGrowsWithUpdates(t *testing.T) {
	// §2.3: versions that survive splits are copied; redundancy is the
	// price of clustering. Update-heavy load should copy versions.
	tree, _ := newTree(t, Config{NodeSectors: 4})
	for i := 0; i < 100; i++ {
		mustInsert(t, tree, fmt.Sprintf("k%d", i%5), uint64(i+1), "payload")
	}
	if tree.Stats().LeafCopies == 0 {
		t.Error("update-heavy workload should produce consolidated copies")
	}
	if tree.Stats().TimeSplits == 0 {
		t.Error("update-heavy workload should time split")
	}
}

func TestDumpRendersNodes(t *testing.T) {
	tree, _ := newTree(t, Config{NodeSectors: 4})
	mustInsert(t, tree, "50", 1, "Joe")
	s, err := tree.Dump()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "50 Joe T=1") {
		t.Errorf("Dump output missing record: %q", s)
	}
	items, err := tree.NodeItems(tree.Root())
	if err != nil || len(items) != 1 || items[0] != "50 Joe T=1" {
		t.Errorf("NodeItems = %v, %v", items, err)
	}
}

func TestNodeSectorsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NodeSectors < 4 should panic")
		}
	}()
	worm := storage.NewWORMDisk(storage.WORMConfig{SectorSize: 256})
	New(worm, Config{NodeSectors: 2})
}
