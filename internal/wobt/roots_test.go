package wobt

import (
	"fmt"
	"testing"

	"repro/internal/record"
)

// TestAsOfAcrossRootGenerations checks §2.5's claim that the search path
// "may take us through successively older roots, but this is handled by
// the search algorithm without making special cases": queries at old
// timestamps resolve even after several root splits.
func TestAsOfAcrossRootGenerations(t *testing.T) {
	tree, _ := newTree(t, Config{NodeSectors: 4})
	ts := uint64(0)
	// Phase 1: a first generation of keys.
	for i := 0; i < 30; i++ {
		ts++
		mustInsert(t, tree, fmt.Sprintf("g1-%02d", i), ts, fmt.Sprintf("first%d", i))
	}
	gen1End := ts
	// Phase 2: update everything repeatedly, forcing more root splits.
	for round := 0; round < 5; round++ {
		for i := 0; i < 30; i++ {
			ts++
			mustInsert(t, tree, fmt.Sprintf("g1-%02d", i), ts, fmt.Sprintf("r%d-%d", round, i))
		}
	}
	if len(tree.Roots()) < 3 {
		t.Fatalf("want several root generations, got %d", len(tree.Roots()))
	}
	// Queries at the first generation's times go through old roots.
	for i := 0; i < 30; i++ {
		k := record.StringKey(fmt.Sprintf("g1-%02d", i))
		v, ok, err := tree.GetAsOf(k, record.Timestamp(gen1End))
		if err != nil || !ok {
			t.Fatalf("GetAsOf(%s, gen1) = %v, %v", k, ok, err)
		}
		if string(v.Value) != fmt.Sprintf("first%d", i) {
			t.Fatalf("GetAsOf(%s) = %s, want first%d", k, v.Value, i)
		}
	}
	// And current queries see the last round.
	for i := 0; i < 30; i++ {
		k := record.StringKey(fmt.Sprintf("g1-%02d", i))
		v, ok, _ := tree.Get(k)
		if !ok || string(v.Value) != fmt.Sprintf("r4-%d", i) {
			t.Fatalf("Get(%s) = %v %v", k, v, ok)
		}
	}
	// Snapshot at gen-1 end equals the first generation exactly.
	vs, err := tree.ScanAsOf(record.Timestamp(gen1End), nil, record.InfiniteBound())
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 30 {
		t.Fatalf("gen1 snapshot size = %d", len(vs))
	}
}

// TestTimeSplitMaxFraction verifies the split-policy knob: a higher
// threshold yields more pure time splits.
func TestTimeSplitMaxFraction(t *testing.T) {
	run := func(frac float64) Stats {
		tree, _ := newTree(t, Config{NodeSectors: 4, TimeSplitMaxFraction: frac})
		ts := uint64(0)
		for i := 0; i < 300; i++ {
			ts++
			mustInsert(t, tree, fmt.Sprintf("k%02d", i%25), ts, "v")
		}
		return tree.Stats()
	}
	low := run(0.25)
	high := run(0.9)
	if high.TimeSplits <= low.TimeSplits {
		t.Errorf("higher threshold should time split more: %d (0.9) vs %d (0.25)",
			high.TimeSplits, low.TimeSplits)
	}
	if high.KeySplits >= low.KeySplits {
		t.Errorf("higher threshold should key split less: %d (0.9) vs %d (0.25)",
			high.KeySplits, low.KeySplits)
	}
}

// TestWOBTChurnKeepsAllHistory is a long-running WOBT soak: nothing is
// ever lost, the defining property of a non-deletion store.
func TestWOBTChurnKeepsAllHistory(t *testing.T) {
	tree, worm := newTree(t, Config{NodeSectors: 8})
	ts := uint64(0)
	versionsOf := make(map[string]int)
	for i := 0; i < 2000; i++ {
		ts++
		k := fmt.Sprintf("k%02d", i%40)
		mustInsert(t, tree, k, ts, fmt.Sprintf("v%d", ts))
		versionsOf[k]++
	}
	for k, want := range versionsOf {
		h, err := tree.History(record.StringKey(k))
		if err != nil {
			t.Fatal(err)
		}
		if len(h) != want {
			t.Fatalf("History(%s) = %d versions, want %d", k, len(h), want)
		}
	}
	if worm.Stats().SectorsBurned == 0 {
		t.Fatal("soak burned nothing?")
	}
}
