package wobt

import (
	"fmt"
	"sort"

	"repro/internal/record"
	"repro/internal/storage"
)

// Config parameterizes a Write-Once B-tree.
type Config struct {
	// NodeSectors is the fixed extent size of every node, in sectors.
	// Must be at least 4 so consolidated split output (at most half a
	// node) always leaves room for subsequent incremental insertions.
	NodeSectors int
	// TimeSplitMaxFraction chooses between the two split forms of §2.3:
	// if the consolidated current versions of an overflowing node fit in
	// at most this fraction of a node, the split is by current time only
	// (one new node); otherwise it is by key value and current time (two
	// new nodes). Defaults to 0.5.
	TimeSplitMaxFraction float64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.NodeSectors == 0 {
		out.NodeSectors = 8
	}
	if out.NodeSectors < 4 {
		panic("wobt: NodeSectors must be >= 4")
	}
	if out.TimeSplitMaxFraction == 0 {
		out.TimeSplitMaxFraction = 0.5
	}
	return out
}

// Stats counts the structural events of a WOBT's life. ItemsCopied is the
// redundancy measure: every consolidated item is a copy of data that
// already exists elsewhere on the write-once device ("records are repeated
// or copied several times. A version which lasts a long time has many
// copies in the database", §2.3).
type Stats struct {
	Inserts      uint64
	TimeSplits   uint64
	KeySplits    uint64
	RootSplits   uint64
	LeafCopies   uint64 // leaf versions rewritten by consolidation
	IndexCopies  uint64 // index entries rewritten by consolidation
	NodesCreated uint64
}

// Tree is a Write-Once B-tree over a simulated WORM device. It provides
// single-version B+-tree functionality on write-once storage plus the
// rollback-database queries of §2.5: current lookup, as-of lookup, snapshot
// scan, and full version history. It is not safe for concurrent use.
type Tree struct {
	worm        *storage.WORMDisk
	nodeSectors int
	timeFrac    float64

	root  storage.Addr
	roots []storage.Addr // list of successive root addresses (§2.4)
	now   record.Timestamp

	stats Stats
}

// New creates an empty WOBT on worm.
func New(worm *storage.WORMDisk, cfg Config) (*Tree, error) {
	c := cfg.withDefaults()
	t := &Tree{worm: worm, nodeSectors: c.NodeSectors, timeFrac: c.TimeSplitMaxFraction}
	first, err := worm.AllocExtent(t.nodeSectors)
	if err != nil {
		return nil, err
	}
	t.root = storage.Addr{Kind: storage.KindWORM, Off: first, Len: uint32(t.nodeSectors)}
	t.roots = []storage.Addr{t.root}
	t.stats.NodesCreated++
	return t, nil
}

// Root returns the address of the current root node.
func (t *Tree) Root() storage.Addr { return t.root }

// Roots returns the successive root addresses, oldest first (§2.4: "a list
// of successive addresses for the root nodes must also be kept").
func (t *Tree) Roots() []storage.Addr {
	out := make([]storage.Addr, len(t.roots))
	copy(out, t.roots)
	return out
}

// Now returns the largest timestamp the tree has seen.
func (t *Tree) Now() record.Timestamp { return t.now }

// Stats returns a snapshot of the structural counters.
func (t *Tree) Stats() Stats { return t.stats }

// Insert adds a version to the tree. The version's timestamp must be a
// commit time no earlier than any previously inserted timestamp (rollback
// databases append in commit order). An update is an insertion of a new
// version under the same key; a delete is an insertion of a tombstone.
func (t *Tree) Insert(v record.Version) error {
	if !v.Time.IsCommitted() {
		return fmt.Errorf("wobt: insert with non-committed timestamp %s", v.Time)
	}
	if v.Time < t.now {
		return fmt.Errorf("wobt: timestamp %s before current time %s", v.Time, t.now)
	}
	t.now = v.Time

	root, err := t.readNode(t.root)
	if err != nil {
		return err
	}
	// Ensure the root can absorb postings from a child split (2 sectors)
	// or, if it is a leaf, the incoming record (1 sector).
	need := 2
	if root.isLeaf() {
		need = 1
	}
	if root.freeSectors() < need {
		if err := t.splitRoot(root); err != nil {
			return err
		}
		if root, err = t.readNode(t.root); err != nil {
			return err
		}
	}

	n := root
	for !n.isLeaf() {
		idx := routeCurrent(n, v.Key)
		child, err := t.readNode(n.items[idx].child)
		if err != nil {
			return err
		}
		need := 2
		if child.isLeaf() {
			need = 1
		}
		if child.freeSectors() < need {
			// Split the child before descending; n is guaranteed
			// to have room for the resulting postings.
			if err := t.splitChild(child, n.items[idx].key, n); err != nil {
				return err
			}
			idx = routeCurrent(n, v.Key)
			if child, err = t.readNode(n.items[idx].child); err != nil {
				return err
			}
		}
		n = child
	}
	if err := t.appendItem(n, item{version: v}); err != nil {
		return err
	}
	t.stats.Inserts++
	return nil
}

// routeCurrent picks the index item to follow for a current search of key
// k: the last-listed item among those with the largest key not exceeding k
// (§2.2). It returns the item's position in insertion order.
func routeCurrent(n *node, k record.Key) int {
	best := -1
	for i, it := range n.items {
		if it.key.Compare(k) > 0 {
			continue
		}
		if best == -1 || cmpRouting(it.key, n.items[best].key) >= 0 {
			// >= : equal keys prefer the later-listed item.
			best = i
		}
	}
	return best
}

// routeAsOf is routeCurrent restricted to entries with timestamps at most
// T (§2.5: "Ignore all entries with timestamp greater than T, then follow
// the algorithm for latest version of a record").
func routeAsOf(n *node, k record.Key, T record.Timestamp) int {
	best := -1
	for i, it := range n.items {
		if it.time > T {
			continue
		}
		if it.key.Compare(k) > 0 {
			continue
		}
		if best == -1 || cmpRouting(it.key, n.items[best].key) >= 0 {
			best = i
		}
	}
	return best
}

func cmpRouting(a, b record.Key) int { return a.Compare(b) }

// liveLeafItems returns, for each key in the leaf, its most recent version,
// sorted by key. Keys whose latest version is a tombstone are omitted: they
// contribute nothing to the current database, and as-of searches for older
// times are routed to the old node, which retains the tombstone.
func liveLeafItems(n *node) []item {
	last := make(map[string]item)
	for _, it := range n.items {
		last[string(it.version.Key)] = it
	}
	out := make([]item, 0, len(last))
	for _, it := range last {
		if !it.version.Tombstone {
			out = append(out, it)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].version.Key.Less(out[j].version.Key)
	})
	return out
}

// liveIndexItems returns, for each separator key in the index node, its
// last-listed entry, sorted by key.
func liveIndexItems(n *node) []item {
	last := make(map[string]item)
	for _, it := range n.items {
		last[string(it.key)] = it
	}
	out := make([]item, 0, len(last))
	for _, it := range last {
		out = append(out, it)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].key.Less(out[j].key)
	})
	return out
}

func (t *Tree) liveItems(n *node) []item {
	if n.isLeaf() {
		return liveLeafItems(n)
	}
	return liveIndexItems(n)
}

// sectorsNeeded simulates consolidated packing of items and returns how
// many sectors they occupy.
func (t *Tree) sectorsNeeded(kind byte, items []item) int {
	if len(items) == 0 {
		return 1 // header sector
	}
	sectorCap := t.worm.SectorSize() - sectorHeaderSize
	sectors, size := 1, 0
	for _, it := range items {
		s := itemSize(kind, it)
		if size+s > sectorCap && size > 0 {
			sectors++
			size = 0
		}
		size += s
	}
	return sectors
}

// chunk partitions the live items of an overflowing node for its split
// (§2.3). One chunk means a split by current time only; two or more mean a
// split by key value and current time, with each chunk becoming one new
// node.
//
// The choice follows the paper: "If there have been many updates, the
// number of current versions may be so small that we may choose to split
// only by current time." We time split when the fraction of live items in
// the node is at most TimeSplitMaxFraction (Figure 3 key-splits a node
// with 3 of 4 versions current; Figure 4 time-splits a node with 2 of 4).
// A single live key always time splits (key splitting is useless); a node
// of all-distinct keys always key splits. Independently of the policy,
// every chunk must leave the new node at least two free sectors so it can
// absorb postings and insertions.
func (t *Tree) chunk(kind byte, live []item, totalItems int) [][]item {
	maxSectors := t.nodeSectors - 2
	if len(live) < 2 {
		return [][]item{live}
	}
	frac := float64(len(live)) / float64(totalItems)
	if frac <= t.timeFrac && t.sectorsNeeded(kind, live) <= maxSectors {
		return [][]item{live}
	}
	// Key split: cut at the median item, then enforce the byte bound on
	// each half (splitting further only for unusually large records).
	halves := [][]item{live[:len(live)/2], live[len(live)/2:]}
	var chunks [][]item
	for _, h := range halves {
		chunks = append(chunks, t.byteBoundedChunks(kind, h, maxSectors)...)
	}
	return chunks
}

// byteBoundedChunks greedily cuts items so each chunk consolidates into at
// most maxSectors sectors.
func (t *Tree) byteBoundedChunks(kind byte, items []item, maxSectors int) [][]item {
	if t.sectorsNeeded(kind, items) <= maxSectors {
		return [][]item{items}
	}
	sectorCap := t.worm.SectorSize() - sectorHeaderSize
	var chunks [][]item
	var cur []item
	sectors, size := 1, 0
	for _, it := range items {
		s := itemSize(kind, it)
		if size+s > sectorCap && size > 0 {
			sectors++
			size = 0
		}
		if sectors > maxSectors && len(cur) > 0 {
			chunks = append(chunks, cur)
			cur = nil
			sectors, size = 1, 0
		}
		cur = append(cur, it)
		size += s
	}
	if len(cur) > 0 {
		chunks = append(chunks, cur)
	}
	return chunks
}

// splitPostings writes the new node(s) for a split of n and returns the
// index items to post to the parent. entryKey is the separator key under
// which n is currently reached. Only the most recent versions are copied;
// the old node remains in the database untouched (§2.3).
func (t *Tree) splitPostings(n *node, entryKey record.Key) ([]item, error) {
	live := t.liveItems(n)
	chunks := t.chunk(n.kind, live, len(n.items))
	if len(chunks) == 1 {
		t.stats.TimeSplits++
	} else {
		t.stats.KeySplits++
	}
	postings := make([]item, 0, len(chunks))
	for i, chunk := range chunks {
		nn, err := t.writeConsolidated(n.kind, n.addr, chunk)
		if err != nil {
			return nil, err
		}
		t.stats.NodesCreated++
		if n.isLeaf() {
			t.stats.LeafCopies += uint64(len(chunk))
		} else {
			t.stats.IndexCopies += uint64(len(chunk))
		}
		key := entryKey
		if i > 0 {
			if n.isLeaf() {
				key = chunk[0].version.Key
			} else {
				key = chunk[0].key
			}
		}
		postings = append(postings, item{key: key, time: t.now, child: nn.addr})
	}
	return postings, nil
}

// splitChild splits a full non-root node in place, posting the new index
// items into its parent (which is guaranteed to have room).
func (t *Tree) splitChild(n *node, entryKey record.Key, parent *node) error {
	postings, err := t.splitPostings(n, entryKey)
	if err != nil {
		return err
	}
	for _, p := range postings {
		if err := t.appendItem(parent, p); err != nil {
			return err
		}
	}
	return nil
}

// splitRoot splits the root node. The new root's first entry has the
// lowest key value and the lowest time value and points to the old root;
// the remaining entries point to the consolidated new nodes (§2.4).
func (t *Tree) splitRoot(n *node) error {
	postings, err := t.splitPostings(n, nil)
	if err != nil {
		return err
	}
	entries := make([]item, 0, len(postings)+1)
	entries = append(entries, item{key: nil, time: record.TimeZero, child: n.addr})
	entries = append(entries, postings...)
	newRoot, err := t.writeConsolidated(kindIndex, storage.NilAddr, entries)
	if err != nil {
		return err
	}
	t.stats.NodesCreated++
	t.stats.IndexCopies += uint64(len(entries))
	t.stats.RootSplits++
	t.root = newRoot.addr
	t.roots = append(t.roots, newRoot.addr)
	return nil
}
