package wobt

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/record"
	"repro/internal/storage"
)

// Get returns the most recent version of key k (§2.2). The boolean is
// false if the key was never inserted or its latest version is a tombstone.
func (t *Tree) Get(k record.Key) (record.Version, bool, error) {
	return t.GetAsOf(k, record.TimeInfinity)
}

// GetAsOf returns the version of key k valid at time T (§2.5): the last
// version of k with timestamp at most T, found along a single root-to-leaf
// path that ignores all entries with timestamps greater than T.
func (t *Tree) GetAsOf(k record.Key, T record.Timestamp) (record.Version, bool, error) {
	n, err := t.readNode(t.root)
	if err != nil {
		return record.Version{}, false, err
	}
	for !n.isLeaf() {
		idx := routeAsOf(n, k, T)
		if idx < 0 {
			return record.Version{}, false, nil
		}
		if n, err = t.readNode(n.items[idx].child); err != nil {
			return record.Version{}, false, err
		}
	}
	var found record.Version
	ok := false
	for _, it := range n.items {
		if it.version.Key.Equal(k) && it.version.Time <= T {
			found = it.version // insertion order: later wins
			ok = true
		}
	}
	if !ok || found.Tombstone {
		return record.Version{}, false, nil
	}
	return found, true, nil
}

// ScanAsOf returns the snapshot of the database as of time T, restricted
// to keys in [low, high), sorted by key (§2.5: "obtain the last entries in
// each index node for each key before or at T, and finally, the last
// copies of each record before or at T").
func (t *Tree) ScanAsOf(T record.Timestamp, low record.Key, high record.Bound) ([]record.Version, error) {
	best := make(map[string]record.Version)
	visited := make(map[storage.Addr]bool)
	var visit func(addr storage.Addr) error
	visit = func(addr storage.Addr) error {
		if visited[addr] {
			return nil
		}
		visited[addr] = true
		n, err := t.readNode(addr)
		if err != nil {
			return err
		}
		if n.isLeaf() {
			for _, it := range n.items {
				v := it.version
				if v.Time > T {
					continue
				}
				if v.Key.Compare(low) < 0 || high.CompareKey(v.Key) <= 0 {
					continue
				}
				if prev, ok := best[string(v.Key)]; !ok || v.Time >= prev.Time {
					best[string(v.Key)] = v
				}
			}
			return nil
		}
		// Last entry per separator key with timestamp <= T.
		last := make(map[string]item)
		for _, it := range n.items {
			if it.time <= T {
				last[string(it.key)] = it
			}
		}
		for _, it := range last {
			if err := visit(it.child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := visit(t.root); err != nil {
		return nil, err
	}
	out := make([]record.Version, 0, len(best))
	for _, v := range best {
		if !v.Tombstone {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Less(out[j].Key) })
	return out, nil
}

// History returns every version of key k, oldest first, by following the
// backward pointers from the current leaf through the nodes it was split
// from (§2.5). Tombstone versions are included: the caller sees the full
// non-deleted history of the record.
func (t *Tree) History(k record.Key) ([]record.Version, error) {
	n, err := t.readNode(t.root)
	if err != nil {
		return nil, err
	}
	for !n.isLeaf() {
		idx := routeCurrent(n, k)
		if idx < 0 {
			return nil, nil
		}
		if n, err = t.readNode(n.items[idx].child); err != nil {
			return nil, err
		}
	}
	seen := make(map[record.Timestamp]bool)
	var out []record.Version
	for {
		for _, it := range n.items {
			v := it.version
			if v.Key.Equal(k) && !seen[v.Time] {
				seen[v.Time] = true
				out = append(out, v)
			}
		}
		if n.back.IsNil() {
			break
		}
		if n, err = t.readNode(n.back); err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out, nil
}

// Dump renders the whole tree, one node per line with indentation, for the
// figure reproductions and debugging. Shared (historical) nodes reached by
// more than one parent are printed each time they are reached; the WOBT is
// a DAG (§2.3).
func (t *Tree) Dump() (string, error) {
	var b strings.Builder
	var walk func(addr storage.Addr, depth int) error
	walk = func(addr storage.Addr, depth int) error {
		n, err := t.readNode(addr)
		if err != nil {
			return err
		}
		fmt.Fprintf(&b, "%s%s %s\n", strings.Repeat("  ", depth), addr, n.dump())
		if n.isLeaf() {
			return nil
		}
		for _, it := range n.items {
			if err := walk(it.child, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0); err != nil {
		return "", err
	}
	return b.String(), nil
}

// DumpNode renders a single node's items in insertion order.
func (t *Tree) DumpNode(addr storage.Addr) (string, error) {
	n, err := t.readNode(addr)
	if err != nil {
		return "", err
	}
	return n.dump(), nil
}

// NodeItems returns printable item strings of the node at addr, in
// insertion order — used by golden tests for the paper's figures.
func (t *Tree) NodeItems(addr storage.Addr) ([]string, error) {
	n, err := t.readNode(addr)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(n.items))
	for i, it := range n.items {
		if n.isLeaf() {
			out[i] = it.version.String()
		} else {
			out[i] = fmt.Sprintf("%s T=%s -> %s", it.key, it.time, it.child)
		}
	}
	return out, nil
}

// Children returns the child addresses of the index node at addr, in
// insertion order (duplicates preserved).
func (t *Tree) Children(addr storage.Addr) ([]storage.Addr, error) {
	n, err := t.readNode(addr)
	if err != nil {
		return nil, err
	}
	if n.isLeaf() {
		return nil, nil
	}
	out := make([]storage.Addr, len(n.items))
	for i, it := range n.items {
		out[i] = it.child
	}
	return out, nil
}
