// Package wobt implements Malcolm Easton's Write-Once B-tree as described
// in §2 of Lomet & Salzberg (SIGMOD 1989): the baseline the Time-Split
// B-tree improves on. The entire structure — data, index, and roots — lives
// on a write-once device.
//
// A node is a fixed extent of consecutive WORM sectors. Node contents are
// in insertion order: each incremental insertion burns one whole sector
// holding a single item (the sector is the smallest writable unit), while
// node splits write consolidated sectors packed with the copied items
// (§2.1). The same key may appear several times in a node; the last
// occurrence is the most recent (§2.2). Splits are by key value *and
// current time*, or by current time alone, and the old node always remains
// in place — the WOBT is a DAG, not a tree (§2.3).
package wobt

import (
	"fmt"
	"strings"

	"repro/internal/record"
	"repro/internal/storage"
)

// item is one slot of a WOBT node: either a version record (leaf) or an
// index entry (key, timestamp, child pointer). Exactly one of version/child
// is meaningful, selected by the node kind.
type item struct {
	version record.Version // leaf item
	key     record.Key     // index item: separator key (nil = minus infinity)
	time    record.Timestamp
	child   storage.Addr
}

const (
	kindLeaf  = 0
	kindIndex = 1
)

// node is the in-memory view of a WOBT node, assembled by reading the
// burned sectors of its extent in order.
type node struct {
	addr        storage.Addr // Off = first sector, Len = sector count
	kind        byte
	back        storage.Addr // node this one was split from (§2.5 backpointers)
	items       []item       // insertion order
	sectorsUsed int          // burned sectors in the extent
}

func (n *node) isLeaf() bool { return n.kind == kindLeaf }

// freeSectors returns how many unburned sectors remain in the extent.
func (n *node) freeSectors() int { return int(n.addr.Len) - n.sectorsUsed }

// encodeSector serializes a batch of items into one sector payload.
// The first sector of a node additionally carries the node kind and the
// backpointer; subsequent sectors carry only their items (their kind byte
// is repeated for self-description).
func encodeSector(kind byte, first bool, back storage.Addr, items []item) []byte {
	e := record.NewEncoder(nil)
	e.Byte(kind)
	e.Bool(first)
	if first {
		e.Byte(byte(back.Kind))
		e.Uvarint(back.Off)
		e.Uvarint(uint64(back.Len))
	}
	e.Uvarint(uint64(len(items)))
	for _, it := range items {
		if kind == kindLeaf {
			e.Version(it.version)
		} else {
			e.Key(it.key)
			e.Time(it.time)
			e.Byte(byte(it.child.Kind))
			e.Uvarint(it.child.Off)
			e.Uvarint(uint64(it.child.Len))
		}
	}
	return e.Bytes()
}

// decodeSector parses one sector payload, returning its items and, for a
// first sector, the node kind and backpointer.
func decodeSector(data []byte) (kind byte, first bool, back storage.Addr, items []item, err error) {
	d := record.NewDecoder(data)
	kind = d.Byte()
	first = d.Bool()
	if first {
		back.Kind = storage.DeviceKind(d.Byte())
		back.Off = d.Uvarint()
		back.Len = uint32(d.Uvarint())
	}
	n := d.Uvarint()
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		var it item
		if kind == kindLeaf {
			it.version = d.Version()
		} else {
			it.key = d.Key()
			it.time = d.Time()
			it.child.Kind = storage.DeviceKind(d.Byte())
			it.child.Off = d.Uvarint()
			it.child.Len = uint32(d.Uvarint())
		}
		items = append(items, it)
	}
	if d.Err() != nil {
		return 0, false, storage.NilAddr, nil, d.Err()
	}
	return kind, first, back, items, nil
}

// itemSize returns the encoded size of a single item (excluding the sector
// header), used when packing consolidated sectors.
func itemSize(kind byte, it item) int {
	e := record.NewEncoder(nil)
	if kind == kindLeaf {
		e.Version(it.version)
	} else {
		e.Key(it.key)
		e.Time(it.time)
		e.Byte(byte(it.child.Kind))
		e.Uvarint(it.child.Off)
		e.Uvarint(uint64(it.child.Len))
	}
	return e.Len()
}

// sectorHeaderSize is a conservative bound on the per-sector header
// (kind + first flag + backpointer + count).
const sectorHeaderSize = 1 + 1 + 1 + 10 + 5 + 5

// readNode assembles the in-memory view of the node at addr.
func (t *Tree) readNode(addr storage.Addr) (*node, error) {
	n := &node{addr: addr}
	for i := uint64(0); i < uint64(addr.Len); i++ {
		s := addr.Off + i
		if !t.worm.IsBurned(s) {
			break
		}
		data, err := t.worm.ReadSector(s)
		if err != nil {
			return nil, err
		}
		kind, first, back, items, err := decodeSector(data)
		if err != nil {
			return nil, fmt.Errorf("wobt: node %s sector %d: %w", addr, s, err)
		}
		if i == 0 {
			if !first {
				return nil, fmt.Errorf("wobt: node %s: missing first-sector header", addr)
			}
			n.kind = kind
			n.back = back
		}
		n.items = append(n.items, items...)
		n.sectorsUsed++
	}
	if n.sectorsUsed == 0 {
		// A freshly allocated, never-written node (only the initial
		// root can be in this state): an empty leaf.
		n.kind = kindLeaf
	}
	return n, nil
}

// appendItem burns one incremental item into the node's next free sector.
// This is the paper's "exactly one newly inserted record in a sector"
// behaviour (§2.1): incremental writes cannot share sectors.
func (t *Tree) appendItem(n *node, it item) error {
	if n.freeSectors() < 1 {
		return fmt.Errorf("wobt: node %s full", n.addr)
	}
	first := n.sectorsUsed == 0
	data := encodeSector(n.kind, first, n.back, []item{it})
	if len(data) > t.worm.SectorSize() {
		return fmt.Errorf("wobt: item of %d bytes exceeds sector size %d",
			len(data), t.worm.SectorSize())
	}
	s := n.addr.Off + uint64(n.sectorsUsed)
	if err := t.worm.WriteSector(s, data); err != nil {
		return err
	}
	n.items = append(n.items, it)
	n.sectorsUsed++
	return nil
}

// writeConsolidated allocates a fresh extent and burns items into it packed
// as tightly as the sector size permits (§2.1: "when nodes are split,
// several records will be copied into the new nodes at the same time, so
// the copied-over records can be consolidated"). It returns the new node.
func (t *Tree) writeConsolidated(kind byte, back storage.Addr, items []item) (*node, error) {
	first, err := t.worm.AllocExtent(t.nodeSectors)
	if err != nil {
		return nil, err
	}
	addr := storage.Addr{Kind: storage.KindWORM, Off: first, Len: uint32(t.nodeSectors)}
	n := &node{addr: addr, kind: kind, back: back}
	sectorCap := t.worm.SectorSize() - sectorHeaderSize

	i := 0
	for i < len(items) {
		batch := []item{items[i]}
		size := itemSize(kind, items[i])
		i++
		for i < len(items) {
			s := itemSize(kind, items[i])
			if size+s > sectorCap {
				break
			}
			batch = append(batch, items[i])
			size += s
			i++
		}
		if n.freeSectors() < 1 {
			return nil, fmt.Errorf("wobt: consolidated items overflow node of %d sectors", t.nodeSectors)
		}
		data := encodeSector(kind, n.sectorsUsed == 0, back, batch)
		if err := t.worm.WriteSector(addr.Off+uint64(n.sectorsUsed), data); err != nil {
			return nil, err
		}
		n.items = append(n.items, batch...)
		n.sectorsUsed++
	}
	if n.sectorsUsed == 0 {
		// An empty consolidated node still needs its header sector so
		// readers learn its kind and backpointer.
		data := encodeSector(kind, true, back, nil)
		if err := t.worm.WriteSector(addr.Off, data); err != nil {
			return nil, err
		}
		n.sectorsUsed = 1
	}
	return n, nil
}

// dump renders the node for figures and debugging: items in insertion
// order, separated by " | " as in the paper's drawings.
func (n *node) dump() string {
	var b strings.Builder
	if n.isLeaf() {
		b.WriteString("leaf[")
	} else {
		b.WriteString("index[")
	}
	for i, it := range n.items {
		if i > 0 {
			b.WriteString(" | ")
		}
		if n.isLeaf() {
			b.WriteString(it.version.String())
		} else {
			fmt.Fprintf(&b, "%s T=%s -> %s", it.key, it.time, it.child)
		}
	}
	b.WriteString("]")
	return b.String()
}
