package db

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/record"
	"repro/internal/txn"
)

// pagedConfig is the base configuration of the paged-mode tests: small
// nodes so splits and WORM migrations actually happen.
func pagedConfig(dir string) Config {
	return Config{
		Dir: dir, PagedDevices: true, Shards: 2, CheckpointBytes: -1,
		LeafCapacity: 512, IndexCapacity: 1024, SectorSize: 256,
	}
}

func mustPut(t *testing.T, d *DB, k, v string) {
	t.Helper()
	if err := d.Update(func(tx *txn.Txn) error {
		return tx.Put(record.StringKey(k), []byte(v))
	}); err != nil {
		t.Fatal(err)
	}
}

// TestPagedOpenReopen is the basic paged-mode round trip: write,
// checkpoint, write more (so the WAL tail matters), close, reopen, and
// demand every version — current, historical, scanned — plus the device
// accounting to survive.
func TestPagedOpenReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(pagedConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		mustPut(t, d, fmt.Sprintf("key%03d", i%50), fmt.Sprintf("val%04d", i))
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 200; i < 260; i++ {
		mustPut(t, d, fmt.Sprintf("key%03d", i%50), fmt.Sprintf("val%04d", i))
	}
	wantAll, err := d.ScanRange(nil, record.InfiniteBound(), 1, record.TimeInfinity)
	if err != nil {
		t.Fatal(err)
	}
	wantNow := d.Now()
	wantDev := d.Stats().Device
	if !wantDev.Paged {
		t.Fatal("Device.Paged = false on a paged database")
	}
	if wantDev.SpaceM == 0 || wantDev.SpaceO == 0 {
		t.Fatalf("device accounting empty: %+v", wantDev)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(pagedConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Now() != wantNow {
		t.Fatalf("reopened clock %v, want %v", re.Now(), wantNow)
	}
	gotAll, err := re.ScanRange(nil, record.InfiniteBound(), 1, record.TimeInfinity)
	if err != nil {
		t.Fatal(err)
	}
	assertSameVersions(t, "paged reopen full scan", gotAll, wantAll)
	if err := re.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Accounting is cumulative across the reopen.
	reDev := re.Stats().Device
	if reDev.SpaceO < wantDev.SpaceO {
		t.Fatalf("SpaceO shrank across reopen: %d -> %d", wantDev.SpaceO, reDev.SpaceO)
	}
	// And the reopened database keeps working.
	mustPut(t, re, "post", "reopen")
	if v, ok, err := re.Get(record.StringKey("post")); err != nil || !ok || string(v.Value) != "reopen" {
		t.Fatalf("write after reopen: %v %v %q", ok, err, v.Value)
	}
}

// TestPagedCheckpointIncremental is the acceptance criterion: after a
// large database is checkpointed, a checkpoint following a small number
// of updates flushes O(dirty) pages, not O(database).
func TestPagedCheckpointIncremental(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(pagedConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 2000; i++ {
		mustPut(t, d, fmt.Sprintf("key%05d", i), strings.Repeat("x", 40))
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	base := d.Stats().Buffer.FlushedPages
	totalPages := d.Stats().Magnetic.PagesInUse

	// Touch three keys, checkpoint again.
	for i := 0; i < 3; i++ {
		mustPut(t, d, fmt.Sprintf("key%05d", i*700), "dirty")
	}
	if dirty := d.Stats().Device.DirtyPages; dirty == 0 {
		t.Fatal("no dirty pages after updates")
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	flushed := int(d.Stats().Buffer.FlushedPages - base)
	if flushed == 0 {
		t.Fatal("incremental checkpoint flushed nothing")
	}
	if flushed*10 > totalPages {
		t.Fatalf("incremental checkpoint flushed %d of %d pages: not O(dirty)", flushed, totalPages)
	}
	if dirty := d.Stats().Device.DirtyPages; dirty != 0 {
		t.Fatalf("%d dirty pages survived the checkpoint", dirty)
	}
}

// TestPagedModeMismatch: a directory is paged or logical at creation,
// forever.
func TestPagedModeMismatch(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(pagedConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, d, "a", "1")
	d.Close()
	cfg := pagedConfig(dir)
	cfg.PagedDevices = false
	if _, err := Open(cfg); err == nil || !strings.Contains(err.Error(), "paged") {
		t.Fatalf("logical open of a paged directory: err = %v", err)
	}

	dir2 := t.TempDir()
	cfg2 := pagedConfig(dir2)
	cfg2.PagedDevices = false
	d2, err := Open(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, d2, "a", "1")
	d2.Close()
	if _, err := Open(pagedConfig(dir2)); err == nil || !strings.Contains(err.Error(), "logical") {
		t.Fatalf("paged open of a logical directory: err = %v", err)
	}
}

// TestPagedSaveToRefused: SaveTo images simulated devices only.
func TestPagedSaveToRefused(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(pagedConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.SaveTo(os.NewFile(0, "discard")); err == nil || !strings.Contains(err.Error(), "paged") {
		t.Fatalf("SaveTo on paged database: err = %v", err)
	}
}

// TestPagedConfigValidation: PagedDevices needs Dir and the pool.
func TestPagedConfigValidation(t *testing.T) {
	if _, err := Open(Config{PagedDevices: true}); err == nil {
		t.Fatal("PagedDevices without Dir accepted")
	}
	if _, err := Open(Config{PagedDevices: true, Dir: t.TempDir(), BufferPages: NoCachePages}); err == nil {
		t.Fatal("PagedDevices with NoCachePages accepted")
	}
}

// TestPagedSecondariesReopen: secondary indexes rebuilt from tree
// images answer the same lookups after a reopen, and reopening demands
// the extractor set exactly as the logical mode does.
func TestPagedSecondariesReopen(t *testing.T) {
	dir := t.TempDir()
	secs := map[string]SecondaryExtract{"dept": deptExtract}
	cfg := pagedConfig(dir)
	cfg.Secondaries = secs
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		mustPut(t, d, fmt.Sprintf("emp%02d", i%20), fmt.Sprintf("dept%02d|rev%d", i%3, i))
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 60; i < 80; i++ {
		mustPut(t, d, fmt.Sprintf("emp%02d", i%20), fmt.Sprintf("dept%02d|rev%d", i%3, i))
	}
	now := d.Now()
	want := map[string][]string{}
	for dept := 0; dept < 3; dept++ {
		skey := record.Key(fmt.Sprintf("dept%02d", dept))
		pks, err := d.LookupSecondary("dept", skey, now)
		if err != nil {
			t.Fatal(err)
		}
		for _, pk := range pks {
			want[string(skey)] = append(want[string(skey)], string(pk))
		}
	}
	d.Close()

	// Missing extractor: refused.
	bad := pagedConfig(dir)
	if _, err := Open(bad); err == nil {
		t.Fatal("reopen without extractors accepted")
	}
	cfg2 := pagedConfig(dir)
	cfg2.Secondaries = secs
	re, err := Open(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for skey, wantPKs := range want {
		pks, err := re.LookupSecondary("dept", record.Key(skey), now)
		if err != nil {
			t.Fatal(err)
		}
		if len(pks) != len(wantPKs) {
			t.Fatalf("%s: %d keys after reopen, want %d", skey, len(pks), len(wantPKs))
		}
		for i := range pks {
			if string(pks[i]) != wantPKs[i] {
				t.Fatalf("%s key %d = %s, want %s", skey, i, pks[i], wantPKs[i])
			}
		}
	}
}

// TestPagedPendingErasedOnRecovery: a transaction in flight across a
// checkpoint leaves its pending version in the flushed pages; recovery
// must erase it — invisible to every read, and no obstacle to a new
// transaction (with a recycled txn id) writing the same key.
func TestPagedPendingErasedOnRecovery(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(pagedConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, d, "stable", "committed")
	tx := d.Begin()
	if err := tx.Put(record.StringKey("inflight"), []byte("uncommitted")); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Power loss with tx still open: its pending version is inside the
	// checkpointed pages.
	crash(d)

	re, err := Open(pagedConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, ok, err := re.Get(record.StringKey("inflight")); err != nil || ok {
		t.Fatalf("uncommitted key visible after recovery: ok=%v err=%v", ok, err)
	}
	hist, err := re.History(record.StringKey("inflight"))
	if err == nil && len(hist) != 0 {
		t.Fatalf("uncommitted key has %d recovered versions", len(hist))
	}
	// A fresh transaction — txn ids restart from 1 — writes the key.
	mustPut(t, re, "inflight", "second-life")
	if v, ok, _ := re.Get(record.StringKey("inflight")); !ok || string(v.Value) != "second-life" {
		t.Fatalf("rewrite after recovery: ok=%v val=%q", ok, v.Value)
	}
	if err := re.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPagedDoubleOpenLocked: the directory lock applies to paged
// directories too.
func TestPagedDoubleOpenLocked(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(pagedConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := Open(pagedConfig(dir)); !errors.Is(err, ErrLocked) {
		t.Fatalf("second open: err = %v, want ErrLocked", err)
	}
}

// TestPagedDeviceFilesExist: the directory actually contains the device
// files, and they dwarf the checkpoint metadata (the point of paging:
// the checkpoint no longer carries the database).
func TestPagedDeviceFilesExist(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(pagedConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 500; i++ {
		mustPut(t, d, fmt.Sprintf("key%04d", i), strings.Repeat("v", 60))
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	pageInfo, err := os.Stat(filepath.Join(dir, "pages.dev"))
	if err != nil {
		t.Fatal(err)
	}
	cpInfo, err := os.Stat(filepath.Join(dir, "CHECKPOINT"))
	if err != nil {
		t.Fatal(err)
	}
	if pageInfo.Size() < 10*cpInfo.Size() {
		t.Fatalf("pages.dev %d bytes vs CHECKPOINT %d bytes: checkpoint still carries the database?",
			pageInfo.Size(), cpInfo.Size())
	}
	if _, err := os.Stat(filepath.Join(dir, "pages.dev.journal")); !os.IsNotExist(err) {
		t.Fatalf("rollback journal survived a completed checkpoint: %v", err)
	}
}
