package db

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/record"
	"repro/internal/txn"
)

// spreadKey mirrors workload.SpreadKey: binary keys whose high-order
// bytes are uniform, so every shard count receives traffic.
func spreadKey(i uint64) record.Key {
	return record.Uint64Key(i * 0x9e3779b97f4a7c15)
}

// sameVersions asserts two version slices are byte-identical: same
// length, and per element same key bytes, timestamp, tombstone flag, and
// value bytes.
func cursorSameVersions(t *testing.T, label string, got, want []record.Version) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d versions, want %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if !g.Key.Equal(w.Key) || g.Time != w.Time || g.Tombstone != w.Tombstone || !bytes.Equal(g.Value, w.Value) {
			t.Fatalf("%s[%d] = %v, want %v", label, i, g, w)
		}
	}
}

func reversed(vs []record.Version) []record.Version {
	out := make([]record.Version, len(vs))
	for i, v := range vs {
		out[len(vs)-1-i] = v
	}
	return out
}

// TestCursorEquivalenceProperty is the multi-shard equivalence property
// test of the streaming read API: forward, reverse, limited, and
// windowed cursors must be byte-identical to the materializing scans
// under every shard count.
func TestCursorEquivalenceProperty(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 5, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(shards)*97 + 5))
			d := open(t, Config{Shards: shards, LeafCapacity: 512})
			const keySpace = 80
			for op := 0; op < 500; op++ {
				k := spreadKey(uint64(rng.Intn(keySpace)))
				err := d.Update(func(tx *txn.Txn) error {
					if rng.Intn(9) == 0 {
						return tx.Delete(k)
					}
					return tx.Put(k, []byte(fmt.Sprintf("v%d", op)))
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			now := int(d.Now())
			for trial := 0; trial < 40; trial++ {
				at := record.Timestamp(1 + rng.Intn(now))
				var low record.Key
				high := record.InfiniteBound()
				if trial%3 != 0 {
					low = spreadKey(uint64(rng.Intn(keySpace)))
					high = record.KeyBound(spreadKey(uint64(rng.Intn(keySpace))))
				}

				// Oracle: the recursive, materializing store scan.
				want, err := d.store.ScanAsOf(at, low, high)
				if err != nil {
					t.Fatal(err)
				}

				r := d.ReadAt(at)
				got, err := r.Cursor(low, high, ScanOptions{}).Collect()
				if err != nil {
					t.Fatal(err)
				}
				cursorSameVersions(t, "forward", got, want)

				gotRev, err := r.Cursor(low, high, ScanOptions{Reverse: true}).Collect()
				if err != nil {
					t.Fatal(err)
				}
				cursorSameVersions(t, "reverse", gotRev, reversed(want))

				limit := rng.Intn(len(want) + 2)
				gotLim, err := r.Cursor(low, high, ScanOptions{Limit: limit}).Collect()
				if err != nil {
					t.Fatal(err)
				}
				wantLim := want
				if limit > 0 && limit < len(want) {
					wantLim = want[:limit]
				}
				if limit > 0 {
					cursorSameVersions(t, "limit", gotLim, wantLim)
				}

				// The legacy slice API is a wrapper over the same
				// cursor; it must agree with the oracle too.
				legacy, err := d.ScanAsOf(at, low, high)
				if err != nil {
					t.Fatal(err)
				}
				cursorSameVersions(t, "legacy-scan", legacy, want)

				// Window mode: per-shard lazy parts against the
				// per-shard materializing oracle. From starts at 1:
				// From=To=0 is the "no window" sentinel, not a window.
				from := record.Timestamp(1 + rng.Intn(now))
				to := from + record.Timestamp(rng.Intn(now))
				var wantWin []record.Version
				for i := 0; i < shards; i++ {
					err := d.WithShardTree(i, func(tr *core.Tree) error {
						vs, err := tr.ScanRange(low, high, from, to)
						wantWin = append(wantWin, vs...)
						return err
					})
					if err != nil {
						t.Fatal(err)
					}
				}
				gotWin, err := d.Cursor(low, high, ScanOptions{From: from, To: to}).Collect()
				if err != nil {
					t.Fatal(err)
				}
				cursorSameVersions(t, "window", gotWin, wantWin)
				gotWinRev, err := d.Cursor(low, high, ScanOptions{From: from, To: to, Reverse: true}).Collect()
				if err != nil {
					t.Fatal(err)
				}
				cursorSameVersions(t, "window-reverse", gotWinRev, reversed(wantWin))
			}
		})
	}
}

// TestAbandonedCursorDoesNotBlockWriters verifies the latch contract:
// a cursor abandoned mid-iteration (without Close) holds no shard latch,
// so writers on every shard proceed immediately.
func TestAbandonedCursorDoesNotBlockWriters(t *testing.T) {
	const shards = 4
	d := open(t, Config{Shards: shards})
	for i := 0; i < 64; i++ {
		err := d.Update(func(tx *txn.Txn) error {
			return tx.Put(spreadKey(uint64(i)), []byte("seed"))
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	c := d.Cursor(nil, record.InfiniteBound(), ScanOptions{})
	if !c.Next() {
		t.Fatalf("cursor empty: %v", c.Err())
	}
	// c is now mid-iteration and deliberately neither drained nor
	// closed. Every shard must accept exclusive-latch writes anyway.
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 256; i++ {
			err := d.Update(func(tx *txn.Txn) error {
				return tx.Put(spreadKey(uint64(i)), []byte("after"))
			})
			if err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("writers blocked: an abandoned cursor is holding a shard latch")
	}

	// The abandoned cursor still finishes its snapshot correctly.
	n := 1
	for c.Next() {
		if string(c.Version().Value) != "seed" {
			t.Fatalf("cursor leaked a post-snapshot write: %v", c.Version())
		}
		n++
	}
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
	if n != 64 {
		t.Fatalf("cursor yielded %d versions, want 64", n)
	}
}

// TestCursorLimit1PageReads is the acceptance check for lazy reads: over
// a snapshot of >=100k versions, a Limit=1 cursor performs O(tree-depth)
// page reads — measured at the buffer pool, through which every page
// fetch passes — while the materializing scan reads the whole current
// key space.
func TestCursorLimit1PageReads(t *testing.T) {
	// Small leaves keep the build fast and the tree deep: the point is
	// the O(height) bound, not the leaf fan-out.
	d := open(t, Config{LeafCapacity: 512, IndexCapacity: 1024})
	const (
		keys    = 20_000
		rounds  = 5 // 100k versions total
		perTxn  = 100
		valSize = 8
	)
	val := bytes.Repeat([]byte("x"), valSize)
	for r := 0; r < rounds; r++ {
		for base := 0; base < keys; base += perTxn {
			err := d.Update(func(tx *txn.Txn) error {
				for i := base; i < base+perTxn; i++ {
					if err := tx.Put(spreadKey(uint64(i)), val); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if st := d.Stats().Tree; st.Inserts < 100_000 {
		t.Fatalf("built only %d versions", st.Inserts)
	}

	height := d.Stats().Tree.Height
	if height < 2 {
		t.Fatalf("tree of height %d is too shallow to measure", height)
	}

	pageFetches := func() uint64 {
		st := d.Stats().Buffer
		return st.Hits + st.Misses
	}
	before := pageFetches()
	got, err := d.Cursor(nil, record.InfiniteBound(), ScanOptions{Limit: 1}).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("Limit=1 cursor yielded %d versions", len(got))
	}
	reads := pageFetches() - before
	if reads > uint64(height)+1 {
		t.Fatalf("Limit=1 cursor read %d pages, want <= tree height %d + 1", reads, height)
	}

	// Contrast: the materializing scan must touch at least one page per
	// current leaf — orders of magnitude more than the cursor.
	before = pageFetches()
	all, err := d.ScanAsOf(d.Now(), nil, record.InfiniteBound())
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != keys {
		t.Fatalf("full scan = %d keys, want %d", len(all), keys)
	}
	fullReads := pageFetches() - before
	if fullReads < 50*reads {
		t.Fatalf("full scan read %d pages vs cursor %d: the cursor is not lazy", fullReads, reads)
	}
}

// TestBufferPagesContract pins the Config.BufferPages semantics: 0 means
// the 256-page default, NoCachePages (-1) disables caching.
func TestBufferPagesContract(t *testing.T) {
	cached := open(t, Config{}) // BufferPages 0 -> default pool
	put(t, cached, "k", "v")
	for i := 0; i < 10; i++ {
		if _, ok, err := cached.Get(record.StringKey("k")); !ok || err != nil {
			t.Fatal(ok, err)
		}
	}
	if st := cached.Stats().Buffer; st.Hits+st.Misses == 0 {
		t.Fatal("BufferPages=0 must enable the default pool")
	}

	raw := open(t, Config{BufferPages: NoCachePages})
	put(t, raw, "k", "v")
	magBefore := raw.Stats().Magnetic.Reads
	for i := 0; i < 10; i++ {
		if _, ok, err := raw.Get(record.StringKey("k")); !ok || err != nil {
			t.Fatal(ok, err)
		}
	}
	st := raw.Stats()
	if st.Buffer.Hits+st.Buffer.Misses != 0 {
		t.Fatalf("BufferPages=NoCachePages left the pool active: %+v", st.Buffer)
	}
	if st.Magnetic.Reads == magBefore {
		t.Fatal("reads did not reach the device with caching disabled")
	}
}

// TestSecondaryCursorEquivalence checks the streaming secondary fetch
// against the legacy slice API, including Limit and Reverse.
func TestSecondaryCursorEquivalence(t *testing.T) {
	d := open(t, Config{Shards: 2})
	if err := d.CreateSecondary("dept", deptExtract); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		dept := fmt.Sprintf("dept%d", i%3)
		err := d.Update(func(tx *txn.Txn) error {
			return tx.Put(spreadKey(uint64(i)), []byte(dept+"|payload"))
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	at := d.Now()
	want, err := d.FetchBySecondary("dept", record.StringKey("dept1"), at)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("no records for dept1")
	}
	c, err := d.FetchBySecondaryCursor("dept", record.StringKey("dept1"), at, ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Collect()
	if err != nil {
		t.Fatal(err)
	}
	cursorSameVersions(t, "secondary", got, want)

	rev, err := d.FetchBySecondaryCursor("dept", record.StringKey("dept1"), at, ScanOptions{Reverse: true})
	if err != nil {
		t.Fatal(err)
	}
	gotRev, err := rev.Collect()
	if err != nil {
		t.Fatal(err)
	}
	cursorSameVersions(t, "secondary-reverse", gotRev, reversed(want))

	lim, err := d.FetchBySecondaryCursor("dept", record.StringKey("dept1"), at, ScanOptions{Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	gotLim, err := lim.Collect()
	if err != nil {
		t.Fatal(err)
	}
	cursorSameVersions(t, "secondary-limit", gotLim, want[:2])
}

// TestRangeIteratorThroughDB drives the iter.Seq2 form end to end,
// including early break and pagination resume.
func TestRangeIteratorThroughDB(t *testing.T) {
	d := open(t, Config{Shards: 3})
	for i := 0; i < 30; i++ {
		err := d.Update(func(tx *txn.Txn) error {
			return tx.Put(spreadKey(uint64(i)), []byte(fmt.Sprintf("v%d", i)))
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	want, err := d.ScanAsOf(d.Now(), nil, record.InfiniteBound())
	if err != nil {
		t.Fatal(err)
	}

	// Paginate: pages of 7, resuming strictly after the last key seen
	// via ScanOptions.After.
	var got []record.Version
	var after record.Key
	snap := d.ReadOnly()
	for {
		n := 0
		for v, err := range snap.Range(nil, record.InfiniteBound(), ScanOptions{After: after, Limit: 7}) {
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, v)
			after = v.Key.Clone()
			n++
		}
		if n < 7 {
			break
		}
	}
	cursorSameVersions(t, "paginated", got, want)
}
