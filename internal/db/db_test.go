package db

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/record"
	"repro/internal/txn"
)

func open(t *testing.T, cfg Config) *DB {
	t.Helper()
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func put(t *testing.T, d *DB, key, val string) {
	t.Helper()
	err := d.Update(func(tx *txn.Txn) error {
		return tx.Put(record.StringKey(key), []byte(val))
	})
	if err != nil {
		t.Fatalf("put %s: %v", key, err)
	}
}

func TestOpenDefaults(t *testing.T) {
	d := open(t, Config{})
	if d.Now() != 0 {
		t.Errorf("fresh db Now = %v", d.Now())
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := d.Get(record.StringKey("nope")); ok {
		t.Error("Get on empty db should miss")
	}
}

func TestEndToEndVersioning(t *testing.T) {
	d := open(t, Config{})
	put(t, d, "acct", "100") // t=1
	put(t, d, "acct", "120") // t=2
	put(t, d, "acct", "90")  // t=3

	v, ok, _ := d.Get(record.StringKey("acct"))
	if !ok || string(v.Value) != "90" {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	for at, want := range map[uint64]string{1: "100", 2: "120", 3: "90"} {
		v, ok, _ := d.GetAsOf(record.StringKey("acct"), record.Timestamp(at))
		if !ok || string(v.Value) != want {
			t.Errorf("GetAsOf(%d) = %v, %v; want %s", at, v, ok, want)
		}
	}
	h, _ := d.History(record.StringKey("acct"))
	if len(h) != 3 {
		t.Fatalf("History = %v", h)
	}
}

func TestSecondaryIndexEndToEnd(t *testing.T) {
	d := open(t, Config{})
	// Records are "dept|rest"; the secondary key is the dept prefix.
	extract := func(v []byte) record.Key {
		i := bytes.IndexByte(v, '|')
		if i < 0 {
			return nil
		}
		return record.Key(v[:i])
	}
	if err := d.CreateSecondary("dept", extract); err != nil {
		t.Fatal(err)
	}
	put(t, d, "emp1", "sales|alice") // t=1
	put(t, d, "emp2", "sales|bob")   // t=2
	put(t, d, "emp3", "eng|carol")   // t=3
	put(t, d, "emp1", "eng|alice")   // t=4: moves to eng

	if n, _ := d.CountSecondary("dept", record.StringKey("sales"), 3); n != 2 {
		t.Errorf("sales@3 = %d, want 2", n)
	}
	if n, _ := d.CountSecondary("dept", record.StringKey("sales"), 4); n != 1 {
		t.Errorf("sales@4 = %d, want 1", n)
	}
	vs, err := d.FetchBySecondary("dept", record.StringKey("eng"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 || string(vs[0].Value) != "eng|alice" || string(vs[1].Value) != "eng|carol" {
		t.Fatalf("FetchBySecondary(eng@4) = %v", vs)
	}
	// Delete removes from the index going forward.
	d.Update(func(tx *txn.Txn) error { return tx.Delete(record.StringKey("emp3")) }) // t=5
	if n, _ := d.CountSecondary("dept", record.StringKey("eng"), 5); n != 1 {
		t.Errorf("eng@5 = %d, want 1", n)
	}
	if n, _ := d.CountSecondary("dept", record.StringKey("eng"), 4); n != 2 {
		t.Errorf("eng@4 = %d, want 2 (history preserved)", n)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Unknown index errors.
	if _, err := d.LookupSecondary("nope", record.StringKey("x"), 1); err == nil {
		t.Error("unknown index should error")
	}
	if _, err := d.FetchBySecondary("nope", record.StringKey("x"), 1); err == nil {
		t.Error("unknown index should error")
	}
	if _, err := d.CountSecondary("nope", record.StringKey("x"), 1); err == nil {
		t.Error("unknown index should error")
	}
}

func TestSecondaryCreationRules(t *testing.T) {
	d := open(t, Config{})
	if err := d.CreateSecondary("a", func([]byte) record.Key { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := d.CreateSecondary("a", func([]byte) record.Key { return nil }); err == nil {
		t.Error("duplicate index should fail")
	}
	put(t, d, "k", "v")
	if err := d.CreateSecondary("b", func([]byte) record.Key { return nil }); err == nil {
		t.Error("creating an index after writes should fail")
	}
}

func TestStatsAggregation(t *testing.T) {
	d := open(t, Config{BufferPages: 8})
	for i := 0; i < 200; i++ {
		put(t, d, fmt.Sprintf("k%03d", i%20), fmt.Sprintf("v%d", i))
	}
	st := d.Stats()
	if st.Txn.Committed != 200 {
		t.Errorf("Committed = %d", st.Txn.Committed)
	}
	if st.Tree.Inserts != 200 {
		t.Errorf("Inserts = %d", st.Tree.Inserts)
	}
	if st.Magnetic.PagesInUse == 0 {
		t.Error("no magnetic pages in use")
	}
	if st.Buffer.Hits+st.Buffer.Misses == 0 {
		t.Error("buffer pool unused")
	}
	mag, worm := d.Devices()
	if mag == nil || worm == nil {
		t.Fatal("Devices returned nil")
	}
	err := d.WithShardTree(0, func(tr *core.Tree) error {
		if tr == nil {
			t.Fatal("WithShardTree passed nil tree")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WithShardTree(99, func(*core.Tree) error { return nil }); err == nil {
		t.Fatal("WithShardTree accepted an out-of-range shard")
	}
}

func TestReadersDoNotBlockOnWriters(t *testing.T) {
	d := open(t, Config{})
	put(t, d, "k", "v1")
	tx := d.Begin()
	if err := tx.Put(record.StringKey("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	// With the updater still holding its lock, a reader completes and
	// sees the committed version.
	r := d.ReadOnly()
	v, ok, err := r.Get(record.StringKey("k"))
	if err != nil || !ok || string(v.Value) != "v1" {
		t.Fatalf("reader = %v, %v, %v", v, ok, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestScanAsOfThroughDB(t *testing.T) {
	d := open(t, Config{})
	for i := 0; i < 10; i++ {
		put(t, d, fmt.Sprintf("k%d", i), "old")
	}
	mid := d.Now()
	for i := 0; i < 10; i++ {
		put(t, d, fmt.Sprintf("k%d", i), "new")
	}
	vs, err := d.ScanAsOf(mid, nil, record.InfiniteBound())
	if err != nil || len(vs) != 10 {
		t.Fatalf("ScanAsOf = %d versions, %v", len(vs), err)
	}
	for _, v := range vs {
		if string(v.Value) != "old" {
			t.Errorf("snapshot contains %s", v)
		}
	}
}
