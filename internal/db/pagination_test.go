package db

import (
	"fmt"
	"testing"

	"repro/internal/record"
	"repro/internal/txn"
)

// TestScanLimitAfterAcrossShardSplit paginates with ScanOptions.Limit
// and After in Limit=3 windows across the split point of a 2-shard
// database: the resume key lands exactly on, just before, and just
// after the shard boundary as the windows march over it, and no key may
// be skipped or duplicated by the shard hand-off.
func TestScanLimitAfterAcrossShardSplit(t *testing.T) {
	const shards = 2
	d := open(t, Config{Shards: shards})

	// Keys straddling the boundary: a run ending right below it, the
	// boundary key itself, and a run above it. With Limit=3 the windows
	// hit every alignment of the split point.
	boundary := record.ShardBoundary(1, shards)
	var keys []record.Key
	for i := 0; i < 7; i++ {
		keys = append(keys, append(record.Key{boundary[0] - 1}, []byte(fmt.Sprintf("b%02d", i))...))
	}
	keys = append(keys, boundary.Clone())
	for i := 0; i < 7; i++ {
		keys = append(keys, append(boundary.Clone(), []byte(fmt.Sprintf("a%02d", i))...))
	}
	for _, k := range keys {
		if record.ShardOfKey(k, shards) != 0 && record.ShardOfKey(k, shards) != 1 {
			t.Fatalf("key %x in unexpected shard", k)
		}
		err := d.Update(func(tx *txn.Txn) error { return tx.Put(k, []byte("v")) })
		if err != nil {
			t.Fatal(err)
		}
	}
	if lo := record.ShardOfKey(keys[0], shards); lo != 0 {
		t.Fatalf("low run not in shard 0 (shard %d): the test no longer straddles the split", lo)
	}
	if hi := record.ShardOfKey(boundary, shards); hi != 1 {
		t.Fatalf("boundary key not in shard 1 (shard %d)", hi)
	}

	// Paginate forward in Limit=3 windows, resuming with After.
	var got []string
	var after record.Key
	for page := 0; ; page++ {
		if page > len(keys) {
			t.Fatal("pagination did not terminate")
		}
		opts := ScanOptions{Limit: 3}
		if after != nil {
			opts.After = after
		}
		c := d.Cursor(nil, record.InfiniteBound(), opts)
		n := 0
		for c.Next() {
			v := c.Version()
			got = append(got, string(v.Key))
			after = v.Key.Clone()
			n++
		}
		if err := c.Err(); err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		if n > 3 {
			t.Fatalf("page %d returned %d keys, limit 3", page, n)
		}
	}

	want := make([]string, len(keys))
	for i, k := range keys {
		want[i] = string(k)
	}
	if len(got) != len(want) {
		t.Fatalf("paginated %d keys, want %d:\n got %q\nwant %q", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %q want %q (skip or duplicate at the shard split)", i, got[i], want[i])
		}
	}
}
