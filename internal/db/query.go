package db

import (
	"repro/internal/query"
	"repro/internal/record"
	"repro/internal/txn"
)

// queryExec binds a read transaction to the engine extensions the query
// layer can exploit: the shard count (parallel scans) and secondary
// lookups (index joins).
type queryExec struct {
	d *DB
	r *txn.ReadTxn
}

func (q queryExec) Cursor(low record.Key, high record.Bound, opts txn.ScanOptions) *txn.Cursor {
	return q.r.Cursor(low, high, opts)
}

func (q queryExec) Timestamp() record.Timestamp { return q.r.Timestamp() }

func (q queryExec) Shards() int { return q.d.Shards() }

func (q queryExec) LookupSecondary(index string, skey record.Key, at record.Timestamp) ([]record.Key, error) {
	return q.d.LookupSecondary(index, skey, at)
}

// Query compiles and runs a composed operator tree (see internal/query)
// at a fresh read snapshot: the builder API of the temporal query
// engine.
//
//	op, err := d.Query(query.Scan(nil, record.InfiniteBound()).
//		Filter(lo, hi).
//		GroupBy())
//	defer op.Close()
//	for op.Next() { use(op.Row()) }
//
// Operators stream under the cursor latch discipline — no latch held
// between Next calls — and a parallel scan's goroutines are released by
// Close.
func (d *DB) Query(spec *query.Spec) (query.Operator, error) {
	return d.QueryAt(d.Now(), spec)
}

// QueryAt runs spec against the snapshot at `at` (sources with their
// own At or From/To windows override it per scan) — the time-travel
// form of Query.
func (d *DB) QueryAt(at record.Timestamp, spec *query.Spec) (query.Operator, error) {
	return query.Compile(spec, queryExec{d: d, r: d.ReadAt(at)})
}

var (
	_ query.Source          = queryExec{}
	_ query.ShardedSource   = queryExec{}
	_ query.SecondaryLookup = queryExec{}
)
