package db

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/record"
	"repro/internal/txn"
)

// committedOp is one durably committed write, logged by the writer that
// performed it with the commit timestamp the engine assigned. The log is
// the ground truth the sequential oracle replays: commit times are the
// serialization points, so the oracle's answers are the only admissible
// outcomes.
type committedOp struct {
	key       record.Key
	value     []byte
	tombstone bool
	time      record.Timestamp
}

// oracle is the same reference model as refdb in
// internal/core/model_test.go: full version histories per key, queried
// by time.
type oracle map[string][]committedOp

func buildOracle(log []committedOp) oracle {
	o := make(oracle)
	for _, op := range log {
		o[string(op.key)] = append(o[string(op.key)], op)
	}
	for k := range o {
		ops := o[k]
		sort.Slice(ops, func(i, j int) bool { return ops[i].time < ops[j].time })
		for i := 1; i < len(ops); i++ {
			if ops[i].time == ops[i-1].time {
				panic(fmt.Sprintf("duplicate commit time %d for key %x", ops[i].time, k))
			}
		}
	}
	return o
}

func (o oracle) getAsOf(k record.Key, at record.Timestamp) (committedOp, bool) {
	var out committedOp
	ok := false
	for _, op := range o[string(k)] {
		if op.time <= at {
			out = op
			ok = true
		}
	}
	if ok && out.tombstone {
		return committedOp{}, false
	}
	return out, ok
}

// TestConcurrentStress runs randomized readers, writers, snapshot
// scanners, and rollback readers against a sharded database under the
// race detector, then cross-checks the final state — histories, rollback
// reads, and snapshots — against the sequential oracle.
func TestConcurrentStress(t *testing.T) {
	const (
		shards       = 8
		writers      = 4
		readers      = 3
		opsPerWriter = 250
		nKeys        = 96
	)
	d, err := Open(Config{Shards: shards, LeafCapacity: 768, IndexCapacity: 768, MaxKeySize: 32})
	if err != nil {
		t.Fatal(err)
	}

	// Keys spread across shards (binary, uniform 16-bit prefixes).
	keys := make([]record.Key, nKeys)
	keyRng := rand.New(rand.NewSource(99))
	for i := range keys {
		keys[i] = record.Uint64Key(keyRng.Uint64())
	}

	var (
		logMu sync.Mutex
		log   []committedOp
	)
	appendLog := func(ops []committedOp) {
		logMu.Lock()
		log = append(log, ops...)
		logMu.Unlock()
	}

	var wg sync.WaitGroup
	errCh := make(chan error, writers+readers+1)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*977 + 5))
			for i := 0; i < opsPerWriter; i++ {
				// Mostly single-key transactions; some two-key
				// transactions spanning shards, some deliberate aborts.
				nWrites := 1
				if rng.Intn(4) == 0 {
					nWrites = 2
				}
				abort := rng.Intn(10) == 0
				var tx *txn.Txn
				var staged []committedOp
				err := d.Update(func(t *txn.Txn) error {
					tx = t
					staged = staged[:0]
					for j := 0; j < nWrites; j++ {
						k := keys[rng.Intn(nKeys)]
						if rng.Intn(8) == 0 {
							if err := t.Delete(k); err != nil {
								return err
							}
							staged = append(staged, committedOp{key: k, tombstone: true})
						} else {
							val := []byte(fmt.Sprintf("w%d-%d-%d", w, i, j))
							if err := t.Put(k, val); err != nil {
								return err
							}
							staged = append(staged, committedOp{key: k, value: val})
						}
					}
					if abort {
						return errors.New("deliberate abort")
					}
					return nil
				})
				switch {
				case err == nil:
					ct := tx.CommitTime()
					if ct == 0 {
						errCh <- fmt.Errorf("writer %d: committed txn reports no commit time", w)
						return
					}
					// Two writes of one txn to the same key collapse to
					// the final one (the tree keeps one pending version
					// per key per txn).
					byKey := make(map[string]committedOp, len(staged))
					for _, op := range staged {
						op.time = ct
						byKey[string(op.key)] = op
					}
					final := make([]committedOp, 0, len(byKey))
					for _, op := range byKey {
						final = append(final, op)
					}
					appendLog(final)
				case errors.Is(err, txn.ErrLockConflict) || abort:
					// No-wait conflicts and deliberate aborts leave no trace.
				default:
					errCh <- fmt.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)*131 + 17))
			for i := 0; i < 120; i++ {
				switch rng.Intn(3) {
				case 0: // snapshot scan: sorted, consistent with its timestamp
					snap := d.ReadOnly()
					vs, err := snap.Scan(nil, record.InfiniteBound())
					if err != nil {
						errCh <- fmt.Errorf("reader %d scan: %v", r, err)
						return
					}
					for j, v := range vs {
						if v.Time > snap.Timestamp() {
							errCh <- fmt.Errorf("reader %d: snapshot@%v leaked version at %v", r, snap.Timestamp(), v.Time)
							return
						}
						if v.IsPending() || v.Tombstone {
							errCh <- fmt.Errorf("reader %d: snapshot surfaced pending/tombstone %v", r, v)
							return
						}
						if j > 0 && !vs[j-1].Key.Less(v.Key) {
							errCh <- fmt.Errorf("reader %d: snapshot out of order at %d", r, j)
							return
						}
					}
				case 1: // rollback point read at a past time
					at := record.Timestamp(rng.Intn(int(d.Now()) + 1))
					k := keys[rng.Intn(nKeys)]
					v, ok, err := d.GetAsOf(k, at)
					if err != nil {
						errCh <- fmt.Errorf("reader %d GetAsOf: %v", r, err)
						return
					}
					if ok && (v.Time > at || v.IsPending()) {
						errCh <- fmt.Errorf("reader %d: GetAsOf(%s,%d) returned version at %v", r, k, at, v.Time)
						return
					}
				default: // current read
					k := keys[rng.Intn(nKeys)]
					if v, ok, err := d.Get(k); err != nil {
						errCh <- fmt.Errorf("reader %d Get: %v", r, err)
						return
					} else if ok && v.IsPending() {
						errCh <- fmt.Errorf("reader %d: Get surfaced pending version", r)
						return
					}
				}
			}
		}(r)
	}

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	if err := d.CheckInvariants(); err != nil {
		t.Fatalf("invariants after stress: %v", err)
	}

	// --- Sequential oracle cross-check ---
	o := buildOracle(log)
	now := d.Now()

	// Histories must match the log exactly, per key.
	for _, k := range keys {
		h, err := d.History(k)
		if err != nil {
			t.Fatal(err)
		}
		want := o[string(k)]
		if len(h) != len(want) {
			t.Fatalf("History(%s): engine=%d oracle=%d versions", k, len(h), len(want))
		}
		for i := range h {
			if h[i].Time != want[i].time || h[i].Tombstone != want[i].tombstone ||
				!bytes.Equal(h[i].Value, want[i].value) {
				t.Fatalf("History(%s)[%d]: engine=%v oracle=%+v", k, i, h[i], want[i])
			}
		}
	}

	// Rollback reads at random past times.
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 500; trial++ {
		k := keys[rng.Intn(nKeys)]
		at := record.Timestamp(rng.Intn(int(now) + 2))
		gv, gok, err := d.GetAsOf(k, at)
		if err != nil {
			t.Fatal(err)
		}
		ov, ook := o.getAsOf(k, at)
		if gok != ook || (gok && (gv.Time != ov.time || !bytes.Equal(gv.Value, ov.value))) {
			t.Fatalf("GetAsOf(%s,%d): engine=%v,%v oracle=%+v,%v", k, at, gv, gok, ov, ook)
		}
	}

	// Snapshots at several times.
	for _, at := range []record.Timestamp{1, now / 4, now / 2, now} {
		got, err := d.ScanAsOf(at, nil, record.InfiniteBound())
		if err != nil {
			t.Fatal(err)
		}
		want := make(map[string]committedOp)
		for ks := range o {
			if v, ok := o.getAsOf(record.Key(ks), at); ok {
				want[ks] = v
			}
		}
		if len(got) != len(want) {
			t.Fatalf("snapshot@%d: engine=%d keys oracle=%d", at, len(got), len(want))
		}
		for _, v := range got {
			w, ok := want[string(v.Key)]
			if !ok || w.time != v.Time || !bytes.Equal(w.value, v.Value) {
				t.Fatalf("snapshot@%d key %s: engine=%v oracle=%+v", at, v.Key, v, w)
			}
		}
	}
}

// TestConcurrentSecondaryMaintenance churns committed writes from several
// goroutines while others query a secondary index: index maintenance runs
// under the commit path's secondary latch and must stay internally
// consistent (every lookup resolves to a primary record carrying the
// secondary key).
func TestConcurrentSecondaryMaintenance(t *testing.T) {
	d, err := Open(Config{Shards: 4, MaxKeySize: 32})
	if err != nil {
		t.Fatal(err)
	}
	// Secondary key = first byte of the value.
	if err := d.CreateSecondary("tag", func(v []byte) record.Key {
		if len(v) == 0 {
			return nil
		}
		return record.Key{v[0]}
	}); err != nil {
		t.Fatal(err)
	}
	keys := make([]record.Key, 40)
	rng := rand.New(rand.NewSource(5))
	for i := range keys {
		keys[i] = record.Uint64Key(rng.Uint64())
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 71))
			for i := 0; i < 150; i++ {
				k := keys[rng.Intn(len(keys))]
				tag := byte('a' + rng.Intn(4))
				err := d.Update(func(tx *txn.Txn) error {
					return tx.Put(k, []byte{tag, byte('0' + byte(i%10))})
				})
				if err != nil && !errors.Is(err, txn.ErrLockConflict) {
					errCh <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r) + 301))
			for i := 0; i < 100; i++ {
				tag := record.Key{byte('a' + rng.Intn(4))}
				at := d.Now()
				vs, err := d.FetchBySecondary("tag", tag, at)
				if err != nil {
					errCh <- err
					return
				}
				for _, v := range vs {
					if len(v.Value) == 0 || v.Value[0] != tag[0] {
						errCh <- fmt.Errorf("secondary fetch for %s returned %v", tag, v)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
