// Package db is the public face of the reproduction: a multiversion,
// timestamped database engine with a non-deletion policy, backed by
// Time-Split B-trees over a simulated magnetic disk (current data) and a
// simulated write-once optical disk (historical data), with transactions,
// read-only queries that take no logical locks, and secondary indexes —
// the complete system of Lomet & Salzberg, SIGMOD 1989.
//
// # Sharding and concurrency
//
// The key space is range-partitioned across Config.Shards independent
// TSB-trees (shard order equals key order, so range queries concatenate
// per-shard results). The concurrency guarantees, precisely:
//
//   - Read-only transactions take no logical record locks and never wait
//     for a lock (§4.1). Obtaining a snapshot timestamp (ReadOnly/ReadAt)
//     is a wait-free atomic clock read.
//   - Reads are NOT wait-free end to end: each per-shard tree structure
//     is protected by a reader/writer latch, so a read briefly shares a
//     shard latch and can wait for an in-progress page split on that one
//     shard. Readers never block readers, and never touch shards outside
//     their key range.
//   - Updaters claim keys in a no-wait lock table (conflicts fail fast
//     with txn.ErrLockConflict) and write pending versions under the
//     owning shard's write latch. Commit posting is serialized by a
//     commit mutex so commit timestamps reach every shard in order; the
//     shared clock advances only after a commit is fully posted, so any
//     snapshot at time <= Now() is consistent.
//   - Secondary indexes are maintained during commit posting and guarded
//     by their own reader/writer latch.
//
// Typical use:
//
//	d, _ := db.Open(db.Config{Shards: 8})
//	d.Update(func(tx *txn.Txn) error { return tx.Put(k, v) })
//	v, ok, _ := d.Get(k)              // current version
//	v, ok, _ = d.GetAsOf(k, t)        // rollback query
//	snap := d.ReadOnly()              // snapshot reader, no logical locks
package db

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/record"
	"repro/internal/secondary"
	"repro/internal/storage"
	"repro/internal/txn"
)

// Config configures a database.
type Config struct {
	// Shards is the number of key-range partitions, each an independent
	// TSB-tree with its own latch (default 1, max record.MaxShards).
	// Shard boundaries are fixed at open time by record.ShardBoundary.
	Shards int
	// PageSize is the magnetic page size in bytes (default 4096).
	PageSize int
	// SectorSize is the WORM sector size in bytes (default 1024, the
	// paper's "typically about one kilobyte").
	SectorSize int
	// BufferPages is the page-cache capacity (default 256; 0 disables
	// caching). All shards share one pool.
	BufferPages int
	// Policy is the TSB-tree splitting policy (default PolicyLastUpdate,
	// the paper's refinement).
	Policy core.Policy
	// Cost is the simulated latency model (default DefaultCostModel).
	Cost *storage.CostModel
	// PlatterSectors/Drives enable the optical-library model (0 = one
	// always-mounted disk).
	PlatterSectors uint64
	Drives         int
	// MaxKeySize / MaxValueSize bound record sizes (see core.Config).
	MaxKeySize   int
	MaxValueSize int
	// LeafCapacity / IndexCapacity override logical node sizes (tests).
	LeafCapacity  int
	IndexCapacity int
}

// SecondaryExtract derives the secondary key from a record value. A nil
// return means the record has no entry in that index.
type SecondaryExtract func(value []byte) record.Key

type secondaryIndex struct {
	index   *secondary.Index
	extract SecondaryExtract
}

// DB is a multiversion database instance. All public methods are safe for
// concurrent use; see the package documentation for what is latched and
// what is wait-free.
type DB struct {
	mag   *storage.MagneticDisk
	pool  *buffer.Pool
	worm  *storage.WORMDisk
	store *shardedStore
	tm    *txn.Manager

	// secMu latches the secondary indexes: write-held while commit
	// posting applies index maintenance, read-held by lookups.
	secMu       sync.RWMutex
	secondaries map[string]*secondaryIndex

	policy      core.Policy
	bufferPages int
}

func (cfg *Config) withDefaults() error {
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Shards < 1 || cfg.Shards > record.MaxShards {
		return fmt.Errorf("db: Shards %d outside [1,%d]", cfg.Shards, record.MaxShards)
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = 4096
	}
	if cfg.SectorSize == 0 {
		cfg.SectorSize = 1024
	}
	if cfg.BufferPages == 0 {
		cfg.BufferPages = 256
	}
	if (cfg.Policy == core.Policy{}) {
		cfg.Policy = core.PolicyLastUpdate
	}
	return nil
}

// Open creates a new database on fresh simulated devices.
func Open(cfg Config) (*DB, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	cost := storage.DefaultCostModel()
	if cfg.Cost != nil {
		cost = *cfg.Cost
	}

	d := &DB{
		secondaries: make(map[string]*secondaryIndex),
		policy:      cfg.Policy,
		bufferPages: cfg.BufferPages,
	}
	d.mag = storage.NewMagneticDisk(cfg.PageSize, cost)
	d.worm = storage.NewWORMDisk(storage.WORMConfig{
		SectorSize:     cfg.SectorSize,
		Cost:           cost,
		PlatterSectors: cfg.PlatterSectors,
		Drives:         cfg.Drives,
	})
	pages := d.pages()
	trees := make([]*core.Tree, cfg.Shards)
	for i := range trees {
		tree, err := core.New(pages, d.worm, core.Config{
			Policy:        cfg.Policy,
			MaxKeySize:    cfg.MaxKeySize,
			MaxValueSize:  cfg.MaxValueSize,
			LeafCapacity:  cfg.LeafCapacity,
			IndexCapacity: cfg.IndexCapacity,
		})
		if err != nil {
			return nil, err
		}
		trees[i] = tree
	}
	d.store = newShardedStore(trees)
	d.tm = txn.NewManager(d.store, d.store.Now())
	d.tm.SetCommitHook(d.onCommit)
	return d, nil
}

// pages returns the page store the trees share: the buffer pool when
// caching is enabled, the raw device otherwise.
func (d *DB) pages() storage.PageStore {
	if d.bufferPages > 0 {
		if d.pool == nil {
			d.pool = buffer.NewPool(d.mag, d.bufferPages)
		}
		return d.pool
	}
	return d.mag
}

// CreateSecondary registers a secondary index maintained from commit time
// onward. It must be called before any data is written.
func (d *DB) CreateSecondary(name string, extract SecondaryExtract) error {
	if d.store.stats().Inserts > 0 {
		return fmt.Errorf("db: secondary index %q must be created before any writes", name)
	}
	d.secMu.Lock()
	defer d.secMu.Unlock()
	if _, dup := d.secondaries[name]; dup {
		return fmt.Errorf("db: secondary index %q already exists", name)
	}
	ix, err := secondary.New(name, d.pages(), d.worm, core.Config{Policy: d.policy})
	if err != nil {
		return err
	}
	d.secondaries[name] = &secondaryIndex{index: ix, extract: extract}
	return nil
}

// onCommit maintains the secondary indexes; it runs under the transaction
// manager's commit mutex for every committed key, write-holding the
// secondary latch.
func (d *DB) onCommit(ct record.Timestamp, oldV record.Version, oldOK bool, newV record.Version) error {
	d.secMu.Lock()
	defer d.secMu.Unlock()
	for _, s := range d.secondaries {
		var oldSkey record.Key
		hadOld := false
		if oldOK && !oldV.Tombstone {
			if sk := s.extract(oldV.Value); sk != nil {
				oldSkey = sk
				hadOld = true
			}
		}
		var newSkey record.Key
		removed := true
		if !newV.Tombstone {
			if sk := s.extract(newV.Value); sk != nil {
				newSkey = sk
				removed = false
			}
		}
		if !hadOld && removed {
			continue
		}
		if err := s.index.Apply(ct, newV.Key, oldSkey, hadOld, newSkey, removed); err != nil {
			return err
		}
	}
	return nil
}

// Begin starts an updating transaction.
func (d *DB) Begin() *txn.Txn { return d.tm.Begin() }

// Update runs fn in a transaction, committing on success.
func (d *DB) Update(fn func(*txn.Txn) error) error { return d.tm.Update(fn) }

// ReadOnly starts a read-only transaction at the current time. It takes
// no logical locks; see the package documentation.
func (d *DB) ReadOnly() *txn.ReadTxn { return d.tm.ReadOnly() }

// ReadAt starts a read-only transaction at a past time.
func (d *DB) ReadAt(at record.Timestamp) *txn.ReadTxn { return d.tm.ReadAt(at) }

// Get returns the most recent committed version of key k.
func (d *DB) Get(k record.Key) (record.Version, bool, error) {
	return d.tm.ReadOnly().Get(k)
}

// GetAsOf returns the version of key k valid at time at.
func (d *DB) GetAsOf(k record.Key, at record.Timestamp) (record.Version, bool, error) {
	return d.tm.ReadAt(at).Get(k)
}

// ScanAsOf returns the snapshot of [low, high) at time at, sorted by key.
func (d *DB) ScanAsOf(at record.Timestamp, low record.Key, high record.Bound) ([]record.Version, error) {
	return d.tm.ReadAt(at).Scan(low, high)
}

// History returns every committed version of key k, oldest first.
func (d *DB) History(k record.Key) ([]record.Version, error) {
	return d.tm.History(k)
}

// ScanRange returns the versions of keys in [low, high) valid at any
// moment in [from, to), sorted by (key, time) — e.g. "all balance changes
// of accounts A..B during March".
func (d *DB) ScanRange(low record.Key, high record.Bound, from, to record.Timestamp) ([]record.Version, error) {
	return d.tm.ScanRange(low, high, from, to)
}

// Diff reports every key in [low, high) whose visible state differs
// between times from and to, sorted by key.
func (d *DB) Diff(low record.Key, high record.Bound, from, to record.Timestamp) ([]core.Change, error) {
	return d.tm.Diff(low, high, from, to)
}

// Now returns the last commit timestamp.
func (d *DB) Now() record.Timestamp { return d.tm.Now() }

// LookupSecondary returns the primary keys carrying the secondary key at
// time at, using only the secondary index.
func (d *DB) LookupSecondary(name string, skey record.Key, at record.Timestamp) ([]record.Key, error) {
	d.secMu.RLock()
	defer d.secMu.RUnlock()
	s, ok := d.secondaries[name]
	if !ok {
		return nil, fmt.Errorf("db: no secondary index %q", name)
	}
	return s.index.LookupAsOf(skey, at)
}

// CountSecondary counts records carrying the secondary key at time at.
func (d *DB) CountSecondary(name string, skey record.Key, at record.Timestamp) (int, error) {
	d.secMu.RLock()
	defer d.secMu.RUnlock()
	s, ok := d.secondaries[name]
	if !ok {
		return 0, fmt.Errorf("db: no secondary index %q", name)
	}
	return s.index.CountAsOf(skey, at)
}

// FetchBySecondary resolves a secondary lookup through the primary index:
// <timestamp, secondary key, primary key> entries point back at primary
// records by key and time (§3.6).
func (d *DB) FetchBySecondary(name string, skey record.Key, at record.Timestamp) ([]record.Version, error) {
	pks, err := d.LookupSecondary(name, skey, at)
	if err != nil {
		return nil, err
	}
	reader := d.tm.ReadAt(at)
	out := make([]record.Version, 0, len(pks))
	for _, pk := range pks {
		v, ok, err := reader.Get(pk)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Less(out[j].Key) })
	return out, nil
}

// Stats aggregates the accounting of every component.
type Stats struct {
	// Tree sums the structural counters over all shard trees.
	Tree     core.Stats
	Txn      txn.Stats
	Magnetic storage.MagneticStats
	WORM     storage.WORMStats
	Buffer   buffer.Stats
	// Secondaries maps index name to its tree stats.
	Secondaries map[string]core.Stats
}

// Stats returns a snapshot of all counters.
func (d *DB) Stats() Stats {
	st := Stats{
		Tree:        d.store.stats(),
		Txn:         d.tm.Stats(),
		Magnetic:    d.mag.Stats(),
		WORM:        d.worm.Stats(),
		Secondaries: make(map[string]core.Stats),
	}
	if d.pool != nil {
		st.Buffer = d.pool.Stats()
	}
	d.secMu.RLock()
	for name, s := range d.secondaries {
		st.Secondaries[name] = s.index.Tree().Stats()
	}
	d.secMu.RUnlock()
	return st
}

// Shards returns the number of key-range partitions.
func (d *DB) Shards() int { return len(d.store.shards) }

// Tree exposes the first shard's TSB-tree: with the default single shard
// this is the whole primary index (dump tools, invariant checks). Callers
// must not use it while concurrent transactions run; use ShardTree for
// the general case.
func (d *DB) Tree() *core.Tree { return d.store.shards[0].tree }

// ShardTree exposes shard i's TSB-tree. Callers must not use it while
// concurrent transactions run.
func (d *DB) ShardTree(i int) *core.Tree { return d.store.shards[i].tree }

// Devices exposes the simulated devices for experiment accounting.
func (d *DB) Devices() (*storage.MagneticDisk, *storage.WORMDisk) { return d.mag, d.worm }

// CheckInvariants verifies every shard tree (including that each key
// routes to the shard holding it) and every secondary tree.
func (d *DB) CheckInvariants() error {
	if err := d.store.checkInvariants(); err != nil {
		return fmt.Errorf("primary: %w", err)
	}
	d.secMu.RLock()
	defer d.secMu.RUnlock()
	for name, s := range d.secondaries {
		if err := s.index.Tree().CheckInvariants(); err != nil {
			return fmt.Errorf("secondary %q: %w", name, err)
		}
	}
	return nil
}
