// Package db is the public face of the reproduction: a multiversion,
// timestamped database engine with a non-deletion policy, backed by
// Time-Split B-trees over a simulated magnetic disk (current data) and a
// simulated write-once optical disk (historical data), with transactions,
// read-only queries that take no logical locks, and secondary indexes —
// the complete system of Lomet & Salzberg, SIGMOD 1989.
//
// # Sharding and concurrency
//
// The key space is range-partitioned across Config.Shards independent
// TSB-trees (shard order equals key order, so range queries concatenate
// per-shard results). The concurrency guarantees, precisely:
//
//   - Read-only transactions take no logical record locks and never wait
//     for a lock (§4.1). Obtaining a snapshot timestamp (ReadOnly/ReadAt)
//     is a wait-free atomic clock read.
//   - Reads are NOT wait-free end to end: each per-shard tree structure
//     is protected by a reader/writer latch, so a read briefly shares a
//     shard latch and can wait for an in-progress page split on that one
//     shard. Readers never block readers, and never touch shards outside
//     their key range.
//   - Updaters claim keys in a no-wait lock table (conflicts fail fast
//     with txn.ErrLockConflict) and write pending versions under the
//     owning shard's write latch. Commit posting is serialized by a
//     group-commit leadership token: concurrently-arriving committers
//     coalesce into one batch — consecutive commit timestamps, one
//     commit-log append + fsync (durable mode), one clock advance — so
//     commit timestamps reach every shard in order and the shared clock
//     advances only after a batch is fully posted; any snapshot at
//     time <= Now() is consistent.
//   - Secondary indexes are maintained during commit posting and guarded
//     by their own reader/writer latch.
//
// # Durability
//
// With Config.Dir set, the database is durable: a write-ahead log
// (internal/wal) and incremental checkpoints live in that directory.
// The contract, precisely:
//
//   - Committed = logged + fsynced. Update/Commit return only after the
//     transaction's redo record (its stamped write set) is durable in
//     the log. Group commit amortizes the fsync: committers arriving
//     while the batch leader fsyncs join the next batch, so N
//     concurrent committers cost far fewer than N fsyncs
//     (Stats().WAL's Records/Syncs is the measured factor).
//   - A crash loses nothing acknowledged. Open(Config{Dir: ...})
//     reloads the latest checkpoint and replays the log tail, stopping
//     at the first torn frame. An unacknowledged commit (in flight at
//     the crash) is recovered either fully or not at all — a log frame
//     is exactly one transaction under a CRC — and uncommitted data is
//     never durable, so recovery needs no undo pass.
//   - Checkpoints truncate the log without stopping writers:
//     DB.Checkpoint (and the background checkpointer, see
//     Config.CheckpointBytes) rotates the log at a posting-quiescent
//     boundary, dumps each shard's committed versions up to that
//     boundary under the shard's read latch — one shard at a time,
//     commits proceeding throughout — then atomically installs the
//     checkpoint and deletes the segments it covers. Dumps are
//     boundary-exact, so reload + log-tail replay applies every commit
//     exactly once, in global commit-time order.
//
// # Paged durability
//
// With Config.PagedDevices additionally set, the devices themselves are
// disk files in Dir (internal/pagestore): a mutable page file with a
// per-page CRC for the magnetic disk, an append-only burn file of
// CRC-guarded sectors for the WORM. The durability contract is the same
// — committed = logged + fsynced, recovery loses nothing acknowledged —
// but the checkpoint changes shape:
//
//   - What a checkpoint flushes: the buffer pool runs writeback with a
//     dirty-page table (strictly no-steal — a dirty page is never
//     evicted, never written outside a checkpoint), and a checkpoint
//     writes exactly the dirty pages — O(dirty), not O(database) —
//     through a rollback journal (old contents fsynced before any slot
//     is overwritten), then fsyncs both device files, then installs a
//     metadata-only checkpoint: tree roots, page allocator, WORM burned
//     boundary, and the page-consistent WAL boundary. The flush
//     pre-runs shard by shard with commits flowing; only the boundary
//     capture itself (memory copies, no I/O) briefly holds the commit
//     token plus the shard latches.
//
//   - What recovery trusts: page CRCs (verified on every read), the
//     rollback journal (a torn flush restores the previous boundary
//     image before anything reads it), the burn file up to the
//     checkpointed boundary (fsynced), and the WAL tail. The unsynced
//     WORM tail is verified sector by sector and clipped at the first
//     torn frame; intact orphan burns stay as dead waste, as they would
//     on real write-once media. Pending versions of transactions in
//     flight at the boundary are erased from the image (the checkpoint
//     records their write locks), then the WAL tail replays — so
//     recovery reads the checkpoint metadata plus O(log tail), never
//     the whole database.
//
// SaveTo/LoadFrom remain as the quiescent whole-image alternative for
// simulated devices; they refuse to run with updating transactions in
// flight (ErrActiveTransactions) and refuse paged databases (whose
// durable state is the directory itself).
//
// # Background migration
//
// With Config.BackgroundMigration, time-split migration leaves the
// insert path: an insert that would time split a leaf marks it and
// returns fast, and a per-shard worker later captures the historical
// half under a short read latch, burns it to the write-once device with
// NO latch held, and swaps the rewritten leaf in under a short write
// latch. The consistency contract, precisely:
//
//   - No version is ever unreachable, at any instant: the swap goes
//     through the same split machinery an inline split uses, atomically
//     under the shard's write latch, so a reader sees the pre-swap or
//     the post-swap node — never a torn one.
//   - Concurrent writes into a marked leaf are never lost: they land
//     under the write latch and partition into the current half at swap
//     time (commit timestamps always exceed the chosen split time); a
//     leaf rewritten since its capture is re-verified byte for byte
//     before the burn is trusted (the epoch/re-dirty check).
//   - A lost race (the leaf ran out of physical page headroom and split
//     inline first) abandons the burned node as unreferenced write-once
//     waste — Stats().Migrator.Abandoned — never links it in. Abandoned
//     payload counts as waste, not payload, in Stats().Device
//     (WastedBytes/DeadBytes), and on paged devices DB.Compact reclaims
//     it: the database does not age badly under lost races.
//   - Checkpoints fence the workers around the boundary, so v3 dumps
//     and v4 page captures stay boundary-exact. Marks are not durable:
//     a crash drops them and future inserts re-create them.
//   - Close finishes the in-flight migration and drops the queue (a
//     marked-but-unsplit leaf is a valid tree); DrainMigrations flushes
//     the queue synchronously first when every historical node must
//     reach the write-once device.
//
// Inline splitting (BackgroundMigration unset) remains the default and
// the recovery-replay behavior; no split-policy knob is inline-only —
// core.Policy applies identically in both modes, and the background
// path defers exactly the splits the policy would have performed. See
// docs/ARCHITECTURE.md for the migration state machine and its
// admissible interleavings.
//
// # Streaming reads
//
// Range reads are cursors: Cursor (and the iter.Seq2 form, Range) yields
// a snapshot lazily, page by page, with ScanOptions{Limit, Reverse,
// After, At, From, To} for pagination, descending order, per-scan time
// travel, and temporal windows. The latch contract, precisely: a cursor
// holds NO latch between Next calls. For snapshot cursors, each Next
// read-latches at most one shard, for the duration of a single leaf-page
// fetch (one root-to-leaf descent), then releases it before returning;
// crossing a shard boundary hands the latch off to the next shard in key
// order. Window-mode cursors (From/To set) are lazier than the old API
// but coarser than snapshot cursors: each Next materializes at most ONE
// shard's temporal scan under that shard's read latch, so the per-Next
// latch hold and allocation are bounded by a shard's window, not a leaf.
// Consistency across all hand-offs comes from the snapshot timestamp,
// not from latches — versions visible at a fixed time are immutable
// under the non-deletion policy — so a paused or abandoned cursor never
// blocks a writer and a Limit=1 snapshot cursor costs O(tree height)
// page reads, not a full scan. The slice-returning
// ScanAsOf/ScanRange/FetchBySecondary survive as thin Collect wrappers
// over cursors.
//
// Typical use:
//
//	d, _ := db.Open(db.Config{Shards: 8})
//	d.Update(func(tx *txn.Txn) error { return tx.Put(k, v) })
//	v, ok, _ := d.Get(k)              // current version
//	v, ok, _ = d.GetAsOf(k, t)        // rollback query
//	snap := d.ReadOnly()              // snapshot reader, no logical locks
//
//	// First page of the snapshot, two rows at a time:
//	cur := snap.Cursor(low, high, db.ScanOptions{Limit: 2})
//	for cur.Next() {
//		use(cur.Version())
//	}
//	// Next page, strictly after the last key seen, iterator form:
//	for v, err := range snap.Range(low, high, db.ScanOptions{After: lastKey, Limit: 2}) {
//		...
//	}
package db

import (
	"fmt"
	"iter"
	"os"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pagestore"
	"repro/internal/record"
	"repro/internal/secondary"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Config configures a database.
type Config struct {
	// Shards is the number of key-range partitions, each an independent
	// TSB-tree with its own latch (default 1, max record.MaxShards).
	// Shard boundaries are fixed at open time by record.ShardBoundary.
	Shards int
	// PageSize is the magnetic page size in bytes (default 4096).
	PageSize int
	// SectorSize is the WORM sector size in bytes (default 1024, the
	// paper's "typically about one kilobyte").
	SectorSize int
	// BufferPages is the page-cache capacity shared by all shards.
	// 0 selects the default of 256; NoCachePages (-1, or any negative
	// value) disables caching entirely so every page read reaches the
	// simulated device.
	BufferPages int
	// Policy is the TSB-tree splitting policy (default PolicyLastUpdate,
	// the paper's refinement).
	Policy core.Policy
	// Cost is the simulated latency model (default DefaultCostModel).
	Cost *storage.CostModel
	// PlatterSectors/Drives enable the optical-library model (0 = one
	// always-mounted disk).
	PlatterSectors uint64
	Drives         int
	// MaxKeySize / MaxValueSize bound record sizes (see core.Config).
	MaxKeySize   int
	MaxValueSize int
	// LeafCapacity / IndexCapacity override logical node sizes (tests).
	LeafCapacity  int
	IndexCapacity int

	// Dir enables the durable mode: the directory holds the write-ahead
	// log and checkpoints. Open creates it if needed, or recovers the
	// database it finds there (checkpoint reload + WAL tail replay).
	// With Dir set, a commit is acknowledged only once its redo record
	// is fsynced — group commit batches concurrent committers into one
	// fsync. See the package documentation's durability contract.
	Dir string
	// PagedDevices selects the paged durable mode (requires Dir): the
	// magnetic and WORM devices are disk files in Dir
	// (internal/pagestore) instead of in-memory simulations, the buffer
	// pool runs writeback with a dirty-page table, and a checkpoint
	// flushes dirty pages — O(dirty), not O(database) — then records a
	// page-consistent boundary. Recovery reopens the device files
	// (restoring any torn flush from the rollback journal and clipping
	// the torn WORM tail) and replays only the WAL tail. A directory is
	// paged or logical at creation, forever: reopening with the wrong
	// mode fails. Incompatible with BufferPages = NoCachePages (the
	// dirty-page table IS the pool).
	PagedDevices bool
	// BackgroundMigration moves time-split migration off the insert
	// path: an insert that would time split a leaf (burning its
	// historical half to the slow write-once device while holding the
	// shard's write latch) instead marks the leaf and returns fast, and
	// a per-shard background worker later captures the historical half
	// under a short read latch, burns it with NO latch held, and swaps
	// the rewritten leaf in under a short write latch. Readers always
	// see the pre- or post-swap node, never a torn one, and no version
	// is ever unreachable — see Stats().Migrator and the package
	// documentation's migration contract. Deferral needs physical page
	// headroom: with LeafCapacity equal to PageSize (the default) a
	// logically-overfull leaf has nowhere to grow and splits inline, so
	// set LeafCapacity below PageSize to give the migrator room.
	// Works for in-memory, durable, and paged databases; recovery
	// replay always splits inline (marks are not durable state).
	BackgroundMigration bool
	// CheckpointBytes triggers a background incremental checkpoint
	// (which truncates the log) once the WAL has grown by this many
	// bytes since the last one. 0 selects the 4 MiB default; negative
	// disables background checkpointing (DB.Checkpoint still works).
	// Durable mode only.
	CheckpointBytes int64
	// CompactDeadBytes triggers a background WORM compaction (see
	// DB.Compact) once the payload of unreferenced write-once runs —
	// Stats().Device.DeadBytes: abandoned background migrations, crash
	// orphans — exceeds this many bytes. 0 disables background
	// compaction (DB.Compact still works). Paged durable mode only.
	CompactDeadBytes int64
	// SlowOpThreshold is the duration at or above which a completed
	// background span (checkpoint, compaction round, migration) is
	// copied into the slow-op ring of the event log (DB.Events). 0
	// selects the 25ms default; negative disables the slow-op ring (the
	// main event ring still records everything).
	SlowOpThreshold time.Duration
	// Secondaries registers secondary indexes at open time, equivalent
	// to calling CreateSecondary for each before any writes. Reopening
	// a durable database that had secondary indexes REQUIRES the same
	// set here: extraction functions are code, not data, and recovery
	// replays them.
	Secondaries map[string]SecondaryExtract

	// logWrap wraps every log and checkpoint file the durable mode
	// opens; crash tests inject torn-write faults through it.
	logWrap func(storage.LogFile) storage.LogFile
	// blockWrap wraps the paged mode's device files (page file, burn
	// file, rollback journal); crash tests inject torn positioned
	// writes through it.
	blockWrap func(storage.BlockFile) storage.BlockFile
}

// NoCachePages is the Config.BufferPages value that disables the page
// cache (0 means "default capacity", so disabling needs its own
// sentinel).
const NoCachePages = -1

// SecondaryExtract derives the secondary key from a record value. A nil
// return means the record has no entry in that index.
type SecondaryExtract func(value []byte) record.Key

type secondaryIndex struct {
	index   *secondary.Index
	extract SecondaryExtract
}

// DB is a multiversion database instance. All public methods are safe for
// concurrent use; see the package documentation for what is latched and
// what is wait-free.
type DB struct {
	mag   storage.PageDevice
	pool  *buffer.Pool
	worm  storage.WORMDevice
	store *shardedStore
	tm    *txn.Manager

	// Paged-mode devices (nil otherwise): the same objects as mag/worm,
	// concretely typed for the checkpoint flush protocol.
	pf *pagestore.PageFile
	bf *pagestore.BurnFile
	// epoch is the installed paged-checkpoint epoch; secTag the flush
	// group of the secondary indexes (shard i uses group i).
	epoch  uint64
	secTag int

	// mig is the background time-split migrator
	// (Config.BackgroundMigration); nil when migration is inline.
	mig *migrator

	// deadBytes is the payload carried by write-once runs nothing
	// references — abandoned background migrations, post-crash orphans —
	// i.e. capacity the device counters still report as payload but that
	// no read path can ever reach. Carried across reopens in the v4
	// checkpoint (wal.PagedMeta.DeadBytes), folded into
	// Stats().Device.WastedBytes, zeroed by a completed compaction.
	deadBytes atomic.Uint64
	// Maintenance accounting, atomic because Stats() reads it without
	// cpMu: checkpoint pause tracking (quiesceTimed) and compaction
	// counters (Compact). See CheckpointStats / CompactionStats.
	cpCount, cpPauseNanos, cpLastPause, cpMaxPause                   atomic.Uint64
	coRounds, coAborted, coRunsMoved, coMovedBytes, coReclaimedBytes atomic.Uint64
	coPauseNanos                                                     atomic.Uint64
	// coEvery is the background compaction trigger: a maintenance tick
	// compacts once deadBytes exceeds it (<=0 disables).
	coEvery int64

	// reg names every component's instruments for exposition; events is
	// the background-job span log. Built by wireObs on every open path,
	// so both are always non-nil on a DB the package returned.
	reg    *obs.Registry
	events *obs.EventLog
	// Migration phase histograms (capture/burn/swap latch regimes). They
	// live on the DB, not the migrator, so the series exist — at zero —
	// even when migration is inline or off.
	migCapture, migBurn, migSwap obs.Histogram
	// Whole-job duration histograms for the maintenance spans.
	cpHist obs.Histogram
	coHist obs.Histogram

	// secMu latches the secondary indexes: write-held while commit
	// posting applies index maintenance, read-held by lookups.
	secMu       sync.RWMutex //tsb:latch level=6 name=secondary
	secondaries map[string]*secondaryIndex

	policy      core.Policy
	bufferPages int

	// Durable-mode state (nil/zero for in-memory databases).
	wal     *wal.Log
	dir     string
	dirLock *os.File // exclusive flock on dir/LOCK, held until Close
	logWrap func(storage.LogFile) storage.LogFile
	// cpMu serializes checkpoints (manual and background). The WAL
	// itself anchors the "bytes since last checkpoint" gauge
	// (wal.Log.MarkCheckpoint / Stats().WAL.BacklogBytes).
	cpMu    sync.Mutex //tsb:latch level=1 name=checkpoint
	cpEvery int64      // background trigger; <=0 disabled
	cpErr   error      // sticky first background-checkpoint error (under cpMu)
	stopCp  chan struct{}
	cpDone  sync.WaitGroup
	closed  bool
}

func (cfg *Config) withDefaults() error {
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Shards < 1 || cfg.Shards > record.MaxShards {
		return fmt.Errorf("db: Shards %d outside [1,%d]", cfg.Shards, record.MaxShards)
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = 4096
	}
	if cfg.SectorSize == 0 {
		cfg.SectorSize = 1024
	}
	if cfg.BufferPages == 0 {
		cfg.BufferPages = 256
	}
	if cfg.BufferPages < 0 {
		cfg.BufferPages = NoCachePages
	}
	if (cfg.Policy == core.Policy{}) {
		cfg.Policy = core.PolicyLastUpdate
	}
	if cfg.PagedDevices {
		if cfg.Dir == "" {
			return fmt.Errorf("db: PagedDevices requires Dir")
		}
		if cfg.BufferPages == NoCachePages {
			return fmt.Errorf("db: PagedDevices requires the buffer pool (BufferPages must not be NoCachePages)")
		}
	}
	return nil
}

// Open creates a new database on fresh simulated devices — or, when
// cfg.Dir is set, opens the durable database in that directory,
// recovering whatever a previous process left there: the latest
// checkpoint is reloaded and the WAL tail replayed over it, yielding
// exactly the acknowledged commits (see the package documentation's
// durability contract).
func Open(cfg Config) (*DB, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	if cfg.Dir != "" {
		return openDurable(cfg)
	}
	d, err := newEmpty(cfg)
	if err != nil {
		return nil, err
	}
	for name, extract := range cfg.Secondaries {
		if err := d.CreateSecondary(name, extract); err != nil {
			return nil, err
		}
	}
	d.tm = txn.NewManager(d.store, d.store.Now())
	d.tm.SetCommitHook(d.onCommit)
	d.wireObs(cfg)
	if cfg.BackgroundMigration {
		d.startMigrator()
	}
	return d, nil
}

// newEmpty builds a database on fresh simulated devices with no
// transaction manager, hook, log, or secondaries wired yet: the common
// substrate of the in-memory and durable open paths. Each caller
// constructs d.tm itself — the durable path only knows the clock after
// recovery, and a single construction point per path keeps the clock
// seeding explicit.
func newEmpty(cfg Config) (*DB, error) {
	cost := storage.DefaultCostModel()
	if cfg.Cost != nil {
		cost = *cfg.Cost
	}

	d := &DB{
		secondaries: make(map[string]*secondaryIndex),
		policy:      cfg.Policy,
		bufferPages: cfg.BufferPages,
	}
	d.mag = storage.NewMagneticDisk(cfg.PageSize, cost)
	d.worm = storage.NewWORMDisk(storage.WORMConfig{
		SectorSize:     cfg.SectorSize,
		Cost:           cost,
		PlatterSectors: cfg.PlatterSectors,
		Drives:         cfg.Drives,
	})
	pages := d.pages()
	trees := make([]*core.Tree, cfg.Shards)
	for i := range trees {
		tree, err := core.New(pages, d.worm, core.Config{
			Policy:        cfg.Policy,
			MaxKeySize:    cfg.MaxKeySize,
			MaxValueSize:  cfg.MaxValueSize,
			LeafCapacity:  cfg.LeafCapacity,
			IndexCapacity: cfg.IndexCapacity,
		})
		if err != nil {
			return nil, err
		}
		trees[i] = tree
	}
	d.store = newShardedStore(trees)
	return d, nil
}

// defaultSlowOpThreshold is the slow-op ring threshold when
// Config.SlowOpThreshold is 0.
const defaultSlowOpThreshold = 25 * time.Millisecond

// wireObs builds the metric registry and event log and names every
// component's instruments in them. Called once per open path (Open,
// openDurable, LoadFrom) after the transaction manager exists.
// Instruments are component-owned struct fields that record from birth;
// registration only names them for exposition, so nothing here is on a
// hot path and order relative to first use does not matter.
func (d *DB) wireObs(cfg Config) {
	d.reg = obs.NewRegistry()
	thresh := cfg.SlowOpThreshold
	if thresh == 0 {
		thresh = defaultSlowOpThreshold
	}
	if thresh < 0 {
		thresh = 0
	}
	d.events = obs.NewEventLog(1024, thresh)
	d.store.registerMetrics(d.reg)
	d.tm.RegisterMetrics(d.reg)
	if d.pool != nil {
		d.pool.RegisterMetrics(d.reg)
	}
	if d.wal != nil {
		d.wal.RegisterMetrics(d.reg)
	}
	if d.pf != nil {
		d.pf.RegisterMetrics(d.reg)
	}
	if d.bf != nil {
		d.bf.RegisterMetrics(d.reg)
	}
	// Migration phase series exist in every mode (zero when migration is
	// inline or off), so dashboards and scrape checks need no flag
	// coordination with Config.BackgroundMigration.
	phases := []struct {
		name string
		h    *obs.Histogram
	}{{"capture", &d.migCapture}, {"burn", &d.migBurn}, {"swap", &d.migSwap}}
	for _, p := range phases {
		d.reg.RegisterHistogram("tsb_migrator_phase_seconds",
			"background time-split migration phase duration (capture: read latch; burn: no latch; swap: write latch)",
			p.h, obs.Label{Key: "phase", Value: p.name})
	}
	d.reg.GaugeFunc("tsb_migrator_queue_depth", "deferred-split tickets queued", func() float64 {
		return float64(d.mig.statsSnapshot().QueueDepth)
	})
	d.reg.RegisterHistogram("tsb_checkpoint_seconds", "whole-checkpoint duration, quiesce windows included", &d.cpHist)
	d.reg.RegisterHistogram("tsb_compaction_seconds", "WORM compaction round duration", &d.coHist)
}

// Metrics returns the database's metric registry: every engine
// instrument — commit latency, fsync latency, shard latch contention,
// buffer hit rates, device latency, migration phases — named for
// exposition (obs.WritePrometheus / WriteJSON). Always non-nil.
func (d *DB) Metrics() *obs.Registry { return d.reg }

// Events returns the background-job event log: completed checkpoint,
// compaction, and migration spans, with a slow-op ring past
// Config.SlowOpThreshold. Always non-nil.
func (d *DB) Events() *obs.EventLog { return d.events }

// pages returns the page store the trees share: the buffer pool when
// caching is enabled, the raw device otherwise.
func (d *DB) pages() storage.PageStore {
	if d.bufferPages > 0 {
		if d.pool == nil {
			d.pool = buffer.NewPool(d.mag, d.bufferPages)
		}
		return d.pool
	}
	return d.mag
}

// secondaryPages returns the page store a secondary index's tree writes
// through: in paged mode the pool view tagged with the secondary flush
// group, so checkpoints can pre-flush the indexes as their own batch.
func (d *DB) secondaryPages() storage.PageStore {
	if d.pf != nil {
		return d.pool.Tagged(d.secTag)
	}
	return d.pages()
}

// CreateSecondary registers a secondary index maintained from commit time
// onward. It must be called before any data is written. On a durable
// database the registration is sealed into a fresh checkpoint
// immediately, so reopening the directory always knows the index exists
// (and demands its extractor via Config.Secondaries).
func (d *DB) CreateSecondary(name string, extract SecondaryExtract) error {
	if d.store.stats().Inserts > 0 {
		return fmt.Errorf("db: secondary index %q must be created before any writes", name)
	}
	d.secMu.Lock()
	if _, dup := d.secondaries[name]; dup {
		d.secMu.Unlock()
		return fmt.Errorf("db: secondary index %q already exists", name)
	}
	ix, err := secondary.New(name, d.secondaryPages(), d.worm, core.Config{Policy: d.policy})
	if err != nil {
		d.secMu.Unlock()
		return err
	}
	d.secondaries[name] = &secondaryIndex{index: ix, extract: extract}
	d.secMu.Unlock()
	if d.wal != nil {
		if err := d.Checkpoint(); err != nil {
			return fmt.Errorf("db: sealing secondary index %q: %w", name, err)
		}
	}
	return nil
}

// onCommit maintains the secondary indexes; it runs under the transaction
// manager's commit mutex for every committed key, write-holding the
// secondary latch.
func (d *DB) onCommit(ct record.Timestamp, oldV record.Version, oldOK bool, newV record.Version) error {
	d.secMu.Lock()
	defer d.secMu.Unlock()
	for _, s := range d.secondaries {
		var oldSkey record.Key
		hadOld := false
		if oldOK && !oldV.Tombstone {
			if sk := s.extract(oldV.Value); sk != nil {
				oldSkey = sk
				hadOld = true
			}
		}
		var newSkey record.Key
		removed := true
		if !newV.Tombstone {
			if sk := s.extract(newV.Value); sk != nil {
				newSkey = sk
				removed = false
			}
		}
		if !hadOld && removed {
			continue
		}
		//tsb:allow latchio -- secondary-tree time splits burn inline under secMu; deferring them to the migrator is an open item
		if err := s.index.Apply(ct, newV.Key, oldSkey, hadOld, newSkey, removed); err != nil {
			return err
		}
	}
	return nil
}

// Begin starts an updating transaction.
func (d *DB) Begin() *txn.Txn { return d.tm.Begin() }

// Update runs fn in a transaction, committing on success.
func (d *DB) Update(fn func(*txn.Txn) error) error { return d.tm.Update(fn) }

// ReadOnly starts a read-only transaction at the current time. It takes
// no logical locks; see the package documentation.
func (d *DB) ReadOnly() *txn.ReadTxn { return d.tm.ReadOnly() }

// ReadAt starts a read-only transaction at a past time.
func (d *DB) ReadAt(at record.Timestamp) *txn.ReadTxn { return d.tm.ReadAt(at) }

// Get returns the most recent committed version of key k.
func (d *DB) Get(k record.Key) (record.Version, bool, error) {
	return d.tm.ReadOnly().Get(k)
}

// GetAsOf returns the version of key k valid at time at.
func (d *DB) GetAsOf(k record.Key, at record.Timestamp) (record.Version, bool, error) {
	return d.tm.ReadAt(at).Get(k)
}

// ScanOptions configures a streaming read: Limit, Reverse, a pagination
// resume key (After), a per-scan snapshot time (At), or a temporal
// window (From/To). See txn.ScanOptions.
type ScanOptions = txn.ScanOptions

// Cursor is a lazy streaming read over the database. See txn.Cursor for
// the exact latch contract (none held between Next calls).
type Cursor = txn.Cursor

// Cursor opens a streaming read over keys in [low, high) at the current
// time (or as directed by opts): the cursor form of ScanAsOf/ScanRange,
// through a read-only transaction that takes no logical locks.
func (d *DB) Cursor(low record.Key, high record.Bound, opts ScanOptions) *Cursor {
	return d.ReadOnly().Cursor(low, high, opts)
}

// Range returns a Go iterator over the versions Cursor would yield; a
// non-nil error is yielded as the final pair.
func (d *DB) Range(low record.Key, high record.Bound, opts ScanOptions) iter.Seq2[record.Version, error] {
	return d.ReadOnly().Range(low, high, opts)
}

// ScanAsOf returns the snapshot of [low, high) at time at, sorted by key.
func (d *DB) ScanAsOf(at record.Timestamp, low record.Key, high record.Bound) ([]record.Version, error) {
	return d.tm.ReadAt(at).Scan(low, high)
}

// History returns every committed version of key k, oldest first.
func (d *DB) History(k record.Key) ([]record.Version, error) {
	return d.tm.History(k)
}

// ScanRange returns the versions of keys in [low, high) valid at any
// moment in [from, to), sorted by (key, time) — e.g. "all balance changes
// of accounts A..B during March".
func (d *DB) ScanRange(low record.Key, high record.Bound, from, to record.Timestamp) ([]record.Version, error) {
	return d.tm.ScanRange(low, high, from, to)
}

// Diff reports every key in [low, high) whose visible state differs
// between times from and to, sorted by key.
func (d *DB) Diff(low record.Key, high record.Bound, from, to record.Timestamp) ([]core.Change, error) {
	return d.tm.Diff(low, high, from, to)
}

// Now returns the last commit timestamp.
func (d *DB) Now() record.Timestamp { return d.tm.Now() }

// LookupSecondary returns the primary keys carrying the secondary key at
// time at, using only the secondary index.
func (d *DB) LookupSecondary(name string, skey record.Key, at record.Timestamp) ([]record.Key, error) {
	d.secMu.RLock()
	defer d.secMu.RUnlock()
	s, ok := d.secondaries[name]
	if !ok {
		return nil, fmt.Errorf("db: no secondary index %q", name)
	}
	return s.index.LookupAsOf(skey, at)
}

// CountSecondary counts records carrying the secondary key at time at.
func (d *DB) CountSecondary(name string, skey record.Key, at record.Timestamp) (int, error) {
	d.secMu.RLock()
	defer d.secMu.RUnlock()
	s, ok := d.secondaries[name]
	if !ok {
		return 0, fmt.Errorf("db: no secondary index %q", name)
	}
	return s.index.CountAsOf(skey, at)
}

// SecondaryCursor streams the records that carried a secondary key at a
// fixed time, in primary-key order (descending with ScanOptions.Reverse).
// The primary-key list is resolved eagerly through the secondary index —
// a short secondary-index read latch, released before the cursor is
// returned — and the records themselves are fetched lazily from the
// primary index, one point lookup per Next, so like every cursor it
// holds no latch between Next calls.
type SecondaryCursor struct {
	reader *txn.ReadTxn
	pks    []record.Key
	limit  int
	cur    record.Version
	n      int
	closed bool
	err    error
}

// FetchBySecondaryCursor opens a streaming fetch of the records carrying
// skey at time at, resolved through the primary index (§3.6). Only
// Limit and Reverse of opts apply; the snapshot time is at.
func (d *DB) FetchBySecondaryCursor(name string, skey record.Key, at record.Timestamp, opts ScanOptions) (*SecondaryCursor, error) {
	pks, err := d.LookupSecondary(name, skey, at)
	if err != nil {
		return nil, err
	}
	if opts.Reverse {
		slices.Reverse(pks)
	}
	return &SecondaryCursor{reader: d.tm.ReadAt(at), pks: pks, limit: opts.Limit}, nil
}

// Next advances to the next record and reports whether one is available.
func (c *SecondaryCursor) Next() bool {
	if c.err != nil || c.closed {
		return false
	}
	for len(c.pks) > 0 {
		if c.limit > 0 && c.n >= c.limit {
			return false
		}
		pk := c.pks[0]
		c.pks = c.pks[1:]
		v, ok, err := c.reader.Get(pk)
		if err != nil {
			c.err = err
			return false
		}
		if !ok {
			continue
		}
		c.cur = v
		c.n++
		return true
	}
	return false
}

// Version returns the record the cursor is positioned on. It must only
// be called after a successful Next.
func (c *SecondaryCursor) Version() record.Version { return c.cur }

// Err returns the first error the cursor hit, if any.
func (c *SecondaryCursor) Err() error { return c.err }

// Close terminates the cursor; it holds nothing, so Close only stops
// further Next calls.
func (c *SecondaryCursor) Close() error { c.closed = true; return nil }

// Collect drains the cursor into a slice.
func (c *SecondaryCursor) Collect() ([]record.Version, error) {
	var out []record.Version
	for c.Next() {
		out = append(out, c.Version())
	}
	if c.err != nil {
		return nil, c.err
	}
	return out, nil
}

// FetchBySecondary resolves a secondary lookup through the primary index:
// <timestamp, secondary key, primary key> entries point back at primary
// records by key and time (§3.6). It is a thin Collect wrapper over
// FetchBySecondaryCursor.
func (d *DB) FetchBySecondary(name string, skey record.Key, at record.Timestamp) ([]record.Version, error) {
	c, err := d.FetchBySecondaryCursor(name, skey, at, ScanOptions{})
	if err != nil {
		return nil, err
	}
	return c.Collect()
}

// DeviceStats is the two-tier storage accounting of the paper's cost
// function CS = SpaceM·CM + SpaceO·CO, derived from the device counters
// for both the simulated and the file-backed (paged) devices.
type DeviceStats struct {
	// Paged reports whether the devices are disk files
	// (Config.PagedDevices) rather than in-memory simulations.
	Paged bool
	// SpaceM is the magnetic space consumed in bytes (pages in use ×
	// page size) — the erasable current database plus index.
	SpaceM uint64
	// SpaceO is the optical capacity consumed in bytes (sectors burned
	// × sector size); BurnedBytes is its alias in the paper's
	// burned-vs-payload framing.
	SpaceO uint64
	// PayloadBytes of SpaceO hold live data; WastedBytes is the burned
	// remainder: partial sectors plus DeadBytes. DeadBytes is the
	// payload of runs nothing references — abandoned background
	// migrations, orphaned post-crash burns — which the raw device
	// counters report as payload but which no read path can reach, so
	// here it counts as waste. Compaction (DB.Compact) reclaims it.
	PayloadBytes uint64
	WastedBytes  uint64
	DeadBytes    uint64
	// Utilization is PayloadBytes / SpaceO (1 when nothing is burned).
	Utilization float64
	// DirtyPages is the current size of the buffer pool's dirty-page
	// table — the pages the next checkpoint will flush. Always 0
	// outside the paged mode (the pool writes through).
	DirtyPages int
}

// BurnedBytes returns SpaceO: the total write-once capacity consumed.
func (s DeviceStats) BurnedBytes() uint64 { return s.SpaceO }

// Stats aggregates the accounting of every component.
type Stats struct {
	// Tree sums the structural counters over all shard trees.
	Tree     core.Stats
	Txn      txn.Stats
	Magnetic storage.MagneticStats
	WORM     storage.WORMStats
	Buffer   buffer.Stats
	// Device condenses Magnetic/WORM/Buffer into the paper's space
	// accounting: SpaceM, SpaceO, burned vs. payload, and the
	// dirty-page count the next paged checkpoint will flush.
	Device DeviceStats
	// WAL is the write-ahead log accounting (zero for in-memory
	// databases). Txn.Committed / WAL.Syncs is the group-commit fsync
	// amortization.
	WAL wal.Stats
	// Migrator is the background time-split migrator's accounting:
	// queue depth, nodes migrated, bytes burned off-latch, abandoned
	// burns, and the split-under-latch time it exists to shrink
	// (SplitLatchNanos is reported for inline databases too).
	Migrator MigratorStats
	// Checkpoint is the checkpoint pause accounting: how long, in
	// total and per checkpoint, commit posting was quiesced for
	// boundary captures. The fuzzy paged capture exists to shrink it.
	Checkpoint CheckpointStats
	// Compaction is the WORM compaction accounting (DB.Compact).
	Compaction CompactionStats
	// Secondaries maps index name to its tree stats.
	Secondaries map[string]core.Stats
}

// Stats returns a snapshot of all counters.
func (d *DB) Stats() Stats {
	st := Stats{
		Tree:        d.store.stats(),
		Txn:         d.tm.Stats(),
		Magnetic:    d.mag.Stats(),
		WORM:        d.worm.Stats(),
		Secondaries: make(map[string]core.Stats),
	}
	if d.wal != nil {
		st.WAL = d.wal.Stats()
	}
	if d.pool != nil {
		st.Buffer = d.pool.Stats()
	}
	st.Migrator = d.mig.statsSnapshot()
	latchNanos, fallbacks, pending := d.store.migrationCounters()
	st.Migrator.SplitLatchNanos = latchNanos
	st.Migrator.InlineFallbacks = fallbacks
	st.Migrator.PendingNodes = pending
	st.Checkpoint = CheckpointStats{
		Checkpoints:    d.cpCount.Load(),
		PauseNanos:     d.cpPauseNanos.Load(),
		LastPauseNanos: d.cpLastPause.Load(),
		MaxPauseNanos:  d.cpMaxPause.Load(),
	}
	st.Compaction = CompactionStats{
		Rounds:         d.coRounds.Load(),
		Aborted:        d.coAborted.Load(),
		RunsMoved:      d.coRunsMoved.Load(),
		MovedBytes:     d.coMovedBytes.Load(),
		ReclaimedBytes: d.coReclaimedBytes.Load(),
		PauseNanos:     d.coPauseNanos.Load(),
	}
	// Reclassify dead payload (runs nothing references) as waste: the
	// device counters cannot know a burned run became unreachable, the
	// engine can — abandoned migrations and reopen orphans feed
	// d.deadBytes, a completed compaction zeroes it.
	dead := d.deadBytes.Load()
	worm := st.WORM
	if dead > worm.PayloadBytes {
		dead = worm.PayloadBytes
	}
	worm.PayloadBytes -= dead
	worm.WastedBytes += dead
	st.Device = DeviceStats{
		Paged:        d.pf != nil,
		SpaceM:       st.Magnetic.BytesInUse(d.mag.PageSize()),
		SpaceO:       worm.BytesBurned(d.worm.SectorSize()),
		PayloadBytes: worm.PayloadBytes,
		WastedBytes:  worm.WastedBytes,
		DeadBytes:    dead,
		Utilization:  worm.Utilization(d.worm.SectorSize()),
		DirtyPages:   st.Buffer.DirtyPages,
	}
	d.secMu.RLock()
	for name, s := range d.secondaries {
		st.Secondaries[name] = s.index.Tree().Stats()
	}
	d.secMu.RUnlock()
	return st
}

// Shards returns the number of key-range partitions.
func (d *DB) Shards() int { return len(d.store.shards) }

// WithShardTree runs fn with shard i's TSB-tree while write-holding that
// shard's latch, excluding every concurrent reader and writer of the
// shard for the duration of fn: the safe accessor for dump tools,
// invariant checks, and recovery surgery. fn must not retain the tree
// past its return.
func (d *DB) WithShardTree(i int, fn func(*core.Tree) error) error {
	if i < 0 || i >= len(d.store.shards) {
		return fmt.Errorf("db: shard %d outside [0,%d)", i, len(d.store.shards))
	}
	sh := d.store.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return fn(sh.tree)
}

// Tree exposes the first shard's TSB-tree without any latching.
//
// Deprecated: the returned tree races with concurrent transactions; use
// WithShardTree, which holds the shard latch around the access.
func (d *DB) Tree() *core.Tree { return d.store.shards[0].tree }

// ShardTree exposes shard i's TSB-tree without any latching.
//
// Deprecated: the returned tree races with concurrent transactions; use
// WithShardTree, which holds the shard latch around the access.
func (d *DB) ShardTree(i int) *core.Tree { return d.store.shards[i].tree }

// Devices exposes the storage devices for experiment accounting: the
// simulated disks of an in-memory database, or the file-backed page and
// burn stores of a paged durable one.
func (d *DB) Devices() (storage.PageDevice, storage.WORMDevice) { return d.mag, d.worm }

// CheckInvariants verifies every shard tree (including that each key
// routes to the shard holding it) and every secondary tree.
func (d *DB) CheckInvariants() error {
	if err := d.store.checkInvariants(); err != nil {
		return fmt.Errorf("primary: %w", err)
	}
	d.secMu.RLock()
	defer d.secMu.RUnlock()
	for name, s := range d.secondaries {
		if err := s.index.Tree().CheckInvariants(); err != nil {
			return fmt.Errorf("secondary %q: %w", name, err)
		}
	}
	return nil
}
