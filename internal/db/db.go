// Package db is the public face of the reproduction: a multiversion,
// timestamped database engine with a non-deletion policy, backed by a
// Time-Split B-tree over a simulated magnetic disk (current data) and a
// simulated write-once optical disk (historical data), with transactions,
// lock-free read-only queries, and secondary indexes — the complete system
// of Lomet & Salzberg, SIGMOD 1989.
//
// Typical use:
//
//	d, _ := db.Open(db.Config{})
//	d.Update(func(tx *txn.Txn) error { return tx.Put(k, v) })
//	v, ok, _ := d.Get(k)              // current version
//	v, ok, _ = d.GetAsOf(k, t)        // rollback query
//	snap := d.ReadOnly()              // lock-free snapshot reader
package db

import (
	"fmt"
	"sort"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/record"
	"repro/internal/secondary"
	"repro/internal/storage"
	"repro/internal/txn"
)

// Config configures a database.
type Config struct {
	// PageSize is the magnetic page size in bytes (default 4096).
	PageSize int
	// SectorSize is the WORM sector size in bytes (default 1024, the
	// paper's "typically about one kilobyte").
	SectorSize int
	// BufferPages is the page-cache capacity (default 256; 0 disables
	// caching).
	BufferPages int
	// Policy is the TSB-tree splitting policy (default PolicyLastUpdate,
	// the paper's refinement).
	Policy core.Policy
	// Cost is the simulated latency model (default DefaultCostModel).
	Cost *storage.CostModel
	// PlatterSectors/Drives enable the optical-library model (0 = one
	// always-mounted disk).
	PlatterSectors uint64
	Drives         int
	// MaxKeySize / MaxValueSize bound record sizes (see core.Config).
	MaxKeySize   int
	MaxValueSize int
	// LeafCapacity / IndexCapacity override logical node sizes (tests).
	LeafCapacity  int
	IndexCapacity int
}

// SecondaryExtract derives the secondary key from a record value. A nil
// return means the record has no entry in that index.
type SecondaryExtract func(value []byte) record.Key

type secondaryIndex struct {
	index   *secondary.Index
	extract SecondaryExtract
}

// DB is a multiversion database instance. All public methods are safe for
// concurrent use (the transaction manager serializes structural access;
// read-only transactions take no logical locks).
type DB struct {
	mag  *storage.MagneticDisk
	pool *buffer.Pool
	worm *storage.WORMDisk
	tree *core.Tree
	tm   *txn.Manager

	secondaries map[string]*secondaryIndex
	bufferPages int
}

// Open creates a new database on fresh simulated devices.
func Open(cfg Config) (*DB, error) {
	if cfg.PageSize == 0 {
		cfg.PageSize = 4096
	}
	if cfg.SectorSize == 0 {
		cfg.SectorSize = 1024
	}
	if cfg.BufferPages == 0 {
		cfg.BufferPages = 256
	}
	cost := storage.DefaultCostModel()
	if cfg.Cost != nil {
		cost = *cfg.Cost
	}
	policy := cfg.Policy
	if (policy == core.Policy{}) {
		policy = core.PolicyLastUpdate
	}

	d := &DB{secondaries: make(map[string]*secondaryIndex), bufferPages: cfg.BufferPages}
	d.mag = storage.NewMagneticDisk(cfg.PageSize, cost)
	d.worm = storage.NewWORMDisk(storage.WORMConfig{
		SectorSize:     cfg.SectorSize,
		Cost:           cost,
		PlatterSectors: cfg.PlatterSectors,
		Drives:         cfg.Drives,
	})
	var pages storage.PageStore = d.mag
	if cfg.BufferPages > 0 {
		d.pool = buffer.NewPool(d.mag, cfg.BufferPages)
		pages = d.pool
	}
	tree, err := core.New(pages, d.worm, core.Config{
		Policy:        policy,
		MaxKeySize:    cfg.MaxKeySize,
		MaxValueSize:  cfg.MaxValueSize,
		LeafCapacity:  cfg.LeafCapacity,
		IndexCapacity: cfg.IndexCapacity,
	})
	if err != nil {
		return nil, err
	}
	d.tree = tree
	d.tm = txn.NewManager(tree, tree.Now())
	d.tm.SetCommitHook(d.onCommit)
	return d, nil
}

// CreateSecondary registers a secondary index maintained from commit time
// onward. It must be called before any data is written.
func (d *DB) CreateSecondary(name string, extract SecondaryExtract) error {
	if d.tree.Stats().Inserts > 0 {
		return fmt.Errorf("db: secondary index %q must be created before any writes", name)
	}
	if _, dup := d.secondaries[name]; dup {
		return fmt.Errorf("db: secondary index %q already exists", name)
	}
	var pages storage.PageStore = d.mag
	if d.pool != nil {
		pages = d.pool
	}
	ix, err := secondary.New(name, pages, d.worm, core.Config{Policy: d.tree.Policy()})
	if err != nil {
		return err
	}
	d.secondaries[name] = &secondaryIndex{index: ix, extract: extract}
	return nil
}

// onCommit maintains the secondary indexes; it runs under the transaction
// manager's lock for every committed key.
func (d *DB) onCommit(ct record.Timestamp, oldV record.Version, oldOK bool, newV record.Version) error {
	for _, s := range d.secondaries {
		var oldSkey record.Key
		hadOld := false
		if oldOK && !oldV.Tombstone {
			if sk := s.extract(oldV.Value); sk != nil {
				oldSkey = sk
				hadOld = true
			}
		}
		var newSkey record.Key
		removed := true
		if !newV.Tombstone {
			if sk := s.extract(newV.Value); sk != nil {
				newSkey = sk
				removed = false
			}
		}
		if !hadOld && removed {
			continue
		}
		if err := s.index.Apply(ct, newV.Key, oldSkey, hadOld, newSkey, removed); err != nil {
			return err
		}
	}
	return nil
}

// Begin starts an updating transaction.
func (d *DB) Begin() *txn.Txn { return d.tm.Begin() }

// Update runs fn in a transaction, committing on success.
func (d *DB) Update(fn func(*txn.Txn) error) error { return d.tm.Update(fn) }

// ReadOnly starts a lock-free read-only transaction at the current time.
func (d *DB) ReadOnly() *txn.ReadTxn { return d.tm.ReadOnly() }

// ReadAt starts a lock-free read-only transaction at a past time.
func (d *DB) ReadAt(at record.Timestamp) *txn.ReadTxn { return d.tm.ReadAt(at) }

// Get returns the most recent committed version of key k.
func (d *DB) Get(k record.Key) (record.Version, bool, error) {
	return d.tm.ReadOnly().Get(k)
}

// GetAsOf returns the version of key k valid at time at.
func (d *DB) GetAsOf(k record.Key, at record.Timestamp) (record.Version, bool, error) {
	return d.tm.ReadAt(at).Get(k)
}

// ScanAsOf returns the snapshot of [low, high) at time at, sorted by key.
func (d *DB) ScanAsOf(at record.Timestamp, low record.Key, high record.Bound) ([]record.Version, error) {
	return d.tm.ReadAt(at).Scan(low, high)
}

// History returns every committed version of key k, oldest first.
func (d *DB) History(k record.Key) ([]record.Version, error) {
	return d.tm.History(k)
}

// ScanRange returns the versions of keys in [low, high) valid at any
// moment in [from, to), sorted by (key, time) — e.g. "all balance changes
// of accounts A..B during March".
func (d *DB) ScanRange(low record.Key, high record.Bound, from, to record.Timestamp) ([]record.Version, error) {
	return d.tm.ScanRange(low, high, from, to)
}

// Diff reports every key in [low, high) whose visible state differs
// between times from and to, sorted by key.
func (d *DB) Diff(low record.Key, high record.Bound, from, to record.Timestamp) ([]core.Change, error) {
	return d.tm.Diff(low, high, from, to)
}

// Now returns the last commit timestamp.
func (d *DB) Now() record.Timestamp { return d.tm.Now() }

// LookupSecondary returns the primary keys carrying the secondary key at
// time at, using only the secondary index.
func (d *DB) LookupSecondary(name string, skey record.Key, at record.Timestamp) ([]record.Key, error) {
	s, ok := d.secondaries[name]
	if !ok {
		return nil, fmt.Errorf("db: no secondary index %q", name)
	}
	return s.index.LookupAsOf(skey, at)
}

// CountSecondary counts records carrying the secondary key at time at.
func (d *DB) CountSecondary(name string, skey record.Key, at record.Timestamp) (int, error) {
	s, ok := d.secondaries[name]
	if !ok {
		return 0, fmt.Errorf("db: no secondary index %q", name)
	}
	return s.index.CountAsOf(skey, at)
}

// FetchBySecondary resolves a secondary lookup through the primary index:
// <timestamp, secondary key, primary key> entries point back at primary
// records by key and time (§3.6).
func (d *DB) FetchBySecondary(name string, skey record.Key, at record.Timestamp) ([]record.Version, error) {
	pks, err := d.LookupSecondary(name, skey, at)
	if err != nil {
		return nil, err
	}
	reader := d.tm.ReadAt(at)
	out := make([]record.Version, 0, len(pks))
	for _, pk := range pks {
		v, ok, err := reader.Get(pk)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Less(out[j].Key) })
	return out, nil
}

// Stats aggregates the accounting of every component.
type Stats struct {
	Tree     core.Stats
	Txn      txn.Stats
	Magnetic storage.MagneticStats
	WORM     storage.WORMStats
	Buffer   buffer.Stats
	// Secondaries maps index name to its tree stats.
	Secondaries map[string]core.Stats
}

// Stats returns a snapshot of all counters.
func (d *DB) Stats() Stats {
	st := Stats{
		Tree:        d.tree.Stats(),
		Txn:         d.tm.Stats(),
		Magnetic:    d.mag.Stats(),
		WORM:        d.worm.Stats(),
		Secondaries: make(map[string]core.Stats),
	}
	if d.pool != nil {
		st.Buffer = d.pool.Stats()
	}
	for name, s := range d.secondaries {
		st.Secondaries[name] = s.index.Tree().Stats()
	}
	return st
}

// Tree exposes the primary TSB-tree (dump tools, invariant checks).
func (d *DB) Tree() *core.Tree { return d.tree }

// Devices exposes the simulated devices for experiment accounting.
func (d *DB) Devices() (*storage.MagneticDisk, *storage.WORMDisk) { return d.mag, d.worm }

// CheckInvariants verifies the primary tree and every secondary tree.
func (d *DB) CheckInvariants() error {
	if err := d.tree.CheckInvariants(); err != nil {
		return fmt.Errorf("primary: %w", err)
	}
	for name, s := range d.secondaries {
		if err := s.index.Tree().CheckInvariants(); err != nil {
			return fmt.Errorf("secondary %q: %w", name, err)
		}
	}
	return nil
}
