package db

import (
	"fmt"
	"testing"

	"repro/internal/record"
	"repro/internal/txn"
)

func TestScanRangeThroughDB(t *testing.T) {
	d := open(t, Config{})
	put(t, d, "a", "a1") // t=1
	put(t, d, "b", "b1") // t=2
	put(t, d, "a", "a2") // t=3
	put(t, d, "c", "c1") // t=4

	vs, err := d.ScanRange(nil, record.InfiniteBound(), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Window [2,4): a1 alive at 2, b1 at 2, a2 at 3. c1 is outside.
	want := []string{"a1", "a2", "b1"}
	if len(vs) != len(want) {
		t.Fatalf("ScanRange = %v", vs)
	}
	for i, w := range want {
		if string(vs[i].Value) != w {
			t.Errorf("ScanRange[%d] = %s, want %s", i, vs[i], w)
		}
	}
}

func TestDiffThroughDB(t *testing.T) {
	d := open(t, Config{})
	put(t, d, "stay", "same") // t=1
	put(t, d, "mod", "old")   // t=2
	mark := d.Now()
	put(t, d, "mod", "new")                                                          // t=3
	put(t, d, "add", "x")                                                            // t=4
	d.Update(func(tx *txn.Txn) error { return tx.Delete(record.StringKey("stay")) }) // t=5

	changes, err := d.Diff(nil, record.InfiniteBound(), mark, d.Now())
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]string{}
	for _, c := range changes {
		kinds[string(c.Key)] = c.Kind()
	}
	want := map[string]string{"mod": "updated", "add": "created", "stay": "deleted"}
	if len(kinds) != len(want) {
		t.Fatalf("Diff = %v, want %v", kinds, want)
	}
	for k, v := range want {
		if kinds[k] != v {
			t.Errorf("Diff[%s] = %s, want %s", k, kinds[k], v)
		}
	}
}

func TestCursorThroughDB(t *testing.T) {
	d := open(t, Config{})
	for i := 0; i < 50; i++ {
		put(t, d, fmt.Sprintf("k%02d", i), fmt.Sprintf("v%d", i))
	}
	cur := d.Cursor(record.StringKey("k10"), record.KeyBound(record.StringKey("k20")), ScanOptions{})
	n := 0
	var prev record.Key
	for cur.Next() {
		v := cur.Version()
		if prev != nil && !prev.Less(v.Key) {
			t.Fatal("cursor out of order")
		}
		prev = v.Key
		n++
	}
	if cur.Err() != nil {
		t.Fatal(cur.Err())
	}
	if n != 10 {
		t.Fatalf("cursor yielded %d keys, want 10", n)
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
}
