package db

// Kill-and-recover property tests for the paged durable mode: one
// shared TearPlan budget spans the WHOLE durable write stream — WAL
// segments, checkpoint files, the magnetic page file, its rollback
// journal, and the WORM burn file — so a byte sweep tears every kind of
// write somewhere: mid-WAL-frame, mid-page-flush (torn magnetic page),
// mid-burn (torn WORM sector), mid-journal, mid-checkpoint-install.
// After each tear the directory is reopened and compared against the
// in-memory oracle of acknowledged commits.
//
// The CI recovery job runs these by name: go test -race -run Recovery ./...

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/record"
	"repro/internal/storage"
	"repro/internal/txn"
)

// pagedCrashConfig wires one TearPlan through both fault seams of a
// paged directory.
func pagedCrashConfig(dir string, plan *storage.TearPlan) Config {
	cfg := pagedConfig(dir)
	cfg.Secondaries = map[string]SecondaryExtract{"dept": deptExtract}
	cfg.logWrap = func(f storage.LogFile) storage.LogFile {
		return storage.NewTornLogFile(f, plan)
	}
	cfg.blockWrap = func(f storage.BlockFile) storage.BlockFile {
		return storage.NewTornBlockFile(f, plan)
	}
	return cfg
}

// runPagedUntilCrash drives single-writer commits with a checkpoint
// every cpEvery commits, until the injected tear fires somewhere in the
// durable write stream. It returns the acknowledged operations and the
// operation in flight when the device died (nil if the tear fired
// inside a checkpoint instead).
func runPagedUntilCrash(t *testing.T, d *DB, rng *rand.Rand, maxOps, cpEvery int) (acked []oracleOp, unacked *oracleOp) {
	t.Helper()
	for i := 0; i < maxOps; i++ {
		op := oracleOp{puts: map[string]string{}}
		for n := rng.Intn(3) + 1; n > 0; n-- {
			idx := rng.Intn(12)
			k := fmt.Sprintf("%c-key%02d", byte(idx%4)*64+33, idx)
			if rng.Intn(8) == 0 {
				op.puts[k] = ""
			} else {
				op.puts[k] = fmt.Sprintf("dept%02d|val%d", rng.Intn(3), i)
			}
		}
		err := d.Update(func(tx *txn.Txn) error {
			for k, v := range op.puts {
				if v == "" {
					if err := tx.Delete(record.StringKey(k)); err != nil {
						return err
					}
				} else if err := tx.Put(record.StringKey(k), []byte(v)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			if !errors.Is(err, storage.ErrInjected) {
				t.Fatalf("commit failed with non-injected error: %v", err)
			}
			return acked, &op
		}
		acked = append(acked, op)
		if (i+1)%cpEvery == 0 {
			if err := d.Checkpoint(); err != nil {
				if !errors.Is(err, storage.ErrInjected) {
					t.Fatalf("checkpoint failed with non-injected error: %v", err)
				}
				return acked, nil
			}
		}
	}
	return acked, nil
}

// TestRecoveryPagedTornSweep is the paged kill-and-recover property
// test: sweep byte offsets into the durable write stream of a
// checkpoint-heavy single-writer run, crash there, reopen, and demand
// the recovered database equal the oracle of acknowledged commits (plus
// at most the one in-flight commit whose WAL frame landed intact) on
// every read surface, secondary lookups included.
func TestRecoveryPagedTornSweep(t *testing.T) {
	var faultPoints []int64
	// Byte-by-byte through the early stream (the seal checkpoint's
	// device and metadata writes, first WAL frames), then stride
	// through a span long enough to cover several checkpoint flushes,
	// journal writes, and WORM burns.
	for b := int64(0); b < 220; b++ {
		faultPoints = append(faultPoints, b)
	}
	for b := int64(220); b < 60_000; b += 211 {
		faultPoints = append(faultPoints, b)
	}
	secs := map[string]SecondaryExtract{"dept": deptExtract}
	for _, tear := range faultPoints {
		dir := t.TempDir()
		plan := storage.NewTearPlan(tear)
		cfg := pagedCrashConfig(dir, plan)
		d, err := Open(cfg)
		if err != nil {
			// The tear fired during the open-time seal checkpoint (or
			// its device-file creation): the directory must still
			// recover as empty.
			if !errors.Is(err, storage.ErrInjected) {
				t.Fatalf("tear=%d: open: %v", tear, err)
			}
			re, rerr := Open(pagedConfigWithSecs(dir, secs))
			if rerr != nil {
				t.Fatalf("tear=%d: recovery of torn-seal directory: %v", tear, rerr)
			}
			if re.Now() != 0 {
				t.Fatalf("tear=%d: torn-seal directory recovered clock %v", tear, re.Now())
			}
			re.Close()
			continue
		}
		rng := rand.New(rand.NewSource(tear))
		acked, unacked := runPagedUntilCrash(t, d, rng, 60, 7)
		crash(d)

		reopened, err := Open(pagedConfigWithSecs(dir, secs))
		if err != nil {
			t.Fatalf("tear=%d: recovery failed: %v", tear, err)
		}
		label := fmt.Sprintf("paged-tear=%d", tear)
		want := acked
		if unacked != nil && reopened.Now() == record.Timestamp(len(acked))+1 {
			want = append(append([]oracleOp{}, acked...), *unacked)
		} else if reopened.Now() != record.Timestamp(len(acked)) {
			t.Fatalf("%s: recovered clock %v with %d acked commits", label, reopened.Now(), len(acked))
		}
		oracle := applyOracle(t, cfg, want)
		assertEquivalent(t, label, reopened, oracle, []string{"dept"})
		reopened.Close()
		oracle.Close()
	}
}

func pagedConfigWithSecs(dir string, secs map[string]SecondaryExtract) Config {
	cfg := pagedConfig(dir)
	cfg.Secondaries = secs
	return cfg
}

// TestRecoveryPagedDoubleCrash tears a first recovery-and-run, then
// crashes AGAIN mid-stream and recovers once more: the journal/boundary
// protocol must compose across repeated crashes.
func TestRecoveryPagedDoubleCrash(t *testing.T) {
	secs := map[string]SecondaryExtract{"dept": deptExtract}
	for _, tears := range [][2]int64{{3000, 2000}, {9000, 5000}, {17_000, 900}, {26_000, 12_000}} {
		dir := t.TempDir()
		plan := storage.NewTearPlan(tears[0])
		d, err := Open(pagedCrashConfig(dir, plan))
		if err != nil {
			if errors.Is(err, storage.ErrInjected) {
				continue
			}
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(tears[0]))
		acked, unacked := runPagedUntilCrash(t, d, rng, 60, 7)
		crash(d)

		plan2 := storage.NewTearPlan(tears[1])
		d2, err := Open(pagedCrashConfig(dir, plan2))
		if err != nil {
			if !errors.Is(err, storage.ErrInjected) {
				t.Fatalf("tears=%v: second open: %v", tears, err)
			}
			continue // the second tear fired during recovery's own opens
		}
		if unacked != nil && d2.Now() == record.Timestamp(len(acked))+1 {
			acked = append(acked, *unacked)
		}
		more, unacked2 := runPagedUntilCrash(t, d2, rng, 40, 5)
		acked = append(acked, more...)
		crash(d2)

		re, err := Open(pagedConfigWithSecs(dir, secs))
		if err != nil {
			t.Fatalf("tears=%v: final recovery: %v", tears, err)
		}
		label := fmt.Sprintf("paged-double-tear=%v", tears)
		want := acked
		if unacked2 != nil && re.Now() == record.Timestamp(len(acked))+1 {
			want = append(append([]oracleOp{}, acked...), *unacked2)
		} else if re.Now() != record.Timestamp(len(acked)) {
			t.Fatalf("%s: recovered clock %v with %d acked commits", label, re.Now(), len(acked))
		}
		oracle := applyOracle(t, pagedConfigWithSecs(dir, secs), want)
		assertEquivalent(t, label, re, oracle, []string{"dept"})
		re.Close()
		oracle.Close()
	}
}

// TestRecoveryPagedConcurrentCrash crashes a concurrent multi-writer,
// checkpoint-heavy paged run at an arbitrary offset into the durable
// write stream and asserts the durability invariants that survive
// nondeterminism: every acknowledged commit fully present, no phantom
// or torn data, invariants intact, database writable. Race-clean.
func TestRecoveryPagedConcurrentCrash(t *testing.T) {
	for _, tear := range []int64{2000, 8000, 20_000, 45_000} {
		dir := t.TempDir()
		plan := storage.NewTearPlan(tear)
		cfg := pagedConfig(dir)
		cfg.Shards = 4
		cfg.CheckpointBytes = 2048
		cfg.logWrap = func(f storage.LogFile) storage.LogFile {
			return storage.NewTornLogFile(f, plan)
		}
		cfg.blockWrap = func(f storage.BlockFile) storage.BlockFile {
			return storage.NewTornBlockFile(f, plan)
		}
		d, err := Open(cfg)
		if err != nil {
			if errors.Is(err, storage.ErrInjected) {
				continue
			}
			t.Fatal(err)
		}
		const workers = 4
		var mu sync.Mutex
		ackedVals := map[string]bool{}
		attempted := map[string]bool{}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; ; i++ {
					k := fmt.Sprintf("w%d-key%02d", w, i%16)
					val := fmt.Sprintf("w%d-val%05d", w, i)
					mu.Lock()
					attempted[k+"="+val] = true
					mu.Unlock()
					err := d.Update(func(tx *txn.Txn) error {
						return tx.Put(record.StringKey(k), []byte(val))
					})
					if err != nil {
						return
					}
					mu.Lock()
					ackedVals[k+"="+val] = true
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait()
		crash(d)

		re, err := Open(Config{
			Dir: dir, PagedDevices: true, Shards: 4, CheckpointBytes: -1,
			LeafCapacity: 512, IndexCapacity: 1024, SectorSize: 256,
		})
		if err != nil {
			t.Fatalf("tear=%d: recovery: %v", tear, err)
		}
		all, err := re.ScanRange(nil, record.InfiniteBound(), 1, record.TimeInfinity)
		if err != nil {
			t.Fatal(err)
		}
		recovered := map[string]bool{}
		for _, v := range all {
			recovered[string(v.Key)+"="+string(v.Value)] = true
		}
		for pair := range ackedVals {
			if !recovered[pair] {
				t.Fatalf("tear=%d: acknowledged %q lost", tear, pair)
			}
		}
		for pair := range recovered {
			if !attempted[pair] {
				t.Fatalf("tear=%d: recovered %q was never written", tear, pair)
			}
		}
		if err := re.CheckInvariants(); err != nil {
			t.Fatalf("tear=%d: invariants: %v", tear, err)
		}
		if err := re.Update(func(tx *txn.Txn) error {
			return tx.Put(record.StringKey("post"), []byte("crash"))
		}); err != nil {
			t.Fatalf("tear=%d: write after recovery: %v", tear, err)
		}
		re.Close()
	}
}
