package db

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/record"
	"repro/internal/txn"
)

// shardOp is one step of a deterministic operation sequence applied
// identically to databases with different shard counts.
type shardOp struct {
	key    record.Key
	value  []byte
	delete bool
	abort  bool
}

// genShardOps produces a sequence whose keys spread across the whole
// 16-bit routing prefix space (binary keys) plus a clustered run that
// lands entirely in one shard (ASCII keys sharing a prefix) — routing
// must be correct in both regimes.
func genShardOps(seed int64, n int) []shardOp {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]record.Key, 0, 64)
	for i := 0; i < 48; i++ {
		keys = append(keys, record.Uint64Key(rng.Uint64()))
	}
	for i := 0; i < 16; i++ {
		keys = append(keys, record.StringKey(fmt.Sprintf("key%03d", i)))
	}
	ops := make([]shardOp, 0, n)
	for i := 0; i < n; i++ {
		op := shardOp{key: keys[rng.Intn(len(keys))]}
		switch {
		case rng.Intn(10) == 0:
			op.delete = true
		default:
			op.value = []byte(fmt.Sprintf("v%d-%d", i, rng.Intn(1000)))
		}
		op.abort = rng.Intn(12) == 0
		ops = append(ops, op)
	}
	return ops
}

func applyShardOps(t *testing.T, d *DB, ops []shardOp) {
	t.Helper()
	for i, op := range ops {
		err := d.Update(func(tx *txn.Txn) error {
			var err error
			if op.delete {
				err = tx.Delete(op.key)
			} else {
				err = tx.Put(op.key, op.value)
			}
			if err != nil {
				return err
			}
			if op.abort {
				return fmt.Errorf("deliberate abort")
			}
			return nil
		})
		if op.abort {
			if err == nil {
				t.Fatalf("op %d: abort did not propagate", i)
			}
		} else if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
}

func sameVersions(a, b []record.Version) error {
	if len(a) != len(b) {
		return fmt.Errorf("length %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Key.Equal(b[i].Key) || a[i].Time != b[i].Time ||
			a[i].Tombstone != b[i].Tombstone || !bytes.Equal(a[i].Value, b[i].Value) {
			return fmt.Errorf("version %d: %v vs %v", i, a[i], b[i])
		}
	}
	return nil
}

// TestShardEquivalence is the sharding property test: a multi-shard
// database must answer every query byte-identically to a single-shard
// database given the same operation sequence — Get, GetAsOf, ScanAsOf,
// History, ScanRange, and Diff, over full and partial key ranges.
func TestShardEquivalence(t *testing.T) {
	for _, shards := range []int{2, 3, 8} {
		for _, seed := range []int64{1, 7} {
			t.Run(fmt.Sprintf("shards=%d/seed=%d", shards, seed), func(t *testing.T) {
				ops := genShardOps(seed, 600)
				cfg := Config{LeafCapacity: 512, IndexCapacity: 512, MaxKeySize: 32}
				single, err := Open(cfg)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Shards = shards
				multi, err := Open(cfg)
				if err != nil {
					t.Fatal(err)
				}
				applyShardOps(t, single, ops)
				applyShardOps(t, multi, ops)

				if single.Now() != multi.Now() {
					t.Fatalf("clocks diverged: %v vs %v", single.Now(), multi.Now())
				}
				now := single.Now()
				if err := multi.CheckInvariants(); err != nil {
					t.Fatal(err)
				}

				keys := make(map[string]record.Key)
				for _, op := range ops {
					keys[string(op.key)] = op.key
				}
				rng := rand.New(rand.NewSource(seed * 31))
				for _, k := range keys {
					sv, sok, err1 := single.Get(k)
					mv, mok, err2 := multi.Get(k)
					if err1 != nil || err2 != nil {
						t.Fatal(err1, err2)
					}
					if sok != mok || (sok && (sv.Time != mv.Time || !bytes.Equal(sv.Value, mv.Value))) {
						t.Fatalf("Get(%s): single=%v,%v multi=%v,%v", k, sv, sok, mv, mok)
					}
					// Full history, byte for byte.
					sh, err1 := single.History(k)
					mh, err2 := multi.History(k)
					if err1 != nil || err2 != nil {
						t.Fatal(err1, err2)
					}
					if err := sameVersions(sh, mh); err != nil {
						t.Fatalf("History(%s): %v", k, err)
					}
					// Rollback reads at random times.
					for trial := 0; trial < 5; trial++ {
						at := record.Timestamp(rng.Intn(int(now) + 2))
						sv, sok, _ := single.GetAsOf(k, at)
						mv, mok, _ := multi.GetAsOf(k, at)
						if sok != mok || (sok && (sv.Time != mv.Time || !bytes.Equal(sv.Value, mv.Value))) {
							t.Fatalf("GetAsOf(%s,%d): single=%v,%v multi=%v,%v", k, at, sv, sok, mv, mok)
						}
					}
				}

				// Range queries over full and partial ranges, including
				// bounds that cut through shard boundaries.
				ranges := []struct {
					low  record.Key
					high record.Bound
				}{
					{nil, record.InfiniteBound()},
					{record.ShardBoundary(1, shards), record.InfiniteBound()},
					{nil, record.KeyBound(record.ShardBoundary(shards-1, shards))},
					{record.Uint64Key(1 << 62), record.KeyBound(record.Uint64Key(3 << 62))},
					{record.StringKey("key"), record.KeyBound(record.StringKey("kez"))},
				}
				for _, r := range ranges {
					for _, at := range []record.Timestamp{1, now / 2, now} {
						ss, err1 := single.ScanAsOf(at, r.low, r.high)
						ms, err2 := multi.ScanAsOf(at, r.low, r.high)
						if err1 != nil || err2 != nil {
							t.Fatal(err1, err2)
						}
						if err := sameVersions(ss, ms); err != nil {
							t.Fatalf("ScanAsOf(%d,[%s,%s)): %v", at, r.low, r.high, err)
						}
					}
					sr, err1 := single.ScanRange(r.low, r.high, now/3, 2*now/3)
					mr, err2 := multi.ScanRange(r.low, r.high, now/3, 2*now/3)
					if err1 != nil || err2 != nil {
						t.Fatal(err1, err2)
					}
					if err := sameVersions(sr, mr); err != nil {
						t.Fatalf("ScanRange([%s,%s)): %v", r.low, r.high, err)
					}
					sd, err1 := single.Diff(r.low, r.high, now/3, now)
					md, err2 := multi.Diff(r.low, r.high, now/3, now)
					if err1 != nil || err2 != nil {
						t.Fatal(err1, err2)
					}
					if err := sameChanges(sd, md); err != nil {
						t.Fatalf("Diff([%s,%s)): %v", r.low, r.high, err)
					}
				}
			})
		}
	}
}

func sameChanges(a, b []core.Change) error {
	if len(a) != len(b) {
		return fmt.Errorf("length %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Key.Equal(b[i].Key) || a[i].HasBefor != b[i].HasBefor || a[i].HasAfter != b[i].HasAfter {
			return fmt.Errorf("change %d: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].HasBefor && (a[i].Before.Time != b[i].Before.Time || !bytes.Equal(a[i].Before.Value, b[i].Before.Value)) {
			return fmt.Errorf("change %d before: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].HasAfter && (a[i].After.Time != b[i].After.Time || !bytes.Equal(a[i].After.Value, b[i].After.Value)) {
			return fmt.Errorf("change %d after: %+v vs %+v", i, a[i], b[i])
		}
	}
	return nil
}

// TestShardRoutingPlacement verifies every committed key physically lives
// in the shard tree its range says it should.
func TestShardRoutingPlacement(t *testing.T) {
	const shards = 8
	d, err := Open(Config{Shards: shards, LeafCapacity: 512, MaxKeySize: 32})
	if err != nil {
		t.Fatal(err)
	}
	applyShardOps(t, d, genShardOps(3, 400))
	seen := 0
	for i := 0; i < shards; i++ {
		low, high := record.ShardRange(i, shards)
		err := d.WithShardTree(i, func(tr *core.Tree) error {
			vs, err := tr.ScanAsOf(d.Now(), nil, record.InfiniteBound())
			if err != nil {
				return err
			}
			for _, v := range vs {
				if v.Key.Less(low) || high.CompareKey(v.Key) <= 0 {
					t.Fatalf("shard %d holds key %s outside [%s,%s)", i, v.Key, low, high)
				}
			}
			seen += len(vs)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	all, err := d.ScanAsOf(d.Now(), nil, record.InfiniteBound())
	if err != nil {
		t.Fatal(err)
	}
	if seen != len(all) {
		t.Fatalf("shards hold %d live keys, full scan sees %d", seen, len(all))
	}
	// The binary keys must actually spread: with 48 uniform keys over 8
	// shards an empty shard is (7/8)^48 ~ 0.2%% per shard; all-in-one
	// would mean routing is broken.
	var shard0 core.Stats
	if err := d.WithShardTree(0, func(tr *core.Tree) error { shard0 = tr.Stats(); return nil }); err != nil {
		t.Fatal(err)
	}
	if shard0.Inserts == d.Stats().Tree.Inserts {
		t.Fatal("all inserts landed in shard 0: routing is not spreading keys")
	}
}

// TestLatchSamplingCoversBothModes regression-tests the latch-timing
// sampler against stride aliasing. A put-only workload ticks the
// sampler a fixed number of times per operation, so a plain modulo-8
// stride lands every sample on the same acquisition site — in practice
// the read latch — leaving the write-latch histograms permanently
// empty no matter how long the server runs. The hashed sampler must
// spread samples across both modes.
func TestLatchSamplingCoversBothModes(t *testing.T) {
	d, err := Open(Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 2000; i++ {
		if err := d.Update(func(tx *txn.Txn) error {
			return tx.Put(record.Key(fmt.Sprintf("alias%04d", i)), []byte("v"))
		}); err != nil {
			t.Fatal(err)
		}
	}
	var reads, writes uint64
	for _, sh := range d.store.shards {
		reads += sh.waitR.Count()
		writes += sh.waitW.Count()
	}
	if reads == 0 || writes == 0 {
		t.Fatalf("latch sampler starved a mode: read samples=%d, write samples=%d", reads, writes)
	}
}
