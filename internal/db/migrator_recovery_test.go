package db

// Kill-and-recover coverage for the background migrator: crash a paged
// durable database while per-shard workers are capturing, burning, and
// swapping in the background, and demand the standard durability
// invariants — every acknowledged commit fully present, no phantom data,
// invariants intact, database writable. Migration marks are not durable
// state: a crash may orphan a burned-but-unswapped historical node as
// write-once waste (exactly as a torn migration on real WORM media), but
// can never lose or duplicate a version.
//
// The CI recovery job runs these by name: go test -race -run Recovery ./...

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/record"
	"repro/internal/storage"
	"repro/internal/txn"
)

// TestRecoveryPagedMigratorConcurrentCrash is TestRecoveryPagedConcurrentCrash
// with the background migrator running: concurrent writers produce a
// steady stream of deferred time splits (updates to a small hot key set),
// background checkpoints fence the workers, and the injected tear crashes
// the process at an arbitrary byte of the durable write stream — possibly
// mid-burn or between a burn and its swap. Race-clean.
func TestRecoveryPagedMigratorConcurrentCrash(t *testing.T) {
	for _, tear := range []int64{2500, 9000, 22_000, 47_000} {
		dir := t.TempDir()
		plan := storage.NewTearPlan(tear)
		cfg := pagedConfig(dir)
		cfg.Shards = 4
		cfg.CheckpointBytes = 2048
		cfg.BackgroundMigration = true
		cfg.logWrap = func(f storage.LogFile) storage.LogFile {
			return storage.NewTornLogFile(f, plan)
		}
		cfg.blockWrap = func(f storage.BlockFile) storage.BlockFile {
			return storage.NewTornBlockFile(f, plan)
		}
		d, err := Open(cfg)
		if err != nil {
			if errors.Is(err, storage.ErrInjected) {
				continue // tear fired inside the seal checkpoint
			}
			t.Fatal(err)
		}
		const workers = 4
		var mu sync.Mutex
		ackedVals := map[string]bool{}
		attempted := map[string]bool{}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; ; i++ {
					// A small hot key set per worker: repeated updates
					// build history fast, so time splits (and therefore
					// background migrations) fire continuously.
					k := fmt.Sprintf("w%d-key%02d", w, i%8)
					val := fmt.Sprintf("w%d-val%05d", w, i)
					mu.Lock()
					attempted[k+"="+val] = true
					mu.Unlock()
					err := d.Update(func(tx *txn.Txn) error {
						return tx.Put(record.StringKey(k), []byte(val))
					})
					if err != nil {
						return // crashed
					}
					mu.Lock()
					ackedVals[k+"="+val] = true
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait()
		migrated := d.Stats().Migrator.Migrated
		crash(d)

		recfg := pagedConfig(dir)
		recfg.Shards = 4
		recfg.BackgroundMigration = true
		re, err := Open(recfg)
		if err != nil {
			t.Fatalf("tear=%d: recovery: %v", tear, err)
		}
		all, err := re.ScanRange(nil, record.InfiniteBound(), 1, record.TimeInfinity)
		if err != nil {
			t.Fatal(err)
		}
		recovered := map[string]bool{}
		for _, v := range all {
			recovered[string(v.Key)+"="+string(v.Value)] = true
		}
		for pair := range ackedVals {
			if !recovered[pair] {
				t.Fatalf("tear=%d: acknowledged %q lost (migrations before crash: %d)", tear, pair, migrated)
			}
		}
		for pair := range recovered {
			if !attempted[pair] {
				t.Fatalf("tear=%d: recovered %q was never written", tear, pair)
			}
		}
		if err := re.CheckInvariants(); err != nil {
			t.Fatalf("tear=%d: invariants: %v", tear, err)
		}
		// The recovered database migrates in the background too: write
		// through it, drain, and re-verify.
		for i := 0; i < 120; i++ {
			k := fmt.Sprintf("post-key%02d", i%6)
			if err := re.Update(func(tx *txn.Txn) error {
				return tx.Put(record.StringKey(k), []byte(fmt.Sprintf("post-val%04d", i)))
			}); err != nil {
				t.Fatalf("tear=%d: write after recovery: %v", tear, err)
			}
		}
		if err := re.DrainMigrations(); err != nil {
			t.Fatalf("tear=%d: drain after recovery: %v", tear, err)
		}
		if err := re.CheckInvariants(); err != nil {
			t.Fatalf("tear=%d: invariants after post-recovery writes: %v", tear, err)
		}
		re.Close()
	}
}
