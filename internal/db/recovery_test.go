package db

// Kill-and-recover property tests: crash the durable database at
// injected fault points (torn WAL appends, torn checkpoint writes) and
// assert that Open recovers exactly the committed prefix — byte-identical
// scans, histories, and secondary lookups against an in-memory oracle
// that applied only the acknowledged commits.
//
// The CI recovery job runs these by name: go test -race -run Recovery ./...

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/record"
	"repro/internal/storage"
	"repro/internal/txn"
)

// oracleOp is one committed transaction as the oracle will replay it.
type oracleOp struct {
	puts map[string]string // key -> value; empty value means delete
}

// crash simulates power loss: nothing is flushed or closed in order,
// but the directory flock vanishes exactly as it does when the holding
// process dies. The background checkpointer is reaped only so the test
// process doesn't leak goroutines; a pass that already started may
// complete, which is indistinguishable from a checkpoint landing just
// before the power cut.
func crash(d *DB) {
	d.cpMu.Lock()
	stopped := d.closed
	d.closed = true
	d.cpMu.Unlock()
	if !stopped && d.stopCp != nil {
		close(d.stopCp)
		d.cpDone.Wait()
	}
	// Background migrator workers are reaped for the same goroutine-leak
	// reason as the checkpointer: a migration that already reached its
	// swap may complete, indistinguishable from one landing just before
	// the power cut.
	_ = d.mig.stop()
	if d.dirLock != nil {
		_ = d.dirLock.Close()
	}
}

// applyOracle replays acknowledged commits into a fresh in-memory
// database with the same shape, producing the expected post-crash state.
func applyOracle(t *testing.T, cfg Config, ops []oracleOp) *DB {
	t.Helper()
	cfg.Dir = ""
	cfg.logWrap = nil
	cfg.PagedDevices = false
	cfg.blockWrap = nil
	o, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		err := o.Update(func(tx *txn.Txn) error {
			for k, v := range op.puts {
				if v == "" {
					if err := tx.Delete(record.StringKey(k)); err != nil {
						return err
					}
				} else if err := tx.Put(record.StringKey(k), []byte(v)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("oracle replay: %v", err)
		}
	}
	return o
}

// assertEquivalent compares the recovered database against the oracle on
// every read surface: full temporal scan, per-key history, current
// snapshot, and (when present) secondary lookups at every commit time.
func assertEquivalent(t *testing.T, label string, got, want *DB, secNames []string) {
	t.Helper()
	if got.Now() != want.Now() {
		t.Fatalf("%s: clock = %v, want %v", label, got.Now(), want.Now())
	}
	gotAll, err := got.ScanRange(nil, record.InfiniteBound(), 1, record.TimeInfinity)
	if err != nil {
		t.Fatal(err)
	}
	wantAll, err := want.ScanRange(nil, record.InfiniteBound(), 1, record.TimeInfinity)
	if err != nil {
		t.Fatal(err)
	}
	assertSameVersions(t, label+" full temporal scan", gotAll, wantAll)
	seen := map[string]bool{}
	for _, v := range wantAll {
		if seen[string(v.Key)] {
			continue
		}
		seen[string(v.Key)] = true
		gh, err := got.History(v.Key)
		if err != nil {
			t.Fatal(err)
		}
		wh, err := want.History(v.Key)
		if err != nil {
			t.Fatal(err)
		}
		assertSameVersions(t, fmt.Sprintf("%s history(%s)", label, v.Key), gh, wh)
	}
	for _, name := range secNames {
		for at := record.Timestamp(1); at <= want.Now(); at++ {
			for _, v := range wantAll {
				if v.Tombstone || v.Time > at {
					continue
				}
				skey := deptExtract(v.Value)
				if skey == nil {
					continue
				}
				gotPK, err := got.LookupSecondary(name, skey, at)
				if err != nil {
					t.Fatal(err)
				}
				wantPK, err := want.LookupSecondary(name, skey, at)
				if err != nil {
					t.Fatal(err)
				}
				if len(gotPK) != len(wantPK) {
					t.Fatalf("%s: secondary %s(%s)@%v: %d keys, want %d",
						label, name, skey, at, len(gotPK), len(wantPK))
				}
				for i := range wantPK {
					if !gotPK[i].Equal(wantPK[i]) {
						t.Fatalf("%s: secondary %s(%s)@%v key %d = %s, want %s",
							label, name, skey, at, i, gotPK[i], wantPK[i])
					}
				}
			}
		}
	}
	if err := got.CheckInvariants(); err != nil {
		t.Fatalf("%s: invariants: %v", label, err)
	}
}

// runUntilCrash drives single-writer commits against d until one fails
// (the injected tear) or the workload ends. It returns the acknowledged
// operations in commit order and the operation that failed (nil if none).
func runUntilCrash(t *testing.T, d *DB, rng *rand.Rand, maxOps int) (acked []oracleOp, unacked *oracleOp) {
	t.Helper()
	for i := 0; i < maxOps; i++ {
		op := oracleOp{puts: map[string]string{}}
		for n := rng.Intn(3) + 1; n > 0; n-- {
			// Leading byte spans the key space so commits land on
			// every shard, not just the one owning a shared prefix.
			idx := rng.Intn(12)
			k := fmt.Sprintf("%c-key%02d", byte(idx%4)*64+33, idx)
			if rng.Intn(8) == 0 {
				op.puts[k] = "" // delete
			} else {
				op.puts[k] = fmt.Sprintf("dept%02d|val%d", rng.Intn(3), i)
			}
		}
		err := d.Update(func(tx *txn.Txn) error {
			for k, v := range op.puts {
				if v == "" {
					if err := tx.Delete(record.StringKey(k)); err != nil {
						return err
					}
				} else if err := tx.Put(record.StringKey(k), []byte(v)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			if !errors.Is(err, storage.ErrInjected) {
				t.Fatalf("commit failed with non-injected error: %v", err)
			}
			return acked, &op
		}
		acked = append(acked, op)
	}
	return acked, nil
}

// TestRecoveryTornTailSweep is the deterministic kill-and-recover
// property test: for a dense sweep of byte offsets into the WAL write
// stream, crash there, reopen, and demand the recovered database equal
// the oracle of acknowledged commits — plus at most the one in-flight
// commit whose frame happened to land intact (standard
// presumed-durable-once-logged semantics), never anything else and never
// half of it.
func TestRecoveryTornTailSweep(t *testing.T) {
	secs := map[string]SecondaryExtract{"dept": deptExtract}
	// Probe a prefix byte-by-byte (frame boundaries, headers, CRC bytes
	// all land in it), then stride through the rest of the stream.
	var faultPoints []int64
	for b := int64(0); b < 160; b++ {
		faultPoints = append(faultPoints, b)
	}
	for b := int64(160); b < 6000; b += 37 {
		faultPoints = append(faultPoints, b)
	}
	for _, tear := range faultPoints {
		dir := t.TempDir()
		plan := storage.NewTearPlan(tear)
		cfg := Config{
			Dir: dir, Shards: 2, Secondaries: secs, CheckpointBytes: -1,
			logWrap: func(f storage.LogFile) storage.LogFile {
				return storage.NewTornLogFile(f, plan)
			},
		}
		d, err := Open(cfg)
		if err != nil {
			// The tear fired during the open-time seal checkpoint: the
			// directory must still be recoverable (as empty or absent
			// state); handled by reopening below.
			if !errors.Is(err, storage.ErrInjected) {
				t.Fatalf("tear=%d: open: %v", tear, err)
			}
			continue
		}
		rng := rand.New(rand.NewSource(tear))
		acked, unacked := runUntilCrash(t, d, rng, 40)
		// Simulated power loss: drop the handle without Close.
		crash(d)

		reopened, err := Open(Config{Dir: dir, Shards: 2, Secondaries: secs, CheckpointBytes: -1})
		if err != nil {
			t.Fatalf("tear=%d: recovery failed: %v", tear, err)
		}
		label := fmt.Sprintf("tear=%d", tear)
		// The recovered state is the acknowledged prefix, possibly plus
		// the single unacknowledged in-flight commit if its frame was
		// fully durable before the crash. Which of the two is decided
		// by the recovered clock.
		want := acked
		if unacked != nil && reopened.Now() == record.Timestamp(len(acked))+1 {
			want = append(append([]oracleOp{}, acked...), *unacked)
		} else if reopened.Now() != record.Timestamp(len(acked)) {
			t.Fatalf("%s: recovered clock %v with %d acked commits", label, reopened.Now(), len(acked))
		}
		oracle := applyOracle(t, cfg, want)
		assertEquivalent(t, label, reopened, oracle, []string{"dept"})
		reopened.Close()
		oracle.Close()
	}
}

// TestRecoveryMidCheckpointCrash crashes inside the checkpoint writer:
// the half-written temp file must be ignored and the previous
// checkpoint + full log must still recover everything acknowledged.
func TestRecoveryMidCheckpointCrash(t *testing.T) {
	for _, tear := range []int64{0, 1, 7, 64, 200, 800} {
		dir := t.TempDir()
		d, err := Open(Config{Dir: dir, Shards: 2, CheckpointBytes: -1})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(tear))
		acked, _ := runUntilCrash(t, d, rng, 30)
		if err := d.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		more, _ := runUntilCrash(t, d, rng, 10)
		acked = append(acked, more...)

		// Now a checkpoint whose file writes tear after `tear` bytes.
		plan := storage.NewTearPlan(tear)
		d.logWrap = func(f storage.LogFile) storage.LogFile {
			return storage.NewTornLogFile(f, plan)
		}
		if err := d.Checkpoint(); !errors.Is(err, storage.ErrInjected) {
			t.Fatalf("tear=%d: torn checkpoint error = %v", tear, err)
		}
		// Power loss here. Recovery must not trust the torn temp file.
		crash(d)
		reopened, err := Open(Config{Dir: dir, Shards: 2, CheckpointBytes: -1})
		if err != nil {
			t.Fatalf("tear=%d: recovery: %v", tear, err)
		}
		oracle := applyOracle(t, Config{Shards: 2}, acked)
		assertEquivalent(t, fmt.Sprintf("ckpt-tear=%d", tear), reopened, oracle, nil)
		reopened.Close()
		oracle.Close()
	}
}

// TestRecoveryConcurrentCrash crashes a concurrent multi-writer,
// checkpoint-heavy run at an arbitrary WAL offset and asserts the two
// durability invariants that survive nondeterminism: every acknowledged
// commit is fully present, and every unacknowledged commit is fully
// present or fully absent (frame atomicity) — never torn. Race-clean.
func TestRecoveryConcurrentCrash(t *testing.T) {
	for _, tear := range []int64{300, 1500, 4000, 9000} {
		dir := t.TempDir()
		plan := storage.NewTearPlan(tear)
		d, err := Open(Config{
			Dir: dir, Shards: 4, CheckpointBytes: 2048,
			logWrap: func(f storage.LogFile) storage.LogFile {
				return storage.NewTornLogFile(f, plan)
			},
		})
		if err != nil {
			if errors.Is(err, storage.ErrInjected) {
				continue // tear landed in the seal checkpoint
			}
			t.Fatal(err)
		}
		const workers = 4
		var mu sync.Mutex
		ackedVals := map[string]string{} // key -> last acknowledged value... per key per worker
		attempted := map[string]bool{}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; ; i++ {
					// Each worker owns its keys: no lock conflicts, and
					// each (key,value) pair is attempted exactly once.
					k := fmt.Sprintf("w%d-key%02d", w, i%16)
					val := fmt.Sprintf("w%d-val%05d", w, i)
					mu.Lock()
					attempted[k+"="+val] = true
					mu.Unlock()
					err := d.Update(func(tx *txn.Txn) error {
						return tx.Put(record.StringKey(k), []byte(val))
					})
					if err != nil {
						return // crashed
					}
					mu.Lock()
					ackedVals[k+"="+val] = k
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait()
		// Power loss: no Close.
		crash(d)

		reopened, err := Open(Config{Dir: dir, Shards: 4, CheckpointBytes: -1})
		if err != nil {
			t.Fatalf("tear=%d: recovery: %v", tear, err)
		}
		// Collect every recovered (key, value) pair across all time.
		all, err := reopened.ScanRange(nil, record.InfiniteBound(), 1, record.TimeInfinity)
		if err != nil {
			t.Fatal(err)
		}
		recovered := map[string]bool{}
		for _, v := range all {
			recovered[string(v.Key)+"="+string(v.Value)] = true
		}
		// Durability: every acknowledged pair is present.
		for pair := range ackedVals {
			if !recovered[pair] {
				t.Fatalf("tear=%d: acknowledged %q lost", tear, pair)
			}
		}
		// No phantoms: every recovered pair was at least attempted.
		for pair := range recovered {
			if !attempted[pair] {
				t.Fatalf("tear=%d: recovered %q was never written", tear, pair)
			}
		}
		if err := reopened.CheckInvariants(); err != nil {
			t.Fatalf("tear=%d: invariants: %v", tear, err)
		}
		// And the recovered database keeps working.
		if err := reopened.Update(func(tx *txn.Txn) error {
			return tx.Put(record.StringKey("post"), []byte("crash"))
		}); err != nil {
			t.Fatalf("tear=%d: write after recovery: %v", tear, err)
		}
		reopened.Close()
	}
}

// TestRecoveryMultiKeyAtomicity tears inside multi-key commit frames and
// asserts a transaction is never half-recovered: for every commit, all
// of its keys carry its commit time or none do.
func TestRecoveryMultiKeyAtomicity(t *testing.T) {
	for tear := int64(50); tear < 2500; tear += 61 {
		dir := t.TempDir()
		plan := storage.NewTearPlan(tear)
		d, err := Open(Config{
			Dir: dir, Shards: 4, CheckpointBytes: -1,
			logWrap: func(f storage.LogFile) storage.LogFile {
				return storage.NewTornLogFile(f, plan)
			},
		})
		if err != nil {
			if errors.Is(err, storage.ErrInjected) {
				continue
			}
			t.Fatal(err)
		}
		// Every commit touches the same 4 keys, spread across shards.
		keys := []string{"a-far-left", "h-middle-1", "p-middle-2", "z-far-right"}
		for i := 0; ; i++ {
			err := d.Update(func(tx *txn.Txn) error {
				for _, k := range keys {
					if err := tx.Put(record.StringKey(k), []byte(fmt.Sprintf("gen%04d", i))); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				break
			}
			if i > 200 {
				t.Fatalf("tear=%d never fired", tear)
			}
		}
		crash(d)
		reopened, err := Open(Config{Dir: dir, Shards: 4, CheckpointBytes: -1})
		if err != nil {
			t.Fatalf("tear=%d: recovery: %v", tear, err)
		}
		for at := record.Timestamp(1); at <= reopened.Now(); at++ {
			count := 0
			var gen string
			for _, k := range keys {
				hist, err := reopened.History(record.StringKey(k))
				if err != nil {
					t.Fatal(err)
				}
				for _, v := range hist {
					if v.Time == at {
						count++
						if gen == "" {
							gen = string(v.Value)
						} else if gen != string(v.Value) {
							t.Fatalf("tear=%d: commit %v mixes %q and %q", tear, at, gen, v.Value)
						}
					}
				}
			}
			if count != len(keys) {
				t.Fatalf("tear=%d: commit %v recovered %d of %d keys (torn transaction)",
					tear, at, count, len(keys))
			}
		}
		reopened.Close()
	}
}
