package db

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/record"
	"repro/internal/secondary"
	"repro/internal/storage"
	"repro/internal/txn"
)

// ErrActiveTransactions is returned by SaveTo when updating transactions
// are in flight: a whole-image checkpoint taken mid-transaction would be
// torn (in-flight Txn handles do not survive a load, stranding their
// pending versions and locks). Commit or abort every updater first — or
// use the durable mode (Config.Dir), whose incremental checkpoints never
// require quiescence.
var ErrActiveTransactions = errors.New("db: active updating transactions")

// checkpoint is the on-wire form of a saved database. Both devices are
// imaged in full (the simulated disks are the durable state), plus the
// per-shard tree metadata and the transaction clock.
type checkpoint struct {
	FormatVersion int
	Magnetic      storage.MagneticImage
	WORM          storage.WORMImage
	// Shards holds one tree image per key-range shard, in shard order.
	// Boundaries are implied by len(Shards) via record.ShardBoundary.
	Shards      []core.TreeImage
	Secondaries map[string]core.TreeImage
	Clock       record.Timestamp
	BufferPages int
}

// checkpointVersion 2 replaced the single Primary image with the Shards
// slice when the engine gained key-range sharding.
const checkpointVersion = 2

// SaveTo writes a whole-image checkpoint of the database. There must be
// no active updating transactions — enforced: SaveTo returns
// ErrActiveTransactions instead of silently emitting a torn image — and
// no concurrent use of the database during the save (the check is a
// point-in-time guard, not a lock; a transaction begun mid-save still
// races). The durable mode's DB.Checkpoint has neither restriction.
func (d *DB) SaveTo(w io.Writer) error {
	if n := d.tm.ActiveUpdaters(); n > 0 {
		return fmt.Errorf("%w: %d in flight", ErrActiveTransactions, n)
	}
	// Fence the background migrator exactly as Checkpoint does: workers
	// are not updating transactions, and a swap landing between the
	// device images and the tree images below would tear the checkpoint.
	d.mig.pause()
	defer d.mig.resume()
	mag, magOK := d.mag.(*storage.MagneticDisk)
	worm, wormOK := d.worm.(*storage.WORMDisk)
	if !magOK || !wormOK {
		return fmt.Errorf("db: SaveTo images simulated devices only; a paged database's durable state is its directory (checkpoint + device files)")
	}
	cp := checkpoint{
		FormatVersion: checkpointVersion,
		Magnetic:      mag.Image(),
		WORM:          worm.Image(),
		Shards:        make([]core.TreeImage, 0, len(d.store.shards)),
		Secondaries:   make(map[string]core.TreeImage),
		Clock:         d.tm.Now(),
		BufferPages:   d.bufferPages,
	}
	for _, sh := range d.store.shards {
		sh.mu.RLock()
		cp.Shards = append(cp.Shards, sh.tree.Image())
		sh.mu.RUnlock()
	}
	d.secMu.RLock()
	for name, s := range d.secondaries {
		cp.Secondaries[name] = s.index.Image()
	}
	d.secMu.RUnlock()
	return gob.NewEncoder(w).Encode(cp)
}

// LoadFrom reconstructs a database from a checkpoint. Secondary-index
// extraction functions are code, not data: the caller must re-supply one
// per saved index (and no extras).
func LoadFrom(r io.Reader, extracts map[string]SecondaryExtract, cost *storage.CostModel) (*DB, error) {
	var cp checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("db: reading checkpoint: %w", err)
	}
	if cp.FormatVersion != checkpointVersion {
		return nil, fmt.Errorf("db: checkpoint format %d, want %d", cp.FormatVersion, checkpointVersion)
	}
	if len(cp.Shards) == 0 || len(cp.Shards) > record.MaxShards {
		return nil, fmt.Errorf("db: checkpoint has %d shard images, want 1..%d", len(cp.Shards), record.MaxShards)
	}
	if len(extracts) != len(cp.Secondaries) {
		return nil, fmt.Errorf("db: checkpoint has %d secondary indexes, %d extractors supplied",
			len(cp.Secondaries), len(extracts))
	}
	cm := storage.DefaultCostModel()
	if cost != nil {
		cm = *cost
	}

	d := &DB{secondaries: make(map[string]*secondaryIndex), bufferPages: cp.BufferPages}
	d.mag = storage.NewMagneticFromImage(cp.Magnetic, cm)
	d.worm = storage.NewWORMFromImage(cp.WORM, cm)
	pages := d.pages()
	trees := make([]*core.Tree, len(cp.Shards))
	for i, img := range cp.Shards {
		tree, err := core.FromImage(pages, d.worm, img)
		if err != nil {
			return nil, fmt.Errorf("db: shard %d: %w", i, err)
		}
		trees[i] = tree
	}
	d.store = newShardedStore(trees)
	d.policy = trees[0].Policy()

	// Deterministic order for reproducible error messages.
	names := make([]string, 0, len(cp.Secondaries))
	for name := range cp.Secondaries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		extract, ok := extracts[name]
		if !ok {
			return nil, fmt.Errorf("db: no extractor supplied for saved secondary index %q", name)
		}
		ix, err := secondary.FromImage(name, pages, d.worm, cp.Secondaries[name])
		if err != nil {
			return nil, fmt.Errorf("db: secondary %q: %w", name, err)
		}
		d.secondaries[name] = &secondaryIndex{index: ix, extract: extract}
	}

	d.tm = txn.NewManager(d.store, cp.Clock)
	d.tm.SetCommitHook(d.onCommit)
	d.wireObs(Config{})
	return d, nil
}
