package db

// Tests for the maintenance economy: WORM compaction (DB.Compact), its
// background trigger, the migrator's sticky-error surface, and the
// fuzzy checkpoint's pause accounting. The crash tests follow the
// kill-and-recover pattern of paged_recovery_test.go and are picked up
// by the CI recovery job (go test -race -run Recovery ./...).

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/record"
	"repro/internal/storage"
	"repro/internal/txn"
)

// seedDeadBurns drives a migration-heavy workload against a fresh paged
// directory, drains the background migrator so historical nodes are
// burned, and then crashes WITHOUT a checkpoint. On reopen every run
// burned since the open-time seal is unreferenced (the magnetic tree
// that pointed at it rolled back to the seal; replay re-burns fresh
// copies), so the directory deterministically carries dead write-once
// payload — exactly what compaction exists to reclaim. It returns the
// acknowledged commits for oracle comparison.
func seedDeadBurns(t *testing.T, cfg Config, commits int, seed int64) []oracleOp {
	t.Helper()
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	acked, unacked := runPagedUntilCrash(t, d, rng, commits, commits+1)
	if unacked != nil {
		t.Fatalf("fault-free workload failed after %d commits", len(acked))
	}
	if err := d.DrainMigrations(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if d.Stats().WORM.SectorsBurned == 0 {
		t.Fatal("workload burned nothing; the orphaning crash would be vacuous")
	}
	crash(d)
	return acked
}

func wormFileSize(t *testing.T, dir string) int64 {
	t.Helper()
	fi, err := os.Stat(filepath.Join(dir, "worm.dev"))
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestCompactReclaimsDeadBytes is the compaction property test: after a
// workload that left dead burns behind, Compact must shrink the burn
// file on disk and in the accounting while changing NOTHING logical —
// every scan, history, and secondary lookup identical before and after,
// across a reopen too.
func TestCompactReclaimsDeadBytes(t *testing.T) {
	dir := t.TempDir()
	secs := map[string]SecondaryExtract{"dept": deptExtract}
	cfg := pagedConfigWithSecs(dir, secs)
	cfg.BackgroundMigration = true
	acked := seedDeadBurns(t, cfg, 120, 42)

	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.DrainMigrations(); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	before := d.Stats()
	if before.Device.DeadBytes == 0 {
		t.Fatal("no dead bytes after the orphaning crash")
	}
	if u := before.Device.Utilization; u < 0 || u > 1 {
		t.Fatalf("utilization %v outside [0,1]", u)
	}
	sizeBefore := wormFileSize(t, dir)

	rep, err := d.Compact()
	if err != nil {
		t.Fatalf("compact: %v", err)
	}
	if !rep.Attempted || rep.Aborted {
		t.Fatalf("compaction did no work: %+v", rep)
	}
	if rep.ReclaimedBytes == 0 || rep.RunsMoved == 0 {
		t.Fatalf("compaction reclaimed nothing: %+v", rep)
	}

	after := d.Stats()
	if after.Device.DeadBytes != 0 {
		t.Fatalf("DeadBytes = %d after compaction, want 0", after.Device.DeadBytes)
	}
	if after.Device.WastedBytes >= before.Device.WastedBytes {
		t.Fatalf("WastedBytes %d -> %d: did not strictly decrease",
			before.Device.WastedBytes, after.Device.WastedBytes)
	}
	if after.Device.SpaceO >= before.Device.SpaceO {
		t.Fatalf("SpaceO %d -> %d: did not strictly decrease",
			before.Device.SpaceO, after.Device.SpaceO)
	}
	if u := after.Device.Utilization; u <= before.Device.Utilization || u > 1 {
		t.Fatalf("utilization %v -> %v: did not improve into [0,1]",
			before.Device.Utilization, u)
	}
	if sizeAfter := wormFileSize(t, dir); sizeAfter >= sizeBefore {
		t.Fatalf("worm.dev %d -> %d bytes: did not shrink on disk", sizeBefore, sizeAfter)
	}
	if got := after.Compaction; got.Rounds != 1 || got.ReclaimedBytes != rep.ReclaimedBytes {
		t.Fatalf("Stats().Compaction = %+v, want one round reclaiming %d", got, rep.ReclaimedBytes)
	}

	// Logical content untouched: compare against the oracle of
	// acknowledged commits on every read surface.
	oracle := applyOracle(t, cfg, acked)
	defer oracle.Close()
	assertEquivalent(t, "compacted", d, oracle, []string{"dept"})
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// And across a reopen: the relocated addresses are durable.
	re, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, "compacted+reopened", re, oracle, []string{"dept"})
	// The file is now fully live from sector zero: a second compaction
	// must find nothing to do.
	rep2, err := re.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Attempted {
		t.Fatalf("second compaction found work on a fully-live file: %+v", rep2)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCompactBackgroundTrigger proves the maintenance scheduler fires
// compaction on its own once DeadBytes crosses Config.CompactDeadBytes.
func TestCompactBackgroundTrigger(t *testing.T) {
	dir := t.TempDir()
	cfg := pagedConfig(dir)
	cfg.BackgroundMigration = true
	seedDeadBurns(t, cfg, 120, 7)

	cfg.CompactDeadBytes = 1
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for d.Stats().Compaction.Rounds == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("background compaction never ran: %+v", d.Stats().Compaction)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if dead := d.Stats().Device.DeadBytes; dead != 0 {
		t.Fatalf("DeadBytes = %d after background compaction, want 0", dead)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMigratorStickyErrorSurfaces injects a burn-path fault and demands
// the migrator's sticky error reach every surface deterministically:
// DrainMigrations' return, Stats().Migrator.Err, and Close — while the
// database itself keeps serving reads and writes.
func TestMigratorStickyErrorSurfaces(t *testing.T) {
	boom := errors.New("burn device unplugged")
	cfg := Config{BackgroundMigration: true, Shards: 2, LeafCapacity: 512, IndexCapacity: 1024}
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Safe to set after Open: no ticket can exist before the first
	// insert below, and the enqueue/pop mutex orders this write before
	// any worker's read.
	d.mig.burnHook = func(int, core.PendingSplit) error { return boom }

	var drainErr error
	for i := 0; i < 4000 && drainErr == nil; i++ {
		mustPut(t, d, fmt.Sprintf("key%02d", i%8), fmt.Sprintf("val%05d", i))
		if i%50 == 49 {
			drainErr = d.DrainMigrations()
		}
	}
	if !errors.Is(drainErr, boom) {
		t.Fatalf("DrainMigrations = %v, want %v", drainErr, boom)
	}
	if err := d.Stats().Migrator.Err; !errors.Is(err, boom) {
		t.Fatalf("Stats().Migrator.Err = %v, want %v", err, boom)
	}
	// Sticky: later drains keep reporting it.
	if err := d.DrainMigrations(); !errors.Is(err, boom) {
		t.Fatalf("second DrainMigrations = %v, want %v", err, boom)
	}
	// The database is degraded (marked leaves stay unmigrated), not dead.
	mustPut(t, d, "key00", "post-error")
	if v, ok, err := d.Get(record.StringKey("key00")); err != nil || !ok || string(v.Value) != "post-error" {
		t.Fatalf("Get after migrator error = %v %v %v", v, ok, err)
	}
	if err := d.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close = %v, want %v", err, boom)
	}
}

// TestCheckpointPauseAccounting checks the Stats().Checkpoint surface
// the fuzzy paged capture exists to shrink: counts and pause nanos move.
func TestCheckpointPauseAccounting(t *testing.T) {
	d, err := Open(pagedConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		mustPut(t, d, fmt.Sprintf("key%03d", i%20), fmt.Sprintf("val%04d", i))
	}
	base := d.Stats().Checkpoint
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats().Checkpoint
	if st.Checkpoints != base.Checkpoints+1 {
		t.Fatalf("Checkpoints %d -> %d, want +1", base.Checkpoints, st.Checkpoints)
	}
	if st.LastPauseNanos == 0 || st.PauseNanos <= base.PauseNanos {
		t.Fatalf("pause accounting did not move: %+v (was %+v)", st, base)
	}
	if st.MaxPauseNanos < st.LastPauseNanos {
		t.Fatalf("MaxPauseNanos %d < LastPauseNanos %d", st.MaxPauseNanos, st.LastPauseNanos)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// copyDir clones a database directory so one seeded template can feed
// many crash points.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		sp, dp := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if e.IsDir() {
			if err := os.MkdirAll(dp, 0o755); err != nil {
				t.Fatal(err)
			}
			copyDir(t, sp, dp)
			continue
		}
		data, err := os.ReadFile(sp)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dp, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRecoveryCompactionTornSweep is the compaction kill-and-recover
// property test: seed one directory with durable dead payload, then for
// a sweep of byte offsets into the compaction's write stream — rollback
// journal, region rewrite (the copy-forward), device truncate, sealing
// checkpoint (the v4 meta install) — tear there, crash, reopen, and
// demand the logical content equal the oracle on every read surface. A
// torn compaction must either fully install or fully roll back; no live
// run may be lost either way.
func TestRecoveryCompactionTornSweep(t *testing.T) {
	secs := map[string]SecondaryExtract{"dept": deptExtract}
	tmpl := t.TempDir()
	tcfg := pagedConfigWithSecs(tmpl, secs)
	tcfg.BackgroundMigration = true
	acked := seedDeadBurns(t, tcfg, 60, 1989)

	// Stabilize the template: reopen (replay re-burns the live tail,
	// the pre-crash burns become orphans), drain, checkpoint so the
	// dead-byte account is durable, close cleanly.
	d, err := Open(tcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.DrainMigrations(); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if d.Stats().Device.DeadBytes == 0 {
		t.Fatal("template carries no dead bytes; the sweep would be vacuous")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	oracle := applyOracle(t, tcfg, acked)
	defer oracle.Close()

	// Byte-by-byte through the journal header and first region frames,
	// then stride across the region rewrite, truncate, and checkpoint.
	var faultPoints []int64
	for b := int64(0); b < 240; b++ {
		faultPoints = append(faultPoints, b)
	}
	for b := int64(240); b < 40_000; b += 157 {
		faultPoints = append(faultPoints, b)
	}

	for n, tear := range faultPoints {
		dir := t.TempDir()
		copyDir(t, tmpl, dir)
		plan := storage.NewTearPlan(tear)
		ccfg := pagedCrashConfig(dir, plan)
		ccfg.BackgroundMigration = true
		d, err := Open(ccfg)
		if err != nil {
			// The tear fired in open's own writes (e.g. a fresh WAL
			// segment): nothing of the template can have been lost.
			if !errors.Is(err, storage.ErrInjected) {
				t.Fatalf("tear=%d: open: %v", tear, err)
			}
		} else {
			if _, cerr := d.Compact(); cerr != nil && !errors.Is(cerr, storage.ErrInjected) {
				t.Fatalf("tear=%d: compact: %v", tear, cerr)
			}
			crash(d)
		}

		re, err := Open(pagedConfigWithSecs(dir, secs))
		if err != nil {
			t.Fatalf("tear=%d: recovery: %v", tear, err)
		}
		// The per-timestamp secondary sweep dominates the runtime, so it
		// runs on a stride; scans, histories, and invariants run every
		// tear.
		var secCheck []string
		if n%8 == 0 {
			secCheck = []string{"dept"}
		}
		assertEquivalent(t, fmt.Sprintf("compact-tear=%d", tear), re, oracle, secCheck)
		re.Close()
	}
}

// TestRecoveryCompactionConcurrent runs compaction rounds against live
// concurrent writers (the install re-check and latch protocol under
// -race), then crashes and recovers: invariants must hold and every
// writer's final value must survive.
func TestRecoveryCompactionConcurrent(t *testing.T) {
	dir := t.TempDir()
	cfg := pagedConfig(dir)
	cfg.BackgroundMigration = true
	seedDeadBurns(t, cfg, 100, 11)

	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter, keys = 3, 120, 6
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("%c-w%d-key%02d", byte('A'+w*8), w, i%keys)
				val := fmt.Sprintf("dept%02d|v%d", i%3, i)
				err := d.Update(func(tx *txn.Txn) error {
					return tx.Put(record.StringKey(key), []byte(val))
				})
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if _, err := d.Compact(); err != nil {
				t.Errorf("concurrent compact: %v", err)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := d.DrainMigrations(); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	crash(d)

	re, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := re.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		for k := 0; k < keys; k++ {
			last := perWriter - keys + k // largest i < perWriter with i%keys == k
			key := fmt.Sprintf("%c-w%d-key%02d", byte('A'+w*8), w, k)
			want := fmt.Sprintf("dept%02d|v%d", last%3, last)
			v, ok, err := re.Get(record.StringKey(key))
			if err != nil || !ok || string(v.Value) != want {
				t.Fatalf("Get(%s) = %q %v %v, want %q", key, v.Value, ok, err, want)
			}
		}
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}
