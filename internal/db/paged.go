package db

// The paged durable mode: the storage devices themselves are disk files
// (internal/pagestore), so a checkpoint flushes dirty pages instead of
// rewriting a logical image of the whole database.
//
// The protocol, precisely:
//
//   - Between checkpoints the device files are never written, with one
//     exception: WORM burns append immediately (write-once media has no
//     in-place state to protect) but only become trusted once a
//     checkpoint fsyncs them. Magnetic page writes buffer in the pool's
//     dirty-page table (no-steal: dirty pages are never evicted), so
//     the page file always reconstructs to the last installed
//     checkpoint boundary.
//
//   - A checkpoint pre-flushes dirty pages flush-group by flush-group
//     (one group per shard, one for the secondary indexes) without any
//     pause, then captures the boundary FUZZILY, one flush group at a
//     time: the WAL is rotated under the commit token alone, and then
//     each shard is captured under the token plus that ONE shard's read
//     latch — its boundary LSN (v4 meta GroupLSNs[i]), its tree image,
//     its dirty pages (memory copies only), and its slice of the
//     in-flight write-lock set. The secondary indexes are captured
//     last, the same way, under the secondary latch (SecLSN), together
//     with the page allocator and the WORM burned count. No instant
//     quiesces the whole database: the pause a writer can observe is
//     one shard's capture, not all of them. Replay compensates for the
//     skew — a logged version applies to its primary shard only past
//     that shard's GroupLSN, and to the secondaries only past SecLSN —
//     so reload + tail replay stays exactly-once per tree. The skew
//     windows can leak bounded garbage on a crash (a page allocated, or
//     a run burned, after its tree's capture but before the allocator/
//     burned capture): allocated-but-unreferenced pages and dead burns,
//     never lost data; compaction reclaims the dead burns.
//
//   - The captured pages are flushed, both files fsynced, and the v4
//     checkpoint metadata durably installed (tmp + fsync + rename).
//     Every page overwritten by a flush had its old contents appended
//     to the page file's rollback journal (and fsynced) first, so a
//     crash anywhere in the flush restores the previous boundary image
//     and the not-yet-truncated WAL tail still replays exactly once.
//     After the install, the journal is retired and old segments are
//     deleted.
//
//   - Recovery (openPaged) reopens the device files — replaying a
//     matching rollback journal, verifying page CRCs as pages are read,
//     and verifying + clipping the WORM tail past the boundary —
//     reattaches the trees from their checkpointed images, erases the
//     pending versions of the transactions in flight at the boundary
//     (they died with the crash; a logical dump filters them out, a
//     page image cannot), and replays the WAL tail past the boundary
//     LSN. Orphaned intact burns stay as burned waste, exactly as
//     unacknowledged burns on write-once media would.

import (
	"errors"
	"fmt"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/pagestore"
	"repro/internal/record"
	"repro/internal/secondary"
	"repro/internal/wal"
)

// openPaged builds the paged-device substrate of a durable database:
// fresh device files for a new (or pre-first-checkpoint) directory, or
// a reattachment to the files an installed checkpoint describes. The
// caller (openDurable) then replays the WAL tail and wires the
// transaction manager exactly as in the logical mode.
func openPaged(cfg Config, info wal.CheckpointInfo, found bool) (*DB, error) {
	pagePath, burnPath := pagestore.Paths(cfg.Dir)
	d := &DB{
		secondaries: make(map[string]*secondaryIndex),
		policy:      cfg.Policy,
		bufferPages: cfg.BufferPages,
		secTag:      cfg.Shards,
		dir:         cfg.Dir,
		logWrap:     cfg.logWrap,
	}

	if !found {
		// No installed checkpoint: whatever device files exist are the
		// remains of an open that crashed before its seal checkpoint —
		// nothing in them was ever acknowledged. Start clean.
		pf, err := pagestore.Create(pagestore.Config{Path: pagePath, PageSize: cfg.PageSize, Wrap: cfg.blockWrap})
		if err != nil {
			return nil, err
		}
		bf, err := pagestore.CreateBurn(pagestore.BurnConfig{Path: burnPath, SectorSize: cfg.SectorSize, Wrap: cfg.blockWrap})
		if err != nil {
			_ = pf.Close()
			return nil, err
		}
		d.pf, d.bf = pf, bf
		d.mag, d.worm = pf, bf
		d.pool = buffer.NewWritebackPool(pf, cfg.BufferPages)
		trees := make([]*core.Tree, cfg.Shards)
		for i := range trees {
			tree, err := core.New(d.pool.Tagged(i), bf, core.Config{
				Policy:        cfg.Policy,
				MaxKeySize:    cfg.MaxKeySize,
				MaxValueSize:  cfg.MaxValueSize,
				LeafCapacity:  cfg.LeafCapacity,
				IndexCapacity: cfg.IndexCapacity,
			})
			if err != nil {
				d.closeDevices()
				return nil, err
			}
			trees[i] = tree
		}
		d.store = newShardedStore(trees)
		for name, extract := range cfg.Secondaries {
			if err := d.CreateSecondary(name, extract); err != nil {
				d.closeDevices()
				return nil, err
			}
		}
		return d, nil
	}

	m := info.Paged
	pf, err := pagestore.Open(pagestore.Config{Path: pagePath, PageSize: m.PageSize, Wrap: cfg.blockWrap},
		m.Alloc, m.MagStats, m.Epoch)
	if err != nil {
		return nil, err
	}
	bf, rep, err := pagestore.OpenBurn(pagestore.BurnConfig{Path: burnPath, SectorSize: m.SectorSize, Wrap: cfg.blockWrap},
		m.Burned, m.WormStats, m.Epoch)
	if err != nil {
		_ = pf.Close()
		return nil, err
	}
	d.pf, d.bf = pf, bf
	d.mag, d.worm = pf, bf
	d.epoch = m.Epoch
	// Dead-burn accounting survives the reopen, and the clipped tail's
	// orphans (burns acknowledged by no checkpoint) join it: both are
	// write-once payload nothing references, reclaimable by compaction.
	d.deadBytes.Store(m.DeadBytes + rep.OrphanPayloadBytes)
	d.pool = buffer.NewWritebackPool(pf, cfg.BufferPages)
	trees := make([]*core.Tree, len(m.Shards))
	for i, img := range m.Shards {
		tree, terr := core.FromImage(d.pool.Tagged(i), bf, img)
		if terr != nil {
			d.closeDevices()
			return nil, fmt.Errorf("db: shard %d: %w", i, terr)
		}
		trees[i] = tree
	}
	d.store = newShardedStore(trees)
	d.policy = trees[0].Policy()
	for name, img := range m.Secondaries {
		ix, serr := secondary.FromImage(name, d.pool.Tagged(d.secTag), bf, img)
		if serr != nil {
			d.closeDevices()
			return nil, fmt.Errorf("db: secondary %q: %w", name, serr)
		}
		d.secondaries[name] = &secondaryIndex{index: ix, extract: cfg.Secondaries[name]}
	}
	// The image may contain pending versions of transactions in flight
	// at the boundary; they died with the crash. Erase them before the
	// WAL tail replays (a committed one re-arrives from its log frame).
	// The lock-table snapshot is a superset of what actually reached
	// the trees, so "nothing to abort" is fine.
	for _, p := range m.Pending {
		if err := d.store.AbortKey(p.Key, p.TxnID); err != nil && !errors.Is(err, core.ErrNoPending) {
			d.closeDevices()
			return nil, fmt.Errorf("db: erasing boundary pending version of %s: %w", p.Key, err)
		}
	}
	return d, nil
}

// closeDevices releases the paged device files on a failed open.
func (d *DB) closeDevices() {
	if d.pf != nil {
		_ = d.pf.Close()
	}
	if d.bf != nil {
		_ = d.bf.Close()
	}
}

// flushPages writes one captured batch of dirty pages through the page
// file's journal protocol and retires the untouched ones from the
// dirty-page table.
func (d *DB) flushPages(copies []buffer.DirtyPage) error {
	if len(copies) == 0 {
		return nil
	}
	pages := make([]uint64, len(copies))
	datas := make([][]byte, len(copies))
	for i, cp := range copies {
		pages[i] = cp.Page
		datas[i] = cp.Data
	}
	if err := d.pf.WriteBatch(pages, datas); err != nil {
		return err
	}
	d.pool.MarkClean(copies)
	return nil
}

// checkpointPagedLocked is DB.Checkpoint for the paged mode, called
// under cpMu. Its cost is O(dirty pages), independent of database size:
// nothing is dumped, only the dirty-page table is flushed and a
// metadata-only checkpoint installed. The boundary capture is fuzzy —
// per flush group, never whole-database; see the package comment's
// protocol and the GroupLSNs/SecLSN fields of wal.PagedMeta.
func (d *DB) checkpointPagedLocked() error {
	// Fuzzy pre-flush, flush group by flush group (shards, then the
	// secondary indexes — captured in ONE pool walk), with commits
	// running: shrinks the set the boundary capture must copy. Pages
	// this pass races with are simply re-captured at the boundary (the
	// write epoch moved, so they stay dirty).
	groups := d.pool.CaptureDirtyGroups()
	for tag := 0; tag <= d.secTag; tag++ {
		if err := d.flushPages(groups[tag]); err != nil {
			return err
		}
	}
	if err := d.flushPages(groups[buffer.NoTag]); err != nil {
		return err
	}

	nShards := len(d.store.shards)
	meta := wal.PagedMeta{
		Epoch:      d.epoch + 1,
		PageSize:   d.pf.PageSize(),
		SectorSize: d.bf.SectorSize(),
		GroupLSNs:  make([]uint64, nShards),
		Shards:     make([]core.TreeImage, nShards),
	}

	// Rotate first, under the token alone: every group LSN captured
	// below is >= the rotation point, so the rotation LSN is the
	// checkpoint header's LSN (segment retention, replay start) while
	// the per-group LSNs make replay exactly-once per tree.
	var boundary uint64
	err := d.quiesceTimed(func() error {
		lsn, err := d.wal.Rotate()
		boundary = lsn
		return err
	})
	if err != nil {
		return err
	}

	// Capture shard by shard: the token stops commit posting (so the
	// group LSN is posting-exact — appended implies fully in the store),
	// and this ONE shard's read latch stops its in-flight transactions'
	// pending inserts. Writers of every other shard run free; any page
	// they re-dirty is detected by its write epoch and stays dirty. The
	// flush I/O runs after the latch is released.
	for i := range d.store.shards {
		i, sh := i, d.store.shards[i]
		var copies []buffer.DirtyPage
		err := d.quiesceTimed(func() error {
			sh.mu.RLock()
			defer sh.mu.RUnlock()
			meta.GroupLSNs[i] = d.wal.LastLSN()
			meta.Shards[i] = sh.tree.Image()
			copies = d.pool.CaptureDirty(i)
			// This shard's slice of the in-flight write-lock set: the
			// captured pages may hold those transactions' pending
			// versions, and if this boundary is ever recovered they are
			// dead — recovery erases them (see openPaged). A lock
			// released after this instant is either aborted (the erase
			// finds nothing or removes a version the flushed page still
			// shows) or committed past GroupLSNs[i] (erased, then
			// replayed).
			for _, p := range d.tm.PendingWrites() {
				if record.ShardOfKey(p.Key, nShards) == i {
					meta.Pending = append(meta.Pending, p)
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		if err := d.flushPages(copies); err != nil {
			return err
		}
	}

	// The secondary indexes are captured last — SecLSN >= every group
	// LSN, which replay relies on — together with everything whose
	// capture must not precede any tree image: the page allocator (a
	// page referenced by an image must be allocated in it) and the WORM
	// burned count (a run referenced by an image must be below it).
	// Captures after an image but before this instant leak at most
	// bounded garbage on a crash: an allocated-but-unreferenced page, a
	// dead burn for compaction to reclaim — never data.
	var clock record.Timestamp
	var copies []buffer.DirtyPage
	err = d.quiesceTimed(func() error {
		d.secMu.RLock()
		defer d.secMu.RUnlock()
		meta.SecLSN = d.wal.LastLSN()
		meta.Secondaries = make(map[string]core.TreeImage)
		for name, s := range d.secondaries {
			meta.Secondaries[name] = s.index.Image()
		}
		// Exact-tag captures: shard pages re-dirtied since their own
		// group's boundary must stay dirty for the NEXT checkpoint —
		// flushing them here would install commits past their shard's
		// GroupLSN, which replay then re-applies (duplicates).
		copies = d.pool.CaptureDirtyExact(d.secTag)
		copies = append(copies, d.pool.CaptureDirtyExact(buffer.NoTag)...)
		clock = d.tm.Now()
		meta.Alloc = d.pf.AllocState()
		meta.MagStats = d.pf.Stats()
		meta.Burned = d.bf.Burned()
		meta.WormStats = d.bf.Stats()
		meta.DeadBytes = d.deadBytes.Load()
		return nil
	})
	if err != nil {
		return err
	}

	if err := d.flushPages(copies); err != nil {
		return err
	}
	if err := d.pf.Sync(); err != nil {
		return err
	}
	if err := d.bf.Sync(); err != nil {
		return err
	}
	info := wal.CheckpointInfo{
		Shards:      len(d.store.shards),
		Clock:       clock,
		LSN:         boundary,
		Secondaries: d.secondaryNames(),
		Paged:       &meta,
	}
	if err := wal.WriteCheckpoint(d.dir, d.logWrap, info, nil); err != nil {
		return err
	}
	// The rename landed: the installed boundary IS meta.Epoch from here
	// on, whatever later steps return — record it before anything can
	// fail, or the next checkpoint would reuse the epoch.
	d.epoch = meta.Epoch
	// Retire the rollback journal and advance the restore point, then
	// truncate the log.
	if err := d.pf.CompleteFlush(meta.Epoch, meta.Alloc.Pages); err != nil {
		return err
	}
	if err := d.wal.RemoveSegmentsBelow(d.wal.CurrentSegment()); err != nil {
		return err
	}
	d.wal.MarkCheckpoint()
	return nil
}
