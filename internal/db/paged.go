package db

// The paged durable mode: the storage devices themselves are disk files
// (internal/pagestore), so a checkpoint flushes dirty pages instead of
// rewriting a logical image of the whole database.
//
// The protocol, precisely:
//
//   - Between checkpoints the device files are never written, with one
//     exception: WORM burns append immediately (write-once media has no
//     in-place state to protect) but only become trusted once a
//     checkpoint fsyncs them. Magnetic page writes buffer in the pool's
//     dirty-page table (no-steal: dirty pages are never evicted), so
//     the page file always reconstructs to the last installed
//     checkpoint boundary.
//
//   - A checkpoint pre-flushes dirty pages flush-group by flush-group
//     (one group per shard, one for the secondary indexes) without any
//     pause, then briefly holds the commit leadership token plus every
//     shard's read latch to rotate the WAL and capture the boundary:
//     the remaining dirty pages (memory copies only — no I/O under the
//     latches), every tree's image, the page allocator, the WORM
//     burned count, and the in-flight write-lock set. The token stops
//     commit posting; the latches stop in-flight transactions' pending
//     inserts — together they freeze every writer of trees, pages, and
//     burns, so the capture is page-consistent with the rotation LSN.
//
//   - The captured pages are flushed, both files fsynced, and the v4
//     checkpoint metadata durably installed (tmp + fsync + rename).
//     Every page overwritten by a flush had its old contents appended
//     to the page file's rollback journal (and fsynced) first, so a
//     crash anywhere in the flush restores the previous boundary image
//     and the not-yet-truncated WAL tail still replays exactly once.
//     After the install, the journal is retired and old segments are
//     deleted.
//
//   - Recovery (openPaged) reopens the device files — replaying a
//     matching rollback journal, verifying page CRCs as pages are read,
//     and verifying + clipping the WORM tail past the boundary —
//     reattaches the trees from their checkpointed images, erases the
//     pending versions of the transactions in flight at the boundary
//     (they died with the crash; a logical dump filters them out, a
//     page image cannot), and replays the WAL tail past the boundary
//     LSN. Orphaned intact burns stay as burned waste, exactly as
//     unacknowledged burns on write-once media would.

import (
	"errors"
	"fmt"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/pagestore"
	"repro/internal/record"
	"repro/internal/secondary"
	"repro/internal/wal"
)

// openPaged builds the paged-device substrate of a durable database:
// fresh device files for a new (or pre-first-checkpoint) directory, or
// a reattachment to the files an installed checkpoint describes. The
// caller (openDurable) then replays the WAL tail and wires the
// transaction manager exactly as in the logical mode.
func openPaged(cfg Config, info wal.CheckpointInfo, found bool) (*DB, error) {
	pagePath, burnPath := pagestore.Paths(cfg.Dir)
	d := &DB{
		secondaries: make(map[string]*secondaryIndex),
		policy:      cfg.Policy,
		bufferPages: cfg.BufferPages,
		secTag:      cfg.Shards,
		dir:         cfg.Dir,
		logWrap:     cfg.logWrap,
	}

	if !found {
		// No installed checkpoint: whatever device files exist are the
		// remains of an open that crashed before its seal checkpoint —
		// nothing in them was ever acknowledged. Start clean.
		pf, err := pagestore.Create(pagestore.Config{Path: pagePath, PageSize: cfg.PageSize, Wrap: cfg.blockWrap})
		if err != nil {
			return nil, err
		}
		bf, err := pagestore.CreateBurn(pagestore.BurnConfig{Path: burnPath, SectorSize: cfg.SectorSize, Wrap: cfg.blockWrap})
		if err != nil {
			pf.Close()
			return nil, err
		}
		d.pf, d.bf = pf, bf
		d.mag, d.worm = pf, bf
		d.pool = buffer.NewWritebackPool(pf, cfg.BufferPages)
		trees := make([]*core.Tree, cfg.Shards)
		for i := range trees {
			tree, err := core.New(d.pool.Tagged(i), bf, core.Config{
				Policy:        cfg.Policy,
				MaxKeySize:    cfg.MaxKeySize,
				MaxValueSize:  cfg.MaxValueSize,
				LeafCapacity:  cfg.LeafCapacity,
				IndexCapacity: cfg.IndexCapacity,
			})
			if err != nil {
				d.closeDevices()
				return nil, err
			}
			trees[i] = tree
		}
		d.store = newShardedStore(trees)
		for name, extract := range cfg.Secondaries {
			if err := d.CreateSecondary(name, extract); err != nil {
				d.closeDevices()
				return nil, err
			}
		}
		return d, nil
	}

	m := info.Paged
	pf, err := pagestore.Open(pagestore.Config{Path: pagePath, PageSize: m.PageSize, Wrap: cfg.blockWrap},
		m.Alloc, m.MagStats, m.Epoch)
	if err != nil {
		return nil, err
	}
	bf, _, err := pagestore.OpenBurn(pagestore.BurnConfig{Path: burnPath, SectorSize: m.SectorSize, Wrap: cfg.blockWrap},
		m.Burned, m.WormStats)
	if err != nil {
		pf.Close()
		return nil, err
	}
	d.pf, d.bf = pf, bf
	d.mag, d.worm = pf, bf
	d.epoch = m.Epoch
	d.pool = buffer.NewWritebackPool(pf, cfg.BufferPages)
	trees := make([]*core.Tree, len(m.Shards))
	for i, img := range m.Shards {
		tree, terr := core.FromImage(d.pool.Tagged(i), bf, img)
		if terr != nil {
			d.closeDevices()
			return nil, fmt.Errorf("db: shard %d: %w", i, terr)
		}
		trees[i] = tree
	}
	d.store = newShardedStore(trees)
	d.policy = trees[0].Policy()
	for name, img := range m.Secondaries {
		ix, serr := secondary.FromImage(name, d.pool.Tagged(d.secTag), bf, img)
		if serr != nil {
			d.closeDevices()
			return nil, fmt.Errorf("db: secondary %q: %w", name, serr)
		}
		d.secondaries[name] = &secondaryIndex{index: ix, extract: cfg.Secondaries[name]}
	}
	// The image may contain pending versions of transactions in flight
	// at the boundary; they died with the crash. Erase them before the
	// WAL tail replays (a committed one re-arrives from its log frame).
	// The lock-table snapshot is a superset of what actually reached
	// the trees, so "nothing to abort" is fine.
	for _, p := range m.Pending {
		if err := d.store.AbortKey(p.Key, p.TxnID); err != nil && !errors.Is(err, core.ErrNoPending) {
			d.closeDevices()
			return nil, fmt.Errorf("db: erasing boundary pending version of %s: %w", p.Key, err)
		}
	}
	return d, nil
}

// closeDevices releases the paged device files on a failed open.
func (d *DB) closeDevices() {
	if d.pf != nil {
		_ = d.pf.Close()
	}
	if d.bf != nil {
		_ = d.bf.Close()
	}
}

// flushPages writes one captured batch of dirty pages through the page
// file's journal protocol and retires the untouched ones from the
// dirty-page table.
func (d *DB) flushPages(copies []buffer.DirtyPage) error {
	if len(copies) == 0 {
		return nil
	}
	pages := make([]uint64, len(copies))
	datas := make([][]byte, len(copies))
	for i, cp := range copies {
		pages[i] = cp.Page
		datas[i] = cp.Data
	}
	if err := d.pf.WriteBatch(pages, datas); err != nil {
		return err
	}
	d.pool.MarkClean(copies)
	return nil
}

// checkpointPagedLocked is DB.Checkpoint for the paged mode, called
// under cpMu. Its cost is O(dirty pages), independent of database size:
// nothing is dumped, only the dirty-page table is flushed and a
// metadata-only checkpoint installed.
func (d *DB) checkpointPagedLocked() error {
	// Fuzzy pre-flush, flush group by flush group (shards, then the
	// secondary indexes — captured in ONE pool walk), with commits
	// running: shrinks the set the boundary capture must copy. Pages
	// this pass races with are simply re-captured at the boundary (the
	// write epoch moved, so they stay dirty).
	groups := d.pool.CaptureDirtyGroups()
	for tag := 0; tag <= d.secTag; tag++ {
		if err := d.flushPages(groups[tag]); err != nil {
			return err
		}
	}
	if err := d.flushPages(groups[buffer.NoTag]); err != nil {
		return err
	}

	var boundary uint64
	var clock record.Timestamp
	var copies []buffer.DirtyPage
	meta := wal.PagedMeta{
		Epoch:      d.epoch + 1,
		PageSize:   d.pf.PageSize(),
		SectorSize: d.bf.SectorSize(),
	}
	err := d.tm.Quiesce(func() error {
		// Under the leadership token no commit is mid-posting — but
		// in-flight transactions still write pending versions into the
		// trees under shard write latches (§4: uncommitted data lives,
		// erasable, in the current database), and those writes alloc
		// pages, split nodes, and burn WORM sectors. Holding every
		// shard's read latch on top of the token freezes all of it:
		// the capture below is page-consistent with the rotation LSN.
		// Lock order (token, then latches) matches commit posting, so
		// this cannot deadlock; only memory copies happen under the
		// latches — the flush I/O runs after everything is released,
		// and any page re-dirtied by then is detected by its write
		// epoch and left dirty.
		for _, sh := range d.store.shards {
			sh.mu.RLock()
		}
		d.secMu.RLock()
		defer func() {
			d.secMu.RUnlock()
			for _, sh := range d.store.shards {
				sh.mu.RUnlock()
			}
		}()
		lsn, err := d.wal.Rotate()
		if err != nil {
			return err
		}
		boundary = lsn
		clock = d.tm.Now()
		copies = d.pool.CaptureDirty(buffer.NoTag)
		meta.Alloc = d.pf.AllocState()
		meta.MagStats = d.pf.Stats()
		meta.Burned = d.bf.Burned()
		meta.WormStats = d.bf.Stats()
		meta.Shards = make([]core.TreeImage, len(d.store.shards))
		for i, sh := range d.store.shards {
			meta.Shards[i] = sh.tree.Image()
		}
		meta.Secondaries = make(map[string]core.TreeImage)
		for name, s := range d.secondaries {
			meta.Secondaries[name] = s.index.Image()
		}
		// The flushed pages may hold these transactions' pending
		// versions; if this boundary is ever recovered, they are dead
		// and recovery erases them (see openPaged).
		meta.Pending = d.tm.PendingWrites()
		return nil
	})
	if err != nil {
		return err
	}

	if err := d.flushPages(copies); err != nil {
		return err
	}
	if err := d.pf.Sync(); err != nil {
		return err
	}
	if err := d.bf.Sync(); err != nil {
		return err
	}
	info := wal.CheckpointInfo{
		Shards:      len(d.store.shards),
		Clock:       clock,
		LSN:         boundary,
		Secondaries: d.secondaryNames(),
		Paged:       &meta,
	}
	if err := wal.WriteCheckpoint(d.dir, d.logWrap, info, nil); err != nil {
		return err
	}
	// The rename landed: the installed boundary IS meta.Epoch from here
	// on, whatever later steps return — record it before anything can
	// fail, or the next checkpoint would reuse the epoch.
	d.epoch = meta.Epoch
	// Retire the rollback journal and advance the restore point, then
	// truncate the log.
	if err := d.pf.CompleteFlush(meta.Epoch, meta.Alloc.Pages); err != nil {
		return err
	}
	if err := d.wal.RemoveSegmentsBelow(d.wal.CurrentSegment()); err != nil {
		return err
	}
	d.cpLastBytes = d.wal.Stats().Bytes
	return nil
}
