package db

// The background time-split migrator: one worker goroutine per shard
// turning the core layer's deferred-split tickets (core.PendingSplit)
// into completed migrations. Each ticket is processed in three latch
// regimes — capture under the shard's read latch, burn with NO latch
// held (the slow write-once append, the whole reason this subsystem
// exists), swap under a short write latch — so the inserting goroutine
// never pays for WORM I/O and the write latch is held only for the
// in-memory swap.
//
// The consistency contract, precisely:
//
//   - No version is ever unreachable. The swap installs the historical
//     node and rewrites the current node through the same splitNode
//     machinery an inline split uses, atomically under the shard's write
//     latch; a reader (which holds the read latch for the duration of
//     any node access) sees the pre-swap or the post-swap node, never a
//     torn intermediate.
//   - Concurrent inserts into a queued leaf are never lost: they land in
//     the leaf under the write latch and partition into the current half
//     at swap time (commit timestamps are always >= the chosen split
//     time; see internal/core/migrate.go for why the captured historical
//     half is immutable).
//   - A lost race (the leaf was split inline after all — physical page
//     exhaustion forces that) abandons the burned node as unreferenced
//     write-once waste, counted in MigratorStats.Abandoned, exactly as a
//     torn migration on real WORM media would be.
//   - Checkpoints fence the migrator (pause: in-flight tickets complete,
//     workers idle) around the boundary capture, so a v3 dump or v4 page
//     capture never interleaves with a swap or a boundary-straddling
//     burn. Queued-but-unprocessed marks are NOT part of durable state:
//     after a crash they vanish, the leaves are simply still unsplit,
//     and future inserts re-queue them.
//   - Close stops the workers after their in-flight ticket (if any)
//     completes; remaining queued marks are dropped. A marked-but-
//     unsplit leaf is a valid TSB-tree state, so nothing is owed.
//     DrainMigrations forces the queue empty first when a test or an
//     unload wants every historical node on the write-once device.

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// MigratorStats is the accounting of the background time-split migrator
// (Stats().Migrator). SplitLatchNanos is reported for inline-mode
// databases too: it is the latch-hold measurement the migrator shrinks.
type MigratorStats struct {
	// Enabled reports whether Config.BackgroundMigration is on.
	Enabled bool
	// Marked counts tickets enqueued: leaves that deferred a time split.
	Marked uint64
	// Migrated counts background splits applied (historical nodes
	// burned off-latch and swapped in); VersionsMigrated and BytesBurned
	// are their payload.
	Migrated         uint64
	VersionsMigrated uint64
	BytesBurned      uint64
	// Stale counts tickets dropped before burning (the leaf was split
	// some other way first): no write-once capacity was consumed.
	Stale uint64
	// Abandoned counts burns orphaned by a lost race — the leaf was
	// inline-split between capture and swap — with AbandonedBytes the
	// write-once capacity wasted.
	Abandoned      uint64
	AbandonedBytes uint64
	// InlineFallbacks counts queued leaves that were split inline after
	// all because they ran out of physical page headroom (summed from
	// the shard trees).
	InlineFallbacks uint64
	// QueueDepth and InFlight describe the backlog right now.
	QueueDepth int
	InFlight   int
	// PendingNodes is how many leaves are currently marked across all
	// shard trees (the authoritative deferred-split state).
	PendingNodes int
	// SplitLatchNanos is cumulative time spent splitting nodes under
	// shard write latches — inline splits and background swaps alike
	// (summed from the shard trees). Background mode grows it slower:
	// the WORM append and historical-node encoding run off-latch.
	SplitLatchNanos uint64
	// CaptureNanos/BurnNanos/SwapNanos break a background migration into
	// its three latch regimes: read latch, no latch, write latch.
	CaptureNanos uint64
	BurnNanos    uint64
	SwapNanos    uint64
	// Err is the sticky first capture/burn/swap failure, if any. The
	// workers keep consuming tickets past it (a failed ticket leaves a
	// marked-but-unsplit leaf — a valid tree state), but the error is
	// never dropped: DrainMigrations and Close return it too.
	Err error
}

// migrator owns the per-shard background workers. All mutable state is
// guarded by mu. Each worker sleeps on its own condition variable so an
// enqueue wakes exactly the owning shard's worker (no thundering herd);
// doneCond is broadcast whenever in-flight work completes or the pause
// gate opens, which is what pause and drain wait on.
type migrator struct {
	store *shardedStore

	mu       sync.Mutex   //tsb:latch level=7 name=migrator-queue
	conds    []*sync.Cond // one per shard worker
	doneCond *sync.Cond
	queues   [][]core.PendingSplit // per-shard FIFO of tickets
	queued   int
	inflight int
	paused   bool //tsb:latch level=2 name=migrator-fence kind=state
	stopped  bool
	err      error // sticky first capture/burn/swap failure

	marked         uint64
	migrated       uint64
	versions       uint64
	bytesBurned    uint64
	stale          uint64
	abandoned      uint64
	abandonedBytes uint64

	// capture/burn/swap point at the DB's phase histograms (which exist
	// in every mode) and log at its event log; the phase-nanos stats
	// derive from the histogram sums. Set once in startMigrator before
	// the first ticket can flow, same write-once discipline as onAbandon.
	capture, burn, swap *obs.Histogram
	log                 *obs.EventLog

	// onAbandon, when set, is told the payload bytes of every abandoned
	// burn: the DB routes them into its dead-byte account so the waste
	// shows up in Stats().Device and compaction can reclaim it. Set once
	// before the first ticket can flow (between newMigrator and wiring
	// the store), never changed.
	onAbandon func(bytes uint64)
	// burnHook, when set, runs before each ticket's burn and can fail
	// it: the fault-injection seam tests use to exercise the sticky
	// error path without a misbehaving device. Same write-once
	// discipline as onAbandon.
	burnHook func(shard int, ps core.PendingSplit) error

	wg sync.WaitGroup
}

// newMigrator starts one worker per shard.
func newMigrator(store *shardedStore) *migrator {
	m := &migrator{
		store:  store,
		queues: make([][]core.PendingSplit, len(store.shards)),
		conds:  make([]*sync.Cond, len(store.shards)),
	}
	m.doneCond = sync.NewCond(&m.mu)
	for i := range store.shards {
		m.conds[i] = sync.NewCond(&m.mu)
		m.wg.Add(1)
		go m.worker(i)
	}
	return m
}

// wakeAll wakes every worker plus the pause/drain waiters; used when a
// global condition (paused, stopped) changes. Callers hold mu.
func (m *migrator) wakeAll() {
	for _, c := range m.conds {
		c.Broadcast()
	}
	m.doneCond.Broadcast()
}

// enqueue adds freshly-taken tickets for shard i and wakes its worker.
func (m *migrator) enqueue(i int, tickets []core.PendingSplit) {
	if m == nil || len(tickets) == 0 {
		return
	}
	m.mu.Lock()
	m.queues[i] = append(m.queues[i], tickets...)
	m.queued += len(tickets)
	m.marked += uint64(len(tickets))
	m.conds[i].Signal()
	m.mu.Unlock()
}

// worker is shard i's migration loop: pop a ticket, process it, repeat.
// It idles while paused and exits when stopped.
func (m *migrator) worker(i int) {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for !m.stopped && (m.paused || len(m.queues[i]) == 0) {
			m.conds[i].Wait()
		}
		if m.stopped {
			m.mu.Unlock()
			return
		}
		ps := m.queues[i][0]
		m.queues[i] = m.queues[i][1:]
		m.queued--
		m.inflight++
		m.mu.Unlock()

		err := m.process(i, ps)

		m.mu.Lock()
		m.inflight--
		if err != nil && m.err == nil {
			m.err = err
		}
		m.doneCond.Broadcast()
		m.mu.Unlock()
	}
}

// process runs one ticket through capture (read latch) → burn (no
// latch) → swap (write latch). Each phase feeds its histogram and the
// whole ticket is one span in the event log.
func (m *migrator) process(i int, ps core.PendingSplit) error {
	sh := m.store.shards[i]
	sp := m.log.StartSpan("migrate", nil)

	start := time.Now()
	sh.mu.RLock()
	cap, ok, err := sh.tree.CaptureSplit(ps)
	sh.mu.RUnlock()
	m.capture.Observe(time.Since(start))
	if err != nil {
		sp.End(fmt.Sprintf("shard=%d capture error: %v", i, err))
		return fmt.Errorf("db: migrator shard %d capture: %w", i, err)
	}
	if !ok {
		m.mu.Lock()
		m.stale++
		m.mu.Unlock()
		sp.End(fmt.Sprintf("shard=%d stale", i))
		return nil
	}

	start = time.Now()
	if h := m.burnHook; h != nil {
		if err := h(i, ps); err != nil {
			sp.End(fmt.Sprintf("shard=%d burn error: %v", i, err))
			return fmt.Errorf("db: migrator shard %d burn: %w", i, err)
		}
	}
	addr, err := sh.tree.BurnCapture(cap)
	m.burn.Observe(time.Since(start))
	if err != nil {
		sp.End(fmt.Sprintf("shard=%d burn error: %v", i, err))
		return fmt.Errorf("db: migrator shard %d burn: %w", i, err)
	}

	start = time.Now()
	sh.mu.Lock()
	//tsb:allow latchio -- the documented swap: the burn itself ran latch-free above; ApplySplit only re-burns when an ancestor filled up mid-migration
	applied, err := sh.tree.ApplySplit(cap, addr)
	sh.mu.Unlock()
	m.swap.Observe(time.Since(start))
	if err != nil {
		sp.End(fmt.Sprintf("shard=%d swap error: %v", i, err))
		return fmt.Errorf("db: migrator shard %d swap: %w", i, err)
	}

	m.mu.Lock()
	if applied {
		m.migrated++
		m.versions += uint64(cap.HistVersions())
		m.bytesBurned += uint64(cap.HistBytes())
	} else {
		m.abandoned++
		m.abandonedBytes += uint64(cap.HistBytes())
		if m.onAbandon != nil {
			m.onAbandon(uint64(cap.HistBytes()))
		}
	}
	m.mu.Unlock()
	if applied {
		sp.End(fmt.Sprintf("shard=%d burned=%dB", i, cap.HistBytes()))
	} else {
		sp.End(fmt.Sprintf("shard=%d abandoned=%dB", i, cap.HistBytes()))
	}
	return nil
}

// pause fences the migrator for a checkpoint boundary: no new ticket
// starts, and pause returns only once the in-flight tickets (at most one
// per shard) have completed. Nil-safe.
//
//tsb:acquires migrator-fence
func (m *migrator) pause() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.paused = true
	for m.inflight > 0 {
		m.doneCond.Wait()
	}
	m.mu.Unlock()
}

// resume lifts the fence. Nil-safe.
//
//tsb:releases migrator-fence
func (m *migrator) resume() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.paused = false
	m.wakeAll()
	m.mu.Unlock()
}

// stop terminates the workers after their in-flight ticket completes and
// returns the sticky error, if any. Remaining queued tickets are dropped
// — a marked-but-unsplit leaf is a valid tree state. Nil-safe,
// idempotent.
func (m *migrator) stop() error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	if m.stopped {
		err := m.err
		m.mu.Unlock()
		return err
	}
	m.stopped = true
	m.wakeAll()
	m.mu.Unlock()
	m.wg.Wait()
	m.mu.Lock()
	err := m.err
	m.mu.Unlock()
	return err
}

// drain processes tickets on the caller's goroutine until the queue and
// the in-flight set are simultaneously empty. It respects the pause
// fence (a checkpoint boundary excludes draining too) and shares the
// pop-protocol with the workers, so a ticket is processed exactly once
// whoever gets it.
func (m *migrator) drain() error {
	if m == nil {
		return nil
	}
	for {
		m.mu.Lock()
		for !m.stopped && m.paused {
			m.doneCond.Wait()
		}
		if m.stopped {
			err := m.err
			m.mu.Unlock()
			return err
		}
		shard := -1
		var ps core.PendingSplit
		for i := range m.queues {
			if len(m.queues[i]) > 0 {
				ps = m.queues[i][0]
				m.queues[i] = m.queues[i][1:]
				m.queued--
				shard = i
				break
			}
		}
		if shard == -1 {
			if m.inflight == 0 {
				err := m.err
				m.mu.Unlock()
				return err
			}
			m.doneCond.Wait()
			m.mu.Unlock()
			continue
		}
		m.inflight++
		m.mu.Unlock()

		err := m.process(shard, ps)

		m.mu.Lock()
		m.inflight--
		if err != nil && m.err == nil {
			m.err = err
		}
		m.doneCond.Broadcast()
		m.mu.Unlock()
	}
}

// stats snapshots the migrator counters (the tree-derived fields are
// filled by DB.Stats). Nil-safe: the zero value reports a disabled
// migrator.
func (m *migrator) statsSnapshot() MigratorStats {
	if m == nil {
		return MigratorStats{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return MigratorStats{
		Enabled:          true,
		Marked:           m.marked,
		Migrated:         m.migrated,
		VersionsMigrated: m.versions,
		BytesBurned:      m.bytesBurned,
		Stale:            m.stale,
		Abandoned:        m.abandoned,
		AbandonedBytes:   m.abandonedBytes,
		QueueDepth:       m.queued,
		InFlight:         m.inflight,
		CaptureNanos:     histNanos(m.capture),
		BurnNanos:        histNanos(m.burn),
		SwapNanos:        histNanos(m.swap),
		Err:              m.err,
	}
}

// histNanos derives a phase-nanos stat from its histogram's sum (the
// histogram keeps its sum in nanoseconds exactly).
func histNanos(h *obs.Histogram) uint64 {
	if h == nil {
		return 0
	}
	return uint64(h.Sum())
}

// DrainMigrations synchronously processes every queued background
// migration and returns when the queue is empty (as of the return; new
// tickets created by concurrent writers are drained too if they arrive
// before the queue empties). It is how an unload, a test, or an
// equivalence check forces every deferred historical node onto the
// write-once device. It returns the migrator's sticky error — the first
// capture/burn/swap failure ever seen, this drain's or an earlier
// worker's (also surfaced as Stats().Migrator.Err and by Close) — so a
// caller that needs every node durably migrated finds out
// deterministically. A no-op for databases without BackgroundMigration.
func (d *DB) DrainMigrations() error {
	return d.mig.drain()
}

// startMigrator switches the shard trees to deferred time splits and
// launches the per-shard workers. Called once, at the end of Open, after
// any recovery replay — recovery inserts split inline, deterministically.
func (d *DB) startMigrator() {
	for _, sh := range d.store.shards {
		sh.tree.SetDeferTimeSplits(true)
	}
	d.mig = newMigrator(d.store)
	// Wire the dead-byte account, phase histograms, and event log before
	// any ticket can flow (tickets only arrive once d.store.mig is set
	// below).
	d.mig.onAbandon = func(b uint64) { d.deadBytes.Add(b) }
	d.mig.capture = &d.migCapture
	d.mig.burn = &d.migBurn
	d.mig.swap = &d.migSwap
	d.mig.log = d.events
	d.store.mig = d.mig
}
