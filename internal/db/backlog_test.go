package db

import (
	"testing"

	"repro/internal/record"
	"repro/internal/txn"
)

// TestWALBacklogAcrossCheckpoint pins the Stats().WAL.BacklogBytes
// contract: it grows with appends, a checkpoint install re-anchors it
// to zero, and it grows again from there — the real signal admission
// control and the background checkpointer read.
func TestWALBacklogAcrossCheckpoint(t *testing.T) {
	d, err := Open(Config{Dir: t.TempDir(), Shards: 2, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
	}()

	if got := d.Stats().WAL.BacklogBytes; got != 0 {
		t.Fatalf("fresh database backlog = %d, want 0", got)
	}
	put := func(i byte) {
		t.Helper()
		if err := d.Update(func(tx *txn.Txn) error {
			return tx.Put(record.Key{i}, []byte("backlog-payload"))
		}); err != nil {
			t.Fatal(err)
		}
	}
	put(1)
	put(2)
	st := d.Stats().WAL
	if st.BacklogBytes == 0 || st.BacklogBytes != st.Bytes {
		t.Fatalf("pre-checkpoint backlog = %d (bytes %d), want equal and nonzero", st.BacklogBytes, st.Bytes)
	}

	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().WAL.BacklogBytes; got != 0 {
		t.Fatalf("post-checkpoint backlog = %d, want 0", got)
	}

	before := d.Stats().WAL.Bytes
	put(3)
	st = d.Stats().WAL
	if want := st.Bytes - before; st.BacklogBytes != want || want == 0 {
		t.Fatalf("post-checkpoint append backlog = %d, want %d (nonzero)", st.BacklogBytes, want)
	}
}
