package db

// The durable mode: a directory-backed database whose commits are
// write-ahead logged (internal/wal) and whose log is truncated by
// incremental logical checkpoints taken while writers run.
//
// The durability contract, precisely:
//
//   - committed = logged + fsynced. Update/Commit return only after the
//     transaction's redo record (its stamped write set) is durable in
//     the WAL; group commit batches concurrently-arriving committers
//     into one append + one fsync.
//   - a crash loses nothing acknowledged. Open replays the latest
//     checkpoint and then the WAL tail, stopping at the first torn
//     frame. A commit whose fsync never completed is either absent or
//     — if its frame happened to land intact before the crash —
//     present in full; never half-applied, because a frame is exactly
//     one transaction under a CRC.
//   - in-flight transactions at the crash are gone: pending versions
//     are never logged and never checkpointed (the logical dump takes
//     only committed versions), so recovery needs no undo pass.
//
// A checkpoint rotates the log at a posting-quiescent boundary (one
// brief acquisition of the commit leadership token), then dumps each
// shard's committed versions under that shard's read latch — shard by
// shard, writers running throughout. The dump is boundary-exact:
// versions stamped after the boundary clock are filtered out (their log
// records all sit past the rotation LSN and are replayed instead), so
// reload plus log tail reproduces every commit exactly once, in global
// commit-time order — which the secondary indexes, one tree shared by
// all shards, require. Once the checkpoint file is fsynced and
// atomically renamed into place, segments wholly below the rotation
// point are deleted.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"syscall"
	"time"

	"repro/internal/record"
	"repro/internal/txn"
	"repro/internal/wal"
)

// ErrClosed is returned by operations on a closed durable database.
var ErrClosed = errors.New("db: database closed")

// ErrLocked is returned when the durable directory is already open —
// by another process or another handle in this one. Two writers on one
// log would interleave segments and lose acknowledged commits.
var ErrLocked = errors.New("db: directory already open")

// lockDir takes an exclusive advisory lock on dir/LOCK. The kernel
// releases it when the holder dies, so a crashed process never leaves a
// stale lock behind (which is why this is flock, not O_EXCL creation).
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("db: lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("%w: %s", ErrLocked, dir)
	}
	return f, nil
}

// defaultCheckpointBytes is how much WAL growth triggers a background
// checkpoint when Config.CheckpointBytes is 0.
const defaultCheckpointBytes = 4 << 20

// openDurable opens (creating or recovering) the durable database in
// cfg.Dir. Called from Open with defaults applied.
func openDurable(cfg Config) (*DB, error) {
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("db: create %s: %w", cfg.Dir, err)
	}
	lock, err := lockDir(cfg.Dir)
	if err != nil {
		return nil, err
	}
	var log *wal.Log
	var d *DB
	ok := false
	defer func() {
		if !ok {
			if log != nil {
				_ = log.Close()
			}
			if d != nil {
				d.closeDevices()
			}
			_ = lock.Close()
		}
	}()
	info, found, err := wal.ReadCheckpointInfo(cfg.Dir)
	if err != nil {
		return nil, err
	}
	if found {
		if havePaged := info.Paged != nil; havePaged != cfg.PagedDevices {
			mode := map[bool]string{true: "paged", false: "logical"}
			return nil, fmt.Errorf("db: %s holds a %s-device database, config asks for %s (a directory's device mode is fixed at creation)",
				cfg.Dir, mode[havePaged], mode[cfg.PagedDevices])
		}
		if cfg.Shards != 1 && cfg.Shards != info.Shards {
			return nil, fmt.Errorf("db: %s has %d shards, config asks for %d",
				cfg.Dir, info.Shards, cfg.Shards)
		}
		cfg.Shards = info.Shards
		if err := checkExtractors(info.Secondaries, cfg.Secondaries); err != nil {
			return nil, err
		}
	}

	if cfg.PagedDevices {
		// Paged mode: the committed database is the device files
		// themselves; openPaged reattaches (or creates) them and builds
		// the trees from the checkpoint's images — no version reload.
		d, err = openPaged(cfg, info, found)
		if err != nil {
			return nil, err
		}
	} else {
		d, err = newEmpty(cfg)
		if err != nil {
			return nil, err
		}
		d.dir = cfg.Dir
		d.logWrap = cfg.logWrap
		for name, extract := range cfg.Secondaries {
			if err := d.CreateSecondary(name, extract); err != nil {
				return nil, err
			}
		}
		if found {
			if err := d.loadCheckpoint(); err != nil {
				return nil, err
			}
		}
	}
	lastLSN, nextSeg, err := d.replayLog(info)
	if err != nil {
		return nil, err
	}

	// The clock resumes at the newest committed time recovery produced
	// (the checkpoint clock is a lower bound of it).
	clock := d.store.Now()
	if info.Clock > clock {
		clock = info.Clock
	}
	d.tm = txn.NewManager(d.store, clock)
	d.tm.SetCommitHook(d.onCommit)

	log, err = wal.Open(wal.Options{Dir: cfg.Dir, WrapFile: cfg.logWrap}, nextSeg, lastLSN)
	if err != nil {
		return nil, err
	}
	d.wal = log
	d.tm.SetCommitLog(log)
	d.wireObs(cfg)

	if !found {
		// Seal the directory's shape before the first commit: an empty
		// checkpoint makes the shard count (and secondary-index set)
		// authoritative for every future reopen, even one that crashes
		// before its first real checkpoint.
		if err := d.Checkpoint(); err != nil {
			return nil, err
		}
	}

	d.cpEvery = cfg.CheckpointBytes
	if d.cpEvery == 0 {
		d.cpEvery = defaultCheckpointBytes
	}
	d.coEvery = cfg.CompactDeadBytes
	if d.pf == nil {
		d.coEvery = 0 // compaction is a paged-device job
	}
	if d.cpEvery > 0 || d.coEvery > 0 {
		d.stopCp = make(chan struct{})
		d.cpDone.Add(1)
		go d.maintenanceLoop()
	}
	if cfg.BackgroundMigration {
		// Started only now, after recovery: replayed inserts split
		// inline (deterministically), and marks are never durable state.
		d.startMigrator()
	}
	d.dirLock = lock
	ok = true
	return d, nil
}

// checkExtractors verifies the supplied extraction functions exactly
// cover the secondary indexes a checkpoint names.
func checkExtractors(names []string, extracts map[string]SecondaryExtract) error {
	if len(extracts) != len(names) {
		return fmt.Errorf("db: directory has %d secondary indexes, %d extractors supplied",
			len(names), len(extracts))
	}
	for _, name := range names {
		if _, ok := extracts[name]; !ok {
			return fmt.Errorf("db: no extractor supplied for secondary index %q", name)
		}
	}
	return nil
}

// applyCommitted installs one committed version during recovery: the
// previously visible version is looked up first so the secondary-index
// hook sees exactly what it would have seen at the original commit.
// Versions must arrive in an order that never decreases commit times
// GLOBALLY — the secondary indexes are single trees spanning all
// shards — which loadCheckpoint's global sort and the WAL's LSN order
// both guarantee.
func (d *DB) applyCommitted(v record.Version) error {
	if len(d.secondaries) == 0 {
		// The old version is only ever needed by the secondary-index
		// hook; without one, skip the extra tree lookup per version.
		return d.store.Insert(v)
	}
	oldV, oldOK, err := d.store.Get(v.Key)
	if err != nil {
		return err
	}
	if err := d.store.Insert(v); err != nil {
		return err
	}
	return d.onCommit(v.Time, oldV, oldOK, v)
}

// loadCheckpoint rebuilds the store from the checkpoint's logical dump.
// Chunks arrive shard by shard, but the secondary indexes span shards,
// so every version is buffered and applied in one globally time-sorted
// pass (the dump is boundary-exact: nothing past the checkpoint clock).
func (d *DB) loadCheckpoint() error {
	var all []record.Version
	info, _, err := wal.ReadCheckpoint(d.dir, func(shard int, vs []record.Version) error {
		all = append(all, vs...)
		return nil
	})
	if err != nil {
		return err
	}
	sort.SliceStable(all, func(a, b int) bool {
		if all[a].Time != all[b].Time {
			return all[a].Time < all[b].Time
		}
		return all[a].Key.Less(all[b].Key)
	})
	for _, v := range all {
		if v.Time > info.Clock {
			// Defense in depth: a correctly-written checkpoint is
			// boundary-exact, so nothing past its clock belongs here —
			// the log tail owns those commits.
			return fmt.Errorf("db: checkpoint version at %s past its clock %s", v.Time, info.Clock)
		}
		if err := d.applyCommitted(v); err != nil {
			return fmt.Errorf("db: checkpoint reload: %w", err)
		}
	}
	return nil
}

// replayLog replays every WAL segment after the checkpoint boundary.
// For logical (v3) checkpoints the boundary is one LSN and every frame
// past it is applied unconditionally, in LSN (= global commit-time)
// order. A fuzzy paged (v4) checkpoint has per-tree boundaries instead:
// shard i's image was captured at GroupLSNs[i] and the secondary
// indexes at SecLSN (>= every group LSN, they are captured last), all
// >= the header LSN the replay starts from — so each version applies to
// its primary shard only past that shard's boundary, and drives the
// secondary-index hook only past SecLSN. Reload + tail replay stays
// exactly-once per tree. It returns the last intact LSN and the segment
// number a fresh log should start at.
func (d *DB) replayLog(info wal.CheckpointInfo) (lastLSN, nextSeg uint64, err error) {
	var group []uint64
	secLSN := info.LSN
	if p := info.Paged; p != nil && len(p.GroupLSNs) == len(d.store.shards) {
		group = p.GroupLSNs
		secLSN = p.SecLSN
	}
	segs, err := wal.Segments(d.dir)
	if err != nil {
		return 0, 0, err
	}
	nextSeg = 1
	last := info.LSN
	for _, seg := range segs {
		if seg.Index >= nextSeg {
			nextSeg = seg.Index + 1
		}
		segLast, _, err := wal.ReplayFile(seg.Path, last, func(lsn uint64, rec txn.CommitRecord) error {
			if lsn != last+1 {
				return fmt.Errorf("db: recovery gap: LSN %d follows %d (missing segment?)", lsn, last)
			}
			last = lsn
			return d.replayCommit(lsn, rec, group, secLSN)
		})
		if err != nil {
			return 0, 0, err
		}
		if segLast > last {
			// Frames past `last` were skipped as <= the boundary; keep
			// the larger of the two as the resume point.
			last = segLast
		}
	}
	return last, nextSeg, nil
}

// replayCommit redoes one logged transaction, filtered by the fuzzy
// capture boundaries (group/secLSN; group is nil for logical replay,
// which applies everything).
func (d *DB) replayCommit(lsn uint64, rec txn.CommitRecord, group []uint64, secLSN uint64) error {
	for _, v := range rec.Versions {
		if group != nil {
			if lsn <= group[record.ShardOfKey(v.Key, len(d.store.shards))] {
				// The shard's image was captured past this record: the
				// version is already in it — and in the secondaries too,
				// since SecLSN >= every group LSN.
				continue
			}
			if lsn <= secLSN {
				// The primary shard needs it, the secondary indexes
				// (captured later) already saw it: insert without the
				// index hook.
				if err := d.store.Insert(v); err != nil {
					return fmt.Errorf("db: replay of txn %d at %s: %w", rec.TxnID, rec.Time, err)
				}
				continue
			}
		}
		if err := d.applyCommitted(v); err != nil {
			return fmt.Errorf("db: replay of txn %d at %s: %w", rec.TxnID, rec.Time, err)
		}
	}
	return nil
}

// dumpShard materializes shard i's committed history up to the
// checkpoint boundary under that shard's read latch, sorted so commit
// times never decrease — the unit of checkpoint capture. Versions
// stamped past the boundary (writers keep committing during the dump)
// are excluded: their log records live past the rotation LSN and replay
// owns them, keeping reload + replay exactly-once and globally ordered.
func (d *DB) dumpShard(i int, upTo record.Timestamp) ([]record.Version, error) {
	sh := d.store.shards[i]
	sh.mu.RLock()
	vs, err := sh.tree.ScanRange(nil, record.InfiniteBound(), record.TimeZero+1, upTo+1)
	sh.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	// The boundary clock is posting-quiescent, so no version sits at
	// upTo+1 mid-posting; the window [1, upTo+1) is exact.
	sort.SliceStable(vs, func(a, b int) bool {
		if vs[a].Time != vs[b].Time {
			return vs[a].Time < vs[b].Time
		}
		return vs[a].Key.Less(vs[b].Key)
	})
	return vs, nil
}

// secondaryNames returns the registered secondary-index names, sorted.
func (d *DB) secondaryNames() []string {
	d.secMu.RLock()
	defer d.secMu.RUnlock()
	names := make([]string, 0, len(d.secondaries))
	for name := range d.secondaries {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Checkpoint takes an incremental checkpoint of a durable database and
// truncates the log, without stopping writers: the log is rotated at a
// posting-quiescent boundary (a brief pause of commit posting only),
// each shard is dumped under a short read latch, and old segments are
// deleted once the checkpoint file is durably installed. Concurrent
// checkpoints serialize.
func (d *DB) Checkpoint() error {
	if d.wal == nil {
		return fmt.Errorf("db: Checkpoint requires a durable database (Config.Dir)")
	}
	d.cpMu.Lock()
	defer d.cpMu.Unlock()
	if d.closed {
		return ErrClosed
	}
	// Fence the background migrator for the duration of the checkpoint:
	// in-flight migrations complete first (pause waits for them), then
	// the workers idle, so no swap rewrites pages and no off-latch burn
	// moves the WORM tail while the boundary is captured. The fence is
	// what keeps v4 page captures and v3 dumps boundary-exact with
	// migrations in the system; queued-but-unprocessed marks are not
	// durable state and simply survive (or, after a crash, are
	// re-created by future inserts).
	d.mig.pause()
	defer d.mig.resume()
	return d.checkpointLocked()
}

// checkpointLocked runs the mode-appropriate checkpoint — caller holds
// cpMu with the migrator fenced — and accounts the per-checkpoint pause
// (the sum of its quiesce windows) into Stats().Checkpoint.
func (d *DB) checkpointLocked() error {
	sp := d.events.StartSpan("checkpoint", &d.cpHist)
	before := d.cpPauseNanos.Load()
	var err error
	if d.pf != nil {
		err = d.checkpointPagedLocked()
	} else {
		err = d.checkpointLogicalLocked()
	}
	if err != nil {
		sp.End("error: " + err.Error())
		return err
	}
	pause := d.cpPauseNanos.Load() - before
	d.cpCount.Add(1)
	d.cpLastPause.Store(pause)
	if pause > d.cpMaxPause.Load() {
		d.cpMaxPause.Store(pause)
	}
	sp.End(fmt.Sprintf("pause=%s", time.Duration(pause)))
	return nil
}

// quiesceTimed is tm.Quiesce plus pause accounting: the commit-posting
// stall a checkpoint inflicts on writers is the sum of its quiesce
// windows, measured here and reported by Stats().Checkpoint.
//
//tsb:wraps commit-token
func (d *DB) quiesceTimed(fn func() error) error {
	start := time.Now()
	err := d.tm.Quiesce(fn)
	d.cpPauseNanos.Add(uint64(time.Since(start)))
	return err
}

// checkpointLogicalLocked is the v3 (logical-dump) checkpoint body.
func (d *DB) checkpointLogicalLocked() error {
	var boundary uint64
	var clock record.Timestamp
	err := d.quiesceTimed(func() error {
		// Under the leadership token no commit is mid-posting: every
		// record at or below the boundary is fully in the store, and
		// the clock cannot move.
		lsn, err := d.wal.Rotate()
		if err != nil {
			return err
		}
		boundary = lsn
		clock = d.tm.Now()
		return nil
	})
	if err != nil {
		return err
	}
	info := wal.CheckpointInfo{
		Shards:      len(d.store.shards),
		Clock:       clock,
		LSN:         boundary,
		Secondaries: d.secondaryNames(),
	}
	dump := func(shard int) ([]record.Version, error) { return d.dumpShard(shard, clock) }
	if err := wal.WriteCheckpoint(d.dir, d.logWrap, info, dump); err != nil {
		return err
	}
	if err := d.wal.RemoveSegmentsBelow(d.wal.CurrentSegment()); err != nil {
		return err
	}
	d.wal.MarkCheckpoint()
	return nil
}

// Close stops the maintenance scheduler and the background migrator,
// then closes the write-ahead log. Acknowledged commits are already
// durable (group commit fsyncs before acknowledging), so Close flushes
// nothing; it exists to release the directory cleanly.
//
// What Close guarantees about pending migrations: any migration whose
// swap is in flight completes (so the tree is never left mid-swap — not
// that a torn swap is possible; the swap is atomic under the shard
// latch), and the workers then exit. Leaves still queued are simply left
// unsplit — a valid TSB-tree state; nothing acknowledged depends on a
// mark, and future inserts re-queue them. Call DrainMigrations first if
// every deferred historical node must reach the write-once device before
// the handle is released. Close returns the first background-checkpoint
// or migrator error, if any. Closing an in-memory database only stops
// its migrator.
func (d *DB) Close() error {
	d.cpMu.Lock()
	if d.closed {
		d.cpMu.Unlock()
		return nil
	}
	d.closed = true
	cpErr := d.cpErr
	d.cpMu.Unlock()
	if d.stopCp != nil {
		close(d.stopCp)
		d.cpDone.Wait()
	}
	if err := d.mig.stop(); err != nil && cpErr == nil {
		cpErr = err
	}
	if d.wal != nil {
		if err := d.wal.Close(); err != nil && cpErr == nil {
			cpErr = err
		}
	}
	if d.pf != nil {
		// Acknowledged commits are durable in the WAL regardless; the
		// device files hold at most the last checkpoint boundary plus
		// burns, and reopening reconciles them. Close just releases fds.
		d.closeDevices()
	}
	if d.dirLock != nil {
		// Closing the fd releases the flock: the directory may be
		// reopened by anyone.
		_ = d.dirLock.Close()
	}
	return cpErr
}
