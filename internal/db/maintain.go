package db

// The maintenance scheduler: background upkeep that keeps an aging
// database young. The background migrator (migrator.go) established the
// pattern — a worker fenced around checkpoint boundaries, races
// resolved by epoch/re-verify checks, lost races degraded to bounded
// waste instead of corruption. This file generalizes it to the
// database-wide maintenance economy, three job families in all:
//
//   - deferred time splits (leaf AND index nodes): owned by the
//     per-shard migrator workers; the scheduler's role is the shared
//     fence (pause/resume) every other job uses around its own
//     critical windows.
//   - the fuzzy paged flush (paged.go, checkpointPagedLocked):
//     triggered here on WAL growth, exactly as the old background
//     checkpointer did, but now capturing the boundary one flush group
//     at a time so the writer-visible pause is one shard's capture.
//   - WORM compaction (DB.Compact, below): triggered here once the
//     dead-burn payload (Stats().Device.DeadBytes) passes
//     Config.CompactDeadBytes.
//
// One scheduler goroutine polls the job triggers. Jobs serialize under
// cpMu — a compaction ends by installing a checkpoint, so the two can
// never overlap — and any job error is sticky (surfaced by Close) and
// stops the scheduler: a misbehaving device is not retried against.
//
// # Why write-once media can be compacted at all
//
// Write-once sectors cannot be rewritten in place, but the tail of the
// burn FILE can be rewritten as a whole — the real-world analogue is
// migrating live runs to a fresh platter and retiring the old one; the
// file is the platter library. What makes it safe:
//
//   - the live-run set is closed: every run reachable from any tree
//     root (primaries and secondaries share one burn file). Runs
//     outside it — abandoned migrations, crash orphans — are dead
//     forever: under the non-deletion policy references are only ever
//     copied, never invented, so an unreachable run cannot become
//     reachable again.
//   - historical nodes reference only earlier burns (children are
//     burned before the parents that point at them), so relocating the
//     live tail in ascending offset order sees every child remapped
//     before its parent is re-encoded — and relocated offsets only
//     shrink, so re-encoded runs (uvarint addresses) never grow and
//     the copy-forward never clobbers an unread run.
//   - crash safety is the page file's rollback protocol transplanted:
//     the old region is journaled and fsynced before the rewrite, the
//     journal is stamped with the installed checkpoint epoch, and it is
//     retired only after the compaction's own checkpoint installs. A
//     crash before that checkpoint restores the old region; after, the
//     journal's epoch no longer matches and it is discarded.

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/storage"
)

// maintenancePollInterval is how often the scheduler inspects the job
// triggers.
const maintenancePollInterval = 100 * time.Millisecond

// CheckpointStats is the checkpoint pause accounting (Stats().Checkpoint):
// how long commit posting was quiesced for boundary captures. Pauses are
// summed over a checkpoint's quiesce windows — the fuzzy paged capture
// takes several short ones instead of one global one, and this is the
// measurement showing the difference.
type CheckpointStats struct {
	// Checkpoints counts completed checkpoints (all modes).
	Checkpoints uint64
	// PauseNanos is the cumulative commit-posting pause across all
	// checkpoints; LastPauseNanos and MaxPauseNanos describe single
	// checkpoints.
	PauseNanos     uint64
	LastPauseNanos uint64
	MaxPauseNanos  uint64
}

// CompactionStats is the WORM compaction accounting (Stats().Compaction).
type CompactionStats struct {
	// Rounds counts completed compactions; Aborted counts rounds that
	// found the burn tail moved under them (a concurrent inline burn)
	// and gave up without changing anything — retried on a later
	// trigger.
	Rounds  uint64
	Aborted uint64
	// RunsMoved / MovedBytes are the live tail runs copied forward
	// across all rounds; ReclaimedBytes is the device capacity
	// truncated away.
	RunsMoved      uint64
	MovedBytes     uint64
	ReclaimedBytes uint64
	// PauseNanos is cumulative time the install window held every
	// shard's write latch (address rewrite + tail re-check; the
	// copy-forward itself runs with no latch held).
	PauseNanos uint64
}

// CompactionReport describes one DB.Compact call.
type CompactionReport struct {
	// Attempted is false when the device had no reclaimable tail (the
	// burn file is fully live up to its end): nothing was done.
	Attempted bool
	// Aborted means the install re-check found a concurrent burn had
	// moved the tail; nothing was changed. Retry when quiet.
	Aborted bool
	// Boundary is the first relocated sector; RunsMoved/MovedBytes the
	// live runs copied forward; ReclaimedBytes the device capacity the
	// truncate returned.
	Boundary       uint64
	RunsMoved      int
	MovedBytes     uint64
	ReclaimedBytes uint64
}

// maintJob is one scheduler entry: a cheap trigger probe and the job.
type maintJob struct {
	name string
	due  func() bool
	run  func() error
}

// maintenanceJobs assembles the scheduler's job table.
func (d *DB) maintenanceJobs() []maintJob {
	jobs := []maintJob{{
		name: "checkpoint",
		due: func() bool {
			if d.cpEvery <= 0 {
				return false
			}
			// The log anchors the gauge itself (MarkCheckpoint under
			// the wal mutex), so the probe needs no cpMu.
			return int64(d.wal.Stats().BacklogBytes) >= d.cpEvery
		},
		run: d.Checkpoint,
	}}
	if d.pf != nil && d.coEvery > 0 {
		jobs = append(jobs, maintJob{
			name: "compact",
			due:  func() bool { return int64(d.deadBytes.Load()) >= d.coEvery },
			run: func() error {
				_, err := d.Compact()
				return err
			},
		})
	}
	return jobs
}

// maintenanceLoop is the scheduler goroutine: poll the job triggers, run
// what is due. A job error is sticky (surfaced by Close) and stops the
// loop — the WAL simply grows and waste simply accumulates until an
// operator intervenes, which is strictly safer than retrying against a
// misbehaving device.
func (d *DB) maintenanceLoop() {
	defer d.cpDone.Done()
	jobs := d.maintenanceJobs()
	ticker := time.NewTicker(maintenancePollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-d.stopCp:
			return
		case <-ticker.C:
			for _, job := range jobs {
				if !job.due() {
					continue
				}
				if err := job.run(); err != nil {
					d.cpMu.Lock()
					if d.cpErr == nil {
						d.cpErr = fmt.Errorf("db: background %s: %w", job.name, err)
					}
					d.cpMu.Unlock()
					return
				}
			}
		}
	}
}

// Compact reclaims dead write-once capacity on a paged database: runs
// that nothing references — abandoned background migrations, post-crash
// orphans — are squeezed out of the burn file by copying the live tail
// forward and truncating the rest. Four phases:
//
//  1. capture, under each tree's read latch in turn: the burned-sector
//     count and the device-wide live-run set (every run reachable from
//     any root, deduped across the rule-4 reference DAG);
//  2. plan, no latches: the boundary is the first dead sector, and every
//     live run past it is read and re-encoded with relocated child
//     addresses (ascending offset order — children precede parents);
//  3. install, under every write latch: re-check the burned count (a
//     concurrent inline burn aborts the round untouched), journal and
//     rewrite the region (pagestore.CompactRegion), patch the relocated
//     addresses in every magnetic node, zero the dead-byte account;
//  4. seal: a checkpoint records the new boundary and the patched pages,
//     then the compaction journal is retired. A crash before the seal
//     restores the old region on reopen; after it, the compacted state
//     IS the installed boundary.
//
// The logical content is untouched — only addresses move — and
// Stats().Device shows WastedBytes/SpaceO drop by what was reclaimed.
// Compact serializes with checkpoints; the migrator is fenced for the
// duration. Concurrent writers run freely except during phases 1 and 3.
func (d *DB) Compact() (CompactionReport, error) {
	var rep CompactionReport
	if d.bf == nil {
		return rep, fmt.Errorf("db: Compact requires paged devices (Config.PagedDevices)")
	}
	d.cpMu.Lock()
	defer d.cpMu.Unlock()
	if d.closed {
		return rep, ErrClosed
	}
	// Fence the migrator: no background burn moves the tail and no swap
	// rewrites pages while the live set is walked and relocated. Inline
	// burns (physical-headroom fallbacks, secondary-index splits) can
	// still happen — the install re-check catches them.
	d.mig.pause()
	defer d.mig.resume()
	sp := d.events.StartSpan("compact", &d.coHist)
	defer func() {
		sp.End(fmt.Sprintf("attempted=%t aborted=%t moved=%dB reclaimed=%dB",
			rep.Attempted, rep.Aborted, rep.MovedBytes, rep.ReclaimedBytes))
	}()

	// Phase 1 — the burned count first: runs burned during the walk land
	// at or past it, and any such burn flunks the install re-check.
	burned0 := d.bf.Burned()
	seen := make(map[uint64]storage.Addr)
	for i, sh := range d.store.shards {
		sh.mu.RLock()
		err := sh.tree.WormRefs(seen)
		sh.mu.RUnlock()
		if err != nil {
			return rep, fmt.Errorf("db: compaction walk of shard %d: %w", i, err)
		}
	}
	d.secMu.RLock()
	for name, s := range d.secondaries {
		if err := s.index.Tree().WormRefs(seen); err != nil {
			d.secMu.RUnlock()
			return rep, fmt.Errorf("db: compaction walk of secondary %q: %w", name, err)
		}
	}
	d.secMu.RUnlock()

	// Phase 2 — the boundary is the end of the contiguous live prefix:
	// the first sector no live run covers. Everything below it stays put;
	// every live run past it moves down.
	ss := uint64(d.bf.SectorSize())
	runSectors := func(n int) uint64 { return (uint64(n) + ss - 1) / ss }
	live := make([]storage.Addr, 0, len(seen))
	for _, a := range seen {
		if a.Off < burned0 {
			live = append(live, a)
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].Off < live[j].Off })
	boundary := uint64(0)
	tail := live
	for len(tail) > 0 && tail[0].Off == boundary {
		boundary += runSectors(int(tail[0].Len))
		tail = tail[1:]
	}
	if boundary >= burned0 {
		return rep, nil // fully live: nothing to reclaim
	}
	rep.Attempted = true
	rep.Boundary = boundary

	// Phase 3 (plan) — copy-forward plan with no latch held: the region
	// below burned0 is immutable (the migrator is fenced; inline burns
	// only append past it). Ascending old offset means every WORM child
	// of a run — burned before it, so at a smaller offset — is already
	// in the remap when the parent is re-encoded.
	remap := make(map[uint64]storage.Addr, len(tail))
	payloads := make([][]byte, 0, len(tail))
	next := boundary
	for _, a := range tail {
		data, err := d.bf.ReadAt(a)
		if err != nil {
			return rep, fmt.Errorf("db: compaction read of run %s: %w", a, err)
		}
		nd, err := core.RemapWormPayload(data, remap)
		if err != nil {
			return rep, fmt.Errorf("db: compaction remap of run %s: %w", a, err)
		}
		remap[a.Off] = storage.Addr{Kind: storage.KindWORM, Off: next, Len: uint32(len(nd))}
		payloads = append(payloads, nd)
		rep.MovedBytes += uint64(len(nd))
		next += runSectors(len(nd))
	}
	rep.RunsMoved = len(payloads)

	// Phase 3 (install) — every shard's write latch plus the secondary
	// latch: no reader or writer can observe the half-patched address
	// space. Only the re-check, the journaled region rewrite, and the
	// in-memory address patches happen under the latches.
	start := time.Now()
	for _, sh := range d.store.shards {
		sh.mu.Lock()
	}
	d.secMu.Lock()
	err := func() error {
		if d.bf.Burned() != burned0 {
			rep.Aborted = true
			return nil
		}
		//tsb:allow latchio -- the documented compaction install: the journaled region rewrite must be atomic against every reader, so it runs under all write latches
		addrs, err := d.bf.CompactRegion(d.epoch, boundary, payloads)
		if err != nil {
			return err
		}
		for k, a := range addrs {
			if want := remap[tail[k].Off]; a != want {
				return fmt.Errorf("relocated run %d landed at %s, want %s", k, a, want)
			}
		}
		for i, sh := range d.store.shards {
			if _, err := sh.tree.RewriteWormRefs(remap); err != nil {
				return fmt.Errorf("shard %d: %w", i, err)
			}
		}
		for name, s := range d.secondaries {
			if _, err := s.index.Tree().RewriteWormRefs(remap); err != nil {
				return fmt.Errorf("secondary %q: %w", name, err)
			}
		}
		// Every dead run sat past the boundary (by construction) and was
		// just squeezed out.
		d.deadBytes.Store(0)
		return nil
	}()
	d.secMu.Unlock()
	for _, sh := range d.store.shards {
		sh.mu.Unlock()
	}
	d.coPauseNanos.Add(uint64(time.Since(start)))
	if err != nil {
		// The device may hold the rewritten region while some in-memory
		// addresses are unpatched: this handle is compromised, but the
		// directory is not — the journal's epoch still matches, so a
		// reopen restores the pre-compaction boundary.
		return rep, fmt.Errorf("db: compaction install: %w", err)
	}
	if rep.Aborted {
		d.coAborted.Add(1)
		return rep, nil
	}
	rep.ReclaimedBytes = (burned0 - next) * ss

	// Phase 4 — seal. The checkpoint flushes the patched pages and
	// records the new burned boundary and device accounting; only once
	// it is durably installed is the rollback journal retired.
	if err := d.checkpointLocked(); err != nil {
		return rep, fmt.Errorf("db: compaction checkpoint: %w", err)
	}
	if err := d.bf.CompleteCompaction(); err != nil {
		return rep, err
	}
	d.coRounds.Add(1)
	d.coRunsMoved.Add(uint64(rep.RunsMoved))
	d.coMovedBytes.Add(rep.MovedBytes)
	d.coReclaimedBytes.Add(rep.ReclaimedBytes)
	return rep, nil
}
