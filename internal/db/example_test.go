package db_test

import (
	"fmt"
	"log"

	"repro/internal/db"
	"repro/internal/record"
	"repro/internal/txn"
)

// Example demonstrates the complete query surface of the multiversion
// database: current reads, rollback reads, history, and temporal diffs.
func Example() {
	d, err := db.Open(db.Config{})
	if err != nil {
		log.Fatal(err)
	}
	acct := record.StringKey("acct")
	for _, balance := range []string{"100", "120", "90"} {
		if err := d.Update(func(tx *txn.Txn) error {
			return tx.Put(acct, []byte(balance))
		}); err != nil {
			log.Fatal(err)
		}
	}

	v, _, _ := d.Get(acct)
	fmt.Printf("current: %s\n", v.Value)

	v, _, _ = d.GetAsOf(acct, 2)
	fmt.Printf("as of t=2: %s\n", v.Value)

	hist, _ := d.History(acct)
	fmt.Printf("versions: %d\n", len(hist))

	changes, _ := d.Diff(nil, record.InfiniteBound(), 1, 3)
	fmt.Printf("changed keys in (1,3]: %d (%s)\n", len(changes), changes[0].Kind())

	// Output:
	// current: 90
	// as of t=2: 120
	// versions: 3
	// changed keys in (1,3]: 1 (updated)
}

// Example_abort shows that an aborted transaction leaves no trace:
// uncommitted data never reaches the write-once historical database, so it
// can always be erased (§4 of the paper).
func Example_abort() {
	d, err := db.Open(db.Config{})
	if err != nil {
		log.Fatal(err)
	}
	k := record.StringKey("doc")
	d.Update(func(tx *txn.Txn) error { return tx.Put(k, []byte("v1")) })

	tx := d.Begin()
	tx.Put(k, []byte("draft"))
	own, _, _ := tx.Get(k)
	fmt.Printf("inside txn: %s\n", own.Value)
	tx.Abort()

	v, _, _ := d.Get(k)
	hist, _ := d.History(k)
	fmt.Printf("after abort: %s (history %d)\n", v.Value, len(hist))

	// Output:
	// inside txn: draft
	// after abort: v1 (history 1)
}

// Example_readOnly shows the §4.1 lock-free read-only transaction: the
// reader's snapshot is pinned at initiation and is never blocked by (or
// exposed to) concurrent updaters.
func Example_readOnly() {
	d, err := db.Open(db.Config{})
	if err != nil {
		log.Fatal(err)
	}
	k := record.StringKey("row")
	d.Update(func(tx *txn.Txn) error { return tx.Put(k, []byte("v1")) })

	reader := d.ReadOnly() // timestamp issued now

	// An updater commits afterwards; the reader does not see it.
	d.Update(func(tx *txn.Txn) error { return tx.Put(k, []byte("v2")) })

	v, _, _ := reader.Get(k)
	fmt.Printf("reader at t=%v sees %s\n", reader.Timestamp(), v.Value)
	v, _, _ = d.Get(k)
	fmt.Printf("current is %s\n", v.Value)

	// Output:
	// reader at t=1 sees v1
	// current is v2
}
