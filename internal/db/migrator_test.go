package db

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/record"
	"repro/internal/txn"
)

// applyShardOpsDrained applies ops one at a time, draining the background
// migration queue after every operation — the serialized discipline under
// which a background-migrated database must be byte-identical to an
// inline-split one (each deferred split applies exactly where the inline
// split would have happened).
func applyShardOpsDrained(t *testing.T, d *DB, ops []shardOp) {
	t.Helper()
	for i, op := range ops {
		err := d.Update(func(tx *txn.Txn) error {
			var err error
			if op.delete {
				err = tx.Delete(op.key)
			} else {
				err = tx.Put(op.key, op.value)
			}
			if err != nil {
				return err
			}
			if op.abort {
				return fmt.Errorf("deliberate abort")
			}
			return nil
		})
		if op.abort {
			if err == nil {
				t.Fatalf("op %d: abort did not propagate", i)
			}
		} else if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if err := d.DrainMigrations(); err != nil {
			t.Fatalf("op %d: drain: %v", i, err)
		}
	}
}

// collectCursor drains a cursor into a slice, failing the test on error.
func collectCursor(t *testing.T, c *Cursor) []record.Version {
	t.Helper()
	out, err := c.Collect()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMigratorEquivalenceProperty is the background-migration property
// test: a multi-shard database running the background migrator (drained
// after each operation) must be byte-identical — the full SaveTo image:
// device contents, tree metadata, stats — to an inline-split database
// given the same operation sequence, and must answer forward, reverse,
// and limit/paginated scans identically.
func TestMigratorEquivalenceProperty(t *testing.T) {
	for _, shards := range []int{1, 3, 8} {
		for _, seed := range []int64{2, 11} {
			t.Run(fmt.Sprintf("shards=%d/seed=%d", shards, seed), func(t *testing.T) {
				ops := genShardOps(seed, 500)
				// LeafCapacity below PageSize: deferral needs physical
				// headroom for the logically-overfull leaf.
				cfg := Config{Shards: shards, LeafCapacity: 512, IndexCapacity: 512, MaxKeySize: 32}
				inline, err := Open(cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer inline.Close()
				cfg.BackgroundMigration = true
				bg, err := Open(cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer bg.Close()

				applyShardOps(t, inline, ops)
				applyShardOpsDrained(t, bg, ops)

				st := bg.Stats().Migrator
				if st.Migrated == 0 {
					t.Fatal("workload produced no background migrations; the property is vacuous")
				}
				if st.QueueDepth != 0 || st.PendingNodes != 0 {
					t.Fatalf("drained database still has queue=%d pending=%d", st.QueueDepth, st.PendingNodes)
				}
				if st.Abandoned != 0 {
					t.Fatalf("serialized drain abandoned %d burns", st.Abandoned)
				}
				// Verify BOTH databases (the device images include read
				// counters, so the walks must be symmetric).
				if err := inline.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
				if err := bg.CheckInvariants(); err != nil {
					t.Fatal(err)
				}

				var imgInline, imgBg bytes.Buffer
				if err := inline.SaveTo(&imgInline); err != nil {
					t.Fatal(err)
				}
				if err := bg.SaveTo(&imgBg); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(imgInline.Bytes(), imgBg.Bytes()) {
					t.Fatalf("SaveTo images diverged: inline %d bytes, background %d bytes (tree stats inline=%+v bg=%+v)",
						imgInline.Len(), imgBg.Len(), inline.Stats().Tree, bg.Stats().Tree)
				}

				// Forward, reverse, and limit/paginated scans agree.
				fwdI := collectCursor(t, inline.Cursor(nil, record.InfiniteBound(), ScanOptions{}))
				fwdB := collectCursor(t, bg.Cursor(nil, record.InfiniteBound(), ScanOptions{}))
				if err := sameVersions(fwdI, fwdB); err != nil {
					t.Fatalf("forward scan: %v", err)
				}
				revI := collectCursor(t, inline.Cursor(nil, record.InfiniteBound(), ScanOptions{Reverse: true}))
				revB := collectCursor(t, bg.Cursor(nil, record.InfiniteBound(), ScanOptions{Reverse: true}))
				if err := sameVersions(revI, revB); err != nil {
					t.Fatalf("reverse scan: %v", err)
				}
				var after record.Key
				for page := 0; ; page++ {
					opts := ScanOptions{Limit: 3, After: after}
					pi := collectCursor(t, inline.Cursor(nil, record.InfiniteBound(), opts))
					pb := collectCursor(t, bg.Cursor(nil, record.InfiniteBound(), opts))
					if err := sameVersions(pi, pb); err != nil {
						t.Fatalf("limit page %d: %v", page, err)
					}
					if len(pi) == 0 {
						break
					}
					after = pi[len(pi)-1].Key
				}
			})
		}
	}
}

// TestMigratorConcurrentStress hammers a background-migration database
// from concurrent writers and readers (race-clean under -race), then
// drains and checks that every acknowledged update is reachable and the
// migrator actually ran in the background.
func TestMigratorConcurrentStress(t *testing.T) {
	d, err := Open(Config{
		Shards: 4, LeafCapacity: 512, IndexCapacity: 1024,
		BackgroundMigration: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	const workers = 4
	const opsPerWorker = 300
	acked := make([]map[string]string, workers)
	var wg sync.WaitGroup
	errCh := make(chan error, workers*2)
	for w := 0; w < workers; w++ {
		acked[w] = map[string]string{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < opsPerWorker; i++ {
				// Disjoint per-worker keys: no lock conflicts, every
				// update must be acknowledged and survive.
				k := fmt.Sprintf("w%d-key%02d", w, rng.Intn(12))
				v := fmt.Sprintf("val-%d-%d", w, i)
				err := d.Update(func(tx *txn.Txn) error {
					return tx.Put(record.StringKey(k), []byte(v))
				})
				if err != nil {
					errCh <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
				acked[w][k] = v
			}
		}(w)
	}
	// Concurrent readers streaming snapshots while swaps happen.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				cur := d.Cursor(nil, record.InfiniteBound(), ScanOptions{})
				for cur.Next() {
				}
				if err := cur.Err(); err != nil {
					errCh <- fmt.Errorf("reader: %w", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	if err := d.DrainMigrations(); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats().Migrator
	if st.Migrated == 0 {
		t.Fatal("concurrent stress produced no background migrations")
	}
	for w := 0; w < workers; w++ {
		for k, v := range acked[w] {
			got, ok, err := d.Get(record.StringKey(k))
			if err != nil {
				t.Fatal(err)
			}
			if !ok || string(got.Value) != v {
				t.Fatalf("key %s = %q, want %q (ok=%v)", k, got.Value, v, ok)
			}
		}
	}
}

// TestMigratorDurableCheckpointReopen runs the migrator against a durable
// (logical-checkpoint) database with checkpoints taken mid-stream — the
// fence path — then closes with migrations still queued and reopens: the
// recovered database must hold exactly the acknowledged updates.
func TestMigratorDurableCheckpointReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Dir: dir, Shards: 2, CheckpointBytes: -1,
		LeafCapacity: 512, IndexCapacity: 1024,
		BackgroundMigration: true,
	}
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	for i := 0; i < 400; i++ {
		k := fmt.Sprintf("key%02d", i%16)
		v := fmt.Sprintf("val%d", i)
		if err := d.Update(func(tx *txn.Txn) error {
			return tx.Put(record.StringKey(k), []byte(v))
		}); err != nil {
			t.Fatal(err)
		}
		want[k] = v
		if i%100 == 99 {
			if err := d.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Close WITHOUT draining: queued marks are dropped by contract; no
	// acknowledged data may depend on them.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if err := re.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for k, v := range want {
		got, ok, err := re.Get(record.StringKey(k))
		if err != nil {
			t.Fatal(err)
		}
		if !ok || string(got.Value) != v {
			t.Fatalf("after reopen, key %s = %q, want %q (ok=%v)", k, got.Value, v, ok)
		}
		h, err := re.History(record.StringKey(k))
		if err != nil {
			t.Fatal(err)
		}
		if len(h) == 0 {
			t.Fatalf("after reopen, key %s lost its history", k)
		}
	}
}

// TestMigratorStatsSurface checks the migrator accounting: marks, queue
// drain, off-latch burn bytes, and that the split-latch clock ticks in
// both modes.
func TestMigratorStatsSurface(t *testing.T) {
	d, err := Open(Config{LeafCapacity: 512, IndexCapacity: 1024, BackgroundMigration: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 600; i++ {
		k := fmt.Sprintf("key%02d", i%8)
		if err := d.Update(func(tx *txn.Txn) error {
			return tx.Put(record.StringKey(k), []byte(fmt.Sprintf("stats-payload-%04d", i)))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.DrainMigrations(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats().Migrator
	if !st.Enabled {
		t.Fatal("Enabled = false on a BackgroundMigration database")
	}
	if st.Marked == 0 || st.Migrated == 0 || st.BytesBurned == 0 || st.VersionsMigrated == 0 {
		t.Fatalf("migrator never ran: %+v", st)
	}
	if st.QueueDepth != 0 || st.InFlight != 0 {
		t.Fatalf("drained database reports backlog: %+v", st)
	}
	tree := d.Stats().Tree
	if tree.LeafTimeSplits == 0 {
		t.Fatal("no time splits recorded in tree stats")
	}

	inline, err := Open(Config{LeafCapacity: 512, IndexCapacity: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer inline.Close()
	for i := 0; i < 600; i++ {
		k := fmt.Sprintf("key%02d", i%8)
		if err := inline.Update(func(tx *txn.Txn) error {
			return tx.Put(record.StringKey(k), []byte(fmt.Sprintf("stats-payload-%04d", i)))
		}); err != nil {
			t.Fatal(err)
		}
	}
	ist := inline.Stats().Migrator
	if ist.Enabled {
		t.Fatal("Enabled = true on an inline database")
	}
	if ist.SplitLatchNanos == 0 {
		t.Fatal("inline database reports zero split-latch time despite splits")
	}
}

// TestMigratorSaveToFenced is the regression test for SaveTo on a
// background-migration database: the whole-image checkpoint must fence
// the workers (as DB.Checkpoint does) so a mid-image swap cannot tear
// the device/tree capture. The saved image must reload into a database
// holding every acknowledged value.
func TestMigratorSaveToFenced(t *testing.T) {
	for round := 0; round < 5; round++ {
		d, err := Open(Config{
			Shards: 2, LeafCapacity: 512, IndexCapacity: 1024,
			BackgroundMigration: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := map[string]string{}
		for i := 0; i < 400; i++ {
			k := fmt.Sprintf("key%02d", i%12)
			v := fmt.Sprintf("val%d-%d", round, i)
			if err := d.Update(func(tx *txn.Txn) error {
				return tx.Put(record.StringKey(k), []byte(v))
			}); err != nil {
				t.Fatal(err)
			}
			want[k] = v
		}
		// Save immediately after the burst: the queue is typically
		// non-empty and a worker may be mid-ticket.
		var img bytes.Buffer
		if err := d.SaveTo(&img); err != nil {
			t.Fatal(err)
		}
		re, err := LoadFrom(&img, nil, nil)
		if err != nil {
			t.Fatalf("round %d: LoadFrom of mid-migration image: %v", round, err)
		}
		if err := re.CheckInvariants(); err != nil {
			t.Fatalf("round %d: reloaded invariants: %v", round, err)
		}
		for k, v := range want {
			got, ok, err := re.Get(record.StringKey(k))
			if err != nil {
				t.Fatal(err)
			}
			if !ok || string(got.Value) != v {
				t.Fatalf("round %d: reloaded key %s = %q, want %q (ok=%v)", round, k, got.Value, v, ok)
			}
		}
		d.Close()
	}
}
