package db

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/record"
	"repro/internal/txn"
	"repro/internal/wal"
)

// openDur opens a durable database in dir and registers cleanup.
func openDur(t *testing.T, cfg Config) *DB {
	t.Helper()
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func TestDurableSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d := openDur(t, Config{Dir: dir, Shards: 4})
	for i := 0; i < 50; i++ {
		put(t, d, fmt.Sprintf("key%03d", i%10), fmt.Sprintf("val%d", i))
	}
	if err := d.Update(func(tx *txn.Txn) error { return tx.Delete(record.StringKey("key003")) }); err != nil {
		t.Fatal(err)
	}
	wantNow := d.Now()
	wantHist, err := d.History(record.StringKey("key007"))
	if err != nil {
		t.Fatal(err)
	}
	wantScan, err := d.ScanAsOf(wantNow, nil, record.InfiniteBound())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Use after close fails cleanly.
	if err := d.Update(func(tx *txn.Txn) error { return tx.Put(record.StringKey("x"), nil) }); err == nil {
		t.Fatal("commit after Close should fail")
	}

	d2 := openDur(t, Config{Dir: dir})
	if d2.Shards() != 4 {
		t.Fatalf("reopened with %d shards, want 4", d2.Shards())
	}
	if d2.Now() != wantNow {
		t.Fatalf("reopened clock = %v, want %v", d2.Now(), wantNow)
	}
	gotScan, err := d2.ScanAsOf(wantNow, nil, record.InfiniteBound())
	if err != nil {
		t.Fatal(err)
	}
	assertSameVersions(t, "scan", gotScan, wantScan)
	gotHist, err := d2.History(record.StringKey("key007"))
	if err != nil {
		t.Fatal(err)
	}
	assertSameVersions(t, "history", gotHist, wantHist)
	if _, ok, _ := d2.Get(record.StringKey("key003")); ok {
		t.Error("deleted key resurrected by recovery")
	}
	if err := d2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The reopened database keeps committing durably.
	put(t, d2, "after", "restart")
	if d2.Now() != wantNow+1 {
		t.Errorf("commit after reopen at %v, want %v", d2.Now(), wantNow+1)
	}
}

// assertSameVersions compares two version slices on the durable fields
// (TxnID is incidental: fresh transactions renumber after a reopen).
func assertSameVersions(t *testing.T, what string, got, want []record.Version) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d versions, want %d", what, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if !g.Key.Equal(w.Key) || g.Time != w.Time || g.Tombstone != w.Tombstone ||
			string(g.Value) != string(w.Value) {
			t.Fatalf("%s[%d] = %+v, want %+v", what, i, g, w)
		}
	}
}

func TestDurableSecondariesRecovered(t *testing.T) {
	dir := t.TempDir()
	secs := map[string]SecondaryExtract{"dept": deptExtract}
	d := openDur(t, Config{Dir: dir, Shards: 2, Secondaries: secs})
	for i := 0; i < 40; i++ {
		put(t, d, fmt.Sprintf("emp%03d", i%8), fmt.Sprintf("dept%02d|rev%d", i%3, i))
	}
	at := d.Now()
	want, err := d.FetchBySecondary("dept", record.StringKey("dept01"), at)
	if err != nil {
		t.Fatal(err)
	}
	// Checkpoint so recovery exercises the dump+replay composition, then
	// write more so the tail is non-empty.
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	put(t, d, "emp000", "dept01|post-checkpoint")
	at2 := d.Now()
	d.Close()

	// Reopening without extractors is refused.
	if _, err := Open(Config{Dir: dir}); err == nil {
		t.Fatal("reopen without extractors should fail")
	}
	if _, err := Open(Config{Dir: dir, Secondaries: map[string]SecondaryExtract{"wrong": deptExtract}}); err == nil {
		t.Fatal("reopen with wrong extractor name should fail")
	}

	d2 := openDur(t, Config{Dir: dir, Secondaries: secs})
	got, err := d2.FetchBySecondary("dept", record.StringKey("dept01"), at)
	if err != nil {
		t.Fatal(err)
	}
	assertSameVersions(t, "secondary fetch", got, want)
	if n, _ := d2.CountSecondary("dept", record.StringKey("dept01"), at2); n == 0 {
		t.Error("post-checkpoint secondary update lost")
	}
}

func TestDurableSecondariesMultiShardCheckpointReopen(t *testing.T) {
	// Regression: the secondary index is ONE tree spanning all shards,
	// so checkpoint reload must apply versions in GLOBAL commit-time
	// order — applying shard 0's dump fully before shard 1's would feed
	// the secondary tree decreasing commit times and fail the reopen.
	// Keys here are spread so consecutive commits land on far-apart
	// shards.
	dir := t.TempDir()
	secs := map[string]SecondaryExtract{"dept": deptExtract}
	d := openDur(t, Config{Dir: dir, Shards: 4, Secondaries: secs, CheckpointBytes: -1})
	// First key byte rotates through 0x21/0x61/0xA1/0xE1 — one per
	// 16-bit-prefix shard quarter — so consecutive commit times land on
	// different shards.
	shardKey := func(i int) string {
		return fmt.Sprintf("%c-key%02d", byte(i%4)*64+33, i%6)
	}
	for i := 0; i < 60; i++ {
		put(t, d, shardKey(i), fmt.Sprintf("dept%02d|rev%d", i%3, i))
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// A post-checkpoint tail touching every shard again.
	for i := 0; i < 12; i++ {
		put(t, d, shardKey(i), fmt.Sprintf("dept%02d|tail%d", i%3, i))
	}
	at := d.Now()
	var want [3][]record.Version
	for dep := 0; dep < 3; dep++ {
		w, err := d.FetchBySecondary("dept", record.StringKey(fmt.Sprintf("dept%02d", dep)), at)
		if err != nil {
			t.Fatal(err)
		}
		want[dep] = w
	}
	d.Close()

	d2 := openDur(t, Config{Dir: dir, Secondaries: secs, CheckpointBytes: -1})
	if d2.Now() != at {
		t.Fatalf("recovered clock %v, want %v", d2.Now(), at)
	}
	for dep := 0; dep < 3; dep++ {
		got, err := d2.FetchBySecondary("dept", record.StringKey(fmt.Sprintf("dept%02d", dep)), at)
		if err != nil {
			t.Fatal(err)
		}
		assertSameVersions(t, fmt.Sprintf("dept%02d fetch", dep), got, want[dep])
	}
	if err := d2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDurableDirectoryLockedWhileOpen(t *testing.T) {
	dir := t.TempDir()
	d := openDur(t, Config{Dir: dir})
	put(t, d, "k", "v")
	// A second handle on the live directory would interleave log
	// segments with the first and lose acknowledged commits: refused.
	if _, err := Open(Config{Dir: dir}); !errors.Is(err, ErrLocked) {
		t.Fatalf("second open = %v, want ErrLocked", err)
	}
	// Close releases the lock; the directory reopens normally.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2 := openDur(t, Config{Dir: dir})
	if _, ok, _ := d2.Get(record.StringKey("k")); !ok {
		t.Fatal("data lost across lock release")
	}
}

func TestDurableCreateSecondaryAfterOpenSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	// Background checkpointing off: the reseal must come from
	// CreateSecondary itself, not from a lucky background pass.
	d := openDur(t, Config{Dir: dir, CheckpointBytes: -1})
	if err := d.CreateSecondary("dept", deptExtract); err != nil {
		t.Fatal(err)
	}
	put(t, d, "emp1", "dept07|x")
	at := d.Now()
	d.Close()

	// The registration was sealed into the checkpoint: reopening
	// without the extractor is refused, with it the index works.
	if _, err := Open(Config{Dir: dir}); err == nil {
		t.Fatal("reopen without extractor should fail")
	}
	d2 := openDur(t, Config{Dir: dir, Secondaries: map[string]SecondaryExtract{"dept": deptExtract}})
	if n, err := d2.CountSecondary("dept", record.StringKey("dept07"), at); err != nil || n != 1 {
		t.Fatalf("recovered secondary count = %d, %v", n, err)
	}
}

func TestDurableShardMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	d := openDur(t, Config{Dir: dir, Shards: 4})
	put(t, d, "k", "v")
	d.Close()
	if _, err := Open(Config{Dir: dir, Shards: 8}); err == nil {
		t.Fatal("shard-count mismatch should be rejected")
	}
	// Unspecified shard count adopts the directory's.
	d2 := openDur(t, Config{Dir: dir})
	if d2.Shards() != 4 {
		t.Fatalf("adopted %d shards, want 4", d2.Shards())
	}
}

func TestCheckpointTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	// Disable background checkpointing: this test drives it manually.
	d := openDur(t, Config{Dir: dir, Shards: 2, CheckpointBytes: -1})
	for i := 0; i < 100; i++ {
		put(t, d, fmt.Sprintf("key%03d", i%10), fmt.Sprintf("val%d", i))
	}
	segsBefore, err := wal.Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	bytesBefore := d.Stats().WAL.Bytes
	if bytesBefore == 0 || len(segsBefore) == 0 {
		t.Fatalf("expected a non-empty log: %d bytes, %d segments", bytesBefore, len(segsBefore))
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	segsAfter, err := wal.Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segsAfter) != 1 {
		t.Fatalf("%d segments after checkpoint, want only the live one", len(segsAfter))
	}
	info, found, err := wal.ReadCheckpointInfo(dir)
	if err != nil || !found {
		t.Fatalf("checkpoint info: found=%v err=%v", found, err)
	}
	if info.Shards != 2 || info.Clock != d.Now() {
		t.Fatalf("checkpoint info = %+v, clock want %v", info, d.Now())
	}
	// Recovery from checkpoint-only (empty tail) reproduces the state.
	want, _ := d.ScanAsOf(d.Now(), nil, record.InfiniteBound())
	wantNow := d.Now()
	d.Close()
	d2 := openDur(t, Config{Dir: dir, CheckpointBytes: -1})
	got, _ := d2.ScanAsOf(wantNow, nil, record.InfiniteBound())
	assertSameVersions(t, "post-truncation scan", got, want)
	if d2.Now() != wantNow {
		t.Fatalf("clock after checkpoint-only recovery = %v, want %v", d2.Now(), wantNow)
	}
}

func TestBackgroundCheckpointerTruncates(t *testing.T) {
	dir := t.TempDir()
	// A tiny threshold so a few commits trigger the background pass.
	d := openDur(t, Config{Dir: dir, CheckpointBytes: 256})
	for i := 0; i < 200; i++ {
		put(t, d, fmt.Sprintf("key%02d", i%10), fmt.Sprintf("val%d", i))
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		info, found, err := wal.ReadCheckpointInfo(dir)
		if err != nil {
			t.Fatal(err)
		}
		// The open-time seal checkpoint has LSN 0; wait for a real one.
		if found && info.LSN > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background checkpointer never ran")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close after background checkpoints: %v", err)
	}
	// Everything still recovers.
	d2 := openDur(t, Config{Dir: dir, CheckpointBytes: -1})
	v, ok, _ := d2.Get(record.StringKey("key09"))
	if !ok || string(v.Value) != "val199" {
		t.Fatalf("recovered Get = %v %v", v, ok)
	}
	if err := d2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDurableGroupCommitAcknowledgesOnlyDurable(t *testing.T) {
	dir := t.TempDir()
	d := openDur(t, Config{Dir: dir})
	put(t, d, "a", "1")
	st := d.Stats()
	if st.WAL.Records == 0 || st.WAL.Syncs == 0 {
		t.Fatalf("commit did not reach the log: %+v", st.WAL)
	}
	// An aborted transaction must leave no trace in the log.
	tx := d.Begin()
	if err := tx.Put(record.StringKey("b"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().WAL.Records; got != st.WAL.Records {
		t.Errorf("abort appended to the log: %d -> %d records", st.WAL.Records, got)
	}
	wantNow := d.Now()
	d.Close()
	d2 := openDur(t, Config{Dir: dir})
	if _, ok, _ := d2.Get(record.StringKey("b")); ok {
		t.Error("aborted write recovered")
	}
	if d2.Now() != wantNow {
		t.Errorf("clock = %v, want %v", d2.Now(), wantNow)
	}
}

func TestDurableCheckpointOnInMemoryDBFails(t *testing.T) {
	d := open(t, Config{})
	if err := d.Checkpoint(); err == nil {
		t.Fatal("Checkpoint on an in-memory database should fail")
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close on in-memory db: %v", err)
	}
	var errClosed = d.Close() // idempotent
	if errClosed != nil {
		t.Fatal(errClosed)
	}
}

func TestDurableConcurrentCommitsAndCheckpoints(t *testing.T) {
	dir := t.TempDir()
	// Keys spread across all 4 shards and a secondary index riding
	// along: a checkpoint racing the writers must stay boundary-exact
	// (a fuzzy dump would feed the shard-spanning secondary tree
	// out-of-order commit times on reload).
	secs := map[string]SecondaryExtract{"dept": deptExtract}
	d := openDur(t, Config{Dir: dir, Shards: 4, Secondaries: secs, CheckpointBytes: -1})
	const workers = 4
	const perWorker = 50
	errs := make(chan error, workers+1)
	done := make(chan struct{})
	go func() {
		// Checkpoint continuously while writers run: the "without
		// stopping writers" property under race.
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := d.Checkpoint(); err != nil {
				errs <- err
				return
			}
		}
	}()
	var committed [workers][]string
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// One byte per shard quarter: worker w's commits rotate
				// across every shard.
				k := fmt.Sprintf("%c-w%d-%03d", byte(i%4)*64+33, w, i)
				err := d.Update(func(tx *txn.Txn) error {
					return tx.Put(record.StringKey(k), []byte(fmt.Sprintf("dept%02d|w%d-%d", i%3, w, i)))
				})
				if err != nil {
					errs <- err
					return
				}
				committed[w] = append(committed[w], k)
			}
		}(w)
	}
	wg.Wait()
	close(done)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	wantNow := d.Now()
	wantDept0, err := d.CountSecondary("dept", record.StringKey("dept00"), wantNow)
	if err != nil {
		t.Fatal(err)
	}
	d.Close()

	d2 := openDur(t, Config{Dir: dir, Secondaries: secs, CheckpointBytes: -1})
	if d2.Now() != wantNow {
		t.Fatalf("recovered clock %v, want %v", d2.Now(), wantNow)
	}
	for w := range committed {
		for _, k := range committed[w] {
			if _, ok, err := d2.Get(record.StringKey(k)); err != nil || !ok {
				t.Fatalf("acknowledged commit %s lost: ok=%v err=%v", k, ok, err)
			}
		}
	}
	if gotDept0, _ := d2.CountSecondary("dept", record.StringKey("dept00"), wantNow); gotDept0 != wantDept0 {
		t.Fatalf("recovered secondary count %d, want %d", gotDept0, wantDept0)
	}
	if err := d2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
