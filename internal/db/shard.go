package db

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/record"
	"repro/internal/txn"
)

// shard is one key-range partition of the database: an independent
// TSB-tree guarded by a reader/writer latch. The latch protects the tree
// *structure* (nodes split and migrate in place); logical record locking
// is the transaction manager's job. Readers of disjoint shards never
// contend, and readers of the same shard share the latch.
type shard struct {
	mu   sync.RWMutex //tsb:latch level=5 name=shard
	tree *core.Tree

	// Latch contention instruments for the hot operations (Insert,
	// CommitKey, Get, GetAsOf): wait is acquire latency, hold is the
	// latched section. Timing is sampled — every latchSampleInterval-th
	// acquisition per shard pays the clock reads, the rest pay one
	// atomic add — and hold is observed after release, so the metric
	// update itself is latch-free and the common path stays cheap.
	tick         atomic.Uint64
	waitR, waitW obs.Histogram
	holdR, holdW obs.Histogram
}

// latchSampleShift selects the top 3 bits of the hashed tick, sampling
// exactly 1 in 8 acquisitions: enough to keep the wait/hold histograms
// statistically faithful under contention while the clock reads stay
// off seven in eight acquisitions.
const latchSampleShift = 61

// sampleLatch reports whether this acquisition is one of the timed
// 1-in-8. The tick is Fibonacci-hashed before the bit test: a plain
// tick%8 stride aliases with periodic op patterns (a put ticks the
// counter a fixed number of times, so every sample can land on the
// same acquisition site — in practice the read latch, leaving the
// write-latch histograms permanently empty). Multiplying by the odd
// constant is a bijection, so the rate stays exactly 1-in-8 while the
// sampled positions scatter across any small period.
func (sh *shard) sampleLatch() bool {
	return sh.tick.Add(1)*0x9E3779B97F4A7C15>>latchSampleShift == 0
}

// shardedStore routes operations across n key-range shards and implements
// txn.Store and txn.Differ. Shard i owns the half-open key range
// [record.ShardBoundary(i,n), record.ShardBoundary(i+1,n)), so shard order
// equals key order and range queries merge by concatenating per-shard
// results — no interleaving is ever needed.
type shardedStore struct {
	shards []*shard
	// mig, when non-nil, receives the deferred-split tickets inserts
	// create (Config.BackgroundMigration). Set once at open time, before
	// concurrent use.
	mig *migrator
}

func newShardedStore(trees []*core.Tree) *shardedStore {
	s := &shardedStore{shards: make([]*shard, len(trees))}
	for i, t := range trees {
		s.shards[i] = &shard{tree: t}
	}
	return s
}

func (s *shardedStore) shardFor(k record.Key) *shard {
	return s.shards[record.ShardOfKey(k, len(s.shards))]
}

// shardSpan returns the inclusive shard index range a key interval
// [low, high) touches.
func (s *shardedStore) shardSpan(low record.Key, high record.Bound) (from, to int) {
	n := len(s.shards)
	from = record.ShardOfKey(low, n)
	if high.IsInfinite() {
		return from, n - 1
	}
	return from, record.ShardOfKey(high.Key(), n)
}

// Now returns the largest committed timestamp across all shards.
func (s *shardedStore) Now() record.Timestamp {
	var now record.Timestamp
	for _, sh := range s.shards {
		sh.mu.RLock()
		if t := sh.tree.Now(); t > now {
			now = t
		}
		sh.mu.RUnlock()
	}
	return now
}

func (s *shardedStore) Insert(v record.Version) error {
	i := record.ShardOfKey(v.Key, len(s.shards))
	sh := s.shards[i]
	var start, acquired time.Time
	timed := sh.sampleLatch()
	if timed {
		start = time.Now()
	}
	sh.mu.Lock()
	if timed {
		acquired = time.Now()
	}
	//tsb:allow latchio -- inline burn fallback: when the migrator queue is saturated (or migration is off) the time split burns under the latch by design
	err := sh.tree.Insert(v)
	var tickets []core.PendingSplit
	if s.mig != nil {
		// Drain tickets while still holding the write latch (the slice
		// is tree state); hand them to the worker after releasing it.
		tickets = sh.tree.TakeNewPendingSplits()
	}
	sh.mu.Unlock()
	if timed {
		sh.waitW.Observe(acquired.Sub(start))
		sh.holdW.Observe(time.Since(acquired))
	}
	if len(tickets) > 0 {
		s.mig.enqueue(i, tickets)
	}
	return err
}

func (s *shardedStore) CommitKey(k record.Key, txnID uint64, commitTime record.Timestamp) error {
	sh := s.shardFor(k)
	var start, acquired time.Time
	timed := sh.sampleLatch()
	if timed {
		start = time.Now()
	}
	sh.mu.Lock()
	if timed {
		acquired = time.Now()
	}
	err := sh.tree.CommitKey(k, txnID, commitTime)
	sh.mu.Unlock()
	if timed {
		sh.waitW.Observe(acquired.Sub(start))
		sh.holdW.Observe(time.Since(acquired))
	}
	return err
}

func (s *shardedStore) AbortKey(k record.Key, txnID uint64) error {
	sh := s.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.tree.AbortKey(k, txnID)
}

func (s *shardedStore) GetPending(k record.Key, txnID uint64) (record.Version, bool, error) {
	sh := s.shardFor(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.tree.GetPending(k, txnID)
}

func (s *shardedStore) Get(k record.Key) (record.Version, bool, error) {
	sh := s.shardFor(k)
	var start, acquired time.Time
	timed := sh.sampleLatch()
	if timed {
		start = time.Now()
	}
	sh.mu.RLock()
	if timed {
		acquired = time.Now()
	}
	v, ok, err := sh.tree.Get(k)
	sh.mu.RUnlock()
	if timed {
		sh.waitR.Observe(acquired.Sub(start))
		sh.holdR.Observe(time.Since(acquired))
	}
	return v, ok, err
}

func (s *shardedStore) GetAsOf(k record.Key, at record.Timestamp) (record.Version, bool, error) {
	sh := s.shardFor(k)
	var start, acquired time.Time
	timed := sh.sampleLatch()
	if timed {
		start = time.Now()
	}
	sh.mu.RLock()
	if timed {
		acquired = time.Now()
	}
	v, ok, err := sh.tree.GetAsOf(k, at)
	sh.mu.RUnlock()
	if timed {
		sh.waitR.Observe(acquired.Sub(start))
		sh.holdR.Observe(time.Since(acquired))
	}
	return v, ok, err
}

func (s *shardedStore) History(k record.Key) ([]record.Version, error) {
	sh := s.shardFor(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.tree.History(k)
}

func (s *shardedStore) ScanAsOf(at record.Timestamp, low record.Key, high record.Bound) ([]record.Version, error) {
	var out []record.Version
	from, to := s.shardSpan(low, high)
	for i := from; i <= to; i++ {
		sh := s.shards[i]
		sh.mu.RLock()
		part, err := sh.tree.ScanAsOf(at, low, high)
		sh.mu.RUnlock()
		if err != nil {
			return nil, fmt.Errorf("db: shard %d: %w", i, err)
		}
		out = append(out, part...)
	}
	return out, nil
}

func (s *shardedStore) ScanRange(low record.Key, high record.Bound, from, to record.Timestamp) ([]record.Version, error) {
	var out []record.Version
	parts := s.RangeParts(low, high)
	for part := 0; part < parts; part++ {
		vs, err := s.ScanRangePart(part, low, high, from, to)
		if err != nil {
			return nil, err
		}
		out = append(out, vs...)
	}
	return out, nil
}

// RangeParts returns how many independently latched parts a temporal
// range scan of [low, high) splits into: one per touched shard, in key
// order (shard order equals key order, so concatenating parts preserves
// the (key, time) result order).
func (s *shardedStore) RangeParts(low record.Key, high record.Bound) int {
	from, to := s.shardSpan(low, high)
	return to - from + 1
}

// ScanRangePart materializes one part of a temporal range scan under
// that single shard's read latch; no other latch is touched.
func (s *shardedStore) ScanRangePart(part int, low record.Key, high record.Bound, from, to record.Timestamp) ([]record.Version, error) {
	first, _ := s.shardSpan(low, high)
	i := first + part
	sh := s.shards[i]
	sh.mu.RLock()
	out, err := sh.tree.ScanRange(low, high, from, to)
	sh.mu.RUnlock()
	if err != nil {
		return nil, fmt.Errorf("db: shard %d: %w", i, err)
	}
	return out, nil
}

// ScanPageAsOf streams one latch-scoped batch of the snapshot at time
// at: the shard-order concatenating merge cursor of the sharded engine
// (reverse shard order when reverse is set). It read-latches exactly one
// shard at a time, only for the duration of that shard tree's leaf-page
// call, releasing it before touching the next shard — the incremental
// latch hand-off that lets a cursor pause indefinitely between pages
// without blocking writers. Because the key space is range-partitioned
// in shard order, pages concatenate in key order with no interleaving.
func (s *shardedStore) ScanPageAsOf(at record.Timestamp, low record.Key, high record.Bound, reverse bool) (core.Page, error) {
	n := len(s.shards)
	if reverse {
		i := n - 1
		if !high.IsInfinite() {
			i = record.ShardOfKey(high.Key(), n)
		}
		first := record.ShardOfKey(low, n)
		hi := high
		for {
			shLow, _ := record.ShardRange(i, n)
			clampLow := low
			if low.Compare(shLow) < 0 {
				clampLow = shLow
			}
			// A resumed reverse scan arrives with hi at this shard's
			// low boundary: the window inside the shard is empty, so
			// step down without a latched descent.
			if !hi.IsInfinite() && hi.CompareKey(clampLow) <= 0 {
				if i <= first {
					return core.Page{}, nil
				}
				i--
				hi = record.KeyBound(shLow)
				continue
			}
			sh := s.shards[i]
			sh.mu.RLock()
			page, err := sh.tree.ScanPageAsOf(at, clampLow, hi, true)
			sh.mu.RUnlock()
			if err != nil {
				return core.Page{}, fmt.Errorf("db: shard %d: %w", i, err)
			}
			if page.More || i <= first {
				return page, nil
			}
			// This shard is exhausted: hand the window's high edge down
			// to the next shard's upper boundary.
			i--
			next := record.KeyBound(shLow)
			if len(page.Versions) > 0 {
				page.NextHigh = next
				page.More = true
				return page, nil
			}
			hi = next
		}
	}
	i := record.ShardOfKey(low, n)
	last := n - 1
	if !high.IsInfinite() {
		last = record.ShardOfKey(high.Key(), n)
	}
	lo := low
	for {
		_, shHigh := record.ShardRange(i, n)
		clampHigh := high
		if shHigh.Compare(high) < 0 {
			clampHigh = shHigh
		}
		sh := s.shards[i]
		sh.mu.RLock()
		page, err := sh.tree.ScanPageAsOf(at, lo, clampHigh, false)
		sh.mu.RUnlock()
		if err != nil {
			return core.Page{}, fmt.Errorf("db: shard %d: %w", i, err)
		}
		if page.More || i >= last {
			return page, nil
		}
		// This shard is exhausted: resume at the next shard's boundary.
		i++
		next := record.ShardBoundary(i, n)
		if len(page.Versions) > 0 {
			page.NextLow = next
			page.More = true
			return page, nil
		}
		lo = next
	}
}

// ScanRangePage streams one latch-scoped, key-paged batch of a temporal
// range query — the window-mode twin of ScanPageAsOf. It read-latches
// exactly one shard at a time, for the duration of one ScanRangePage call
// on that shard's tree, and hands the window off across shard boundaries
// through the page's NextLow: a window cursor pausing between pages
// blocks no writer on any shard. Shard order equals key order, so pages
// concatenate in ScanRange's (key, time) order with no interleaving.
func (s *shardedStore) ScanRangePage(low record.Key, high record.Bound, from, to record.Timestamp) (core.Page, error) {
	n := len(s.shards)
	i := record.ShardOfKey(low, n)
	last := n - 1
	if !high.IsInfinite() {
		last = record.ShardOfKey(high.Key(), n)
	}
	lo := low
	for {
		_, shHigh := record.ShardRange(i, n)
		clampHigh := high
		if shHigh.Compare(high) < 0 {
			clampHigh = shHigh
		}
		sh := s.shards[i]
		sh.mu.RLock()
		page, err := sh.tree.ScanRangePage(lo, clampHigh, from, to)
		sh.mu.RUnlock()
		if err != nil {
			return core.Page{}, fmt.Errorf("db: shard %d: %w", i, err)
		}
		if page.More || i >= last {
			return page, nil
		}
		// This shard is exhausted: resume at the next shard's boundary.
		i++
		next := record.ShardBoundary(i, n)
		if len(page.Versions) > 0 {
			page.NextLow = next
			page.More = true
			return page, nil
		}
		lo = next
	}
}

func (s *shardedStore) Diff(low record.Key, high record.Bound, from, to record.Timestamp) ([]core.Change, error) {
	var out []core.Change
	lo, hi := s.shardSpan(low, high)
	for i := lo; i <= hi; i++ {
		sh := s.shards[i]
		sh.mu.RLock()
		part, err := sh.tree.Diff(low, high, from, to)
		sh.mu.RUnlock()
		if err != nil {
			return nil, fmt.Errorf("db: shard %d: %w", i, err)
		}
		out = append(out, part...)
	}
	return out, nil
}

// registerMetrics names each shard's latch-contention histograms in r,
// one (shard, mode) series pair per histogram.
func (s *shardedStore) registerMetrics(r *obs.Registry) {
	for i, sh := range s.shards {
		latch := obs.Label{Key: "latch", Value: "shard"}
		id := obs.Label{Key: "shard", Value: strconv.Itoa(i)}
		rd := obs.Label{Key: "mode", Value: "read"}
		wr := obs.Label{Key: "mode", Value: "write"}
		r.RegisterHistogram("tsb_latch_wait_seconds", "shard latch acquire latency (1-in-8 sampled)", &sh.waitR, latch, id, rd)
		r.RegisterHistogram("tsb_latch_wait_seconds", "shard latch acquire latency (1-in-8 sampled)", &sh.waitW, latch, id, wr)
		r.RegisterHistogram("tsb_latch_hold_seconds", "shard latch hold duration (1-in-8 sampled)", &sh.holdR, latch, id, rd)
		r.RegisterHistogram("tsb_latch_hold_seconds", "shard latch hold duration (1-in-8 sampled)", &sh.holdW, latch, id, wr)
	}
}

// migrationCounters aggregates the per-tree migration measurements that
// live outside core.Stats: split-under-latch time, inline fallbacks, and
// currently-marked leaves.
func (s *shardedStore) migrationCounters() (splitLatchNanos, fallbacks uint64, pending int) {
	for _, sh := range s.shards {
		sh.mu.RLock()
		splitLatchNanos += sh.tree.SplitLatchNanos()
		fallbacks += sh.tree.MigrationFallbacks()
		pending += sh.tree.PendingSplitCount()
		sh.mu.RUnlock()
	}
	return splitLatchNanos, fallbacks, pending
}

// stats aggregates the structural counters of every shard tree.
func (s *shardedStore) stats() core.Stats {
	var agg core.Stats
	for _, sh := range s.shards {
		sh.mu.RLock()
		agg = agg.Merge(sh.tree.Stats())
		sh.mu.RUnlock()
	}
	return agg
}

// checkInvariants verifies every shard tree and that every key a shard
// holds routes back to it.
func (s *shardedStore) checkInvariants() error {
	n := len(s.shards)
	for i, sh := range s.shards {
		sh.mu.RLock()
		err := sh.tree.CheckInvariants()
		if err == nil && n > 1 {
			low, high := record.ShardRange(i, n)
			var vs []record.Version
			vs, err = sh.tree.ScanRange(nil, record.InfiniteBound(), record.TimeZero+1, record.TimeInfinity)
			for _, v := range vs {
				if err != nil {
					break
				}
				if v.Key.Less(low) || high.CompareKey(v.Key) <= 0 {
					err = fmt.Errorf("key %s outside shard range [%s,%s)", v.Key, low, high)
				}
			}
		}
		sh.mu.RUnlock()
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

var (
	_ txn.Store             = (*shardedStore)(nil)
	_ txn.Differ            = (*shardedStore)(nil)
	_ txn.CursorStore       = (*shardedStore)(nil)
	_ txn.PartedStore       = (*shardedStore)(nil)
	_ txn.WindowCursorStore = (*shardedStore)(nil)
)
