package db

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/record"
)

func deptExtract(v []byte) record.Key {
	i := bytes.IndexByte(v, '|')
	if i < 0 {
		return nil
	}
	return record.Key(v[:i])
}

func TestCheckpointRoundTrip(t *testing.T) {
	d := open(t, Config{BufferPages: 16})
	if err := d.CreateSecondary("dept", deptExtract); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		put(t, d, fmt.Sprintf("emp%03d", i%50), fmt.Sprintf("dept%02d|rev%d", i%7, i))
	}
	wantNow := d.Now()
	wantHist, _ := d.History(record.StringKey("emp007"))
	wantCount, _ := d.CountSecondary("dept", record.StringKey("dept03"), wantNow)

	var buf bytes.Buffer
	if err := d.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}

	d2, err := LoadFrom(&buf, map[string]SecondaryExtract{"dept": deptExtract}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Now() != wantNow {
		t.Errorf("clock = %v, want %v", d2.Now(), wantNow)
	}
	if err := d2.CheckInvariants(); err != nil {
		t.Fatalf("invariants after load: %v", err)
	}
	gotHist, err := d2.History(record.StringKey("emp007"))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotHist) != len(wantHist) {
		t.Fatalf("history length %d, want %d", len(gotHist), len(wantHist))
	}
	for i := range wantHist {
		if gotHist[i].Time != wantHist[i].Time || string(gotHist[i].Value) != string(wantHist[i].Value) {
			t.Fatalf("history[%d] = %v, want %v", i, gotHist[i], wantHist[i])
		}
	}
	gotCount, _ := d2.CountSecondary("dept", record.StringKey("dept03"), wantNow)
	if gotCount != wantCount {
		t.Errorf("secondary count = %d, want %d", gotCount, wantCount)
	}
	// The reopened database keeps working: writes, commits, secondary
	// maintenance, and further checkpoints.
	put(t, d2, "emp000", "dept99|after-restart")
	v, ok, _ := d2.Get(record.StringKey("emp000"))
	if !ok || string(v.Value) != "dept99|after-restart" {
		t.Fatalf("write after load = %v, %v", v, ok)
	}
	if n, _ := d2.CountSecondary("dept", record.StringKey("dept99"), d2.Now()); n != 1 {
		t.Errorf("secondary after reload write = %d, want 1", n)
	}
	var buf2 bytes.Buffer
	if err := d2.SaveTo(&buf2); err != nil {
		t.Fatal(err)
	}
}

func TestSaveToRejectsActiveTransactions(t *testing.T) {
	d := open(t, Config{})
	put(t, d, "k", "committed")
	tx := d.Begin()
	if err := tx.Put(record.StringKey("k"), []byte("inflight")); err != nil {
		t.Fatal(err)
	}
	// An in-flight updater makes a whole-image checkpoint torn (its Txn
	// handle would not survive the load): SaveTo must refuse with the
	// typed error instead of silently emitting one.
	var buf bytes.Buffer
	if err := d.SaveTo(&buf); !errors.Is(err, ErrActiveTransactions) {
		t.Fatalf("SaveTo with active txn = %v, want ErrActiveTransactions", err)
	}
	if buf.Len() != 0 {
		t.Errorf("refused save still wrote %d bytes", buf.Len())
	}
	// A second in-flight updater is counted too.
	tx2 := d.Begin()
	if err := d.SaveTo(&buf); !errors.Is(err, ErrActiveTransactions) {
		t.Fatalf("SaveTo with two active txns = %v", err)
	}
	if err := tx2.Commit(); err != nil { // empty commit resolves it
		t.Fatal(err)
	}

	// Resolving the transaction unblocks the save.
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := d.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := LoadFrom(&buf, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, ok, _ := d2.Get(record.StringKey("k"))
	if !ok || string(v.Value) != "committed" {
		t.Fatalf("Get after load = %v, %v", v, ok)
	}
	if err := d2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Readers never block a save.
	d2.ReadOnly()
	var buf2 bytes.Buffer
	if err := d2.SaveTo(&buf2); err != nil {
		t.Fatalf("SaveTo with readers = %v", err)
	}
}

func TestLoadValidatesInputs(t *testing.T) {
	d := open(t, Config{})
	d.CreateSecondary("a", func([]byte) record.Key { return nil })
	put(t, d, "k", "v")
	var buf bytes.Buffer
	if err := d.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Missing extractor.
	if _, err := LoadFrom(bytes.NewReader(buf.Bytes()), nil, nil); err == nil {
		t.Error("missing extractor should fail")
	}
	// Wrong extractor name.
	if _, err := LoadFrom(bytes.NewReader(buf.Bytes()),
		map[string]SecondaryExtract{"b": func([]byte) record.Key { return nil }}, nil); err == nil {
		t.Error("wrong extractor name should fail")
	}
	// Garbage input.
	if _, err := LoadFrom(bytes.NewReader([]byte("not a checkpoint")), nil, nil); err == nil {
		t.Error("garbage checkpoint should fail")
	}
}
