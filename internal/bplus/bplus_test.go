package bplus

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/record"
	"repro/internal/storage"
)

func newTree(t *testing.T, cfg Config) *Tree {
	t.Helper()
	mag := storage.NewMagneticDisk(4096, storage.CostModel{})
	tree, err := New(mag, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestEmpty(t *testing.T) {
	tree := newTree(t, Config{})
	if _, ok, err := tree.Get(record.StringKey("a")); ok || err != nil {
		t.Fatalf("Get on empty = %v, %v", ok, err)
	}
	if ok, err := tree.Delete(record.StringKey("a")); ok || err != nil {
		t.Fatalf("Delete on empty = %v, %v", ok, err)
	}
	ks, _, err := tree.Scan(nil, record.InfiniteBound())
	if err != nil || len(ks) != 0 {
		t.Fatalf("Scan on empty = %v, %v", ks, err)
	}
}

func TestPutGetReplaceDelete(t *testing.T) {
	tree := newTree(t, Config{})
	if err := tree.Put(record.StringKey("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := tree.Get(record.StringKey("k"))
	if !ok || string(v) != "v1" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	// Replacement overwrites: single-version semantics.
	tree.Put(record.StringKey("k"), []byte("v2"))
	v, _, _ = tree.Get(record.StringKey("k"))
	if string(v) != "v2" {
		t.Fatalf("after replace Get = %q", v)
	}
	ok, err := tree.Delete(record.StringKey("k"))
	if !ok || err != nil {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if _, ok, _ := tree.Get(record.StringKey("k")); ok {
		t.Fatal("Get after delete should miss")
	}
}

func TestValidation(t *testing.T) {
	tree := newTree(t, Config{MaxKeySize: 4, MaxValueSize: 8})
	if err := tree.Put(nil, []byte("x")); err == nil {
		t.Error("empty key should fail")
	}
	if err := tree.Put(record.StringKey("toolong"), []byte("x")); err == nil {
		t.Error("oversize key should fail")
	}
	if err := tree.Put(record.StringKey("k"), make([]byte, 99)); err == nil {
		t.Error("oversize value should fail")
	}
	if _, err := New(storage.NewMagneticDisk(4096, storage.CostModel{}), Config{IndexCapacity: 64}); err == nil {
		t.Error("tiny index capacity should fail")
	}
}

func TestGrowthAndOrderedScan(t *testing.T) {
	tree := newTree(t, Config{LeafCapacity: 128, IndexCapacity: 512, MaxKeySize: 16})
	const n = 500
	perm := rand.New(rand.NewSource(3)).Perm(n)
	for _, i := range perm {
		if err := tree.Put(record.StringKey(fmt.Sprintf("key%04d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Stats().Height < 2 || tree.Stats().Splits == 0 {
		t.Fatalf("stats: %+v", tree.Stats())
	}
	for i := 0; i < n; i++ {
		k := record.StringKey(fmt.Sprintf("key%04d", i))
		v, ok, err := tree.Get(k)
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%s) = %q, %v, %v", k, v, ok, err)
		}
	}
	keys, vals, err := tree.Scan(nil, record.InfiniteBound())
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != n || len(vals) != n {
		t.Fatalf("Scan returned %d keys", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if !keys[i-1].Less(keys[i]) {
			t.Fatalf("scan out of order at %d: %s >= %s", i, keys[i-1], keys[i])
		}
	}
	// Range scan.
	keys, _, _ = tree.Scan(record.StringKey("key0100"), record.KeyBound(record.StringKey("key0200")))
	if len(keys) != 100 {
		t.Fatalf("range scan = %d keys, want 100", len(keys))
	}
}

func TestModelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tree := newTree(t, Config{LeafCapacity: 96, IndexCapacity: 512, MaxKeySize: 16})
	ref := make(map[string]string)
	for op := 0; op < 3000; op++ {
		k := fmt.Sprintf("key%03d", rng.Intn(200))
		switch rng.Intn(5) {
		case 0:
			ok, err := tree.Delete(record.StringKey(k))
			if err != nil {
				t.Fatal(err)
			}
			_, inRef := ref[k]
			if ok != inRef {
				t.Fatalf("Delete(%s) = %v, ref presence %v", k, ok, inRef)
			}
			delete(ref, k)
		default:
			v := fmt.Sprintf("v%d", op)
			if err := tree.Put(record.StringKey(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			ref[k] = v
		}
	}
	for k, want := range ref {
		v, ok, err := tree.Get(record.StringKey(k))
		if err != nil || !ok || string(v) != want {
			t.Fatalf("Get(%s) = %q, %v, %v; want %q", k, v, ok, err, want)
		}
	}
	keys, _, _ := tree.Scan(nil, record.InfiniteBound())
	if len(keys) != len(ref) {
		t.Fatalf("Scan size %d != ref size %d", len(keys), len(ref))
	}
}
