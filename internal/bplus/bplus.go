// Package bplus implements a conventional single-version B+-tree over the
// magnetic page store. It is the "current database only" comparator in the
// experiments: it stores exactly one version per key, cannot answer as-of
// or history queries at all, and its key splits are the model for the
// TSB-tree's in-place key splits (§3.1: "the key splits on magnetic disk
// are more like those in B+-trees since we need not keep the old node
// intact").
package bplus

import (
	"fmt"
	"sort"

	"repro/internal/record"
	"repro/internal/storage"
)

// Tree is a single-version B+-tree. It is not safe for concurrent use.
type Tree struct {
	mag      storage.PageStore
	root     uint64
	leafCap  int
	indexCap int
	maxKey   int
	maxVal   int
	height   int
	nodes    int
	inserts  uint64
	splits   uint64
}

// Config configures a B+-tree.
type Config struct {
	// LeafCapacity and IndexCapacity are logical node sizes in encoded
	// bytes; both default to the page size.
	LeafCapacity  int
	IndexCapacity int
	// MaxKeySize and MaxValueSize bound record sizes (defaults 64 and
	// LeafCapacity/8).
	MaxKeySize   int
	MaxValueSize int
}

// Stats reports structural counters.
type Stats struct {
	Inserts uint64
	Splits  uint64
	Nodes   int
	Height  int
}

type pair struct {
	key record.Key
	val []byte
}

// node is a B+-tree node: either sorted key/value pairs (leaf) or sorted
// separator keys with children (index; children[i] covers keys in
// [keys[i], keys[i+1])). keys[0] is always nil (minus infinity).
type node struct {
	page     uint64
	leaf     bool
	pairs    []pair
	keys     []record.Key
	children []uint64
}

// New creates an empty B+-tree on mag.
func New(mag storage.PageStore, cfg Config) (*Tree, error) {
	t := &Tree{mag: mag}
	t.leafCap = cfg.LeafCapacity
	if t.leafCap == 0 || t.leafCap > mag.PageSize() {
		t.leafCap = mag.PageSize()
	}
	t.indexCap = cfg.IndexCapacity
	if t.indexCap == 0 || t.indexCap > mag.PageSize() {
		t.indexCap = mag.PageSize()
	}
	t.maxKey = cfg.MaxKeySize
	if t.maxKey == 0 {
		t.maxKey = 64
	}
	t.maxVal = cfg.MaxValueSize
	if t.maxVal == 0 {
		t.maxVal = t.leafCap / 8
	}
	if 4*(t.maxKey+16) > t.indexCap {
		return nil, fmt.Errorf("bplus: index capacity %d too small for MaxKeySize %d", t.indexCap, t.maxKey)
	}
	page, err := mag.Alloc()
	if err != nil {
		return nil, err
	}
	t.root = page
	t.height = 1
	t.nodes = 1
	if err := t.write(&node{page: page, leaf: true}); err != nil {
		return nil, err
	}
	return t, nil
}

// Stats returns a snapshot of the counters.
func (t *Tree) Stats() Stats {
	return Stats{Inserts: t.inserts, Splits: t.splits, Nodes: t.nodes, Height: t.height}
}

func encode(n *node) []byte {
	e := record.NewEncoder(nil)
	if n.leaf {
		e.Byte(0)
		e.Uvarint(uint64(len(n.pairs)))
		for _, p := range n.pairs {
			e.Key(p.key)
			e.Blob(p.val)
		}
	} else {
		e.Byte(1)
		e.Uvarint(uint64(len(n.children)))
		for i, c := range n.children {
			e.Key(n.keys[i])
			e.Uvarint(c)
		}
	}
	return e.Bytes()
}

func decode(data []byte, page uint64) (*node, error) {
	d := record.NewDecoder(data)
	n := &node{page: page, leaf: d.Byte() == 0}
	count := d.Uvarint()
	for i := uint64(0); i < count && d.Err() == nil; i++ {
		if n.leaf {
			n.pairs = append(n.pairs, pair{key: d.Key(), val: d.Blob()})
		} else {
			n.keys = append(n.keys, d.Key())
			n.children = append(n.children, d.Uvarint())
		}
	}
	if d.Err() != nil {
		return nil, fmt.Errorf("bplus: page %d: %w", page, d.Err())
	}
	return n, nil
}

func (t *Tree) read(page uint64) (*node, error) {
	data, err := t.mag.Read(page)
	if err != nil {
		return nil, err
	}
	return decode(data, page)
}

func (t *Tree) write(n *node) error {
	data := encode(n)
	if len(data) > t.mag.PageSize() {
		return fmt.Errorf("bplus: node of %d bytes exceeds page size", len(data))
	}
	return t.mag.Write(n.page, data)
}

func (t *Tree) size(n *node) int { return len(encode(n)) }

// childIndex returns the position of the child covering key k.
func childIndex(n *node, k record.Key) int {
	// keys[0] is nil; find the last separator <= k.
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i].Compare(k) > 0 })
	return i - 1
}

// Put inserts or replaces the value for key k.
func (t *Tree) Put(k record.Key, val []byte) error {
	if len(k) == 0 || len(k) > t.maxKey {
		return fmt.Errorf("bplus: bad key length %d", len(k))
	}
	if len(val) > t.maxVal {
		return fmt.Errorf("bplus: value of %d bytes exceeds max %d", len(val), t.maxVal)
	}
	need := len(k) + len(val) + 8

	root, err := t.read(t.root)
	if err != nil {
		return err
	}
	rootLimit := t.indexCap - 2*(t.maxKey+16)
	if root.leaf {
		rootLimit = t.leafCap - need
	}
	if t.size(root) > rootLimit {
		if err := t.splitRoot(root); err != nil {
			return err
		}
		if root, err = t.read(t.root); err != nil {
			return err
		}
	}

	n := root
	for !n.leaf {
		ci := childIndex(n, k)
		child, err := t.read(n.children[ci])
		if err != nil {
			return err
		}
		var full bool
		if child.leaf {
			full = t.size(child)+need+4 > t.leafCap
		} else {
			full = t.size(child)+2*(t.maxKey+16) > t.indexCap
		}
		if full {
			if err := t.splitChild(n, ci, child); err != nil {
				return err
			}
			ci = childIndex(n, k)
			if child, err = t.read(n.children[ci]); err != nil {
				return err
			}
		}
		n = child
	}
	i := sort.Search(len(n.pairs), func(i int) bool { return n.pairs[i].key.Compare(k) >= 0 })
	if i < len(n.pairs) && n.pairs[i].key.Equal(k) {
		n.pairs[i].val = append([]byte(nil), val...)
	} else {
		n.pairs = append(n.pairs, pair{})
		copy(n.pairs[i+1:], n.pairs[i:])
		n.pairs[i] = pair{key: k.Clone(), val: append([]byte(nil), val...)}
	}
	t.inserts++
	return t.write(n)
}

// Delete removes key k. It reports whether the key was present.
func (t *Tree) Delete(k record.Key) (bool, error) {
	n, err := t.leafFor(k)
	if err != nil {
		return false, err
	}
	for i, p := range n.pairs {
		if p.key.Equal(k) {
			n.pairs = append(n.pairs[:i], n.pairs[i+1:]...)
			return true, t.write(n)
		}
	}
	return false, nil
}

func (t *Tree) leafFor(k record.Key) (*node, error) {
	n, err := t.read(t.root)
	if err != nil {
		return nil, err
	}
	for !n.leaf {
		if n, err = t.read(n.children[childIndex(n, k)]); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// Get returns the value stored under key k.
func (t *Tree) Get(k record.Key) ([]byte, bool, error) {
	n, err := t.leafFor(k)
	if err != nil {
		return nil, false, err
	}
	i := sort.Search(len(n.pairs), func(i int) bool { return n.pairs[i].key.Compare(k) >= 0 })
	if i < len(n.pairs) && n.pairs[i].key.Equal(k) {
		return append([]byte(nil), n.pairs[i].val...), true, nil
	}
	return nil, false, nil
}

// Scan returns all pairs with keys in [low, high), sorted.
func (t *Tree) Scan(low record.Key, high record.Bound) ([]record.Key, [][]byte, error) {
	var keys []record.Key
	var vals [][]byte
	var walk func(page uint64) error
	walk = func(page uint64) error {
		n, err := t.read(page)
		if err != nil {
			return err
		}
		if n.leaf {
			for _, p := range n.pairs {
				if p.key.Compare(low) >= 0 && high.CompareKey(p.key) > 0 {
					keys = append(keys, p.key)
					vals = append(vals, p.val)
				}
			}
			return nil
		}
		for i, c := range n.children {
			// child i covers [keys[i], keys[i+1]); skip if outside.
			if i+1 < len(n.keys) && n.keys[i+1].Compare(low) <= 0 {
				continue
			}
			if high.CompareKey(n.keys[i]) <= 0 {
				continue
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return nil, nil, err
	}
	return keys, vals, nil
}

// splitChild splits the full child at position ci of parent n.
func (t *Tree) splitChild(parent *node, ci int, child *node) error {
	sep, right, err := t.splitNode(child)
	if err != nil {
		return err
	}
	parent.keys = append(parent.keys, nil)
	parent.children = append(parent.children, 0)
	copy(parent.keys[ci+2:], parent.keys[ci+1:])
	copy(parent.children[ci+2:], parent.children[ci+1:])
	parent.keys[ci+1] = sep
	parent.children[ci+1] = right
	return t.write(parent)
}

// splitNode halves n, writes both halves, and returns the separator key
// and the new right page.
func (t *Tree) splitNode(n *node) (record.Key, uint64, error) {
	page, err := t.mag.Alloc()
	if err != nil {
		return nil, 0, err
	}
	right := &node{page: page, leaf: n.leaf}
	var sep record.Key
	if n.leaf {
		if len(n.pairs) < 2 {
			return nil, 0, fmt.Errorf("bplus: leaf too small to split")
		}
		mid := len(n.pairs) / 2
		sep = n.pairs[mid].key.Clone()
		right.pairs = append(right.pairs, n.pairs[mid:]...)
		n.pairs = n.pairs[:mid]
	} else {
		if len(n.children) < 2 {
			return nil, 0, fmt.Errorf("bplus: index too small to split")
		}
		mid := len(n.children) / 2
		sep = n.keys[mid].Clone()
		right.keys = append(right.keys, n.keys[mid:]...)
		right.children = append(right.children, n.children[mid:]...)
		n.keys = n.keys[:mid]
		n.children = n.children[:mid]
	}
	t.splits++
	t.nodes++
	if err := t.write(n); err != nil {
		return nil, 0, err
	}
	return sep, page, t.write(right)
}

// splitRoot splits the root, growing the tree by one level.
func (t *Tree) splitRoot(root *node) error {
	sep, right, err := t.splitNode(root)
	if err != nil {
		return err
	}
	page, err := t.mag.Alloc()
	if err != nil {
		return err
	}
	newRoot := &node{
		page:     page,
		keys:     []record.Key{nil, sep},
		children: []uint64{root.page, right},
	}
	t.root = page
	t.height++
	t.nodes++
	return t.write(newRoot)
}
