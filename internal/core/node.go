package core

import (
	"fmt"
	"sort"

	"repro/internal/record"
	"repro/internal/storage"
)

// entry is one index item: a child node and the key×time rectangle it is
// responsible for. Entries of an index node exactly partition the node's
// own rectangle (see DESIGN.md on the explicit-rectangle representation).
type entry struct {
	rect  record.Rect
	child storage.Addr
}

// isCurrent reports whether the entry references a node of the current
// database (erasable, magnetic).
func (e entry) isCurrent() bool { return e.child.IsMagnetic() }

// node is the in-memory form of a TSB-tree node. Current nodes are
// deserialized from magnetic pages and may be rewritten; historical nodes
// are deserialized from WORM runs and are immutable.
type node struct {
	addr storage.Addr
	rect record.Rect
	leaf bool

	// versions holds a leaf's records sorted by (key, time), pending
	// last within a key. In a current leaf some versions may have
	// times before rect.Start: those are the clause-3 copies of the
	// Time-Split Rule (the version valid at the split time).
	versions []record.Version

	// entries holds an index node's children sorted by (LowKey, Start).
	entries []entry
}

const (
	nodeKindLeaf  = 0
	nodeKindIndex = 1
)

// encodeNode serializes a node body.
func encodeNode(n *node) []byte {
	e := record.NewEncoder(nil)
	if n.leaf {
		e.Byte(nodeKindLeaf)
	} else {
		e.Byte(nodeKindIndex)
	}
	e.Rect(n.rect)
	if n.leaf {
		e.Uvarint(uint64(len(n.versions)))
		for _, v := range n.versions {
			e.Version(v)
		}
	} else {
		e.Uvarint(uint64(len(n.entries)))
		for _, en := range n.entries {
			e.Rect(en.rect)
			e.Byte(byte(en.child.Kind))
			e.Uvarint(en.child.Off)
			e.Uvarint(uint64(en.child.Len))
		}
	}
	return e.Bytes()
}

// decodeNode parses a node body.
func decodeNode(data []byte, addr storage.Addr) (*node, error) {
	d := record.NewDecoder(data)
	kind := d.Byte()
	n := &node{addr: addr, leaf: kind == nodeKindLeaf}
	n.rect = d.Rect()
	count := d.Uvarint()
	for i := uint64(0); i < count && d.Err() == nil; i++ {
		if n.leaf {
			n.versions = append(n.versions, d.Version())
		} else {
			var en entry
			en.rect = d.Rect()
			en.child.Kind = storage.DeviceKind(d.Byte())
			en.child.Off = d.Uvarint()
			en.child.Len = uint32(d.Uvarint())
			n.entries = append(n.entries, en)
		}
	}
	if d.Err() != nil {
		return nil, fmt.Errorf("core: node %s: %w", addr, d.Err())
	}
	return n, nil
}

// readNode loads the node at addr from the appropriate device.
func (t *Tree) readNode(addr storage.Addr) (*node, error) {
	switch addr.Kind {
	case storage.KindMagnetic:
		data, err := t.mag.Read(addr.Off)
		if err != nil {
			return nil, err
		}
		return decodeNode(data, addr)
	case storage.KindWORM:
		data, err := t.worm.ReadAt(addr)
		if err != nil {
			return nil, err
		}
		return decodeNode(data, addr)
	default:
		return nil, fmt.Errorf("core: read of nil address")
	}
}

// writeCurrent serializes a current node back to its magnetic page.
func (t *Tree) writeCurrent(n *node) error {
	if !n.addr.IsMagnetic() {
		return fmt.Errorf("core: writeCurrent of %s", n.addr)
	}
	if len(t.pending) > 0 {
		// Re-dirty check for the background migrator: any rewrite of a
		// queued leaf advances its write epoch, so a swap whose capture
		// predates the rewrite re-verifies instead of trusting the burn.
		if mk, ok := t.pending[n.addr.Off]; ok {
			mk.epoch++
		}
	}
	data := encodeNode(n)
	if len(data) > t.mag.PageSize() {
		return fmt.Errorf("core: node %s of %d bytes exceeds page size %d",
			n.addr, len(data), t.mag.PageSize())
	}
	return t.mag.Write(n.addr.Off, data)
}

// migrate appends a node to the historical database, consolidated into a
// variable-length WORM run, and returns its address (§3.4: node-at-a-time
// migration; the index pointer records address and length).
func (t *Tree) migrate(n *node) (storage.Addr, error) {
	for _, v := range n.versions {
		if v.IsPending() {
			return storage.NilAddr, fmt.Errorf("core: pending version cannot migrate (paper §4)")
		}
	}
	for _, e := range n.entries {
		if e.isCurrent() {
			return storage.NilAddr, fmt.Errorf("core: entry referencing current node cannot migrate (paper §3.5)")
		}
	}
	data := encodeNode(n)
	addr, err := t.worm.Append(data)
	if err != nil {
		return storage.NilAddr, err
	}
	t.stats.HistoricalNodes++
	t.stats.VersionsMigrated += uint64(len(n.versions))
	t.stats.BytesMigrated += uint64(len(data))
	return addr, nil
}

// size returns the encoded size of the node.
func (t *Tree) size(n *node) int { return len(encodeNode(n)) }

// sortVersions restores the canonical (key, time) order, pending last
// within each key.
func sortVersions(vs []record.Version) {
	sort.Slice(vs, func(i, j int) bool { return vs[i].Before(vs[j]) })
}

// sortEntries restores the canonical (LowKey, Start) order.
func sortEntries(es []entry) {
	sort.Slice(es, func(i, j int) bool {
		if c := es[i].rect.LowKey.Compare(es[j].rect.LowKey); c != 0 {
			return c < 0
		}
		return es[i].rect.Start < es[j].rect.Start
	})
}

// findCurrentEntry returns the position of the unique current entry whose
// key range contains k, or -1.
func findCurrentEntry(n *node, k record.Key) int {
	for i, e := range n.entries {
		if e.rect.IsCurrent() && e.rect.ContainsKey(k) {
			return i
		}
	}
	return -1
}

// findEntryAt returns the position of the unique entry containing the
// point (k, at), or -1.
func findEntryAt(n *node, k record.Key, at record.Timestamp) int {
	for i, e := range n.entries {
		if e.rect.Contains(k, at) {
			return i
		}
	}
	return -1
}

// latestAtOrBefore returns, among the node's versions of key k with
// committed time <= at, the one with the largest time.
func latestAtOrBefore(n *node, k record.Key, at record.Timestamp) (record.Version, bool) {
	var out record.Version
	ok := false
	for _, v := range n.versions {
		if !v.Key.Equal(k) || v.IsPending() || v.Time > at {
			continue
		}
		if !ok || v.Time > out.Time {
			out = v
			ok = true
		}
	}
	return out, ok
}
