package core

import (
	"fmt"

	"repro/internal/record"
)

// Insert adds a version to the tree. Committed versions must carry
// timestamps no earlier than any previously committed timestamp (rollback
// databases append in commit-time order). Pending versions (Time ==
// record.TimePending) must carry the writing transaction's id; a second
// pending write of the same key by the same transaction replaces the first.
//
// Nodes on the insertion path that are too full to absorb the incoming
// data — or the postings of a descendant's split — are split top-down
// before descent, so a split's postings always fit in the (erasable)
// parent.
//
//tsb:io -- a time split can burn the historical half inline
func (t *Tree) Insert(v record.Version) error {
	if err := t.validate(v); err != nil {
		return err
	}
	if v.Time.IsCommitted() && v.Time > t.now {
		t.now = v.Time
	}
	vSize := v.EncodedSize()

	// Make sure the root itself has room for the insertion or for the
	// postings of a child split.
	for {
		root, err := t.readNode(t.root)
		if err != nil {
			return err
		}
		var limit, need int
		if root.leaf {
			limit, need = t.cfg.LeafCapacity, vSize+4
		} else {
			limit, need = t.cfg.IndexCapacity, 3*t.entryCap
		}
		if t.size(root)+need <= limit {
			break
		}
		if root.leaf && t.deferSplits && t.deferSplit(root, false, v) {
			// Background migration: the root leaf is queued for a time
			// split; the insert lands in the logically-overfull leaf.
			break
		}
		if !root.leaf && t.deferSplits && t.deferIndexSplit(root, v) {
			// Background migration: the root index node is queued for a
			// local time split; the insert descends through it.
			break
		}
		if err := t.splitRoot(); err != nil {
			return err
		}
	}

	n, err := t.readNode(t.root)
	if err != nil {
		return err
	}
	for !n.leaf {
		idx := findCurrentEntry(n, v.Key)
		if idx < 0 {
			return fmt.Errorf("core: no current entry for key %s in node %s (invariant violation)", v.Key, n.addr)
		}
		child, err := t.readNode(n.entries[idx].child)
		if err != nil {
			return err
		}
		forced := child.leaf && t.marked[child.addr.Off] && hasCommitted(child)
		needSplit := forced
		if child.leaf {
			if t.size(child)+vSize+4 > t.cfg.LeafCapacity {
				needSplit = true
			}
		} else if t.size(child)+3*t.entryCap > t.cfg.IndexCapacity {
			needSplit = true
		}
		if needSplit && child.leaf && t.deferSplits && t.deferSplit(child, forced, v) {
			// Background migration: instead of time splitting here —
			// burning the historical half to the WORM while holding the
			// shard's write latch — the leaf is queued for the migrator
			// and the insert proceeds into the logically-overfull leaf.
			// Key splits (and any leaf out of physical page headroom)
			// still split inline.
			needSplit = false
		}
		if needSplit && !child.leaf && t.deferSplits && t.deferIndexSplit(child, v) {
			// Same deferral for an overfull index child whose planned
			// split is a pure local time split and whose subtree absorbs
			// this insert without splitting (see deferIndexSplit).
			needSplit = false
		}
		if needSplit {
			if err := t.splitChild(n, idx, forced); err != nil {
				return err
			}
			if idx = findCurrentEntry(n, v.Key); idx < 0 {
				return fmt.Errorf("core: lost current entry for key %s after split", v.Key)
			}
			if child, err = t.readNode(n.entries[idx].child); err != nil {
				return err
			}
		}
		n = child
	}

	if v.IsPending() {
		// Replace an earlier pending write of the same key by the
		// same transaction; reject a conflicting one (the lock layer
		// should have prevented it).
		for i, old := range n.versions {
			if old.IsPending() && old.Key.Equal(v.Key) {
				if old.TxnID != v.TxnID {
					return fmt.Errorf("core: key %s has a pending version of transaction %d", v.Key, old.TxnID)
				}
				n.versions[i] = v
				return t.writeCurrent(n)
			}
		}
	} else {
		// A key has at most one version per commit time: versions of
		// a key are strictly ordered in a rollback database.
		for _, old := range n.versions {
			if !old.IsPending() && old.Time == v.Time && old.Key.Equal(v.Key) {
				return fmt.Errorf("core: key %s already has a version at time %s", v.Key, v.Time)
			}
		}
	}
	n.versions = append(n.versions, v)
	sortVersions(n.versions)
	if err := t.writeCurrent(n); err != nil {
		return err
	}
	t.stats.Inserts++
	if v.Tombstone {
		t.stats.Deletes++
	}
	return nil
}

// hasCommitted reports whether the leaf holds at least one committed
// version (a node of only pending data cannot be split at all).
func hasCommitted(n *node) bool {
	for _, v := range n.versions {
		if !v.IsPending() {
			return true
		}
	}
	return false
}

// currentLeaf descends to the current leaf responsible for key k.
func (t *Tree) currentLeaf(k record.Key) (*node, error) {
	n, err := t.readNode(t.root)
	if err != nil {
		return nil, err
	}
	for !n.leaf {
		idx := findCurrentEntry(n, k)
		if idx < 0 {
			return nil, fmt.Errorf("core: no current entry for key %s in node %s", k, n.addr)
		}
		if n, err = t.readNode(n.entries[idx].child); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// CommitKey stamps the pending version of key k written by transaction
// txnID with its commit time. Records of uncommitted transactions have no
// timestamps; the commit time is posted when the transaction commits (§4).
func (t *Tree) CommitKey(k record.Key, txnID uint64, commitTime record.Timestamp) error {
	if !commitTime.IsCommitted() {
		return fmt.Errorf("core: invalid commit time %s", commitTime)
	}
	if commitTime < t.now {
		return fmt.Errorf("core: commit time %s before current time %s", commitTime, t.now)
	}
	n, err := t.currentLeaf(k)
	if err != nil {
		return err
	}
	for i, v := range n.versions {
		if v.IsPending() && v.Key.Equal(k) && v.TxnID == txnID {
			n.versions[i].Time = commitTime
			sortVersions(n.versions)
			if err := t.writeCurrent(n); err != nil {
				return err
			}
			t.now = commitTime
			t.stats.Restamps++
			return nil
		}
	}
	return fmt.Errorf("%w: key %s, transaction %d", ErrNoPending, k, txnID)
}

// AbortKey erases the pending version of key k written by transaction
// txnID. Erasing is possible precisely because uncommitted data is never
// migrated to the write-once historical database (§4).
func (t *Tree) AbortKey(k record.Key, txnID uint64) error {
	n, err := t.currentLeaf(k)
	if err != nil {
		return err
	}
	for i, v := range n.versions {
		if v.IsPending() && v.Key.Equal(k) && v.TxnID == txnID {
			n.versions = append(n.versions[:i], n.versions[i+1:]...)
			return t.writeCurrent(n)
		}
	}
	return fmt.Errorf("%w: key %s, transaction %d", ErrNoPending, k, txnID)
}
