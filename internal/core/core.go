// Package core implements the Time-Split B-tree of Lomet & Salzberg,
// "Access Methods for Multiversion Data" (SIGMOD 1989, §3) — the primary
// contribution of the paper.
//
// The TSB-tree is a single integrated index over a versioned, timestamped
// rollback database with a non-deletion policy. Current data lives in
// erasable nodes on a magnetic disk; historical data migrates
// incrementally, one node at a time, to consolidated variable-length nodes
// appended to a write-once device. Each node is responsible for a
// rectangle in key×time space; splits refine rectangles either by key
// (B+-tree style, in place, §3.1) or by a chosen split time (§3.3), in
// which case the older half is migrated. Index nodes obey the Index Node
// Keyspace Split Rule of §3.5, whose rule 4 duplicates references to
// historical nodes, making the structure a DAG in which only historical
// nodes have more than one parent.
//
// Uncommitted versions carry no timestamp; they are never written to the
// historical database during a time split and can always be erased (§4).
package core

import (
	"errors"
	"fmt"

	"repro/internal/record"
	"repro/internal/storage"
)

// ErrNoPending is returned by AbortKey when the transaction has no
// pending version of the key: already erased, or never inserted.
var ErrNoPending = errors.New("core: no pending version")

// SplitTimeChoice selects the time value used for a data-node time split.
// The WOBT is forced to split at the current time; the TSB-tree may choose
// "any convenient time more recent than the last time split for the node"
// (§3.3), trading redundancy against current-node content.
type SplitTimeChoice int

const (
	// SplitAtNow splits at the current time, as the WOBT must. Every
	// version alive now is copied into the current node; all versions
	// are migrated.
	SplitAtNow SplitTimeChoice = iota
	// SplitAtLastUpdate splits at the time of the last update of
	// existing data, so insertions that happened after the last update
	// are not carried into the historical node (§3.3).
	SplitAtLastUpdate
	// SplitAtMedian splits at the median committed timestamp in the
	// node, pushing roughly half the versions out while keeping
	// redundancy moderate.
	SplitAtMedian
)

// String names the choice.
func (c SplitTimeChoice) String() string {
	switch c {
	case SplitAtNow:
		return "now"
	case SplitAtLastUpdate:
		return "last-update"
	case SplitAtMedian:
		return "median"
	default:
		return fmt.Sprintf("SplitTimeChoice(%d)", int(c))
	}
}

// Policy parameterizes the splitting decisions of §3.2: whether an
// overflowing node splits by time or by key space, and at which time value.
// The paper frames the choice as minimizing CS = SpaceM·CM + SpaceO·CO:
// more time splits lower magnetic-disk use; more key splits lower total
// space and redundancy.
type Policy struct {
	// KeySplitFraction is the threshold on the fraction of a data
	// node's contents that is current: above it the node key splits,
	// at or below it the node time splits. 0 prefers key splits
	// whenever legal (minimum total space); 1 prefers time splits
	// whenever useful (minimum magnetic space). The boundary conditions
	// of §3.2 always apply: a node whose versions are all current must
	// key split, and a node with a single distinct key must time split.
	KeySplitFraction float64
	// SplitTime selects the time value for data-node time splits.
	SplitTime SplitTimeChoice
	// IndexKeySplitFraction plays the role of KeySplitFraction for
	// index nodes: the fraction of entries referencing current nodes
	// above which the node splits by key space rather than by time.
	IndexKeySplitFraction float64
}

// Named policies used throughout the experiments.
var (
	// PolicyWOBTLike mimics the WOBT within the TSB structure: time
	// splits at the current time with a balanced threshold.
	PolicyWOBTLike = Policy{KeySplitFraction: 0.5, SplitTime: SplitAtNow, IndexKeySplitFraction: 0.5}
	// PolicyLastUpdate is the paper's recommended refinement: time
	// splits at the last update time.
	PolicyLastUpdate = Policy{KeySplitFraction: 0.5, SplitTime: SplitAtLastUpdate, IndexKeySplitFraction: 0.5}
	// PolicyKeyPref minimizes total space: key split whenever legal.
	PolicyKeyPref = Policy{KeySplitFraction: 0.0, SplitTime: SplitAtLastUpdate, IndexKeySplitFraction: 0.0}
	// PolicyTimePref minimizes current (magnetic) space: time split
	// whenever useful.
	PolicyTimePref = Policy{KeySplitFraction: 1.0, SplitTime: SplitAtNow, IndexKeySplitFraction: 1.0}
)

// Config configures a TSB-tree.
type Config struct {
	// Policy holds the splitting decisions. The zero value is
	// PolicyWOBTLike.
	Policy Policy
	// MaxKeySize bounds key length so index entries have a known
	// maximum encoded size (default 64 bytes).
	MaxKeySize int
	// MaxValueSize bounds record values (default LeafCapacity/8).
	MaxValueSize int
	// LeafCapacity is the logical size, in encoded bytes, at which a
	// data node splits. Defaults to the magnetic page size; tests and
	// figure reproductions set it small to model the paper's
	// four-record nodes. Never exceeds the page size.
	LeafCapacity int
	// IndexCapacity is the logical size at which an index node splits.
	// Defaults to the magnetic page size.
	IndexCapacity int
}

func (c *Config) withDefaults(pageSize int) Config {
	out := *c
	if out.MaxKeySize == 0 {
		out.MaxKeySize = 64
	}
	if out.LeafCapacity == 0 || out.LeafCapacity > pageSize {
		out.LeafCapacity = pageSize
	}
	if out.IndexCapacity == 0 || out.IndexCapacity > pageSize {
		out.IndexCapacity = pageSize
	}
	if out.MaxValueSize == 0 {
		out.MaxValueSize = out.LeafCapacity / 8
	}
	zero := Policy{}
	if out.Policy == zero {
		out.Policy = PolicyWOBTLike
	}
	return out
}

// Stats counts the structural events of a TSB-tree's life. The redundancy
// counters are the measures the paper's evaluation plan names in §5.
type Stats struct {
	Inserts  uint64
	Commits  uint64
	Aborts   uint64
	Deletes  uint64 // tombstone insertions (counted within Inserts too)
	Restamps uint64 // pending versions stamped at commit

	LeafTimeSplits    uint64
	LeafKeySplits     uint64
	LeafTimeKeySplits uint64 // time split immediately followed by key split
	IndexTimeSplits   uint64 // local index time splits (§3.5, Figure 8)
	IndexKeySplits    uint64
	RootSplits        uint64
	ForcedTimeSplits  uint64 // splits of leaves marked per §3.5's optimization
	MarkedLeaves      uint64 // leaves marked "time split at next opportunity" (Figure 9)

	// RedundantVersions counts versions copied into the current node by
	// clause 3 of the Time-Split Rule: records that persist through the
	// split time exist in both the historical and the current node.
	RedundantVersions uint64
	// RedundantIndexEntries counts index entries duplicated by rule 4 of
	// the Index Node Keyspace Split Rule or clipped into both halves of
	// a local index time split; all of them reference historical nodes.
	RedundantIndexEntries uint64

	VersionsMigrated uint64 // versions written to the historical database
	BytesMigrated    uint64
	HistoricalNodes  uint64 // nodes appended to the WORM
	CurrentNodes     uint64 // live magnetic nodes (leaf + index)
	Height           int
}

// Merge returns the element-wise sum of two Stats snapshots (Height is
// the maximum): the aggregate view over the trees of a sharded engine.
func (s Stats) Merge(o Stats) Stats {
	out := s
	out.Inserts += o.Inserts
	out.Commits += o.Commits
	out.Aborts += o.Aborts
	out.Deletes += o.Deletes
	out.Restamps += o.Restamps
	out.LeafTimeSplits += o.LeafTimeSplits
	out.LeafKeySplits += o.LeafKeySplits
	out.LeafTimeKeySplits += o.LeafTimeKeySplits
	out.IndexTimeSplits += o.IndexTimeSplits
	out.IndexKeySplits += o.IndexKeySplits
	out.RootSplits += o.RootSplits
	out.ForcedTimeSplits += o.ForcedTimeSplits
	out.MarkedLeaves += o.MarkedLeaves
	out.RedundantVersions += o.RedundantVersions
	out.RedundantIndexEntries += o.RedundantIndexEntries
	out.VersionsMigrated += o.VersionsMigrated
	out.BytesMigrated += o.BytesMigrated
	out.HistoricalNodes += o.HistoricalNodes
	out.CurrentNodes += o.CurrentNodes
	if o.Height > out.Height {
		out.Height = o.Height
	}
	return out
}

// Tree is a Time-Split B-tree. Current nodes live on a magnetic
// storage.PageStore; historical nodes are appended to a WORM device.
// It is not safe for concurrent use; the transaction layer serializes
// access (read-only transactions read versioned data without locks, but
// the tree structure itself is protected above this package).
type Tree struct {
	mag    storage.PageStore
	worm   storage.WORMDevice
	cfg    Config
	policy Policy

	root     storage.Addr
	now      record.Timestamp
	stats    Stats
	marked   map[uint64]bool // magnetic leaf pages marked for forced time split
	entryCap int             // conservative bound on one encoded index entry

	// Background-migration state (see migrate.go). deferSplits switches
	// Insert from splitting time-split leaves inline to queueing them;
	// pending maps a queued leaf page to its chosen split time and write
	// epoch; newTickets buffers tickets for the owner to drain after each
	// Insert; directed routes splitNode to a pre-burned historical node
	// during ApplySplit. None of this state is part of TreeImage: marks
	// are advisory and are simply re-created by future inserts.
	deferSplits bool
	pending     map[uint64]*pendingMark
	newTickets  []PendingSplit
	directed    *directedSplit
	// migFallbacks counts queued leaves that were split inline after all
	// (no physical headroom left); splitNanos accumulates time spent in
	// splitChild/splitRoot — work performed under the shard write latch.
	// Both live outside Stats so images stay byte-identical across
	// migration modes.
	migFallbacks uint64
	splitNanos   uint64
	// pendingLimit bounds the background-migration queue: once this many
	// nodes are marked, further overflows split inline (backpressure)
	// until the migrator drains — well before the physical-page fallback
	// would fire.
	pendingLimit int
}

// defaultPendingSplitLimit is the per-tree backpressure bound on queued
// background time splits.
const defaultPendingSplitLimit = 32

// New creates an empty TSB-tree with a single empty leaf as root.
func New(mag storage.PageStore, worm storage.WORMDevice, cfg Config) (*Tree, error) {
	c := cfg.withDefaults(mag.PageSize())
	t := &Tree{
		mag:          mag,
		worm:         worm,
		cfg:          c,
		policy:       c.Policy,
		marked:       make(map[uint64]bool),
		pending:      make(map[uint64]*pendingMark),
		pendingLimit: defaultPendingSplitLimit,
	}
	// Bound on an encoded index entry: rect (two keys + bounds + two
	// times) + child address + framing.
	t.entryCap = 2*c.MaxKeySize + 64
	if t.entryCap*4 > c.IndexCapacity {
		return nil, fmt.Errorf("core: index capacity %d too small for MaxKeySize %d",
			c.IndexCapacity, c.MaxKeySize)
	}
	rootNode := &node{
		rect: record.WholeSpace(),
		leaf: true,
	}
	page, err := mag.Alloc()
	if err != nil {
		return nil, err
	}
	rootNode.addr = storage.Addr{Kind: storage.KindMagnetic, Off: page}
	if err := t.writeCurrent(rootNode); err != nil {
		return nil, err
	}
	t.root = rootNode.addr
	t.stats.CurrentNodes = 1
	t.stats.Height = 1
	return t, nil
}

// Root returns the address of the root node.
func (t *Tree) Root() storage.Addr { return t.root }

// Now returns the largest committed timestamp the tree has seen.
func (t *Tree) Now() record.Timestamp { return t.now }

// Stats returns a snapshot of the structural counters.
func (t *Tree) Stats() Stats { return t.stats }

// Policy returns the tree's splitting policy.
func (t *Tree) Policy() Policy { return t.policy }

// MarkedLeafCount returns how many leaves are currently marked for a
// forced time split at their next opportunity (§3.5's optimization).
func (t *Tree) MarkedLeafCount() int { return len(t.marked) }

func (t *Tree) validate(v record.Version) error {
	if len(v.Key) == 0 {
		return fmt.Errorf("core: empty key")
	}
	if len(v.Key) > t.cfg.MaxKeySize {
		return fmt.Errorf("core: key of %d bytes exceeds MaxKeySize %d", len(v.Key), t.cfg.MaxKeySize)
	}
	if len(v.Value) > t.cfg.MaxValueSize {
		return fmt.Errorf("core: value of %d bytes exceeds MaxValueSize %d", len(v.Value), t.cfg.MaxValueSize)
	}
	switch {
	case v.Time == record.TimePending:
		if v.TxnID == 0 {
			return fmt.Errorf("core: pending version without transaction id")
		}
	case v.Time.IsCommitted():
		if v.Time < t.now {
			return fmt.Errorf("core: timestamp %s before current time %s (rollback databases append in commit order)", v.Time, t.now)
		}
	default:
		return fmt.Errorf("core: invalid timestamp %s", v.Time)
	}
	return nil
}
