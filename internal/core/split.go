package core

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"repro/internal/record"
	"repro/internal/storage"
)

// splitNode splits node n (which overflowed, or is a leaf forced to time
// split) and returns the entries that replace its single parent entry.
// Current halves are rewritten in place on magnetic pages; older halves are
// migrated to the WORM. forced requests a time split per §3.5's "marked to
// be time split at the next opportunity" optimization.
func (t *Tree) splitNode(n *node, forced bool) ([]entry, error) {
	delete(t.marked, n.addr.Off)
	if d := t.directed; d != nil && !d.done && n.addr.Off == d.page {
		// Background migrator swap: the historical half was already
		// burned off-latch; install it instead of migrating inline.
		d.done = true
		delete(t.pending, n.addr.Off)
		burned := &burnedNode{addr: d.addr, data: d.data, trusted: d.trusted}
		if n.leaf {
			if d.forced {
				t.stats.ForcedTimeSplits++
			}
			return t.timeSplitLeafWith(n, d.T, burned)
		}
		return t.timeSplitIndexWith(n, d.T, burned)
	}
	if _, queued := t.pending[n.addr.Off]; queued {
		// The node was queued for a background time split but is being
		// split inline after all (no physical headroom left, or an
		// explicit forced split): the queued ticket is now stale.
		delete(t.pending, n.addr.Off)
		t.migFallbacks++
	}
	if n.leaf {
		return t.splitLeaf(n, forced)
	}
	return t.splitIndex(n)
}

// --- Data node splitting (§3.1-§3.3) ---

// currentVersionStats summarizes a leaf for the split decision: how many of
// its versions are current (the latest of their key, including pending) and
// whether any update (superseded version) exists.
func currentVersionStats(n *node) (current, total int, distinctKeys int, hasUpdates bool) {
	latest := make(map[string]int) // key -> index of latest version
	for i, v := range n.versions {
		if j, ok := latest[string(v.Key)]; ok {
			hasUpdates = true
			if n.versions[j].Before(v) {
				latest[string(v.Key)] = i
			}
		} else {
			latest[string(v.Key)] = i
		}
	}
	return len(latest), len(n.versions), len(latest), hasUpdates
}

// chooseSplitTime returns the time value for a time split of leaf n under
// the tree's policy, and whether a legal, useful time exists: it must be
// strictly inside the node's time interval and leave a non-empty
// historical half.
func (t *Tree) chooseSplitTime(n *node) (record.Timestamp, bool) {
	var times []record.Timestamp // committed version times, sorted
	lastUpdate := record.TimeZero
	first := make(map[string]record.Timestamp)
	for _, v := range n.versions {
		if v.IsPending() {
			continue
		}
		times = append(times, v.Time)
		if ft, ok := first[string(v.Key)]; !ok || v.Time < ft {
			first[string(v.Key)] = v.Time
		}
	}
	for _, v := range n.versions {
		if v.IsPending() {
			continue
		}
		if v.Time > first[string(v.Key)] && v.Time > lastUpdate {
			lastUpdate = v.Time // an update: not the first version of its key
		}
	}
	if len(times) == 0 {
		return 0, false
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })

	legal := func(T record.Timestamp) bool {
		if T <= n.rect.Start || T > t.now {
			return false
		}
		return times[0] < T // historical half must be non-empty
	}
	var T record.Timestamp
	switch t.policy.SplitTime {
	case SplitAtLastUpdate:
		T = lastUpdate
	case SplitAtMedian:
		T = times[len(times)/2]
	default:
		T = t.now
	}
	if legal(T) {
		return T, true
	}
	// Fall back to the current time, the WOBT's only option.
	if legal(t.now) {
		return t.now, true
	}
	return 0, false
}

// plannedTimeSplit applies the decision criteria of §3.2 and reports
// whether splitting leaf n would be a time split (timeSplit, with its
// time T) or a key split (canKey — meaningful only when timeSplit is
// false). It is the pure decision half of splitLeaf, shared with the
// background-migration deferral check, which must predict exactly what
// the inline path would do.
func (t *Tree) plannedTimeSplit(n *node, forced bool) (T record.Timestamp, timeSplit, canKey bool) {
	current, total, distinctKeys, hasUpdates := currentVersionStats(n)
	T, canTime := t.chooseSplitTime(n)
	canKey = distinctKeys >= 2

	wantTime := forced
	if !forced {
		frac := float64(current) / float64(total)
		wantTime = frac <= t.policy.KeySplitFraction
		if !hasUpdates {
			// Insert-only node: "time splitting by itself is
			// useless. Key space splitting must be done" (§3.2).
			// A forced split is the exception: the node was marked
			// so that migrating it unblocks an index time split.
			wantTime = false
		}
	}

	switch {
	case wantTime && canTime:
		return T, true, canKey
	case canKey:
		return 0, false, true
	case canTime:
		return T, true, false
	default:
		return 0, false, false
	}
}

// splitLeaf implements the data-node split of §3.1-§3.3 and the decision
// criteria of §3.2: a node of all-current versions must key split, a node
// with one distinct key must time split, and in between the policy's
// threshold on the current fraction decides.
func (t *Tree) splitLeaf(n *node, forced bool) ([]entry, error) {
	T, timeSplit, canKey := t.plannedTimeSplit(n, forced)
	switch {
	case timeSplit:
		if forced {
			// plannedTimeSplit plans a forced split as a time split
			// only on the wantTime && canTime branch, so this count
			// matches the pre-refactor decision table exactly.
			t.stats.ForcedTimeSplits++
		}
		return t.timeSplitLeaf(n, T)
	case canKey:
		return t.keySplitLeaf(n)
	default:
		return nil, fmt.Errorf("core: leaf %s cannot be split (single key, no committed history)", n.addr)
	}
}

// partitionVersions applies the Time-Split Rule of §3.1 at time T to a
// leaf's versions, returning the historical half, the current half
// (including the rule-3 redundant copies), and the redundant-copy count.
// Both halves come back in canonical sorted order, so the encoding of the
// historical node is a deterministic function of (versions, T) — which is
// what lets the background migrator burn the historical half off-latch and
// later verify, byte for byte, that the burn still matches the node.
func partitionVersions(versions []record.Version, T record.Timestamp) (hist, cur []record.Version, redundant int) {
	aliveAt := make(map[string]record.Version)
	hasAtT := make(map[string]bool)
	for _, v := range versions {
		switch {
		case v.IsPending():
			cur = append(cur, v)
		case v.Time < T:
			hist = append(hist, v)
			if prev, ok := aliveAt[string(v.Key)]; !ok || v.Time > prev.Time {
				aliveAt[string(v.Key)] = v
			}
		default:
			cur = append(cur, v)
			if v.Time == T {
				hasAtT[string(v.Key)] = true
			}
		}
	}
	for k, v := range aliveAt {
		// The version valid at T — the one with "the largest time
		// smaller than or equal to T" — must be in the new node
		// (rule 3). If the key has a version at exactly T, rule 2
		// already placed it there. Tombstones are not carried: the
		// key is simply absent from the current node.
		if hasAtT[k] || v.Tombstone {
			continue
		}
		cur = append(cur, v)
		redundant++
	}
	sortVersions(hist)
	sortVersions(cur)
	return hist, cur, redundant
}

// burnedNode is a historical node the background migrator already appended
// to the WORM, handed to the split path in place of an inline migration.
// trusted skips the byte re-verification: the leaf's write epoch has not
// moved since the capture, so its bytes are exactly what was captured.
type burnedNode struct {
	addr    storage.Addr
	data    []byte // exact encoded bytes that were burned
	trusted bool
}

// errBurnMismatch reports a directed split whose pre-burned historical
// node no longer matches the leaf's historical half. The ordinary write
// paths cannot cause this (they only touch the current half), so
// ApplySplit treats it as a stale capture and abandons the burn.
var errBurnMismatch = fmt.Errorf("core: pre-burned historical node does not match leaf")

// timeSplitLeaf applies the Time-Split Rule of §3.1 at time T:
//
//  1. all entries with time less than T go in the old (historical) node;
//  2. all entries with time greater or equal to T go in the new node;
//  3. for each key, the version valid at the split time must be in the
//     new node — forcing redundancy for records persisting across T.
//
// Pending versions carry no timestamp and always stay current (§4).
// If the surviving current node would still overflow, it is immediately
// key split as well (the WOBT's "split by key value and current time").
func (t *Tree) timeSplitLeaf(n *node, T record.Timestamp) ([]entry, error) {
	return t.timeSplitLeafWith(n, T, nil)
}

// timeSplitLeafWith is timeSplitLeaf with an optional pre-burned
// historical node: nil migrates inline (holding whatever latch the caller
// holds for the duration of the WORM append); non-nil installs the
// already-burned node after verifying it still encodes exactly the leaf's
// historical half.
func (t *Tree) timeSplitLeafWith(n *node, T record.Timestamp, burned *burnedNode) ([]entry, error) {
	histRect, curRect := n.rect.SplitAtTime(T)
	hist, cur, redundant := partitionVersions(n.versions, T)
	if len(hist) == 0 {
		return nil, fmt.Errorf("core: time split of %s at %s leaves empty historical node", n.addr, T)
	}

	histNode := &node{rect: histRect, leaf: true, versions: hist}
	var histAddr storage.Addr
	if burned != nil {
		// The epoch/re-dirty check: a leaf rewritten since its capture
		// re-verifies, byte for byte, that the burn still encodes its
		// historical half (concurrent inserts and commit stamps land in
		// the current half only, so a live mark implies a match).
		if !burned.trusted && !bytes.Equal(encodeNode(histNode), burned.data) {
			return nil, errBurnMismatch
		}
		histAddr = burned.addr
		// The burn itself happened off-latch; account for it now, under
		// the latch, exactly as migrate would have.
		t.stats.HistoricalNodes++
		t.stats.VersionsMigrated += uint64(len(hist))
		t.stats.BytesMigrated += uint64(len(burned.data))
	} else {
		var err error
		histAddr, err = t.migrate(histNode)
		if err != nil {
			return nil, err
		}
	}
	t.stats.LeafTimeSplits++
	t.stats.RedundantVersions += uint64(redundant)

	n.rect = curRect
	n.versions = cur
	entries := []entry{{rect: histRect, child: histAddr}}

	// If redundancy kept the current node overfull, key split it too.
	if t.size(n)+t.versionSlack() > t.cfg.LeafCapacity {
		if _, _, dk, _ := currentVersionStats(n); dk >= 2 {
			more, err := t.keySplitLeaf(n)
			if err != nil {
				return nil, err
			}
			t.stats.LeafKeySplits-- // count the combination once
			t.stats.LeafTimeKeySplits++
			return append(entries, more...), nil
		}
	}
	if err := t.writeCurrent(n); err != nil {
		return nil, err
	}
	return append(entries, entry{rect: curRect, child: n.addr}), nil
}

// keySplitLeaf performs the B+-tree-style key split of §3.1: the records
// with keys below the split value stay in the old (rewritten) node, the
// rest move to one new node. The new index entry inherits the node's time
// interval — "the timestamp in the new index entry is the same as the
// timestamp of the previous index entry referring to the old data node"
// (Figure 5).
func (t *Tree) keySplitLeaf(n *node) ([]entry, error) {
	s, ok := byteBalancedKeySplit(n)
	if !ok {
		return nil, fmt.Errorf("core: leaf %s has a single distinct key, cannot key split", n.addr)
	}
	leftRect, rightRect := n.rect.SplitAtKey(s)
	var left, right []record.Version
	for _, v := range n.versions {
		if v.Key.Compare(s) < 0 {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	page, err := t.mag.Alloc()
	if err != nil {
		return nil, err
	}
	rightNode := &node{
		addr:     storage.Addr{Kind: storage.KindMagnetic, Off: page},
		rect:     rightRect,
		leaf:     true,
		versions: right,
	}
	n.rect = leftRect
	n.versions = left
	t.stats.LeafKeySplits++
	t.stats.CurrentNodes++

	out := []entry{{rect: leftRect, child: n.addr}, {rect: rightRect, child: rightNode.addr}}
	// Pathological value sizes can leave a half overfull; split further.
	finished := make([]entry, 0, 2)
	for _, en := range out {
		nd := n
		if en.child == rightNode.addr {
			nd = rightNode
		}
		if t.size(nd)+t.versionSlack() > t.cfg.LeafCapacity {
			if _, _, dk, _ := currentVersionStats(nd); dk >= 2 {
				more, err := t.keySplitLeaf(nd)
				if err != nil {
					return nil, err
				}
				finished = append(finished, more...)
				continue
			}
		}
		if err := t.writeCurrent(nd); err != nil {
			return nil, err
		}
		finished = append(finished, en)
	}
	return finished, nil
}

// byteBalancedKeySplit picks the split key that best balances the encoded
// bytes of the two halves. It returns false when the node holds a single
// distinct key.
func byteBalancedKeySplit(n *node) (record.Key, bool) {
	type group struct {
		key   record.Key
		bytes int
	}
	var groups []group
	for _, v := range n.versions {
		if len(groups) > 0 && groups[len(groups)-1].key.Equal(v.Key) {
			groups[len(groups)-1].bytes += v.EncodedSize()
			continue
		}
		groups = append(groups, group{key: v.Key, bytes: v.EncodedSize()})
	}
	if len(groups) < 2 {
		return nil, false
	}
	total := 0
	for _, g := range groups {
		total += g.bytes
	}
	best, bestDiff, acc := 1, total, 0
	for i := 0; i < len(groups)-1; i++ {
		acc += groups[i].bytes
		diff := acc - (total - acc)
		if diff < 0 {
			diff = -diff
		}
		if diff < bestDiff {
			bestDiff = diff
			best = i + 1
		}
	}
	return groups[best].key.Clone(), true
}

// versionSlack bounds the encoded size of any single version, so split
// results are guaranteed to absorb the insertion that triggered the split.
func (t *Tree) versionSlack() int {
	return t.cfg.MaxKeySize + t.cfg.MaxValueSize + 12
}

// --- Index node splitting (§3.5) ---

// splitIndex splits an overflowing index node, preferring a local time
// split or a keyspace split according to the policy and to what is legal.
func (t *Tree) splitIndex(n *node) ([]entry, error) {
	magCount := 0
	var minMagStart record.Timestamp = record.TimeInfinity
	for _, e := range n.entries {
		if e.isCurrent() {
			magCount++
			if e.rect.Start < minMagStart {
				minMagStart = e.rect.Start
			}
		}
	}
	// A local time split needs a time before which no reference to the
	// current database exists (§3.5); entries wholly before it migrate.
	canTime := minMagStart > n.rect.Start && anyEntryBefore(n, minMagStart)
	canKey := magCount >= 2

	wantTime := float64(magCount)/float64(len(n.entries)) <= t.policy.IndexKeySplitFraction

	switch {
	case wantTime && canTime:
		return t.timeSplitIndex(n, minMagStart)
	case canKey:
		if wantTime && !canTime {
			// Figure 9: a current child created at the node's own
			// start time blocks the time split. Mark such leaves
			// to be time split at the next opportunity (§3.5).
			t.markBlockingChildren(n)
		}
		return t.keySplitIndex(n)
	case canTime:
		return t.timeSplitIndex(n, minMagStart)
	default:
		return nil, fmt.Errorf("core: index node %s cannot be split", n.addr)
	}
}

func anyEntryBefore(n *node, T record.Timestamp) bool {
	for _, e := range n.entries {
		if e.rect.Start < T {
			return true
		}
	}
	return false
}

// markBlockingChildren marks the magnetic leaf children whose entries start
// at the node's own start time — the nodes preventing a local index time
// split in Figure 9.
func (t *Tree) markBlockingChildren(n *node) {
	for _, e := range n.entries {
		if !e.isCurrent() || e.rect.Start != n.rect.Start {
			continue
		}
		child, err := t.readNode(e.child)
		if err != nil || !child.leaf {
			continue
		}
		if !t.marked[e.child.Off] {
			t.marked[e.child.Off] = true
			t.stats.MarkedLeaves++
		}
	}
}

// partitionEntries applies the local index time split of §3.5 (Figure 8)
// at time T to an index node's entries: everything before T goes in the
// historical half (clipped at T), everything after T in the current half,
// and entries spanning T are clipped into both (the redundant count).
// Both halves preserve the input order, so the encoding of the historical
// node is a deterministic function of (entries, T) — which is what lets
// the background migrator burn the historical half off-latch and later
// verify, byte for byte, that the burn still matches the node.
func partitionEntries(entries []entry, T record.Timestamp) (hist, cur []entry, redundant int) {
	for _, e := range entries {
		spansT := e.rect.Start < T && e.rect.End > T
		if e.rect.Start < T {
			he := e
			if he.rect.End > T {
				he.rect.End = T
			}
			hist = append(hist, he)
		}
		if e.rect.End > T {
			ce := e
			if ce.rect.Start < T {
				ce.rect.Start = T
			}
			cur = append(cur, ce)
		}
		if spansT {
			redundant++
		}
	}
	return hist, cur, redundant
}

// timeSplitIndex performs the local index time split of §3.5 (Figure 8):
// everything before T — all of it referencing historical nodes — migrates
// into one historical index node; entries spanning T are clipped into both
// halves (the redundant index entries all point to historical nodes).
func (t *Tree) timeSplitIndex(n *node, T record.Timestamp) ([]entry, error) {
	return t.timeSplitIndexWith(n, T, nil)
}

// timeSplitIndexWith is timeSplitIndex with an optional pre-burned
// historical node: nil migrates inline (holding whatever latch the caller
// holds for the duration of the WORM append); non-nil installs the
// already-burned node after verifying it still encodes exactly the node's
// historical half.
func (t *Tree) timeSplitIndexWith(n *node, T record.Timestamp, burned *burnedNode) ([]entry, error) {
	histRect, curRect := n.rect.SplitAtTime(T)
	hist, cur, redundant := partitionEntries(n.entries, T)
	t.stats.RedundantIndexEntries += uint64(redundant)
	if len(hist) == 0 {
		return nil, fmt.Errorf("core: index time split of %s at %s is empty", n.addr, T)
	}
	histNode := &node{rect: histRect, leaf: false, entries: hist}
	var histAddr storage.Addr
	if burned != nil {
		// The epoch/re-dirty check, exactly as timeSplitLeafWith: a node
		// rewritten since its capture re-verifies the burn byte for byte.
		if !burned.trusted && !bytes.Equal(encodeNode(histNode), burned.data) {
			return nil, errBurnMismatch
		}
		histAddr = burned.addr
		// The burn itself happened off-latch; account for it now, under
		// the latch, exactly as migrate would have.
		t.stats.HistoricalNodes++
		t.stats.BytesMigrated += uint64(len(burned.data))
	} else {
		var err error
		histAddr, err = t.migrate(histNode)
		if err != nil {
			return nil, err
		}
	}
	t.stats.IndexTimeSplits++
	n.rect = curRect
	n.entries = cur
	sortEntries(n.entries)
	if err := t.writeCurrent(n); err != nil {
		return nil, err
	}
	return []entry{{rect: histRect, child: histAddr}, {rect: curRect, child: n.addr}}, nil
}

// keySplitIndex applies the Index Node Keyspace Split Rule of §3.5:
//
//  1. the split value is a key value actually used in an entry;
//  2. entries whose key range upper bound is <= the split value go left;
//  3. entries whose lower bound is >= the split value go right;
//  4. all others — guaranteed to reference the historical database — are
//     copied to both nodes (clipped to each side's rectangle).
func (t *Tree) keySplitIndex(n *node) ([]entry, error) {
	s, ok := indexSplitValue(n)
	if !ok {
		return nil, fmt.Errorf("core: index node %s has no usable keyspace split value", n.addr)
	}
	leftRect, rightRect := n.rect.SplitAtKey(s)
	var left, right []entry
	for _, e := range n.entries {
		switch {
		case e.rect.HighKey.CompareKey(s) <= 0:
			left = append(left, e)
		case e.rect.LowKey.Compare(s) >= 0:
			right = append(right, e)
		default:
			// Rule 4: the key range strictly contains s.
			if e.isCurrent() {
				return nil, fmt.Errorf("core: current entry %s spans index split value %s (violates §3.5 rule 4 guarantee)", e.rect, s)
			}
			le, re := e, e
			le.rect.HighKey = record.KeyBound(s.Clone())
			re.rect.LowKey = s.Clone()
			left = append(left, le)
			right = append(right, re)
			t.stats.RedundantIndexEntries++
		}
	}
	page, err := t.mag.Alloc()
	if err != nil {
		return nil, err
	}
	rightNode := &node{
		addr:    storage.Addr{Kind: storage.KindMagnetic, Off: page},
		rect:    rightRect,
		leaf:    false,
		entries: right,
	}
	sortEntries(rightNode.entries)
	n.rect = leftRect
	n.entries = left
	sortEntries(n.entries)
	if err := t.writeCurrent(n); err != nil {
		return nil, err
	}
	if err := t.writeCurrent(rightNode); err != nil {
		return nil, err
	}
	t.stats.IndexKeySplits++
	t.stats.CurrentNodes++
	return []entry{{rect: leftRect, child: n.addr}, {rect: rightRect, child: rightNode.addr}}, nil
}

// indexSplitValue picks the median boundary among the current children's
// low keys. Choosing a current-child boundary guarantees no current entry
// strictly contains the split value, since current entries tile the key
// space at the present time.
func indexSplitValue(n *node) (record.Key, bool) {
	var bounds []record.Key
	for _, e := range n.entries {
		if e.isCurrent() && e.rect.LowKey.Compare(n.rect.LowKey) > 0 {
			bounds = append(bounds, e.rect.LowKey)
		}
	}
	if len(bounds) == 0 {
		return nil, false
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i].Less(bounds[j]) })
	return bounds[len(bounds)/2].Clone(), true
}

// splitChild splits the child under parent.entries[idx] and patches the
// parent in place (the parent is guaranteed to be on the magnetic disk:
// "all parts of the index which refer to [the current database] must be on
// an erasable medium", §1). Split work always runs under the owning
// shard's write latch, so its duration is accumulated into splitNanos —
// the latch-hold measurement the background migrator exists to shrink.
func (t *Tree) splitChild(parent *node, idx int, forced bool) error {
	start := time.Now()
	defer func() { t.splitNanos += uint64(time.Since(start)) }()
	child, err := t.readNode(parent.entries[idx].child)
	if err != nil {
		return err
	}
	replacement, err := t.splitNode(child, forced)
	if err != nil {
		return err
	}
	es := make([]entry, 0, len(parent.entries)+len(replacement)-1)
	es = append(es, parent.entries[:idx]...)
	es = append(es, replacement...)
	es = append(es, parent.entries[idx+1:]...)
	parent.entries = es
	sortEntries(parent.entries)
	return t.writeCurrent(parent)
}

// splitRoot splits the root and grows the tree by one level: the new root
// is a fresh index node over the pieces.
func (t *Tree) splitRoot() error {
	start := time.Now()
	defer func() { t.splitNanos += uint64(time.Since(start)) }()
	root, err := t.readNode(t.root)
	if err != nil {
		return err
	}
	entries, err := t.splitNode(root, false)
	if err != nil {
		return err
	}
	page, err := t.mag.Alloc()
	if err != nil {
		return err
	}
	newRoot := &node{
		addr:    storage.Addr{Kind: storage.KindMagnetic, Off: page},
		rect:    record.WholeSpace(),
		leaf:    false,
		entries: entries,
	}
	sortEntries(newRoot.entries)
	if err := t.writeCurrent(newRoot); err != nil {
		return err
	}
	t.root = newRoot.addr
	t.stats.RootSplits++
	t.stats.CurrentNodes++
	t.stats.Height++
	return nil
}
