package core

import (
	"fmt"

	"repro/internal/record"
	"repro/internal/storage"
)

// CheckInvariants walks the whole tree and verifies the structural
// invariants of the TSB-tree. It is used by the property-based tests and
// by cmd/tsbdump. The invariants checked:
//
//  1. every node's rectangle is well formed and the root covers the whole
//     key×time space;
//  2. the entries of every index node exactly partition its rectangle
//     (redundant rule-4 copies are clipped, so the partition is exact);
//  3. an entry references a magnetic (current) node exactly when its time
//     interval is open-ended;
//  4. a current child's own rectangle equals its entry's rectangle, and a
//     historical child's rectangle contains its entry's (clipping only
//     shrinks what a parent claims of a shared historical node);
//  5. leaf versions lie inside the leaf's key range and time bound, and a
//     version older than the node's start is the version valid at the
//     start (a clause-3 copy of the Time-Split Rule);
//  6. pending versions appear only in current nodes (they can always be
//     erased, §4);
//  7. historical nodes contain no pending data and reference no current
//     nodes.
func (t *Tree) CheckInvariants() error {
	root, err := t.readNode(t.root)
	if err != nil {
		return err
	}
	if !root.rect.Equal(record.WholeSpace()) {
		return fmt.Errorf("root rect %s is not the whole space", root.rect)
	}
	visited := make(map[storage.Addr]bool)
	return t.checkNode(root, visited)
}

func (t *Tree) checkNode(n *node, visited map[storage.Addr]bool) error {
	if visited[n.addr] {
		return nil
	}
	visited[n.addr] = true
	if err := checkRect(n.rect); err != nil {
		return fmt.Errorf("node %s: %w", n.addr, err)
	}
	if n.addr.IsWORM() && n.rect.IsCurrent() {
		return fmt.Errorf("node %s: historical node with open time interval", n.addr)
	}
	if n.leaf {
		return t.checkLeaf(n)
	}
	return t.checkIndex(n, visited)
}

func checkRect(r record.Rect) error {
	if r.HighKey.CompareKey(r.LowKey) <= 0 {
		return fmt.Errorf("empty key range in rect %s", r)
	}
	if r.End <= r.Start {
		return fmt.Errorf("empty time interval in rect %s", r)
	}
	return nil
}

func (t *Tree) checkLeaf(n *node) error {
	// A version older than the node's start can only be a clause-3 copy
	// (the version valid at the split time). There can be at most one
	// per key: the largest version-time strictly below the start.
	belowStart := make(map[string]record.Timestamp)
	for i, v := range n.versions {
		if !n.rect.ContainsKey(v.Key) {
			return fmt.Errorf("leaf %s: version %s outside key range %s", n.addr, v, n.rect)
		}
		if v.IsPending() {
			if !n.rect.IsCurrent() {
				return fmt.Errorf("leaf %s: pending version %s in historical node", n.addr, v)
			}
			continue
		}
		if v.Time >= n.rect.End {
			return fmt.Errorf("leaf %s: version %s at or after rect end %s", n.addr, v, n.rect)
		}
		if v.Time < n.rect.Start {
			if prev, dup := belowStart[string(v.Key)]; dup {
				return fmt.Errorf("leaf %s: versions %s and %s of key %s both predate rect start %s (only the clause-3 copy may)",
					n.addr, prev, v.Time, v.Key, n.rect)
			}
			belowStart[string(v.Key)] = v.Time
		}
		if i > 0 && v.Before(n.versions[i-1]) {
			return fmt.Errorf("leaf %s: versions out of order at %d", n.addr, i)
		}
	}
	return nil
}

func (t *Tree) checkIndex(n *node, visited map[storage.Addr]bool) error {
	if len(n.entries) == 0 {
		return fmt.Errorf("index %s: no entries", n.addr)
	}
	for _, e := range n.entries {
		if err := checkRect(e.rect); err != nil {
			return fmt.Errorf("index %s entry: %w", n.addr, err)
		}
		if !rectContainsRect(n.rect, e.rect) {
			return fmt.Errorf("index %s: entry rect %s outside node rect %s", n.addr, e.rect, n.rect)
		}
		if e.isCurrent() != e.rect.IsCurrent() {
			return fmt.Errorf("index %s: entry %s -> %s mixes device and time openness", n.addr, e.rect, e.child)
		}
		if n.addr.IsWORM() && e.isCurrent() {
			return fmt.Errorf("index %s: historical node references current node %s (§3.5)", n.addr, e.child)
		}
	}
	if err := checkPartition(n); err != nil {
		return fmt.Errorf("index %s: %w", n.addr, err)
	}
	for _, e := range n.entries {
		child, err := t.readNode(e.child)
		if err != nil {
			return fmt.Errorf("index %s: reading child %s: %w", n.addr, e.child, err)
		}
		if e.isCurrent() {
			if !child.rect.Equal(e.rect) {
				return fmt.Errorf("index %s: current child %s rect %s != entry rect %s",
					n.addr, e.child, child.rect, e.rect)
			}
		} else if !rectContainsRect(child.rect, e.rect) {
			return fmt.Errorf("index %s: historical child %s rect %s does not contain entry rect %s",
				n.addr, e.child, child.rect, e.rect)
		}
		if err := t.checkNode(child, visited); err != nil {
			return err
		}
	}
	return nil
}

func rectContainsRect(outer, inner record.Rect) bool {
	if inner.LowKey.Compare(outer.LowKey) < 0 {
		return false
	}
	if outer.HighKey.Compare(inner.HighKey) < 0 {
		return false
	}
	return inner.Start >= outer.Start && inner.End <= outer.End
}

// checkPartition verifies that the entries exactly tile the node's
// rectangle: within every key slab delimited by entry key boundaries, the
// time intervals of the covering entries abut from the node's start to its
// end with no gap or overlap.
func checkPartition(n *node) error {
	// Gather key boundaries.
	type boundary struct {
		key record.Key
		inf bool
	}
	var bs []boundary
	add := func(k record.Key, inf bool) {
		for _, b := range bs {
			if b.inf == inf && (inf || b.key.Equal(k)) {
				return
			}
		}
		bs = append(bs, boundary{key: k, inf: inf})
	}
	add(n.rect.LowKey, false)
	if n.rect.HighKey.IsInfinite() {
		add(nil, true)
	} else {
		add(n.rect.HighKey.Key(), false)
	}
	for _, e := range n.entries {
		add(e.rect.LowKey, false)
		if e.rect.HighKey.IsInfinite() {
			add(nil, true)
		} else {
			add(e.rect.HighKey.Key(), false)
		}
	}
	// Sort: finite keys ascending, infinity last.
	for i := 0; i < len(bs); i++ {
		for j := i + 1; j < len(bs); j++ {
			bi, bj := bs[i], bs[j]
			swap := false
			switch {
			case bi.inf && !bj.inf:
				swap = true
			case !bi.inf && !bj.inf && bj.key.Less(bi.key):
				swap = true
			}
			if swap {
				bs[i], bs[j] = bs[j], bs[i]
			}
		}
	}
	// Check each slab [bs[i], bs[i+1]).
	for i := 0; i+1 < len(bs); i++ {
		lo := bs[i]
		if lo.inf {
			break
		}
		if lo.key.Compare(n.rect.LowKey) < 0 {
			continue
		}
		if !n.rect.ContainsKey(lo.key) {
			continue
		}
		var ivs []record.Rect
		for _, e := range n.entries {
			if e.rect.ContainsKey(lo.key) {
				ivs = append(ivs, e.rect)
			}
		}
		// Sort by start time.
		for a := 0; a < len(ivs); a++ {
			for b := a + 1; b < len(ivs); b++ {
				if ivs[b].Start < ivs[a].Start {
					ivs[a], ivs[b] = ivs[b], ivs[a]
				}
			}
		}
		if len(ivs) == 0 {
			return fmt.Errorf("key slab at %s uncovered", lo.key)
		}
		if ivs[0].Start != n.rect.Start {
			return fmt.Errorf("key slab at %s starts at %s, node starts at %s",
				lo.key, ivs[0].Start, n.rect.Start)
		}
		for a := 1; a < len(ivs); a++ {
			if ivs[a].Start != ivs[a-1].End {
				return fmt.Errorf("key slab at %s: gap or overlap between %s and %s",
					lo.key, ivs[a-1], ivs[a])
			}
		}
		if ivs[len(ivs)-1].End != n.rect.End {
			return fmt.Errorf("key slab at %s ends at %s, node ends at %s",
				lo.key, ivs[len(ivs)-1].End, n.rect.End)
		}
	}
	return nil
}
