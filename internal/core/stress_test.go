package core

// Edge-case and stress tests: degenerate workload shapes that push single
// mechanisms to their limits.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/record"
	"repro/internal/storage"
)

func TestSingleKeyForever(t *testing.T) {
	// One key updated thousands of times: key splits are impossible, so
	// the node must survive on chained time splits alone.
	tree, _, worm := newTestTree(t, PolicyWOBTLike)
	for i := 1; i <= 3000; i++ {
		put(t, tree, "only", uint64(i), fmt.Sprintf("v%d", i))
	}
	checkOK(t, tree)
	st := tree.Stats()
	if st.LeafKeySplits != 0 {
		t.Errorf("single-key workload key split %d times", st.LeafKeySplits)
	}
	if st.LeafTimeSplits == 0 || worm.Stats().SectorsBurned == 0 {
		t.Fatal("single-key workload must time split and migrate")
	}
	h, err := tree.History(record.StringKey("only"))
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 3000 {
		t.Fatalf("history = %d versions, want 3000", len(h))
	}
	for _, at := range []uint64{1, 500, 1500, 3000} {
		v, ok, err := tree.GetAsOf(record.StringKey("only"), record.Timestamp(at))
		if err != nil || !ok || string(v.Value) != fmt.Sprintf("v%d", at) {
			t.Fatalf("GetAsOf(%d) = %v %v %v", at, v, ok, err)
		}
	}
}

func TestSequentialRightEdgeInserts(t *testing.T) {
	// Monotonically increasing keys: growth concentrates on the right
	// edge, the classic B-tree hot path.
	tree, _, _ := newTestTree(t, PolicyLastUpdate)
	for i := 0; i < 2000; i++ {
		put(t, tree, fmt.Sprintf("key%06d", i), uint64(i+1), "x")
	}
	checkOK(t, tree)
	if tree.Stats().LeafTimeSplits != 0 {
		t.Error("insert-only right-edge growth must not time split")
	}
	for _, i := range []int{0, 999, 1999} {
		if _, ok, _ := tree.Get(record.StringKey(fmt.Sprintf("key%06d", i))); !ok {
			t.Fatalf("key%06d lost", i)
		}
	}
}

func TestDeleteReinsertCycles(t *testing.T) {
	tree, _, _ := newTestTree(t, PolicyWOBTLike)
	ts := uint64(0)
	for cycle := 0; cycle < 150; cycle++ {
		ts++
		put(t, tree, "flip", ts, fmt.Sprintf("alive%d", cycle))
		ts++
		del(t, tree, "flip", ts)
		// Interleave other keys to force splits.
		ts++
		put(t, tree, fmt.Sprintf("other%03d", cycle%20), ts, "x")
	}
	checkOK(t, tree)
	if _, ok, _ := tree.Get(record.StringKey("flip")); ok {
		t.Fatal("flip should be deleted")
	}
	h, _ := tree.History(record.StringKey("flip"))
	if len(h) != 300 {
		t.Fatalf("history = %d, want 300 (150 inserts + 150 tombstones)", len(h))
	}
	// As-of queries land correctly inside and outside alive intervals.
	for cycle := 0; cycle < 150; cycle += 37 {
		aliveAt := record.Timestamp(uint64(cycle)*3 + 1)
		deadAt := aliveAt + 1
		if _, ok, _ := tree.GetAsOf(record.StringKey("flip"), aliveAt); !ok {
			t.Fatalf("flip should be alive at %d", aliveAt)
		}
		if _, ok, _ := tree.GetAsOf(record.StringKey("flip"), deadAt); ok {
			t.Fatalf("flip should be dead at %d", deadAt)
		}
	}
}

func TestLargeTimestampGaps(t *testing.T) {
	// Commit times need not be dense; huge gaps must not disturb split
	// time selection.
	tree, _, _ := newTestTree(t, PolicyLastUpdate)
	ts := uint64(1)
	for i := 0; i < 300; i++ {
		put(t, tree, fmt.Sprintf("k%02d", i%12), ts, fmt.Sprintf("v%d", ts))
		ts += 1 << 40 // ~10^12 between commits
	}
	checkOK(t, tree)
	for i := 0; i < 12; i++ {
		if _, ok, _ := tree.Get(record.StringKey(fmt.Sprintf("k%02d", i))); !ok {
			t.Fatalf("k%02d lost", i)
		}
	}
}

func TestMaxSizeKeysAndValues(t *testing.T) {
	mag := storage.NewMagneticDisk(4096, storage.CostModel{})
	worm := storage.NewWORMDisk(storage.WORMConfig{SectorSize: 512})
	tree, err := New(mag, worm, Config{Policy: PolicyLastUpdate, MaxKeySize: 64, MaxValueSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	big := strings.Repeat("V", 256)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("%060d", i%25) // 60-byte keys
		err := tree.Insert(record.Version{
			Key:   record.StringKey(key),
			Time:  record.Timestamp(i + 1),
			Value: []byte(big),
		})
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := tree.Get(record.StringKey(fmt.Sprintf("%060d", 7)))
	if !ok || len(v.Value) != 256 {
		t.Fatalf("Get big = %v %v", len(v.Value), ok)
	}
}

func TestManyPendingTransactions(t *testing.T) {
	tree, _, _ := newTestTree(t, PolicyTimePref)
	// 40 transactions each holding a pending write on its own key, while
	// committed churn forces splits around them.
	for i := 0; i < 40; i++ {
		err := tree.Insert(record.Version{
			Key:   record.StringKey(fmt.Sprintf("pend%02d", i)),
			Time:  record.TimePending,
			TxnID: uint64(100 + i),
			Value: []byte("draft"),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 600; i++ {
		put(t, tree, fmt.Sprintf("churn%02d", i%15), uint64(i), fmt.Sprintf("v%d", i))
	}
	checkOK(t, tree)
	// Every pending write is still findable and resolvable.
	for i := 0; i < 40; i++ {
		k := record.StringKey(fmt.Sprintf("pend%02d", i))
		if _, ok, err := tree.GetPending(k, uint64(100+i)); !ok || err != nil {
			t.Fatalf("pending %d lost: %v %v", i, ok, err)
		}
		if i%2 == 0 {
			if err := tree.CommitKey(k, uint64(100+i), tree.Now()+1); err != nil {
				t.Fatalf("commit %d: %v", i, err)
			}
		} else if err := tree.AbortKey(k, uint64(100+i)); err != nil {
			t.Fatalf("abort %d: %v", i, err)
		}
	}
	checkOK(t, tree)
	for i := 0; i < 40; i++ {
		_, ok, _ := tree.Get(record.StringKey(fmt.Sprintf("pend%02d", i)))
		if ok != (i%2 == 0) {
			t.Fatalf("pend%02d visibility = %v after resolution", i, ok)
		}
	}
}

func TestDuplicateTimestampRejected(t *testing.T) {
	tree, _, _ := newTestTree(t, PolicyLastUpdate)
	put(t, tree, "k", 5, "a")
	err := tree.Insert(record.Version{Key: record.StringKey("k"), Time: 5, Value: []byte("b")})
	if err == nil {
		t.Fatal("second version of a key at the same commit time must be rejected")
	}
	// A different key at the same time is fine (same transaction).
	put(t, tree, "other", 5, "c")
}

func TestAdjacentKeysDifferingByOneByte(t *testing.T) {
	tree, _, _ := newTestTree(t, PolicyLastUpdate)
	ts := uint64(0)
	keys := []string{"a", "a\x00", "a\x01", "aa", "ab", "b"}
	for round := 0; round < 60; round++ {
		for _, k := range keys {
			ts++
			put(t, tree, k, ts, fmt.Sprintf("%s-%d", k, round))
		}
	}
	checkOK(t, tree)
	for _, k := range keys {
		v, ok, _ := tree.Get(record.StringKey(k))
		if !ok || !strings.HasPrefix(string(v.Value), k+"-") {
			t.Fatalf("Get(%q) = %q %v", k, v.Value, ok)
		}
	}
}
