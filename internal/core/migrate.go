package core

// Background time-split migration: the TSB-tree's key cost asymmetry is
// that a time split writes the historical half of a node to the (slow,
// write-once) WORM device, while a key split only rewrites magnetic
// pages. Inline, that WORM append runs on the inserting goroutine under
// the shard's write latch. This file lets the owner of the tree defer it:
//
//	mark    — Insert, instead of time splitting, records (page, T) in
//	          t.pending, appends a PendingSplit ticket, and lets the
//	          incoming version land in the (now logically overfull) leaf,
//	          as long as it still fits the physical page;
//	capture — CaptureSplit partitions the leaf at the recorded T and
//	          encodes the historical half (read latch only, no writes);
//	burn    — BurnCapture appends the encoded node to the WORM with NO
//	          tree latch held: the devices are safe for concurrent use,
//	          and a burned-but-unreferenced node is inert;
//	swap    — ApplySplit re-verifies the capture under the write latch
//	          (epoch fast path, byte comparison otherwise) and installs
//	          the split through the ordinary splitNode machinery, so the
//	          post-swap tree is byte-identical to what an inline split of
//	          the same leaf at the same T would have produced.
//
// Why the capture stays valid: the historical half at time T is the set
// of committed versions with time < T, and T was chosen <= the tree's
// clock at mark time. Committed timestamps only move forward (validate
// enforces v.Time >= t.now; CommitKey enforces commitTime >= t.now), and
// pending versions never partition into the historical half, so no
// concurrent Insert/CommitKey/AbortKey can ever add or remove a version
// with committed time < T. The only event that invalidates a capture is a
// competing split of the same leaf — which deletes the t.pending entry,
// making the staleness detectable. The byte comparison in ApplySplit (and
// again in timeSplitLeafWith) is the authoritative check; the epoch is
// only a fast path that skips re-encoding when the leaf was not rewritten
// at all.
//
// Latching contract (enforced by the caller, normally internal/db's
// per-shard migrator): CaptureSplit and the Pop/Take accessors under at
// least a read latch (Take* mutate and need the write latch), BurnCapture
// under no latch, ApplySplit under the write latch.

import (
	"errors"
	"fmt"

	"repro/internal/record"
	"repro/internal/storage"
)

// pendingMark is the tree-side state of one queued background time split.
type pendingMark struct {
	T      record.Timestamp // split time fixed when the leaf was marked
	forced bool             // the mark originated from §3.5's forced-split optimization
	epoch  uint64           // bumped by every writeCurrent of the leaf
}

// PendingSplit is the ticket handed to the background migrator: "leaf
// page Page wants a time split at T". Tickets are hints — the
// authoritative state is the tree's pending map, so a stale ticket
// (the leaf was split inline meanwhile) is detected and skipped at
// capture time without burning anything.
type PendingSplit struct {
	Page uint64
	T    record.Timestamp
}

// SplitCapture is the off-latch payload of one background migration: the
// encoded historical half of a marked leaf, ready to burn, plus what
// ApplySplit needs to verify the burn still matches the leaf.
type SplitCapture struct {
	page     uint64
	T        record.Timestamp
	forced   bool
	epoch    uint64
	lowKey   record.Key
	histData []byte
	histVers int
}

// HistBytes returns the encoded size of the captured historical node.
func (c *SplitCapture) HistBytes() int { return len(c.histData) }

// HistVersions returns how many versions the captured node holds.
func (c *SplitCapture) HistVersions() int { return c.histVers }

// directedSplit routes splitNode to a pre-burned historical node while
// ApplySplit descends to the marked leaf. trusted records that the
// leaf's write epoch matched the capture's, so the byte re-verification
// can be skipped.
type directedSplit struct {
	page    uint64
	T       record.Timestamp
	forced  bool
	addr    storage.Addr
	data    []byte
	trusted bool
	done    bool
}

// SetDeferTimeSplits switches Insert between splitting time-split leaves
// inline (false, the default) and queueing them for background migration
// (true). It must be called before concurrent use of the tree begins.
func (t *Tree) SetDeferTimeSplits(on bool) { t.deferSplits = on }

// TakeNewPendingSplits drains the tickets created since the last call.
// Call under the write latch, immediately after the Insert that may have
// created them.
func (t *Tree) TakeNewPendingSplits() []PendingSplit {
	ts := t.newTickets
	t.newTickets = nil
	return ts
}

// PendingSplitCount returns how many nodes are currently queued for a
// background time split.
func (t *Tree) PendingSplitCount() int { return len(t.pending) }

// SetPendingSplitLimit overrides the backpressure bound on the
// background-migration queue: once the queue holds this many nodes,
// further overflows split inline until the migrator drains. It must be
// called before concurrent use of the tree begins.
func (t *Tree) SetPendingSplitLimit(n int) {
	if n > 0 {
		t.pendingLimit = n
	}
}

// MigrationFallbacks returns how many queued leaves were split inline
// after all because they ran out of physical page headroom.
func (t *Tree) MigrationFallbacks() uint64 { return t.migFallbacks }

// SplitLatchNanos returns the cumulative time spent splitting nodes —
// work that always runs under the owning shard's write latch, whether the
// split was inline or a background swap. The background migrator's win is
// this number growing slower: the WORM append and the historical-node
// encoding no longer happen inside it.
func (t *Tree) SplitLatchNanos() uint64 { return t.splitNanos }

// deferSplit queues leaf child for a background time split instead of
// splitting it inline. It returns true when the incoming version v may
// proceed without any split: either the leaf is already queued, or the
// planned split is a time split — in both cases only as long as the
// incoming version still fits the physical page (logical overflow past
// LeafCapacity is the whole point of deferral; physical overflow forces
// the inline fallback).
//
// A committed insert landing exactly at the planned split time also
// splits inline: the Time-Split Rule's redundancy clause would see it
// as "already has a version at T" where the inline path (splitting
// before the insert) would not, and the deferred tree would diverge from
// the inline one. Through the transaction layer inserts are pending
// (untimestamped) and commit stamps land strictly after the shared
// clock, so this fallback only triggers for direct committed inserts at
// the SplitAtNow policy.
func (t *Tree) deferSplit(child *node, forced bool, v record.Version) bool {
	if t.size(child)+v.EncodedSize()+4 > t.mag.PageSize() {
		return false
	}
	if _, queued := t.pending[child.addr.Off]; queued {
		return true
	}
	if len(t.pending) >= t.pendingLimit {
		return false // queue backpressure: split inline until the migrator drains
	}
	T, timeSplit, _ := t.plannedTimeSplit(child, forced)
	if !timeSplit {
		return false // a key split: cheap, magnetic-only, stays inline
	}
	if v.Time.IsCommitted() && v.Time <= T {
		return false
	}
	// Only defer when the surviving current node is guaranteed to need
	// no follow-up key split, in either mode. The inline path decides
	// that follow-up before the incoming version lands; the deferred
	// swap would decide it after. Refusing the marginal cases keeps the
	// two paths byte-identical (the migration-equivalence property) and
	// keeps the deferred swap a pure time split. The incoming version
	// can only shrink later (a restamp replaces the 10-byte pending
	// timestamp), so the margin below is conservative.
	hist, cur, _ := partitionVersions(child.versions, T)
	if len(hist) == 0 {
		return false
	}
	_, curRect := child.rect.SplitAtTime(T)
	curNode := &node{rect: curRect, leaf: true, versions: cur}
	if t.size(curNode)+v.EncodedSize()+4+t.versionSlack() > t.cfg.LeafCapacity {
		return false
	}
	t.pending[child.addr.Off] = &pendingMark{T: T, forced: forced}
	t.newTickets = append(t.newTickets, PendingSplit{Page: child.addr.Off, T: T})
	return true
}

// deferIndexSplit queues index node n for a background time split instead
// of splitting it preemptively during Insert's descent. It returns true
// when the incoming version v may proceed through the (now logically
// overfull) index node without any split.
//
// The deferral is taken only when the planned split is a *pure* local
// time split (§3.5) AND nothing below n on the insertion path will split
// during this insert (the peek-descent guard). The guard is what keeps
// the deferred tree byte-identical to the inline one: if a descendant
// split ran first it would burn WORM runs or allocate magnetic pages in a
// different order than the inline path (which splits n before
// descending), and every address downstream would diverge. When the
// guard holds, the insert touches only one leaf's versions, so the
// node's content — and therefore the captured historical half — is
// exactly what an inline split at mark time would have produced.
func (t *Tree) deferIndexSplit(n *node, v record.Version) bool {
	if t.size(n)+3*t.entryCap > t.mag.PageSize() {
		return false // no physical headroom for postings from below
	}
	if _, queued := t.pending[n.addr.Off]; queued {
		return true
	}
	if len(t.pending) >= t.pendingLimit {
		return false // queue backpressure: split inline until the migrator drains
	}
	// Mirror splitIndex's decision: defer only a wanted, legal local time
	// split. Key splits are cheap, magnetic-only, and stay inline (and the
	// blocked-time-split case must run inline so markBlockingChildren
	// fires).
	magCount := 0
	var minMagStart record.Timestamp = record.TimeInfinity
	for _, e := range n.entries {
		if e.isCurrent() {
			magCount++
			if e.rect.Start < minMagStart {
				minMagStart = e.rect.Start
			}
		}
	}
	canTime := minMagStart > n.rect.Start && anyEntryBefore(n, minMagStart)
	wantTime := float64(magCount)/float64(len(n.entries)) <= t.policy.IndexKeySplitFraction
	if !wantTime || !canTime {
		return false
	}
	if quiet, err := t.subtreeQuiet(n, v); err != nil || !quiet {
		return false
	}
	t.pending[n.addr.Off] = &pendingMark{T: minMagStart}
	t.newTickets = append(t.newTickets, PendingSplit{Page: n.addr.Off, T: minMagStart})
	return true
}

// subtreeQuiet reports whether inserting v strictly below index node n
// would split nothing on the way down: every node on the path absorbs
// the insert (or a descendant's postings) without overflowing, and no
// leaf on it awaits a forced split. It is the peek-descent guard of
// deferIndexSplit and performs only reads.
func (t *Tree) subtreeQuiet(n *node, v record.Version) (bool, error) {
	vSize := v.EncodedSize()
	for !n.leaf {
		idx := findCurrentEntry(n, v.Key)
		if idx < 0 {
			return false, nil
		}
		child, err := t.readNode(n.entries[idx].child)
		if err != nil {
			return false, err
		}
		if child.leaf {
			if t.marked[child.addr.Off] && hasCommitted(child) {
				return false, nil
			}
			if t.size(child)+vSize+4 > t.cfg.LeafCapacity {
				return false, nil
			}
		} else if t.size(child)+3*t.entryCap > t.cfg.IndexCapacity {
			return false, nil
		}
		n = child
	}
	return true, nil
}

// CaptureSplit reads the queued leaf and encodes its historical half at
// the split time recorded when it was marked. Call under at least a read
// latch. ok is false when the ticket is stale (the leaf was split some
// other way meanwhile) — nothing was burned, so a stale ticket costs no
// write-once capacity.
func (t *Tree) CaptureSplit(ps PendingSplit) (c *SplitCapture, ok bool, err error) {
	mk, queued := t.pending[ps.Page]
	if !queued {
		return nil, false, nil
	}
	n, err := t.readNode(storage.Addr{Kind: storage.KindMagnetic, Off: ps.Page})
	if err != nil {
		return nil, false, err
	}
	if !n.leaf {
		// Index-node ticket: capture the historical half of the §3.5
		// local time split. A half containing a current (magnetic) entry
		// means a concurrent split below posted a child whose interval
		// reaches under T — the capture is stale, and burning it would
		// violate the WORM's no-current-references invariant.
		hist, _, _ := partitionEntries(n.entries, mk.T)
		if len(hist) == 0 {
			return nil, false, nil
		}
		for _, e := range hist {
			if e.isCurrent() {
				return nil, false, nil
			}
		}
		histRect, _ := n.rect.SplitAtTime(mk.T)
		histNode := &node{rect: histRect, leaf: false, entries: hist}
		return &SplitCapture{
			page:     ps.Page,
			T:        mk.T,
			forced:   mk.forced,
			epoch:    mk.epoch,
			lowKey:   n.rect.LowKey.Clone(),
			histData: encodeNode(histNode),
		}, true, nil
	}
	hist, _, _ := partitionVersions(n.versions, mk.T)
	if len(hist) == 0 {
		// Cannot happen while the mark is live (see the package comment);
		// treat it as stale rather than burning an empty node.
		return nil, false, nil
	}
	histRect, _ := n.rect.SplitAtTime(mk.T)
	histNode := &node{rect: histRect, leaf: true, versions: hist}
	return &SplitCapture{
		page:     ps.Page,
		T:        mk.T,
		forced:   mk.forced,
		epoch:    mk.epoch,
		lowKey:   n.rect.LowKey.Clone(),
		histData: encodeNode(histNode),
		histVers: len(hist),
	}, true, nil
}

// BurnCapture appends the captured historical node to the WORM device and
// returns its address. It touches no tree state — only the device, which
// is safe for concurrent use — so it is the one migration step designed
// to run with NO latch held. Tree-level accounting for the burn happens
// later, under the write latch, when ApplySplit installs the node.
//
//tsb:io
func (t *Tree) BurnCapture(c *SplitCapture) (storage.Addr, error) {
	return t.worm.Append(c.histData)
}

// ApplySplit installs a burned historical node: under the write latch it
// checks the mark is still live, then descends from the root exactly as
// Insert would — splitting any full ancestor on the way — and swaps the
// leaf through splitNode. The epoch/re-dirty check runs at the swap
// itself: if the leaf was never rewritten since the capture, the burn is
// installed as-is; if it was re-dirtied (concurrent inserts or commit
// stamps — which land strictly at or after the split time, changing only
// the current half), the burn is re-verified byte for byte against the
// leaf's recomputed historical half, so those writes are never lost and
// a mismatch can only abandon the burn, never corrupt the tree.
// applied=false means the capture lost its race (the leaf was split
// inline after all): the burned node is unreferenced WORM waste, exactly
// as a torn migration on real write-once media would be.
//
//tsb:io -- re-splitting a full ancestor on the descent can burn inline
func (t *Tree) ApplySplit(c *SplitCapture, histAddr storage.Addr) (applied bool, err error) {
	mk, queued := t.pending[c.page]
	if !queued || mk.T != c.T {
		return false, nil
	}
	t.directed = &directedSplit{
		page: c.page, T: c.T, forced: c.forced, addr: histAddr,
		data: c.histData, trusted: mk.epoch == c.epoch,
	}
	defer func() { t.directed = nil }()
	if err := t.applyDirected(c.lowKey, c.page); err != nil {
		if errors.Is(err, errBurnMismatch) {
			// Defensive: drop the mark and abandon the burn; the next
			// insert re-decides the split from scratch.
			return false, nil
		}
		return false, err
	}
	return t.directed.done, nil
}

// applyDirected descends from the root to the queued leaf's parent —
// splitting the root or any full index node on the way, exactly as
// Insert's top-down preemptive splitting does — and splits the leaf
// (splitNode consumes t.directed and installs the pre-burned node).
func (t *Tree) applyDirected(k record.Key, page uint64) error {
	for {
		root, err := t.readNode(t.root)
		if err != nil {
			return err
		}
		if root.leaf {
			if root.addr.Off != page {
				return fmt.Errorf("core: directed split target %d is not the root leaf %d", page, root.addr.Off)
			}
			// Height-1 tree: the queued leaf IS the root; splitting it
			// grows the tree by one level.
			return t.splitRoot()
		}
		if root.addr.Off == page {
			// The queued index node IS the root; splitting it grows the
			// tree by one level, exactly as the inline preemptive path
			// would have.
			return t.splitRoot()
		}
		if t.size(root)+3*t.entryCap <= t.cfg.IndexCapacity {
			break
		}
		if err := t.splitRoot(); err != nil {
			return err
		}
	}
	n, err := t.readNode(t.root)
	if err != nil {
		return err
	}
	for {
		idx := findCurrentEntry(n, k)
		if idx < 0 {
			return fmt.Errorf("core: directed split lost current entry for key %s", k)
		}
		child, err := t.readNode(n.entries[idx].child)
		if err != nil {
			return err
		}
		if child.leaf {
			if child.addr.Off != page {
				return fmt.Errorf("core: directed split target %d routed to leaf %d", page, child.addr.Off)
			}
			return t.splitChild(n, idx, false)
		}
		if child.addr.Off == page {
			// The queued index node itself: split it here (splitNode
			// consumes t.directed and installs the pre-burned half).
			return t.splitChild(n, idx, false)
		}
		// Make room in the index child before descending, mirroring
		// Insert: a split's postings must always fit the parent.
		if t.size(child)+3*t.entryCap > t.cfg.IndexCapacity {
			if err := t.splitChild(n, idx, false); err != nil {
				return err
			}
			if idx = findCurrentEntry(n, k); idx < 0 {
				return fmt.Errorf("core: directed split lost current entry for key %s after split", k)
			}
			if child, err = t.readNode(n.entries[idx].child); err != nil {
				return err
			}
		}
		n = child
	}
}
