package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/record"
)

func TestCursorMatchesScanAsOf(t *testing.T) {
	for _, policyName := range []string{"key-pref", "time-pref", "last-update"} {
		p := policies()[policyName]
		t.Run(policyName, func(t *testing.T) {
			rng := rand.New(rand.NewSource(31))
			tree, _, _ := newTestTree(t, p)
			ts := uint64(0)
			for op := 0; op < 700; op++ {
				ts++
				k := record.StringKey(fmt.Sprintf("key%03d", rng.Intn(50)))
				v := record.Version{Key: k, Time: record.Timestamp(ts)}
				if rng.Intn(10) == 0 {
					v.Tombstone = true
				} else {
					v.Value = []byte(fmt.Sprintf("v%d", ts))
				}
				if err := tree.Insert(v); err != nil {
					t.Fatal(err)
				}
			}
			for trial := 0; trial < 40; trial++ {
				at := record.Timestamp(1 + rng.Intn(int(ts)))
				var low record.Key
				high := record.InfiniteBound()
				if trial%2 == 1 {
					low = record.StringKey(fmt.Sprintf("key%03d", rng.Intn(50)))
					high = record.KeyBound(record.StringKey(fmt.Sprintf("key%03d", rng.Intn(50))))
				}
				want, err := tree.ScanAsOf(at, low, high)
				if err != nil {
					t.Fatal(err)
				}
				cur := tree.NewCursor(at, low, high)
				var got []record.Version
				for cur.Next() {
					got = append(got, cur.Version())
				}
				if cur.Err() != nil {
					t.Fatal(cur.Err())
				}
				if len(got) != len(want) {
					t.Fatalf("cursor@%d [%s,%s) returned %d, scan %d", at, low, high, len(got), len(want))
				}
				for i := range want {
					if !got[i].Key.Equal(want[i].Key) || got[i].Time != want[i].Time {
						t.Fatalf("cursor[%d] = %v, scan %v", i, got[i], want[i])
					}
					if i > 0 && !got[i-1].Key.Less(got[i].Key) {
						t.Fatalf("cursor out of order at %d", i)
					}
				}
			}
		})
	}
}

func TestReverseCursorMatchesScanAsOf(t *testing.T) {
	for _, policyName := range []string{"key-pref", "time-pref", "last-update"} {
		p := policies()[policyName]
		t.Run(policyName, func(t *testing.T) {
			rng := rand.New(rand.NewSource(53))
			tree, _, _ := newTestTree(t, p)
			ts := uint64(0)
			for op := 0; op < 700; op++ {
				ts++
				k := record.StringKey(fmt.Sprintf("key%03d", rng.Intn(50)))
				v := record.Version{Key: k, Time: record.Timestamp(ts)}
				if rng.Intn(10) == 0 {
					v.Tombstone = true
				} else {
					v.Value = []byte(fmt.Sprintf("v%d", ts))
				}
				if err := tree.Insert(v); err != nil {
					t.Fatal(err)
				}
			}
			for trial := 0; trial < 40; trial++ {
				at := record.Timestamp(1 + rng.Intn(int(ts)))
				var low record.Key
				high := record.InfiniteBound()
				if trial%2 == 1 {
					low = record.StringKey(fmt.Sprintf("key%03d", rng.Intn(50)))
					high = record.KeyBound(record.StringKey(fmt.Sprintf("key%03d", rng.Intn(50))))
				}
				want, err := tree.ScanAsOf(at, low, high)
				if err != nil {
					t.Fatal(err)
				}
				cur := tree.NewReverseCursor(at, low, high)
				var got []record.Version
				for cur.Next() {
					got = append(got, cur.Version())
				}
				if cur.Err() != nil {
					t.Fatal(cur.Err())
				}
				if len(got) != len(want) {
					t.Fatalf("reverse cursor@%d [%s,%s) returned %d, scan %d", at, low, high, len(got), len(want))
				}
				for i := range want {
					w := want[len(want)-1-i]
					if !got[i].Key.Equal(w.Key) || got[i].Time != w.Time {
						t.Fatalf("reverse cursor[%d] = %v, scan %v", i, got[i], w)
					}
					if i > 0 && !got[i].Key.Less(got[i-1].Key) {
						t.Fatalf("reverse cursor out of order at %d", i)
					}
				}
			}
		})
	}
}

func TestCursorEmptyAndExhausted(t *testing.T) {
	tree, _, _ := newTestTree(t, PolicyLastUpdate)
	cur := tree.NewCursor(10, nil, record.InfiniteBound())
	if cur.Next() {
		t.Fatal("cursor on empty tree should be exhausted")
	}
	if cur.Next() {
		t.Fatal("Next after exhaustion must stay false")
	}
	if cur.Err() != nil {
		t.Fatal(cur.Err())
	}
}

func TestDiffBasic(t *testing.T) {
	tree, _, _ := newTestTree(t, PolicyLastUpdate)
	put(t, tree, "a", 1, "a1")
	put(t, tree, "b", 2, "b1")
	put(t, tree, "a", 5, "a2") // updated inside window
	put(t, tree, "c", 6, "c1") // created inside window
	del(t, tree, "b", 7)       // deleted inside window
	put(t, tree, "d", 8, "d1") // created then deleted inside window
	del(t, tree, "d", 9)
	put(t, tree, "e", 12, "e1") // after window

	changes, err := tree.Diff(nil, record.InfiniteBound(), 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"a": "updated", "b": "deleted", "c": "created"}
	if len(changes) != len(want) {
		t.Fatalf("Diff = %+v, want keys %v", changes, want)
	}
	for _, c := range changes {
		if want[string(c.Key)] != c.Kind() {
			t.Errorf("Diff(%s) = %s, want %s", c.Key, c.Kind(), want[string(c.Key)])
		}
	}
	// Detail checks.
	if string(changes[0].Before.Value) != "a1" || string(changes[0].After.Value) != "a2" {
		t.Errorf("a change detail: %+v", changes[0])
	}
	if !changes[1].HasBefor || changes[1].HasAfter {
		t.Errorf("b change detail: %+v", changes[1])
	}
	// Empty/inverted windows.
	if cs, _ := tree.Diff(nil, record.InfiniteBound(), 5, 5); len(cs) != 0 {
		t.Error("empty window should produce no changes")
	}
	// Unchanged key never reported.
	for _, c := range changes {
		if c.Key.Equal(record.StringKey("e")) {
			t.Error("key changed outside the window reported")
		}
	}
}

func TestDiffModelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	tree, _, _ := newTestTree(t, PolicyWOBTLike)
	ref := make(refdb)
	ts := uint64(0)
	for op := 0; op < 600; op++ {
		ts++
		k := record.StringKey(fmt.Sprintf("key%03d", rng.Intn(30)))
		v := record.Version{Key: k, Time: record.Timestamp(ts)}
		if rng.Intn(8) == 0 {
			v.Tombstone = true
		} else {
			v.Value = []byte(fmt.Sprintf("v%d", ts))
		}
		if err := tree.Insert(v); err != nil {
			t.Fatal(err)
		}
		ref.insert(v)
	}
	for trial := 0; trial < 60; trial++ {
		from := record.Timestamp(rng.Intn(int(ts)))
		to := from + 1 + record.Timestamp(rng.Intn(150))
		got, err := tree.Diff(nil, record.InfiniteBound(), from, to)
		if err != nil {
			t.Fatal(err)
		}
		gotByKey := make(map[string]Change)
		for _, c := range got {
			gotByKey[string(c.Key)] = c
		}
		for i := 0; i < 30; i++ {
			k := record.StringKey(fmt.Sprintf("key%03d", i))
			before, hasBefore := ref.getAsOf(k, from)
			after, hasAfter := ref.getAsOf(k, to)
			changed := hasBefore != hasAfter ||
				(hasBefore && (before.Time != after.Time))
			c, reported := gotByKey[string(k)]
			if changed != reported {
				t.Fatalf("Diff[%d,%d] key %s: changed=%v reported=%v", from, to, k, changed, reported)
			}
			if !reported {
				continue
			}
			if c.HasBefor != hasBefore || c.HasAfter != hasAfter {
				t.Fatalf("Diff key %s flags: %+v vs ref before=%v after=%v", k, c, hasBefore, hasAfter)
			}
			if hasAfter && c.After.Time != after.Time {
				t.Fatalf("Diff key %s after = %v, ref %v", k, c.After, after)
			}
		}
	}
}
