package core

import (
	"sort"

	"repro/internal/record"
)

// Change describes how one key differed between two times.
type Change struct {
	Key record.Key
	// Before is the version valid at the `from` time (ok=false if the
	// key did not exist then).
	Before   record.Version
	HasBefor bool
	// After is the version valid at the `to` time (ok=false if the key
	// was deleted by then).
	After    record.Version
	HasAfter bool
}

// Kind classifies the change.
func (c Change) Kind() string {
	switch {
	case !c.HasBefor && c.HasAfter:
		return "created"
	case c.HasBefor && !c.HasAfter:
		return "deleted"
	default:
		return "updated"
	}
}

// Diff reports every key in [low, high) whose visible state differs
// between times `from` and `to` (from < to), sorted by key: the
// time-travel comparison query ("what changed between the two backups?").
// It is built on ScanRange, so it reads only the node slices overlapping
// the window.
func (t *Tree) Diff(low record.Key, high record.Bound, from, to record.Timestamp) ([]Change, error) {
	if to <= from {
		return nil, nil
	}
	// Every version valid at some moment in (from, to] is in the scan of
	// [from, to+1); group by key and compare the endpoints.
	vs, err := t.ScanRange(low, high, from, to+1)
	if err != nil {
		return nil, err
	}
	type state struct {
		atFrom, atTo record.Version
		hasFrom      bool
		hasTo        bool
		changedIn    bool // any version committed in (from, to]
	}
	byKey := make(map[string]*state)
	order := []record.Key{}
	for _, v := range vs {
		s, ok := byKey[string(v.Key)]
		if !ok {
			s = &state{}
			byKey[string(v.Key)] = s
			order = append(order, v.Key)
		}
		if v.Time <= from {
			s.atFrom, s.hasFrom = v, !v.Tombstone
		} else {
			s.changedIn = true
		}
		if v.Time <= to && (!s.hasTo || v.Time > s.atTo.Time) {
			s.atTo = v
			s.hasTo = true
		}
	}
	var out []Change
	for _, k := range order {
		s := byKey[string(k)]
		if !s.changedIn {
			continue
		}
		c := Change{Key: k}
		if s.hasFrom {
			c.Before, c.HasBefor = s.atFrom, true
		}
		if s.hasTo && !s.atTo.Tombstone {
			c.After, c.HasAfter = s.atTo, true
		}
		if !c.HasBefor && !c.HasAfter {
			continue // created and deleted inside the window
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Less(out[j].Key) })
	return out, nil
}
