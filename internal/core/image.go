package core

import (
	"fmt"
	"sort"

	"repro/internal/record"
	"repro/internal/storage"
)

// TreeImage is the serializable metadata of a TSB-tree: everything needed
// to reattach to its (separately imaged) devices. Node contents live on
// the devices themselves; the image carries only the root pointer, the
// clock, the counters, and the §3.5 marked set.
type TreeImage struct {
	Root   storage.Addr
	Now    record.Timestamp
	Stats  Stats
	Marked []uint64

	Policy        Policy
	MaxKeySize    int
	MaxValueSize  int
	LeafCapacity  int
	IndexCapacity int
}

// Image captures the tree's metadata.
func (t *Tree) Image() TreeImage {
	img := TreeImage{
		Root:          t.root,
		Now:           t.now,
		Stats:         t.stats,
		Policy:        t.cfg.Policy,
		MaxKeySize:    t.cfg.MaxKeySize,
		MaxValueSize:  t.cfg.MaxValueSize,
		LeafCapacity:  t.cfg.LeafCapacity,
		IndexCapacity: t.cfg.IndexCapacity,
	}
	for page := range t.marked {
		img.Marked = append(img.Marked, page)
	}
	// Deterministic order: images of equivalent trees must be
	// byte-identical (the shard- and migration-equivalence property tests
	// compare serialized images directly).
	sort.Slice(img.Marked, func(i, j int) bool { return img.Marked[i] < img.Marked[j] })
	return img
}

// FromImage reattaches a tree to its devices. The devices must hold the
// state they held when the image was taken.
func FromImage(mag storage.PageStore, worm storage.WORMDevice, img TreeImage) (*Tree, error) {
	t := &Tree{
		mag:  mag,
		worm: worm,
		cfg: Config{
			Policy:        img.Policy,
			MaxKeySize:    img.MaxKeySize,
			MaxValueSize:  img.MaxValueSize,
			LeafCapacity:  img.LeafCapacity,
			IndexCapacity: img.IndexCapacity,
		},
		policy:       img.Policy,
		root:         img.Root,
		now:          img.Now,
		stats:        img.Stats,
		marked:       make(map[uint64]bool),
		pending:      make(map[uint64]*pendingMark),
		pendingLimit: defaultPendingSplitLimit,
	}
	t.entryCap = 2*img.MaxKeySize + 64
	for _, page := range img.Marked {
		t.marked[page] = true
	}
	// Sanity: the root must be readable on the attached devices.
	if _, err := t.readNode(t.root); err != nil {
		return nil, fmt.Errorf("core: image does not match devices: %w", err)
	}
	return t, nil
}
