package core

// Executable reproductions of the paper's structural figures involving the
// TSB-tree (Figures 5-9). Each test replays the figure's scenario and
// asserts the structural outcome the figure illustrates. cmd/figures
// renders the same scenarios for human inspection.

import (
	"fmt"
	"testing"

	"repro/internal/record"
	"repro/internal/storage"
)

// figureTree builds a tree with tiny nodes (a handful of records each),
// like the nodes drawn in the paper.
func figureTree(t *testing.T, p Policy) (*Tree, *storage.WORMDisk) {
	t.Helper()
	return figureTreeCap(t, p, 80)
}

func figureTreeCap(t *testing.T, p Policy, leafCap int) (*Tree, *storage.WORMDisk) {
	t.Helper()
	mag := storage.NewMagneticDisk(4096, storage.CostModel{})
	worm := storage.NewWORMDisk(storage.WORMConfig{SectorSize: 512})
	tree, err := New(mag, worm, Config{
		Policy:        p,
		MaxKeySize:    4,
		MaxValueSize:  8,
		LeafCapacity:  leafCap,
		IndexCapacity: 560,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tree, worm
}

func leafValues(v NodeView) map[string]string {
	out := make(map[string]string)
	for _, ver := range v.Versions {
		out[fmt.Sprintf("%s@%s", ver.Key, ver.Time)] = string(ver.Value)
	}
	return out
}

// TestFigure5 reproduces Figure 5: a data node receiving only insertions
// splits entirely by key; the new index entry's timestamp equals the
// previous entry's timestamp (the node's start), and nothing migrates.
func TestFigure5(t *testing.T) {
	tree, worm := figureTree(t, PolicyWOBTLike)
	put(t, tree, "50", 2, "Joe")
	put(t, tree, "90", 5, "Pete")
	put(t, tree, "120", 7, "Alice")
	put(t, tree, "110", 8, "Sue")
	// Keep inserting fresh keys until the leaf splits.
	extra := []struct {
		k  string
		ts uint64
		v  string
	}{{"60", 9, "Ron"}, {"80", 10, "Joan"}, {"70", 11, "Bill"}}
	for _, e := range extra {
		put(t, tree, e.k, e.ts, e.v)
		if tree.Stats().LeafKeySplits > 0 {
			break
		}
	}
	st := tree.Stats()
	if st.LeafKeySplits == 0 {
		t.Fatalf("insert-only overflow must key split: %+v", st)
	}
	if st.LeafTimeSplits != 0 || worm.Stats().SectorsBurned != 0 {
		t.Fatalf("pure key split must not migrate: %+v", st)
	}
	root, err := tree.ViewRoot()
	if err != nil {
		t.Fatal(err)
	}
	if root.Leaf || len(root.Entries) != 2 {
		t.Fatalf("expected a root over two leaves, got %s", root)
	}
	for _, e := range root.Entries {
		// "The timestamp in the new index entry is the same as the
		// timestamp of the previous index entry": both halves keep the
		// original start time.
		if e.Rect.Start != record.TimeZero || !e.Rect.IsCurrent() {
			t.Errorf("entry %s: want start 0 and open end", e.Rect)
		}
	}
	checkOK(t, tree)
}

// TestFigure6 reproduces Figure 6: a time split of a node holding
// 60/Joe@1, 60/Pete@2, 60/Mary@4. Splitting at T=4 yields no redundancy;
// splitting at T=5 (or later, as the WOBT's "now" forces) duplicates Mary
// into both the historical and the current node.
func TestFigure6(t *testing.T) {
	scenario := func(choice SplitTimeChoice) (*Tree, *storage.WORMDisk, Stats) {
		tree, worm := figureTreeCap(t, Policy{
			KeySplitFraction: 0.5, SplitTime: choice, IndexKeySplitFraction: 0.5,
		}, 60)
		put(t, tree, "60", 1, "Joe")
		put(t, tree, "60", 2, "Pete")
		put(t, tree, "60", 4, "Mary")
		put(t, tree, "90", 6, "Alice") // triggers the split
		if tree.Stats().LeafTimeSplits == 0 {
			t.Fatalf("scenario must time split (choice=%v): %+v", choice, tree.Stats())
		}
		checkOK(t, tree)
		return tree, worm, tree.Stats()
	}

	// T = 4 (the last update): Mary@4 is >= T, so she stays current
	// only. No redundancy.
	treeA, _, stA := scenario(SplitAtLastUpdate)
	if stA.RedundantVersions != 0 {
		t.Errorf("T=4 split should have no redundancy, got %d", stA.RedundantVersions)
	}
	if stA.VersionsMigrated != 2 {
		t.Errorf("T=4 split should migrate Joe and Pete only, got %d", stA.VersionsMigrated)
	}
	cur, err := treeA.CurrentLeafView(record.StringKey("60"))
	if err != nil {
		t.Fatal(err)
	}
	vals := leafValues(cur)
	if vals["60@4"] != "Mary" || vals["90@6"] != "Alice" || len(vals) != 2 {
		t.Errorf("T=4 current node = %v, want {Mary@4, Alice@6}", vals)
	}

	// T = now (6): Mary@4 < T migrates, and being alive at T she is
	// copied back — "the record with Mary is in both the historical and
	// current nodes".
	treeB, _, stB := scenario(SplitAtNow)
	if stB.RedundantVersions != 1 {
		t.Errorf("T=now split should duplicate exactly Mary, got %d", stB.RedundantVersions)
	}
	if stB.VersionsMigrated != 3 {
		t.Errorf("T=now split should migrate all three versions, got %d", stB.VersionsMigrated)
	}
	curB, err := treeB.CurrentLeafView(record.StringKey("60"))
	if err != nil {
		t.Fatal(err)
	}
	valsB := leafValues(curB)
	if valsB["60@4"] != "Mary" || valsB["90@6"] != "Alice" {
		t.Errorf("T=now current node = %v, want Mary copied in", valsB)
	}
	// Historical node also holds Mary: her history dedupes to 3 versions.
	h, _ := treeB.History(record.StringKey("60"))
	if len(h) != 3 {
		t.Errorf("History(60) = %d versions, want 3", len(h))
	}
}

// driveUntil runs a deterministic mixed workload until pred is true or the
// op budget is exhausted, returning whether pred held.
func driveUntil(t *testing.T, tree *Tree, nKeys int, updateEvery int, pred func(Stats) bool, maxOps int) bool {
	t.Helper()
	ts := tree.Now()
	for op := 0; op < maxOps; op++ {
		ts++
		var key string
		if updateEvery > 0 && op%updateEvery != 0 {
			key = fmt.Sprintf("k%03d", op%nKeys)
		} else {
			key = fmt.Sprintf("k%03d", (op*13)%nKeys)
		}
		err := tree.Insert(record.Version{
			Key: record.StringKey(key), Time: ts, Value: []byte(fmt.Sprintf("v%d", ts)),
		})
		if err != nil {
			t.Fatalf("insert %s@%d: %v", key, ts, err)
		}
		if pred(tree.Stats()) {
			return true
		}
	}
	return pred(tree.Stats())
}

// TestFigure7 reproduces the phenomenon of Figure 7: an index-node
// keyspace split where a historical entry's key range strictly contains
// the split value, so the entry is duplicated into both new index nodes
// (rule 4 of the Index Node Keyspace Split Rule).
func TestFigure7(t *testing.T) {
	// Leaves time split eagerly (creating historical entries whose key
	// ranges are coarse), then later key splits refine the ranges, and
	// index nodes prefer keyspace splits.
	tree, _ := figureTree(t, Policy{
		KeySplitFraction: 0.5, SplitTime: SplitAtNow, IndexKeySplitFraction: 0.0,
	})
	ok := driveUntil(t, tree, 32, 2, func(s Stats) bool {
		return s.IndexKeySplits > 0 && s.RedundantIndexEntries > 0
	}, 8000)
	if !ok {
		t.Fatalf("workload never produced a rule-4 duplication: %+v", tree.Stats())
	}
	checkOK(t, tree)
	// Find a WORM child referenced by more than one index node: the DAG
	// property ("only historical nodes have more than one parent").
	parents := make(map[storage.Addr]map[storage.Addr]bool)
	var walk func(addr storage.Addr) error
	seen := make(map[storage.Addr]bool)
	walk = func(addr storage.Addr) error {
		if seen[addr] {
			return nil
		}
		seen[addr] = true
		v, err := tree.View(addr)
		if err != nil {
			return err
		}
		for _, e := range v.Entries {
			if parents[e.Child] == nil {
				parents[e.Child] = make(map[storage.Addr]bool)
			}
			parents[e.Child][addr] = true
			if err := walk(e.Child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(tree.Root()); err != nil {
		t.Fatal(err)
	}
	multi := 0
	for child, ps := range parents {
		if len(ps) > 1 {
			multi++
			if !child.IsWORM() {
				t.Errorf("current node %s has %d parents; only historical nodes may", child, len(ps))
			}
		}
	}
	if multi == 0 {
		t.Error("expected at least one shared historical node (DAG property)")
	}
}

// TestFigure8 reproduces Figure 8: a local index time split. One index
// node migrates to the optical disk; no lower node is touched, and every
// entry in the migrated index node references the historical database.
func TestFigure8(t *testing.T) {
	tree, _ := figureTree(t, Policy{
		KeySplitFraction: 0.5, SplitTime: SplitAtNow, IndexKeySplitFraction: 1.0,
	})
	ok := driveUntil(t, tree, 12, 1, func(s Stats) bool {
		return s.IndexTimeSplits > 0
	}, 4000)
	if !ok {
		t.Fatalf("workload never index-time-split: %+v", tree.Stats())
	}
	checkOK(t, tree) // includes: historical index nodes reference only WORM children
	// Verify a WORM index node exists and all its entries point at WORM.
	found := false
	seen := make(map[storage.Addr]bool)
	var walk func(addr storage.Addr) error
	walk = func(addr storage.Addr) error {
		if seen[addr] {
			return nil
		}
		seen[addr] = true
		v, err := tree.View(addr)
		if err != nil {
			return err
		}
		if !v.Leaf && v.Addr.IsWORM() {
			found = true
			for _, e := range v.Entries {
				if !e.Child.IsWORM() {
					t.Errorf("historical index node %s references current node %s", v.Addr, e.Child)
				}
			}
		}
		for _, e := range v.Entries {
			if err := walk(e.Child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(tree.Root()); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Error("no historical index node found after an index time split")
	}
}

// TestFigure9 reproduces Figure 9: an index node that wants to time split
// but cannot, because a current data node created at the index node's own
// start time blocks it. The index node keyspace splits instead and the
// blocking leaf is marked to be time split at the next opportunity.
func TestFigure9(t *testing.T) {
	tree, _ := figureTree(t, Policy{
		KeySplitFraction: 0.5, SplitTime: SplitAtNow, IndexKeySplitFraction: 1.0,
	})
	// Phase 1: distinct keys only. Leaves key split, so every leaf entry
	// keeps start time 0 — including in any index node created later.
	for i := 0; i < 6; i++ {
		put(t, tree, fmt.Sprintf("a%02d", i), uint64(i+1), "x")
	}
	// Phase 2: hammer updates on the upper half of the key space. Leaves
	// there time split; the untouched lower leaves keep start 0 and
	// block local index time splits.
	ts := uint64(100)
	for op := 0; tree.Stats().MarkedLeaves == 0 && op < 4000; op++ {
		ts++
		put(t, tree, fmt.Sprintf("z%02d", op%8), ts, fmt.Sprintf("v%d", ts))
	}
	st := tree.Stats()
	if st.MarkedLeaves == 0 {
		t.Fatalf("no leaf was ever marked: %+v", st)
	}
	if tree.MarkedLeafCount() == 0 {
		t.Fatal("marked set empty despite MarkedLeaves stat")
	}
	checkOK(t, tree)
	// Phase 3: touch the blocked region; the marked leaf is force-split.
	for i := 0; i < 6 && tree.Stats().ForcedTimeSplits == 0; i++ {
		ts++
		put(t, tree, fmt.Sprintf("a%02d", i), ts, "touch")
	}
	if tree.Stats().ForcedTimeSplits == 0 {
		t.Fatalf("marked leaf was never force-split: %+v", tree.Stats())
	}
	checkOK(t, tree)
}
