package core

import (
	"sort"

	"repro/internal/record"
	"repro/internal/storage"
)

// ScanRange returns every committed version that was valid at some moment
// in the half-open time window [from, to) for keys in [low, high): the
// general temporal range query over the rollback database. The result
// contains, per key, the version alive at `from` (if any) plus every
// version committed inside the window, sorted by (key, time). Tombstones
// are included — a caller reconstructing an interval needs to know when a
// record stopped existing.
//
// This is the natural composition of the paper's query set (§2.5: version
// by key and time, snapshots, all versions of a record); it exercises the
// clustering property the Time-Split Rule's redundancy buys: versions
// valid at the same time sit in few nodes.
func (t *Tree) ScanRange(low record.Key, high record.Bound, from, to record.Timestamp) ([]record.Version, error) {
	if to <= from {
		return nil, nil
	}
	type slot struct {
		versions map[record.Timestamp]record.Version
		alive    record.Version // latest version with Time < from
		hasAlive bool
	}
	byKey := make(map[string]*slot)
	get := func(k record.Key) *slot {
		s, ok := byKey[string(k)]
		if !ok {
			s = &slot{versions: make(map[record.Timestamp]record.Version)}
			byKey[string(k)] = s
		}
		return s
	}

	window := record.Rect{LowKey: low, HighKey: high, Start: from, End: to}
	var visit func(addr storage.Addr, clip record.Rect) error
	visit = func(addr storage.Addr, clip record.Rect) error {
		n, err := t.readNode(addr)
		if err != nil {
			return err
		}
		if !n.leaf {
			for _, e := range n.entries {
				sub, ok := e.rect.Intersect(clip)
				if !ok {
					continue
				}
				if _, overlaps := sub.Intersect(window); !overlaps {
					continue
				}
				if err := visit(e.child, sub); err != nil {
					return err
				}
			}
			return nil
		}
		for _, v := range n.versions {
			if v.IsPending() || !clip.ContainsKey(v.Key) {
				continue
			}
			if v.Key.Compare(low) < 0 || high.CompareKey(v.Key) <= 0 {
				continue
			}
			switch {
			case v.Time >= to:
				// after the window
			case v.Time >= from:
				get(v.Key).versions[v.Time] = v
			default:
				// Candidate for "alive at window start". Only
				// trust it if this leaf actually covers the
				// instant `from` for this key — otherwise an
				// older slice could offer a stale version.
				if clip.Contains(v.Key, from) {
					s := get(v.Key)
					if !s.hasAlive || v.Time > s.alive.Time {
						s.alive = v
						s.hasAlive = true
					}
				}
			}
		}
		return nil
	}
	if err := visit(t.root, record.WholeSpace()); err != nil {
		return nil, err
	}

	var out []record.Version
	for _, s := range byKey {
		// A version committed at exactly `from` supersedes the alive
		// candidate: the candidate was not valid inside the window.
		if _, atFrom := s.versions[from]; s.hasAlive && !atFrom && !s.alive.Tombstone {
			out = append(out, s.alive)
		}
		for _, v := range s.versions {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out, nil
}

// HistoryRange returns the versions of key k committed in [from, to),
// preceded by the version alive at `from` if one exists — the single-key
// form of ScanRange.
func (t *Tree) HistoryRange(k record.Key, from, to record.Timestamp) ([]record.Version, error) {
	return t.ScanRange(k, record.KeyBound(append(k.Clone(), 0)), from, to)
}

// ScanRangePage returns one key-paged batch of the temporal range query:
// the ScanRange result restricted to the keys owned by the single current
// leaf responsible for `low`, found by one root-to-leaf descent. The
// page's NextLow shrinks the window for the following call (the same
// resume contract as ScanPageAsOf), so repeated calls enumerate
// ScanRange(low, high, from, to) exactly once, in (key, time) order,
// with bounded work per call — the time-window pushdown that lets a
// window cursor stream under incremental latch hand-offs instead of
// materializing a whole shard part.
//
// Pages are split on the *current* key partition (the slabs alive at
// TimePending partition the key space and are the most finely key-split
// slices of the tree), so one page covers at most one current leaf's
// key range, however many historical versions those keys accumulated.
func (t *Tree) ScanRangePage(low record.Key, high record.Bound, from, to record.Timestamp) (Page, error) {
	if to <= from {
		return Page{}, nil
	}
	clip := record.WholeSpace()
	n, err := t.readNode(t.root)
	if err != nil {
		return Page{}, err
	}
	for !n.leaf {
		next := -1
		var sub record.Rect
		for i, e := range n.entries {
			s, ok := e.rect.Intersect(clip)
			if ok && s.Contains(low, record.TimePending) {
				next, sub = i, s
				break
			}
		}
		if next < 0 {
			// No current slab covers low (defensive — the current slabs
			// partition the key space): serve the remainder in one piece.
			vs, err := t.ScanRange(low, high, from, to)
			return Page{Versions: vs}, err
		}
		clip = sub
		if n, err = t.readNode(n.entries[next].child); err != nil {
			return Page{}, err
		}
	}
	p := Page{}
	pageHigh := high
	if !clip.HighKey.IsInfinite() {
		next := clip.HighKey.Key()
		if high.CompareKey(next) > 0 {
			pageHigh = record.KeyBound(next.Clone())
			p.NextLow = next.Clone()
			p.More = true
		}
	}
	vs, err := t.ScanRange(low, pageHigh, from, to)
	if err != nil {
		return Page{}, err
	}
	p.Versions = vs
	return p, nil
}
