package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/record"
)

// refRange computes ScanRange's answer from a refdb.
func refRange(m refdb, low record.Key, high record.Bound, from, to record.Timestamp) []record.Version {
	var out []record.Version
	for ks, hist := range m {
		k := record.Key(ks)
		if k.Compare(low) < 0 || high.CompareKey(k) <= 0 {
			continue
		}
		var alive record.Version
		hasAlive := false
		hasAtFrom := false
		for _, v := range hist {
			switch {
			case v.Time < from:
				if !hasAlive || v.Time > alive.Time {
					alive = v
					hasAlive = true
				}
			case v.Time < to:
				if v.Time == from {
					hasAtFrom = true
				}
				out = append(out, v)
			}
		}
		if hasAlive && !hasAtFrom && !alive.Tombstone {
			out = append(out, alive)
		}
	}
	sortVersions(out)
	return out
}

func TestScanRangeBasic(t *testing.T) {
	tree, _, _ := newTestTree(t, PolicyLastUpdate)
	put(t, tree, "a", 1, "a1")
	put(t, tree, "b", 3, "b3")
	put(t, tree, "a", 5, "a5")
	put(t, tree, "a", 9, "a9")

	// Window [4,9): includes a5 (committed inside), a1 is superseded
	// before the window opens... a1 is alive at t=4, so it belongs.
	vs, err := tree.ScanRange(nil, record.InfiniteBound(), 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "a5", "b3"}
	if len(vs) != len(want) {
		t.Fatalf("ScanRange = %v, want %v", vs, want)
	}
	for i, w := range want {
		if string(vs[i].Value) != w {
			t.Errorf("ScanRange[%d] = %s, want %s", i, vs[i], w)
		}
	}

	// Window starting exactly at a commit: [5,10) must not include a1.
	vs, _ = tree.ScanRange(nil, record.InfiniteBound(), 5, 10)
	for _, v := range vs {
		if string(v.Value) == "a1" {
			t.Error("a1 not valid inside [5,10)")
		}
	}

	// Empty and inverted windows.
	if vs, _ := tree.ScanRange(nil, record.InfiniteBound(), 7, 7); len(vs) != 0 {
		t.Error("empty window should return nothing")
	}
	if vs, _ := tree.ScanRange(nil, record.InfiniteBound(), 9, 4); len(vs) != 0 {
		t.Error("inverted window should return nothing")
	}
}

func TestScanRangeTombstones(t *testing.T) {
	tree, _, _ := newTestTree(t, PolicyLastUpdate)
	put(t, tree, "k", 2, "v2")
	del(t, tree, "k", 5)
	put(t, tree, "k", 8, "v8")

	// The tombstone is reported inside the window (the record stopped
	// existing at 5); a tombstone alive at window start is not.
	vs, _ := tree.ScanRange(nil, record.InfiniteBound(), 3, 9)
	if len(vs) != 3 || !vs[1].Tombstone {
		t.Fatalf("ScanRange = %v, want v2, tombstone, v8", vs)
	}
	vs, _ = tree.ScanRange(nil, record.InfiniteBound(), 6, 8)
	if len(vs) != 0 {
		t.Fatalf("key deleted before window and re-created after: %v", vs)
	}
}

func TestHistoryRange(t *testing.T) {
	tree, _, _ := newTestTree(t, PolicyLastUpdate)
	// k at odd times 1,3,..,19; other interleaved at even times.
	for i := 1; i <= 10; i++ {
		put(t, tree, "k", uint64(2*i-1), fmt.Sprintf("v%d", 2*i-1))
		put(t, tree, "other", uint64(2*i), "x")
	}
	vs, err := tree.HistoryRange(record.StringKey("k"), 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Window [4,8): alive at 4 is k@3; inside the window: k@5, k@7.
	wantTimes := []record.Timestamp{3, 5, 7}
	if len(vs) != len(wantTimes) {
		t.Fatalf("HistoryRange = %v, want times %v", vs, wantTimes)
	}
	for i, v := range vs {
		if v.Time != wantTimes[i] || !v.Key.Equal(record.StringKey("k")) {
			t.Errorf("HistoryRange[%d] = %v, want time %v", i, v, wantTimes[i])
		}
	}
}

func TestScanRangeModelEquivalence(t *testing.T) {
	for _, policyName := range []string{"key-pref", "time-pref", "last-update"} {
		p := policies()[policyName]
		t.Run(policyName, func(t *testing.T) {
			rng := rand.New(rand.NewSource(21))
			tree, _, _ := newTestTree(t, p)
			ref := make(refdb)
			ts := uint64(0)
			for op := 0; op < 800; op++ {
				ts++
				k := record.StringKey(fmt.Sprintf("key%03d", rng.Intn(40)))
				v := record.Version{Key: k, Time: record.Timestamp(ts)}
				if rng.Intn(12) == 0 {
					v.Tombstone = true
				} else {
					v.Value = []byte(fmt.Sprintf("v%d", ts))
				}
				if err := tree.Insert(v); err != nil {
					t.Fatal(err)
				}
				ref.insert(v)
			}
			checkOK(t, tree)
			for trial := 0; trial < 120; trial++ {
				from := record.Timestamp(rng.Intn(int(ts)))
				to := from + record.Timestamp(rng.Intn(200))
				var low record.Key
				high := record.InfiniteBound()
				if rng.Intn(2) == 0 {
					low = record.StringKey(fmt.Sprintf("key%03d", rng.Intn(40)))
					high = record.KeyBound(record.StringKey(fmt.Sprintf("key%03d", rng.Intn(40))))
				}
				got, err := tree.ScanRange(low, high, from, to)
				if err != nil {
					t.Fatal(err)
				}
				want := refRange(ref, low, high, from, to)
				if len(got) != len(want) {
					t.Fatalf("ScanRange(%s,%s,[%d,%d)) = %d versions, want %d\ngot:  %v\nwant: %v",
						low, high, from, to, len(got), len(want), got, want)
				}
				for i := range want {
					if got[i].Time != want[i].Time || !got[i].Key.Equal(want[i].Key) {
						t.Fatalf("ScanRange[%d] = %v, want %v", i, got[i], want[i])
					}
				}
			}
		})
	}
}
