package core

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/record"
	"repro/internal/storage"
)

// Failure injection: device errors must surface as errors (never panics),
// and the committed data written before the fault must stay readable and
// consistent once the device recovers.

func newFaultyTree(t *testing.T) (*Tree, *storage.FaultyPages) {
	t.Helper()
	mag := storage.NewMagneticDisk(4096, storage.CostModel{})
	faulty := storage.NewFaultyPages(mag)
	worm := storage.NewWORMDisk(storage.WORMConfig{SectorSize: 512})
	tree, err := New(faulty, worm, testConfig(PolicyLastUpdate))
	if err != nil {
		t.Fatal(err)
	}
	return tree, faulty
}

func TestInsertSurvivesTransientFaults(t *testing.T) {
	for _, op := range []string{"read", "write", "alloc"} {
		op := op
		t.Run(op, func(t *testing.T) {
			tree, faulty := newFaultyTree(t)
			ts := uint64(0)
			insert := func(i int) error {
				ts++
				return tree.Insert(record.Version{
					Key:   record.StringKey(fmt.Sprintf("key%03d", i%60)),
					Time:  record.Timestamp(ts),
					Value: []byte(fmt.Sprintf("v%d", ts)),
				})
			}
			// Build some structure first.
			for i := 0; i < 150; i++ {
				if err := insert(i); err != nil {
					t.Fatal(err)
				}
			}
			// Arm a fault and keep inserting until it trips (an
			// alloc fault only fires on a split). Every failure
			// must be reported, never a panic.
			faulty.FailAfter(op, 1)
			failures := 0
			for trial := 0; trial < 500 && failures == 0; trial++ {
				if err := insert(1000 + trial); err != nil {
					if !errors.Is(err, storage.ErrInjected) {
						t.Fatalf("unexpected error type: %v", err)
					}
					failures++
				}
			}
			faulty.Clear()
			if failures == 0 {
				t.Fatalf("no %s fault ever tripped an insert", op)
			}
			// Device healthy again: reads work and give consistent
			// answers for data committed before the fault window.
			for i := 0; i < 60; i++ {
				k := record.StringKey(fmt.Sprintf("key%03d", i))
				if _, _, err := tree.Get(k); err != nil {
					t.Fatalf("Get(%s) after recovery: %v", k, err)
				}
			}
		})
	}
}

func TestSearchReportsReadFaults(t *testing.T) {
	tree, faulty := newFaultyTree(t)
	for i := 0; i < 200; i++ {
		if err := tree.Insert(record.Version{
			Key:   record.StringKey(fmt.Sprintf("key%03d", i%40)),
			Time:  record.Timestamp(i + 1),
			Value: []byte("x"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	faulty.FailAfter("read", 1)
	if _, _, err := tree.Get(record.StringKey("key001")); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("Get with failing read = %v", err)
	}
	faulty.Clear()
	faulty.FailAfter("read", 2)
	if _, err := tree.ScanAsOf(100, nil, record.InfiniteBound()); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("ScanAsOf with failing read = %v", err)
	}
	faulty.Clear()
	faulty.FailAfter("read", 2)
	if _, err := tree.History(record.StringKey("key001")); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("History with failing read = %v", err)
	}
	faulty.Clear()
	// Healthy again.
	if _, _, err := tree.Get(record.StringKey("key001")); err != nil {
		t.Fatalf("Get after recovery: %v", err)
	}
}

func TestCommitAbortReportFaults(t *testing.T) {
	tree, faulty := newFaultyTree(t)
	if err := tree.Insert(record.Version{
		Key: record.StringKey("k"), Time: record.TimePending, TxnID: 5, Value: []byte("draft"),
	}); err != nil {
		t.Fatal(err)
	}
	faulty.FailAfter("write", 1)
	if err := tree.CommitKey(record.StringKey("k"), 5, 3); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("CommitKey with failing write = %v", err)
	}
	faulty.Clear()
	// The version is still pending; commit succeeds after recovery.
	if err := tree.CommitKey(record.StringKey("k"), 5, 3); err != nil {
		t.Fatalf("CommitKey after recovery: %v", err)
	}
	if v, ok, _ := tree.Get(record.StringKey("k")); !ok || string(v.Value) != "draft" {
		t.Fatalf("Get after recovered commit = %v, %v", v, ok)
	}
}

func TestFaultyPagesHarness(t *testing.T) {
	mag := storage.NewMagneticDisk(64, storage.CostModel{})
	f := storage.NewFaultyPages(mag)
	if f.PageSize() != 64 {
		t.Fatal("PageSize passthrough broken")
	}
	p, err := f.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	f.FailAfter("write", 2)
	if err := f.Write(p, []byte("one")); err != nil {
		t.Fatalf("first write should pass: %v", err)
	}
	if err := f.Write(p, []byte("two")); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("second write should fail: %v", err)
	}
	if err := f.Write(p, []byte("three")); err != nil {
		t.Fatalf("fault should auto-disarm: %v", err)
	}
	f.FailAfter("free", 1)
	if err := f.Free(p); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("free fault: %v", err)
	}
	f.Clear()
	if err := f.Free(p); err != nil {
		t.Fatalf("free after clear: %v", err)
	}
}
