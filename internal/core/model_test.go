package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/record"
	"repro/internal/storage"
)

// refdb is the reference implementation: full version histories per key.
type refdb map[string][]record.Version

func (m refdb) insert(v record.Version) {
	m[string(v.Key)] = append(m[string(v.Key)], v)
}

func (m refdb) getAsOf(k record.Key, at record.Timestamp) (record.Version, bool) {
	var out record.Version
	ok := false
	for _, v := range m[string(k)] {
		if v.Time <= at {
			if !ok || v.Time > out.Time {
				out = v
				ok = true
			}
		}
	}
	if ok && out.Tombstone {
		return record.Version{}, false
	}
	return out, ok
}

func (m refdb) history(k record.Key) []record.Version {
	return m[string(k)]
}

func (m refdb) snapshot(at record.Timestamp) map[string]record.Version {
	out := make(map[string]record.Version)
	for k := range m {
		if v, ok := m.getAsOf(record.Key(k), at); ok {
			out[k] = v
		}
	}
	return out
}

func policies() map[string]Policy {
	return map[string]Policy{
		"wobt-like":   PolicyWOBTLike,
		"last-update": PolicyLastUpdate,
		"key-pref":    PolicyKeyPref,
		"time-pref":   PolicyTimePref,
		"median":      {KeySplitFraction: 0.5, SplitTime: SplitAtMedian, IndexKeySplitFraction: 0.5},
	}
}

func TestModelEquivalence(t *testing.T) {
	for name, p := range policies() {
		p := p
		for _, seed := range []int64{1, 2, 5} {
			seed := seed
			t.Run(fmt.Sprintf("%s/seed=%d", name, seed), func(t *testing.T) {
				runModelWorkload(t, p, seed, 900, 50)
			})
		}
	}
}

func runModelWorkload(t *testing.T, p Policy, seed int64, ops, nKeys int) {
	rng := rand.New(rand.NewSource(seed))
	tree, _, _ := newTestTree(t, p)
	ref := make(refdb)
	ts := uint64(0)

	// A fraction of writes go through the pending path: written pending,
	// then committed or aborted a few operations later.
	type pendingWrite struct {
		v     record.Version
		abort bool
	}
	var pending []pendingWrite
	nextTxn := uint64(100)

	flushPending := func(force bool) {
		for len(pending) > 0 && (force || len(pending) > 3) {
			pw := pending[0]
			pending = pending[1:]
			if pw.abort {
				if err := tree.AbortKey(pw.v.Key, pw.v.TxnID); err != nil {
					t.Fatalf("abort: %v", err)
				}
				continue
			}
			ts++
			if err := tree.CommitKey(pw.v.Key, pw.v.TxnID, record.Timestamp(ts)); err != nil {
				t.Fatalf("commit: %v", err)
			}
			committed := pw.v
			committed.Time = record.Timestamp(ts)
			ref.insert(committed)
		}
	}

	pendingKeys := func() map[string]bool {
		out := make(map[string]bool)
		for _, pw := range pending {
			out[string(pw.v.Key)] = true
		}
		return out
	}

	for op := 0; op < ops; op++ {
		k := record.StringKey(fmt.Sprintf("key%03d", rng.Intn(nKeys)))
		switch {
		case rng.Intn(10) == 0: // pending write
			if pendingKeys()[string(k)] {
				break // one pending writer per key (lock discipline)
			}
			nextTxn++
			v := record.Version{
				Key: k, Time: record.TimePending, TxnID: nextTxn,
				Value: []byte(fmt.Sprintf("pend-%d", nextTxn)),
			}
			if err := tree.Insert(v); err != nil {
				t.Fatalf("pending insert: %v", err)
			}
			pending = append(pending, pendingWrite{v: v, abort: rng.Intn(3) == 0})
		case rng.Intn(12) == 0: // delete
			if pendingKeys()[string(k)] {
				break
			}
			ts++
			v := record.Version{Key: k, Time: record.Timestamp(ts), Tombstone: true}
			if err := tree.Insert(v); err != nil {
				t.Fatalf("delete: %v", err)
			}
			ref.insert(v)
		default: // committed write
			if pendingKeys()[string(k)] {
				break
			}
			ts++
			v := record.Version{Key: k, Time: record.Timestamp(ts), Value: []byte(fmt.Sprintf("v%d", ts))}
			if err := tree.Insert(v); err != nil {
				t.Fatalf("insert: %v", err)
			}
			ref.insert(v)
		}
		flushPending(false)
		if op%150 == 149 {
			if err := tree.CheckInvariants(); err != nil {
				t.Fatalf("invariants after op %d: %v", op, err)
			}
		}
	}
	flushPending(true)
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("final invariants: %v", err)
	}

	// Current reads.
	for i := 0; i < nKeys; i++ {
		k := record.StringKey(fmt.Sprintf("key%03d", i))
		gv, gok, err := tree.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		mv, mok := ref.getAsOf(k, record.TimeInfinity)
		if gok != mok || (gok && (gv.Time != mv.Time || string(gv.Value) != string(mv.Value))) {
			t.Fatalf("Get(%s): tree=%v,%v ref=%v,%v", k, gv, gok, mv, mok)
		}
	}
	// As-of reads at random times.
	for trial := 0; trial < 300; trial++ {
		k := record.StringKey(fmt.Sprintf("key%03d", rng.Intn(nKeys)))
		at := record.Timestamp(rng.Intn(int(ts) + 2))
		gv, gok, err := tree.GetAsOf(k, at)
		if err != nil {
			t.Fatal(err)
		}
		mv, mok := ref.getAsOf(k, at)
		if gok != mok || (gok && (gv.Time != mv.Time || string(gv.Value) != string(mv.Value))) {
			t.Fatalf("GetAsOf(%s,%d): tree=%v,%v ref=%v,%v", k, at, gv, gok, mv, mok)
		}
	}
	// Snapshots.
	for _, at := range []record.Timestamp{1, record.Timestamp(ts / 3), record.Timestamp(ts / 2), record.Timestamp(ts)} {
		got, err := tree.ScanAsOf(at, nil, record.InfiniteBound())
		if err != nil {
			t.Fatal(err)
		}
		want := ref.snapshot(at)
		if len(got) != len(want) {
			t.Fatalf("snapshot@%d size: tree=%d ref=%d", at, len(got), len(want))
		}
		for i, v := range got {
			if i > 0 && !got[i-1].Key.Less(v.Key) {
				t.Fatalf("snapshot@%d not sorted at %d", at, i)
			}
			w, ok := want[string(v.Key)]
			if !ok || w.Time != v.Time || string(w.Value) != string(v.Value) {
				t.Fatalf("snapshot@%d key %s: tree=%v ref=%v", at, v.Key, v, w)
			}
		}
	}
	// Histories.
	for i := 0; i < nKeys; i++ {
		k := record.StringKey(fmt.Sprintf("key%03d", i))
		h, err := tree.History(k)
		if err != nil {
			t.Fatal(err)
		}
		want := ref.history(k)
		if len(h) != len(want) {
			t.Fatalf("History(%s): tree=%d versions ref=%d", k, len(h), len(want))
		}
		for j := range h {
			if h[j].Time != want[j].Time || h[j].Tombstone != want[j].Tombstone {
				t.Fatalf("History(%s)[%d]: tree=%v ref=%v", k, j, h[j], want[j])
			}
		}
	}
}

func TestModelEquivalenceLargerNodes(t *testing.T) {
	// Same machinery with page-sized nodes: fewer splits, more content
	// per node.
	rng := rand.New(rand.NewSource(11))
	mag := storage.NewMagneticDisk(1024, storage.CostModel{})
	worm := storage.NewWORMDisk(storage.WORMConfig{SectorSize: 256})
	tree, err := New(mag, worm, Config{Policy: PolicyLastUpdate, MaxKeySize: 16})
	if err != nil {
		t.Fatal(err)
	}
	ref := make(refdb)
	for ts := uint64(1); ts <= 2000; ts++ {
		k := record.StringKey(fmt.Sprintf("key%03d", rng.Intn(120)))
		v := record.Version{Key: k, Time: record.Timestamp(ts), Value: []byte(fmt.Sprintf("v%d", ts))}
		if err := tree.Insert(v); err != nil {
			t.Fatal(err)
		}
		ref.insert(v)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 400; trial++ {
		k := record.StringKey(fmt.Sprintf("key%03d", rng.Intn(120)))
		at := record.Timestamp(rng.Intn(2002))
		gv, gok, err := tree.GetAsOf(k, at)
		if err != nil {
			t.Fatal(err)
		}
		mv, mok := ref.getAsOf(k, at)
		if gok != mok || (gok && gv.Time != mv.Time) {
			t.Fatalf("GetAsOf(%s,%d): tree=%v,%v ref=%v,%v", k, at, gv, gok, mv, mok)
		}
	}
}
