package core

import (
	"repro/internal/record"
	"repro/internal/storage"
)

// Cursor streams a snapshot of the database at a fixed time in key order
// without materializing it: the iterator form of ScanAsOf, for backups and
// large range reads. A cursor reads whatever nodes it needs lazily; it is
// positioned before the first version until Next is called.
//
// Because the entries of every index node partition its rectangle, the
// leaves visited at a fixed time form a disjoint, key-ordered sequence:
// the cursor walks them with an explicit stack, no deduplication needed.
type Cursor struct {
	tree *Tree
	at   record.Timestamp
	high record.Bound

	// stack of pending subtrees in reverse key order (top = next).
	stack []cursorFrame
	// buffered versions of the current leaf, ascending key order.
	buf []record.Version
	pos int
	err error
}

type cursorFrame struct {
	addr storage.Addr
	clip record.Rect
}

// NewCursor returns a cursor over keys in [low, high) as of time at.
func (t *Tree) NewCursor(at record.Timestamp, low record.Key, high record.Bound) *Cursor {
	c := &Cursor{tree: t, at: at, high: high}
	c.stack = append(c.stack, cursorFrame{addr: t.root, clip: record.WholeSpace()})
	c.skipBelow(low)
	return c
}

// skipBelow narrows the initial clip so keys before low are not produced.
func (c *Cursor) skipBelow(low record.Key) {
	if len(low) == 0 {
		return
	}
	f := &c.stack[0]
	f.clip.LowKey = low.Clone()
}

// Err returns the first error the cursor hit, if any.
func (c *Cursor) Err() error { return c.err }

// Next advances to the next version and reports whether one is available.
func (c *Cursor) Next() bool {
	if c.err != nil {
		return false
	}
	for {
		if c.pos < len(c.buf) {
			c.pos++
			return true
		}
		if len(c.stack) == 0 {
			return false
		}
		top := c.stack[len(c.stack)-1]
		c.stack = c.stack[:len(c.stack)-1]
		n, err := c.tree.readNode(top.addr)
		if err != nil {
			c.err = err
			return false
		}
		if n.leaf {
			c.fillFromLeaf(n, top.clip)
			continue
		}
		// Push matching children in reverse key order so the
		// smallest keys pop first. Entries are sorted by (LowKey,
		// Start); at a fixed time at most one entry per key slab
		// matches, so reverse iteration preserves key order.
		for i := len(n.entries) - 1; i >= 0; i-- {
			e := n.entries[i]
			sub, ok := e.rect.Intersect(top.clip)
			if !ok || !sub.ContainsTime(c.at) {
				continue
			}
			if c.high.CompareKey(sub.LowKey) <= 0 {
				continue
			}
			c.stack = append(c.stack, cursorFrame{addr: e.child, clip: sub})
		}
	}
}

// fillFromLeaf buffers the leaf's visible versions in ascending key order.
func (c *Cursor) fillFromLeaf(n *node, clip record.Rect) {
	c.buf = c.buf[:0]
	c.pos = 0
	var last record.Key
	haveLast := false
	flushIdx := -1
	var best record.Version
	flush := func() {
		if flushIdx >= 0 && !best.Tombstone {
			c.buf = append(c.buf, best)
		}
		flushIdx = -1
	}
	for _, v := range n.versions {
		if v.IsPending() || v.Time > c.at {
			continue
		}
		if !clip.ContainsKey(v.Key) || c.high.CompareKey(v.Key) <= 0 {
			continue
		}
		if !haveLast || !v.Key.Equal(last) {
			flush()
			last = v.Key
			haveLast = true
			best = v
			flushIdx = 0
			continue
		}
		if v.Time > best.Time {
			best = v
		}
	}
	flush()
}

// Version returns the version the cursor is positioned on. It must only be
// called after a successful Next.
func (c *Cursor) Version() record.Version { return c.buf[c.pos-1] }
