package core

import (
	"slices"

	"repro/internal/record"
)

// Page is one latch-scoped unit of a streaming snapshot scan: the visible
// versions of a single leaf (deduplicated per key, tombstones dropped),
// plus the window the next page should resume from.
//
// Pages are what make cursors cheap to hand off across latches: a caller
// that latches the tree externally (the db layer's shard router) holds
// the latch only for the duration of one ScanPageAsOf call and resumes
// later from NextLow/NextHigh with no latch held in between. The snapshot
// stays consistent across that gap without any locking because of the
// non-deletion policy: versions visible at a fixed time are immutable —
// later commits carry later timestamps and time splits preserve
// visibility at every past time.
type Page struct {
	// Versions holds the leaf's visible versions in ascending key order
	// (descending when the page was produced with reverse=true).
	Versions []record.Version
	// NextLow is the low key the next page of a forward scan resumes
	// from (meaningful only when More is true).
	NextLow record.Key
	// NextHigh is the high bound the next page of a reverse scan
	// resumes from (meaningful only when More is true).
	NextHigh record.Bound
	// More reports whether the remaining window may hold versions.
	More bool
}

// Advance applies the page's resume contract to a scan window: it
// returns the shrunk (low, high) window for the next page and whether
// the scan is finished. Every pager (core.Cursor, the txn cursor) goes
// through this single copy of the contract.
func (p Page) Advance(low record.Key, high record.Bound, reverse bool) (record.Key, record.Bound, bool) {
	switch {
	case !p.More:
		return low, high, true
	case reverse:
		return low, p.NextHigh, false
	default:
		return p.NextLow, high, false
	}
}

// ScanPageAsOf returns one page of the snapshot of [low, high) at time
// at: the visible versions of the single leaf responsible for the window
// edge (the low edge forward, the high edge in reverse), found by one
// root-to-leaf descent — O(tree height) node reads per page regardless
// of database size. The page's NextLow/NextHigh shrink the window for
// the following call, so repeated calls enumerate the full snapshot
// exactly once, in order, with strictly decreasing window size.
//
// Because the entries of every index node partition its rectangle, each
// (key, at) point lives in exactly one leaf: pages never overlap and no
// deduplication across pages is needed.
func (t *Tree) ScanPageAsOf(at record.Timestamp, low record.Key, high record.Bound, reverse bool) (Page, error) {
	if reverse {
		return t.scanPageReverse(at, low, high)
	}
	// Descend to the leaf containing the point (low, at), tracking the
	// clip (the intersection of entry rectangles along the path): a
	// shared historical node owns only the keys inside the clip.
	clip := record.WholeSpace()
	n, err := t.readNode(t.root)
	if err != nil {
		return Page{}, err
	}
	for !n.leaf {
		next := -1
		var sub record.Rect
		for i, e := range n.entries {
			s, ok := e.rect.Intersect(clip)
			if ok && s.Contains(low, at) {
				next, sub = i, s
				break
			}
		}
		if next < 0 {
			// No slab covers (low, at): nothing is visible there.
			return Page{}, nil
		}
		clip = sub
		if n, err = t.readNode(n.entries[next].child); err != nil {
			return Page{}, err
		}
	}
	p := Page{Versions: visibleInLeaf(n, at, low, high, clip)}
	if !clip.HighKey.IsInfinite() {
		next := clip.HighKey.Key()
		if high.CompareKey(next) > 0 {
			p.NextLow = next.Clone()
			p.More = true
		}
	}
	return p, nil
}

// scanPageReverse descends to the leaf responsible for the greatest keys
// of the window at time at: at each index node it takes the matching
// entry with the greatest low key (entries are sorted by (LowKey, Start),
// and at a fixed time the slabs partition the key space, so scanning
// from the end finds it first).
func (t *Tree) scanPageReverse(at record.Timestamp, low record.Key, high record.Bound) (Page, error) {
	clip := record.WholeSpace()
	n, err := t.readNode(t.root)
	if err != nil {
		return Page{}, err
	}
	for !n.leaf {
		next := -1
		var sub record.Rect
		for i := len(n.entries) - 1; i >= 0; i-- {
			s, ok := n.entries[i].rect.Intersect(clip)
			if ok && s.ContainsTime(at) && s.OverlapsKeyRange(low, high) {
				next, sub = i, s
				break
			}
		}
		if next < 0 {
			return Page{}, nil
		}
		clip = sub
		if n, err = t.readNode(n.entries[next].child); err != nil {
			return Page{}, err
		}
	}
	vs := visibleInLeaf(n, at, low, high, clip)
	slices.Reverse(vs)
	p := Page{Versions: vs}
	if len(clip.LowKey) > 0 && low.Compare(clip.LowKey) < 0 {
		p.NextHigh = record.KeyBound(clip.LowKey.Clone())
		p.More = true
	}
	return p, nil
}

// visibleInLeaf collects the leaf's versions visible at time at with keys
// in [low, high) restricted to clip, keeping the latest version per key
// and dropping keys whose latest version is a tombstone. Leaf versions
// are stored in (key, time) order, so the result is key-ascending.
func visibleInLeaf(n *node, at record.Timestamp, low record.Key, high record.Bound, clip record.Rect) []record.Version {
	var out []record.Version
	var best record.Version
	have := false
	flush := func() {
		if have && !best.Tombstone {
			out = append(out, best)
		}
		have = false
	}
	for _, v := range n.versions {
		if v.IsPending() || v.Time > at {
			continue
		}
		if v.Key.Compare(low) < 0 || high.CompareKey(v.Key) <= 0 || !clip.ContainsKey(v.Key) {
			continue
		}
		if have && v.Key.Equal(best.Key) {
			if v.Time > best.Time {
				best = v
			}
			continue
		}
		flush()
		best, have = v, true
	}
	flush()
	return out
}

// Cursor streams a snapshot of the database at a fixed time in key order
// without materializing it: the iterator form of ScanAsOf, for backups,
// pagination, and large range reads. A cursor is resumable: it keeps only
// a (low, high) window between pages, never node addresses, so the tree
// may split freely between two Next calls — the snapshot it reports is
// still exactly the state at its timestamp. It is positioned before the
// first version until Next is called.
type Cursor struct {
	tree    *Tree
	at      record.Timestamp
	low     record.Key
	high    record.Bound
	reverse bool

	buf  []record.Version
	pos  int
	done bool
	err  error
}

// NewCursor returns a cursor over keys in [low, high) as of time at, in
// ascending key order.
func (t *Tree) NewCursor(at record.Timestamp, low record.Key, high record.Bound) *Cursor {
	return &Cursor{tree: t, at: at, low: low.Clone(), high: high}
}

// NewReverseCursor returns a cursor over keys in [low, high) as of time
// at, in descending key order.
func (t *Tree) NewReverseCursor(at record.Timestamp, low record.Key, high record.Bound) *Cursor {
	return &Cursor{tree: t, at: at, low: low.Clone(), high: high, reverse: true}
}

// Err returns the first error the cursor hit, if any.
func (c *Cursor) Err() error { return c.err }

// Next advances to the next version and reports whether one is available.
// Each underlying page fetch is a single root-to-leaf descent.
func (c *Cursor) Next() bool {
	if c.err != nil {
		return false
	}
	for {
		if c.pos < len(c.buf) {
			c.pos++
			return true
		}
		if c.done {
			return false
		}
		p, err := c.tree.ScanPageAsOf(c.at, c.low, c.high, c.reverse)
		if err != nil {
			c.err = err
			return false
		}
		c.buf, c.pos = p.Versions, 0
		c.low, c.high, c.done = p.Advance(c.low, c.high, c.reverse)
	}
}

// Version returns the version the cursor is positioned on. It must only be
// called after a successful Next.
func (c *Cursor) Version() record.Version { return c.buf[c.pos-1] }
