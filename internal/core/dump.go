package core

import (
	"fmt"
	"strings"

	"repro/internal/record"
	"repro/internal/storage"
)

// EntryView is the exported, read-only form of an index entry, used by the
// figure reproductions, the dump tool, and tests.
type EntryView struct {
	Rect  record.Rect
	Child storage.Addr
}

// NodeView is the exported, read-only form of a node.
type NodeView struct {
	Addr     storage.Addr
	Rect     record.Rect
	Leaf     bool
	Versions []record.Version // leaf nodes
	Entries  []EntryView      // index nodes
}

// View returns a read-only snapshot of the node at addr.
func (t *Tree) View(addr storage.Addr) (NodeView, error) {
	n, err := t.readNode(addr)
	if err != nil {
		return NodeView{}, err
	}
	return viewOf(n), nil
}

// ViewRoot returns a read-only snapshot of the root node.
func (t *Tree) ViewRoot() (NodeView, error) { return t.View(t.root) }

// CurrentLeafView returns a snapshot of the current leaf responsible for
// key k.
func (t *Tree) CurrentLeafView(k record.Key) (NodeView, error) {
	n, err := t.currentLeaf(k)
	if err != nil {
		return NodeView{}, err
	}
	return viewOf(n), nil
}

func viewOf(n *node) NodeView {
	v := NodeView{Addr: n.addr, Rect: n.rect, Leaf: n.leaf}
	for _, ver := range n.versions {
		v.Versions = append(v.Versions, ver.Clone())
	}
	for _, e := range n.entries {
		v.Entries = append(v.Entries, EntryView{Rect: e.rect, Child: e.child})
	}
	return v
}

// String renders the node view in the style of the paper's figures.
func (v NodeView) String() string {
	var b strings.Builder
	kind := "index"
	if v.Leaf {
		kind = "leaf"
	}
	device := "mag"
	if v.Addr.IsWORM() {
		device = "worm"
	}
	fmt.Fprintf(&b, "%s@%s %s [", kind, device, v.Rect)
	if v.Leaf {
		for i, ver := range v.Versions {
			if i > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(ver.String())
		}
	} else {
		for i, e := range v.Entries {
			if i > 0 {
				b.WriteString(" | ")
			}
			fmt.Fprintf(&b, "%s -> %s", e.Rect, e.Child)
		}
	}
	b.WriteString("]")
	return b.String()
}

// Dump renders the whole tree, one node per line with indentation.
// Historical nodes reachable through several parents (the DAG property of
// §3.5) are annotated and expanded only once.
func (t *Tree) Dump() (string, error) {
	var b strings.Builder
	seen := make(map[storage.Addr]bool)
	var walk func(addr storage.Addr, depth int) error
	walk = func(addr storage.Addr, depth int) error {
		n, err := t.readNode(addr)
		if err != nil {
			return err
		}
		indent := strings.Repeat("  ", depth)
		if seen[addr] {
			fmt.Fprintf(&b, "%s%s (shared, shown above)\n", indent, addr)
			return nil
		}
		seen[addr] = true
		fmt.Fprintf(&b, "%s%s\n", indent, viewOf(n))
		for _, e := range n.entries {
			if err := walk(e.child, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0); err != nil {
		return "", err
	}
	return b.String(), nil
}

// CountNodes walks the tree and returns the number of distinct current
// (magnetic) and historical (WORM) nodes reachable from the root.
func (t *Tree) CountNodes() (current, historical int, err error) {
	seen := make(map[storage.Addr]bool)
	var walk func(addr storage.Addr) error
	walk = func(addr storage.Addr) error {
		if seen[addr] {
			return nil
		}
		seen[addr] = true
		n, err := t.readNode(addr)
		if err != nil {
			return err
		}
		if addr.IsWORM() {
			historical++
		} else {
			current++
		}
		for _, e := range n.entries {
			if err := walk(e.child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return 0, 0, err
	}
	return current, historical, nil
}
