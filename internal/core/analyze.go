package core

import (
	"fmt"
	"strings"

	"repro/internal/storage"
)

// LevelStats summarizes one level of the tree (level 0 = leaves).
type LevelStats struct {
	Level           int
	CurrentNodes    int
	HistoricalNodes int
	CurrentBytes    int
	HistoricalBytes int
	Versions        int // leaf levels
	Entries         int // index levels
	// AvgCurrentFill is current node bytes / leaf-or-index capacity.
	AvgCurrentFill float64
}

// Analysis is a structural profile of the whole tree.
type Analysis struct {
	Levels []LevelStats // index 0 = leaf level
	// SharedHistorical counts historical nodes reachable through more
	// than one parent (the DAG measure).
	SharedHistorical int
}

// Analyze walks the tree and produces a per-level structural profile —
// the inspection behind cmd/tsbdump's fill-factor report.
func (t *Tree) Analyze() (Analysis, error) {
	parents := make(map[storage.Addr]int)
	type job struct {
		addr  storage.Addr
		depth int
	}
	visited := make(map[storage.Addr]int) // addr -> depth from root
	var maxDepth int
	queue := []job{{addr: t.root, depth: 0}}
	levelOf := make(map[storage.Addr]int)
	for len(queue) > 0 {
		j := queue[0]
		queue = queue[1:]
		if d, seen := visited[j.addr]; seen {
			if j.depth > d {
				// Keep the first (shallowest) depth; shared
				// historical nodes may be reachable at several.
			}
			continue
		}
		visited[j.addr] = j.depth
		levelOf[j.addr] = j.depth
		if j.depth > maxDepth {
			maxDepth = j.depth
		}
		n, err := t.readNode(j.addr)
		if err != nil {
			return Analysis{}, err
		}
		for _, e := range n.entries {
			parents[e.child]++
			queue = append(queue, job{addr: e.child, depth: j.depth + 1})
		}
	}

	// Depth counts from the root; convert to level (0 = leaves) using
	// the tree height so all leaves land on level 0 even when old roots
	// sit at odd depths.
	height := t.stats.Height
	levels := make([]LevelStats, height)
	for i := range levels {
		levels[i].Level = i
	}
	shared := 0
	for addr := range visited {
		n, err := t.readNode(addr)
		if err != nil {
			return Analysis{}, err
		}
		lvl := height - 1 - levelOf[addr]
		if n.leaf {
			lvl = 0
		}
		if lvl < 0 {
			lvl = 0
		}
		if lvl >= height {
			lvl = height - 1
		}
		ls := &levels[lvl]
		size := t.size(n)
		if addr.IsWORM() {
			ls.HistoricalNodes++
			ls.HistoricalBytes += size
		} else {
			ls.CurrentNodes++
			ls.CurrentBytes += size
		}
		ls.Versions += len(n.versions)
		ls.Entries += len(n.entries)
		if addr.IsWORM() && parents[addr] > 1 {
			shared++
		}
	}
	for i := range levels {
		cap := t.cfg.IndexCapacity
		if i == 0 {
			cap = t.cfg.LeafCapacity
		}
		if levels[i].CurrentNodes > 0 && cap > 0 {
			levels[i].AvgCurrentFill = float64(levels[i].CurrentBytes) /
				float64(levels[i].CurrentNodes*cap)
		}
	}
	return Analysis{Levels: levels, SharedHistorical: shared}, nil
}

// String renders the analysis as a small table.
func (a Analysis) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "level  cur-nodes  hist-nodes  cur-fill  versions  entries\n")
	for i := len(a.Levels) - 1; i >= 0; i-- {
		l := a.Levels[i]
		fmt.Fprintf(&b, "%-6d %-10d %-11d %-9.2f %-9d %d\n",
			l.Level, l.CurrentNodes, l.HistoricalNodes, l.AvgCurrentFill, l.Versions, l.Entries)
	}
	fmt.Fprintf(&b, "historical nodes with multiple parents (DAG): %d\n", a.SharedHistorical)
	return b.String()
}
