package core

import (
	"sort"

	"repro/internal/record"
	"repro/internal/storage"
)

// Get returns the most recent committed version of key k. The boolean is
// false if no committed version exists or the latest one is a tombstone.
// Current-version search touches only magnetic nodes: the whole point of
// time splitting is that "the most recent versions of records are kept in
// a small number of nodes" (§2).
func (t *Tree) Get(k record.Key) (record.Version, bool, error) {
	n, err := t.currentLeaf(k)
	if err != nil {
		return record.Version{}, false, err
	}
	v, ok := latestAtOrBefore(n, k, record.TimeInfinity)
	if !ok || v.Tombstone {
		return record.Version{}, false, nil
	}
	return v, true, nil
}

// GetPending returns transaction txnID's uncommitted version of key k, if
// any — the transaction layer's read-your-writes path.
func (t *Tree) GetPending(k record.Key, txnID uint64) (record.Version, bool, error) {
	n, err := t.currentLeaf(k)
	if err != nil {
		return record.Version{}, false, err
	}
	for _, v := range n.versions {
		if v.IsPending() && v.Key.Equal(k) && v.TxnID == txnID {
			return v, true, nil
		}
	}
	return record.Version{}, false, nil
}

// GetAsOf returns the version of key k valid at time at: the version with
// the largest commit time not exceeding at. A single root-to-leaf descent
// finds it: at each index node exactly one entry's rectangle contains the
// point (k, at), and clause 3 of the Time-Split Rule guarantees the node
// covering the point also holds the version valid at its start.
func (t *Tree) GetAsOf(k record.Key, at record.Timestamp) (record.Version, bool, error) {
	n, err := t.readNode(t.root)
	if err != nil {
		return record.Version{}, false, err
	}
	for !n.leaf {
		idx := findEntryAt(n, k, at)
		if idx < 0 {
			return record.Version{}, false, nil
		}
		if n, err = t.readNode(n.entries[idx].child); err != nil {
			return record.Version{}, false, err
		}
	}
	v, ok := latestAtOrBefore(n, k, at)
	if !ok || v.Tombstone {
		return record.Version{}, false, nil
	}
	return v, true, nil
}

// ScanAsOf returns the snapshot of keys in [low, high) as of time at,
// sorted by key. Because the entries of every index node partition its
// rectangle, each (key, at) point lives in exactly one leaf: no
// deduplication across redundant copies is needed, and records valid at
// the same time are clustered in a small number of nodes (§3.1).
func (t *Tree) ScanAsOf(at record.Timestamp, low record.Key, high record.Bound) ([]record.Version, error) {
	var out []record.Version
	// clip is the intersection of the entry rectangles along the path.
	// A shared historical node may be reached through a clipped entry
	// (rule 4 of §3.5 duplicates references, clipping each side): only
	// the keys inside the clip belong to this visit, the rest are owned
	// by the node's other parent.
	var visit func(addr storage.Addr, clip record.Rect) error
	visit = func(addr storage.Addr, clip record.Rect) error {
		n, err := t.readNode(addr)
		if err != nil {
			return err
		}
		if !n.leaf {
			for _, e := range n.entries {
				sub, ok := e.rect.Intersect(clip)
				if !ok || !sub.ContainsTime(at) || !sub.OverlapsKeyRange(low, high) {
					continue
				}
				if err := visit(e.child, sub); err != nil {
					return err
				}
			}
			return nil
		}
		best := make(map[string]record.Version)
		for _, v := range n.versions {
			if v.IsPending() || v.Time > at {
				continue
			}
			if v.Key.Compare(low) < 0 || high.CompareKey(v.Key) <= 0 {
				continue
			}
			if !clip.ContainsKey(v.Key) {
				continue
			}
			if prev, ok := best[string(v.Key)]; !ok || v.Time > prev.Time {
				best[string(v.Key)] = v
			}
		}
		for _, v := range best {
			if !v.Tombstone {
				out = append(out, v)
			}
		}
		return nil
	}
	if err := visit(t.root, record.WholeSpace()); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Less(out[j].Key) })
	return out, nil
}

// History returns every committed version of key k (tombstones included),
// oldest first. It visits each node whose key range contains k, across all
// time slices, deduplicating the redundant copies that time splitting
// creates.
func (t *Tree) History(k record.Key) ([]record.Version, error) {
	seen := make(map[record.Timestamp]record.Version)
	var visit func(addr storage.Addr) error
	visit = func(addr storage.Addr) error {
		n, err := t.readNode(addr)
		if err != nil {
			return err
		}
		if !n.leaf {
			for _, e := range n.entries {
				if e.rect.ContainsKey(k) {
					if err := visit(e.child); err != nil {
						return err
					}
				}
			}
			return nil
		}
		for _, v := range n.versions {
			if !v.IsPending() && v.Key.Equal(k) {
				seen[v.Time] = v
			}
		}
		return nil
	}
	if err := visit(t.root); err != nil {
		return nil, err
	}
	out := make([]record.Version, 0, len(seen))
	for _, v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out, nil
}

// History may visit the same historical node through more than one parent
// (the TSB-tree is a DAG); the map of timestamps deduplicates versions.
