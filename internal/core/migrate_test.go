package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/record"
)

// drainPending runs the mark → capture → burn → swap cycle synchronously
// until the tree has no queued splits: the single-goroutine stand-in for
// internal/db's per-shard migrator.
func drainPending(t *testing.T, tree *Tree) (applied, stale int) {
	t.Helper()
	for {
		tickets := tree.TakeNewPendingSplits()
		if len(tickets) == 0 && tree.PendingSplitCount() == 0 {
			return applied, stale
		}
		if len(tickets) == 0 {
			// Queued but no fresh ticket (a prior drain left marks):
			// synthesize tickets from the pending map via capture-by-page.
			t.Fatalf("pending splits with no tickets: %d", tree.PendingSplitCount())
		}
		for _, ps := range tickets {
			cap, ok, err := tree.CaptureSplit(ps)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				stale++
				continue
			}
			addr, err := tree.BurnCapture(cap)
			if err != nil {
				t.Fatal(err)
			}
			done, err := tree.ApplySplit(cap, addr)
			if err != nil {
				t.Fatal(err)
			}
			if done {
				applied++
			} else {
				stale++
			}
		}
	}
}

// TestDeferredSplitEquivalence is the core-level equivalence property:
// driving the same committed-version stream through an inline tree and a
// deferred tree (draining the migration queue after every insert) must
// produce byte-identical structures — same dump, same stats, same node
// counts — because the deferred swap replays exactly the split the inline
// path would have performed.
func TestDeferredSplitEquivalence(t *testing.T) {
	for _, p := range []Policy{PolicyWOBTLike, PolicyLastUpdate, PolicyTimePref} {
		for _, seed := range []int64{1, 5, 9} {
			t.Run(fmt.Sprintf("policy=%s/seed=%d", p.SplitTime, seed), func(t *testing.T) {
				inline, _, _ := newTestTree(t, p)
				deferred, _, _ := newTestTree(t, p)
				deferred.SetDeferTimeSplits(true)

				rng := rand.New(rand.NewSource(seed))
				for ts := uint64(1); ts <= 400; ts++ {
					key := fmt.Sprintf("k%02d", rng.Intn(24))
					val := fmt.Sprintf("v%d-%d", ts, rng.Intn(100))
					put(t, inline, key, ts, val)
					put(t, deferred, key, ts, val)
					drainPending(t, deferred)
				}

				checkOK(t, inline)
				checkOK(t, deferred)
				di, err := inline.Dump()
				if err != nil {
					t.Fatal(err)
				}
				dd, err := deferred.Dump()
				if err != nil {
					t.Fatal(err)
				}
				if di != dd {
					t.Fatalf("structures diverged:\ninline:\n%s\ndeferred:\n%s", di, dd)
				}
				if inline.Stats() != deferred.Stats() {
					t.Fatalf("stats diverged:\ninline:   %+v\ndeferred: %+v", inline.Stats(), deferred.Stats())
				}
				if deferred.MigrationFallbacks() != 0 {
					t.Fatalf("drain-per-insert run fell back inline %d times", deferred.MigrationFallbacks())
				}
			})
		}
	}
}

// TestDeferredSplitAbsorbsConcurrentInserts covers the epoch/re-dirty
// path: versions inserted into a queued leaf between capture and swap
// must survive the swap (they partition into the current half), and the
// swap must still install the burned node.
func TestDeferredSplitAbsorbsConcurrentInserts(t *testing.T) {
	// SplitAtLastUpdate picks a split time strictly before the incoming
	// version's timestamp, so committed inserts can defer (SplitAtNow
	// would pick T == the insert's own time and fall back inline).
	tree, _, _ := newTestTree(t, PolicyLastUpdate)
	tree.SetDeferTimeSplits(true)

	// Two keys with updates so a time split is both legal and wanted;
	// insert until the leaf overflows and a ticket is queued.
	ts := uint64(1)
	var ps PendingSplit
	queued := false
	rounds := 0
	for i := 0; i < 64 && !queued; i++ {
		put(t, tree, "a", ts, fmt.Sprintf("a%d", i))
		ts++
		put(t, tree, "b", ts, fmt.Sprintf("b%d", i))
		ts++
		rounds++
		if tk := tree.TakeNewPendingSplits(); len(tk) > 0 {
			ps = tk[0]
			queued = true
		}
	}
	if !queued {
		t.Fatal("no deferred split was queued")
	}
	cap, ok, err := tree.CaptureSplit(ps)
	if err != nil || !ok {
		t.Fatalf("capture: ok=%v err=%v", ok, err)
	}
	// Concurrent (well, interleaved) inserts into the marked leaf after
	// the capture: they land at times >= T, so the burn stays exact but
	// the epoch moves, forcing the recompute-and-compare path.
	put(t, tree, "a", ts, "late-a")
	put(t, tree, "b", ts, "late-b")
	tree.TakeNewPendingSplits() // no duplicate ticket for a queued leaf
	addr, err := tree.BurnCapture(cap)
	if err != nil {
		t.Fatal(err)
	}
	applied, err := tree.ApplySplit(cap, addr)
	if err != nil {
		t.Fatal(err)
	}
	if !applied {
		t.Fatal("swap abandoned despite an exact burn")
	}
	checkOK(t, tree)
	// Nothing lost: every version of both keys, including the two late
	// ones, is reachable.
	for _, k := range []string{"a", "b"} {
		h, err := tree.History(record.StringKey(k))
		if err != nil {
			t.Fatal(err)
		}
		if len(h) != rounds+1 {
			t.Fatalf("history(%s) = %d versions, want %d", k, len(h), rounds+1)
		}
		last := h[len(h)-1]
		if string(last.Value) != "late-"+k {
			t.Fatalf("history(%s) latest = %q", k, last.Value)
		}
	}
	if tree.Stats().LeafTimeSplits == 0 {
		t.Fatal("no time split recorded")
	}
}

// TestDeferredSplitStaleTicket covers the abandonment paths: a ticket
// whose leaf was inline-split before capture burns nothing; a capture
// whose leaf was inline-split before the swap wastes its burn but leaves
// the tree intact.
func TestDeferredSplitStaleTicket(t *testing.T) {
	tree, _, worm := newTestTree(t, PolicyLastUpdate)
	tree.SetDeferTimeSplits(true)

	ts := uint64(1)
	var ps PendingSplit
	queued := false
	for i := 0; i < 64 && !queued; i++ {
		put(t, tree, "a", ts, fmt.Sprintf("a%d", i))
		ts++
		put(t, tree, "b", ts, fmt.Sprintf("b%d", i))
		ts++
		if tk := tree.TakeNewPendingSplits(); len(tk) > 0 {
			ps = tk[0]
			queued = true
		}
	}
	if !queued {
		t.Fatal("no deferred split was queued")
	}
	cap, ok, err := tree.CaptureSplit(ps)
	if err != nil || !ok {
		t.Fatalf("capture: ok=%v err=%v", ok, err)
	}

	// Fill the leaf past its physical page: the insert path must fall
	// back to an inline split, invalidating the mark.
	big := make([]byte, 15)
	for i := range big {
		big[i] = 'x'
	}
	for tree.MigrationFallbacks() == 0 {
		err := tree.Insert(record.Version{
			Key: record.StringKey("b"), Time: record.Timestamp(ts), Value: big,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts++
	}

	// A fresh capture of the same ticket is stale (no burn, no waste).
	if _, ok, err := tree.CaptureSplit(ps); err != nil || ok {
		t.Fatalf("capture of stale ticket: ok=%v err=%v", ok, err)
	}

	// The earlier capture's burn is wasted: the swap must refuse.
	burnedBefore := worm.Stats().Appends
	addr, err := tree.BurnCapture(cap)
	if err != nil {
		t.Fatal(err)
	}
	if worm.Stats().Appends != burnedBefore+1 {
		t.Fatal("burn did not reach the device")
	}
	applied, err := tree.ApplySplit(cap, addr)
	if err != nil {
		t.Fatal(err)
	}
	if applied {
		t.Fatal("stale capture was applied")
	}
	checkOK(t, tree)
}
