package core

// Maintenance support for WORM compaction (internal/db's maintenance
// scheduler): walking the live-run set and patching relocated addresses.
//
// The live-run set of a tree is every WORM run reachable from its root.
// Historical nodes form a DAG (rule 4 of §3.5 duplicates references to
// them), so the walk dedupes by first sector. Runs that are burned but
// unreachable — abandoned background migrations, crash orphans — are
// dead: no read path can ever visit them, which is what makes relocating
// the live tail and truncating the device safe.

import (
	"fmt"

	"repro/internal/storage"
)

// WormRefs adds every WORM run reachable from the tree's root to seen,
// keyed by first sector. Call under at least a read latch. The same map
// may be passed across the trees sharing one burn file (shards and
// secondary indexes) to accumulate the device-wide live set.
func (t *Tree) WormRefs(seen map[uint64]storage.Addr) error {
	return t.collectWormRefs(t.root, seen)
}

func (t *Tree) collectWormRefs(addr storage.Addr, seen map[uint64]storage.Addr) error {
	n, err := t.readNode(addr)
	if err != nil {
		return err
	}
	for _, e := range n.entries {
		if e.child.IsMagnetic() {
			if err := t.collectWormRefs(e.child, seen); err != nil {
				return err
			}
			continue
		}
		if _, ok := seen[e.child.Off]; ok {
			continue
		}
		seen[e.child.Off] = e.child
		if err := t.collectWormRefs(e.child, seen); err != nil {
			return err
		}
	}
	return nil
}

// RewriteWormRefs rewrites, in every reachable magnetic node, child
// addresses whose run was relocated by a compaction (remap keys the old
// first sector). Call under the write latch, after the relocated runs are
// on the device. Relocated runs only ever move to smaller offsets, so the
// rewritten nodes never outgrow their pages. Returns how many entries
// were patched.
func (t *Tree) RewriteWormRefs(remap map[uint64]storage.Addr) (int, error) {
	return t.rewriteWormRefs(t.root, remap)
}

func (t *Tree) rewriteWormRefs(addr storage.Addr, remap map[uint64]storage.Addr) (int, error) {
	n, err := t.readNode(addr)
	if err != nil {
		return 0, err
	}
	patched := 0
	dirty := false
	for i, e := range n.entries {
		if e.child.IsMagnetic() {
			k, err := t.rewriteWormRefs(e.child, remap)
			patched += k
			if err != nil {
				return patched, err
			}
			continue
		}
		if na, ok := remap[e.child.Off]; ok {
			n.entries[i].child = na
			dirty = true
			patched++
		}
	}
	if dirty {
		if err := t.writeCurrent(n); err != nil {
			return patched, err
		}
	}
	return patched, nil
}

// RemapWormPayload rewrites the WORM child addresses inside one encoded
// historical node per remap, returning the re-encoded payload (or the
// input unchanged when nothing matched). The compactor uses it to patch
// historical index nodes while copying live runs forward; processing runs
// in ascending old offset means every child (burned before its parents,
// so at a smaller offset) is already remapped when its parent is visited.
func RemapWormPayload(data []byte, remap map[uint64]storage.Addr) ([]byte, error) {
	n, err := decodeNode(data, storage.Addr{Kind: storage.KindWORM})
	if err != nil {
		return nil, err
	}
	if n.leaf {
		return data, nil
	}
	changed := false
	for i, e := range n.entries {
		if e.child.Kind != storage.KindWORM {
			return nil, fmt.Errorf("core: historical node references non-WORM child %s", e.child)
		}
		if na, ok := remap[e.child.Off]; ok {
			n.entries[i].child = na
			changed = true
		}
	}
	if !changed {
		return data, nil
	}
	return encodeNode(n), nil
}
