package core

import (
	"fmt"
	"strings"
	"testing"
)

func TestAnalyzeProfile(t *testing.T) {
	tree, _, _ := newTestTree(t, PolicyLastUpdate)
	for i := 0; i < 500; i++ {
		put(t, tree, fmt.Sprintf("key%03d", i%60), uint64(i+1), fmt.Sprintf("v%d", i))
	}
	checkOK(t, tree)
	a, err := tree.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Levels) != tree.Stats().Height {
		t.Fatalf("levels = %d, height = %d", len(a.Levels), tree.Stats().Height)
	}
	leaves := a.Levels[0]
	if leaves.CurrentNodes == 0 || leaves.Versions == 0 {
		t.Fatalf("leaf level empty: %+v", leaves)
	}
	if leaves.Entries != 0 {
		t.Errorf("leaf level has index entries: %+v", leaves)
	}
	top := a.Levels[len(a.Levels)-1]
	if top.CurrentNodes != 1 {
		t.Errorf("root level should have exactly one current node: %+v", top)
	}
	// Node counts across levels match the walk-based counter.
	cur, hist, err := tree.CountNodes()
	if err != nil {
		t.Fatal(err)
	}
	sumCur, sumHist := 0, 0
	for _, l := range a.Levels {
		sumCur += l.CurrentNodes
		sumHist += l.HistoricalNodes
	}
	if sumCur != cur || sumHist != hist {
		t.Errorf("analysis nodes %d+%d, walk %d+%d", sumCur, sumHist, cur, hist)
	}
	// Fill factors are sane.
	for _, l := range a.Levels {
		if l.AvgCurrentFill < 0 || l.AvgCurrentFill > 1.05 {
			t.Errorf("level %d fill %.2f out of range", l.Level, l.AvgCurrentFill)
		}
	}
	if !strings.Contains(a.String(), "cur-fill") {
		t.Error("analysis rendering broken")
	}
}

func TestAnalyzeEmptyTree(t *testing.T) {
	tree, _, _ := newTestTree(t, PolicyLastUpdate)
	a, err := tree.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Levels) != 1 || a.Levels[0].CurrentNodes != 1 {
		t.Fatalf("empty tree analysis: %+v", a)
	}
}

func TestAnalyzeCountsSharedHistoricalNodes(t *testing.T) {
	// Reuse the Figure-7 driver: rule-4 duplication creates shared
	// historical nodes.
	tree, _ := figureTree(t, Policy{
		KeySplitFraction: 0.5, SplitTime: SplitAtNow, IndexKeySplitFraction: 0.0,
	})
	ok := driveUntil(t, tree, 32, 2, func(s Stats) bool {
		return s.RedundantIndexEntries > 0
	}, 8000)
	if !ok {
		t.Skip("workload produced no duplication")
	}
	a, err := tree.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if a.SharedHistorical == 0 {
		t.Error("rule-4 duplication should yield shared historical nodes")
	}
}
