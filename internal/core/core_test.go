package core

import (
	"fmt"
	"testing"

	"repro/internal/record"
	"repro/internal/storage"
)

// testConfig returns a config with small logical nodes so tests exercise
// splits with few records, as in the paper's figures.
func testConfig(p Policy) Config {
	return Config{
		Policy:        p,
		MaxKeySize:    16,
		MaxValueSize:  16,
		LeafCapacity:  160,
		IndexCapacity: 640,
	}
}

func newTestTree(t *testing.T, p Policy) (*Tree, *storage.MagneticDisk, *storage.WORMDisk) {
	t.Helper()
	mag := storage.NewMagneticDisk(4096, storage.CostModel{})
	worm := storage.NewWORMDisk(storage.WORMConfig{SectorSize: 512})
	tree, err := New(mag, worm, testConfig(p))
	if err != nil {
		t.Fatal(err)
	}
	return tree, mag, worm
}

func put(t *testing.T, tree *Tree, key string, ts uint64, val string) {
	t.Helper()
	err := tree.Insert(record.Version{
		Key:   record.StringKey(key),
		Time:  record.Timestamp(ts),
		Value: []byte(val),
	})
	if err != nil {
		t.Fatalf("insert %s@%d: %v", key, ts, err)
	}
}

func del(t *testing.T, tree *Tree, key string, ts uint64) {
	t.Helper()
	err := tree.Insert(record.Version{
		Key:       record.StringKey(key),
		Time:      record.Timestamp(ts),
		Tombstone: true,
	})
	if err != nil {
		t.Fatalf("delete %s@%d: %v", key, ts, err)
	}
}

func checkOK(t *testing.T, tree *Tree) {
	t.Helper()
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestEmptyTree(t *testing.T) {
	tree, _, _ := newTestTree(t, PolicyWOBTLike)
	checkOK(t, tree)
	if _, ok, err := tree.Get(record.StringKey("x")); err != nil || ok {
		t.Fatalf("Get on empty = %v, %v", ok, err)
	}
	if vs, err := tree.ScanAsOf(5, nil, record.InfiniteBound()); err != nil || len(vs) != 0 {
		t.Fatalf("ScanAsOf on empty = %v, %v", vs, err)
	}
	if tree.Stats().Height != 1 || tree.Stats().CurrentNodes != 1 {
		t.Errorf("stats: %+v", tree.Stats())
	}
}

func TestBasicCRUD(t *testing.T) {
	tree, _, _ := newTestTree(t, PolicyWOBTLike)
	put(t, tree, "acct1", 1, "100")
	put(t, tree, "acct2", 2, "200")
	put(t, tree, "acct1", 3, "150")
	checkOK(t, tree)

	v, ok, _ := tree.Get(record.StringKey("acct1"))
	if !ok || string(v.Value) != "150" {
		t.Fatalf("Get(acct1) = %v, %v", v, ok)
	}
	// Stepwise constant (Figure 1): the balance holds between updates.
	for at, want := range map[uint64]string{1: "100", 2: "100", 3: "150", 99: "150"} {
		v, ok, _ := tree.GetAsOf(record.StringKey("acct1"), record.Timestamp(at))
		if !ok || string(v.Value) != want {
			t.Errorf("GetAsOf(acct1,%d) = %v,%v want %s", at, v, ok, want)
		}
	}
	if _, ok, _ := tree.GetAsOf(record.StringKey("acct2"), 1); ok {
		t.Error("GetAsOf before insertion should miss")
	}
	del(t, tree, "acct2", 4)
	if _, ok, _ := tree.Get(record.StringKey("acct2")); ok {
		t.Error("Get after delete should miss")
	}
	if v, ok, _ := tree.GetAsOf(record.StringKey("acct2"), 3); !ok || string(v.Value) != "200" {
		t.Error("GetAsOf before delete should hit")
	}
	h, _ := tree.History(record.StringKey("acct2"))
	if len(h) != 2 || !h[1].Tombstone {
		t.Errorf("History(acct2) = %v", h)
	}
}

func TestValidation(t *testing.T) {
	tree, _, _ := newTestTree(t, PolicyWOBTLike)
	put(t, tree, "a", 10, "x")
	cases := []record.Version{
		{Key: nil, Time: 11},                                                      // empty key
		{Key: record.StringKey("b"), Time: 5},                                     // time regression
		{Key: record.StringKey("b"), Time: 0},                                     // zero time
		{Key: record.StringKey("b"), Time: record.TimePending},                    // pending without txn
		{Key: record.Key(make([]byte, 99)), Time: 11},                             // oversized key
		{Key: record.StringKey("b"), Time: 11, Value: make([]byte, 999)},          // oversized value
		{Key: record.StringKey("b"), Time: record.TimeInfinity, Value: []byte{1}}, // infinity
	}
	for i, v := range cases {
		if err := tree.Insert(v); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, v)
		}
	}
}

func TestLeafKeySplitInsertOnly(t *testing.T) {
	// Figure 5: an insert-only node must key split, and the new index
	// entries inherit the node's original start time.
	tree, _, worm := newTestTree(t, PolicyTimePref) // even time-preferring policy must key split
	for i := 0; i < 30; i++ {
		put(t, tree, fmt.Sprintf("k%02d", i), uint64(i+1), "val")
	}
	checkOK(t, tree)
	st := tree.Stats()
	if st.LeafKeySplits == 0 {
		t.Fatal("insert-only workload must key split")
	}
	if st.LeafTimeSplits != 0 || st.IndexTimeSplits != 0 {
		t.Errorf("insert-only workload must not time split: %+v", st)
	}
	if worm.Stats().SectorsBurned != 0 {
		t.Error("insert-only workload must not migrate anything")
	}
	root, _ := tree.ViewRoot()
	for _, e := range root.Entries {
		if e.Rect.Start != record.TimeZero {
			t.Errorf("entry start %s, want 0 (timestamp copied from previous entry)", e.Rect.Start)
		}
		if !e.Rect.IsCurrent() || !e.Child.IsMagnetic() {
			t.Errorf("insert-only entries must stay current: %v", e)
		}
	}
	for i := 0; i < 30; i++ {
		k := record.StringKey(fmt.Sprintf("k%02d", i))
		if _, ok, err := tree.Get(k); !ok || err != nil {
			t.Fatalf("Get(%s) = %v, %v", k, ok, err)
		}
	}
}

func TestLeafTimeSplitMigratesHistory(t *testing.T) {
	tree, _, worm := newTestTree(t, PolicyWOBTLike)
	// Update one key repeatedly alongside one other key: update-dominated.
	put(t, tree, "hot", 1, "v0")
	put(t, tree, "cold", 2, "c0")
	for i := 2; i < 40; i++ {
		put(t, tree, "hot", uint64(i+1), fmt.Sprintf("v%d", i))
	}
	checkOK(t, tree)
	st := tree.Stats()
	if st.LeafTimeSplits == 0 {
		t.Fatalf("update-heavy workload should time split: %+v", st)
	}
	if worm.Stats().SectorsBurned == 0 {
		t.Fatal("time splits must migrate nodes to the WORM")
	}
	if st.VersionsMigrated == 0 || st.HistoricalNodes == 0 {
		t.Errorf("migration stats empty: %+v", st)
	}
	// Every version remains reachable.
	h, err := tree.History(record.StringKey("hot"))
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 39 {
		t.Fatalf("History(hot) = %d versions, want 39", len(h))
	}
	for i, v := range h {
		if v.Time != record.Timestamp(i+1) && i > 0 {
			// times are 1,3,4,...,40 (2 went to cold)
			break
		}
	}
	// As-of queries across the whole history.
	for _, at := range []uint64{1, 5, 20, 40} {
		if _, ok, err := tree.GetAsOf(record.StringKey("hot"), record.Timestamp(at)); !ok || err != nil {
			t.Errorf("GetAsOf(hot,%d) = %v, %v", at, ok, err)
		}
	}
	if v, ok, _ := tree.Get(record.StringKey("cold")); !ok || string(v.Value) != "c0" {
		t.Errorf("Get(cold) = %v, %v", v, ok)
	}
}

func TestRedundancyClause3(t *testing.T) {
	// A record persisting across the split time must be in both nodes.
	tree, _, _ := newTestTree(t, PolicyWOBTLike) // split at now
	put(t, tree, "stable", 1, "forever")
	for i := 2; i < 40; i++ {
		put(t, tree, "churn", uint64(i), fmt.Sprintf("v%d", i))
	}
	checkOK(t, tree)
	if tree.Stats().RedundantVersions == 0 {
		t.Fatal("long-lived record should have been copied by clause 3")
	}
	// "stable" is still present and its history has exactly one version.
	if v, ok, _ := tree.Get(record.StringKey("stable")); !ok || string(v.Value) != "forever" {
		t.Fatalf("Get(stable) = %v, %v", v, ok)
	}
	h, _ := tree.History(record.StringKey("stable"))
	if len(h) != 1 {
		t.Fatalf("History(stable) = %v, want one distinct version", h)
	}
}

func TestSplitTimeChoiceLastUpdateAvoidsRedundantInserts(t *testing.T) {
	// §3.3 / Figure 6: with the split time pushed back to the last
	// update, trailing insertions are not carried into the historical
	// node and need no redundant copies.
	run := func(choice SplitTimeChoice) Stats {
		p := Policy{KeySplitFraction: 0.95, SplitTime: choice, IndexKeySplitFraction: 0.5}
		tree, _, _ := newTestTree(t, p)
		// Updates first, then trailing inserts until the node splits.
		put(t, tree, "u", 1, "a")
		put(t, tree, "u", 2, "b")
		put(t, tree, "u", 3, "c")
		for i := 0; i < 20; i++ {
			put(t, tree, fmt.Sprintf("i%02d", i), uint64(4+i), "x")
			if tree.Stats().LeafTimeSplits+tree.Stats().LeafTimeKeySplits > 0 {
				break
			}
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if tree.Stats().LeafTimeSplits+tree.Stats().LeafTimeKeySplits == 0 {
			t.Fatalf("scenario did not time split (choice=%v): %+v", choice, tree.Stats())
		}
		return tree.Stats()
	}
	nowStats := run(SplitAtNow)
	luStats := run(SplitAtLastUpdate)
	if luStats.RedundantVersions > nowStats.RedundantVersions {
		t.Errorf("last-update redundancy %d should be <= now redundancy %d",
			luStats.RedundantVersions, nowStats.RedundantVersions)
	}
	if luStats.VersionsMigrated >= nowStats.VersionsMigrated {
		t.Errorf("last-update should migrate fewer versions (%d vs %d): trailing inserts stay current",
			luStats.VersionsMigrated, nowStats.VersionsMigrated)
	}
}

func TestPendingVersionsNeverMigrate(t *testing.T) {
	tree, _, _ := newTestTree(t, PolicyTimePref)
	// A pending write sits in the leaf while committed churn forces
	// repeated time splits around it.
	if err := tree.Insert(record.Version{
		Key: record.StringKey("mine"), Time: record.TimePending, TxnID: 42, Value: []byte("draft"),
	}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 60; i++ {
		put(t, tree, "churn", uint64(i), fmt.Sprintf("v%d", i))
	}
	checkOK(t, tree)
	if tree.Stats().LeafTimeSplits == 0 {
		t.Fatal("scenario should have time split")
	}
	// The pending version must still be on the magnetic disk, findable,
	// and erasable.
	v, ok, err := tree.GetPending(record.StringKey("mine"), 42)
	if err != nil || !ok || string(v.Value) != "draft" {
		t.Fatalf("GetPending = %v, %v, %v", v, ok, err)
	}
	if _, ok, _ := tree.Get(record.StringKey("mine")); ok {
		t.Error("pending version must be invisible to committed reads")
	}
	if err := tree.AbortKey(record.StringKey("mine"), 42); err != nil {
		t.Fatalf("abort: %v", err)
	}
	if _, ok, _ := tree.GetPending(record.StringKey("mine"), 42); ok {
		t.Error("aborted version should be gone")
	}
	checkOK(t, tree)
}

func TestCommitStampsPendingVersion(t *testing.T) {
	tree, _, _ := newTestTree(t, PolicyWOBTLike)
	put(t, tree, "k", 5, "committed")
	if err := tree.Insert(record.Version{
		Key: record.StringKey("k"), Time: record.TimePending, TxnID: 7, Value: []byte("new"),
	}); err != nil {
		t.Fatal(err)
	}
	// Re-write by same transaction replaces the pending version.
	if err := tree.Insert(record.Version{
		Key: record.StringKey("k"), Time: record.TimePending, TxnID: 7, Value: []byte("newer"),
	}); err != nil {
		t.Fatal(err)
	}
	// A different transaction's pending write on the same key is refused.
	if err := tree.Insert(record.Version{
		Key: record.StringKey("k"), Time: record.TimePending, TxnID: 8, Value: []byte("conflict"),
	}); err == nil {
		t.Fatal("conflicting pending write should fail")
	}
	if err := tree.CommitKey(record.StringKey("k"), 7, 9); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := tree.Get(record.StringKey("k"))
	if !ok || string(v.Value) != "newer" || v.Time != 9 {
		t.Fatalf("Get after commit = %v, %v", v, ok)
	}
	if tree.Now() != 9 {
		t.Errorf("Now = %v, want 9", tree.Now())
	}
	checkOK(t, tree)
	// Committing again fails (no pending version left).
	if err := tree.CommitKey(record.StringKey("k"), 7, 10); err == nil {
		t.Error("double commit should fail")
	}
	if err := tree.AbortKey(record.StringKey("k"), 7); err == nil {
		t.Error("abort of committed version should fail")
	}
}

func TestDeepTreeGrowth(t *testing.T) {
	tree, _, _ := newTestTree(t, PolicyLastUpdate)
	n := 0
	for i := 0; i < 400; i++ {
		put(t, tree, fmt.Sprintf("key%04d", i*7%400), uint64(i+1), fmt.Sprintf("v%d", i))
		n++
	}
	checkOK(t, tree)
	if tree.Stats().Height < 3 {
		t.Fatalf("height = %d, expected a deep tree", tree.Stats().Height)
	}
	cur, hist, err := tree.CountNodes()
	if err != nil {
		t.Fatal(err)
	}
	if cur == 0 {
		t.Error("no current nodes counted")
	}
	if int(tree.Stats().CurrentNodes) != cur {
		t.Errorf("CurrentNodes stat %d != walked count %d", tree.Stats().CurrentNodes, cur)
	}
	if int(tree.Stats().HistoricalNodes) < hist {
		t.Errorf("HistoricalNodes stat %d < walked count %d", tree.Stats().HistoricalNodes, hist)
	}
}

func TestScanAsOfSnapshot(t *testing.T) {
	tree, _, _ := newTestTree(t, PolicyWOBTLike)
	for i := 0; i < 20; i++ {
		put(t, tree, fmt.Sprintf("k%02d", i), uint64(i+1), "old")
	}
	for i := 0; i < 20; i++ {
		put(t, tree, fmt.Sprintf("k%02d", i), uint64(21+i), "new")
	}
	checkOK(t, tree)
	vs, err := tree.ScanAsOf(20, nil, record.InfiniteBound())
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 20 {
		t.Fatalf("snapshot@20 size = %d, want 20", len(vs))
	}
	for _, v := range vs {
		if string(v.Value) != "old" {
			t.Errorf("snapshot@20 contains %s", v)
		}
	}
	vs, _ = tree.ScanAsOf(30, record.StringKey("k05"), record.KeyBound(record.StringKey("k15")))
	if len(vs) != 10 {
		t.Fatalf("range snapshot size = %d, want 10", len(vs))
	}
	want := map[string]string{}
	for i := 5; i < 15; i++ {
		if i < 10 {
			want[fmt.Sprintf("k%02d", i)] = "new" // updated at 21+i <= 30
		} else {
			want[fmt.Sprintf("k%02d", i)] = "old"
		}
	}
	for _, v := range vs {
		if want[string(v.Key)] != string(v.Value) {
			t.Errorf("snapshot@30 %s, want %s", v, want[string(v.Key)])
		}
	}
}

func TestDumpAndViews(t *testing.T) {
	tree, _, _ := newTestTree(t, PolicyWOBTLike)
	put(t, tree, "a", 1, "x")
	s, err := tree.Dump()
	if err != nil {
		t.Fatal(err)
	}
	if len(s) == 0 {
		t.Error("empty dump")
	}
	lv, err := tree.CurrentLeafView(record.StringKey("a"))
	if err != nil || !lv.Leaf || len(lv.Versions) != 1 {
		t.Errorf("CurrentLeafView = %+v, %v", lv, err)
	}
	if lv.String() == "" {
		t.Error("NodeView.String empty")
	}
}
