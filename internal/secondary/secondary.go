// Package secondary implements the secondary indexes of §3.6: each
// secondary index is itself a Time-Split B-tree whose records are
// <timestamp, secondary key, primary key> triples. An entry inherits the
// timestamp of the primary record change that caused it; the index spans
// the historical and current databases exactly like the primary index, and
// primary-data splits never touch it.
//
// Queries that only count or enumerate matches "can be answered using only
// the secondary time-split B-tree"; fetching records goes back through the
// primary index by <primary key, timestamp>.
package secondary

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/record"
	"repro/internal/storage"
)

// Index is one secondary index over a primary TSB-tree's records.
type Index struct {
	name string
	tree *core.Tree
}

// New creates a secondary index with its own TSB-tree on the given
// devices.
func New(name string, mag storage.PageStore, worm storage.WORMDevice, cfg core.Config) (*Index, error) {
	// Composite keys are skey + 0x00 + pkey; widen the key bound.
	if cfg.MaxKeySize == 0 {
		cfg.MaxKeySize = 64
	}
	cfg.MaxKeySize = 2*cfg.MaxKeySize + 1
	tree, err := core.New(mag, worm, cfg)
	if err != nil {
		return nil, err
	}
	return &Index{name: name, tree: tree}, nil
}

// Name returns the index's name.
func (ix *Index) Name() string { return ix.name }

// Image captures the index's tree metadata for checkpointing.
func (ix *Index) Image() core.TreeImage { return ix.tree.Image() }

// FromImage reattaches a secondary index to its devices.
func FromImage(name string, mag storage.PageStore, worm storage.WORMDevice, img core.TreeImage) (*Index, error) {
	tree, err := core.FromImage(mag, worm, img)
	if err != nil {
		return nil, err
	}
	return &Index{name: name, tree: tree}, nil
}

// Tree exposes the underlying TSB-tree (for stats and invariant checks).
func (ix *Index) Tree() *core.Tree { return ix.tree }

// composite builds the index record key: secondary key, a 0x00 separator,
// then primary key, so that entries order by secondary key first. The
// secondary key must not contain 0x00.
func composite(skey, pkey record.Key) (record.Key, error) {
	if bytes.IndexByte(skey, 0) >= 0 {
		return nil, fmt.Errorf("secondary: secondary key %q contains NUL", skey)
	}
	out := make(record.Key, 0, len(skey)+1+len(pkey))
	out = append(out, skey...)
	out = append(out, 0)
	out = append(out, pkey...)
	return out, nil
}

// Apply records a primary-record change: at commitTime, the record at pkey
// stopped having oldSkey (if oldOK) and started having newSkey (unless
// removed). Both transitions are versions in the secondary tree, stamped
// with the inherited timestamp.
//
//tsb:io -- inserting the transition can time-split and burn inline
func (ix *Index) Apply(commitTime record.Timestamp, pkey record.Key, oldSkey record.Key, oldOK bool, newSkey record.Key, removed bool) error {
	sameKey := oldOK && !removed && oldSkey.Equal(newSkey)
	if oldOK && !sameKey {
		ck, err := composite(oldSkey, pkey)
		if err != nil {
			return err
		}
		err = ix.tree.Insert(record.Version{Key: ck, Time: commitTime, Tombstone: true})
		if err != nil {
			return fmt.Errorf("secondary %s: retire old entry: %w", ix.name, err)
		}
	}
	if removed || sameKey {
		return nil
	}
	ck, err := composite(newSkey, pkey)
	if err != nil {
		return err
	}
	err = ix.tree.Insert(record.Version{Key: ck, Time: commitTime, Value: pkey.Clone()})
	if err != nil {
		return fmt.Errorf("secondary %s: post new entry: %w", ix.name, err)
	}
	return nil
}

// skeyRange returns the key range covering every composite key with the
// given secondary key.
func skeyRange(skey record.Key) (record.Key, record.Bound, error) {
	low, err := composite(skey, nil)
	if err != nil {
		return nil, record.Bound{}, err
	}
	high := make(record.Key, len(skey)+1)
	copy(high, skey)
	high[len(skey)] = 1 // smallest key after every skey+0x00+... composite
	return low, record.KeyBound(high), nil
}

// LookupAsOf returns the primary keys whose record carried skey at time
// at, sorted. It streams the composite-key range through a tree cursor
// instead of materializing the scan, so the page reads stay proportional
// to the number of matches.
func (ix *Index) LookupAsOf(skey record.Key, at record.Timestamp) ([]record.Key, error) {
	low, high, err := skeyRange(skey)
	if err != nil {
		return nil, err
	}
	var out []record.Key
	cur := ix.tree.NewCursor(at, low, high)
	for cur.Next() {
		out = append(out, record.Key(cur.Version().Value).Clone())
	}
	if err := cur.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// CountAsOf answers "how many records had a given secondary key at a given
// time using only the secondary time-split B-tree" (§3.6).
func (ix *Index) CountAsOf(skey record.Key, at record.Timestamp) (int, error) {
	pks, err := ix.LookupAsOf(skey, at)
	if err != nil {
		return 0, err
	}
	return len(pks), nil
}

// HistoryOf returns the timestamps at which pkey acquired (true) or lost
// (false) the secondary key skey, oldest first.
func (ix *Index) HistoryOf(skey, pkey record.Key) ([]record.Timestamp, []bool, error) {
	ck, err := composite(skey, pkey)
	if err != nil {
		return nil, nil, err
	}
	vs, err := ix.tree.History(ck)
	if err != nil {
		return nil, nil, err
	}
	times := make([]record.Timestamp, 0, len(vs))
	acquired := make([]bool, 0, len(vs))
	for _, v := range vs {
		times = append(times, v.Time)
		acquired = append(acquired, !v.Tombstone)
	}
	return times, acquired, nil
}
