package secondary

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/record"
	"repro/internal/storage"
)

func newIndex(t *testing.T) *Index {
	t.Helper()
	mag := storage.NewMagneticDisk(4096, storage.CostModel{})
	worm := storage.NewWORMDisk(storage.WORMConfig{SectorSize: 512})
	ix, err := New("dept", mag, worm, core.Config{Policy: core.PolicyLastUpdate, MaxKeySize: 32})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func k(s string) record.Key { return record.StringKey(s) }

func TestLookupAndCount(t *testing.T) {
	ix := newIndex(t)
	// emp1 and emp2 join "sales" at t=1,2; emp3 joins "eng" at t=3.
	if err := ix.Apply(1, k("emp1"), nil, false, k("sales"), false); err != nil {
		t.Fatal(err)
	}
	if err := ix.Apply(2, k("emp2"), nil, false, k("sales"), false); err != nil {
		t.Fatal(err)
	}
	if err := ix.Apply(3, k("emp3"), nil, false, k("eng"), false); err != nil {
		t.Fatal(err)
	}
	pks, err := ix.LookupAsOf(k("sales"), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pks) != 2 || !pks[0].Equal(k("emp1")) || !pks[1].Equal(k("emp2")) {
		t.Fatalf("sales@3 = %v", pks)
	}
	if n, _ := ix.CountAsOf(k("sales"), 1); n != 1 {
		t.Errorf("sales@1 count = %d, want 1", n)
	}
	if n, _ := ix.CountAsOf(k("eng"), 2); n != 0 {
		t.Errorf("eng@2 count = %d, want 0", n)
	}
	if n, _ := ix.CountAsOf(k("eng"), 3); n != 1 {
		t.Errorf("eng@3 count = %d, want 1", n)
	}
}

func TestSecondaryKeyChange(t *testing.T) {
	ix := newIndex(t)
	ix.Apply(1, k("emp1"), nil, false, k("sales"), false)
	// emp1 moves from sales to eng at t=5.
	if err := ix.Apply(5, k("emp1"), k("sales"), true, k("eng"), false); err != nil {
		t.Fatal(err)
	}
	if n, _ := ix.CountAsOf(k("sales"), 4); n != 1 {
		t.Error("emp1 should be in sales before the move")
	}
	if n, _ := ix.CountAsOf(k("sales"), 5); n != 0 {
		t.Error("emp1 should have left sales at t=5")
	}
	if n, _ := ix.CountAsOf(k("eng"), 5); n != 1 {
		t.Error("emp1 should be in eng from t=5")
	}
	times, acq, err := ix.HistoryOf(k("sales"), k("emp1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 || times[0] != 1 || times[1] != 5 || !acq[0] || acq[1] {
		t.Errorf("HistoryOf(sales,emp1) = %v %v", times, acq)
	}
}

func TestUnchangedSecondaryKeyPostsNothing(t *testing.T) {
	ix := newIndex(t)
	ix.Apply(1, k("emp1"), nil, false, k("sales"), false)
	// Value update that keeps the secondary field: no index churn.
	if err := ix.Apply(2, k("emp1"), k("sales"), true, k("sales"), false); err != nil {
		t.Fatal(err)
	}
	times, _, _ := ix.HistoryOf(k("sales"), k("emp1"))
	if len(times) != 1 {
		t.Fatalf("unchanged skey should post nothing, history = %v", times)
	}
}

func TestRecordRemoval(t *testing.T) {
	ix := newIndex(t)
	ix.Apply(1, k("emp1"), nil, false, k("sales"), false)
	if err := ix.Apply(4, k("emp1"), k("sales"), true, nil, true); err != nil {
		t.Fatal(err)
	}
	if n, _ := ix.CountAsOf(k("sales"), 4); n != 0 {
		t.Error("deleted record should leave the index as of the delete time")
	}
	if n, _ := ix.CountAsOf(k("sales"), 3); n != 1 {
		t.Error("deleted record should remain visible in the past")
	}
}

func TestPrefixSafety(t *testing.T) {
	ix := newIndex(t)
	// "a" and "ab" must not contaminate each other's lookups even though
	// one is a prefix of the other.
	ix.Apply(1, k("p1"), nil, false, k("a"), false)
	ix.Apply(2, k("p2"), nil, false, k("ab"), false)
	if n, _ := ix.CountAsOf(k("a"), 5); n != 1 {
		t.Errorf("lookup of 'a' = %d, want 1", n)
	}
	if n, _ := ix.CountAsOf(k("ab"), 5); n != 1 {
		t.Errorf("lookup of 'ab' = %d, want 1", n)
	}
}

func TestNULSecondaryKeyRejected(t *testing.T) {
	ix := newIndex(t)
	if err := ix.Apply(1, k("p"), nil, false, record.Key{0x61, 0x00, 0x62}, false); err == nil {
		t.Error("NUL in secondary key should be rejected")
	}
	if _, err := ix.LookupAsOf(record.Key{0x00}, 1); err == nil {
		t.Error("NUL in lookup key should be rejected")
	}
}

func TestManyEntriesSplitAndStayQueryable(t *testing.T) {
	ix := newIndex(t)
	ts := record.Timestamp(0)
	// 30 departments x 20 employees, with everyone moving once.
	for d := 0; d < 30; d++ {
		for e := 0; e < 20; e++ {
			ts++
			dep := k(fmt.Sprintf("dept%02d", d))
			emp := k(fmt.Sprintf("emp%03d", d*20+e))
			if err := ix.Apply(ts, emp, nil, false, dep, false); err != nil {
				t.Fatal(err)
			}
		}
	}
	joinEnd := ts
	for i := 0; i < 200; i++ {
		ts++
		emp := k(fmt.Sprintf("emp%03d", i))
		oldDep := k(fmt.Sprintf("dept%02d", i/20))
		if err := ix.Apply(ts, emp, oldDep, true, k("dept99"), false); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Tree().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if n, _ := ix.CountAsOf(k("dept00"), joinEnd); n != 20 {
		t.Errorf("dept00 at join end = %d, want 20", n)
	}
	if n, _ := ix.CountAsOf(k("dept00"), ts); n != 0 {
		t.Errorf("dept00 after moves = %d, want 0", n)
	}
	if n, _ := ix.CountAsOf(k("dept99"), ts); n != 200 {
		t.Errorf("dept99 after moves = %d, want 200", n)
	}
	if ix.Name() != "dept" {
		t.Error("Name wrong")
	}
}
