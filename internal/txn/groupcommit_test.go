package txn

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/record"
	"repro/internal/storage"
)

// recordingLog captures every batch AppendBatch receives; an optional
// per-append delay widens the batching window, and a scheduled error
// fails one append.
type recordingLog struct {
	mu      sync.Mutex
	batches [][]CommitRecord
	delay   time.Duration
	failMsg string // non-empty = next append fails
}

func (l *recordingLog) AppendBatch(recs []CommitRecord) error {
	if l.delay > 0 {
		time.Sleep(l.delay)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failMsg != "" {
		msg := l.failMsg
		l.failMsg = ""
		return errors.New(msg)
	}
	cp := make([]CommitRecord, len(recs))
	copy(cp, recs)
	l.batches = append(l.batches, cp)
	return nil
}

func (l *recordingLog) snapshot() [][]CommitRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([][]CommitRecord, len(l.batches))
	copy(out, l.batches)
	return out
}

func TestCommitLogReceivesStampedWriteSet(t *testing.T) {
	m, _ := newManager(t)
	log := &recordingLog{}
	m.SetCommitLog(log)

	tx := m.Begin()
	if err := tx.Put(record.StringKey("b"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Put(record.StringKey("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete(record.StringKey("c")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	batches := log.snapshot()
	if len(batches) != 1 || len(batches[0]) != 1 {
		t.Fatalf("batches = %v", batches)
	}
	rec := batches[0][0]
	if rec.TxnID != tx.ID() || rec.Time != tx.CommitTime() {
		t.Errorf("record header = %+v, want txn %d at %v", rec, tx.ID(), tx.CommitTime())
	}
	if len(rec.Versions) != 3 {
		t.Fatalf("record has %d versions, want 3", len(rec.Versions))
	}
	wantKeys := []string{"a", "b", "c"}
	for i, v := range rec.Versions {
		if string(v.Key) != wantKeys[i] {
			t.Errorf("version %d key = %s, want %s (key order)", i, v.Key, wantKeys[i])
		}
		if v.Time != rec.Time {
			t.Errorf("version %d time = %v, want stamped %v", i, v.Time, rec.Time)
		}
	}
	if !rec.Versions[2].Tombstone {
		t.Error("delete should log a tombstone version")
	}
	// A transaction with no writes logs nothing.
	if err := m.Begin().Commit(); err != nil {
		t.Fatal(err)
	}
	if got := log.snapshot(); len(got) != 1 {
		t.Errorf("empty commit appended to the log: %v", got)
	}
}

func TestCommitLogFailureAbortsWholeBatch(t *testing.T) {
	m, _ := newManager(t)
	log := &recordingLog{failMsg: "injected append failure"}
	m.SetCommitLog(log)
	before := m.Now()

	tx := m.Begin()
	if err := tx.Put(record.StringKey("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("commit should fail when the log append fails")
	}
	if m.Now() != before {
		t.Errorf("clock advanced to %v after failed append", m.Now())
	}
	if tx.CommitTime() != 0 {
		t.Errorf("failed commit reports time %v", tx.CommitTime())
	}
	// The pending version is erased and the lock released.
	if _, ok, _ := m.ReadOnly().Get(record.StringKey("k")); ok {
		t.Error("unlogged write visible after failed append")
	}
	tx2 := m.Begin()
	if err := tx2.Put(record.StringKey("k"), []byte("v2")); err != nil {
		t.Fatalf("lock leaked: %v", err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Committed != 1 || st.Aborted != 1 {
		t.Errorf("stats = %+v, want 1 committed / 1 aborted", st)
	}
}

func TestGroupCommitBatchesConcurrentCommitters(t *testing.T) {
	m, _ := newManager(t)
	// The sync delay widens the batching window the way a real fsync
	// does, making amortization deterministic enough to assert on.
	log := &recordingLog{delay: 2 * time.Millisecond}
	m.SetCommitLog(log)

	const workers = 8
	const perWorker = 20
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				k := record.StringKey(fmt.Sprintf("w%02d-%03d", w, i))
				if err := m.Update(func(tx *Txn) error { return tx.Put(k, []byte("v")) }); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := m.Stats()
	if st.Committed != workers*perWorker {
		t.Fatalf("committed = %d, want %d", st.Committed, workers*perWorker)
	}
	batches := log.snapshot()
	if uint64(len(batches)) != st.CommitBatches {
		t.Errorf("log saw %d batches, stats say %d", len(batches), st.CommitBatches)
	}
	// With 8 workers committing against a 2ms append, batches must form:
	// the whole point of group commit. Demand an average of >= 2
	// committers per append (the acceptance bar) with margin for the
	// serial head and tail of the run.
	avg := float64(st.Committed) / float64(st.CommitBatches)
	if avg < 2 {
		t.Errorf("amortization %.2f commits/batch, want >= 2 (batches=%d)", avg, st.CommitBatches)
	}

	// Batches carry consecutive timestamps with one clock advance each:
	// replaying the log in order must reproduce every commit time with
	// no gaps or duplicates.
	var last record.Timestamp
	for _, batch := range batches {
		for _, rec := range batch {
			if rec.Time != last+1 {
				t.Fatalf("commit times not consecutive: %v after %v", rec.Time, last)
			}
			last = rec.Time
		}
	}
	if last != m.Now() {
		t.Errorf("last logged time %v != clock %v", last, m.Now())
	}
}

// divergingStore fails CommitKey for one key, once, to force a posting
// failure after the batch was durably logged.
type divergingStore struct {
	Store
	failKey string
	fired   bool
}

func (f *divergingStore) CommitKey(k record.Key, txnID uint64, ct record.Timestamp) error {
	if string(k) == f.failKey && !f.fired {
		f.fired = true
		return fmt.Errorf("injected store failure for %s", k)
	}
	return f.Store.CommitKey(k, txnID, ct)
}

func TestPostingFailureAfterLogPoisonsCommits(t *testing.T) {
	mag := storageNew(t)
	m := NewManager(&divergingStore{Store: mag, failKey: "k"}, 0)
	log := &recordingLog{}
	m.SetCommitLog(log)

	// The record reaches the durable log, then the store refuses it:
	// the commit outcome is "unknown" and the manager must stop
	// committing — runtime state has diverged from what recovery would
	// replay.
	tx := m.Begin()
	if err := tx.Put(record.StringKey("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("commit should surface the posting failure")
	}
	if got := log.snapshot(); len(got) != 1 {
		t.Fatalf("the failed commit's record should be durable: %v", got)
	}
	// Every later commit is refused with the divergence error, but
	// leaves no pending garbage or held locks behind.
	tx2 := m.Begin()
	if err := tx2.Put(record.StringKey("other"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	err := tx2.Commit()
	if err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("poisoned manager commit = %v, want divergence error", err)
	}
	if _, ok, _ := m.ReadOnly().Get(record.StringKey("other")); ok {
		t.Error("refused commit left data visible")
	}
	if got := log.snapshot(); len(got) != 1 {
		t.Errorf("poisoned manager appended to the log: %v", got)
	}
	// Quiesce refuses too: a checkpoint taken now would persist the
	// diverged state and truncate the redo record recovery needs.
	if err := m.Quiesce(func() error { t.Error("Quiesce ran on a diverged manager"); return nil }); err == nil {
		t.Fatal("Quiesce on a diverged manager should fail")
	}
	// Without a commit log, a posting failure keeps the pre-durability
	// semantics: the transaction aborts and the manager keeps going
	// (covered by TestCommitFailureReleasesLocksAndBurnsTimestamp).
}

// storageNew builds a latched single-tree store for the poisoning test.
func storageNew(t *testing.T) Store {
	t.Helper()
	mag := storage.NewMagneticDisk(4096, storage.CostModel{})
	worm := storage.NewWORMDisk(storage.WORMConfig{SectorSize: 512})
	tree, err := core.New(mag, worm, core.Config{Policy: core.PolicyLastUpdate, MaxKeySize: 32})
	if err != nil {
		t.Fatal(err)
	}
	return NewLatchedStore(tree)
}

func TestCommitHookPanicDoesNotStrandLeadership(t *testing.T) {
	m, _ := newManager(t)
	m.SetCommitHook(func(ct record.Timestamp, oldV record.Version, oldOK bool, newV record.Version) error {
		if string(newV.Key) == "boom" {
			panic("extractor exploded")
		}
		return nil
	})
	tx := m.Begin()
	if err := tx.Put(record.StringKey("boom"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// The panic surfaces as an ordinary commit error, not an unwind of
	// the batch leader.
	if err := tx.Commit(); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("commit with panicking hook = %v", err)
	}
	// The system keeps committing: the leadership token was released
	// and the key's lock dropped.
	tx2 := m.Begin()
	if err := tx2.Put(record.StringKey("fine"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatalf("commit after hook panic: %v", err)
	}
}

func TestActiveUpdatersCountsMidCommit(t *testing.T) {
	m, _ := newManager(t)
	release := make(chan struct{})
	m.SetCommitLog(commitLogFunc(func([]CommitRecord) error {
		<-release
		return nil
	}))
	tx := m.Begin()
	if err := tx.Put(record.StringKey("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- tx.Commit() }()
	// While the commit is mid-flight (parked in the log append), the
	// updater must still be counted: SaveTo's quiescence guard depends
	// on it.
	for i := 0; i < 100; i++ {
		if n := m.ActiveUpdaters(); n != 1 {
			t.Fatalf("mid-commit ActiveUpdaters = %d, want 1", n)
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if n := m.ActiveUpdaters(); n != 0 {
		t.Fatalf("post-commit ActiveUpdaters = %d", n)
	}
}

// commitLogFunc adapts a function to CommitLog.
type commitLogFunc func([]CommitRecord) error

func (f commitLogFunc) AppendBatch(recs []CommitRecord) error { return f(recs) }

func TestUpdateAbortsOnPanic(t *testing.T) {
	m, _ := newManager(t)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic should propagate out of Update")
			}
		}()
		_ = m.Update(func(tx *Txn) error {
			if err := tx.Put(record.StringKey("k"), []byte("v")); err != nil {
				return err
			}
			panic("user fn exploded")
		})
	}()
	// The transaction was aborted on the way out: no active updater
	// lingers (SaveTo's quiescence guard depends on this), the lock is
	// free, and nothing is visible.
	if n := m.ActiveUpdaters(); n != 0 {
		t.Fatalf("ActiveUpdaters after panic = %d", n)
	}
	if _, ok, _ := m.ReadOnly().Get(record.StringKey("k")); ok {
		t.Error("panicked transaction's write visible")
	}
	if err := m.Update(func(tx *Txn) error { return tx.Put(record.StringKey("k"), []byte("v2")) }); err != nil {
		t.Fatalf("lock leaked after panic: %v", err)
	}
}

func TestActiveUpdatersTracksLifecycle(t *testing.T) {
	m, _ := newManager(t)
	if n := m.ActiveUpdaters(); n != 0 {
		t.Fatalf("fresh manager has %d active updaters", n)
	}
	tx1 := m.Begin()
	tx2 := m.Begin()
	if n := m.ActiveUpdaters(); n != 2 {
		t.Fatalf("after two begins: %d", n)
	}
	if err := tx1.Put(record.StringKey("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
	if n := m.ActiveUpdaters(); n != 0 {
		t.Fatalf("after commit+abort: %d", n)
	}
	// Readers do not count.
	m.ReadOnly()
	if n := m.ActiveUpdaters(); n != 0 {
		t.Fatalf("reader counted as updater: %d", n)
	}
}
