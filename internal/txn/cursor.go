package txn

import (
	"errors"
	"iter"
	"slices"

	"repro/internal/core"
	"repro/internal/record"
)

// ScanOptions configures a streaming read.
type ScanOptions struct {
	// At overrides the read transaction's snapshot timestamp for this
	// scan (0 keeps the transaction's own timestamp). Like ReadAt, any
	// At <= Now() yields a consistent snapshot.
	At record.Timestamp

	// From/To, when either is nonzero, switch the cursor to the
	// temporal range query: it yields the versions of each key valid at
	// any moment in [From, To), ordered by (key, time) — ScanRange's
	// contract, streamed one key-range shard at a time. From/To cannot
	// be combined with At.
	From, To record.Timestamp

	// After, when non-nil, starts the scan strictly after this key,
	// overriding the low bound: the pagination resume position ("the
	// last key of the previous page"). Ignored by reverse scans, whose
	// resume position is the high bound.
	After record.Key

	// Limit bounds how many versions the cursor yields (0 = no limit).
	Limit int

	// Reverse yields versions in descending order (descending (key,
	// time) in window mode).
	Reverse bool
}

// ErrCursorOptions is returned by a cursor whose options conflict.
var ErrCursorOptions = errors.New("txn: ScanOptions.At cannot be combined with From/To")

// CursorStore is the streaming extension of Store: it serves a snapshot
// one latch-scoped page at a time (one leaf per call, found by one
// root-to-leaf descent). *core.Tree and the db layer's shard router
// implement it; a Store without it falls back to a materializing scan.
type CursorStore interface {
	Store
	ScanPageAsOf(at record.Timestamp, low record.Key, high record.Bound, reverse bool) (core.Page, error)
}

// PartedStore is implemented by stores whose temporal range scans split
// into independently latched parts in key order (the db layer's shard
// router: one part per key-range shard). A window cursor over a
// PartedStore materializes one part at a time instead of the whole
// result.
type PartedStore interface {
	RangeParts(low record.Key, high record.Bound) int
	ScanRangePart(part int, low record.Key, high record.Bound, from, to record.Timestamp) ([]record.Version, error)
}

// WindowCursorStore is the streaming extension of the temporal range
// query: one key-paged, latch-scoped batch of ScanRange per call, with
// the ScanPageAsOf resume contract (NextLow/More). A forward window
// cursor over a WindowCursorStore streams page by page — the time-window
// pushdown — instead of materializing whole shard parts; stores without
// it (and reverse window scans) keep the parted path. *core.Tree and the
// db layer's shard router implement it.
type WindowCursorStore interface {
	ScanRangePage(low record.Key, high record.Bound, from, to record.Timestamp) (core.Page, error)
}

// Cursor is a lazy, resumable read: versions stream in key order (or in
// (key, time) order in window mode) as Next is called, instead of
// arriving as one materialized slice.
//
// No latch is held between Next calls. Each Next holds at most one shard
// latch, for the duration of a single leaf-page read (snapshot mode) or
// a single shard's window scan (window mode); the snapshot-timestamp
// contract survives the latch hand-offs because versions visible at the
// cursor's timestamp are immutable. Abandoning a cursor mid-iteration
// therefore leaks nothing and can never block a writer; Close exists to
// make early termination explicit.
//
// A Cursor must be confined to one goroutine at a time, like the ReadTxn
// that produced it.
type Cursor struct {
	store Store
	at    record.Timestamp
	low   record.Key
	high  record.Bound
	opts  ScanOptions

	// window-mode progress: parts remaining, next part to fetch. When
	// paged is set the cursor streams ScanRangePage batches through the
	// (low, high) window instead of counting parts.
	window bool
	paged  bool
	part   int
	parts  int

	buf    []record.Version
	pos    int
	n      int
	done   bool
	closed bool
	err    error
}

// newCursor builds a cursor over store; at is the snapshot timestamp the
// producing transaction carries.
func newCursor(store Store, at record.Timestamp, low record.Key, high record.Bound, opts ScanOptions) *Cursor {
	if opts.After != nil && !opts.Reverse {
		low = opts.After.Successor()
	}
	c := &Cursor{store: store, at: at, low: low.Clone(), high: high, opts: opts}
	if opts.From != 0 || opts.To != 0 {
		if opts.At != 0 {
			c.err = ErrCursorOptions
			return c
		}
		c.window = true
		if _, ok := store.(WindowCursorStore); ok && !opts.Reverse {
			c.paged = true
		} else {
			c.parts = 1
			if ps, ok := store.(PartedStore); ok {
				c.parts = ps.RangeParts(c.low, c.high)
			}
		}
		if opts.To <= opts.From {
			c.done = true // empty time window, like ScanRange
		}
		return c
	}
	if opts.At != 0 {
		c.at = opts.At
	}
	return c
}

// Cursor opens a streaming read over keys in [low, high) at the
// transaction's snapshot timestamp (or as directed by opts). It takes no
// logical locks, like every read-only transaction.
func (r *ReadTxn) Cursor(low record.Key, high record.Bound, opts ScanOptions) *Cursor {
	return newCursor(r.m.store, r.at, low, high, opts)
}

// Range returns a Go iterator over the versions a Cursor with the same
// arguments would yield. A non-nil error, if any, is yielded as the
// final pair. Breaking out of the loop early releases nothing because
// nothing is held — see Cursor.
func (r *ReadTxn) Range(low record.Key, high record.Bound, opts ScanOptions) iter.Seq2[record.Version, error] {
	return func(yield func(record.Version, error) bool) {
		c := r.Cursor(low, high, opts)
		defer c.Close()
		for c.Next() {
			if !yield(c.Version(), nil) {
				return
			}
		}
		if err := c.Err(); err != nil {
			yield(record.Version{}, err)
		}
	}
}

// Next advances to the next version and reports whether one is
// available. It returns false once the window is exhausted, the Limit is
// reached, the cursor is closed, or an error occurred (see Err).
func (c *Cursor) Next() bool {
	if c.err != nil || c.closed {
		return false
	}
	if c.opts.Limit > 0 && c.n >= c.opts.Limit {
		return false
	}
	for {
		if c.pos < len(c.buf) {
			c.pos++
			c.n++
			return true
		}
		if c.done {
			return false
		}
		if err := c.fill(); err != nil {
			c.err = err
			return false
		}
	}
}

// fill fetches the next latch-scoped batch: one leaf page in snapshot
// mode, one part's window scan in window mode, or — for a Store without
// streaming support — the whole materialized result at once.
func (c *Cursor) fill() error {
	if c.window {
		return c.fillWindow()
	}
	cs, ok := c.store.(CursorStore)
	if !ok {
		vs, err := c.store.ScanAsOf(c.at, c.low, c.high)
		if err != nil {
			return err
		}
		if c.opts.Reverse {
			slices.Reverse(vs)
		}
		c.buf, c.pos, c.done = vs, 0, true
		return nil
	}
	p, err := cs.ScanPageAsOf(c.at, c.low, c.high, c.opts.Reverse)
	if err != nil {
		return err
	}
	c.buf, c.pos = p.Versions, 0
	c.low, c.high, c.done = p.Advance(c.low, c.high, c.opts.Reverse)
	return nil
}

// fillWindow fetches the next latch-scoped batch of a temporal range
// query: one key page (forward scans over a WindowCursorStore) or one
// part (parts run back to front when reversing).
func (c *Cursor) fillWindow() error {
	if c.paged {
		p, err := c.store.(WindowCursorStore).ScanRangePage(c.low, c.high, c.opts.From, c.opts.To)
		if err != nil {
			return err
		}
		c.buf, c.pos = p.Versions, 0
		c.low, c.high, c.done = p.Advance(c.low, c.high, false)
		return nil
	}
	if c.part >= c.parts {
		c.done = true
		return nil
	}
	part := c.part
	if c.opts.Reverse {
		part = c.parts - 1 - c.part
	}
	var vs []record.Version
	var err error
	if ps, ok := c.store.(PartedStore); ok {
		vs, err = ps.ScanRangePart(part, c.low, c.high, c.opts.From, c.opts.To)
	} else {
		vs, err = c.store.ScanRange(c.low, c.high, c.opts.From, c.opts.To)
	}
	if err != nil {
		return err
	}
	if c.opts.Reverse {
		slices.Reverse(vs)
	}
	c.part++
	c.buf, c.pos = vs, 0
	if c.part >= c.parts {
		c.done = true
	}
	return nil
}

// Version returns the version the cursor is positioned on. It must only
// be called after a successful Next.
func (c *Cursor) Version() record.Version { return c.buf[c.pos-1] }

// Err returns the first error the cursor hit, if any.
func (c *Cursor) Err() error { return c.err }

// Timestamp returns the snapshot time the cursor reads at (0 in window
// mode, where From/To select versions instead).
func (c *Cursor) Timestamp() record.Timestamp {
	if c.window {
		return 0
	}
	return c.at
}

// Close terminates the cursor. It is idempotent and always safe: a
// cursor holds no latch between Next calls, so Close releases no
// resources — it only makes further Next calls return false.
func (c *Cursor) Close() error {
	c.closed = true
	return nil
}

// Collect drains the cursor into a slice: the bridge from the streaming
// API back to the materializing one. The legacy Scan/ScanRange methods
// are implemented with it.
func (c *Cursor) Collect() ([]record.Version, error) {
	var out []record.Version
	for c.Next() {
		out = append(out, c.Version())
	}
	if c.err != nil {
		return nil, c.err
	}
	return out, nil
}

var (
	_ CursorStore       = (*core.Tree)(nil)
	_ WindowCursorStore = (*core.Tree)(nil)
)
