package txn

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/record"
)

// seedKeys commits n keys k000..k(n-1), one commit each, value = key.
func seedKeys(t *testing.T, m *Manager, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		k := record.StringKey(fmt.Sprintf("k%03d", i))
		if err := m.Update(func(tx *Txn) error { return tx.Put(k, []byte(k)) }); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCursorStreamsSnapshot(t *testing.T) {
	m, _ := newManager(t)
	seedKeys(t, m, 40)
	r := m.ReadOnly()
	want, err := r.Scan(nil, record.InfiniteBound())
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 40 {
		t.Fatalf("scan = %d versions, want 40", len(want))
	}

	got, err := r.Cursor(nil, record.InfiniteBound(), ScanOptions{}).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("cursor = %d versions, scan %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Key.Equal(want[i].Key) || got[i].Time != want[i].Time {
			t.Fatalf("cursor[%d] = %v, scan %v", i, got[i], want[i])
		}
	}

	// Reverse yields the exact mirror.
	rev, err := r.Cursor(nil, record.InfiniteBound(), ScanOptions{Reverse: true}).Collect()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !rev[i].Key.Equal(want[len(want)-1-i].Key) {
			t.Fatalf("reverse cursor[%d] = %s", i, rev[i].Key)
		}
	}

	// Limit truncates the same sequence.
	lim, err := r.Cursor(nil, record.InfiniteBound(), ScanOptions{Limit: 7}).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(lim) != 7 || !lim[6].Key.Equal(want[6].Key) {
		t.Fatalf("limit cursor = %d versions ending %s", len(lim), lim[len(lim)-1].Key)
	}
}

func TestCursorSnapshotIsolationAcrossNext(t *testing.T) {
	m, _ := newManager(t)
	seedKeys(t, m, 20)
	r := m.ReadOnly()
	c := r.Cursor(nil, record.InfiniteBound(), ScanOptions{})
	if !c.Next() {
		t.Fatal(c.Err())
	}
	// Commits that land mid-iteration are invisible at the cursor's
	// timestamp: no latch is held between Next calls, the timestamp is
	// the isolation mechanism.
	if err := m.Update(func(tx *Txn) error {
		return tx.Put(record.StringKey("k005"), []byte("overwritten"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(func(tx *Txn) error {
		return tx.Put(record.StringKey("zzz"), []byte("new"))
	}); err != nil {
		t.Fatal(err)
	}
	n := 1
	for c.Next() {
		v := c.Version()
		if string(v.Value) == "overwritten" || v.Key.Equal(record.StringKey("zzz")) {
			t.Fatalf("cursor at t=%d observed post-snapshot commit %s", c.Timestamp(), v)
		}
		n++
	}
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
	if n != 20 {
		t.Fatalf("cursor yielded %d versions, want 20", n)
	}
}

func TestCursorWindowMatchesScanRange(t *testing.T) {
	m, _ := newManager(t)
	seedKeys(t, m, 10)
	for round := 0; round < 3; round++ {
		for i := 0; i < 10; i += 2 {
			k := record.StringKey(fmt.Sprintf("k%03d", i))
			if err := m.Update(func(tx *Txn) error {
				return tx.Put(k, []byte(fmt.Sprintf("r%d", round)))
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	want, err := m.ScanRange(nil, record.InfiniteBound(), 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadOnly().Cursor(nil, record.InfiniteBound(), ScanOptions{From: 5, To: 20}).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("window cursor = %d versions, ScanRange %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Key.Equal(want[i].Key) || got[i].Time != want[i].Time {
			t.Fatalf("window cursor[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Empty window, like ScanRange.
	if vs, err := m.ReadOnly().Cursor(nil, record.InfiniteBound(), ScanOptions{From: 9, To: 9}).Collect(); err != nil || len(vs) != 0 {
		t.Fatalf("empty window cursor = %d versions, err %v", len(vs), err)
	}
}

func TestCursorOptionConflict(t *testing.T) {
	m, _ := newManager(t)
	seedKeys(t, m, 3)
	c := m.ReadOnly().Cursor(nil, record.InfiniteBound(), ScanOptions{At: 1, From: 1, To: 2})
	if c.Next() {
		t.Fatal("conflicting options must not yield versions")
	}
	if !errors.Is(c.Err(), ErrCursorOptions) {
		t.Fatalf("Err = %v, want ErrCursorOptions", c.Err())
	}
}

func TestRangeIteratorEarlyBreak(t *testing.T) {
	m, _ := newManager(t)
	seedKeys(t, m, 30)
	r := m.ReadOnly()
	n := 0
	for v, err := range r.Range(nil, record.InfiniteBound(), ScanOptions{}) {
		if err != nil {
			t.Fatal(err)
		}
		if len(v.Key) == 0 {
			t.Fatal("empty key from Range")
		}
		n++
		if n == 5 {
			break
		}
	}
	if n != 5 {
		t.Fatalf("broke after %d versions, want 5", n)
	}
	// The manager stays fully usable after the abandoned iteration.
	if err := m.Update(func(tx *Txn) error {
		return tx.Put(record.StringKey("after"), []byte("x"))
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCursorAfterResume(t *testing.T) {
	m, _ := newManager(t)
	seedKeys(t, m, 12)
	r := m.ReadOnly()
	want, err := r.Scan(nil, record.InfiniteBound())
	if err != nil {
		t.Fatal(err)
	}
	// Page through with After = last key seen; no row repeats, none skip.
	var got []record.Version
	var after record.Key
	for {
		vs, err := r.Cursor(nil, record.InfiniteBound(), ScanOptions{After: after, Limit: 5}).Collect()
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) == 0 {
			break
		}
		got = append(got, vs...)
		after = vs[len(vs)-1].Key
	}
	if len(got) != len(want) {
		t.Fatalf("paginated %d versions, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Key.Equal(want[i].Key) {
			t.Fatalf("page resume broke at %d: %s vs %s", i, got[i].Key, want[i].Key)
		}
	}
	// After overrides low, exclusively: resuming after a key must not
	// re-yield it.
	vs, err := r.Cursor(nil, record.InfiniteBound(), ScanOptions{After: want[0].Key, Limit: 1}).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || !vs[0].Key.Equal(want[1].Key) {
		t.Fatalf("After resume yielded %v, want %s", vs, want[1].Key)
	}
}

func TestCursorAtOverride(t *testing.T) {
	m, _ := newManager(t)
	seedKeys(t, m, 6) // commit times 1..6
	r := m.ReadOnly() // snapshot at 6
	got, err := r.Cursor(nil, record.InfiniteBound(), ScanOptions{At: 3}).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("cursor at t=3 sees %d versions, want 3", len(got))
	}
}
