package txn

import (
	"slices"
	"sync"

	"repro/internal/core"
	"repro/internal/record"
)

// LatchedStore makes a single-goroutine Store (a bare *core.Tree) safe
// for concurrent use by wrapping every operation in a reader/writer
// latch: mutations exclusive, reads shared. The db layer's key-range
// shard router generalizes this to one latch per shard; LatchedStore is
// the single-shard degenerate case, handy for tests and tools that drive
// a Manager over one tree.
type LatchedStore struct {
	mu sync.RWMutex //tsb:latch level=5 name=store
	s  Store
}

// NewLatchedStore wraps s in a latch.
func NewLatchedStore(s Store) *LatchedStore { return &LatchedStore{s: s} }

func (l *LatchedStore) Insert(v record.Version) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	//tsb:allow latchio -- single-latch store: an inline time-split burn has no background migrator to defer to
	return l.s.Insert(v)
}

func (l *LatchedStore) CommitKey(k record.Key, txnID uint64, commitTime record.Timestamp) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.s.CommitKey(k, txnID, commitTime)
}

func (l *LatchedStore) AbortKey(k record.Key, txnID uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.s.AbortKey(k, txnID)
}

func (l *LatchedStore) GetPending(k record.Key, txnID uint64) (record.Version, bool, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.s.GetPending(k, txnID)
}

func (l *LatchedStore) Get(k record.Key) (record.Version, bool, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.s.Get(k)
}

func (l *LatchedStore) GetAsOf(k record.Key, at record.Timestamp) (record.Version, bool, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.s.GetAsOf(k, at)
}

func (l *LatchedStore) ScanAsOf(at record.Timestamp, low record.Key, high record.Bound) ([]record.Version, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.s.ScanAsOf(at, low, high)
}

func (l *LatchedStore) History(k record.Key) ([]record.Version, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.s.History(k)
}

func (l *LatchedStore) ScanRange(low record.Key, high record.Bound, from, to record.Timestamp) ([]record.Version, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.s.ScanRange(low, high, from, to)
}

// ScanPageAsOf streams one leaf page under a short shared latch, held
// only for the duration of this call: the single-shard form of the
// incremental latch hand-off the db layer's shard router performs.
// When the wrapped store cannot stream, the page is the whole
// materialized scan (with More=false).
func (l *LatchedStore) ScanPageAsOf(at record.Timestamp, low record.Key, high record.Bound, reverse bool) (core.Page, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if cs, ok := l.s.(CursorStore); ok {
		return cs.ScanPageAsOf(at, low, high, reverse)
	}
	vs, err := l.s.ScanAsOf(at, low, high)
	if err != nil {
		return core.Page{}, err
	}
	if reverse {
		slices.Reverse(vs)
	}
	return core.Page{Versions: vs}, nil
}

// Diff forwards to the wrapped store when it supports time-travel diffs.
func (l *LatchedStore) Diff(low record.Key, high record.Bound, from, to record.Timestamp) ([]core.Change, error) {
	differ, ok := l.s.(Differ)
	if !ok {
		return nil, errNoDiff(l.s)
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	return differ.Diff(low, high, from, to)
}

var (
	_ Store       = (*LatchedStore)(nil)
	_ Differ      = (*LatchedStore)(nil)
	_ CursorStore = (*LatchedStore)(nil)
)
