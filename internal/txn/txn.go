// Package txn provides the transaction support of §4 of the paper on top
// of the TSB-tree:
//
//   - records created by uncommitted transactions carry no timestamp, so
//     they are never written to the historical database during a time
//     split and can always be erased on abort;
//   - commit posts the transaction's commit time onto its pending
//     versions, in commit-time order (rollback-database semantics);
//   - read-only transactions are given a timestamp when initiated and read
//     versioned data without any logical record locks (§4.1): they never
//     wait for an updater, and no updater can later commit at or before
//     the reader's timestamp.
//
// Updaters use a no-wait lock table: a conflicting write fails immediately
// with ErrLockConflict, which makes the protocol trivially deadlock-free.
//
// # Concurrency
//
// The Manager is safe for concurrent use provided its Store is (the db
// layer supplies a latched, sharded store). Internally:
//
//   - the commit clock and transaction-id counter are atomics, so issuing
//     a read-only transaction's timestamp is wait-free — a reader never
//     blocks on an updater, honoring §4.1;
//   - the no-wait lock table has its own short mutex, taken only to claim
//     or release a key;
//   - commit posting is serialized by a commit mutex: commit timestamps
//     are assigned and posted strictly in order, and the clock is only
//     advanced after every version of the commit is posted. A reader that
//     observes clock value T therefore sees every version with time <= T
//     fully posted, and nothing newer is visible at its timestamp.
//
// Uncommitted writes and reads run concurrently across transactions,
// synchronized only by the Store's own latches. A Txn or ReadTxn handle
// itself must be confined to one goroutine at a time (like database/sql's
// Tx); distinct handles may be used from distinct goroutines freely.
// ReadAt is consistent for any at <= Now(); reading "in the future" during
// concurrent commits may observe a commit mid-posting.
//
// # Streaming reads
//
// Range reads stream: ReadTxn.Cursor (and the iter.Seq2 form,
// ReadTxn.Range) yields versions lazily with pagination, reverse order,
// and early termination as first-class options (ScanOptions). A cursor
// holds no latch between Next calls — each Next latches at most one
// shard for one leaf-page read — and stays consistent across the latch
// hand-offs because the versions visible at its snapshot timestamp are
// immutable. The slice-returning Scan and ScanRange survive as thin
// Collect wrappers over the cursor.
package txn

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/record"
)

// Store is the versioned store a Manager coordinates. It must be safe for
// concurrent use; the db layer's latched shard router satisfies it, and a
// bare *core.Tree does for single-goroutine use.
type Store interface {
	Insert(v record.Version) error
	CommitKey(k record.Key, txnID uint64, commitTime record.Timestamp) error
	AbortKey(k record.Key, txnID uint64) error
	GetPending(k record.Key, txnID uint64) (record.Version, bool, error)
	Get(k record.Key) (record.Version, bool, error)
	GetAsOf(k record.Key, at record.Timestamp) (record.Version, bool, error)
	ScanAsOf(at record.Timestamp, low record.Key, high record.Bound) ([]record.Version, error)
	History(k record.Key) ([]record.Version, error)
	ScanRange(low record.Key, high record.Bound, from, to record.Timestamp) ([]record.Version, error)
}

// Errors returned by the transaction layer.
var (
	// ErrLockConflict is returned when a write hits a key locked by
	// another transaction (no-wait policy).
	ErrLockConflict = errors.New("txn: key locked by another transaction")
	// ErrDone is returned when a finished transaction is used again.
	ErrDone = errors.New("txn: transaction already committed or aborted")
)

// Stats counts transaction outcomes.
type Stats struct {
	Begun     uint64
	Committed uint64
	Aborted   uint64
	Readers   uint64
	Conflicts uint64
}

// CommitHook is invoked under the manager's commit mutex for every key a
// transaction commits, after the version is stamped. The db layer uses it
// to maintain secondary indexes. old is the previously committed version
// (ok=false if none); new is the just-committed version.
type CommitHook func(commitTime record.Timestamp, oldV record.Version, oldOK bool, newV record.Version) error

// Manager issues transaction ids and commit timestamps, orders commit
// posting, and holds the updater lock table. It is safe for concurrent
// use when its Store is.
type Manager struct {
	store Store

	// clock is the last fully-posted commit timestamp. Readers load it
	// wait-free; it is advanced only under commitMu.
	clock  atomic.Uint64
	nextID atomic.Uint64

	// commitMu serializes commit posting, hook invocation, and the clock
	// advance, so commit timestamps reach the store strictly in order.
	commitMu sync.Mutex
	hook     CommitHook

	// lockMu guards the no-wait lock table only.
	lockMu sync.Mutex
	locks  map[string]uint64 // key -> txn id holding the write lock

	begun, committed, aborted, readers, conflicts atomic.Uint64
}

// NewManager returns a Manager over store. The clock starts at startTime
// (use the store's largest committed timestamp when re-opening).
func NewManager(store Store, startTime record.Timestamp) *Manager {
	m := &Manager{
		store: store,
		locks: make(map[string]uint64),
	}
	m.clock.Store(uint64(startTime))
	m.nextID.Store(1)
	return m
}

// SetCommitHook installs the per-key commit callback. It must be called
// before concurrent transactions begin.
func (m *Manager) SetCommitHook(h CommitHook) {
	m.commitMu.Lock()
	defer m.commitMu.Unlock()
	m.hook = h
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Begun:     m.begun.Load(),
		Committed: m.committed.Load(),
		Aborted:   m.aborted.Load(),
		Readers:   m.readers.Load(),
		Conflicts: m.conflicts.Load(),
	}
}

// Now returns the last fully-posted commit timestamp.
func (m *Manager) Now() record.Timestamp {
	return record.Timestamp(m.clock.Load())
}

// Txn is an updating transaction. A Txn must be used by one goroutine at
// a time.
type Txn struct {
	m          *Manager
	id         uint64
	writes     map[string]record.Key
	done       bool
	commitTime record.Timestamp
}

// Begin starts an updating transaction.
func (m *Manager) Begin() *Txn {
	m.begun.Add(1)
	return &Txn{m: m, id: m.nextID.Add(1), writes: make(map[string]record.Key)}
}

// ID returns the transaction's id.
func (t *Txn) ID() uint64 { return t.id }

// CommitTime returns the timestamp the transaction committed at, or 0 if
// it has not (successfully) committed or wrote nothing.
func (t *Txn) CommitTime() record.Timestamp { return t.commitTime }

// releaseLock drops the lock-table entry for key ks if held by txn id.
func (m *Manager) releaseLock(ks string, id uint64) {
	m.lockMu.Lock()
	if holder, held := m.locks[ks]; held && holder == id {
		delete(m.locks, ks)
	}
	m.lockMu.Unlock()
}

func (t *Txn) lockAndWrite(v record.Version) error {
	m := t.m
	if t.done {
		return ErrDone
	}
	ks := string(v.Key)
	_, mine := t.writes[ks]
	m.lockMu.Lock()
	if holder, held := m.locks[ks]; held && holder != t.id {
		m.lockMu.Unlock()
		m.conflicts.Add(1)
		return fmt.Errorf("%w: key %s held by txn %d", ErrLockConflict, v.Key, holder)
	}
	m.locks[ks] = t.id
	m.lockMu.Unlock()
	if err := m.store.Insert(v); err != nil {
		if !mine {
			m.releaseLock(ks, t.id)
		}
		return err
	}
	t.writes[ks] = v.Key
	return nil
}

// Put writes a pending (untimestamped) version of key k.
func (t *Txn) Put(k record.Key, val []byte) error {
	return t.lockAndWrite(record.Version{
		Key: k.Clone(), Time: record.TimePending, TxnID: t.id,
		Value: append([]byte(nil), val...),
	})
}

// Delete writes a pending tombstone for key k.
func (t *Txn) Delete(k record.Key) error {
	return t.lockAndWrite(record.Version{
		Key: k.Clone(), Time: record.TimePending, TxnID: t.id, Tombstone: true,
	})
}

// Get returns the transaction's own pending write of k if it has one,
// otherwise the most recently committed version (read-committed: a
// concurrent commit mid-posting may already be visible key by key).
func (t *Txn) Get(k record.Key) (record.Version, bool, error) {
	m := t.m
	if t.done {
		return record.Version{}, false, ErrDone
	}
	if _, wrote := t.writes[string(k)]; wrote {
		v, ok, err := m.store.GetPending(k, t.id)
		if err != nil || !ok {
			return record.Version{}, false, err
		}
		if v.Tombstone {
			return record.Version{}, false, nil
		}
		return v, true, nil
	}
	v, ok, err := m.store.Get(k)
	if err != nil || !ok {
		return record.Version{}, false, err
	}
	return v, true, nil
}

// sortedWrites returns the write set in key order, for deterministic
// commit application.
func (t *Txn) sortedWrites() []record.Key {
	out := make([]record.Key, 0, len(t.writes))
	for _, k := range t.writes {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Commit assigns the transaction its commit timestamp and stamps every
// pending version with it. All of a transaction's versions carry the same
// commit time. Commits are posted strictly in timestamp order; the shared
// clock advances only once every version is posted.
//
// If posting fails partway (a store error — with the simulated devices
// this means fault injection or corruption), Commit erases the
// still-pending keys, releases every lock, and returns the error. Keys
// already stamped stay stamped: if any were, the clock still advances so
// no later transaction can share the torn commit's timestamp. The
// transaction counts as aborted.
func (t *Txn) Commit() error {
	m := t.m
	if t.done {
		return ErrDone
	}
	t.done = true
	if len(t.writes) == 0 {
		m.committed.Add(1)
		return nil
	}
	m.commitMu.Lock()
	defer m.commitMu.Unlock()
	commitTime := record.Timestamp(m.clock.Load()) + 1
	keys := t.sortedWrites()
	for i, k := range keys {
		if stamped, err := m.postKey(k, t.id, commitTime); err != nil {
			m.failCommit(keys[i:], t.id, commitTime, i > 0 || stamped)
			return fmt.Errorf("txn: commit of %s: %w", k, err)
		}
		m.releaseLock(string(k), t.id)
	}
	m.clock.Store(uint64(commitTime))
	t.commitTime = commitTime
	m.committed.Add(1)
	return nil
}

// postKey stamps one pending version with the commit time and runs the
// commit hook. stamped reports whether the version was committed to the
// store even if the hook then failed. Called under commitMu.
func (m *Manager) postKey(k record.Key, txnID uint64, commitTime record.Timestamp) (stamped bool, err error) {
	var oldV record.Version
	var oldOK bool
	if m.hook != nil {
		oldV, oldOK, err = m.store.Get(k)
		if err != nil {
			return false, err
		}
	}
	if err := m.store.CommitKey(k, txnID, commitTime); err != nil {
		return false, err
	}
	if m.hook != nil {
		newV, ok, err := m.store.GetAsOf(k, commitTime)
		if err != nil {
			return true, err
		}
		if !ok {
			// The committed version is a tombstone; rebuild it for
			// the hook.
			newV = record.Version{Key: k, Time: commitTime, Tombstone: true}
		}
		if err := m.hook(commitTime, oldV, oldOK, newV); err != nil {
			return true, err
		}
	}
	return true, nil
}

// failCommit cleans up after a posting error: the failed and unposted
// keys' pending versions are erased best-effort and every remaining lock
// is released, so no key stays locked forever. If at least one key was
// already stamped, the clock advances past the torn timestamp so no later
// transaction can commit at it. Called under commitMu.
func (m *Manager) failCommit(remaining []record.Key, txnID uint64, commitTime record.Timestamp, posted bool) {
	for _, k := range remaining {
		// AbortKey fails if the pending version is gone (e.g. the
		// failed key was stamped before its hook errored); the lock
		// must be released regardless.
		_ = m.store.AbortKey(k, txnID)
		m.releaseLock(string(k), txnID)
	}
	if posted {
		m.clock.Store(uint64(commitTime))
	}
	m.aborted.Add(1)
}

// Abort erases the transaction's pending versions. Aborting is always
// possible because uncommitted data never reaches the write-once device.
func (t *Txn) Abort() error {
	m := t.m
	if t.done {
		return ErrDone
	}
	t.done = true
	for _, k := range t.sortedWrites() {
		if err := m.store.AbortKey(k, t.id); err != nil {
			return fmt.Errorf("txn: abort of %s: %w", k, err)
		}
		m.releaseLock(string(k), t.id)
	}
	m.aborted.Add(1)
	return nil
}

// ReadTxn is a read-only transaction: a frozen timestamp, no locks.
type ReadTxn struct {
	m  *Manager
	at record.Timestamp
}

// ReadOnly starts a read-only transaction with a timestamp issued at
// initiation (§4.1). Issuing the timestamp is a wait-free atomic load: a
// reader never blocks on an updater. It sees exactly the versions
// committed at or before that time — never a pending version — and
// acquires no logical locks (reads take only short physical shard
// latches in the store).
func (m *Manager) ReadOnly() *ReadTxn {
	m.readers.Add(1)
	return &ReadTxn{m: m, at: record.Timestamp(m.clock.Load())}
}

// ReadAt returns a read-only transaction pinned to an arbitrary past
// timestamp — the rollback-database time-travel path. Snapshots are
// consistent for any at <= Now().
func (m *Manager) ReadAt(at record.Timestamp) *ReadTxn {
	m.readers.Add(1)
	return &ReadTxn{m: m, at: at}
}

// History returns the full committed version history of key k.
func (m *Manager) History(k record.Key) ([]record.Version, error) {
	return m.store.History(k)
}

// ScanRange returns the versions of keys in [low, high) valid at any
// moment in the time window [from, to): the general temporal range
// query, as a thin Collect wrapper over the streaming cursor.
func (m *Manager) ScanRange(low record.Key, high record.Bound, from, to record.Timestamp) ([]record.Version, error) {
	if to <= from {
		return nil, nil
	}
	return newCursor(m.store, m.Now(), low, high, ScanOptions{From: from, To: to}).Collect()
}

// Differ is implemented by stores that support time-travel diffs
// (*core.Tree and the db layer's shard router do).
type Differ interface {
	Diff(low record.Key, high record.Bound, from, to record.Timestamp) ([]core.Change, error)
}

func errNoDiff(s any) error { return fmt.Errorf("txn: store %T does not support Diff", s) }

// Diff reports the keys whose visible state differs between two times.
// It fails if the underlying store does not support diffs.
func (m *Manager) Diff(low record.Key, high record.Bound, from, to record.Timestamp) ([]core.Change, error) {
	differ, ok := m.store.(Differ)
	if !ok {
		return nil, errNoDiff(m.store)
	}
	return differ.Diff(low, high, from, to)
}

// Timestamp returns the reader's snapshot time.
func (r *ReadTxn) Timestamp() record.Timestamp { return r.at }

// Get returns the version of k valid at the reader's timestamp.
func (r *ReadTxn) Get(k record.Key) (record.Version, bool, error) {
	return r.m.store.GetAsOf(k, r.at)
}

// Scan returns the snapshot of [low, high) at the reader's timestamp —
// the backup/unload path of §4.1, which takes no logical locks. It is a
// thin Collect wrapper over Cursor; callers that want pagination, a
// limit, reverse order, or early termination should use Cursor or Range
// directly.
func (r *ReadTxn) Scan(low record.Key, high record.Bound) ([]record.Version, error) {
	return r.Cursor(low, high, ScanOptions{}).Collect()
}

// Update runs fn inside a transaction, committing on success and aborting
// on error.
func (m *Manager) Update(fn func(*Txn) error) error {
	t := m.Begin()
	if err := fn(t); err != nil {
		if aerr := t.Abort(); aerr != nil {
			return errors.Join(err, aerr)
		}
		return err
	}
	return t.Commit()
}
