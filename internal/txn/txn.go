// Package txn provides the transaction support of §4 of the paper on top
// of the TSB-tree:
//
//   - records created by uncommitted transactions carry no timestamp, so
//     they are never written to the historical database during a time
//     split and can always be erased on abort;
//   - commit posts the transaction's commit time onto its pending
//     versions, in commit-time order (rollback-database semantics);
//   - read-only transactions are given a timestamp when initiated and read
//     versioned data without any logical record locks (§4.1): they never
//     wait for an updater, and no updater can later commit at or before
//     the reader's timestamp.
//
// Updaters use a no-wait lock table: a conflicting write fails immediately
// with ErrLockConflict, which makes the protocol trivially deadlock-free.
//
// # Concurrency
//
// The Manager is safe for concurrent use provided its Store is (the db
// layer supplies a latched, sharded store). Internally:
//
//   - the commit clock and transaction-id counter are atomics, so issuing
//     a read-only transaction's timestamp is wait-free — a reader never
//     blocks on an updater, honoring §4.1;
//   - the no-wait lock table has its own short mutex, taken only to claim
//     or release a key;
//   - commit posting is serialized by a leadership token (group commit):
//     concurrently-arriving committers enqueue their write sets, and the
//     first to take the token posts the whole queue as one batch —
//     consecutive commit timestamps, one append+fsync of the commit log
//     (when one is attached), one clock advance. A reader that observes
//     clock value T therefore sees every version with time <= T fully
//     posted, and nothing newer is visible at its timestamp.
//
// # Group commit and durability
//
// A Manager optionally writes a redo log: SetCommitLog attaches a
// CommitLog (the wal package provides one) and from then on a
// transaction only reports Commit success after its CommitRecord — the
// stamped write set — is durably appended. Batching makes that cheap:
// the batch leader logs every queued transaction with a single
// AppendBatch call (one fsync), so under concurrency the fsync cost is
// amortized across committers (Stats.CommitBatches counts batches; the
// committed/batches ratio is the amortization factor). If the log append
// fails, no version of the batch is stamped: every member transaction is
// aborted and its pending versions erased.
//
// Uncommitted writes and reads run concurrently across transactions,
// synchronized only by the Store's own latches. A Txn or ReadTxn handle
// itself must be confined to one goroutine at a time (like database/sql's
// Tx); distinct handles may be used from distinct goroutines freely.
// ReadAt is consistent for any at <= Now(); reading "in the future" during
// concurrent commits may observe a commit mid-posting.
//
// # Streaming reads
//
// Range reads stream: ReadTxn.Cursor (and the iter.Seq2 form,
// ReadTxn.Range) yields versions lazily with pagination, reverse order,
// and early termination as first-class options (ScanOptions). A cursor
// holds no latch between Next calls — each Next latches at most one
// shard for one leaf-page read — and stays consistent across the latch
// hand-offs because the versions visible at its snapshot timestamp are
// immutable. The slice-returning Scan and ScanRange survive as thin
// Collect wrappers over the cursor.
package txn

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/record"
)

// Store is the versioned store a Manager coordinates. It must be safe for
// concurrent use; the db layer's latched shard router satisfies it, and a
// bare *core.Tree does for single-goroutine use.
type Store interface {
	Insert(v record.Version) error
	CommitKey(k record.Key, txnID uint64, commitTime record.Timestamp) error
	AbortKey(k record.Key, txnID uint64) error
	GetPending(k record.Key, txnID uint64) (record.Version, bool, error)
	Get(k record.Key) (record.Version, bool, error)
	GetAsOf(k record.Key, at record.Timestamp) (record.Version, bool, error)
	ScanAsOf(at record.Timestamp, low record.Key, high record.Bound) ([]record.Version, error)
	History(k record.Key) ([]record.Version, error)
	ScanRange(low record.Key, high record.Bound, from, to record.Timestamp) ([]record.Version, error)
}

// Errors returned by the transaction layer.
var (
	// ErrLockConflict is returned when a write hits a key locked by
	// another transaction (no-wait policy).
	ErrLockConflict = errors.New("txn: key locked by another transaction")
	// ErrDone is returned when a finished transaction is used again.
	ErrDone = errors.New("txn: transaction already committed or aborted")
)

// Stats counts transaction outcomes.
type Stats struct {
	Begun     uint64
	Committed uint64
	Aborted   uint64
	Readers   uint64
	Conflicts uint64
	// CommitBatches counts group-commit batches: every batch is one
	// commit-log append + fsync (when a log is attached) and one clock
	// advance, so Committed/CommitBatches is the fsync amortization
	// factor.
	CommitBatches uint64
}

// CommitHook is invoked under the commit leadership for every key a
// transaction commits, after the version is stamped. The db layer uses it
// to maintain secondary indexes. old is the previously committed version
// (ok=false if none); new is the just-committed version.
type CommitHook func(commitTime record.Timestamp, oldV record.Version, oldOK bool, newV record.Version) error

// CommitRecord is the redo record of one committed transaction: its
// stamped write set, in key order, every version carrying the commit
// time. It is what a CommitLog must make durable before the commit is
// acknowledged, and what recovery replays.
type CommitRecord struct {
	TxnID    uint64
	Time     record.Timestamp
	Versions []record.Version
}

// CommitLog is the durability hook of the commit path. AppendBatch must
// make every record durable (one fsync for the whole batch) before
// returning nil; on error nothing of the batch may be considered
// committed. It is only ever called by one batch leader at a time.
type CommitLog interface {
	AppendBatch(recs []CommitRecord) error
}

// Manager issues transaction ids and commit timestamps, orders commit
// posting, and holds the updater lock table. It is safe for concurrent
// use when its Store is.
type Manager struct {
	store Store

	// clock is the last fully-posted commit timestamp. Readers load it
	// wait-free; it is advanced only by a batch leader.
	clock  atomic.Uint64
	nextID atomic.Uint64

	// leaderCh is the commit leadership token (capacity 1): holding it
	// is what the commit mutex used to be. A committer that acquires it
	// drains the queue and posts the whole batch; committers that lose
	// the race park on their request's done channel instead of the
	// token, which is what lets batches form.
	leaderCh chan struct{} //tsb:latch level=3 name=commit-token

	// qMu guards the group-commit queue only.
	qMu   sync.Mutex //tsb:latch level=7 name=commit-queue
	queue []*commitReq

	hook CommitHook
	log  CommitLog
	// broken, when non-nil, permanently fails further commits: the
	// store failed to apply a durably-logged batch, so in-memory state
	// has diverged from the log and only recovery (reopening the
	// durable directory, which replays the log) reconciles them.
	// Written and read only under the leadership token.
	broken error

	// lockMu guards the no-wait lock table only.
	lockMu sync.Mutex        //tsb:latch level=7 name=lock-table
	locks  map[string]uint64 // key -> txn id holding the write lock

	// Outcome counters are obs instruments — the one source of truth;
	// Stats() derives from them and RegisterMetrics names them.
	begun, committed, aborted, readers, conflicts obs.Counter
	commitBatches                                 obs.Counter
	activeUpdaters                                atomic.Int64
	// commitLatency times Commit from enqueue to acknowledged result:
	// the full group-commit wait, including the batch's log append and
	// fsync whether this transaction led the batch or rode along.
	commitLatency obs.Histogram
}

// commitReq is one transaction waiting in the group-commit queue.
type commitReq struct {
	id     uint64
	writes []record.Version // pending write set, sorted by key
	done   chan commitResult
}

type commitResult struct {
	time record.Timestamp
	err  error
}

// NewManager returns a Manager over store. The clock starts at startTime
// (use the store's largest committed timestamp when re-opening).
func NewManager(store Store, startTime record.Timestamp) *Manager {
	m := &Manager{
		store:    store,
		locks:    make(map[string]uint64),
		leaderCh: make(chan struct{}, 1),
	}
	m.clock.Store(uint64(startTime))
	m.nextID.Store(1)
	return m
}

// SetCommitHook installs the per-key commit callback. It must be called
// before concurrent transactions begin.
func (m *Manager) SetCommitHook(h CommitHook) {
	m.leaderCh <- struct{}{}
	m.hook = h
	<-m.leaderCh
}

// SetCommitLog attaches the redo log: from now on a commit is
// acknowledged only after its record is durably appended. It must be
// called before concurrent transactions begin.
func (m *Manager) SetCommitLog(l CommitLog) {
	m.leaderCh <- struct{}{}
	m.log = l
	<-m.leaderCh
}

// Quiesce runs fn while holding the commit leadership token: no commit
// is mid-posting, the clock is stable, and every acknowledged commit is
// fully in the store (and, when a log is attached, durably appended).
// The checkpointer uses it to rotate the log at a consistent boundary.
// After the store has diverged from the commit log (a posting failure
// past a durable append), Quiesce refuses without running fn: the
// quiescent-boundary guarantees no longer hold, and in particular a
// checkpoint taken now would make the half-applied state durable and
// truncate the very records recovery needs to repair it.
//
//tsb:wraps commit-token
func (m *Manager) Quiesce(fn func() error) error {
	m.leaderCh <- struct{}{}
	defer func() { <-m.leaderCh }()
	if m.broken != nil {
		return m.broken
	}
	return fn()
}

// ActiveUpdaters returns the number of updating transactions begun but
// not yet committed or aborted.
func (m *Manager) ActiveUpdaters() int64 { return m.activeUpdaters.Load() }

// PendingWrite names one key whose pending (uncommitted) version is —
// or is about to be — in the store, and the transaction that owns it.
type PendingWrite struct {
	Key   record.Key
	TxnID uint64
}

// PendingWrites snapshots the lock table: every key currently
// write-locked by an in-flight transaction. The paged checkpoint
// records this set so recovery can erase the stale pending versions a
// page-level image necessarily captures (a logical dump filters them
// out; pages cannot). The snapshot is a superset of the pending
// versions actually in the store — a locker may not have inserted yet —
// so consumers must tolerate AbortKey finding nothing.
func (m *Manager) PendingWrites() []PendingWrite {
	m.lockMu.Lock()
	defer m.lockMu.Unlock()
	out := make([]PendingWrite, 0, len(m.locks))
	for k, id := range m.locks {
		out = append(out, PendingWrite{Key: record.Key(k).Clone(), TxnID: id})
	}
	return out
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Begun:         m.begun.Load(),
		Committed:     m.committed.Load(),
		Aborted:       m.aborted.Load(),
		Readers:       m.readers.Load(),
		Conflicts:     m.conflicts.Load(),
		CommitBatches: m.commitBatches.Load(),
	}
}

// CommitLatencyHist exposes the commit-latency histogram (the status
// surfaces render its quantiles).
func (m *Manager) CommitLatencyHist() *obs.Histogram { return &m.commitLatency }

// RegisterMetrics names the manager's instruments in r; the engine
// facade calls it once at open.
func (m *Manager) RegisterMetrics(r *obs.Registry) {
	r.RegisterCounter("tsb_txns_begun_total", "updating transactions begun", &m.begun)
	r.RegisterCounter("tsb_commits_total", "transactions committed", &m.committed)
	r.RegisterCounter("tsb_aborts_total", "transactions aborted", &m.aborted)
	r.RegisterCounter("tsb_readers_total", "read-only transactions opened", &m.readers)
	r.RegisterCounter("tsb_conflicts_total", "no-wait lock conflicts", &m.conflicts)
	r.RegisterCounter("tsb_commit_batches_total", "group-commit batches posted", &m.commitBatches)
	r.RegisterHistogram("tsb_commit_latency_seconds",
		"Commit wait from enqueue to acknowledgment, including the batch log append and fsync", &m.commitLatency)
	r.GaugeFunc("tsb_active_updaters", "updating transactions in flight", func() float64 {
		return float64(m.activeUpdaters.Load())
	})
}

// Now returns the last fully-posted commit timestamp.
func (m *Manager) Now() record.Timestamp {
	return record.Timestamp(m.clock.Load())
}

// Txn is an updating transaction. A Txn must be used by one goroutine at
// a time.
type Txn struct {
	m  *Manager
	id uint64
	// writes buffers the pending version last written per key: the
	// transaction's write set, which becomes its redo CommitRecord.
	writes     map[string]record.Version
	done       bool
	commitTime record.Timestamp
}

// Begin starts an updating transaction.
func (m *Manager) Begin() *Txn {
	m.begun.Add(1)
	m.activeUpdaters.Add(1)
	return &Txn{m: m, id: m.nextID.Add(1), writes: make(map[string]record.Version)}
}

// ID returns the transaction's id.
func (t *Txn) ID() uint64 { return t.id }

// CommitTime returns the timestamp the transaction committed at, or 0 if
// it has not (successfully) committed or wrote nothing.
func (t *Txn) CommitTime() record.Timestamp { return t.commitTime }

// releaseLock drops the lock-table entry for key ks if held by txn id.
func (m *Manager) releaseLock(ks string, id uint64) {
	m.lockMu.Lock()
	if holder, held := m.locks[ks]; held && holder == id {
		delete(m.locks, ks)
	}
	m.lockMu.Unlock()
}

func (t *Txn) lockAndWrite(v record.Version) error {
	m := t.m
	if t.done {
		return ErrDone
	}
	ks := string(v.Key)
	_, mine := t.writes[ks]
	m.lockMu.Lock()
	if holder, held := m.locks[ks]; held && holder != t.id {
		m.lockMu.Unlock()
		m.conflicts.Add(1)
		return fmt.Errorf("%w: key %s held by txn %d", ErrLockConflict, v.Key, holder)
	}
	m.locks[ks] = t.id
	m.lockMu.Unlock()
	if err := m.store.Insert(v); err != nil {
		if !mine {
			m.releaseLock(ks, t.id)
		}
		return err
	}
	t.writes[ks] = v
	return nil
}

// Put writes a pending (untimestamped) version of key k.
func (t *Txn) Put(k record.Key, val []byte) error {
	return t.lockAndWrite(record.Version{
		Key: k.Clone(), Time: record.TimePending, TxnID: t.id,
		Value: append([]byte(nil), val...),
	})
}

// Delete writes a pending tombstone for key k.
func (t *Txn) Delete(k record.Key) error {
	return t.lockAndWrite(record.Version{
		Key: k.Clone(), Time: record.TimePending, TxnID: t.id, Tombstone: true,
	})
}

// Get returns the transaction's own pending write of k if it has one,
// otherwise the most recently committed version (read-committed: a
// concurrent commit mid-posting may already be visible key by key).
func (t *Txn) Get(k record.Key) (record.Version, bool, error) {
	m := t.m
	if t.done {
		return record.Version{}, false, ErrDone
	}
	if _, wrote := t.writes[string(k)]; wrote {
		v, ok, err := m.store.GetPending(k, t.id)
		if err != nil || !ok {
			return record.Version{}, false, err
		}
		if v.Tombstone {
			return record.Version{}, false, nil
		}
		return v, true, nil
	}
	v, ok, err := m.store.Get(k)
	if err != nil || !ok {
		return record.Version{}, false, err
	}
	return v, true, nil
}

// sortedWrites returns the write set in key order, for deterministic
// commit application.
func (t *Txn) sortedWrites() []record.Version {
	out := make([]record.Version, 0, len(t.writes))
	for _, v := range t.writes {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Less(out[j].Key) })
	return out
}

// Commit assigns the transaction its commit timestamp and stamps every
// pending version with it. All of a transaction's versions carry the same
// commit time. Commits are posted strictly in timestamp order; the shared
// clock advances only once every version is posted.
//
// Commit is the group-commit entry point: the transaction's write set
// joins the commit queue, and either a concurrent leader posts it as part
// of a batch (Commit then simply waits for the durable result) or this
// transaction takes the leadership token and posts the whole queue
// itself. Either way, when a commit log is attached, a nil return means
// the commit record is fsynced.
//
// If posting fails partway (a store error — with the simulated devices
// this means fault injection or corruption), Commit erases the
// still-pending keys, releases every lock, and returns the error. Keys
// already stamped stay stamped: if any were, the clock still advances so
// no later transaction can share the torn commit's timestamp. The
// transaction counts as aborted. When a commit log is attached, a
// posting failure happens after the record is already durable, so the
// outcome is "unknown": the in-memory store has diverged from the log,
// the manager refuses all further commits, and reopening the durable
// directory reconciles by replaying the record as committed.
//
//tsb:locks commit-token commit-queue
func (t *Txn) Commit() error {
	m := t.m
	if t.done {
		return ErrDone
	}
	t.done = true
	// The updater stays counted until its outcome is decided, so a
	// concurrent SaveTo cannot observe quiescence mid-posting.
	defer m.activeUpdaters.Add(-1)
	if len(t.writes) == 0 {
		m.committed.Add(1)
		return nil
	}
	req := &commitReq{id: t.id, writes: t.sortedWrites(), done: make(chan commitResult, 1)}
	start := time.Now()
	m.qMu.Lock()
	m.queue = append(m.queue, req)
	m.qMu.Unlock()

	var res commitResult
	select {
	case res = <-req.done:
		// A concurrent leader posted our batch.
	case m.leaderCh <- struct{}{}:
		res = m.lead(req)
	}
	m.commitLatency.Observe(time.Since(start))
	if res.err != nil {
		return res.err
	}
	t.commitTime = res.time
	return nil
}

// lead runs one group-commit batch as the leadership holder and returns
// own's result. Called with the leadership token held; releases it.
func (m *Manager) lead(own *commitReq) commitResult {
	defer func() { <-m.leaderCh }()
	// The previous leader may have posted our request between our enqueue
	// and our acquisition of the token; its result send happens-before
	// the token release, so a buffered value is visible here.
	select {
	case res := <-own.done:
		return res
	default:
	}
	m.qMu.Lock()
	batch := m.queue
	m.queue = nil
	m.qMu.Unlock()
	m.runBatch(batch)
	return <-own.done
}

// runBatch posts one group-commit batch: consecutive commit timestamps,
// one commit-log append (when a log is attached), one clock advance, and
// only then the per-request results. Called under the leadership token.
func (m *Manager) runBatch(batch []*commitReq) {
	if m.broken != nil {
		// The store diverged from the commit log earlier: refuse to
		// widen the divergence. Pending versions still get erased and
		// locks released so nothing leaks.
		for _, req := range batch {
			m.failCommit(req.writes, req.id)
			req.done <- commitResult{err: m.broken}
		}
		return
	}
	m.commitBatches.Add(1)
	base := record.Timestamp(m.clock.Load())
	if m.log != nil {
		recs := make([]CommitRecord, len(batch))
		for i, req := range batch {
			ct := base + record.Timestamp(i) + 1
			vs := make([]record.Version, len(req.writes))
			for j, v := range req.writes {
				v.Time = ct
				vs[j] = v
			}
			recs[i] = CommitRecord{TxnID: req.id, Time: ct, Versions: vs}
		}
		if err := m.log.AppendBatch(recs); err != nil {
			// Durability failed before anything was stamped: the whole
			// batch aborts — pending versions erased, locks released,
			// clock untouched.
			err = fmt.Errorf("txn: commit log append: %w", err)
			for _, req := range batch {
				m.failCommit(req.writes, req.id)
				req.done <- commitResult{err: err}
			}
			return
		}
	}
	results := make([]commitResult, len(batch))
	advance := base
	for i, req := range batch {
		ct := base + record.Timestamp(i) + 1
		posted, err := m.postTxn(req, ct)
		if err != nil {
			results[i] = commitResult{err: err}
			if posted {
				// The torn timestamp is burned: no later transaction
				// may share it.
				advance = ct
			}
			if m.log != nil && m.broken == nil {
				// The record is already durable but the store refused
				// it: runtime state has diverged from the log (for this
				// caller the commit outcome is "unknown" — recovery
				// will replay the record as committed). Poison the
				// commit path; reopening the directory reconciles.
				m.broken = fmt.Errorf("txn: store diverged from the commit log (reopen to recover): %w", err)
			}
			continue
		}
		results[i] = commitResult{time: ct}
		advance = ct
		m.committed.Add(1)
	}
	if advance > base {
		m.clock.Store(uint64(advance))
	}
	for i, req := range batch {
		req.done <- results[i]
	}
}

// postTxn stamps every pending version of one transaction with its
// commit time, releasing locks as it goes. On a store error it cleans up
// the unposted remainder (failCommit) and reports whether anything of
// the transaction reached the store stamped.
func (m *Manager) postTxn(req *commitReq, ct record.Timestamp) (posted bool, err error) {
	for j, v := range req.writes {
		stamped, err := m.postKey(v.Key, req.id, ct)
		if err != nil {
			m.failCommit(req.writes[j:], req.id)
			return j > 0 || stamped, fmt.Errorf("txn: commit of %s: %w", v.Key, err)
		}
		m.releaseLock(string(v.Key), req.id)
	}
	return true, nil
}

// postKey stamps one pending version with the commit time and runs the
// commit hook. stamped reports whether the version was committed to the
// store even if the hook then failed. Called under the leadership token.
func (m *Manager) postKey(k record.Key, txnID uint64, commitTime record.Timestamp) (stamped bool, err error) {
	var oldV record.Version
	var oldOK bool
	if m.hook != nil {
		oldV, oldOK, err = m.store.Get(k)
		if err != nil {
			return false, err
		}
	}
	if err := m.store.CommitKey(k, txnID, commitTime); err != nil {
		return false, err
	}
	if m.hook != nil {
		newV, ok, err := m.store.GetAsOf(k, commitTime)
		if err != nil {
			return true, err
		}
		if !ok {
			// The committed version is a tombstone; rebuild it for
			// the hook.
			newV = record.Version{Key: k, Time: commitTime, Tombstone: true}
		}
		if err := m.callHook(commitTime, oldV, oldOK, newV); err != nil {
			return true, err
		}
	}
	return true, nil
}

// callHook runs the commit hook, converting a panic into an error: the
// hook runs user code (secondary-key extraction) on the batch leader's
// goroutine, and a panic escaping here would unwind the leader with
// batch-mates still waiting for results — parking the next leader on an
// empty queue forever. As an error it takes the ordinary torn-commit
// cleanup path instead.
func (m *Manager) callHook(commitTime record.Timestamp, oldV record.Version, oldOK bool, newV record.Version) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("txn: commit hook panicked: %v", r)
		}
	}()
	return m.hook(commitTime, oldV, oldOK, newV)
}

// failCommit cleans up a failed commit: the remaining write set's
// pending versions are erased best-effort and every remaining lock is
// released, so no key stays locked forever. Burning a torn timestamp is
// the batch leader's job. Called under the leadership token.
func (m *Manager) failCommit(remaining []record.Version, txnID uint64) {
	for _, v := range remaining {
		// AbortKey fails if the pending version is gone (e.g. the
		// failed key was stamped before its hook errored); the lock
		// must be released regardless.
		_ = m.store.AbortKey(v.Key, txnID)
		m.releaseLock(string(v.Key), txnID)
	}
	m.aborted.Add(1)
}

// Abort erases the transaction's pending versions. Aborting is always
// possible because uncommitted data never reaches the write-once device.
func (t *Txn) Abort() error {
	m := t.m
	if t.done {
		return ErrDone
	}
	t.done = true
	defer m.activeUpdaters.Add(-1)
	// Locks are released even when erasing a pending version fails —
	// mirroring failCommit — so a store error can never strand a key
	// locked forever. The first error is still reported.
	var firstErr error
	for _, v := range t.sortedWrites() {
		if err := m.store.AbortKey(v.Key, t.id); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("txn: abort of %s: %w", v.Key, err)
		}
		m.releaseLock(string(v.Key), t.id)
	}
	m.aborted.Add(1)
	return firstErr
}

// ReadTxn is a read-only transaction: a frozen timestamp, no locks.
type ReadTxn struct {
	m  *Manager
	at record.Timestamp
}

// ReadOnly starts a read-only transaction with a timestamp issued at
// initiation (§4.1). Issuing the timestamp is a wait-free atomic load: a
// reader never blocks on an updater. It sees exactly the versions
// committed at or before that time — never a pending version — and
// acquires no logical locks (reads take only short physical shard
// latches in the store).
func (m *Manager) ReadOnly() *ReadTxn {
	m.readers.Add(1)
	return &ReadTxn{m: m, at: record.Timestamp(m.clock.Load())}
}

// ReadAt returns a read-only transaction pinned to an arbitrary past
// timestamp — the rollback-database time-travel path. Snapshots are
// consistent for any at <= Now().
func (m *Manager) ReadAt(at record.Timestamp) *ReadTxn {
	m.readers.Add(1)
	return &ReadTxn{m: m, at: at}
}

// History returns the full committed version history of key k.
func (m *Manager) History(k record.Key) ([]record.Version, error) {
	return m.store.History(k)
}

// ScanRange returns the versions of keys in [low, high) valid at any
// moment in the time window [from, to): the general temporal range
// query, as a thin Collect wrapper over the streaming cursor.
func (m *Manager) ScanRange(low record.Key, high record.Bound, from, to record.Timestamp) ([]record.Version, error) {
	if to <= from {
		return nil, nil
	}
	return newCursor(m.store, m.Now(), low, high, ScanOptions{From: from, To: to}).Collect()
}

// Differ is implemented by stores that support time-travel diffs
// (*core.Tree and the db layer's shard router do).
type Differ interface {
	Diff(low record.Key, high record.Bound, from, to record.Timestamp) ([]core.Change, error)
}

func errNoDiff(s any) error { return fmt.Errorf("txn: store %T does not support Diff", s) }

// Diff reports the keys whose visible state differs between two times.
// It fails if the underlying store does not support diffs.
func (m *Manager) Diff(low record.Key, high record.Bound, from, to record.Timestamp) ([]core.Change, error) {
	differ, ok := m.store.(Differ)
	if !ok {
		return nil, errNoDiff(m.store)
	}
	return differ.Diff(low, high, from, to)
}

// Timestamp returns the reader's snapshot time.
func (r *ReadTxn) Timestamp() record.Timestamp { return r.at }

// Get returns the version of k valid at the reader's timestamp.
func (r *ReadTxn) Get(k record.Key) (record.Version, bool, error) {
	return r.m.store.GetAsOf(k, r.at)
}

// Scan returns the snapshot of [low, high) at the reader's timestamp —
// the backup/unload path of §4.1, which takes no logical locks. It is a
// thin Collect wrapper over Cursor; callers that want pagination, a
// limit, reverse order, or early termination should use Cursor or Range
// directly.
func (r *ReadTxn) Scan(low record.Key, high record.Bound) ([]record.Version, error) {
	return r.Cursor(low, high, ScanOptions{}).Collect()
}

// Update runs fn inside a transaction, committing on success and
// aborting on error — or on a panic in fn, which would otherwise leak
// the transaction's locks and leave it counted as an active updater
// forever (the panic itself still propagates).
func (m *Manager) Update(fn func(*Txn) error) error {
	t := m.Begin()
	defer func() {
		if !t.done {
			_ = t.Abort()
		}
	}()
	if err := fn(t); err != nil {
		if aerr := t.Abort(); aerr != nil {
			return errors.Join(err, aerr)
		}
		return err
	}
	return t.Commit()
}
