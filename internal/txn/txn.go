// Package txn provides the transaction support of §4 of the paper on top
// of the TSB-tree:
//
//   - records created by uncommitted transactions carry no timestamp, so
//     they are never written to the historical database during a time
//     split and can always be erased on abort;
//   - commit posts the transaction's commit time onto its pending
//     versions, in commit-time order (rollback-database semantics);
//   - read-only transactions are given a timestamp when initiated and read
//     versioned data without any logical record locks (§4.1): they never
//     wait for an updater, and no updater can later commit at or before
//     the reader's timestamp.
//
// Updaters use a no-wait lock table: a conflicting write fails immediately
// with ErrLockConflict, which makes the protocol trivially deadlock-free.
package txn

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/record"
)

// Store is the versioned store a Manager coordinates. *core.Tree satisfies
// it.
type Store interface {
	Insert(v record.Version) error
	CommitKey(k record.Key, txnID uint64, commitTime record.Timestamp) error
	AbortKey(k record.Key, txnID uint64) error
	GetPending(k record.Key, txnID uint64) (record.Version, bool, error)
	Get(k record.Key) (record.Version, bool, error)
	GetAsOf(k record.Key, at record.Timestamp) (record.Version, bool, error)
	ScanAsOf(at record.Timestamp, low record.Key, high record.Bound) ([]record.Version, error)
	History(k record.Key) ([]record.Version, error)
	ScanRange(low record.Key, high record.Bound, from, to record.Timestamp) ([]record.Version, error)
}

// Errors returned by the transaction layer.
var (
	// ErrLockConflict is returned when a write hits a key locked by
	// another transaction (no-wait policy).
	ErrLockConflict = errors.New("txn: key locked by another transaction")
	// ErrDone is returned when a finished transaction is used again.
	ErrDone = errors.New("txn: transaction already committed or aborted")
)

// Stats counts transaction outcomes.
type Stats struct {
	Begun     uint64
	Committed uint64
	Aborted   uint64
	Readers   uint64
	Conflicts uint64
}

// CommitHook is invoked under the manager's lock for every key a
// transaction commits, after the version is stamped. The db layer uses it
// to maintain secondary indexes. old is the previously committed version
// (ok=false if none); new is the just-committed version.
type CommitHook func(commitTime record.Timestamp, oldV record.Version, oldOK bool, newV record.Version) error

// Manager issues transaction ids and commit timestamps, serializes access
// to the store, and holds the updater lock table. It is safe for
// concurrent use.
type Manager struct {
	mu     sync.Mutex
	store  Store
	clock  record.Timestamp
	nextID uint64
	locks  map[string]uint64 // key -> txn id holding the write lock
	stats  Stats
	hook   CommitHook
}

// NewManager returns a Manager over store. The clock starts at startTime
// (use the store's largest committed timestamp when re-opening).
func NewManager(store Store, startTime record.Timestamp) *Manager {
	return &Manager{
		store:  store,
		clock:  startTime,
		locks:  make(map[string]uint64),
		nextID: 1,
	}
}

// SetCommitHook installs the per-key commit callback.
func (m *Manager) SetCommitHook(h CommitHook) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.hook = h
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Now returns the last issued commit timestamp.
func (m *Manager) Now() record.Timestamp {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.clock
}

// Txn is an updating transaction.
type Txn struct {
	m      *Manager
	id     uint64
	writes map[string]record.Key
	done   bool
}

// Begin starts an updating transaction.
func (m *Manager) Begin() *Txn {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	m.stats.Begun++
	return &Txn{m: m, id: m.nextID, writes: make(map[string]record.Key)}
}

// ID returns the transaction's id.
func (t *Txn) ID() uint64 { return t.id }

func (t *Txn) lockAndWrite(v record.Version) error {
	m := t.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if t.done {
		return ErrDone
	}
	ks := string(v.Key)
	if holder, held := m.locks[ks]; held && holder != t.id {
		m.stats.Conflicts++
		return fmt.Errorf("%w: key %s held by txn %d", ErrLockConflict, v.Key, holder)
	}
	if err := m.store.Insert(v); err != nil {
		return err
	}
	m.locks[ks] = t.id
	t.writes[ks] = v.Key
	return nil
}

// Put writes a pending (untimestamped) version of key k.
func (t *Txn) Put(k record.Key, val []byte) error {
	return t.lockAndWrite(record.Version{
		Key: k.Clone(), Time: record.TimePending, TxnID: t.id,
		Value: append([]byte(nil), val...),
	})
}

// Delete writes a pending tombstone for key k.
func (t *Txn) Delete(k record.Key) error {
	return t.lockAndWrite(record.Version{
		Key: k.Clone(), Time: record.TimePending, TxnID: t.id, Tombstone: true,
	})
}

// Get returns the transaction's own pending write of k if it has one,
// otherwise the most recently committed version.
func (t *Txn) Get(k record.Key) (record.Version, bool, error) {
	m := t.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if t.done {
		return record.Version{}, false, ErrDone
	}
	if _, wrote := t.writes[string(k)]; wrote {
		v, ok, err := m.store.GetPending(k, t.id)
		if err != nil || !ok {
			return record.Version{}, false, err
		}
		if v.Tombstone {
			return record.Version{}, false, nil
		}
		return v, true, nil
	}
	v, ok, err := m.store.Get(k)
	if err != nil || !ok {
		return record.Version{}, false, err
	}
	return v, true, nil
}

// sortedWrites returns the write set in key order, for deterministic
// commit application.
func (t *Txn) sortedWrites() []record.Key {
	out := make([]record.Key, 0, len(t.writes))
	for _, k := range t.writes {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Commit assigns the transaction its commit timestamp and stamps every
// pending version with it. All of a transaction's versions carry the same
// commit time.
func (t *Txn) Commit() error {
	m := t.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if t.done {
		return ErrDone
	}
	t.done = true
	if len(t.writes) == 0 {
		m.stats.Committed++
		return nil
	}
	commitTime := m.clock + 1
	for _, k := range t.sortedWrites() {
		var oldV record.Version
		var oldOK bool
		var err error
		if m.hook != nil {
			oldV, oldOK, err = m.store.Get(k)
			if err != nil {
				return fmt.Errorf("txn: commit of %s: %w", k, err)
			}
		}
		if err := m.store.CommitKey(k, t.id, commitTime); err != nil {
			return fmt.Errorf("txn: commit of %s: %w", k, err)
		}
		if m.hook != nil {
			newV, ok, err := m.store.GetAsOf(k, commitTime)
			if err != nil {
				return fmt.Errorf("txn: commit hook of %s: %w", k, err)
			}
			if !ok {
				// The committed version is a tombstone; rebuild it
				// for the hook.
				newV = record.Version{Key: k, Time: commitTime, Tombstone: true}
			}
			if err := m.hook(commitTime, oldV, oldOK, newV); err != nil {
				return fmt.Errorf("txn: commit hook of %s: %w", k, err)
			}
		}
		delete(m.locks, string(k))
	}
	m.clock = commitTime
	m.stats.Committed++
	return nil
}

// Abort erases the transaction's pending versions. Aborting is always
// possible because uncommitted data never reaches the write-once device.
func (t *Txn) Abort() error {
	m := t.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if t.done {
		return ErrDone
	}
	t.done = true
	for _, k := range t.sortedWrites() {
		if err := m.store.AbortKey(k, t.id); err != nil {
			return fmt.Errorf("txn: abort of %s: %w", k, err)
		}
		delete(m.locks, string(k))
	}
	m.stats.Aborted++
	return nil
}

// ReadTxn is a read-only transaction: a frozen timestamp, no locks.
type ReadTxn struct {
	m  *Manager
	at record.Timestamp
}

// ReadOnly starts a read-only transaction with a timestamp issued at
// initiation (§4.1). It sees exactly the versions committed at or before
// that time — never a pending version — and acquires no locks.
func (m *Manager) ReadOnly() *ReadTxn {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Readers++
	return &ReadTxn{m: m, at: m.clock}
}

// ReadAt returns a read-only transaction pinned to an arbitrary past
// timestamp — the rollback-database time-travel path.
func (m *Manager) ReadAt(at record.Timestamp) *ReadTxn {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Readers++
	return &ReadTxn{m: m, at: at}
}

// History returns the full committed version history of key k.
func (m *Manager) History(k record.Key) ([]record.Version, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.store.History(k)
}

// ScanRange returns the versions of keys in [low, high) valid at any
// moment in the time window [from, to): the general temporal range query.
func (m *Manager) ScanRange(low record.Key, high record.Bound, from, to record.Timestamp) ([]record.Version, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.store.ScanRange(low, high, from, to)
}

// Differ is implemented by stores that support time-travel diffs
// (*core.Tree does).
type Differ interface {
	Diff(low record.Key, high record.Bound, from, to record.Timestamp) ([]core.Change, error)
}

// Diff reports the keys whose visible state differs between two times.
// It fails if the underlying store does not support diffs.
func (m *Manager) Diff(low record.Key, high record.Bound, from, to record.Timestamp) ([]core.Change, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	differ, ok := m.store.(Differ)
	if !ok {
		return nil, fmt.Errorf("txn: store %T does not support Diff", m.store)
	}
	return differ.Diff(low, high, from, to)
}

// Timestamp returns the reader's snapshot time.
func (r *ReadTxn) Timestamp() record.Timestamp { return r.at }

// Get returns the version of k valid at the reader's timestamp.
func (r *ReadTxn) Get(k record.Key) (record.Version, bool, error) {
	r.m.mu.Lock()
	defer r.m.mu.Unlock()
	return r.m.store.GetAsOf(k, r.at)
}

// Scan returns the snapshot of [low, high) at the reader's timestamp —
// the lock-free backup/unload path of §4.1.
func (r *ReadTxn) Scan(low record.Key, high record.Bound) ([]record.Version, error) {
	r.m.mu.Lock()
	defer r.m.mu.Unlock()
	return r.m.store.ScanAsOf(r.at, low, high)
}

// Update runs fn inside a transaction, committing on success and aborting
// on error.
func (m *Manager) Update(fn func(*Txn) error) error {
	t := m.Begin()
	if err := fn(t); err != nil {
		if aerr := t.Abort(); aerr != nil {
			return errors.Join(err, aerr)
		}
		return err
	}
	return t.Commit()
}
