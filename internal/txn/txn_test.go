package txn

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/record"
	"repro/internal/storage"
)

func newManager(t *testing.T) (*Manager, *core.Tree) {
	t.Helper()
	mag := storage.NewMagneticDisk(4096, storage.CostModel{})
	worm := storage.NewWORMDisk(storage.WORMConfig{SectorSize: 512})
	tree, err := core.New(mag, worm, core.Config{Policy: core.PolicyLastUpdate, MaxKeySize: 32})
	if err != nil {
		t.Fatal(err)
	}
	return NewManager(NewLatchedStore(tree), tree.Now()), tree
}

func TestCommitMakesWritesVisible(t *testing.T) {
	m, _ := newManager(t)
	tx := m.Begin()
	if err := tx.Put(record.StringKey("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Put(record.StringKey("b"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	// Invisible to others before commit.
	r := m.ReadOnly()
	if _, ok, _ := r.Get(record.StringKey("a")); ok {
		t.Error("uncommitted write visible to reader")
	}
	// Visible to self.
	if v, ok, _ := tx.Get(record.StringKey("a")); !ok || string(v.Value) != "1" {
		t.Errorf("read-your-writes failed: %v, %v", v, ok)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Both writes share one commit timestamp.
	r2 := m.ReadOnly()
	va, okA, _ := r2.Get(record.StringKey("a"))
	vb, okB, _ := r2.Get(record.StringKey("b"))
	if !okA || !okB {
		t.Fatal("committed writes missing")
	}
	if va.Time != vb.Time {
		t.Errorf("commit timestamps differ: %v vs %v", va.Time, vb.Time)
	}
	if m.Stats().Committed != 1 {
		t.Errorf("stats: %+v", m.Stats())
	}
}

func TestAbortErasesWrites(t *testing.T) {
	m, tree := newManager(t)
	if err := m.Update(func(tx *Txn) error { return tx.Put(record.StringKey("k"), []byte("keep")) }); err != nil {
		t.Fatal(err)
	}
	tx := m.Begin()
	tx.Put(record.StringKey("k"), []byte("discard"))
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := m.ReadOnly().Get(record.StringKey("k"))
	if !ok || string(v.Value) != "keep" {
		t.Fatalf("after abort Get = %v, %v", v, ok)
	}
	// The aborted write left no trace in the version history.
	h, _ := tree.History(record.StringKey("k"))
	if len(h) != 1 {
		t.Fatalf("history = %v, aborted write must leave no trace", h)
	}
	if m.Stats().Aborted != 1 {
		t.Errorf("stats: %+v", m.Stats())
	}
}

func TestNoWaitLockConflict(t *testing.T) {
	m, _ := newManager(t)
	tx1 := m.Begin()
	tx2 := m.Begin()
	if err := tx1.Put(record.StringKey("k"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	err := tx2.Put(record.StringKey("k"), []byte("2"))
	if !errors.Is(err, ErrLockConflict) {
		t.Fatalf("conflicting write = %v, want ErrLockConflict", err)
	}
	if m.Stats().Conflicts != 1 {
		t.Errorf("stats: %+v", m.Stats())
	}
	// After tx1 finishes, tx2 can proceed.
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Put(record.StringKey("k"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	v, _, _ := m.ReadOnly().Get(record.StringKey("k"))
	if string(v.Value) != "2" {
		t.Fatalf("final value = %s", v.Value)
	}
}

func TestReadOnlySnapshotIsolation(t *testing.T) {
	m, _ := newManager(t)
	m.Update(func(tx *Txn) error { return tx.Put(record.StringKey("x"), []byte("v1")) })
	r := m.ReadOnly()
	// Later updates do not affect the reader.
	m.Update(func(tx *Txn) error { return tx.Put(record.StringKey("x"), []byte("v2")) })
	m.Update(func(tx *Txn) error { return tx.Delete(record.StringKey("x")) })
	v, ok, err := r.Get(record.StringKey("x"))
	if err != nil || !ok || string(v.Value) != "v1" {
		t.Fatalf("reader saw %v, %v, %v; want v1", v, ok, err)
	}
	// A fresh reader sees the delete.
	if _, ok, _ := m.ReadOnly().Get(record.StringKey("x")); ok {
		t.Error("fresh reader should see the delete")
	}
	// Scan at the snapshot.
	vs, err := r.Scan(nil, record.InfiniteBound())
	if err != nil || len(vs) != 1 || string(vs[0].Value) != "v1" {
		t.Fatalf("reader scan = %v, %v", vs, err)
	}
}

func TestReaderNeverSeesPendingData(t *testing.T) {
	m, _ := newManager(t)
	m.Update(func(tx *Txn) error { return tx.Put(record.StringKey("k"), []byte("old")) })
	tx := m.Begin()
	tx.Put(record.StringKey("k"), []byte("inflight"))
	r := m.ReadOnly()
	v, ok, _ := r.Get(record.StringKey("k"))
	if !ok || string(v.Value) != "old" {
		t.Fatalf("reader saw %v, %v; must see the committed version", v, ok)
	}
	tx.Commit()
	// Reader's snapshot predates the commit: still "old".
	v, _, _ = r.Get(record.StringKey("k"))
	if string(v.Value) != "old" {
		t.Error("reader snapshot moved after a later commit")
	}
}

func TestUpdateHelperAbortsOnError(t *testing.T) {
	m, _ := newManager(t)
	sentinel := errors.New("boom")
	err := m.Update(func(tx *Txn) error {
		tx.Put(record.StringKey("k"), []byte("x"))
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Update error = %v", err)
	}
	if _, ok, _ := m.ReadOnly().Get(record.StringKey("k")); ok {
		t.Error("write survived aborted Update")
	}
}

func TestDoneTransactionsRejectUse(t *testing.T) {
	m, _ := newManager(t)
	tx := m.Begin()
	tx.Put(record.StringKey("k"), []byte("x"))
	tx.Commit()
	if err := tx.Put(record.StringKey("k"), []byte("y")); !errors.Is(err, ErrDone) {
		t.Errorf("Put after commit = %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrDone) {
		t.Errorf("double commit = %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrDone) {
		t.Errorf("abort after commit = %v", err)
	}
	if _, _, err := tx.Get(record.StringKey("k")); !errors.Is(err, ErrDone) {
		t.Errorf("Get after commit = %v", err)
	}
}

func TestEmptyCommit(t *testing.T) {
	m, _ := newManager(t)
	before := m.Now()
	if err := m.Begin().Commit(); err != nil {
		t.Fatal(err)
	}
	if m.Now() != before {
		t.Error("empty commit should not advance the clock")
	}
}

func TestCommitHookSeesOldAndNew(t *testing.T) {
	m, _ := newManager(t)
	type event struct {
		old, new string
		oldOK    bool
	}
	var events []event
	m.SetCommitHook(func(ct record.Timestamp, oldV record.Version, oldOK bool, newV record.Version) error {
		ev := event{new: string(newV.Value), oldOK: oldOK}
		if oldOK {
			ev.old = string(oldV.Value)
		}
		if newV.Tombstone {
			ev.new = "<del>"
		}
		events = append(events, ev)
		return nil
	})
	m.Update(func(tx *Txn) error { return tx.Put(record.StringKey("k"), []byte("v1")) })
	m.Update(func(tx *Txn) error { return tx.Put(record.StringKey("k"), []byte("v2")) })
	m.Update(func(tx *Txn) error { return tx.Delete(record.StringKey("k")) })
	want := []event{{old: "", oldOK: false, new: "v1"}, {old: "v1", oldOK: true, new: "v2"}, {old: "v2", oldOK: true, new: "<del>"}}
	if len(events) != len(want) {
		t.Fatalf("events = %v", events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, events[i], want[i])
		}
	}
}

func TestTombstoneReadYourWrites(t *testing.T) {
	m, _ := newManager(t)
	m.Update(func(tx *Txn) error { return tx.Put(record.StringKey("k"), []byte("x")) })
	tx := m.Begin()
	tx.Delete(record.StringKey("k"))
	if _, ok, _ := tx.Get(record.StringKey("k")); ok {
		t.Error("transaction should see its own delete")
	}
	tx.Abort()
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	m, tree := newManager(t)
	for i := 0; i < 20; i++ {
		k := record.StringKey(fmt.Sprintf("key%02d", i))
		if err := m.Update(func(tx *Txn) error { return tx.Put(k, []byte("init")) }); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := record.StringKey(fmt.Sprintf("key%02d", (w*5+i)%20))
				err := m.Update(func(tx *Txn) error {
					return tx.Put(k, []byte(fmt.Sprintf("w%d-%d", w, i)))
				})
				if err != nil && !errors.Is(err, ErrLockConflict) {
					errs <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rt := m.ReadOnly()
				vs, err := rt.Scan(nil, record.InfiniteBound())
				if err != nil {
					errs <- err
					return
				}
				// A reader's snapshot is internally consistent: all
				// versions committed at or before its timestamp.
				for _, v := range vs {
					if v.Time > rt.Timestamp() {
						errs <- fmt.Errorf("snapshot leak: version %v after reader time %v", v.Time, rt.Timestamp())
						return
					}
				}
				if len(vs) != 20 {
					errs <- fmt.Errorf("snapshot size %d, want 20", len(vs))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// failingStore injects a single CommitKey failure for one key, to
// exercise the torn-commit cleanup path.
type failingStore struct {
	Store
	failKey string
	fired   bool
}

func (f *failingStore) CommitKey(k record.Key, txnID uint64, ct record.Timestamp) error {
	if string(k) == f.failKey && !f.fired {
		f.fired = true
		return fmt.Errorf("injected commit failure for %s", k)
	}
	return f.Store.CommitKey(k, txnID, ct)
}

func TestCommitFailureReleasesLocksAndBurnsTimestamp(t *testing.T) {
	mag := storage.NewMagneticDisk(4096, storage.CostModel{})
	worm := storage.NewWORMDisk(storage.WORMConfig{SectorSize: 512})
	tree, err := core.New(mag, worm, core.Config{Policy: core.PolicyLastUpdate, MaxKeySize: 32})
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(&failingStore{Store: NewLatchedStore(tree), failKey: "b"}, tree.Now())

	tx := m.Begin()
	for _, k := range []string{"a", "b", "c"} {
		if err := tx.Put(record.StringKey(k), []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("commit should have failed on injected error")
	}
	if tx.CommitTime() != 0 {
		t.Errorf("failed commit reports commit time %v", tx.CommitTime())
	}
	// "a" (sorted first) was stamped at time 1 before "b" failed, so the
	// clock must have burned timestamp 1: no later transaction may share it.
	if m.Now() != 1 {
		t.Errorf("clock = %v, want 1 (torn timestamp burned)", m.Now())
	}
	// The pending versions of "b" and "c" must be erased.
	for _, k := range []string{"b", "c"} {
		if _, ok, _ := m.ReadOnly().Get(record.StringKey(k)); ok {
			t.Errorf("key %s visible after failed commit", k)
		}
	}
	// Every lock must be released: a fresh transaction can write and
	// commit all three keys, at a strictly later timestamp.
	tx2 := m.Begin()
	for _, k := range []string{"a", "b", "c"} {
		if err := tx2.Put(record.StringKey(k), []byte("v2-"+k)); err != nil {
			t.Fatalf("lock leaked for %s: %v", k, err)
		}
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if tx2.CommitTime() != 2 {
		t.Errorf("second commit at %v, want 2", tx2.CommitTime())
	}
	st := m.Stats()
	if st.Committed != 1 || st.Aborted != 1 {
		t.Errorf("stats = %+v, want 1 committed / 1 aborted", st)
	}
}
