package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/db"
	"repro/internal/record"
	"repro/internal/txn"
	"repro/internal/workload"
)

// E5Result is one (structure, query kind) access-cost measurement.
type E5Result struct {
	Structure string
	Query     string
	Queries   int
	AvgReads  float64       // device reads per query (magnetic pages + WORM sectors)
	AvgTime   time.Duration // simulated device latency per query
}

// E5SearchIO measures access costs for the four query kinds on the three
// structures at a mixed workload (u=0.5). Expected shape: current-version
// searches are cheap on every structure (time splitting keeps the current
// database small); as-of and history queries pay optical accesses on the
// TSB-tree; the B+-tree cannot answer temporal queries at all; the WOBT
// pays optical costs even for current data.
func E5SearchIO(p Params) ([]E5Result, Table, error) {
	p = p.withDefaults()
	const u = 0.5
	var results []E5Result

	tsbRun, err := RunTSB("tsb-lastupdate", u, p)
	if err != nil {
		return nil, Table{}, err
	}
	// A second TSB instance behind a 64-page LRU cache shows what a
	// buffer manager buys on top of the raw device costs.
	pBuf := p
	pBuf.BufferPages = 64
	tsbBufRun, err := RunTSB("tsb-lastupdate", u, pBuf)
	if err != nil {
		return nil, Table{}, err
	}
	wobtRun, err := RunWOBT(u, p)
	if err != nil {
		return nil, Table{}, err
	}
	bplusMag, bplusTree, err := RunBPlus(u, p)
	if err != nil {
		return nil, Table{}, err
	}

	gen := workload.New(workload.Config{
		Ops: p.Ops, UpdateFraction: u, ValueSize: p.ValueSize, Seed: p.Seed,
		InitialKeys: initialKeys(p),
	})
	gen.All()
	nKeys := gen.KeysCreated()
	maxTime := uint64(p.Ops + initialKeys(p))
	rng := rand.New(rand.NewSource(99))

	type probe struct {
		name string
		n    int
		run  func(structure string, i int) error
	}

	// Device-read counters per structure.
	tsbReads := func() uint64 {
		return tsbRun.Mag.Stats().Reads + tsbRun.WORM.Stats().SectorReads
	}
	tsbTime := func() time.Duration {
		return tsbRun.Mag.Stats().SimTime + tsbRun.WORM.Stats().SimTime
	}
	wobtReads := func() uint64 { return wobtRun.WORM.Stats().SectorReads }
	wobtTime := func() time.Duration { return wobtRun.WORM.Stats().SimTime }
	bplusReads := func() uint64 { return bplusMag.Stats().Reads }
	bplusTime := func() time.Duration { return bplusMag.Stats().SimTime }

	measure := func(structure, query string, n int, reads func() uint64, simTime func() time.Duration, body func() error) error {
		r0, t0 := reads(), simTime()
		if err := body(); err != nil {
			return err
		}
		r1, t1 := reads(), simTime()
		results = append(results, E5Result{
			Structure: structure,
			Query:     query,
			Queries:   n,
			AvgReads:  float64(r1-r0) / float64(n),
			AvgTime:   (t1 - t0) / time.Duration(n),
		})
		return nil
	}

	randKey := func() record.Key { return workload.KeyName(rng.Intn(nKeys)) }
	randTime := func() record.Timestamp { return record.Timestamp(1 + rng.Intn(int(maxTime))) }

	const nPoint = 500
	const nScan = 5
	const nHist = 100

	tsbBufReads := func() uint64 {
		return tsbBufRun.Mag.Stats().Reads + tsbBufRun.WORM.Stats().SectorReads
	}
	tsbBufTime := func() time.Duration {
		return tsbBufRun.Mag.Stats().SimTime + tsbBufRun.WORM.Stats().SimTime
	}

	// Current point lookups.
	if err := measure("tsb", "get-current", nPoint, tsbReads, tsbTime, func() error {
		for i := 0; i < nPoint; i++ {
			if _, _, err := tsbRun.Tree.Get(randKey()); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, Table{}, err
	}
	if err := measure("tsb+cache", "get-current", nPoint, tsbBufReads, tsbBufTime, func() error {
		for i := 0; i < nPoint; i++ {
			if _, _, err := tsbBufRun.Tree.Get(randKey()); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, Table{}, err
	}
	if err := measure("wobt", "get-current", nPoint, wobtReads, wobtTime, func() error {
		for i := 0; i < nPoint; i++ {
			if _, _, err := wobtRun.Tree.Get(randKey()); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, Table{}, err
	}
	if err := measure("b+tree", "get-current", nPoint, bplusReads, bplusTime, func() error {
		for i := 0; i < nPoint; i++ {
			if _, _, err := bplusTree.Get(randKey()); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, Table{}, err
	}

	// As-of point lookups (temporal; the B+-tree cannot).
	if err := measure("tsb", "get-asof", nPoint, tsbReads, tsbTime, func() error {
		for i := 0; i < nPoint; i++ {
			if _, _, err := tsbRun.Tree.GetAsOf(randKey(), randTime()); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, Table{}, err
	}
	if err := measure("wobt", "get-asof", nPoint, wobtReads, wobtTime, func() error {
		for i := 0; i < nPoint; i++ {
			if _, _, err := wobtRun.Tree.GetAsOf(randKey(), randTime()); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, Table{}, err
	}

	// Snapshot scans.
	if err := measure("tsb", "snapshot-scan", nScan, tsbReads, tsbTime, func() error {
		for i := 0; i < nScan; i++ {
			if _, err := tsbRun.Tree.ScanAsOf(randTime(), nil, record.InfiniteBound()); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, Table{}, err
	}
	if err := measure("wobt", "snapshot-scan", nScan, wobtReads, wobtTime, func() error {
		for i := 0; i < nScan; i++ {
			if _, err := wobtRun.Tree.ScanAsOf(randTime(), nil, record.InfiniteBound()); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, Table{}, err
	}

	// Version histories.
	if err := measure("tsb", "history", nHist, tsbReads, tsbTime, func() error {
		for i := 0; i < nHist; i++ {
			if _, err := tsbRun.Tree.History(randKey()); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, Table{}, err
	}
	if err := measure("wobt", "history", nHist, wobtReads, wobtTime, func() error {
		for i := 0; i < nHist; i++ {
			if _, err := wobtRun.Tree.History(randKey()); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, Table{}, err
	}

	t := Table{
		Title:  "E5: access cost per query (device reads | simulated latency), u=0.5",
		Header: []string{"structure", "query", "avg reads", "avg latency"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Structure, r.Query, f3(r.AvgReads), r.AvgTime.Round(time.Microsecond).String(),
		})
	}
	t.Remarks = append(t.Remarks,
		"b+tree answers current queries only: it has discarded all history",
		"expected: tsb current gets touch only magnetic nodes; wobt pays optical latency everywhere",
		"tsb+cache: the same tree behind a 64-page LRU buffer pool (device reads only)")
	return results, t, nil
}

// E9Result summarizes the lock-free read-only transaction experiment.
type E9Result struct {
	Commits        uint64
	ReaderScans    int
	WriterConflict uint64
	SnapshotLeaks  int // versions seen by a reader after its timestamp (must be 0)
	InvariantsOK   bool
}

// E9ReadOnly runs concurrent updaters and lock-free readers (§4.1):
// readers are given a timestamp when initiated, acquire no logical locks,
// and must observe internally consistent snapshots while updaters churn.
func E9ReadOnly(writers, readers, opsPerWriter, scansPerReader int) (E9Result, Table, error) {
	d, err := db.Open(db.Config{})
	if err != nil {
		return E9Result{}, Table{}, err
	}
	const nKeys = 100
	for i := 0; i < nKeys; i++ {
		k := workload.KeyName(i)
		if err := d.Update(func(tx *txn.Txn) error { return tx.Put(k, []byte("init")) }); err != nil {
			return E9Result{}, Table{}, err
		}
	}

	var res E9Result
	var mu sync.Mutex
	var wg sync.WaitGroup
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 7))
			for i := 0; i < opsPerWriter; i++ {
				k := workload.KeyName(rng.Intn(nKeys))
				err := d.Update(func(tx *txn.Txn) error {
					return tx.Put(k, []byte(fmt.Sprintf("w%d-%d", w, i)))
				})
				if err != nil && !errors.Is(err, txn.ErrLockConflict) {
					fail(err)
					return
				}
			}
		}(w)
	}
	leaks := 0
	scans := 0
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < scansPerReader; i++ {
				rt := d.ReadOnly()
				vs, err := rt.Scan(nil, record.InfiniteBound())
				if err != nil {
					fail(err)
					return
				}
				bad := 0
				for _, v := range vs {
					if v.Time > rt.Timestamp() {
						bad++
					}
				}
				mu.Lock()
				scans++
				leaks += bad
				if len(vs) != nKeys {
					firstErr = fmt.Errorf("reader snapshot had %d keys, want %d", len(vs), nKeys)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return E9Result{}, Table{}, firstErr
	}
	st := d.Stats()
	res.Commits = st.Txn.Committed
	res.ReaderScans = scans
	res.WriterConflict = st.Txn.Conflicts
	res.SnapshotLeaks = leaks
	res.InvariantsOK = d.CheckInvariants() == nil

	t := Table{
		Title:  "E9: lock-free read-only transactions under concurrent updaters (§4.1)",
		Header: []string{"measure", "value"},
		Rows: [][]string{
			{"writer commits", num(res.Commits)},
			{"reader snapshot scans", fmt.Sprintf("%d", res.ReaderScans)},
			{"writer lock conflicts", num(res.WriterConflict)},
			{"reader snapshot leaks", fmt.Sprintf("%d", res.SnapshotLeaks)},
			{"invariants hold", fmt.Sprintf("%v", res.InvariantsOK)},
		},
		Remarks: []string{
			"readers acquire no logical record locks and never wait for updater commits",
			"snapshot leaks must be 0: a reader sees only versions committed at or before its timestamp",
		},
	}
	return res, t, nil
}
