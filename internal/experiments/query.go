package experiments

import (
	"fmt"
	"time"

	"repro/internal/db"
	"repro/internal/query"
	"repro/internal/record"
	"repro/internal/txn"
)

// QueryEngineResult is the outcome of one E17 run: the page-read cost
// of a low-selectivity filter executed as an operator-composed query
// (key range pushed down into the scan window) versus the naive
// materialize-then-filter plan (full snapshot scan, rows discarded
// client-side), plus the wall-clock speedup of a parallel per-shard
// scan over the serial one.
type QueryEngineResult struct {
	Shards            int
	Versions          int     // total versions in the snapshot
	RowsMatched       int     // rows the filter admits (both plans agree)
	PagesMaterialized uint64  // buffer fetches, full scan + client filter
	PagesComposed     uint64  // buffer fetches, pushdown plan
	SerialMillis      float64 // full parallel-eligible scan, one cursor
	ParallelMillis    float64 // same scan, one goroutine per shard
	Speedup           float64 // SerialMillis / ParallelMillis
}

// E17QueryEngine measures §2.5's query classes as executed by
// internal/query. The dataset is keys uniformly spread over the key
// space (so every shard owns a slice) with several versions each; the
// filter selects a ~1/64 slice of the key space.
func E17QueryEngine(shards, keys, versionsPerKey int) (QueryEngineResult, Table, error) {
	res := QueryEngineResult{Shards: shards, Versions: keys * versionsPerKey}
	d, err := db.Open(db.Config{Shards: shards, LeafCapacity: 256, IndexCapacity: 1024})
	if err != nil {
		return res, Table{}, err
	}
	defer func() { _ = d.Close() }()

	// Golden-ratio multiplication spreads sequential ints uniformly over
	// the 8-byte key space, so shard ownership is balanced.
	keyOf := func(i int) record.Key { return record.Uint64Key(uint64(i) * 0x9e3779b97f4a7c15) }
	for r := 0; r < versionsPerKey; r++ {
		for base := 0; base < keys; base += 128 {
			err := d.Update(func(tx *txn.Txn) error {
				for i := base; i < base+128 && i < keys; i++ {
					if err := tx.Put(keyOf(i), []byte(fmt.Sprintf("v%02d-payload-%06d", r, i))); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return res, Table{}, err
			}
		}
	}

	// The target range: 1/64 of the key space, aligned so it straddles
	// shard interiors rather than boundaries.
	lo := record.Uint64Key(0x5000_0000_0000_0000)
	hi := record.KeyBound(record.Uint64Key(0x5400_0000_0000_0000))
	fetches := func() uint64 { st := d.Stats().Buffer; return st.Hits + st.Misses }

	drain := func(spec *query.Spec, keep func(record.Key) bool) (int, error) {
		op, err := d.Query(spec)
		if err != nil {
			return 0, err
		}
		defer func() { _ = op.Close() }()
		n := 0
		for op.Next() {
			if keep == nil || keep(op.Row().Key) {
				n++
			}
		}
		return n, op.Err()
	}

	// Plan 1: materialize-then-filter — scan everything, discard rows
	// outside the range after they have been paged in.
	start := fetches()
	inRange := func(k record.Key) bool { return k.Compare(lo) >= 0 && hi.CompareKey(k) > 0 }
	nMat, err := drain(query.Scan(nil, record.InfiniteBound()), inRange)
	if err != nil {
		return res, Table{}, err
	}
	res.PagesMaterialized = fetches() - start

	// Plan 2: operator-composed — the same filter as a Spec node, pushed
	// down into the scan window at compile time.
	start = fetches()
	nComposed, err := drain(query.Scan(nil, record.InfiniteBound()).Filter(lo, hi), nil)
	if err != nil {
		return res, Table{}, err
	}
	res.PagesComposed = fetches() - start
	if nMat != nComposed {
		return res, Table{}, fmt.Errorf("plans disagree: materialized %d rows, composed %d", nMat, nComposed)
	}
	res.RowsMatched = nComposed

	// Serial vs parallel full scan: same rows, one cursor versus one
	// goroutine per shard feeding the ordered merge.
	t0 := time.Now()
	nSerial, err := drain(query.Scan(nil, record.InfiniteBound()), nil)
	if err != nil {
		return res, Table{}, err
	}
	res.SerialMillis = float64(time.Since(t0).Microseconds()) / 1000
	par := query.Scan(nil, record.InfiniteBound())
	par.Parallel = true
	t0 = time.Now()
	nPar, err := drain(par, nil)
	if err != nil {
		return res, Table{}, err
	}
	res.ParallelMillis = float64(time.Since(t0).Microseconds()) / 1000
	if nSerial != nPar {
		return res, Table{}, fmt.Errorf("parallel scan disagrees: serial %d rows, parallel %d", nSerial, nPar)
	}
	if res.ParallelMillis > 0 {
		res.Speedup = res.SerialMillis / res.ParallelMillis
	}

	tab := Table{
		Title:  "E17: temporal query engine (operator pushdown, parallel scan)",
		Header: []string{"shards", "versions", "rows", "pages-materialized", "pages-composed", "serial-ms", "parallel-ms", "speedup"},
		Rows: [][]string{{
			num(uint64(res.Shards)), num(uint64(res.Versions)), num(uint64(res.RowsMatched)),
			num(res.PagesMaterialized), num(res.PagesComposed),
			f3(res.SerialMillis), f3(res.ParallelMillis), f3(res.Speedup),
		}},
		Remarks: []string{
			"pages-composed < pages-materialized: the key-range filter is pushed into the scan window, so pages outside it are never fetched",
			"speedup = serial/parallel wall-clock for a full scan; parallel runs one cursor per shard into an ordered merge",
		},
	}
	return res, tab, nil
}
