package experiments

import (
	"fmt"

	"repro/internal/metrics"
)

// Sweep holds the space-measurement runs shared by experiments E1-E4 and
// E6-E8: every policy × every update fraction, plus the WOBT baseline at
// every update fraction.
type Sweep struct {
	Params Params
	TSB    map[string]map[float64]*TSBRun // policy -> u -> run
	WOBT   map[float64]*WOBTRun
	BPlusM map[float64]uint64 // u -> magnetic bytes of the B+-tree
}

// RunSweep executes the full measurement matrix of the paper's §5 plan.
func RunSweep(p Params) (*Sweep, error) {
	p = p.withDefaults()
	s := &Sweep{
		Params: p,
		TSB:    make(map[string]map[float64]*TSBRun),
		WOBT:   make(map[float64]*WOBTRun),
		BPlusM: make(map[float64]uint64),
	}
	for _, name := range PolicyNames {
		s.TSB[name] = make(map[float64]*TSBRun)
		for _, u := range UpdateFractions {
			run, err := RunTSB(name, u, p)
			if err != nil {
				return nil, fmt.Errorf("tsb %s u=%.1f: %w", name, u, err)
			}
			s.TSB[name][u] = run
		}
	}
	for _, u := range UpdateFractions {
		run, err := RunWOBT(u, p)
		if err != nil {
			return nil, fmt.Errorf("wobt u=%.1f: %w", u, err)
		}
		s.WOBT[u] = run
		mag, _, err := RunBPlus(u, p)
		if err != nil {
			return nil, fmt.Errorf("bplus u=%.1f: %w", u, err)
		}
		s.BPlusM[u] = mag.Stats().BytesInUse(p.PageSize)
	}
	return s, nil
}

// wobtReport derives space numbers for a WOBT run: everything it stores is
// on the write-once device.
func (s *Sweep) wobtReport(u float64) metrics.SpaceReport {
	run := s.WOBT[u]
	st := run.WORM.Stats()
	return metrics.SpaceReport{
		MagneticBytes:     0,
		WORMBytes:         st.BytesBurned(s.Params.SectorSize),
		PayloadBytes:      st.PayloadBytes,
		SectorUtilization: st.Utilization(s.Params.SectorSize),
		DistinctVersions:  run.Stats.Inserts,
		RedundantVersions: run.Stats.LeafCopies,
	}
}

// E1TotalSpace is the "total space use" table: SpaceM+SpaceO per policy per
// update fraction, in KiB. Expected shape: key-splitting policies minimize
// total space; the WOBT is the worst at every update fraction because all
// incremental writes burn whole sectors and every split recopies data.
func (s *Sweep) E1TotalSpace() Table {
	t := Table{
		Title:  "E1: total space use (KiB) vs update fraction (paper §5 measurement plan)",
		Header: append([]string{"policy \\ u"}, fracHeader()...),
	}
	for _, name := range PolicyNames {
		row := []string{name}
		for _, u := range UpdateFractions {
			row = append(row, kb(s.TSB[name][u].Report.TotalBytes()))
		}
		t.Rows = append(t.Rows, row)
	}
	row := []string{"wobt (§2 baseline)"}
	for _, u := range UpdateFractions {
		row = append(row, kb(s.wobtReport(u).TotalBytes()))
	}
	t.Rows = append(t.Rows, row)
	row = []string{"b+tree (current only)"}
	for _, u := range UpdateFractions {
		row = append(row, kb(s.BPlusM[u]))
	}
	t.Rows = append(t.Rows, row)
	t.Remarks = append(t.Remarks,
		"b+tree keeps no history: its numbers are the lower bound for current data only",
		"expected: tsb-keypref minimal among versioned stores; wobt worst (whole-sector writes)")
	return t
}

// E2CurrentSpace is the "space use in the current database" table: SpaceM
// in KiB. Expected shape: time-splitting policies keep the current
// database small and roughly flat as the update fraction grows; key-pref
// grows with the version count.
func (s *Sweep) E2CurrentSpace() Table {
	t := Table{
		Title:  "E2: current (magnetic) space use (KiB) vs update fraction",
		Header: append([]string{"policy \\ u"}, fracHeader()...),
	}
	for _, name := range PolicyNames {
		row := []string{name}
		for _, u := range UpdateFractions {
			row = append(row, kb(s.TSB[name][u].Report.MagneticBytes))
		}
		t.Rows = append(t.Rows, row)
	}
	row := []string{"b+tree (current only)"}
	for _, u := range UpdateFractions {
		row = append(row, kb(s.BPlusM[u]))
	}
	t.Rows = append(t.Rows, row)
	t.Remarks = append(t.Remarks,
		"expected: tsb-timepref smallest and flattest; tsb-keypref grows with total versions")
	return t
}

// E3Redundancy is the "amount of redundancy" table: redundant version
// copies per distinct version. Expected shape: zero at u=0 (insert-only
// workloads only key split, §3.2 boundary condition), growing with u for
// time-splitting policies; last-update splits at most as redundant as
// now splits.
func (s *Sweep) E3Redundancy() Table {
	t := Table{
		Title:  "E3: redundancy (redundant copies per distinct version) vs update fraction",
		Header: append([]string{"policy \\ u"}, fracHeader()...),
	}
	for _, name := range PolicyNames {
		row := []string{name}
		for _, u := range UpdateFractions {
			row = append(row, f3(s.TSB[name][u].Report.RedundancyRatio()))
		}
		t.Rows = append(t.Rows, row)
	}
	row := []string{"wobt (§2 baseline)"}
	for _, u := range UpdateFractions {
		r := s.wobtReport(u)
		row = append(row, f3(r.RedundancyRatio()))
	}
	t.Rows = append(t.Rows, row)
	t.Remarks = append(t.Remarks,
		"expected: all zero at u=0.0; wobt redundancy high (splits recopy current versions)")
	return t
}

// CostRatios is the CO/CM sweep of E4.
var CostRatios = []float64{0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0}

// E4CostFunction evaluates CS = SpaceM·CM + SpaceO·CO per policy across
// CO/CM ratios (CM fixed at 1.0/byte), at a mixed update fraction, and
// reports which policy minimizes the cost at each ratio. Expected shape:
// cheap optical storage (low CO/CM) favors time-splitting policies; as
// optical approaches magnetic cost the optimum shifts toward key
// splitting (§3.2).
func (s *Sweep) E4CostFunction(u float64) Table {
	t := Table{
		Title:  fmt.Sprintf("E4: storage cost CS = SpaceM*CM + SpaceO*CO (CM=1, u=%.1f)", u),
		Header: []string{"policy \\ CO/CM"},
	}
	for _, r := range CostRatios {
		t.Header = append(t.Header, fmt.Sprintf("%.2f", r))
	}
	best := make([]string, len(CostRatios))
	bestCost := make([]float64, len(CostRatios))
	for i := range bestCost {
		bestCost[i] = -1
	}
	for _, name := range PolicyNames {
		row := []string{name}
		rep := s.TSB[name][u].Report
		for i, r := range CostRatios {
			c := rep.Cost(1.0, r)
			row = append(row, fmt.Sprintf("%.0f", c/1024))
			if bestCost[i] < 0 || c < bestCost[i] {
				bestCost[i] = c
				best[i] = name
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Rows = append(t.Rows, append([]string{"minimizer"}, best...))
	t.Remarks = append(t.Remarks,
		"costs in KiB-equivalents; expected: time-pref wins at low CO/CM, key-pref as CO/CM -> 1")
	return t
}

// E6SectorUtilization compares write-once sector utilization: the WOBT's
// incremental one-entry-per-sector writes versus the TSB-tree's
// consolidated appends. This is the paper's headline §1 claim: "we shall
// be able to write data to the optical disk in units which nearly
// approximate the sector size."
func (s *Sweep) E6SectorUtilization() Table {
	t := Table{
		Title:  "E6: WORM sector utilization (payload bytes / burned bytes) vs update fraction",
		Header: append([]string{"structure \\ u"}, fracHeader()...),
	}
	for _, name := range []string{"tsb-lastupdate", "tsb-timepref"} {
		row := []string{name + " (consolidated appends)"}
		for _, u := range UpdateFractions {
			rep := s.TSB[name][u].Report
			if rep.WORMBytes == 0 {
				row = append(row, "n/a")
			} else {
				row = append(row, f3(rep.SectorUtilization))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	row := []string{"wobt (incremental sectors)"}
	for _, u := range UpdateFractions {
		row = append(row, f3(s.wobtReport(u).SectorUtilization))
	}
	t.Rows = append(t.Rows, row)
	t.Remarks = append(t.Remarks,
		"expected: tsb near 1.0 wherever it migrates; wobt far below (one new record per sector)")
	return t
}

// E7SplitTimeChoice isolates §3.3's split-time flexibility: for the three
// time-split choices, the redundancy and migration volume at each update
// fraction. Expected shape: last-update <= median <= now in redundancy,
// with identical current-node content.
func (s *Sweep) E7SplitTimeChoice() Table {
	t := Table{
		Title:  "E7: split-time choice ablation (redundant copies per distinct version | versions migrated)",
		Header: append([]string{"choice \\ u"}, fracHeader()...),
	}
	for _, name := range []string{"tsb-now", "tsb-median", "tsb-lastupdate"} {
		row := []string{name}
		for _, u := range UpdateFractions {
			rep := s.TSB[name][u]
			row = append(row, fmt.Sprintf("%s|%d", f3(rep.Report.RedundancyRatio()), rep.Tree.Stats().VersionsMigrated))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Remarks = append(t.Remarks,
		"expected: pushing the split time back (last-update) lowers both redundancy and migration volume")
	return t
}

// E8IndexSplits reports index-node split behaviour (§3.5): how many index
// time splits were local, how many keyspace splits occurred, rule-4
// duplications, and the Figure-9 pathology counters. Expected shape: most
// index time splits are local; marked leaves are rare and get cleared.
func (s *Sweep) E8IndexSplits() Table {
	t := Table{
		Title:  "E8: index node split behaviour (per policy, u=0.8)",
		Header: []string{"policy", "idx-time-splits(local)", "idx-key-splits", "rule4-dups", "marked-leaves", "forced-time-splits"},
	}
	u := 0.8
	for _, name := range PolicyNames {
		st := s.TSB[name][u].Tree.Stats()
		t.Rows = append(t.Rows, []string{
			name,
			num(st.IndexTimeSplits),
			num(st.IndexKeySplits),
			num(st.RedundantIndexEntries),
			num(st.MarkedLeaves),
			num(st.ForcedTimeSplits),
		})
	}
	t.Remarks = append(t.Remarks,
		"all index time splits in this implementation are local by construction (§3.5);",
		"marked leaves record the Figure-9 pathology, forced splits its resolution")
	return t
}

func fracHeader() []string {
	out := make([]string, len(UpdateFractions))
	for i, u := range UpdateFractions {
		out[i] = frac(u)
	}
	return out
}
