package experiments

// E14: background time-split migration latency. The TSB-tree's cost
// asymmetry is that time splits write the historical half to the
// write-once device while key splits stay magnetic; inline, that burn
// runs on the inserting goroutine under the shard's write latch, so the
// slowest device sits on the hottest path. E14 drives an identical
// update-heavy workload in inline and background modes and reports the
// put-latency tail (p50/p99) plus the time spent splitting under write
// latches — the two numbers the migrator exists to shrink.

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/db"
	"repro/internal/record"
	"repro/internal/storage"
	"repro/internal/txn"
)

// MigrationLatencyResult summarizes one mode's run.
type MigrationLatencyResult struct {
	Mode             string // "inline" or "background"
	Shards           int
	Workers          int
	Ops              uint64
	Elapsed          time.Duration
	OpsPerSec        float64
	PutP50Micros     float64
	PutP99Micros     float64
	SplitLatchMillis float64 // time splitting under shard write latches
	Migrated         uint64  // background splits applied (0 inline)
	Fallbacks        uint64  // deferrals that split inline after all
}

// E14MigrationLatency runs the update-heavy hot-key workload once per
// migration mode — same keys, same per-worker streams, LeafCapacity half
// a page so time splits fire steadily and deferral has physical headroom
// — and reports per-put latency percentiles and split-latch time. The
// background run drains its queue before the clock stops, so both modes
// finish with every historical node migrated and the comparison is
// honest about total work.
func E14MigrationLatency(shards, workers, opsPerWorker int) ([]MigrationLatencyResult, Table, error) {
	tab := Table{
		Title: "E14: time-split migration inline vs background — put latency and latch hold",
		Header: []string{
			"mode", "shards", "workers", "puts", "p50 us", "p99 us",
			"split-latch ms", "migrated", "fallbacks", "elapsed", "puts/sec",
		},
		Remarks: []string{
			"updates to a hot key set force steady time splits (historical halves burned to the WORM)",
			"inline: the burn runs on the inserting goroutine under the shard write latch",
			"background: inserts mark and return; per-shard workers burn off-latch and swap under a short latch",
			"expected: background cuts p99 put latency and split-latch time at equal total migration work",
		},
	}
	var results []MigrationLatencyResult
	for _, background := range []bool{false, true} {
		mode := "inline"
		if background {
			mode = "background"
		}
		r, err := runMigrationMode(background, shards, workers, opsPerWorker)
		if err != nil {
			return nil, Table{}, fmt.Errorf("%s: %w", mode, err)
		}
		r.Mode = mode
		results = append(results, r)
		tab.Rows = append(tab.Rows, []string{
			mode, num(uint64(r.Shards)), num(uint64(r.Workers)), num(r.Ops),
			fmt.Sprintf("%.1f", r.PutP50Micros), fmt.Sprintf("%.1f", r.PutP99Micros),
			fmt.Sprintf("%.2f", r.SplitLatchMillis),
			num(r.Migrated), num(r.Fallbacks),
			r.Elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", r.OpsPerSec),
		})
	}
	return results, tab, nil
}

func runMigrationMode(background bool, shards, workers, opsPerWorker int) (MigrationLatencyResult, error) {
	// The device asymmetry made physical: the write-once device really
	// sleeps per burn (RealSleep), the magnetic disk costs nothing. An
	// inline time split therefore holds the shard's write latch for a
	// real optical access; the background migrator pays the same latency
	// with no latch held. The duration is small so the run stays fast,
	// but the ratio to an in-memory put (~µs) matches the paper's
	// magnetic-vs-optical reality.
	cost := storage.CostModel{OpticalAccess: time.Millisecond, RealSleep: true}
	d, err := db.Open(db.Config{
		Shards: shards,
		// A quarter-page logical capacity: frequent time splits, and
		// three pages' worth of physical headroom so a queued leaf can
		// keep absorbing inserts while its burn waits for the device.
		PageSize:            8192,
		LeafCapacity:        2048,
		IndexCapacity:       2048,
		SectorSize:          512,
		Cost:                &cost,
		BackgroundMigration: background,
	})
	if err != nil {
		return MigrationLatencyResult{}, err
	}
	defer d.Close()

	// Per-worker disjoint hot keys: every put is an update (building the
	// history that time splits migrate) and no put ever hits a lock
	// conflict, so the latency sample is pure engine cost.
	lats := make([][]time.Duration, workers)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		lats[w] = make([]time.Duration, 0, opsPerWorker)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := []byte(fmt.Sprintf("migration-payload-%02d-0123456789abcdef", w))
			for i := 0; i < opsPerWorker; i++ {
				// High bits spread the hot set across shards; the low
				// byte keeps workers on disjoint keys (no lock
				// conflicts, every put an update building history).
				k := record.Uint64Key(uint64(i%64)*0x9e3779b97f4a7c15&^0xff | uint64(w))
				// Time the Put — the phase that runs under the shard
				// write latch and absorbs an inline split — not the
				// commit, whose group-commit queueing would drown the
				// latch signal in token round-trips.
				var lat time.Duration
				err := d.Update(func(tx *txn.Txn) error {
					t0 := time.Now()
					perr := tx.Put(k, payload)
					lat = time.Since(t0)
					return perr
				})
				if err != nil {
					errCh <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
				lats[w] = append(lats[w], lat)
				// Think time: an open-loop arrival process below the burn
				// device's saturation point. A closed-loop firehose would
				// bound both modes by raw burn throughput and measure the
				// queue, not the latch.
				time.Sleep(100 * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return MigrationLatencyResult{}, err
	}
	// Both modes end with the migration work done: the background queue
	// drains inside the timed window, charging the deferred burns to the
	// same clock that measured the inline ones.
	if err := d.DrainMigrations(); err != nil {
		return MigrationLatencyResult{}, err
	}
	elapsed := time.Since(start)
	if err := d.CheckInvariants(); err != nil {
		return MigrationLatencyResult{}, err
	}

	var all []time.Duration
	for _, ls := range lats {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		idx := int(p * float64(len(all)-1))
		return float64(all[idx].Nanoseconds()) / 1000
	}
	st := d.Stats().Migrator
	r := MigrationLatencyResult{
		Shards:           shards,
		Workers:          workers,
		Ops:              uint64(len(all)),
		Elapsed:          elapsed,
		PutP50Micros:     pct(0.50),
		PutP99Micros:     pct(0.99),
		SplitLatchMillis: float64(st.SplitLatchNanos) / 1e6,
		Migrated:         st.Migrated,
		Fallbacks:        st.InlineFallbacks,
	}
	if elapsed > 0 {
		r.OpsPerSec = float64(r.Ops) / elapsed.Seconds()
	}
	return r, nil
}
