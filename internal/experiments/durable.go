package experiments

// Durability and read-path experiment points beyond the paper's E1-E10
// tables: the group-commit fsync amortization run (E11) and the two
// archived read/latency trajectory points (cursor page reads, single-
// shard put latency) that extend BENCH_E10.json past write throughput.

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/db"
	"repro/internal/record"
	"repro/internal/txn"
	"repro/internal/workload"
)

// GroupCommitResult summarizes one durable-mode commit-throughput run.
type GroupCommitResult struct {
	Workers        int
	Commits        uint64
	Syncs          uint64
	RecordsPerSync float64 // committers amortized per fsync
	Elapsed        time.Duration
	OpsPerSec      float64
}

// E11GroupCommit drives `workers` concurrent single-key committers
// against a durable database in dir and reports how many commit records
// each fsync carried: the group-commit amortization the WAL buys on the
// serialized commit path. Background checkpointing is off so every sync
// counted is a commit append.
func E11GroupCommit(dir string, workers, opsPerWorker int) (GroupCommitResult, Table, error) {
	d, err := db.Open(db.Config{Shards: 8, Dir: dir, CheckpointBytes: -1})
	if err != nil {
		return GroupCommitResult{}, Table{}, err
	}
	defer d.Close()
	base := d.Stats().WAL // the open-time seal checkpoint is not a commit

	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				k := workload.SpreadKey(uint64(w)<<32 | uint64(i))
				err := d.Update(func(tx *txn.Txn) error {
					return tx.Put(k, []byte("group-commit-payload-0123456789"))
				})
				if err != nil {
					errCh <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return GroupCommitResult{}, Table{}, err
	}
	elapsed := time.Since(start)

	st := d.Stats().WAL
	res := GroupCommitResult{
		Workers: workers,
		Commits: st.Records - base.Records,
		Syncs:   st.Syncs - base.Syncs,
		Elapsed: elapsed,
	}
	if res.Syncs > 0 {
		res.RecordsPerSync = float64(res.Commits) / float64(res.Syncs)
	}
	if elapsed > 0 {
		res.OpsPerSec = float64(res.Commits) / elapsed.Seconds()
	}
	tab := Table{
		Title:  "E11: group commit — fsync amortization under concurrent committers",
		Header: []string{"workers", "commits", "fsyncs", "commits/fsync", "elapsed", "commits/sec"},
		Rows: [][]string{{
			num(uint64(res.Workers)), num(res.Commits), num(res.Syncs),
			fmt.Sprintf("%.2f", res.RecordsPerSync),
			res.Elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", res.OpsPerSec),
		}},
		Remarks: []string{
			"committed = logged + fsynced; concurrently-arriving committers coalesce into one append + one fsync",
			"commits/fsync > 1 means the serialized commit path is amortizing durability across committers",
		},
	}
	return res, tab, nil
}

// CursorPageReads measures the streaming-read headline: buffer-pool page
// fetches per Limit=1 cursor open over a database holding `versions`
// versions — O(tree height), not a materialized scan. It mirrors
// BenchmarkCursorLimit1 so the archived trajectory covers reads.
func CursorPageReads(versions, probes int) (float64, error) {
	d, err := db.Open(db.Config{LeafCapacity: 512, IndexCapacity: 1024})
	if err != nil {
		return 0, err
	}
	keys := versions / 5
	if keys == 0 {
		keys = 1
	}
	for r := 0; r < 5; r++ {
		for base := 0; base < keys; base += 100 {
			err := d.Update(func(tx *txn.Txn) error {
				for i := base; i < base+100 && i < keys; i++ {
					k := record.Uint64Key(uint64(i) * 0x9e3779b97f4a7c15)
					if err := tx.Put(k, []byte("benchpayload")); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return 0, err
			}
		}
	}
	fetches := func() uint64 { st := d.Stats().Buffer; return st.Hits + st.Misses }
	start := fetches()
	for i := 0; i < probes; i++ {
		cur := d.Cursor(nil, record.InfiniteBound(), db.ScanOptions{Limit: 1})
		if !cur.Next() {
			return 0, fmt.Errorf("cursor probe %d: %v", i, cur.Err())
		}
	}
	return float64(fetches()-start) / float64(probes), nil
}

// PutLatency measures the average latency of a single-key committed
// write on one shard — the serialized-commit-path baseline point of the
// archived trajectory.
func PutLatency(ops int) (avgMicros float64, err error) {
	d, err := db.Open(db.Config{Shards: 1})
	if err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < ops; i++ {
		k := workload.SpreadKey(uint64(i % 1024))
		err := d.Update(func(tx *txn.Txn) error {
			return tx.Put(k, []byte("latency-probe-payload-0123456789"))
		})
		if err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Microseconds()) / float64(ops), nil
}
