package experiments

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/db"
	"repro/internal/txn"
	"repro/internal/workload"
)

// E10Result summarizes one concurrent mixed-workload run at one shard
// count.
type E10Result struct {
	Shards       int
	Workers      int
	Ops          uint64 // operations completed (reads + committed writes)
	Conflicts    uint64 // no-wait lock conflicts (writes retried)
	Elapsed      time.Duration
	OpsPerSec    float64
	CacheHit     float64
	InvariantsOK bool
}

// runMixed drives cfg's streams against d with one goroutine per worker.
// Write conflicts (no-wait locking) are retried once, then skipped; every
// completed operation counts toward throughput.
func runMixed(d *db.DB, m *workload.Mixed) (ops, conflicts uint64, err error) {
	cfg := m.Config()
	for _, op := range m.InitialOps() {
		if uerr := d.Update(func(tx *txn.Txn) error { return tx.Put(op.Key, op.Value) }); uerr != nil {
			return 0, 0, uerr
		}
	}
	var done, confl atomic.Uint64
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stream := m.Stream(w)
			for _, op := range stream {
				var oerr error
				switch op.Kind {
				case workload.OpPut, workload.OpDelete:
					write := func(tx *txn.Txn) error {
						if op.Kind == workload.OpDelete {
							return tx.Delete(op.Key)
						}
						return tx.Put(op.Key, op.Value)
					}
					oerr = d.Update(write)
					if errors.Is(oerr, txn.ErrLockConflict) {
						confl.Add(1)
						oerr = d.Update(write) // one retry
						if errors.Is(oerr, txn.ErrLockConflict) {
							// Give up (no-wait policy): the write did
							// not complete and must not count.
							confl.Add(1)
							continue
						}
					}
				case workload.OpGet:
					_, _, oerr = d.Get(op.Key)
				case workload.OpGetAsOf:
					at := d.Now()
					if at > 2 {
						at = at/2 + 1
					}
					_, _, oerr = d.GetAsOf(op.Key, at)
				case workload.OpScan:
					// Stream the snapshot through the cursor API
					// instead of materializing it: same versions
					// visited, one shard latch held at a time.
					cur := d.Cursor(op.Key, op.High, db.ScanOptions{})
					for cur.Next() {
					}
					oerr = cur.Err()
				}
				if oerr != nil {
					errCh <- fmt.Errorf("worker %d: %w", w, oerr)
					return
				}
				done.Add(1)
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for e := range errCh {
		return 0, 0, e
	}
	return done.Load(), confl.Load(), nil
}

// E10Concurrent runs the mixed read/write scenario of
// workload.MixedConfig at each given shard count and reports throughput:
// the scaling experiment behind the sharded engine. Same streams, same
// key space — only the shard count varies. seed and valueSize
// parameterize the streams (0 valueSize = the workload default).
func E10Concurrent(shardCounts []int, workers, opsPerWorker int, seed int64, valueSize int) ([]E10Result, Table, error) {
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4, 8}
	}
	tab := Table{
		Title:  "E10: concurrent mixed workload throughput vs shard count",
		Header: []string{"shards", "workers", "ops", "conflicts", "elapsed", "ops/sec", "cache-hit"},
		Remarks: []string{
			"key-range sharding: one TSB-tree + RW latch per shard, commit posting serialized",
			fmt.Sprintf("mixed stream per worker: 50%% reads (incl. scans+rollback reads), ops/worker=%d", opsPerWorker),
			"expected: throughput grows with shard count while cores allow; 1 shard serializes every tree access",
		},
	}
	var results []E10Result
	for _, shards := range shardCounts {
		d, err := db.Open(db.Config{Shards: shards})
		if err != nil {
			return nil, Table{}, err
		}
		m := workload.NewMixed(workload.MixedConfig{
			Workers:          workers,
			OpsPerWorker:     opsPerWorker,
			RollbackFraction: 0.2,
			DeleteFraction:   0.05,
			ValueSize:        valueSize,
			Seed:             seed,
		})
		start := time.Now()
		ops, conflicts, err := runMixed(d, m)
		elapsed := time.Since(start)
		if err != nil {
			return nil, Table{}, fmt.Errorf("shards=%d: %w", shards, err)
		}
		if err := d.CheckInvariants(); err != nil {
			return nil, Table{}, fmt.Errorf("shards=%d invariants: %w", shards, err)
		}
		st := d.Stats()
		r := E10Result{
			Shards:       shards,
			Workers:      workers,
			Ops:          ops,
			Conflicts:    conflicts,
			Elapsed:      elapsed,
			OpsPerSec:    float64(ops) / elapsed.Seconds(),
			CacheHit:     st.Buffer.HitRate(),
			InvariantsOK: true,
		}
		results = append(results, r)
		tab.Rows = append(tab.Rows, []string{
			num(uint64(shards)), num(uint64(workers)), num(ops), num(conflicts),
			r.Elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", r.OpsPerSec), f3(r.CacheHit),
		})
	}
	return results, tab, nil
}
