package experiments

// E15: the maintenance economy — does the database age well? Two
// measurements against one paged directory:
//
//   - the fuzzy checkpoint pause: checkpoints run continuously while
//     concurrent writers commit, and Stats().Checkpoint reports how long
//     commit posting was actually quiesced per checkpoint. The per-
//     flush-group capture exists to keep this flat as the database
//     grows.
//   - compaction reclaim: the directory is aged (closed and reopened,
//     which orphans every run burned since the last checkpoint — the
//     same dead payload abandoned migrations and crashes leave behind),
//     then DB.Compact squeezes the burn file and the run reports the
//     write-once capacity handed back and the utilization recovery.

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/db"
	"repro/internal/txn"
	"repro/internal/workload"
)

// MaintenanceResult summarizes one E15 run.
type MaintenanceResult struct {
	Ops         uint64
	Checkpoints uint64
	// AvgPauseMillis / MaxPauseMillis are the commit-posting quiesce
	// pauses per checkpoint while writers ran.
	AvgPauseMillis float64
	MaxPauseMillis float64
	// DeadBytes is the unreachable write-once payload the aging left
	// behind; ReclaimedBytes what compaction truncated away.
	DeadBytes      uint64
	ReclaimedBytes uint64
	UtilBefore     float64
	UtilAfter      float64
}

// E15Maintenance drives `workers` concurrent writers over a hot key set
// (small nodes, background migration — time splits burn steadily) with
// checkpoints running throughout, then ages and compacts the directory.
// dir hosts the database.
func E15Maintenance(dir string, workers, opsPerWorker int) (MaintenanceResult, Table, error) {
	cfg := db.Config{
		Dir: dir, PagedDevices: true, Shards: 2, CheckpointBytes: -1,
		LeafCapacity: 512, IndexCapacity: 1024, SectorSize: 256,
		BackgroundMigration: true,
	}
	d, err := db.Open(cfg)
	if err != nil {
		return MaintenanceResult{}, Table{}, err
	}

	// Phase 1 — checkpoint pauses with writers running.
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				k := workload.SpreadKey(uint64(w*64 + i%64))
				err := d.Update(func(tx *txn.Txn) error {
					return tx.Put(k, []byte("maintenance-economy-payload-0123456789"))
				})
				if err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for running := true; running; {
		select {
		case <-done:
			running = false
		default:
			if err := d.Checkpoint(); err != nil {
				_ = d.Close()
				return MaintenanceResult{}, Table{}, err
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	select {
	case err := <-errCh:
		_ = d.Close()
		return MaintenanceResult{}, Table{}, err
	default:
	}
	if err := d.DrainMigrations(); err != nil {
		_ = d.Close()
		return MaintenanceResult{}, Table{}, err
	}
	cp := d.Stats().Checkpoint
	res := MaintenanceResult{
		Ops:         uint64(workers * opsPerWorker),
		Checkpoints: cp.Checkpoints,
	}
	if cp.Checkpoints > 0 {
		res.AvgPauseMillis = float64(cp.PauseNanos) / float64(cp.Checkpoints) / 1e6
	}
	res.MaxPauseMillis = float64(cp.MaxPauseNanos) / 1e6

	// Phase 2 — age and compact. Close writes no checkpoint, so the
	// reopen's replay re-burns the post-checkpoint migrations and the
	// originals become unreachable: the directory now carries exactly
	// the dead payload a crash or an abandoned migration leaves. The
	// burst below guarantees some burns land after the final checkpoint
	// — without it a short run can end with every burn already covered,
	// and the aging reclaims nothing.
	if err := d.Checkpoint(); err != nil {
		_ = d.Close()
		return MaintenanceResult{}, Table{}, err
	}
	burned0 := d.Stats().WORM.SectorsBurned
	for i := 0; d.Stats().WORM.SectorsBurned < burned0+4; i++ {
		if i >= 200_000 {
			_ = d.Close()
			return MaintenanceResult{}, Table{}, fmt.Errorf("experiments: aging burst burned no sectors after %d puts", i)
		}
		k := workload.SpreadKey(uint64(i % 64))
		err := d.Update(func(tx *txn.Txn) error {
			return tx.Put(k, []byte("maintenance-economy-payload-0123456789"))
		})
		if err != nil {
			_ = d.Close()
			return MaintenanceResult{}, Table{}, err
		}
		if i%64 == 63 {
			if err := d.DrainMigrations(); err != nil {
				_ = d.Close()
				return MaintenanceResult{}, Table{}, err
			}
		}
	}
	if err := d.DrainMigrations(); err != nil {
		_ = d.Close()
		return MaintenanceResult{}, Table{}, err
	}
	if err := d.Close(); err != nil {
		return MaintenanceResult{}, Table{}, err
	}
	a, err := db.Open(cfg)
	if err != nil {
		return MaintenanceResult{}, Table{}, err
	}
	defer a.Close()
	if err := a.DrainMigrations(); err != nil {
		return MaintenanceResult{}, Table{}, err
	}
	if err := a.Checkpoint(); err != nil {
		return MaintenanceResult{}, Table{}, err
	}
	before := a.Stats().Device
	rep, err := a.Compact()
	if err != nil {
		return MaintenanceResult{}, Table{}, err
	}
	after := a.Stats().Device
	res.DeadBytes = before.DeadBytes
	res.ReclaimedBytes = rep.ReclaimedBytes
	res.UtilBefore = before.Utilization
	res.UtilAfter = after.Utilization

	tab := Table{
		Title: "E15: maintenance economy — fuzzy checkpoint pause and compaction reclaim",
		Header: []string{"ops", "ckpts", "avg pause ms", "max pause ms",
			"dead B", "reclaimed B", "util before", "util after"},
		Rows: [][]string{{
			num(res.Ops), num(res.Checkpoints),
			fmt.Sprintf("%.3f", res.AvgPauseMillis), fmt.Sprintf("%.3f", res.MaxPauseMillis),
			num(res.DeadBytes), num(res.ReclaimedBytes),
			fmt.Sprintf("%.2f", res.UtilBefore), fmt.Sprintf("%.2f", res.UtilAfter),
		}},
		Remarks: []string{
			"pause = commit-posting quiesce per checkpoint, writers running (fuzzy per-flush-group capture)",
			"reclaimed = write-once capacity truncated by DB.Compact after aging the directory",
		},
	}
	return res, tab, nil
}
