package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// smallParams keeps experiment tests fast.
var smallParams = Params{Ops: 3000, ValueSize: 24, Seed: 1}

func TestPolicyByName(t *testing.T) {
	for _, name := range PolicyNames {
		if _, ok := PolicyByName(name); !ok {
			t.Errorf("policy %q unknown", name)
		}
	}
	if _, ok := PolicyByName("nope"); ok {
		t.Error("unknown policy accepted")
	}
}

func TestRunTSBInvariants(t *testing.T) {
	for _, u := range []float64{0, 0.5, 1} {
		run, err := RunTSB("tsb-lastupdate", u, smallParams)
		if err != nil {
			t.Fatal(err)
		}
		if err := run.Tree.CheckInvariants(); err != nil {
			t.Fatalf("u=%.1f: %v", u, err)
		}
		if run.Report.DistinctVersions == 0 {
			t.Fatalf("u=%.1f: no versions recorded", u)
		}
	}
	if _, err := RunTSB("bogus", 0, smallParams); err == nil {
		t.Error("bogus policy should fail")
	}
}

func cell(tab Table, row, col int) float64 {
	v, err := strconv.ParseFloat(strings.Split(tab.Rows[row][col], "|")[0], 64)
	if err != nil {
		panic(err)
	}
	return v
}

func rowByName(tab Table, name string) int {
	for i, r := range tab.Rows {
		if strings.HasPrefix(r[0], name) {
			return i
		}
	}
	return -1
}

func TestSweepShapes(t *testing.T) {
	s, err := RunSweep(smallParams)
	if err != nil {
		t.Fatal(err)
	}

	e1 := s.E1TotalSpace()
	e2 := s.E2CurrentSpace()
	e3 := s.E3Redundancy()
	e6 := s.E6SectorUtilization()

	lastCol := len(UpdateFractions) // column index of u=1.0 (col 0 is the name)

	// E1 shape: at u=1.0 the WOBT uses more total space than every TSB
	// policy, and tsb-keypref is the cheapest versioned store.
	wobtRow := rowByName(e1, "wobt")
	keyprefRow := rowByName(e1, "tsb-keypref")
	for _, name := range PolicyNames {
		if cell(e1, rowByName(e1, name), lastCol) >= cell(e1, wobtRow, lastCol) {
			t.Errorf("E1: %s total space should beat wobt at u=1.0\n%s", name, e1)
		}
	}
	for _, name := range []string{"tsb-now", "tsb-timepref"} {
		if cell(e1, keyprefRow, lastCol) > cell(e1, rowByName(e1, name), lastCol) {
			t.Errorf("E1: tsb-keypref should minimize total space vs %s\n%s", name, e1)
		}
	}

	// E2 shape: at u=1.0 time-preferring policies keep the current
	// database smaller than key-pref.
	if cell(e2, rowByName(e2, "tsb-timepref"), lastCol) >= cell(e2, rowByName(e2, "tsb-keypref"), lastCol) {
		t.Errorf("E2: tsb-timepref current space should beat tsb-keypref at u=1.0\n%s", e2)
	}

	// E3 shape: zero redundancy at u=0 for every TSB policy (insert-only
	// workloads only key split, §3.2). The WOBT is exempt: its splits
	// recopy current versions even for pure insertions — exactly the §5
	// criticism the TSB-tree fixes.
	for i := range e3.Rows {
		if strings.HasPrefix(e3.Rows[i][0], "wobt") {
			if got := cell(e3, i, 1); got == 0 {
				t.Errorf("E3: wobt should copy on insert-only splits\n%s", e3)
			}
			continue
		}
		if got := cell(e3, i, 1); got != 0 {
			t.Errorf("E3: %s has redundancy %v at u=0\n%s", e3.Rows[i][0], got, e3)
		}
	}
	if cell(e3, rowByName(e3, "tsb-lastupdate"), lastCol) > cell(e3, rowByName(e3, "tsb-now"), lastCol) {
		t.Errorf("E3: last-update redundancy should not exceed now\n%s", e3)
	}

	// E6 shape: wherever both migrate (u=1.0), TSB utilization beats
	// WOBT by a wide margin.
	tsbU := cell(e6, rowByName(e6, "tsb-timepref"), lastCol)
	wobtU := cell(e6, rowByName(e6, "wobt"), lastCol)
	if tsbU < 0.85 {
		t.Errorf("E6: tsb utilization %.3f, want near 1.0\n%s", tsbU, e6)
	}
	if wobtU > tsbU/1.5 {
		t.Errorf("E6: wobt utilization %.3f should be far below tsb %.3f\n%s", wobtU, tsbU, e6)
	}

	// E4 shape: at a low CO/CM ratio the minimizer is a time-splitting
	// policy, and the always-time-split policy (maximal redundancy) is
	// never the minimizer at CO/CM = 1. Note: the paper's claim that key
	// splitting always wins total space assumes node-granular accounting
	// on both devices; byte-packed WORM appends give moderate time
	// splitting a packing advantage (see EXPERIMENTS.md).
	e4 := s.E4CostFunction(0.6)
	minRow := e4.Rows[len(e4.Rows)-1]
	if minRow[1] == "tsb-keypref" {
		t.Errorf("E4: cheapest-optical minimizer should favor time splitting\n%s", e4)
	}
	if got := minRow[len(minRow)-1]; got == "tsb-timepref" {
		t.Errorf("E4: CO/CM=1 minimizer must not be the maximal-redundancy policy\n%s", e4)
	}

	// E7 shape: last-update migrates no more than now at u=1.0.
	e7 := s.E7SplitTimeChoice()
	nowCell := strings.Split(e7.Rows[rowByName(e7, "tsb-now")][lastCol], "|")
	luCell := strings.Split(e7.Rows[rowByName(e7, "tsb-lastupdate")][lastCol], "|")
	nowMig, _ := strconv.Atoi(nowCell[1])
	luMig, _ := strconv.Atoi(luCell[1])
	if luMig > nowMig {
		t.Errorf("E7: last-update migrated %d > now %d\n%s", luMig, nowMig, e7)
	}

	// E8 renders.
	if out := s.E8IndexSplits().String(); !strings.Contains(out, "idx-key-splits") {
		t.Error("E8 table malformed")
	}
}

func TestE5SearchIO(t *testing.T) {
	results, tab, err := E5SearchIO(Params{Ops: 2000, ValueSize: 24, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]E5Result)
	for _, r := range results {
		byKey[r.Structure+"/"+r.Query] = r
	}
	// Everyone answered current gets; only versioned stores answered
	// temporal queries.
	for _, k := range []string{"tsb/get-current", "wobt/get-current", "b+tree/get-current",
		"tsb/get-asof", "wobt/get-asof", "tsb/snapshot-scan", "wobt/snapshot-scan",
		"tsb/history", "wobt/history"} {
		if _, ok := byKey[k]; !ok {
			t.Fatalf("missing measurement %s\n%s", k, tab)
		}
	}
	if _, ok := byKey["b+tree/get-asof"]; ok {
		t.Error("b+tree cannot answer as-of queries")
	}
	// Current gets on the TSB-tree must not be pricier than on the WOBT:
	// the WOBT pays optical access for everything.
	if byKey["tsb/get-current"].AvgTime > byKey["wobt/get-current"].AvgTime {
		t.Errorf("tsb current gets (%v) should be no slower than wobt (%v)\n%s",
			byKey["tsb/get-current"].AvgTime, byKey["wobt/get-current"].AvgTime, tab)
	}
}

func TestE9ReadOnly(t *testing.T) {
	res, tab, err := E9ReadOnly(3, 3, 50, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.SnapshotLeaks != 0 {
		t.Errorf("snapshot leaks = %d, want 0\n%s", res.SnapshotLeaks, tab)
	}
	if !res.InvariantsOK {
		t.Error("invariants failed after concurrent run")
	}
	if res.ReaderScans != 60 {
		t.Errorf("reader scans = %d, want 60", res.ReaderScans)
	}
	if res.Commits == 0 {
		t.Error("no commits")
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{
		Title:   "demo",
		Header:  []string{"a", "bb"},
		Rows:    [][]string{{"xxx", "y"}},
		Remarks: []string{"note"},
	}
	out := tab.String()
	for _, want := range []string{"=== demo ===", "xxx", "-- note"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestE10Concurrent(t *testing.T) {
	results, tab, err := E10Concurrent([]int{1, 4}, 4, 150, 1, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results\n%s", len(results), tab)
	}
	for _, r := range results {
		if r.Ops == 0 || r.OpsPerSec <= 0 {
			t.Errorf("shards=%d: no throughput recorded: %+v", r.Shards, r)
		}
		if !r.InvariantsOK {
			t.Errorf("shards=%d: invariants failed", r.Shards)
		}
	}
}

func TestWormBurnRate(t *testing.T) {
	res, tab, err := WormBurnRate(3000)
	if err != nil {
		t.Fatal(err)
	}
	if res.BurnedBytes == 0 || res.BurnedPerOp <= 0 {
		t.Fatalf("no burn measured: %+v", res)
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Fatalf("utilization out of range: %+v", res)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("table: %+v", tab)
	}
}

func TestCheckpointDuration(t *testing.T) {
	rows, tab, err := CheckpointDuration(t.TempDir(), []int{800, 3200}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || len(tab.Rows) != 2 {
		t.Fatalf("rows: %+v", rows)
	}
	small, large := rows[0], rows[1]
	if large.TotalPages <= small.TotalPages {
		t.Fatalf("database did not grow: %+v", rows)
	}
	// The acceptance property: the flush after a fixed dirty set stays
	// O(dirty) as the database quadruples — it must not track total
	// pages (allow generous slack for boundary pages and timing noise).
	if large.DirtyFlushed*4 > large.TotalPages {
		t.Fatalf("checkpoint flushed %d of %d pages: not O(dirty)", large.DirtyFlushed, large.TotalPages)
	}
	if large.Millis <= 0 {
		t.Fatalf("no duration measured: %+v", large)
	}
}

func TestE15Maintenance(t *testing.T) {
	res, tab, err := E15Maintenance(t.TempDir(), 4, 300)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 1200 || res.Checkpoints == 0 {
		t.Fatalf("run shape: %+v", res)
	}
	// The aging protocol (close without checkpoint, reopen, replay
	// re-burns) must leave dead payload, and compaction must hand
	// capacity back with utilization not degraded.
	if res.DeadBytes == 0 || res.ReclaimedBytes == 0 {
		t.Fatalf("nothing reclaimed: %+v", res)
	}
	if res.UtilAfter < res.UtilBefore || res.UtilAfter > 1 {
		t.Fatalf("utilization did not recover: %+v", res)
	}
	if res.AvgPauseMillis <= 0 || res.MaxPauseMillis < res.AvgPauseMillis {
		t.Fatalf("pause accounting: %+v", res)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("table: %+v", tab)
	}
}
