package experiments

// E16: closed-loop service-layer throughput. The previous experiments
// measure the engine embedded; E16 measures it served — N concurrent
// client connections over loopback TCP, each pipelining a mixed
// put/get/scan workload through the tsbserve protocol with a bounded
// in-flight window. The run repeats with background time-split
// migration off and on: the migrator's latency win (E14) should
// survive the network stack and show up in the served p99, which is
// the number an operator actually sees.

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/db"
	"repro/internal/record"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/storage"
)

// ClosedLoopResult summarizes one mode's served run.
type ClosedLoopResult struct {
	Mode      string // "inline" or "background" (migration)
	Conns     int
	Window    int
	Ops       uint64
	Elapsed   time.Duration
	OpsPerSec float64
	P50Micros float64 // client-observed op latency (send to response)
	P99Micros float64
	ServerP99 uint64 // server-side execution p99 (histogram bound)
}

// E16ClosedLoop starts a server over loopback TCP and drives it with
// conns concurrent sessions, each pipelining opsPerConn mixed
// operations (puts and gets at a sliding window of `window` in-flight
// calls, plus periodic short scans through a server-side cursor), once
// per migration mode. Latency is measured at the client from send to
// response — the closed-loop number that includes framing, the wire,
// and window queueing, not just engine time.
func E16ClosedLoop(conns, window, opsPerConn int) ([]ClosedLoopResult, Table, error) {
	tab := Table{
		Title: "E16: closed-loop service layer — pipelined connections over loopback TCP",
		Header: []string{
			"migration", "conns", "window", "ops", "p50 us", "p99 us",
			"server p99 us", "elapsed", "ops/sec",
		},
		Remarks: []string{
			fmt.Sprintf("%d connections, one session each, window %d in-flight requests, mixed puts/gets plus periodic cursor scans", conns, window),
			"latency is client-observed send-to-response: protocol framing, loopback TCP, window queueing, and engine",
			"inline: time splits burn to the WORM on the serving goroutine, under the shard write latch",
			"background: the migrator defers the burn off-latch; E14's latency win should survive the network stack",
		},
	}
	var results []ClosedLoopResult
	for _, background := range []bool{false, true} {
		mode := "inline"
		if background {
			mode = "background"
		}
		r, err := runClosedLoop(background, conns, window, opsPerConn)
		if err != nil {
			return nil, Table{}, fmt.Errorf("%s: %w", mode, err)
		}
		r.Mode = mode
		results = append(results, r)
		tab.Rows = append(tab.Rows, []string{
			mode, num(uint64(r.Conns)), num(uint64(r.Window)), num(r.Ops),
			fmt.Sprintf("%.1f", r.P50Micros), fmt.Sprintf("%.1f", r.P99Micros),
			num(r.ServerP99),
			r.Elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", r.OpsPerSec),
		})
	}
	return results, tab, nil
}

func runClosedLoop(background bool, conns, window, opsPerConn int) (ClosedLoopResult, error) {
	// E14's device asymmetry, served: the write-once device really
	// sleeps per burn, so an inline time split stalls every request
	// pipelined behind it on that shard.
	cost := storage.CostModel{OpticalAccess: time.Millisecond, RealSleep: true}
	d, err := db.Open(db.Config{
		Shards:              8,
		PageSize:            8192,
		LeafCapacity:        2048,
		IndexCapacity:       2048,
		SectorSize:          512,
		Cost:                &cost,
		BackgroundMigration: background,
	})
	if err != nil {
		return ClosedLoopResult{}, err
	}
	defer func() { _ = d.Close() }()

	srv := server.New(d, server.Config{Window: window})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return ClosedLoopResult{}, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	addr := ln.Addr().String()

	lats := make([][]time.Duration, conns)
	errCh := make(chan error, conns)
	var wg sync.WaitGroup
	start := time.Now()
	for cn := 0; cn < conns; cn++ {
		lats[cn] = make([]time.Duration, 0, opsPerConn)
		wg.Add(1)
		go func(cn int) {
			defer wg.Done()
			errCh <- runConn(addr, cn, window, opsPerConn, &lats[cn])
		}(cn)
	}
	wg.Wait()
	for i := 0; i < conns; i++ {
		if err := <-errCh; err != nil {
			return ClosedLoopResult{}, err
		}
	}
	// Charge deferred burns to the same clock, as in E14.
	if err := d.DrainMigrations(); err != nil {
		return ClosedLoopResult{}, err
	}
	elapsed := time.Since(start)
	serverP99 := srv.Stats().P99Micros
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return ClosedLoopResult{}, err
	}
	if err := <-serveDone; err != nil {
		return ClosedLoopResult{}, err
	}
	if err := d.CheckInvariants(); err != nil {
		return ClosedLoopResult{}, err
	}

	var all []time.Duration
	for _, ls := range lats {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		return float64(all[int(p*float64(len(all)-1))].Nanoseconds()) / 1000
	}
	r := ClosedLoopResult{
		Conns:     conns,
		Window:    window,
		Ops:       uint64(len(all)),
		Elapsed:   elapsed,
		P50Micros: pct(0.50),
		P99Micros: pct(0.99),
		ServerP99: serverP99,
	}
	if elapsed > 0 {
		r.OpsPerSec = float64(r.Ops) / elapsed.Seconds()
	}
	return r, nil
}

// runConn is one closed-loop session: a sliding window of pipelined
// puts and gets on the connection's own hot keys (updates build the
// history that forces time splits; disjoint keys mean no lock
// conflicts), a snapshot refresh every 256 ops so gets read fresh data,
// and a short server-side cursor scan every 200 ops.
func runConn(addr string, cn, window, opsPerConn int, lats *[]time.Duration) error {
	c, err := client.Dial(addr, client.Options{
		Tenant: []byte(fmt.Sprintf("e16-%04d", cn%64)),
		Window: window,
	})
	if err != nil {
		return fmt.Errorf("conn %d dial: %w", cn, err)
	}
	defer func() { _ = c.Close() }()

	type inflight struct {
		t0   time.Time
		call *client.Call
		put  bool
	}
	var pend []inflight
	reap := func(f inflight) error {
		var err error
		if f.put {
			_, err = f.call.Time()
		} else {
			_, _, err = f.call.Value()
		}
		if err != nil {
			return err
		}
		*lats = append(*lats, time.Since(f.t0))
		return nil
	}
	payload := []byte(fmt.Sprintf("e16-payload-%04d-0123456789abcdef", cn))
	for i := 0; i < opsPerConn; i++ {
		k := record.Uint64Key(uint64(i%64)*0x9e3779b97f4a7c15&^0xffff | uint64(cn))
		var f inflight
		f.t0 = time.Now()
		if i%10 < 7 {
			f.put = true
			f.call, err = c.PutAsync(k, payload)
		} else {
			f.call, err = c.GetAsync(k, 0)
		}
		if err != nil {
			return fmt.Errorf("conn %d op %d: %w", cn, i, err)
		}
		pend = append(pend, f)
		if len(pend) >= window {
			if err := reap(pend[0]); err != nil {
				return fmt.Errorf("conn %d: %w", cn, err)
			}
			pend = pend[1:]
		}
		if i%256 == 255 {
			if _, err := c.Refresh(); err != nil {
				return fmt.Errorf("conn %d refresh: %w", cn, err)
			}
		}
		if i%200 == 199 {
			sc, err := c.Scan(nil, record.InfiniteBound(), client.ScanOptions{Limit: 8, BatchSize: 8})
			if err != nil {
				return fmt.Errorf("conn %d scan: %w", cn, err)
			}
			if _, err := sc.Collect(); err != nil {
				return fmt.Errorf("conn %d scan: %w", cn, err)
			}
		}
	}
	for _, f := range pend {
		if err := reap(f); err != nil {
			return fmt.Errorf("conn %d: %w", cn, err)
		}
	}
	return nil
}
