// Package experiments implements the paper's evaluation plan. The SIGMOD
// 1989 TSB-tree paper has no result tables of its own; §3.2 and §5 state
// what the authors' NSF-funded implementation would measure:
//
//	"We expect to measure total space use, space use in the current
//	 database, and amount of redundancy, under different splitting
//	 policies and with different rates of update versus insertion."
//
// plus the storage cost function CS = SpaceM·CM + SpaceO·CO and the
// qualitative claims of §1 (sector utilization, access costs, lock-free
// read-only transactions). Experiments E1-E9 (see DESIGN.md) realize that
// plan; cmd/tsbench prints their tables and bench_test.go exposes each as
// a benchmark.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/bplus"
	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/record"
	"repro/internal/storage"
	"repro/internal/wobt"
	"repro/internal/workload"
)

// Params sizes the experiments. The defaults run in seconds; cmd/tsbench
// can scale them up.
type Params struct {
	Ops        int   // operations per run (default 20000)
	ValueSize  int   // record payload bytes (default 32)
	PageSize   int   // magnetic page bytes (default 4096)
	SectorSize int   // WORM sector bytes (default 1024)
	Seed       int64 // workload seed (default 1)
	// Dist selects which existing keys updates target (default Uniform).
	Dist workload.Distribution
	// BufferPages, when nonzero, places an LRU page cache of that many
	// pages between the TSB-tree and the magnetic device.
	BufferPages int
}

func (p Params) withDefaults() Params {
	if p.Ops == 0 {
		p.Ops = 20000
	}
	if p.ValueSize == 0 {
		p.ValueSize = 32
	}
	if p.PageSize == 0 {
		p.PageSize = 4096
	}
	if p.SectorSize == 0 {
		p.SectorSize = 1024
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// PolicyNames lists the TSB-tree policies compared throughout, in display
// order.
var PolicyNames = []string{"tsb-now", "tsb-lastupdate", "tsb-median", "tsb-keypref", "tsb-timepref"}

// PolicyByName maps experiment policy names to core policies.
func PolicyByName(name string) (core.Policy, bool) {
	switch name {
	case "tsb-now":
		return core.PolicyWOBTLike, true
	case "tsb-lastupdate":
		return core.PolicyLastUpdate, true
	case "tsb-median":
		return core.Policy{KeySplitFraction: 0.5, SplitTime: core.SplitAtMedian, IndexKeySplitFraction: 0.5}, true
	case "tsb-keypref":
		return core.PolicyKeyPref, true
	case "tsb-timepref":
		return core.PolicyTimePref, true
	default:
		return core.Policy{}, false
	}
}

// UpdateFractions is the sweep of §5's "different rates of update versus
// insertion".
var UpdateFractions = []float64{0.0, 0.2, 0.4, 0.6, 0.8, 1.0}

// initialKeys pre-seeds a real key population so update-heavy workloads
// are not a degenerate hotspot.
func initialKeys(p Params) int {
	n := p.Ops / 20
	if n < 16 {
		n = 16
	}
	return n
}

// TSBRun is the result of one TSB-tree workload run.
type TSBRun struct {
	Policy         string
	UpdateFraction float64
	Report         metrics.SpaceReport
	Tree           *core.Tree
	Mag            *storage.MagneticDisk
	WORM           *storage.WORMDisk
}

// RunTSB drives one workload against a fresh TSB-tree.
func RunTSB(policyName string, u float64, p Params) (*TSBRun, error) {
	p = p.withDefaults()
	policy, ok := PolicyByName(policyName)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown policy %q", policyName)
	}
	mag := storage.NewMagneticDisk(p.PageSize, storage.DefaultCostModel())
	worm := storage.NewWORMDisk(storage.WORMConfig{SectorSize: p.SectorSize, Cost: storage.DefaultCostModel()})
	var pages storage.PageStore = mag
	if p.BufferPages > 0 {
		pages = buffer.NewPool(mag, p.BufferPages)
	}
	tree, err := core.New(pages, worm, core.Config{Policy: policy, MaxKeySize: 32, MaxValueSize: p.ValueSize + 16})
	if err != nil {
		return nil, err
	}
	gen := workload.New(workload.Config{
		Ops: p.Ops, UpdateFraction: u, ValueSize: p.ValueSize, Seed: p.Seed,
		Dist: p.Dist, InitialKeys: initialKeys(p),
	})
	ts := record.Timestamp(0)
	apply := func(op workload.Op) error {
		ts++
		return tree.Insert(record.Version{Key: op.Key, Time: ts, Value: op.Value, Tombstone: op.Delete})
	}
	for _, op := range gen.InitialOps() {
		if err := apply(op); err != nil {
			return nil, err
		}
	}
	for {
		op, more := gen.Next()
		if !more {
			break
		}
		if err := apply(op); err != nil {
			return nil, err
		}
	}
	return &TSBRun{
		Policy:         policyName,
		UpdateFraction: u,
		Report:         metrics.Collect(tree.Stats(), mag.Stats(), worm.Stats(), p.PageSize, p.SectorSize),
		Tree:           tree,
		Mag:            mag,
		WORM:           worm,
	}, nil
}

// WOBTRun is the result of one Write-Once B-tree workload run.
type WOBTRun struct {
	UpdateFraction float64
	WORM           *storage.WORMDisk
	Tree           *wobt.Tree
	Stats          wobt.Stats
}

// RunWOBT drives the same workload against Easton's WOBT, entirely on the
// write-once device (the paper's §2 baseline).
func RunWOBT(u float64, p Params) (*WOBTRun, error) {
	p = p.withDefaults()
	worm := storage.NewWORMDisk(storage.WORMConfig{SectorSize: p.SectorSize, Cost: storage.DefaultCostModel()})
	tree, err := wobt.New(worm, wobt.Config{NodeSectors: 8})
	if err != nil {
		return nil, err
	}
	gen := workload.New(workload.Config{
		Ops: p.Ops, UpdateFraction: u, ValueSize: p.ValueSize, Seed: p.Seed,
		Dist: p.Dist, InitialKeys: initialKeys(p),
	})
	ts := record.Timestamp(0)
	apply := func(op workload.Op) error {
		ts++
		return tree.Insert(record.Version{Key: op.Key, Time: ts, Value: op.Value, Tombstone: op.Delete})
	}
	for _, op := range gen.InitialOps() {
		if err := apply(op); err != nil {
			return nil, err
		}
	}
	for {
		op, more := gen.Next()
		if !more {
			break
		}
		if err := apply(op); err != nil {
			return nil, err
		}
	}
	return &WOBTRun{UpdateFraction: u, WORM: worm, Tree: tree, Stats: tree.Stats()}, nil
}

// RunBPlus drives the workload against the single-version B+-tree (current
// database only; history is lost on update).
func RunBPlus(u float64, p Params) (*storage.MagneticDisk, *bplus.Tree, error) {
	p = p.withDefaults()
	mag := storage.NewMagneticDisk(p.PageSize, storage.DefaultCostModel())
	tree, err := bplus.New(mag, bplus.Config{MaxKeySize: 32, MaxValueSize: p.ValueSize + 16})
	if err != nil {
		return nil, nil, err
	}
	gen := workload.New(workload.Config{
		Ops: p.Ops, UpdateFraction: u, ValueSize: p.ValueSize, Seed: p.Seed,
		Dist: p.Dist, InitialKeys: initialKeys(p),
	})
	apply := func(op workload.Op) error {
		if op.Delete {
			_, err := tree.Delete(op.Key)
			return err
		}
		return tree.Put(op.Key, op.Value)
	}
	for _, op := range gen.InitialOps() {
		if err := apply(op); err != nil {
			return nil, nil, err
		}
	}
	for {
		op, more := gen.Next()
		if !more {
			break
		}
		if err := apply(op); err != nil {
			return nil, nil, err
		}
	}
	return mag, tree, nil
}

// Table is a printable experiment result.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Remarks []string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s ===\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, r := range t.Remarks {
		fmt.Fprintf(&b, "-- %s\n", r)
	}
	return b.String()
}

func f3(v float64) string   { return fmt.Sprintf("%.3f", v) }
func kb(v uint64) string    { return fmt.Sprintf("%d", v/1024) }
func num(v uint64) string   { return fmt.Sprintf("%d", v) }
func frac(v float64) string { return fmt.Sprintf("%.1f", v) }
