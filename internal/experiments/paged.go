package experiments

// Paged-device trajectory points (ROADMAP "next candidates"): the WORM
// burn rate — how much write-once capacity each committed operation
// consumes, and how much of it is payload — and the paged checkpoint
// duration, which must scale with the dirty-page set, not the database
// size (the whole point of paging the checkpoint).

import (
	"fmt"
	"time"

	"repro/internal/db"
	"repro/internal/record"
	"repro/internal/txn"
	"repro/internal/workload"
)

// BurnRateResult summarizes WORM consumption over a committed workload.
type BurnRateResult struct {
	Ops          uint64
	BurnedBytes  uint64 // SpaceO consumed by the run
	PayloadBytes uint64
	BurnedPerOp  float64 // bytes of write-once capacity per commit
	Utilization  float64 // payload / burned
}

// WormBurnRate drives an update-heavy single-shard workload (small
// nodes, so time splits migrate steadily) and reports how fast the
// write-once device burns: SpaceO bytes per committed operation and the
// payload fraction. Burn behavior is a property of the splitting policy
// and workload, not the device backend, so the in-memory device keeps
// the measurement free of filesystem noise.
func WormBurnRate(ops int) (BurnRateResult, Table, error) {
	d, err := db.Open(db.Config{LeafCapacity: 512, IndexCapacity: 1024, SectorSize: 256})
	if err != nil {
		return BurnRateResult{}, Table{}, err
	}
	defer d.Close()
	for i := 0; i < ops; i++ {
		k := workload.SpreadKey(uint64(i % 256))
		err := d.Update(func(tx *txn.Txn) error {
			return tx.Put(k, []byte("burn-rate-payload-0123456789abcdef"))
		})
		if err != nil {
			return BurnRateResult{}, Table{}, err
		}
	}
	dev := d.Stats().Device
	res := BurnRateResult{
		Ops:          uint64(ops),
		BurnedBytes:  dev.SpaceO,
		PayloadBytes: dev.PayloadBytes,
		Utilization:  dev.Utilization,
	}
	if ops > 0 {
		res.BurnedPerOp = float64(dev.SpaceO) / float64(ops)
	}
	tab := Table{
		Title:  "WORM burn rate — write-once capacity per committed operation",
		Header: []string{"ops", "burned B", "payload B", "B/op", "utilization"},
		Rows: [][]string{{
			num(res.Ops), num(res.BurnedBytes), num(res.PayloadBytes),
			fmt.Sprintf("%.1f", res.BurnedPerOp), fmt.Sprintf("%.2f", res.Utilization),
		}},
		Remarks: []string{
			"burned = SpaceO (sectors consumed x sector size); consolidated appends keep utilization high (§3.4)",
		},
	}
	return res, tab, nil
}

// CheckpointDurationRow is one database size's paged-checkpoint cost.
type CheckpointDurationRow struct {
	Versions     int
	TotalPages   int
	DirtyFlushed int
	Millis       float64
}

// CheckpointDuration measures the incremental paged checkpoint: for
// each database size, fill a paged directory, checkpoint it, dirty a
// fixed small number of keys, and time the next checkpoint. Its cost
// must track the (fixed) dirty set, not the (growing) database — the
// acceptance measurement for the paged-device subsystem. dirBase hosts
// one subdirectory per size.
func CheckpointDuration(dirBase string, sizes []int, touch int) ([]CheckpointDurationRow, Table, error) {
	rows := make([]CheckpointDurationRow, 0, len(sizes))
	tab := Table{
		Title:  "paged checkpoint duration — cost tracks dirty pages, not database size",
		Header: []string{"versions", "total pages", "pages flushed", "checkpoint ms"},
		Remarks: []string{
			fmt.Sprintf("each checkpoint follows %d single-key updates on an already-checkpointed database", touch),
			"a flat column under a growing database is the O(dirty) property",
		},
	}
	for _, size := range sizes {
		dir := fmt.Sprintf("%s/ckpt-size-%d", dirBase, size)
		d, err := db.Open(db.Config{Dir: dir, PagedDevices: true, CheckpointBytes: -1, Shards: 2})
		if err != nil {
			return nil, Table{}, err
		}
		for n := 0; n < size; n += 128 {
			err := d.Update(func(tx *txn.Txn) error {
				for j := n; j < n+128 && j < size; j++ {
					k := record.Uint64Key(uint64(j) * 0x9e3779b97f4a7c15)
					if err := tx.Put(k, []byte("checkpoint-duration-payload-012345")); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				_ = d.Close()
				return nil, Table{}, err
			}
		}
		if err := d.Checkpoint(); err != nil {
			_ = d.Close()
			return nil, Table{}, err
		}
		for t := 0; t < touch; t++ {
			k := record.Uint64Key(uint64(t*(size/touch+1)) * 0x9e3779b97f4a7c15)
			err := d.Update(func(tx *txn.Txn) error { return tx.Put(k, []byte("dirty")) })
			if err != nil {
				_ = d.Close()
				return nil, Table{}, err
			}
		}
		flushedBefore := d.Stats().Buffer.FlushedPages
		start := time.Now()
		if err := d.Checkpoint(); err != nil {
			_ = d.Close()
			return nil, Table{}, err
		}
		elapsed := time.Since(start)
		st := d.Stats()
		row := CheckpointDurationRow{
			Versions:     size,
			TotalPages:   st.Magnetic.PagesInUse,
			DirtyFlushed: int(st.Buffer.FlushedPages - flushedBefore),
			Millis:       float64(elapsed.Microseconds()) / 1000,
		}
		rows = append(rows, row)
		tab.Rows = append(tab.Rows, []string{
			num(uint64(row.Versions)), num(uint64(row.TotalPages)),
			num(uint64(row.DirtyFlushed)), fmt.Sprintf("%.2f", row.Millis),
		})
		_ = d.Close()
	}
	return rows, tab, nil
}
