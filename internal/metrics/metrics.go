// Package metrics computes the space and cost measures of the paper's
// evaluation plan: total space use, space use in the current database,
// amount of redundancy (§5), and the storage cost function of §3.2,
//
//	CS = SpaceM × CM + SpaceO × CO,
//
// where CM and CO are the per-byte costs of magnetic and optical storage.
package metrics

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/storage"
)

// SpaceReport summarizes space consumption after a workload.
type SpaceReport struct {
	// SpaceM: bytes of magnetic (current database) storage in use.
	MagneticBytes uint64
	// SpaceO: bytes of optical (historical database) storage burned.
	WORMBytes uint64
	// PayloadBytes: WORM bytes holding real data (vs. sector waste).
	PayloadBytes uint64
	// SectorUtilization = PayloadBytes / WORMBytes (1.0 when no WORM
	// space is used).
	SectorUtilization float64

	// Versions written by the workload (distinct logical versions).
	DistinctVersions uint64
	// RedundantVersions copied by clause 3 of the Time-Split Rule.
	RedundantVersions uint64
	// RedundantIndexEntries duplicated by the index split rules.
	RedundantIndexEntries uint64

	CurrentNodes    uint64
	HistoricalNodes uint64
}

// Collect builds a SpaceReport from the tree and device statistics.
func Collect(tree core.Stats, mag storage.MagneticStats, worm storage.WORMStats, pageSize, sectorSize int) SpaceReport {
	r := SpaceReport{
		MagneticBytes:         mag.BytesInUse(pageSize),
		WORMBytes:             worm.BytesBurned(sectorSize),
		PayloadBytes:          worm.PayloadBytes,
		SectorUtilization:     worm.Utilization(sectorSize),
		DistinctVersions:      tree.Inserts,
		RedundantVersions:     tree.RedundantVersions,
		RedundantIndexEntries: tree.RedundantIndexEntries,
		CurrentNodes:          tree.CurrentNodes,
		HistoricalNodes:       tree.HistoricalNodes,
	}
	return r
}

// TotalBytes returns SpaceM + SpaceO.
func (r SpaceReport) TotalBytes() uint64 { return r.MagneticBytes + r.WORMBytes }

// Cost evaluates the §3.2 cost function with per-byte costs cm and co.
func (r SpaceReport) Cost(cm, co float64) float64 {
	return float64(r.MagneticBytes)*cm + float64(r.WORMBytes)*co
}

// RedundancyRatio returns redundant version copies per distinct version.
func (r SpaceReport) RedundancyRatio() float64 {
	if r.DistinctVersions == 0 {
		return 0
	}
	return float64(r.RedundantVersions) / float64(r.DistinctVersions)
}

// String renders the report as one table row.
func (r SpaceReport) String() string {
	return fmt.Sprintf("mag=%dB worm=%dB total=%dB util=%.3f redundancy=%.3f (versions=%d redundant=%d idx-dup=%d nodes=%d+%d)",
		r.MagneticBytes, r.WORMBytes, r.TotalBytes(), r.SectorUtilization,
		r.RedundancyRatio(), r.DistinctVersions, r.RedundantVersions,
		r.RedundantIndexEntries, r.CurrentNodes, r.HistoricalNodes)
}
