package metrics

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/storage"
)

func TestCollectAndCost(t *testing.T) {
	tree := core.Stats{
		Inserts:           100,
		RedundantVersions: 25,
		CurrentNodes:      4,
		HistoricalNodes:   6,
	}
	mag := storage.MagneticStats{PagesInUse: 10}
	worm := storage.WORMStats{SectorsBurned: 20, PayloadBytes: 18000, WastedBytes: 2480}
	r := Collect(tree, mag, worm, 4096, 1024)

	if r.MagneticBytes != 10*4096 {
		t.Errorf("MagneticBytes = %d", r.MagneticBytes)
	}
	if r.WORMBytes != 20*1024 {
		t.Errorf("WORMBytes = %d", r.WORMBytes)
	}
	if r.TotalBytes() != r.MagneticBytes+r.WORMBytes {
		t.Error("TotalBytes mismatch")
	}
	if got := r.Cost(1.0, 0.1); got != float64(r.MagneticBytes)+0.1*float64(r.WORMBytes) {
		t.Errorf("Cost = %v", got)
	}
	if r.RedundancyRatio() != 0.25 {
		t.Errorf("RedundancyRatio = %v", r.RedundancyRatio())
	}
	if r.SectorUtilization <= 0.8 || r.SectorUtilization > 1.0 {
		t.Errorf("SectorUtilization = %v", r.SectorUtilization)
	}
	if !strings.Contains(r.String(), "redundancy=0.250") {
		t.Errorf("String() = %s", r)
	}
}

func TestZeroReport(t *testing.T) {
	r := Collect(core.Stats{}, storage.MagneticStats{}, storage.WORMStats{}, 4096, 1024)
	if r.RedundancyRatio() != 0 {
		t.Error("empty redundancy should be 0")
	}
	if r.SectorUtilization != 1 {
		t.Error("unused WORM should report utilization 1")
	}
	if r.Cost(1, 1) != 0 {
		t.Error("empty cost should be 0")
	}
}

func TestCostMonotoneInCO(t *testing.T) {
	r := SpaceReport{MagneticBytes: 1000, WORMBytes: 5000}
	if r.Cost(1, 0.1) >= r.Cost(1, 0.5) {
		t.Error("cost must grow with CO")
	}
}
