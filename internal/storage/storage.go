// Package storage simulates the two-tier storage hierarchy the TSB-tree is
// designed for (Lomet & Salzberg, SIGMOD 1989, §1):
//
//   - a MagneticDisk: an erasable random-access page device holding the
//     current database and all index nodes that reference it, and
//   - a WORMDisk: a write-once random-access sector device holding the
//     historical database. A sector, once written, is burned (the paper's
//     error-correcting-code argument) and can never be rewritten; writing
//     less than a full sector wastes the remainder.
//
// Both devices keep the accounting the paper's evaluation plan calls for
// (SpaceM, SpaceO, payload vs. burned bytes) plus an access-cost model with
// the paper's quoted characteristics: optical seeks ~3× slower than
// magnetic, and ~20 s robot mount delays when a platter of an optical
// library is not on line.
package storage

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// DeviceKind identifies which simulated device an address refers to.
type DeviceKind uint8

const (
	// KindNone is the kind of the nil address.
	KindNone DeviceKind = iota
	// KindMagnetic addresses a page on the erasable magnetic disk.
	KindMagnetic
	// KindWORM addresses a sector run on the write-once optical disk.
	KindWORM
)

// String names the device kind.
func (k DeviceKind) String() string {
	switch k {
	case KindMagnetic:
		return "mag"
	case KindWORM:
		return "worm"
	default:
		return "nil"
	}
}

// Addr locates a node on one of the devices. For magnetic addresses Off is
// a page number and Len is unused (a page is always PageSize bytes). For
// WORM addresses Off is the first sector and Len the byte length of the
// payload — exactly the <address, length> pair the paper says an index
// pointer to a historical node must record (§3.4).
type Addr struct {
	Kind DeviceKind
	Off  uint64
	Len  uint32
}

// NilAddr is the zero address, meaning "no node".
var NilAddr = Addr{}

// IsNil reports whether the address refers to no node.
func (a Addr) IsNil() bool { return a.Kind == KindNone }

// IsWORM reports whether the address refers to the historical device.
func (a Addr) IsWORM() bool { return a.Kind == KindWORM }

// IsMagnetic reports whether the address refers to the current device.
func (a Addr) IsMagnetic() bool { return a.Kind == KindMagnetic }

// String renders the address for debugging.
func (a Addr) String() string {
	if a.IsNil() {
		return "<nil>"
	}
	if a.Kind == KindWORM {
		return fmt.Sprintf("worm:%d+%d", a.Off, a.Len)
	}
	return fmt.Sprintf("mag:%d", a.Off)
}

// Errors reported by the devices.
var (
	// ErrBurned is returned when a write targets an already-burned WORM
	// sector: the defining property of write-once media.
	ErrBurned = errors.New("storage: sector already burned")
	// ErrUnwritten is returned when a read targets a sector or page that
	// has never been written.
	ErrUnwritten = errors.New("storage: unwritten location")
	// ErrBadPage is returned for operations on unallocated or
	// out-of-range pages.
	ErrBadPage = errors.New("storage: bad page")
	// ErrTooLarge is returned when data exceeds the page or sector size.
	ErrTooLarge = errors.New("storage: data exceeds block size")
)

// CostModel holds the simulated latency parameters. The defaults follow the
// paper's quoted characteristics: optical seek times longer than magnetic
// "by about a factor of three" and "around 20 seconds ... to mount a disk
// which is not already on line" (§1).
type CostModel struct {
	MagneticAccess time.Duration // seek+rotate per magnetic page I/O
	MagneticXfer   time.Duration // transfer per page
	OpticalAccess  time.Duration // seek+rotate per optical access
	OpticalXfer    time.Duration // transfer per sector
	MountDelay     time.Duration // robot mount of an off-line platter

	// RealSleep makes the devices actually sleep their access cost
	// (while holding the device mutex — one arm, one head) instead of
	// only accounting it in SimTime. Latency experiments use it to make
	// device asymmetry physically observable — e.g. E14, where the
	// write-once burn either runs under a shard's write latch (inline
	// time splits) or off-latch (the background migrator). Keep the
	// durations small: a RealSleep MountDelay of 20s means a real 20s.
	RealSleep bool
}

// charge accumulates cost c into the device's SimTime accumulator and,
// under RealSleep, actually sleeps it. Callers hold the device mutex —
// one arm, one head: concurrent accesses to one device serialize, which
// is exactly the asymmetry latency experiments want to observe.
func (cm CostModel) charge(acc *time.Duration, c time.Duration) {
	*acc += c
	if cm.RealSleep && c > 0 {
		time.Sleep(c)
	}
}

// DefaultCostModel returns latencies typical of the paper's era.
func DefaultCostModel() CostModel {
	return CostModel{
		MagneticAccess: 16 * time.Millisecond,
		MagneticXfer:   1 * time.Millisecond,
		OpticalAccess:  48 * time.Millisecond, // 3× magnetic
		OpticalXfer:    3 * time.Millisecond,
		MountDelay:     20 * time.Second,
	}
}

// MagneticStats is a snapshot of magnetic-disk accounting.
type MagneticStats struct {
	Reads      uint64
	Writes     uint64
	Allocs     uint64
	Frees      uint64
	PagesInUse int
	HighWater  int           // maximum pages ever simultaneously in use
	SimTime    time.Duration // accumulated simulated access latency
}

// BytesInUse returns the magnetic space consumed, in bytes, assuming whole
// pages (this is SpaceM in the paper's cost function).
func (s MagneticStats) BytesInUse(pageSize int) uint64 {
	return uint64(s.PagesInUse) * uint64(pageSize)
}

// MagneticDisk is the erasable random-access device holding the current
// database. Pages can be allocated, rewritten in place, and freed.
// It is safe for concurrent use.
type MagneticDisk struct {
	mu       sync.Mutex //tsb:latch level=8 name=magnetic-disk
	pageSize int
	cost     CostModel
	pages    [][]byte // nil slot = never allocated or freed
	live     []bool
	free     []uint64
	stats    MagneticStats
}

// NewMagneticDisk returns an empty magnetic disk with the given page size.
func NewMagneticDisk(pageSize int, cost CostModel) *MagneticDisk {
	if pageSize <= 0 {
		panic("storage: page size must be positive")
	}
	return &MagneticDisk{pageSize: pageSize, cost: cost}
}

// PageSize returns the fixed page size in bytes.
func (d *MagneticDisk) PageSize() int { return d.pageSize }

// Alloc reserves a fresh (or recycled) page and returns its page number.
func (d *MagneticDisk) Alloc() (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var p uint64
	if n := len(d.free); n > 0 {
		p = d.free[n-1]
		d.free = d.free[:n-1]
	} else {
		p = uint64(len(d.pages))
		d.pages = append(d.pages, nil)
		d.live = append(d.live, false)
	}
	d.live[p] = true
	d.stats.Allocs++
	d.stats.PagesInUse++
	if d.stats.PagesInUse > d.stats.HighWater {
		d.stats.HighWater = d.stats.PagesInUse
	}
	return p, nil
}

// Write stores data (at most one page) at page p, overwriting any previous
// contents. This erasability is what distinguishes the current database's
// device from the WORM (§1: references to migrating data must be
// changeable, and aborted transactions' data must be erasable).
func (d *MagneticDisk) Write(p uint64, data []byte) error {
	if len(data) > d.pageSize {
		return fmt.Errorf("%w: %d > page size %d", ErrTooLarge, len(data), d.pageSize)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if p >= uint64(len(d.pages)) || !d.live[p] {
		return fmt.Errorf("%w: write to page %d", ErrBadPage, p)
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	d.pages[p] = buf
	d.stats.Writes++
	d.cost.charge(&d.stats.SimTime, d.cost.MagneticAccess+d.cost.MagneticXfer)
	return nil
}

// Read returns a copy of the contents of page p.
func (d *MagneticDisk) Read(p uint64) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if p >= uint64(len(d.pages)) || !d.live[p] {
		return nil, fmt.Errorf("%w: read of page %d", ErrBadPage, p)
	}
	if d.pages[p] == nil {
		return nil, fmt.Errorf("%w: page %d", ErrUnwritten, p)
	}
	d.stats.Reads++
	d.cost.charge(&d.stats.SimTime, d.cost.MagneticAccess+d.cost.MagneticXfer)
	out := make([]byte, len(d.pages[p]))
	copy(out, d.pages[p])
	return out, nil
}

// Free releases page p for reuse.
func (d *MagneticDisk) Free(p uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if p >= uint64(len(d.pages)) || !d.live[p] {
		return fmt.Errorf("%w: free of page %d", ErrBadPage, p)
	}
	d.live[p] = false
	d.pages[p] = nil
	d.free = append(d.free, p)
	d.stats.Frees++
	d.stats.PagesInUse--
	return nil
}

// Stats returns a snapshot of the accounting counters.
func (d *MagneticDisk) Stats() MagneticStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// PageStore is the page-device interface the trees build on. *MagneticDisk
// implements it directly; buffer.Pool implements it as a caching layer.
type PageStore interface {
	Alloc() (uint64, error)
	Read(p uint64) ([]byte, error)
	Write(p uint64, data []byte) error
	Free(p uint64) error
	PageSize() int
}

var _ PageStore = (*MagneticDisk)(nil)

// PageDevice is the full magnetic-device contract: a PageStore that also
// keeps the paper's SpaceM accounting. *MagneticDisk (the simulated
// device) and pagestore.PageFile (the file-backed device) both satisfy
// it.
type PageDevice interface {
	PageStore
	Stats() MagneticStats
}

var _ PageDevice = (*MagneticDisk)(nil)

// WORMDevice is the historical-device contract the trees build on: the
// consolidated-append migration path of §3.4 plus the SpaceO and
// burned-vs-payload accounting. *WORMDisk (the simulated device, which
// additionally offers the WOBT's extent/sector interface) and
// pagestore.BurnFile (the file-backed device) both satisfy it.
type WORMDevice interface {
	SectorSize() int
	Append(data []byte) (Addr, error)
	ReadAt(addr Addr) ([]byte, error)
	Stats() WORMStats
}

var _ WORMDevice = (*WORMDisk)(nil)
