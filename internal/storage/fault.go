package storage

import (
	"errors"
	"fmt"
	"sync"
)

// ErrInjected is the base error of all injected faults.
var ErrInjected = errors.New("storage: injected fault")

// FaultyPages wraps a PageStore and fails operations on demand — the
// failure-injection harness for exercising error paths in the trees.
// Faults are scheduled by operation count: FailAfter(op, n) makes the
// n-th subsequent call of that operation fail (1 = the next one).
// It is safe for concurrent use.
type FaultyPages struct {
	mu    sync.Mutex //tsb:latch level=8 name=faulty-pages
	inner PageStore
	count map[string]int // operation -> calls seen
	fail  map[string]int // operation -> call number to fail at
}

// NewFaultyPages wraps inner.
func NewFaultyPages(inner PageStore) *FaultyPages {
	return &FaultyPages{
		inner: inner,
		count: make(map[string]int),
		fail:  make(map[string]int),
	}
}

// FailAfter schedules the n-th subsequent call of op ("read", "write",
// "alloc", "free") to fail with ErrInjected.
func (f *FaultyPages) FailAfter(op string, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.count[op] = 0
	f.fail[op] = n
}

// Clear removes all scheduled faults.
func (f *FaultyPages) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fail = make(map[string]int)
	f.count = make(map[string]int)
}

func (f *FaultyPages) trip(op string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, armed := f.fail[op]
	if !armed {
		return nil
	}
	f.count[op]++
	if f.count[op] == n {
		delete(f.fail, op)
		return fmt.Errorf("%w: %s #%d", ErrInjected, op, n)
	}
	return nil
}

// PageSize returns the wrapped store's page size.
func (f *FaultyPages) PageSize() int { return f.inner.PageSize() }

// Alloc allocates a page unless a fault is scheduled.
func (f *FaultyPages) Alloc() (uint64, error) {
	if err := f.trip("alloc"); err != nil {
		return 0, err
	}
	return f.inner.Alloc()
}

// Read reads a page unless a fault is scheduled.
func (f *FaultyPages) Read(p uint64) ([]byte, error) {
	if err := f.trip("read"); err != nil {
		return nil, err
	}
	return f.inner.Read(p)
}

// Write writes a page unless a fault is scheduled.
func (f *FaultyPages) Write(p uint64, data []byte) error {
	if err := f.trip("write"); err != nil {
		return err
	}
	return f.inner.Write(p, data)
}

// Free frees a page unless a fault is scheduled.
func (f *FaultyPages) Free(p uint64) error {
	if err := f.trip("free"); err != nil {
		return err
	}
	return f.inner.Free(p)
}

var _ PageStore = (*FaultyPages)(nil)
