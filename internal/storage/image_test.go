package storage

import (
	"bytes"
	"errors"
	"testing"
)

func TestMagneticImageRoundTrip(t *testing.T) {
	d := NewMagneticDisk(64, CostModel{})
	p1, _ := d.Alloc()
	p2, _ := d.Alloc()
	p3, _ := d.Alloc()
	d.Write(p1, []byte("one"))
	d.Write(p2, []byte("two"))
	d.Free(p3)

	img := d.Image()
	d2 := NewMagneticFromImage(img, CostModel{})

	got, err := d2.Read(p1)
	if err != nil || string(got) != "one" {
		t.Fatalf("Read(p1) = %q, %v", got, err)
	}
	if _, err := d2.Read(p3); err == nil {
		t.Error("freed page must stay freed after restore")
	}
	// The free list survives: the next alloc reuses p3.
	p4, _ := d2.Alloc()
	if p4 != p3 {
		t.Errorf("alloc after restore = %d, want recycled %d", p4, p3)
	}
	if d2.Stats().PagesInUse != 3 {
		t.Errorf("PagesInUse = %d", d2.Stats().PagesInUse)
	}
	// The image is a deep copy: mutating the restored disk leaves the
	// original untouched.
	d2.Write(p1, []byte("changed"))
	orig, _ := d.Read(p1)
	if string(orig) != "one" {
		t.Error("image aliased original pages")
	}
}

func TestWORMImageRoundTrip(t *testing.T) {
	d := NewWORMDisk(WORMConfig{SectorSize: 32, PlatterSectors: 8, Drives: 2})
	addr, _ := d.Append(bytes.Repeat([]byte("x"), 70))
	ext, _ := d.AllocExtent(3)
	d.WriteSector(ext, []byte("extent0"))

	img := d.Image()
	d2 := NewWORMFromImage(img, CostModel{})
	if d2.Stats().PayloadBytes != d.Stats().PayloadBytes ||
		d2.Stats().SectorsBurned != d.Stats().SectorsBurned {
		t.Error("stats lost in round trip")
	}

	got, err := d2.ReadAt(addr)
	if err != nil || len(got) != 70 {
		t.Fatalf("ReadAt = %d bytes, %v", len(got), err)
	}
	// Burn-once still enforced on restored sectors.
	if err := d2.WriteSector(ext, []byte("again")); !errors.Is(err, ErrBurned) {
		t.Fatalf("rewrite of restored sector = %v", err)
	}
	// Unburned reserved sectors remain writable.
	if err := d2.WriteSector(ext+1, []byte("extent1")); err != nil {
		t.Fatal(err)
	}
	// New appends land after the restored reservation.
	a2, _ := d2.Append([]byte("tail"))
	if a2.Off < ext+3 {
		t.Errorf("append at %d overlaps restored extent [%d,%d)", a2.Off, ext, ext+3)
	}
}

func TestWORMReadAtUnburnedRun(t *testing.T) {
	d := NewWORMDisk(WORMConfig{SectorSize: 16})
	ext, _ := d.AllocExtent(2)
	if _, err := d.ReadAt(Addr{Kind: KindWORM, Off: ext, Len: 20}); !errors.Is(err, ErrUnwritten) {
		t.Fatalf("ReadAt over unburned sectors = %v", err)
	}
}

func TestFaultyPagesAllocAndRead(t *testing.T) {
	d := NewMagneticDisk(32, CostModel{})
	f := NewFaultyPages(d)
	f.FailAfter("alloc", 1)
	if _, err := f.Alloc(); !errors.Is(err, ErrInjected) {
		t.Fatalf("alloc fault = %v", err)
	}
	p, err := f.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	f.Write(p, []byte("x"))
	f.FailAfter("read", 1)
	if _, err := f.Read(p); !errors.Is(err, ErrInjected) {
		t.Fatalf("read fault = %v", err)
	}
	if got, err := f.Read(p); err != nil || string(got) != "x" {
		t.Fatalf("read after fault = %q, %v", got, err)
	}
}
