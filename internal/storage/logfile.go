package storage

import (
	"fmt"
	"io"
	"sync"
)

// LogFile is the append-only byte device the write-ahead log and the
// checkpoint writer write through: sequential writes, an explicit
// durability barrier, and a close. *os.File satisfies it directly; tests
// interpose TornLogFile to simulate crashes that tear a write in half.
type LogFile interface {
	io.Writer
	Sync() error
	Close() error
}

// TearPlan schedules a torn write across one or more LogFiles: after
// `budget` more bytes have been written through the files sharing the
// plan, the write that crosses the boundary persists only its prefix and
// fails, and every subsequent write and sync on every sharing file fails
// too — the device is dead, exactly as if the machine lost power
// mid-append. A nil *TearPlan never fires.
//
// The plan is shared so a fault point can be expressed as a single byte
// offset into the whole durable write stream even when the log rotates
// across segment files mid-test.
type TearPlan struct {
	mu     sync.Mutex //tsb:latch level=8 name=tear-plan
	budget int64
	armed  bool
	dead   bool
}

// NewTearPlan returns a plan that tears the write crossing `budget`
// bytes from now, counted across every file sharing the plan.
func NewTearPlan(budget int64) *TearPlan {
	return &TearPlan{budget: budget, armed: true}
}

// Dead reports whether the plan has fired (the simulated device died).
func (p *TearPlan) Dead() bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dead
}

// consume accounts a write of n bytes: it returns how many bytes may
// actually persist and whether the device just (or previously) died.
func (p *TearPlan) consume(n int) (allowed int, err error) {
	if p == nil {
		return n, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead {
		return 0, fmt.Errorf("%w: log device dead", ErrInjected)
	}
	if !p.armed || int64(n) <= p.budget {
		p.budget -= int64(n)
		return n, nil
	}
	allowed = int(p.budget)
	p.budget = 0
	p.dead = true
	return allowed, fmt.Errorf("%w: torn write after %d bytes", ErrInjected, allowed)
}

// syncErr fails the sync if the device is dead.
func (p *TearPlan) syncErr() error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead {
		return fmt.Errorf("%w: sync on dead log device", ErrInjected)
	}
	return nil
}

// TornLogFile wraps a LogFile with a shared TearPlan. Writes consume the
// plan's byte budget; the write crossing it persists only its allowed
// prefix and fails, and the file is dead from then on.
type TornLogFile struct {
	inner LogFile
	plan  *TearPlan
}

// NewTornLogFile wraps inner under plan. A nil plan passes everything
// through untouched.
func NewTornLogFile(inner LogFile, plan *TearPlan) *TornLogFile {
	return &TornLogFile{inner: inner, plan: plan}
}

// Write persists as much of p as the plan allows.
func (f *TornLogFile) Write(p []byte) (int, error) {
	allowed, err := f.plan.consume(len(p))
	if allowed > 0 {
		if n, werr := f.inner.Write(p[:allowed]); werr != nil {
			return n, werr
		}
	}
	if err != nil {
		return allowed, err
	}
	return len(p), nil
}

// Sync forwards to the inner file unless the device is dead.
func (f *TornLogFile) Sync() error {
	if err := f.plan.syncErr(); err != nil {
		return err
	}
	return f.inner.Sync()
}

// Close always closes the inner file (a dead device can still be
// abandoned).
func (f *TornLogFile) Close() error { return f.inner.Close() }

var _ LogFile = (*TornLogFile)(nil)
