package storage

import "io"

// BlockFile is the random-access byte device the file-backed page and
// burn stores (internal/pagestore) write through: positioned reads and
// writes, truncation, an explicit durability barrier, and a close.
// *os.File satisfies it directly; tests interpose TornBlockFile to
// simulate crashes that tear a positioned write in half — the
// random-access sibling of LogFile/TornLogFile.
type BlockFile interface {
	io.ReaderAt
	io.WriterAt
	Truncate(size int64) error
	Sync() error
	Close() error
}

// TornBlockFile wraps a BlockFile with a shared TearPlan. Positioned
// writes consume the plan's byte budget exactly like sequential log
// writes do, so one plan expresses a single fault point across the whole
// durable write stream — WAL segments, checkpoint files, the magnetic
// page file, and the WORM burn file together. The write crossing the
// budget persists only its prefix and fails, and every subsequent write,
// truncate, and sync fails too; reads keep working (the simulated power
// loss is the test reopening the files through fresh, unwrapped
// handles).
type TornBlockFile struct {
	inner BlockFile
	plan  *TearPlan
}

// NewTornBlockFile wraps inner under plan. A nil plan passes everything
// through untouched.
func NewTornBlockFile(inner BlockFile, plan *TearPlan) *TornBlockFile {
	return &TornBlockFile{inner: inner, plan: plan}
}

// ReadAt always reaches the inner file: the bytes on disk are readable
// right up to the power loss.
func (f *TornBlockFile) ReadAt(p []byte, off int64) (int, error) {
	return f.inner.ReadAt(p, off)
}

// WriteAt persists as much of p as the plan allows.
func (f *TornBlockFile) WriteAt(p []byte, off int64) (int, error) {
	allowed, err := f.plan.consume(len(p))
	if allowed > 0 {
		if n, werr := f.inner.WriteAt(p[:allowed], off); werr != nil {
			return n, werr
		}
	}
	if err != nil {
		return allowed, err
	}
	return len(p), nil
}

// Truncate forwards to the inner file unless the device is dead.
func (f *TornBlockFile) Truncate(size int64) error {
	if err := f.plan.syncErr(); err != nil {
		return err
	}
	return f.inner.Truncate(size)
}

// Sync forwards to the inner file unless the device is dead.
func (f *TornBlockFile) Sync() error {
	if err := f.plan.syncErr(); err != nil {
		return err
	}
	return f.inner.Sync()
}

// Close always closes the inner file (a dead device can still be
// abandoned).
func (f *TornBlockFile) Close() error { return f.inner.Close() }

var _ BlockFile = (*TornBlockFile)(nil)
