package storage

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"
)

func TestAddr(t *testing.T) {
	if !NilAddr.IsNil() {
		t.Error("NilAddr must be nil")
	}
	m := Addr{Kind: KindMagnetic, Off: 7}
	w := Addr{Kind: KindWORM, Off: 3, Len: 100}
	if !m.IsMagnetic() || m.IsWORM() || m.IsNil() {
		t.Error("magnetic addr predicates wrong")
	}
	if !w.IsWORM() || w.IsMagnetic() {
		t.Error("worm addr predicates wrong")
	}
	if m.String() != "mag:7" || w.String() != "worm:3+100" || NilAddr.String() != "<nil>" {
		t.Errorf("String: %s %s %s", m, w, NilAddr)
	}
	if KindMagnetic.String() != "mag" || KindWORM.String() != "worm" || KindNone.String() != "nil" {
		t.Error("DeviceKind.String wrong")
	}
}

func TestMagneticAllocWriteReadFree(t *testing.T) {
	d := NewMagneticDisk(128, CostModel{})
	p, err := d.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Write(p, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := d.Read(p)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("read %q", got)
	}
	// Overwrite in place: the defining capability of the erasable device.
	if err := d.Write(p, []byte("world")); err != nil {
		t.Fatal(err)
	}
	got, _ = d.Read(p)
	if string(got) != "world" {
		t.Fatalf("after overwrite read %q", got)
	}
	if err := d.Free(p); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Read(p); err == nil {
		t.Error("read of freed page should fail")
	}
	if err := d.Write(p, []byte("x")); err == nil {
		t.Error("write of freed page should fail")
	}
	if err := d.Free(p); err == nil {
		t.Error("double free should fail")
	}
}

func TestMagneticFreeListReuse(t *testing.T) {
	d := NewMagneticDisk(64, CostModel{})
	p1, _ := d.Alloc()
	p2, _ := d.Alloc()
	if err := d.Free(p1); err != nil {
		t.Fatal(err)
	}
	p3, _ := d.Alloc()
	if p3 != p1 {
		t.Errorf("expected freed page %d to be recycled, got %d", p1, p3)
	}
	st := d.Stats()
	if st.PagesInUse != 2 || st.HighWater != 2 || st.Allocs != 3 || st.Frees != 1 {
		t.Errorf("stats: %+v", st)
	}
	if st.BytesInUse(64) != 128 {
		t.Errorf("BytesInUse = %d", st.BytesInUse(64))
	}
	_ = p2
}

func TestMagneticRejectsOversizeAndBadPages(t *testing.T) {
	d := NewMagneticDisk(16, CostModel{})
	p, _ := d.Alloc()
	if err := d.Write(p, make([]byte, 17)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversize write: %v", err)
	}
	if err := d.Write(99, []byte("x")); !errors.Is(err, ErrBadPage) {
		t.Errorf("bad page write: %v", err)
	}
	if _, err := d.Read(99); !errors.Is(err, ErrBadPage) {
		t.Errorf("bad page read: %v", err)
	}
	// Allocated but never written.
	p2, _ := d.Alloc()
	if _, err := d.Read(p2); !errors.Is(err, ErrUnwritten) {
		t.Errorf("unwritten read: %v", err)
	}
}

func TestMagneticReadReturnsCopy(t *testing.T) {
	d := NewMagneticDisk(32, CostModel{})
	p, _ := d.Alloc()
	d.Write(p, []byte("abc"))
	got, _ := d.Read(p)
	got[0] = 'X'
	again, _ := d.Read(p)
	if string(again) != "abc" {
		t.Error("Read must return an independent copy")
	}
}

func TestMagneticSimTimeAccumulates(t *testing.T) {
	cost := CostModel{MagneticAccess: 10 * time.Millisecond, MagneticXfer: time.Millisecond}
	d := NewMagneticDisk(32, cost)
	p, _ := d.Alloc()
	d.Write(p, []byte("a"))
	d.Read(p)
	if got := d.Stats().SimTime; got != 22*time.Millisecond {
		t.Errorf("SimTime = %v, want 22ms", got)
	}
}

func TestWORMBurnOnce(t *testing.T) {
	d := NewWORMDisk(WORMConfig{SectorSize: 32})
	ext, err := d.AllocExtent(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteSector(ext, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteSector(ext, []byte("again")); !errors.Is(err, ErrBurned) {
		t.Fatalf("second burn of same sector: %v, want ErrBurned", err)
	}
	got, err := d.ReadSector(ext)
	if err != nil || string(got) != "first" {
		t.Fatalf("ReadSector = %q, %v", got, err)
	}
	if !d.IsBurned(ext) || d.IsBurned(ext+1) {
		t.Error("IsBurned wrong")
	}
	if _, err := d.ReadSector(ext + 1); !errors.Is(err, ErrUnwritten) {
		t.Errorf("read of unburned sector: %v", err)
	}
	if err := d.WriteSector(ext+10, []byte("x")); !errors.Is(err, ErrBadPage) {
		t.Errorf("write outside extents: %v", err)
	}
	if err := d.WriteSector(ext+1, make([]byte, 33)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversize sector write: %v", err)
	}
}

func TestWORMWasteAccounting(t *testing.T) {
	d := NewWORMDisk(WORMConfig{SectorSize: 100})
	ext, _ := d.AllocExtent(2)
	d.WriteSector(ext, make([]byte, 10)) // wastes 90
	d.WriteSector(ext+1, make([]byte, 100))
	st := d.Stats()
	if st.SectorsBurned != 2 || st.PayloadBytes != 110 || st.WastedBytes != 90 {
		t.Errorf("stats: %+v", st)
	}
	if u := st.Utilization(100); u != 0.55 {
		t.Errorf("Utilization = %v", u)
	}
	if st.BytesBurned(100) != 200 {
		t.Errorf("BytesBurned = %d", st.BytesBurned(100))
	}
}

func TestWORMAppendConsolidated(t *testing.T) {
	d := NewWORMDisk(WORMConfig{SectorSize: 64})
	payload := make([]byte, 150) // 3 sectors: 64+64+22
	rand.New(rand.NewSource(1)).Read(payload)
	addr, err := d.Append(payload)
	if err != nil {
		t.Fatal(err)
	}
	if addr.Kind != KindWORM || addr.Len != 150 {
		t.Fatalf("addr = %v", addr)
	}
	got, err := d.ReadAt(addr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("ReadAt round trip mismatch")
	}
	st := d.Stats()
	if st.SectorsBurned != 3 || st.PayloadBytes != 150 || st.WastedBytes != 42 {
		t.Errorf("stats: %+v", st)
	}
	// Second append lands after the first.
	addr2, _ := d.Append([]byte("tail"))
	if addr2.Off != addr.Off+3 {
		t.Errorf("second append at %d, want %d", addr2.Off, addr.Off+3)
	}
	if _, err := d.Append(nil); err == nil {
		t.Error("empty append should fail")
	}
	if _, err := d.ReadAt(Addr{Kind: KindMagnetic, Off: 0}); err == nil {
		t.Error("ReadAt with magnetic addr should fail")
	}
}

func TestWORMAppendUtilizationNearOne(t *testing.T) {
	// The paper's §1 claim: consolidated appends nearly fill sectors.
	d := NewWORMDisk(WORMConfig{SectorSize: 1024})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		n := 2048 + rng.Intn(6*1024)
		buf := make([]byte, n)
		if _, err := d.Append(buf); err != nil {
			t.Fatal(err)
		}
	}
	if u := d.Stats().Utilization(1024); u < 0.85 {
		t.Errorf("consolidated append utilization = %.3f, want >= 0.85", u)
	}
}

func TestWORMExtentThenAppendDoNotOverlap(t *testing.T) {
	d := NewWORMDisk(WORMConfig{SectorSize: 16})
	ext, _ := d.AllocExtent(5)
	addr, _ := d.Append([]byte("0123456789abcdef0123"))
	if addr.Off < ext+5 {
		t.Errorf("append run %d overlaps extent [%d,%d)", addr.Off, ext, ext+5)
	}
	// Extent sectors still writable after the append.
	if err := d.WriteSector(ext+4, []byte("ok")); err != nil {
		t.Fatal(err)
	}
}

func TestWORMLibraryMounts(t *testing.T) {
	cost := CostModel{OpticalAccess: time.Millisecond, MountDelay: time.Second}
	d := NewWORMDisk(WORMConfig{SectorSize: 8, Cost: cost, PlatterSectors: 4, Drives: 2})
	// Platter 0: sectors 0-3, platter 1: 4-7, platter 2: 8-11.
	for i := 0; i < 3; i++ {
		if _, err := d.Append(make([]byte, 32)); err != nil { // 4 sectors each
			t.Fatal(err)
		}
	}
	base := d.Stats().Mounts // appends themselves may mount
	d.ReadSector(0)          // mount platter 0
	d.ReadSector(4)          // mount platter 1
	d.ReadSector(1)          // platter 0 still mounted
	m := d.Stats().Mounts
	if m-base != 2 {
		t.Fatalf("mounts after warm reads = %d, want 2", m-base)
	}
	d.ReadSector(8) // evicts LRU (platter 1? order: 0 refreshed by sector1 read, so evict 1)
	d.ReadSector(0) // still mounted
	d.ReadSector(4) // remounts platter 1
	m2 := d.Stats().Mounts
	if m2-m != 2 {
		t.Fatalf("mounts after eviction cycle = %d, want 2", m2-m)
	}
	if d.Stats().SimTime < 4*time.Second {
		t.Errorf("SimTime %v should include mount delays", d.Stats().SimTime)
	}
}

func TestWORMAllocExtentRejectsNonPositive(t *testing.T) {
	d := NewWORMDisk(WORMConfig{SectorSize: 8})
	if _, err := d.AllocExtent(0); err == nil {
		t.Error("zero extent should fail")
	}
	if _, err := d.AllocExtent(-1); err == nil {
		t.Error("negative extent should fail")
	}
}

func TestDefaultCostModelShape(t *testing.T) {
	c := DefaultCostModel()
	if c.OpticalAccess != 3*c.MagneticAccess {
		t.Errorf("optical access %v should be 3x magnetic %v", c.OpticalAccess, c.MagneticAccess)
	}
	if c.MountDelay != 20*time.Second {
		t.Errorf("mount delay %v, want 20s (paper §1)", c.MountDelay)
	}
}

func TestConcurrentDeviceAccess(t *testing.T) {
	mag := NewMagneticDisk(64, CostModel{})
	worm := NewWORMDisk(WORMConfig{SectorSize: 64})
	done := make(chan error, 8)
	for g := 0; g < 4; g++ {
		go func() {
			var err error
			for i := 0; i < 100 && err == nil; i++ {
				var p uint64
				if p, err = mag.Alloc(); err == nil {
					err = mag.Write(p, []byte("data"))
				}
				if err == nil {
					_, err = mag.Read(p)
				}
			}
			done <- err
		}()
		go func() {
			var err error
			for i := 0; i < 100 && err == nil; i++ {
				var a Addr
				if a, err = worm.Append([]byte("payload")); err == nil {
					_, err = worm.ReadAt(a)
				}
			}
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if mag.Stats().PagesInUse != 400 {
		t.Errorf("PagesInUse = %d", mag.Stats().PagesInUse)
	}
	if worm.Stats().Appends != 400 {
		t.Errorf("Appends = %d", worm.Stats().Appends)
	}
}

func TestNewDevicePanicsOnBadConfig(t *testing.T) {
	for name, f := range map[string]func(){
		"magnetic": func() { NewMagneticDisk(0, CostModel{}) },
		"worm":     func() { NewWORMDisk(WORMConfig{SectorSize: 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
